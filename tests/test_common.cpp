// Unit tests for the common substrate: bit manipulation and the thread
// pool that powers per-shard parallelism.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/bits.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace atlas {
namespace {

TEST(Bits, InsertZeroBitShiftsHighBits) {
  // Inserting a zero at position 1 of 0b111 gives 0b1101.
  EXPECT_EQ(insert_zero_bit(0b111, 1), 0b1101u);
  EXPECT_EQ(insert_zero_bit(0b111, 0), 0b1110u);
  EXPECT_EQ(insert_zero_bit(0b111, 3), 0b0111u);
  EXPECT_EQ(insert_zero_bit(0, 5), 0u);
}

TEST(Bits, InsertZeroBitEnumeratesClearedPositions) {
  // Iterating g over [0, 8) and inserting a zero at position 1 must
  // enumerate exactly the 3-bit-plus values with bit 1 clear.
  std::vector<Index> seen;
  for (Index g = 0; g < 8; ++g) seen.push_back(insert_zero_bit(g, 1));
  for (Index v : seen) EXPECT_FALSE(test_bit(v, 1));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Bits, SpreadGatherRoundTrip) {
  const std::vector<int> qs = {0, 3, 5};
  for (Index v = 0; v < 8; ++v) {
    const Index spread = spread_bits(v, qs);
    EXPECT_EQ(gather_bits(spread, qs), v);
  }
}

TEST(Bits, SpreadBitsPlacesBitsAtPositions) {
  EXPECT_EQ(spread_bits(0b101, {1, 2, 4}), (bit(1) | bit(4)));
}

TEST(Bits, InsertZeroBitsMultiple) {
  // Positions must be ascending; inserting zeros at {1,3} of 0b11
  // gives bits at 0 and 2 -> 0b101.
  EXPECT_EQ(insert_zero_bits(0b11, {1, 3}), 0b101u);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(6));
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    ATLAS_CHECK(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t i) {
                     if (i == 7) throw Error("boom");
                   }),
               Error);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DrainCompletesInFlightWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done++;
    });
  }
  pool.drain();  // must block until all 20 ran
  EXPECT_EQ(done.load(), 20);
  EXPECT_TRUE(pool.draining());
}

TEST(ThreadPool, DrainRejectsNewSubmitsWithUnavailable) {
  ThreadPool pool(1);
  pool.drain();
  try {
    pool.submit([] {});
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::unavailable);
  }
}

TEST(ThreadPool, DrainIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 5; ++i) pool.submit([&] { count++; });
  pool.drain();
  pool.drain();  // second drain: already idle, returns immediately
  EXPECT_EQ(count.load(), 5);
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(Error, CarriesErrorCode) {
  const Error internal("x");
  EXPECT_EQ(internal.code(), ErrorCode::internal);
  const Error missing("y", ErrorCode::not_found);
  EXPECT_EQ(missing.code(), ErrorCode::not_found);
  EXPECT_STREQ(error_code_name(ErrorCode::capacity), "capacity");
  EXPECT_STREQ(error_code_name(ErrorCode::invalid_argument),
               "invalid_argument");
}

TEST(Error, CheckArgThrowsInvalidArgument) {
  try {
    ATLAS_CHECK_ARG(false, "bad field " << 7);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
    EXPECT_NE(std::string(e.what()).find("bad field 7"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, IndexInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

}  // namespace
}  // namespace atlas
