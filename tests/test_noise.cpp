// The noise engine: channel/model validation error paths, trajectory
// compilation (Pauli twirl sharing one CompiledCircuit and one
// plan-cache entry across the batch), determinism of the counter-based
// trajectory streams under dispatch parallelism, and — the core
// acceptance gate — convergence of trajectory averages to the exact
// density-matrix reference within 5 sigma for every built-in channel.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include <atomic>
#include <set>

#include "core/session.h"
#include "noise/channel.h"
#include "noise/density_ref.h"
#include "noise/model.h"
#include "noise/trajectory.h"
#include "sim/reference.h"
#include "staging/snuqs.h"

namespace atlas {
namespace {

using noise::DensityMatrix;
using noise::Estimate;
using noise::KrausChannel;
using noise::NoiseModel;
using noise::NoisyResult;
using noise::NoisyRunOptions;
using noise::TrajectoryProgram;

SessionConfig shaped(int local, int regional, int global) {
  SessionConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = 1 << regional;
  return cfg;
}

/// A small entangling test circuit touching every qubit.
Circuit test_circuit(int n) {
  Circuit c(n, "noise_test");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::cx(q, q + 1));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::ry(q, 0.3 + 0.2 * q));
  c.add(Gate::cx(n - 1, 0));
  return c;
}

// --------------------------------------------------------------------------
// Channel and model validation error paths.

TEST(KrausChannel, BuiltinsAreValidAndClassified) {
  EXPECT_TRUE(KrausChannel::depolarizing(0.1).is_pauli());
  EXPECT_TRUE(KrausChannel::bit_flip(0.1).is_pauli());
  EXPECT_TRUE(KrausChannel::phase_flip(0.1).is_pauli());
  EXPECT_TRUE(KrausChannel::bit_phase_flip(0.1).is_pauli());
  EXPECT_TRUE(KrausChannel::depolarizing2(0.1).is_pauli());
  EXPECT_EQ(KrausChannel::depolarizing2(0.1).num_qubits(), 2);
  EXPECT_FALSE(KrausChannel::amplitude_damping(0.1).is_pauli());
  EXPECT_FALSE(KrausChannel::phase_damping(0.1).is_pauli());
}

TEST(KrausChannel, OutcomeWeightsSumToOne) {
  for (const KrausChannel& ch :
       {KrausChannel::depolarizing(0.2), KrausChannel::amplitude_damping(0.3),
        KrausChannel::phase_damping(0.4), KrausChannel::depolarizing2(0.15)}) {
    double total = 0;
    for (double w : ch.outcome_weights()) total += w;
    EXPECT_NEAR(total, 1.0, 1e-9) << ch.name();
  }
}

TEST(KrausChannel, ValidationErrorPaths) {
  EXPECT_THROW(KrausChannel::depolarizing(-0.1), Error);
  EXPECT_THROW(KrausChannel::depolarizing(1.5), Error);
  EXPECT_THROW(KrausChannel::amplitude_damping(2.0), Error);
  // Non-CPTP explicit Kraus set.
  EXPECT_THROW(
      KrausChannel::kraus("broken", {Matrix::square(2, {1, 0, 0, 0.5})}),
      Error);
  // Mixed operator shapes.
  EXPECT_THROW(KrausChannel::kraus("broken", {Matrix::identity(2),
                                              Matrix::identity(4)}),
               Error);
  // Pauli probabilities not summing to 1 / out of range.
  EXPECT_THROW(KrausChannel::pauli("p", {{Pauli::I}, {Pauli::X}}, {0.9, 0.3}),
               Error);
  EXPECT_THROW(KrausChannel::pauli("p", {{Pauli::I}, {Pauli::X}}, {1.2, -0.2}),
               Error);
  // Arity mismatch between outcomes.
  EXPECT_THROW(
      KrausChannel::pauli("p", {{Pauli::I}, {Pauli::X, Pauli::Z}}, {0.5, 0.5}),
      Error);
}

TEST(NoiseModel, ValidationErrorPaths) {
  NoiseModel model;
  EXPECT_THROW(model.after_gate("nope", KrausChannel::bit_flip(0.1)), Error);
  EXPECT_THROW(model.on_qubit(-1, KrausChannel::bit_flip(0.1)), Error);
  EXPECT_THROW(model.on_qubit(0, KrausChannel::depolarizing2(0.1)), Error);
  EXPECT_THROW(model.readout_error(0, 1.2, 0.0), Error);
  EXPECT_THROW(model.readout_error_all(0.0, -0.1), Error);
  // A two-qubit channel triggered by a one-qubit gate fails at
  // expansion with the offending gate named.
  NoiseModel bad;
  bad.after_all_gates(KrausChannel::depolarizing2(0.1));
  Circuit c(3);
  c.add(Gate::h(0));
  EXPECT_THROW(bad.sites_for(c), Error);
}

TEST(NoiseModel, SiteExpansionAndReadoutLookup) {
  NoiseModel model;
  model.after_gate("cx", KrausChannel::depolarizing2(0.05))
      .on_qubit(1, KrausChannel::bit_flip(0.02))
      .readout_error_all(0.01, 0.02)
      .readout_error(2, 0.1, 0.2);
  EXPECT_TRUE(model.all_pauli());  // both rules are Pauli
  const Circuit c = test_circuit(3);         // 3 h, 2 cx chain, 3 ry, 1 cx
  const auto sites = model.sites_for(c);
  // cx rule: 3 cx gates; qubit-1 rule: h(1), cx(0,1), cx(1,2), ry(1).
  int cx_sites = 0, q1_sites = 0;
  for (const auto& s : sites) {
    if (s.channel->name() == "depolarizing2") ++cx_sites;
    if (s.channel->name() == "bit_flip") ++q1_sites;
  }
  EXPECT_EQ(cx_sites, 3);
  EXPECT_EQ(q1_sites, 4);
  EXPECT_NEAR(model.readout_for(2).p01, 0.1, 1e-15);   // per-qubit wins
  EXPECT_NEAR(model.readout_for(0).p01, 0.01, 1e-15);  // _all fallback
  EXPECT_TRUE(model.has_readout_error());
}

// --------------------------------------------------------------------------
// Trajectory compilation: the Pauli-twirl sharing property.

TEST(TrajectoryProgram, PauliPathInsertsU3PerSiteQubit) {
  const Circuit c = test_circuit(4);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.1));
  const TrajectoryProgram prog = TrajectoryProgram::build(c, model);
  ASSERT_TRUE(prog.pauli_fast_path());
  int site_qubits = 0;
  for (const auto& s : prog.sites())
    site_qubits += static_cast<int>(s.qubits.size());
  EXPECT_EQ(prog.twirled().num_gates(), c.num_gates() + site_qubits);
  EXPECT_EQ(static_cast<int>(prog.noise_symbols().size()), 3 * site_qubits);
}

TEST(TrajectoryProgram, GeneralPathSelectedForNonPauli) {
  const Circuit c = test_circuit(3);
  NoiseModel model;
  model.after_all_gates(KrausChannel::amplitude_damping(0.1));
  const TrajectoryProgram prog = TrajectoryProgram::build(c, model);
  EXPECT_FALSE(prog.pauli_fast_path());
  EXPECT_THROW(prog.twirled(), Error);
}

TEST(TrajectoryProgram, OutcomeSamplingIsCounterDeterministic) {
  const Circuit c = test_circuit(4);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.3));
  const TrajectoryProgram prog = TrajectoryProgram::build(c, model);
  EXPECT_EQ(prog.sample_outcomes(7, 3), prog.sample_outcomes(7, 3));
  EXPECT_NE(prog.sample_outcomes(7, 3), prog.sample_outcomes(7, 4));
  EXPECT_NE(prog.sample_outcomes(8, 3), prog.sample_outcomes(7, 3));
}

// The acceptance-criterion probe: every trajectory of a Pauli-twirled
// batch lowers to a circuit with the *same structural fingerprint*, so
// compiling the batch costs one plan-cache miss and N-1 hits, all
// returning the one shared plan.
TEST(TrajectoryProgram, TrajectoriesShareOnePlanCacheEntry) {
  const int kTrajectories = 16;
  const Circuit c = test_circuit(5);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.1));
  const TrajectoryProgram prog = TrajectoryProgram::build(c, model);
  ASSERT_TRUE(prog.pauli_fast_path());

  const Session session(shaped(4, 1, 0));
  std::shared_ptr<const exec::ExecutionPlan> shared_plan;
  for (int t = 0; t < kTrajectories; ++t) {
    const CompiledCircuit compiled =
        session.compile(prog.lower(/*seed=*/11, t));
    if (!shared_plan) shared_plan = compiled.plan();
    EXPECT_EQ(compiled.plan().get(), shared_plan.get()) << "trajectory " << t;
  }
  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kTrajectories - 1));
  // The symbolic twirl circuit itself shares the same entry.
  EXPECT_EQ(session.compile(prog.twirled()).plan().get(), shared_plan.get());
}

TEST(TrajectoryProgram, LoweredTrajectoryMatchesReferenceSemantics) {
  // A single lowered trajectory is an ordinary circuit: simulating it
  // must equal the reference simulator on the same gate list.
  const Circuit c = test_circuit(4);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.25));
  const TrajectoryProgram prog = TrajectoryProgram::build(c, model);
  const Circuit lowered = prog.lower(/*seed=*/3, /*t=*/5);
  const Session session(shaped(3, 1, 0));
  const SimulationResult r = session.simulate(lowered);
  EXPECT_LT(r.state.gather().max_abs_diff(simulate_reference(lowered)), 1e-8);
}

// --------------------------------------------------------------------------
// run_noisy: determinism and aggregation plumbing.

TEST(RunNoisy, DeterministicAcrossDispatchWidths) {
  const Circuit c = test_circuit(4);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.08));
  model.readout_error_all(0.02, 0.03);
  NoisyRunOptions opts;
  opts.trajectories = 40;
  opts.shots = 16;
  opts.accumulate_probabilities = true;

  SessionConfig cfg1 = shaped(3, 1, 0);
  cfg1.dispatch_threads = 1;
  SessionConfig cfg4 = shaped(3, 1, 0);
  cfg4.dispatch_threads = 4;
  const NoisyResult a = Session(cfg1).run_noisy(c, model, opts);
  const NoisyResult b = Session(cfg4).run_noisy(c, model, opts);
  const NoisyResult a2 = Session(cfg1).run_noisy(c, model, opts);

  ASSERT_EQ(a.trajectories(), 40u);
  EXPECT_TRUE(a.pauli_fast_path());
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.counts(), a2.counts());
  for (Qubit q = 0; q < 4; ++q) {
    EXPECT_EQ(a.expectation_z(q).value, b.expectation_z(q).value) << q;
    EXPECT_EQ(a.expectation_z(q).std_error, b.expectation_z(q).std_error);
  }
  EXPECT_EQ(a.probabilities(), b.probabilities());
}

TEST(RunNoisy, SeedChangesTheSample) {
  const Circuit c = test_circuit(4);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.2));
  NoisyRunOptions opts;
  opts.trajectories = 30;
  opts.shots = 8;
  const Session session(shaped(3, 1, 0));
  const NoisyResult a = session.run_noisy(c, model, opts);
  opts.seed = 12345;
  const NoisyResult b = session.run_noisy(c, model, opts);
  EXPECT_NE(a.counts(), b.counts());
}

TEST(RunNoisy, OptionValidationAndResultGuards) {
  const Circuit c = test_circuit(4);
  NoiseModel model;
  model.after_all_gates(KrausChannel::bit_flip(0.1));
  const Session session(shaped(3, 1, 0));
  NoisyRunOptions opts;
  opts.trajectories = 0;
  EXPECT_THROW(session.run_noisy(c, model, opts), Error);
  opts.trajectories = 4;
  opts.shots = -1;
  EXPECT_THROW(session.run_noisy(c, model, opts), Error);
  EXPECT_THROW(session.sample_noisy(c, model, 0), Error);

  opts.shots = 0;
  const NoisyResult r = session.run_noisy(c, model, opts);
  EXPECT_THROW(r.probability(0), Error);       // not accumulated
  EXPECT_THROW(r.shot_probability(0), Error);  // no shots drawn
  EXPECT_THROW(r.expectation_z(17), Error);    // qubit out of range
}

TEST(RunNoisy, ParameterizedCircuitBindsThroughOptions) {
  Circuit c(4, "ansatz");
  for (Qubit q = 0; q < 4; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q < 4; ++q)
    c.add(Gate::ry(q, Param::symbol("theta")));
  NoiseModel model;
  model.after_all_gates(KrausChannel::phase_flip(0.05));
  const Session session(shaped(3, 1, 0));
  NoisyRunOptions opts;
  opts.trajectories = 8;
  // Missing binding: the error names the symbol.
  try {
    session.run_noisy(c, model, opts);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("theta"), std::string::npos);
  }
  opts.binding.set("theta", 0.4);
  const NoisyResult r = session.run_noisy(c, model, opts);
  EXPECT_EQ(r.trajectories(), 8u);
}

// --------------------------------------------------------------------------
// Convergence vs the exact density reference, 5-sigma tolerance.

/// |estimate - exact| <= 5 sigma (plus an epsilon for exactly-
/// deterministic estimates whose sample spread is zero).
void expect_within_5_sigma(const Estimate& est, double exact,
                           const std::string& what) {
  EXPECT_LE(std::abs(est.value - exact), 5 * est.std_error + 1e-9)
      << what << ": estimate " << est.value << " +- " << est.std_error
      << " vs exact " << exact;
}

void check_convergence(const Circuit& circuit, const NoiseModel& model,
                       int trajectories, const SessionConfig& cfg,
                       const std::string& what) {
  Session session(cfg);
  NoisyRunOptions opts;
  opts.trajectories = trajectories;
  opts.accumulate_probabilities = true;
  const NoisyResult result = session.run_noisy(circuit, model, opts);
  const DensityMatrix rho = noise::simulate_density(circuit, model);
  for (Qubit q = 0; q < circuit.num_qubits(); ++q)
    expect_within_5_sigma(result.expectation_z(q), rho.expectation_z(q),
                          what + " <Z_" + std::to_string(q) + ">");
  const auto exact = rho.probabilities();
  for (Index i = 0; i < exact.size(); ++i)
    expect_within_5_sigma(result.probability(i), exact[i],
                          what + " p(" + std::to_string(i) + ")");
}

TEST(Convergence, DepolarizingMatchesDensityRef) {
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.06));
  check_convergence(test_circuit(5), model, 1500, shaped(4, 1, 0),
                    "depolarizing");
}

TEST(Convergence, BitFlipMatchesDensityRef) {
  NoiseModel model;
  model.after_all_gates(KrausChannel::bit_flip(0.08));
  check_convergence(test_circuit(4), model, 1500, shaped(3, 1, 0),
                    "bit_flip");
}

TEST(Convergence, PhaseFlipMatchesDensityRef) {
  NoiseModel model;
  model.after_all_gates(KrausChannel::phase_flip(0.1));
  check_convergence(test_circuit(4), model, 1500, shaped(3, 0, 1),
                    "phase_flip");
}

TEST(Convergence, BitPhaseFlipMatchesDensityRef) {
  NoiseModel model;
  model.after_all_gates(KrausChannel::bit_phase_flip(0.07));
  check_convergence(test_circuit(3), model, 1200, shaped(3, 0, 0),
                    "bit_phase_flip");
}

TEST(Convergence, TwoQubitDepolarizingOnEntanglersMatchesDensityRef) {
  NoiseModel model;
  model.after_gate("cx", KrausChannel::depolarizing2(0.1));
  check_convergence(test_circuit(4), model, 1500, shaped(3, 1, 0),
                    "depolarizing2");
}

TEST(Convergence, AmplitudeDampingMatchesDensityRef) {
  // General-Kraus fallback: per-trajectory lowering, norm-tracked
  // weights. Smaller circuit — every trajectory re-plans.
  NoiseModel model;
  model.after_all_gates(KrausChannel::amplitude_damping(0.12));
  const Circuit c = test_circuit(3);
  Session session(shaped(3, 0, 0));
  NoisyRunOptions opts;
  opts.trajectories = 600;
  opts.accumulate_probabilities = true;
  const NoisyResult result = session.run_noisy(c, model, opts);
  EXPECT_FALSE(result.pauli_fast_path());
  // The mean trajectory weight estimates tr(rho) = 1.
  EXPECT_NEAR(result.mean_weight(), 1.0, 0.15);
  const DensityMatrix rho = noise::simulate_density(c, model);
  for (Qubit q = 0; q < 3; ++q)
    expect_within_5_sigma(result.expectation_z(q), rho.expectation_z(q),
                          "amplitude_damping <Z>");
  const auto exact = rho.probabilities();
  for (Index i = 0; i < exact.size(); ++i)
    expect_within_5_sigma(result.probability(i), exact[i],
                          "amplitude_damping p");
}

TEST(Convergence, PhaseDampingMatchesDensityRef) {
  NoiseModel model;
  model.after_all_gates(KrausChannel::phase_damping(0.15));
  const Circuit c = test_circuit(3);
  Session session(shaped(3, 0, 0));
  NoisyRunOptions opts;
  opts.trajectories = 600;
  opts.accumulate_probabilities = true;
  const NoisyResult result = session.run_noisy(c, model, opts);
  const DensityMatrix rho = noise::simulate_density(c, model);
  for (Qubit q = 0; q < 3; ++q)
    expect_within_5_sigma(result.expectation_z(q), rho.expectation_z(q),
                          "phase_damping <Z>");
}

TEST(Convergence, ReadoutErrorMatchesConfusedDensityDiagonal) {
  // Counts (the only observable readout error touches) vs the exact
  // confused diagonal. The 5-sigma bound is conservative: per-state
  // variance is at most p(1-p)/N_traj (between-trajectory spread
  // dominates the within-trajectory multinomial term).
  const Circuit c = test_circuit(3);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.05));
  model.readout_error_all(0.08, 0.15);
  Session session(shaped(3, 0, 0));
  NoisyRunOptions opts;
  opts.trajectories = 1200;
  const NoisyResult result = session.sample_noisy(c, model, 32, opts);
  const DensityMatrix rho = noise::simulate_density(c, model);
  const auto confused = rho.probabilities_with_readout(model);
  const auto unconfused = rho.probabilities();
  const double n_traj = static_cast<double>(result.trajectories());
  double l1_confused = 0, l1_unconfused = 0;
  for (Index i = 0; i < confused.size(); ++i) {
    const double est = result.shot_probability(i);
    const double sigma =
        std::sqrt(std::max(confused[i] * (1 - confused[i]), 1e-12) / n_traj);
    EXPECT_LE(std::abs(est - confused[i]), 5 * sigma + 1e-9) << "basis " << i;
    l1_confused += std::abs(est - confused[i]);
    l1_unconfused += std::abs(est - unconfused[i]);
  }
  // The estimate must actually reflect the confusion, not just sit
  // within a loose band of both references.
  EXPECT_LT(l1_confused, l1_unconfused);
}

// --------------------------------------------------------------------------
// General-Kraus trajectory plans memoize on the sampled outcome pattern.

std::atomic<int> kraus_memo_stager_calls{0};

class KrausMemoCountingStager final : public staging::Stager {
 public:
  std::string name() const override { return "kraus-memo-counting"; }
  staging::StagedCircuit stage(const Circuit& circuit,
                               const staging::MachineShape& shape,
                               const staging::StagingOptions&) const override {
    ++kraus_memo_stager_calls;
    return staging::stage_with_snuqs(circuit, shape);
  }
};

TEST(KrausPlanMemo, BatchPlansOncePerDistinctOutcomePattern) {
  staging::stager_registry().add("kraus-memo-counting", [] {
    return std::make_shared<KrausMemoCountingStager>();
  });
  // One amplitude-damping site (after the single h) with two Kraus
  // outcomes: a 24-trajectory batch draws at most 2 distinct patterns,
  // so the engine must build at most 2 plans instead of 24.
  NoiseModel model;
  model.after_gate("h", KrausChannel::amplitude_damping(0.3));
  Circuit single(4, "one_h");
  single.add(Gate::h(0));
  for (Qubit q = 0; q + 1 < 4; ++q) single.add(Gate::cx(q, q + 1));
  for (Qubit q = 0; q < 4; ++q) single.add(Gate::ry(q, 0.3 + 0.2 * q));

  const int trajectories = 24;
  const std::uint64_t seed = 17;
  const TrajectoryProgram prog = TrajectoryProgram::build(single, model);
  ASSERT_FALSE(prog.pauli_fast_path());
  ASSERT_EQ(prog.num_sites(), 1);
  std::set<std::vector<int>> distinct;
  for (int t = 0; t < trajectories; ++t)
    distinct.insert(prog.sample_outcomes(seed, t));
  ASSERT_GE(distinct.size(), 2u);  // both outcomes drawn at this seed

  SessionConfig cfg = shaped(3, 1, 0);
  cfg.stager = "kraus-memo-counting";
  const Session session(cfg);
  NoisyRunOptions opts;
  opts.trajectories = trajectories;
  opts.seed = seed;
  const int calls_before = kraus_memo_stager_calls.load();
  const NoisyResult result = session.run_noisy(single, model, opts);
  EXPECT_EQ(kraus_memo_stager_calls.load() - calls_before,
            static_cast<int>(distinct.size()));
  EXPECT_EQ(result.trajectories(), static_cast<std::uint64_t>(trajectories));

  // Memoized plans change nothing observable: same counts/moments as a
  // single-threaded session of the default stager.
  SessionConfig ref_cfg = shaped(3, 1, 0);
  ref_cfg.dispatch_threads = 1;
  NoisyRunOptions ref_opts = opts;
  ref_opts.accumulate_probabilities = true;
  NoisyRunOptions par_opts = ref_opts;
  SessionConfig par_cfg = shaped(3, 1, 0);
  par_cfg.dispatch_threads = 4;
  const NoisyResult a = Session(ref_cfg).run_noisy(single, model, ref_opts);
  const NoisyResult b = Session(par_cfg).run_noisy(single, model, par_opts);
  EXPECT_EQ(a.probabilities(), b.probabilities());
  for (Qubit q = 0; q < 4; ++q)
    EXPECT_EQ(a.expectation_z(q).value, b.expectation_z(q).value) << q;
}

// --------------------------------------------------------------------------
// Readout-confusion-corrected query facade.

TEST(CorrectedReadout, GuardsAndPassThrough) {
  const Circuit c = test_circuit(3);
  NoiseModel model;
  model.after_all_gates(KrausChannel::bit_flip(0.05));
  const Session session(shaped(3, 0, 0));
  NoisyRunOptions opts;
  opts.trajectories = 10;
  const NoisyResult no_shots = session.run_noisy(c, model, opts);
  EXPECT_THROW(no_shots.corrected_probability(0), Error);
  EXPECT_THROW(no_shots.corrected_expectation_z(0), Error);

  // Without modeled readout error the corrected queries equal the raw
  // count estimates exactly.
  const NoisyResult plain = session.sample_noisy(c, model, 64, opts);
  EXPECT_TRUE(plain.readout().empty());
  for (Index i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(plain.corrected_probability(i),
                     plain.shot_probability(i))
        << i;

  // A singular confusion matrix (p01 + p10 = 1) cannot be inverted.
  NoiseModel singular;
  singular.after_all_gates(KrausChannel::bit_flip(0.05));
  singular.readout_error(0, 0.4, 0.6);
  const NoisyResult bad = session.sample_noisy(c, singular, 32, opts);
  EXPECT_THROW(bad.corrected_probability(0), Error);
  EXPECT_THROW(bad.corrected_expectation_z(0), Error);
  EXPECT_NO_THROW(bad.corrected_expectation_z(1));  // unmodeled qubit
}

TEST(CorrectedReadout, InverseConfusionRecoversPreReadoutObservables) {
  // Strong readout confusion; the corrected estimates must undo it —
  // land near the *unconfused* density diagonal — while the raw shot
  // estimates stay near the confused one.
  const Circuit c = test_circuit(3);
  NoiseModel model;
  model.after_all_gates(KrausChannel::depolarizing(0.05));
  model.readout_error_all(0.08, 0.15);
  model.readout_error(1, 0.2, 0.05);
  Session session(shaped(3, 0, 0));
  NoisyRunOptions opts;
  opts.trajectories = 1500;
  const NoisyResult result = session.sample_noisy(c, model, 64, opts);
  ASSERT_EQ(result.readout().size(), 3u);

  const DensityMatrix rho = noise::simulate_density(c, model);
  const auto unconfused = rho.probabilities();
  const auto confused = rho.probabilities_with_readout(model);
  double l1_corrected_vs_true = 0, l1_raw_vs_true = 0;
  for (Index i = 0; i < unconfused.size(); ++i) {
    l1_corrected_vs_true +=
        std::abs(result.corrected_probability(i) - unconfused[i]);
    l1_raw_vs_true += std::abs(result.shot_probability(i) - unconfused[i]);
  }
  // The correction strictly improves the estimate of the pre-readout
  // distribution (the confusion here is strong enough that sampling
  // noise cannot flip the comparison at this shot budget).
  EXPECT_LT(l1_corrected_vs_true, l1_raw_vs_true);
  EXPECT_LT(l1_corrected_vs_true, 0.1);

  for (Qubit q = 0; q < 3; ++q) {
    const double exact = rho.expectation_z(q);
    EXPECT_NEAR(result.corrected_expectation_z(q), exact, 0.1) << q;
  }
  // Sanity: the raw counts really are confused (away from exact on at
  // least one qubit), so the agreement above is the correction's work.
  double max_raw_err = 0;
  for (Index i = 0; i < confused.size(); ++i)
    max_raw_err = std::max(
        max_raw_err, std::abs(result.shot_probability(i) - confused[i]));
  EXPECT_LT(max_raw_err, 0.1);  // raw estimates track the confused diagonal
}

}  // namespace
}  // namespace atlas
