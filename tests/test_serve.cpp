// End-to-end tests for the serving daemon: protocol round-trips over
// real loopback sockets, bit-identity against an in-process Session,
// store lifecycle (TTL purge, eviction, capacity admission), fair
// scheduling across tenants, cross-tenant plan sharing, drain
// semantics, and malformed-frame robustness.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <fcntl.h>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "core/atlas.h"
#include "qasm/qasm.h"
#include "serve/client.h"
#include "serve/server.h"

namespace atlas::serve {
namespace {

/// The shape every test daemon serves (and the in-process reference
/// uses): 2^6 amplitudes per shard, 2 shards per node, 2 nodes.
SessionConfig test_session_config() {
  SessionConfig cfg;
  cfg.cluster.local_qubits = 6;
  cfg.cluster.regional_qubits = 1;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 2;
  cfg.cluster.num_threads = 1;
  cfg.dispatch_threads = 1;
  return cfg;
}

ServerConfig test_server_config() {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 2;
  cfg.session = test_session_config();
  return cfg;
}

/// An 8-qubit parameterized test circuit as QASM (one free symbol).
std::string ansatz_qasm() {
  return "OPENQASM 3;\n"
         "include \"qelib1.inc\";\n"
         "input float theta;\n"
         "qreg q[8];\n"
         "h q[0];\n"
         "cx q[0],q[1];\n"
         "cx q[1],q[2];\n"
         "rx(theta) q[3];\n"
         "rz(theta) q[4];\n"
         "cx q[3],q[4];\n"
         "cx q[4],q[5];\n"
         "h q[6];\n"
         "cx q[6],q[7];\n";
}

std::string concrete_qasm() {
  return "OPENQASM 2.0;\n"
         "include \"qelib1.inc\";\n"
         "qreg q[8];\n"
         "h q[0];\n"
         "cx q[0],q[1];\n"
         "t q[1];\n"
         "cx q[1],q[2];\n"
         "rx(0.7) q[3];\n"
         "cx q[2],q[3];\n";
}

// --- end-to-end round trip vs in-process ------------------------------

TEST(Serve, RunIsBitIdenticalToInProcessSession) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = client.open_session(open);
  const SubmitReply submitted = client.submit_qasm(sid, ansatz_qasm());
  EXPECT_EQ(submitted.num_qubits, 8u);
  ASSERT_EQ(submitted.symbols, std::vector<std::string>{"theta"});

  const CompileReply compiled = client.compile(sid, submitted.circuit_id);
  EXPECT_FALSE(compiled.shared_cache_hit);  // first compile anywhere
  const std::vector<double> values = {0.37};
  const RunReply remote = client.run(sid, compiled.compiled_id, values);

  // The reference: an in-process Session with the daemon's exact
  // session config, fed the same QASM.
  const Session local(test_session_config());
  const CompiledCircuit cc = local.compile(qasm::parse(ansatz_qasm()));
  const SimulationResult reference = local.run(cc, values);

  // Bit-identical, not approximately-equal: same plan, same seed
  // derivation, same kernels — the wire carries exact doubles.
  EXPECT_EQ(remote.seed, reference.seed);
  EXPECT_EQ(remote.norm_sq, reference.norm_sq());
  ASSERT_EQ(remote.expectation_z.size(), 8u);
  for (int q = 0; q < 8; ++q) {
    EXPECT_EQ(remote.expectation_z[static_cast<std::size_t>(q)],
              reference.expectation_z(q))
        << "qubit " << q;
  }

  // sample() draws the result's own deterministic counter-based
  // streams on both sides: full sequences match across two calls.
  const auto remote_shots1 = client.sample(sid, remote.result_id, 32);
  const auto remote_shots2 = client.sample(sid, remote.result_id, 32);
  const auto local_shots1 = reference.sample(32);
  const auto local_shots2 = reference.sample(32);
  ASSERT_EQ(remote_shots1.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(remote_shots1[i], static_cast<std::uint64_t>(local_shots1[i]));
    EXPECT_EQ(remote_shots2[i], static_cast<std::uint64_t>(local_shots2[i]));
  }

  server.stop();
}

TEST(Serve, SweepMatchesInProcessSweep) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = client.open_session(open);
  const SubmitReply submitted = client.submit_qasm(sid, ansatz_qasm());
  const CompileReply compiled = client.compile(sid, submitted.circuit_id);

  std::vector<std::vector<double>> points;
  for (int i = 0; i < 7; ++i) points.push_back({0.1 + 0.4 * i});
  const auto remote = client.sweep(sid, compiled.compiled_id, points);

  const Session local(test_session_config());
  const CompiledCircuit cc = local.compile(qasm::parse(ansatz_qasm()));
  const auto reference = local.sweep(cc, points);

  ASSERT_EQ(remote.size(), 7u);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    EXPECT_EQ(remote[i].norm_sq, reference[i].norm_sq());
    for (int q = 0; q < 8; ++q) {
      EXPECT_EQ(remote[i].expectation_z[static_cast<std::size_t>(q)],
                reference[i].expectation_z(q))
          << "point " << i << " qubit " << q;
    }
  }
  server.stop();
}

TEST(Serve, RunNoisyMatchesInProcess) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  const std::string noisy_qasm =
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[8];\n"
      "h q[0];\n"
      "cx q[0],q[1];\n"
      "cx q[1],q[2];\n"
      "#pragma atlas noise bit_flip(0.05) all\n";

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = client.open_session(open);
  const SubmitReply submitted = client.submit_qasm(sid, noisy_qasm);
  EXPECT_TRUE(submitted.has_noise);
  const NoisyReply remote =
      client.run_noisy(sid, submitted.circuit_id, /*trajectories=*/64,
                       /*shots=*/16);

  const Session local(test_session_config());
  const qasm::NoisyParse parsed = qasm::parse_with_noise(noisy_qasm);
  noise::NoisyRunOptions options;
  options.trajectories = 64;
  options.shots = 16;
  const noise::NoisyResult reference =
      local.run_noisy(parsed.circuit, parsed.noise, options);

  EXPECT_EQ(remote.trajectories, reference.trajectories());
  EXPECT_EQ(remote.pauli_fast_path, reference.pauli_fast_path());
  EXPECT_EQ(remote.mean_weight, reference.mean_weight());
  for (int q = 0; q < 8; ++q) {
    EXPECT_EQ(remote.z_value[static_cast<std::size_t>(q)],
              reference.expectation_z(q).value);
  }
  // Counts round-trip exactly (same seed derivation both sides).
  ASSERT_EQ(remote.counts.size(), reference.counts().size());
  auto it = reference.counts().begin();
  for (const auto& [basis, weight] : remote.counts) {
    EXPECT_EQ(basis, static_cast<std::uint64_t>(it->first));
    EXPECT_EQ(weight, it->second);
    ++it;
  }
  server.stop();
}

// --- session lifecycle: TTL purge, eviction, capacity ------------------

TEST(Serve, ExpiredSessionsArePurgedAndStoreShrinks) {
  ServerConfig cfg = test_server_config();
  cfg.store.purge_interval = std::chrono::milliseconds(20);
  Server server(cfg);
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "ephemeral";
  open.ttl_ms = 50;  // expire almost immediately
  const std::uint64_t sid = client.open_session(open);
  EXPECT_EQ(server.store().size(), 1u);

  // The purge thread must observably shrink the store without any
  // client action.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.store().size() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.store().size(), 0u);
  EXPECT_GE(server.store().purged_total(), 1u);

  // Using the purged session now reports not_found.
  try {
    client.submit_qasm(sid, concrete_qasm());
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::not_found);
  }
  server.stop();
}

TEST(Serve, StoreCapacityRefusesThenEvictionAdmits) {
  ServerConfig cfg = test_server_config();
  cfg.store.max_sessions = 2;
  Server server(cfg);
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "a";
  const std::uint64_t s1 = client.open_session(open);
  open.tenant = "b";
  client.open_session(open);

  // Store full: the third open is refused with the capacity code.
  open.tenant = "c";
  try {
    client.open_session(open);
    FAIL() << "expected capacity";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::capacity);
  }

  // Operator eviction frees a slot; the same open now succeeds.
  client.evict_session(s1);
  EXPECT_EQ(server.store().size(), 1u);
  const std::uint64_t s3 = client.open_session(open);
  EXPECT_NE(s3, 0u);

  // The evicted session is gone.
  try {
    client.submit_qasm(s1, concrete_qasm());
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::not_found);
  }
  server.stop();
}

TEST(Serve, PerTenantAdmissionBoundRejectsWithCapacity) {
  ServerConfig cfg = test_server_config();
  cfg.workers = 1;
  cfg.max_pending_per_tenant = 1;
  Server server(cfg);
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "greedy";
  const std::uint64_t sid = client.open_session(open);
  const SubmitReply submitted = client.submit_qasm(sid, ansatz_qasm());
  const CompileReply compiled = client.compile(sid, submitted.circuit_id);

  // Fill the single admission slot with a slow sweep, then pipeline a
  // second request while the first is still in flight. On a loaded
  // single-core host the whole sweep can occasionally finish before
  // the reader thread sees the run frame (both requests then succeed,
  // which is correct but uncontended), so retry until the bound is
  // actually exercised.
  constexpr int kPoints = 256;
  WireWriter sweep_body;
  sweep_body.u32(compiled.compiled_id);
  sweep_body.u32(kPoints);
  sweep_body.u32(1);
  for (int i = 0; i < kPoints; ++i) sweep_body.f64(0.003 * i);
  WireWriter run_body;
  run_body.u32(compiled.compiled_id);
  run_body.u32(1);
  run_body.f64(0.5);

  bool saw_capacity = false;
  for (int attempt = 0; attempt < 10 && !saw_capacity; ++attempt) {
    const std::uint64_t sweep_req =
        client.post(Op::sweep, sid, sweep_body.bytes());
    const std::uint64_t run_req =
        client.post(Op::run, sid, run_body.bytes());
    std::string message;
    const Status run_status =
        client.wait_status(run_req, nullptr, &message);
    EXPECT_EQ(client.wait_status(sweep_req), Status::ok);
    if (run_status == Status::capacity) {
      saw_capacity = true;
    } else {
      // Uncontended fallthrough: the run must then have succeeded.
      EXPECT_EQ(run_status, Status::ok) << message;
    }
  }
  EXPECT_TRUE(saw_capacity)
      << "run was never refused while the sweep held the only slot";
  server.stop();
}

TEST(Serve, RefusedRequestsDoNotFreeAnotherRequestsSlot) {
  // Regression: a capacity refusal used to call request_done() on the
  // tenant anyway, decrementing the slot held by the *admitted*
  // request — so each refusal admitted the next pipelined request and
  // the bound leaked away under exactly the pressure it exists for.
  // Refusals must leave admission accounting untouched: while the
  // sweep holds the only slot, every follow-up run is refused.
  ServerConfig cfg = test_server_config();
  cfg.workers = 1;
  cfg.max_pending_per_tenant = 1;
  Server server(cfg);
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "greedy";
  const std::uint64_t sid = client.open_session(open);
  const SubmitReply submitted = client.submit_qasm(sid, ansatz_qasm());
  const CompileReply compiled = client.compile(sid, submitted.circuit_id);

  constexpr int kPoints = 256;
  WireWriter sweep_body;
  sweep_body.u32(compiled.compiled_id);
  sweep_body.u32(kPoints);
  sweep_body.u32(1);
  for (int i = 0; i < kPoints; ++i) sweep_body.f64(0.003 * i);
  WireWriter run_body;
  run_body.u32(compiled.compiled_id);
  run_body.u32(1);
  run_body.f64(0.5);

  for (int attempt = 0; attempt < 10; ++attempt) {
    const std::uint64_t sweep_req =
        client.post(Op::sweep, sid, sweep_body.bytes());
    const std::uint64_t first = client.post(Op::run, sid, run_body.bytes());
    const std::uint64_t second = client.post(Op::run, sid, run_body.bytes());
    const std::uint64_t third = client.post(Op::run, sid, run_body.bytes());
    const Status s1 = client.wait_status(first);
    const Status s2 = client.wait_status(second);
    const Status s3 = client.wait_status(third);
    EXPECT_EQ(client.wait_status(sweep_req), Status::ok);
    if (s1 != Status::capacity) continue;  // sweep finished early; retry
    // The reader refused `first` microseconds before handling `second`
    // and `third`, with the 256-point sweep still occupying the slot.
    // With the leak, refusing `first` freed the sweep's slot and
    // `second` sailed through mid-sweep.
    EXPECT_EQ(s2, Status::capacity);
    EXPECT_EQ(s3, Status::capacity);
    server.stop();
    return;
  }
  server.stop();  // never contended (vanishingly unlikely); nothing to assert
}

TEST(Serve, DispatcherRunsTicketInlineWhenPoolIsDraining) {
  // Regression: enqueue_internal() racing a stop() used to queue the
  // item and bump items_outstanding_, then lose its pool ticket to the
  // submit() throw — a later drain() waited forever on an item no
  // worker would ever claim. The ticket now runs inline instead.
  Dispatcher d(1, 0);
  d.stop();  // pool drained: submit() throws from here on
  bool ran = false;
  d.enqueue_internal("tenant", [&] { ran = true; });
  EXPECT_TRUE(ran);
  d.drain();  // must return immediately rather than wedge
}

TEST(Serve, WriteAllTimesOutWhenPeerStopsReading) {
  // A peer that accepts the connection but never reads must not park
  // the writer forever — the deadline turns a wedged send_reply into a
  // dead-connection verdict.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Fd writer(fds[0]);
  Fd reader(fds[1]);
  const int small = 4096;
  ::setsockopt(writer.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(reader.get(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const int flags = ::fcntl(writer.get(), F_GETFL, 0);
  ASSERT_EQ(::fcntl(writer.get(), F_SETFL, flags | O_NONBLOCK), 0);

  const std::vector<std::uint8_t> big(4u << 20, 0xab);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(write_all(writer.get(), big.data(), big.size(), 100));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.05);  // actually parked for the deadline...
  EXPECT_LT(elapsed, 5.0);   // ...but nowhere near forever
}

// --- fairness ----------------------------------------------------------

TEST(Serve, RoundRobinKeepsSmallTenantAheadOfBigSweep) {
  // One worker: with FIFO scheduling, bob's single run would wait for
  // the whole 48-point sweep alice enqueued first. Round-robin across
  // tenant queues admits bob's run after at most one in-progress point.
  ServerConfig cfg = test_server_config();
  cfg.workers = 1;
  Server server(cfg);
  server.start();

  Client alice("127.0.0.1", server.port());
  Client bob("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sa = alice.open_session(open);
  open.tenant = "bob";
  const std::uint64_t sb = bob.open_session(open);

  const SubmitReply sub_a = alice.submit_qasm(sa, ansatz_qasm());
  const CompileReply cc_a = alice.compile(sa, sub_a.circuit_id);
  const SubmitReply sub_b = bob.submit_qasm(sb, ansatz_qasm());
  const CompileReply cc_b = bob.compile(sb, sub_b.circuit_id);

  // Post the big sweep first (pipelined, not waited). 400 points keeps
  // the single worker busy long past bob's round trip.
  constexpr int kPoints = 400;
  WireWriter sweep_body;
  sweep_body.u32(cc_a.compiled_id);
  sweep_body.u32(kPoints);
  sweep_body.u32(1);
  for (int i = 0; i < kPoints; ++i) sweep_body.f64(0.002 * i);
  const std::uint64_t sweep_req =
      alice.post(Op::sweep, sa, sweep_body.bytes());

  // Wait until the worker is observably chewing on alice's queue, then
  // issue bob's single run and *block* on it.
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::size_t queued = 0;
    for (const auto& info : bob.list_sessions()) {
      if (info.tenant == "alice") queued = info.queued;
    }
    if (queued > 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), poll_deadline)
        << "sweep never became visible in alice's queue";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const RunReply run_b = bob.run(sb, cc_b.compiled_id, {0.5});
  const auto bob_done = std::chrono::steady_clock::now();
  EXPECT_GT(run_b.norm_sq, 0.9);

  // Completion-order assertion: at the moment bob's run completed,
  // alice's sweep must still have points queued — bob did not wait for
  // the sweep to finish.
  std::size_t alice_queued_at_bob_done = 0;
  for (const auto& info : bob.list_sessions()) {
    if (info.tenant == "alice") alice_queued_at_bob_done = info.queued;
  }
  EXPECT_GT(alice_queued_at_bob_done, 0u)
      << "bob's run should complete while alice's sweep is still queued";

  EXPECT_EQ(alice.wait_status(sweep_req), Status::ok);
  const auto sweep_done = std::chrono::steady_clock::now();
  EXPECT_LT(bob_done - t0, sweep_done - t0);
  server.stop();
}

// --- cross-tenant plan sharing ----------------------------------------

TEST(Serve, TwoTenantsSameCircuitShareOnePlan) {
  Server server(test_server_config());
  server.start();

  Client alice("127.0.0.1", server.port());
  Client bob("127.0.0.1", server.port());
  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sa = alice.open_session(open);
  open.tenant = "bob";
  const std::uint64_t sb = bob.open_session(open);

  const CompileReply cc_a =
      alice.compile(sa, alice.submit_qasm(sa, ansatz_qasm()).circuit_id);
  EXPECT_FALSE(cc_a.shared_cache_hit);
  const CompileReply cc_b =
      bob.compile(sb, bob.submit_qasm(sb, ansatz_qasm()).circuit_id);
  EXPECT_TRUE(cc_b.shared_cache_hit);

  // Exactly one miss (alice's cold compile), one hit (bob's), one
  // resident plan — surfaced through the cache_stats op.
  const CacheStatsReply stats = alice.cache_stats();
  EXPECT_EQ(stats.shared_misses, 1u);
  EXPECT_EQ(stats.shared_hits, 1u);
  EXPECT_EQ(stats.shared_entries, 1u);
  EXPECT_GT(stats.shared_resident_bytes, 0u);

  // And both tenants' runs against the shared plan agree exactly.
  const RunReply run_a = alice.run(sa, cc_a.compiled_id, {0.25});
  const RunReply run_b = bob.run(sb, cc_b.compiled_id, {0.25});
  EXPECT_EQ(run_a.norm_sq, run_b.norm_sq);
  EXPECT_EQ(run_a.expectation_z, run_b.expectation_z);
  server.stop();
}

// --- drain -------------------------------------------------------------

TEST(Serve, DrainFinishesInFlightAndRefusesNew) {
  ServerConfig cfg = test_server_config();
  cfg.workers = 1;
  Server server(cfg);
  server.start();

  Client worker("127.0.0.1", server.port());
  Client control("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = worker.open_session(open);
  const CompileReply compiled =
      worker.compile(sid, worker.submit_qasm(sid, ansatz_qasm()).circuit_id);

  // A sweep in flight when drain starts — large enough that the admit
  // poll below can observe it before the worker finishes it.
  constexpr int kPoints = 400;
  WireWriter sweep_body;
  sweep_body.u32(compiled.compiled_id);
  sweep_body.u32(kPoints);
  sweep_body.u32(1);
  for (int i = 0; i < kPoints; ++i) sweep_body.f64(0.05 * i);
  const std::uint64_t sweep_req =
      worker.post(Op::sweep, sid, sweep_body.bytes());

  // Wait until the sweep is observably admitted — drain racing the
  // reader thread would otherwise refuse it before it ever queued.
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::uint32_t inflight = 0;
    for (const auto& info : control.list_sessions()) {
      if (info.tenant == "alice") inflight = info.active + info.queued;
    }
    if (inflight > 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), admit_deadline)
        << "sweep never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ...drain blocks until that sweep (all its points) completed.
  control.drain();
  EXPECT_TRUE(server.draining());

  // The in-flight sweep finished and its reply is waiting for us.
  std::vector<std::uint8_t> body;
  ASSERT_EQ(worker.wait_status(sweep_req, &body), Status::ok);
  WireReader r(body);
  EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(kPoints));

  // New data-plane work — runs and opens alike — is refused with
  // `unavailable`; introspection still answers.
  std::string message;
  WireWriter run_body;
  run_body.u32(compiled.compiled_id);
  run_body.u32(1);
  run_body.f64(0.5);
  EXPECT_EQ(worker.wait_status(
                worker.post(Op::run, sid, run_body.bytes()), nullptr,
                &message),
            Status::unavailable)
      << message;
  try {
    OpenSessionRequest late;
    late.tenant = "late";
    control.open_session(late);
    FAIL() << "expected unavailable";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::unavailable);
  }
  EXPECT_EQ(control.cache_stats().sessions, 1u);
  server.stop();
}

// --- malformed input ---------------------------------------------------

TEST(Serve, UnknownOpIsRejectedWithoutKillingConnection) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  WireWriter w;
  w.u64(77);    // request id
  w.u16(999);   // bogus op
  w.u64(0);     // session id
  ASSERT_TRUE(client.send_raw_frame(w.bytes()));
  std::string message;
  EXPECT_EQ(client.wait_status(77, nullptr, &message),
            Status::invalid_argument);
  EXPECT_NE(message.find("unknown op"), std::string::npos);

  // Same connection still works.
  OpenSessionRequest open;
  open.tenant = "alive";
  EXPECT_NE(client.open_session(open), 0u);
  server.stop();
}

TEST(Serve, TruncatedBodyYieldsInvalidArgumentNotCrash) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = client.open_session(open);

  // A run op against a live session whose body claims one value but
  // carries none: the bounds-checked reader rejects it as
  // invalid_argument instead of reading past the frame.
  WireWriter w;
  w.u64(5);
  w.u16(static_cast<std::uint16_t>(Op::run));
  w.u64(sid);
  w.u32(1);  // compiled_id
  w.u32(1);  // "one value follows" — but the frame ends here
  ASSERT_TRUE(client.send_raw_frame(w.bytes()));
  std::string message;
  EXPECT_EQ(client.wait_status(5, nullptr, &message),
            Status::invalid_argument);
  EXPECT_NE(message.find("truncated frame"), std::string::npos);

  // The same connection still serves well-formed requests.
  EXPECT_EQ(client.list_sessions().size(), 1u);

  // Daemon alive: a fresh connection round-trips too.
  Client again("127.0.0.1", server.port());
  open.tenant = "alive";
  EXPECT_NE(again.open_session(open), 0u);
  server.stop();
}

TEST(Serve, ShortHeaderDropsConnectionButDaemonSurvives) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  WireWriter w;
  w.u32(0xdeadbeef);  // 4 bytes: not even a request id
  ASSERT_TRUE(client.send_raw_frame(w.bytes()));
  // The server drops this connection (no request id to reply to).
  EXPECT_THROW(client.wait_status(1), Error);

  Client again("127.0.0.1", server.port());
  OpenSessionRequest open;
  open.tenant = "alive";
  EXPECT_NE(again.open_session(open), 0u);
  server.stop();
}

TEST(Serve, OversizeFrameDropsConnectionButDaemonSurvives) {
  ServerConfig cfg = test_server_config();
  cfg.max_frame_bytes = 1024;
  Server server(cfg);
  server.start();

  // Hand-roll a frame with a hostile length prefix; the server must
  // refuse to allocate and cut the connection.
  Fd fd = tcp_connect("127.0.0.1", server.port());
  const std::uint32_t huge = 512u << 20;
  ASSERT_TRUE(write_all(fd.get(), &huge, sizeof(huge)));
  std::vector<std::uint8_t> reply;
  EXPECT_FALSE(read_frame(fd.get(), reply));  // EOF: dropped

  Client again("127.0.0.1", server.port());
  OpenSessionRequest open;
  open.tenant = "alive";
  EXPECT_NE(again.open_session(open), 0u);
  server.stop();
}

// --- introspection -----------------------------------------------------

TEST(Serve, ListSessionsReportsHandlesAndIdleness) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = client.open_session(open);
  const SubmitReply submitted = client.submit_qasm(sid, concrete_qasm());
  const CompileReply compiled = client.compile(sid, submitted.circuit_id);
  client.run(sid, compiled.compiled_id);

  const auto sessions = client.list_sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].session_id, sid);
  EXPECT_EQ(sessions[0].tenant, "alice");
  EXPECT_EQ(sessions[0].circuits, 1u);
  EXPECT_EQ(sessions[0].compiled, 1u);
  EXPECT_EQ(sessions[0].results, 1u);
  EXPECT_GE(sessions[0].ttl_seconds, 1.0);
  server.stop();
}

TEST(Serve, ResultFifoIsBoundedOldestEvicted) {
  ServerConfig cfg = test_server_config();
  cfg.store.max_results_per_session = 2;
  Server server(cfg);
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t sid = client.open_session(open);
  const CompileReply compiled =
      client.compile(sid, client.submit_qasm(sid, ansatz_qasm()).circuit_id);
  const RunReply r1 = client.run(sid, compiled.compiled_id, {0.1});
  const RunReply r2 = client.run(sid, compiled.compiled_id, {0.2});
  const RunReply r3 = client.run(sid, compiled.compiled_id, {0.3});
  (void)r2;

  // r1 was evicted by the FIFO bound; r3 still samples.
  try {
    client.sample(sid, r1.result_id, 4);
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::not_found);
  }
  EXPECT_EQ(client.sample(sid, r3.result_id, 4).size(), 4u);
  server.stop();
}

// --- observability ----------------------------------------------------

TEST(Serve, MetricsOpReportsSortedEntriesAndTenantLatency) {
  Server server(test_server_config());
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "metrics-tenant";
  const std::uint64_t sid = client.open_session(open);
  const CompileReply compiled =
      client.compile(sid, client.submit_qasm(sid, ansatz_qasm()).circuit_id);
  (void)client.run(sid, compiled.compiled_id, {0.25});

  const MetricsReply reply = client.metrics();
  ASSERT_FALSE(reply.metrics.empty());
  for (std::size_t i = 1; i < reply.metrics.size(); ++i) {
    EXPECT_LT(reply.metrics[i - 1].name, reply.metrics[i].name);
  }

  const auto find = [&](const std::string& name) -> const MetricEntry* {
    for (const auto& m : reply.metrics)
      if (m.name == name) return &m;
    return nullptr;
  };
  // The registry is process-global, so counts are cumulative across
  // every test in this binary — assert presence and lower bounds only.
  const MetricEntry* requests = find("serve.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->kind, 0);  // counter
  EXPECT_GE(requests->count, 4u);  // open+submit+compile+run at least

  const MetricEntry* latency =
      find("serve.request_latency_us.metrics-tenant");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, 2);  // histogram
  EXPECT_GE(latency->count, 4u);
  EXPECT_GT(latency->sum, 0.0);
  EXPECT_GE(latency->p99, latency->p50);

  const MetricEntry* misses = find("core.plan_cache.misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_GE(misses->count, 1u);
  server.stop();
}

TEST(Serve, MetricsRoundTripExportsDeviceCounters) {
  // An offloading shape (8 shards through 1 GPU) makes "auto" route
  // the daemon's sessions through the device backend; its device.*
  // counters must then survive the wire round trip. The shape must
  // total the 8 qubits of the ansatz fixture.
  ServerConfig cfg = test_server_config();
  cfg.session.cluster.local_qubits = 5;
  cfg.session.cluster.regional_qubits = 3;
  cfg.session.cluster.global_qubits = 0;
  cfg.session.cluster.gpus_per_node = 1;
  Server server(cfg);
  server.start();
  Client client("127.0.0.1", server.port());

  OpenSessionRequest open;
  open.tenant = "device-tenant";
  const std::uint64_t sid = client.open_session(open);
  const CompileReply compiled =
      client.compile(sid, client.submit_qasm(sid, ansatz_qasm()).circuit_id);
  (void)client.run(sid, compiled.compiled_id, {0.42});

  const MetricsReply reply = client.metrics();
  const auto find = [&](const std::string& name) -> const MetricEntry* {
    for (const auto& m : reply.metrics)
      if (m.name == name) return &m;
    return nullptr;
  };
  // Cumulative process-wide counters: assert presence and that the
  // device path genuinely ran (nonzero traffic and launches).
  const MetricEntry* uploads = find("device.upload_bytes");
  ASSERT_NE(uploads, nullptr);
  EXPECT_EQ(uploads->kind, 0);  // counter
  EXPECT_GT(uploads->count, 0u);
  const MetricEntry* downloads = find("device.download_bytes");
  ASSERT_NE(downloads, nullptr);
  EXPECT_GT(downloads->count, 0u);
  const MetricEntry* launches = find("device.launches");
  ASSERT_NE(launches, nullptr);
  EXPECT_GT(launches->count, 0u);
  const MetricEntry* const_uploads = find("device.const_uploads");
  ASSERT_NE(const_uploads, nullptr);
  EXPECT_GT(const_uploads->count, 0u);
  server.stop();
}

TEST(Serve, AggregatePlanCacheStatsMatchesDirectSessionWalk) {
  SessionStore store(test_session_config(), StoreLimits{});
  auto alice = store.open("alice", store.base_config(),
                          std::chrono::milliseconds(60000));
  auto bob = store.open("bob", store.base_config(),
                        std::chrono::milliseconds(60000));

  // Cache traffic: alice compiles cold then warm (miss + hit), bob
  // compiles cold (miss) — all routed to the telemetry listener.
  const Circuit circuit =
      qasm::parse_with_noise(ansatz_qasm()).circuit;
  (void)alice->session().compile(circuit);
  (void)alice->session().compile(circuit);
  (void)bob->session().compile(circuit);

  const auto walk = [&store] {
    PlanCacheStats sum;
    for (const auto& s : store.snapshot()) {
      const PlanCacheStats st = s->session().plan_cache_stats();
      sum.hits += st.hits;
      sum.misses += st.misses;
      sum.evictions += st.evictions;
      sum.size += st.size;
      sum.capacity += st.capacity;
      sum.resident_bytes += st.resident_bytes;
    }
    return sum;
  };

  PlanCacheStats counted = store.aggregate_plan_cache_stats();
  PlanCacheStats walked = walk();
  EXPECT_EQ(counted.hits, walked.hits);
  EXPECT_EQ(counted.misses, walked.misses);
  EXPECT_EQ(counted.evictions, walked.evictions);
  EXPECT_EQ(counted.size, walked.size);
  EXPECT_EQ(counted.capacity, walked.capacity);
  EXPECT_EQ(counted.resident_bytes, walked.resident_bytes);
  EXPECT_EQ(counted.hits, 1u);
  EXPECT_EQ(counted.misses, 2u);

  // A departing session's final contribution is subtracted entirely —
  // the old walk's live-sessions-only semantics.
  const std::uint64_t bob_id = bob->id();
  bob.reset();
  store.erase(bob_id);
  counted = store.aggregate_plan_cache_stats();
  walked = walk();
  EXPECT_EQ(counted.hits, walked.hits);
  EXPECT_EQ(counted.misses, walked.misses);
  EXPECT_EQ(counted.evictions, walked.evictions);
  EXPECT_EQ(counted.size, walked.size);
  EXPECT_EQ(counted.capacity, walked.capacity);
  EXPECT_EQ(counted.resident_bytes, walked.resident_bytes);
  EXPECT_EQ(counted.misses, 1u);  // bob's miss left with bob
}

}  // namespace
}  // namespace atlas::serve
