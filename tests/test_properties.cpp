// Property-based tests: randomized sweeps asserting the system's core
// invariants — unitarity, pipeline-vs-reference equivalence under many
// machine shapes, remap round trips, staging/kernelization validity
// under parameter sweeps, and cost-model monotonicity.

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "circuits/families.h"
#include "core/atlas.h"
#include "exec/remap.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/greedy.h"
#include "kernelize/ordered.h"
#include "sim/reference.h"
#include "staging/stager.h"

namespace atlas {
namespace {

// --------------------------------------------------------------------------
// Unitarity: every execution path preserves the norm.

class NormPreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(NormPreservationTest, FullPipelinePreservesNorm) {
  const std::uint64_t seed = GetParam();
  const Circuit c = circuits::random_circuit(9, 50, seed);
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = 6;
  cfg.cluster.regional_qubits = 2;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 4;
  const Simulator sim(cfg);
  const auto result = sim.simulate(c);
  EXPECT_NEAR(result.state.gather().norm_sq(), 1.0, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservationTest,
                         ::testing::Range(1, 13));

// --------------------------------------------------------------------------
// Pipeline equivalence under randomized shapes.

class ShapeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ShapeSweepTest, PipelineMatchesReferenceUnderRandomShape) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919);
  const int n = 9 + static_cast<int>(rng.index(3));  // 9..11
  const int local = 5 + static_cast<int>(rng.index(n - 7));  // 5..n-3ish
  const int rest = n - local;
  const int regional = static_cast<int>(rng.index(rest + 1));
  const int global = rest - regional;
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node =
      1 << static_cast<int>(rng.index(regional + 1));  // may offload
  const Circuit c = circuits::random_circuit(n, 45, seed);
  const Simulator sim(cfg);
  const auto result = sim.simulate(c);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8)
      << "seed=" << seed << " n=" << n << " L=" << local << " R=" << regional
      << " G=" << global << " gpus=" << cfg.cluster.gpus_per_node;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSweepTest, ::testing::Range(1, 21));

// --------------------------------------------------------------------------
// Remap: any chain of layout changes is lossless.

class RemapChainTest : public ::testing::TestWithParam<int> {};

TEST_P(RemapChainTest, RandomLayoutChainRoundTrips) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 9, L = 5;
  device::ClusterConfig cc;
  cc.local_qubits = L;
  cc.regional_qubits = 2;
  cc.global_qubits = 2;
  cc.gpus_per_node = 4;
  device::Cluster cluster(cc);

  auto random_layout = [&] {
    std::vector<Qubit> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng.engine());
    exec::Layout l;
    l.num_local = L;
    l.phys_of_logical.assign(n, -1);
    l.logical_of_phys.assign(n, -1);
    for (int p = 0; p < n; ++p) {
      l.logical_of_phys[p] = order[p];
      l.phys_of_logical[order[p]] = p;
    }
    l.shard_xor = rng.index(1 << (n - L));
    return l;
  };

  const StateVector sv = StateVector::random(n, seed + 100);
  const exec::Layout start = random_layout();
  exec::DistState st = exec::DistState::scatter(sv, start);
  for (int hop = 0; hop < 4; ++hop) exec::remap(st, random_layout(), cluster);
  exec::remap(st, start, cluster);
  EXPECT_LT(st.gather().max_abs_diff(sv), 1e-12) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemapChainTest, ::testing::Range(1, 11));

TEST(RemapProperty, GatherInvariantUnderRemap) {
  // gather() must be independent of the layout the state sits in.
  Rng rng(5);
  const StateVector sv = StateVector::random(8, 11);
  device::ClusterConfig cc;
  cc.local_qubits = 5;
  cc.regional_qubits = 2;
  cc.global_qubits = 1;
  cc.gpus_per_node = 4;
  device::Cluster cluster(cc);
  exec::Layout id = exec::Layout::identity(8, 5);
  exec::DistState st = exec::DistState::scatter(sv, id);
  std::vector<Qubit> order = {7, 5, 3, 1, 0, 2, 4, 6};
  exec::Layout l2;
  l2.num_local = 5;
  l2.phys_of_logical.assign(8, -1);
  l2.logical_of_phys.assign(8, -1);
  for (int p = 0; p < 8; ++p) {
    l2.logical_of_phys[p] = order[p];
    l2.phys_of_logical[order[p]] = p;
  }
  exec::remap(st, l2, cluster);
  EXPECT_LT(st.gather().max_abs_diff(sv), 1e-12);
}

// --------------------------------------------------------------------------
// Staging: validity and stage-count sanity across the local-size sweep
// (the Fig. 9 axis) for every family.

class StagingSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StagingSweepTest, ValidAndMonotoneAcrossLocalSizes) {
  const Circuit c = circuits::make_family(GetParam(), 13);
  std::size_t prev_stages = 1000;
  for (int local = 5; local <= 13; ++local) {
    staging::MachineShape shape;
    shape.num_local = local;
    shape.num_global = std::min(2, 13 - local);
    shape.num_regional = 13 - local - shape.num_global;
    staging::StagingOptions opt;
    opt.engine = staging::StagerEngine::Bnb;
    const auto staged = staging::stage_circuit(c, shape, opt);
    staging::validate_staging(c, staged, shape);
    // More local qubits never force more stages (the ILP's optimality
    // property the paper contrasts with SnuQS's non-monotonicity).
    EXPECT_LE(staged.stages.size(), prev_stages)
        << GetParam() << " at L=" << local;
    prev_stages = staged.stages.size();
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, StagingSweepTest,
                         ::testing::ValuesIn(circuits::family_names()));

// --------------------------------------------------------------------------
// Kernelization: validity across pruning thresholds and random
// circuits; DP never loses to greedy or ordered.

class KernelizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelizePropertyTest, DpValidAndAtMostBaselinesOnRandom) {
  const std::uint64_t seed = GetParam();
  const Circuit c = circuits::random_circuit(8, 60, seed * 131);
  const auto model = kernelize::CostModel::default_model();
  for (int t : {8, 64, 500}) {
    kernelize::DpOptions opt;
    opt.prune_threshold = t;
    const auto dp = kernelize::kernelize_dp(c, model, opt);
    kernelize::validate_kernelization(c, dp, model);
    if (t == 500) {
      EXPECT_LE(dp.total_cost,
                kernelize::kernelize_greedy(c, model).total_cost + 1e-9)
          << "seed " << seed;
      EXPECT_LE(dp.total_cost,
                kernelize::kernelize_ordered(c, model).total_cost + 1e-9)
          << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelizePropertyTest,
                         ::testing::Range(1, 11));

// --------------------------------------------------------------------------
// Baseline comparisons hold across families (the benches' premises).

TEST(Property, AtlasModeledTimeAtMostQiskitEverywhere) {
  for (const auto& family : circuits::family_names()) {
    const int n = 12;
    SimulatorConfig cfg;
    cfg.cluster.local_qubits = 9;
    cfg.cluster.regional_qubits = 2;
    cfg.cluster.global_qubits = 1;
    cfg.cluster.gpus_per_node = 4;
    const Circuit c = circuits::make_family(family, n);
    const Simulator sim(cfg);
    const auto atlas_run = sim.simulate(c);
    const auto qiskit =
        baselines::run_baseline(baselines::BaselineKind::Qiskit, c, cfg);
    const int gpus = 8;
    const double ta = atlas_run.report.modeled_seconds(cfg.comm, gpus, 2);
    const double tq = qiskit.report.modeled_seconds(cfg.comm, gpus, 2);
    EXPECT_LE(ta, tq * 1.05) << family;
  }
}

TEST(Property, CommStatsAccumulate) {
  device::CommStats a, b;
  a.intra_node_bytes = 10;
  a.inter_node_bytes = 20;
  a.alltoall_rounds = 1;
  b.intra_node_bytes = 5;
  b.offload_bytes = 7;
  a += b;
  EXPECT_EQ(a.intra_node_bytes, 15u);
  EXPECT_EQ(a.inter_node_bytes, 20u);
  EXPECT_EQ(a.offload_bytes, 7u);
  EXPECT_EQ(a.alltoall_rounds, 1);
}

TEST(Property, ModeledTimeScalesDownWithGpus) {
  device::CommStats s;
  s.inter_node_bytes = 1 << 30;
  s.kernel_bytes = 1 << 30;
  s.alltoall_rounds = 1;
  const auto m = device::CommCostModel::perlmutter_like();
  const double t1 = s.modeled_comm_seconds(m, 4, 1) +
                    s.modeled_compute_seconds(m, 4);
  const double t2 = s.modeled_comm_seconds(m, 16, 4) +
                    s.modeled_compute_seconds(m, 16);
  EXPECT_LT(t2, t1);
}

// --------------------------------------------------------------------------
// Initial-state generality: EXECUTE works for arbitrary input states
// (the paper notes PARTITION does not depend on the state).

TEST(Property, ExecuteOnRandomInitialState) {
  const int n = 10;
  const Circuit c = circuits::ising(n);
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = 7;
  cfg.cluster.regional_qubits = 2;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 4;
  const Simulator sim(cfg);
  const auto plan = sim.plan(c);
  const StateVector initial = StateVector::random(n, 321);

  // Scatter the random state into stage 0's layout and execute.
  const exec::Layout layout0 = exec::Layout::for_partition(
      plan.stages.front().partition, 7, 2, exec::Layout::identity(n, 7));
  exec::DistState st = exec::DistState::scatter(initial, layout0);
  sim.execute(plan, st);
  const StateVector expected = simulate_reference(c, initial);
  EXPECT_LT(st.gather().max_abs_diff(expected), 1e-8);
}

}  // namespace
}  // namespace atlas
