// SimulationResult query-facade tests on *parameterized* circuits:
// probability/amplitude/marginal/expectation_z/sample must agree with
// the reference simulator for every binding of a compiled circuit, and
// sampling must be deterministic under a fixed Rng — all without the
// caller ever touching exec::DistState.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/atlas.h"
#include "sim/reference.h"

namespace atlas {
namespace {

SessionConfig facade_config() {
  SessionConfig cfg;
  cfg.cluster.local_qubits = 4;
  cfg.cluster.regional_qubits = 1;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 2;
  cfg.cluster.num_threads = 2;
  return cfg;
}

/// A 6-qubit parameterized circuit exercising both insular (rzz, rz)
/// and non-insular (rx, h, cx) symbolic gates.
Circuit facade_ansatz() {
  Circuit c(6, "facade_ansatz");
  const Param theta = Param::symbol("theta");
  const Param gamma = Param::symbol("gamma");
  for (Qubit q = 0; q < 6; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < 6; ++q) c.add(Gate::rzz(q, q + 1, gamma));
  for (Qubit q = 0; q < 6; ++q) c.add(Gate::rx(q, theta));
  c.add(Gate::cx(0, 3));
  c.add(Gate::rz(5, 2.0 * theta));
  return c;
}

class ResultFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ParamBinding binding{{"theta", 0.83}, {"gamma", -0.41}};
    result_ = session_.run(session_.compile(facade_ansatz()), binding);
    reference_ = simulate_reference(facade_ansatz().bind(binding));
  }

  Session session_{facade_config()};
  SimulationResult result_;
  StateVector reference_;
};

TEST_F(ResultFacadeTest, AmplitudeAndProbabilityMatchReference) {
  for (Index i : {Index{0}, Index{1}, Index{13}, Index{63}}) {
    const Amp a = result_.amplitude(i);
    EXPECT_NEAR(std::abs(a - reference_[i]), 0.0, 1e-12) << "index " << i;
    EXPECT_NEAR(result_.probability(i), std::norm(reference_[i]), 1e-12);
  }
  EXPECT_NEAR(result_.norm_sq(), 1.0, 1e-10);
}

TEST_F(ResultFacadeTest, MarginalMatchesReference) {
  const std::vector<Qubit> qubits = {1, 4};
  const std::vector<double> dist = result_.marginal(qubits);
  ASSERT_EQ(dist.size(), 4u);
  std::vector<double> expect(4, 0.0);
  for (Index i = 0; i < reference_.size(); ++i) {
    Index out = 0;
    if ((i >> 1) & 1) out |= 1;
    if ((i >> 4) & 1) out |= 2;
    expect[out] += std::norm(reference_[i]);
  }
  double total = 0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(dist[k], expect[k], 1e-10) << "outcome " << k;
    total += dist[k];
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST_F(ResultFacadeTest, ExpectationZMatchesReference) {
  for (Qubit q = 0; q < 6; ++q) {
    double expect = 0;
    for (Index i = 0; i < reference_.size(); ++i)
      expect += std::norm(reference_[i]) * (((i >> q) & 1) ? -1.0 : 1.0);
    EXPECT_NEAR(result_.expectation_z(q), expect, 1e-10) << "qubit " << q;
  }
}

TEST_F(ResultFacadeTest, SampleIsDeterministicUnderFixedRng) {
  Rng rng_a(1234), rng_b(1234), rng_c(99);
  const std::vector<Index> s1 = result_.sample(64, rng_a);
  const std::vector<Index> s2 = result_.sample(64, rng_b);
  EXPECT_EQ(s1, s2);  // same seed, bit-identical draw
  EXPECT_NE(s1, result_.sample(64, rng_c));  // and seed-sensitive

  // Every drawn basis state has nonzero probability in the reference.
  for (Index i : s1) {
    ASSERT_LT(i, reference_.size());
    EXPECT_GT(std::norm(reference_[i]), 0.0);
  }
}

TEST_F(ResultFacadeTest, FacadeAgreesAcrossBindingsOfOnePlan) {
  // One compiled plan, several bindings: the facade must track each
  // binding's physics, not the first one's.
  const CompiledCircuit compiled = session_.compile(facade_ansatz());
  for (double theta : {0.0, 0.5, 2.2}) {
    const ParamBinding b{{"theta", theta}, {"gamma", 0.3}};
    const SimulationResult r = session_.run(compiled, b);
    const StateVector ref = simulate_reference(facade_ansatz().bind(b));
    double expect = 0;
    for (Index i = 0; i < ref.size(); ++i)
      expect += std::norm(ref[i]) * (((i >> 2) & 1) ? -1.0 : 1.0);
    EXPECT_NEAR(r.expectation_z(2), expect, 1e-10) << "theta " << theta;
  }
}

}  // namespace
}  // namespace atlas
