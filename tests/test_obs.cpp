// Tests for the observability subsystem (src/obs/): metrics registry
// concurrency with exact totals, snapshot ordering/stability, kind
// collisions, histogram quantile semantics, and the tracer's
// disabled-path no-op, JSON well-formedness, and span nesting.
//
// The registry is process-global, so every test registers under names
// unique to this file ("test_obs.*") — they show up in other binaries'
// snapshots only if those binaries run these tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atlas::obs {
namespace {

// --- counters ---------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Counter& c = counter("test_obs.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncsPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
}

TEST(ObsCounter, AddAccumulates) {
  Counter& c = counter("test_obs.counter.add");
  c.add(3);
  c.add(39);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, SameNameReturnsSameCell) {
  Counter& a = counter("test_obs.counter.same");
  Counter& b = counter("test_obs.counter.same");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

// --- gauges -----------------------------------------------------------

TEST(ObsGauge, SetAndAddAreSigned) {
  Gauge& g = gauge("test_obs.gauge.signed");
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
}

// --- histograms -------------------------------------------------------

TEST(ObsHistogram, ConcurrentObservationsCountExactly) {
  Histogram& h = histogram("test_obs.hist.concurrent");
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObsPerThread; ++i)
        h.observe(static_cast<double>(t * 100 + 1));
    });
  }
  for (auto& th : threads) th.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kObsPerThread);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.quantile(0.50), snap.quantile(0.90));
  EXPECT_LE(snap.quantile(0.90), snap.quantile(0.99));
}

TEST(ObsHistogram, QuantileLandsInCoveringBucket) {
  Histogram h;  // standalone use, no registry
  for (int i = 0; i < 1000; ++i) h.observe(100.0);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, 100.0 * 1000);
  // 100 falls in the power-of-two bucket [64, 128); interpolated
  // quantiles cannot leave it.
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_GE(snap.quantile(q), 64.0);
    EXPECT_LE(snap.quantile(q), 128.0);
  }
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 0.0);
}

TEST(ObsHistogram, NegativeAndNanLandInBucketZero) {
  Histogram h;
  h.observe(-5.0);
  h.observe(std::nan(""));
  h.observe(0.5);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets[0], 3u);
}

// --- registry ---------------------------------------------------------

TEST(ObsRegistry, KindCollisionThrows) {
  counter("test_obs.registry.collision");
  EXPECT_THROW(gauge("test_obs.registry.collision"), Error);
  EXPECT_THROW(histogram("test_obs.registry.collision"), Error);
}

TEST(ObsRegistry, SnapshotIsSortedAndStable) {
  counter("test_obs.registry.zz").add(7);
  gauge("test_obs.registry.aa").set(-3);
  histogram("test_obs.registry.mm").observe(10.0);

  const MetricsReport first = MetricsRegistry::instance().snapshot();
  ASSERT_GE(first.entries.size(), 3u);
  for (std::size_t i = 1; i < first.entries.size(); ++i) {
    EXPECT_LT(first.entries[i - 1].name, first.entries[i].name);
  }

  // A second snapshot with no intervening updates is identical.
  const MetricsReport second = MetricsRegistry::instance().snapshot();
  ASSERT_EQ(first.entries.size(), second.entries.size());
  for (std::size_t i = 0; i < first.entries.size(); ++i) {
    EXPECT_EQ(first.entries[i].name, second.entries[i].name);
    EXPECT_EQ(first.entries[i].kind, second.entries[i].kind);
    EXPECT_EQ(first.entries[i].count, second.entries[i].count);
    EXPECT_EQ(first.entries[i].gauge, second.entries[i].gauge);
  }

  const auto find = [&](const std::string& name) -> const MetricValue* {
    for (const auto& v : first.entries)
      if (v.name == name) return &v;
    return nullptr;
  };
  const MetricValue* zz = find("test_obs.registry.zz");
  ASSERT_NE(zz, nullptr);
  EXPECT_EQ(zz->kind, MetricKind::counter);
  EXPECT_EQ(zz->count, 7u);
  const MetricValue* aa = find("test_obs.registry.aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_EQ(aa->kind, MetricKind::gauge);
  EXPECT_EQ(aa->gauge, -3);
  const MetricValue* mm = find("test_obs.registry.mm");
  ASSERT_NE(mm, nullptr);
  EXPECT_EQ(mm->kind, MetricKind::histogram);
  EXPECT_EQ(mm->count, 1u);
}

TEST(ObsRegistry, ToTextMentionsEveryMetric) {
  counter("test_obs.registry.text").inc();
  const std::string text =
      to_text(MetricsRegistry::instance().snapshot());
  EXPECT_NE(text.find("test_obs.registry.text"), std::string::npos);
}

// --- tracing ----------------------------------------------------------

TEST(ObsTrace, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  const std::size_t before = tracer.event_count();
  {
    TraceSpan span("test_obs.disabled");
    TraceSpan inner("test_obs.disabled.inner", 7);
  }
  tracer.record("test_obs.disabled.direct", 0, 100);
  EXPECT_EQ(tracer.event_count(), before);
}

TEST(ObsTrace, JsonIsWellFormedAndNestsSpans) {
  const std::string path = "test_obs_trace.json";
  Tracer& tracer = Tracer::instance();
  tracer.start(path);
  ASSERT_TRUE(tracer.enabled());

  // Caller-supplied monotonic timestamps: outer [1000, 9000) ns wraps
  // inner [2000, 5000) ns — nesting the exporter must preserve via
  // ts/dur (Chrome trace "X" events nest by interval containment).
  tracer.record("test_obs.outer", 1000, 8000, 3);
  tracer.record("test_obs.inner", 2000, 3000);
  // And one RAII span with real clock readings.
  { TraceSpan span("test_obs.raii"); }
  EXPECT_GE(tracer.event_count(), 3u);

  tracer.stop();  // last stop writes the file
  ASSERT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.event_count(), 0u);  // buffers cleared

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream os;
  os << in.rdbuf();
  const std::string json = os.str();
  std::remove(path.c_str());

  // Structural well-formedness: balanced braces/brackets and the
  // Chrome trace-event envelope.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test_obs.outer"), std::string::npos);
  EXPECT_NE(json.find("test_obs.inner"), std::string::npos);
  EXPECT_NE(json.find("test_obs.raii"), std::string::npos);
  // The explicit arg surfaces as args.index.
  EXPECT_NE(json.find("\"args\":{\"index\":3}"), std::string::npos);

  // Nesting: both spans were recorded on this thread, timestamps are
  // rebased to the earliest event (outer starts at ts 0), and the
  // inner span's [ts, ts+dur) interval sits inside the outer's.
  // Events are sorted by start time, so outer precedes inner.
  const std::size_t outer_pos = json.find("test_obs.outer");
  const std::size_t inner_pos = json.find("test_obs.inner");
  EXPECT_LT(outer_pos, inner_pos);
  double outer_ts = -1, outer_dur = -1, inner_ts = -1, inner_dur = -1;
  const auto field_after = [&](std::size_t from, const char* key) {
    const std::size_t at = json.find(key, from);
    EXPECT_NE(at, std::string::npos);
    return std::strtod(json.c_str() + at + std::strlen(key), nullptr);
  };
  // Events carry ts/dur before the name field; search backward from
  // each name by scanning the enclosing object start.
  const std::size_t outer_obj = json.rfind('{', outer_pos);
  const std::size_t inner_obj = json.rfind('{', inner_pos);
  outer_ts = field_after(outer_obj, "\"ts\":");
  outer_dur = field_after(outer_obj, "\"dur\":");
  inner_ts = field_after(inner_obj, "\"ts\":");
  inner_dur = field_after(inner_obj, "\"dur\":");
  EXPECT_DOUBLE_EQ(outer_ts, 0.0);  // rebased to the earliest event
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
}

TEST(ObsTrace, NestedStartsWriteOnLastStop) {
  const std::string path_a = "test_obs_trace_a.json";
  const std::string path_b = "test_obs_trace_b.json";
  Tracer& tracer = Tracer::instance();
  tracer.start(path_a);  // first path wins
  tracer.start(path_b);
  tracer.record("test_obs.nested", 0, 10);
  tracer.stop();
  EXPECT_TRUE(tracer.enabled());  // one start still active
  tracer.stop();
  EXPECT_FALSE(tracer.enabled());

  std::ifstream a(path_a);
  EXPECT_TRUE(a.good());
  EXPECT_FALSE(std::ifstream(path_b).good());
  std::remove(path_a.c_str());
}

}  // namespace
}  // namespace atlas::obs
