// Symbolic parameter tests: Param affine algebra and printing,
// ParamBinding evaluation, symbolic gates (factories, bind, matrix
// gating), Circuit-level binding, and the structural fingerprint's
// value-independence contract.

#include <gtest/gtest.h>

#include <numbers>

#include "circuits/families.h"
#include "common/error.h"
#include "ir/circuit.h"
#include "ir/param.h"
#include "opt/rewrite.h"
#include "sim/reference.h"

namespace atlas {
namespace {

// --- Param algebra ------------------------------------------------------

TEST(Param, ConstantsBehaveLikeDoubles) {
  const Param p = 0.75;  // implicit conversion
  EXPECT_TRUE(p.is_constant());
  EXPECT_EQ(p.constant_value(), 0.75);
  EXPECT_TRUE(p.symbols().empty());
  EXPECT_EQ(p.evaluate({}), 0.75);
}

TEST(Param, AffineAlgebraAndEvaluation) {
  const Param theta = Param::symbol("theta");
  const Param phi = Param::symbol("phi");
  const Param expr = 2.0 * theta - phi / 2.0 + 0.5;
  EXPECT_TRUE(expr.is_symbolic());
  EXPECT_EQ(expr.symbols(), (std::vector<std::string>{"phi", "theta"}));
  const ParamBinding binding{{"theta", 1.0}, {"phi", 4.0}};
  EXPECT_DOUBLE_EQ(expr.evaluate(binding), 2.0 - 2.0 + 0.5);
}

TEST(Param, TermsCancelToConstant) {
  const Param theta = Param::symbol("theta");
  const Param diff = theta - theta + 3.0;
  EXPECT_TRUE(diff.is_constant());
  EXPECT_EQ(diff.constant_value(), 3.0);
}

TEST(Param, NonAffineOperationsThrow) {
  const Param theta = Param::symbol("theta");
  EXPECT_THROW(theta * theta, Error);
  EXPECT_THROW(Param(1.0) / theta, Error);
  EXPECT_NO_THROW(theta * Param(2.0));
  EXPECT_NO_THROW(Param(2.0) * theta);
}

TEST(Param, EvaluationNamesTheMissingSymbol) {
  const Param expr = Param::symbol("theta") + Param::symbol("phi");
  try {
    expr.evaluate(ParamBinding{{"theta", 1.0}});
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("phi"), std::string::npos);
  }
}

TEST(Param, ConstantValueOnSymbolicThrows) {
  EXPECT_THROW(Param::symbol("theta").constant_value(), Error);
}

TEST(Param, SymbolNamesMustBeIdentifiers) {
  EXPECT_THROW(Param::symbol(""), Error);
  EXPECT_THROW(Param::symbol("my sym"), Error);
  EXPECT_THROW(Param::symbol("2theta"), Error);
  EXPECT_THROW(Param::symbol("a-b"), Error);
  EXPECT_THROW(Param::symbol("pi"), Error);  // reserved constant
  EXPECT_NO_THROW(Param::symbol("_t0"));
  EXPECT_NO_THROW(Param::symbol("theta_1"));
  EXPECT_NO_THROW(Param::symbol("$0"));  // reserved for engine slots
}

TEST(Param, ToStringRendersAffineForms) {
  const Param theta = Param::symbol("theta");
  EXPECT_EQ(Param(0.5).to_string(), "0.5");
  EXPECT_EQ(theta.to_string(), "theta");
  EXPECT_EQ((-theta).to_string(), "-theta");
  EXPECT_EQ((2.0 * theta + 0.5).to_string(), "2*theta + 0.5");
  EXPECT_EQ((theta - 0.5).to_string(), "theta - 0.5");
  EXPECT_EQ((theta + Param::symbol("phi")).to_string(), "phi + theta");
}

// --- symbolic gates -----------------------------------------------------

TEST(SymbolicGate, FactoriesAcceptSymbolsAndBind) {
  const Gate g = Gate::rx(0, Param::symbol("theta"));
  EXPECT_TRUE(g.is_parameterized());
  EXPECT_THROW(g.target_matrix(), Error);
  EXPECT_THROW(g.param_value(0), Error);

  const Gate bound = g.bind(ParamBinding{{"theta", 0.3}});
  EXPECT_FALSE(bound.is_parameterized());
  EXPECT_EQ(bound.param_value(0), 0.3);
  const Matrix expect = Gate::rx(0, 0.3).target_matrix();
  const Matrix got = bound.target_matrix();
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(got(r, c), expect(r, c));
}

TEST(SymbolicGate, InsularityIsDecidedWithoutValues) {
  // rzz is fully diagonal for any parameter value, so both qubits are
  // insular even while the parameter is a free symbol.
  const Gate g = Gate::rzz(0, 1, Param::symbol("gamma"));
  EXPECT_TRUE(g.fully_diagonal());
  EXPECT_TRUE(g.non_insular_qubits().empty());
  // rx is never diagonal; its qubit stays non-insular symbolically too.
  EXPECT_EQ(Gate::rx(2, Param::symbol("beta")).non_insular_qubits().size(),
            1u);
}

TEST(SymbolicGate, ToStringShowsTheExpression) {
  const Gate g = Gate::cp(0, 5, 2.0 * Param::symbol("theta"));
  EXPECT_EQ(g.to_string(), "cp(2*theta) q5, q0");  // control prints first
}

TEST(SymbolicGate, InverseStaysSymbolic) {
  const Gate inv = inverse_gate(Gate::rz(0, Param::symbol("theta")));
  EXPECT_EQ(inv.kind(), GateKind::RZ);
  EXPECT_TRUE(inv.is_parameterized());
  EXPECT_DOUBLE_EQ(inv.param(0).evaluate(ParamBinding{{"theta", 0.4}}), -0.4);

  const Gate u3inv =
      inverse_gate(Gate::u3(0, Param::symbol("a"), 0.2, Param::symbol("b")));
  EXPECT_EQ(u3inv.kind(), GateKind::U3);
  EXPECT_TRUE(u3inv.is_parameterized());
}

// --- symbolic circuits --------------------------------------------------

Circuit ansatz() {
  Circuit c(3, "ansatz");
  const Param theta = Param::symbol("theta");
  const Param phi = Param::symbol("phi");
  c.add(Gate::h(0));
  c.add(Gate::rx(0, theta));
  c.add(Gate::rzz(0, 1, 2.0 * phi));
  c.add(Gate::ry(2, theta + 0.25));
  c.add(Gate::cx(1, 2));
  return c;
}

TEST(SymbolicCircuit, SymbolsAndBind) {
  const Circuit c = ansatz();
  EXPECT_TRUE(c.is_parameterized());
  EXPECT_EQ(c.symbols(), (std::vector<std::string>{"phi", "theta"}));

  const Circuit bound = c.bind(ParamBinding{{"theta", 0.3}, {"phi", 0.7}});
  EXPECT_FALSE(bound.is_parameterized());
  EXPECT_EQ(bound.num_gates(), c.num_gates());
  EXPECT_DOUBLE_EQ(bound.gate(2).param_value(0), 1.4);

  // Partial bindings throw, naming the missing symbol.
  EXPECT_THROW(c.bind(ParamBinding{{"theta", 0.3}}), Error);
}

TEST(SymbolicCircuit, ReferenceSimulatorRejectsUnbound) {
  EXPECT_THROW(simulate_reference(ansatz()), Error);
  EXPECT_NO_THROW(
      simulate_reference(ansatz().bind({{"theta", 0.1}, {"phi", 0.2}})));
}

TEST(StructuralFingerprint, IgnoresParameterValuesAndSymbols) {
  Circuit a(2), b(2), c(2);
  a.add(Gate::rx(0, 0.3));
  b.add(Gate::rx(0, 0.7));
  c.add(Gate::rx(0, Param::symbol("theta")));
  EXPECT_EQ(a.structural_fingerprint(), b.structural_fingerprint());
  EXPECT_EQ(a.structural_fingerprint(), c.structural_fingerprint());
  // The value-sensitive fingerprint still tells them all apart.
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(StructuralFingerprint, SeesShape) {
  Circuit a(2), b(2), c(2);
  a.add(Gate::rx(0, 0.3));
  b.add(Gate::rx(1, 0.3));  // different qubit
  c.add(Gate::ry(0, 0.3));  // different kind
  EXPECT_NE(a.structural_fingerprint(), b.structural_fingerprint());
  EXPECT_NE(a.structural_fingerprint(), c.structural_fingerprint());
  // Two instances of a concrete family agree on both hashes.
  EXPECT_EQ(circuits::qft(6).structural_fingerprint(),
            circuits::qft(6).structural_fingerprint());
}

TEST(StructuralFingerprint, UnitaryMatricesStillEnterTheHash) {
  // An explicit Unitary's numeric content decides diagonality and thus
  // the plan, so it must stay in the structural hash.
  Circuit a(1), b(1);
  a.add(Gate::unitary({0}, Matrix::square(2, {1, 0, 0, 1})));
  b.add(Gate::unitary({0}, Matrix::square(2, {0, 1, 1, 0})));
  EXPECT_NE(a.structural_fingerprint(), b.structural_fingerprint());
}

}  // namespace
}  // namespace atlas
