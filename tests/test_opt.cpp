// The gate-level optimizer and the multi-phase compile pipeline:
// per-pass unit tests (each rewrite exact, global phase included), the
// randomized equivalence property suite across pass combinations /
// gate families / symbolic bindings, the opt_level=0 bit-identity
// regression, post-optimization plan-cache keying (equivalent authored
// circuits share one plan; a 32-point symbolic sweep compiles exactly
// once at opt_level=2), noise-twirl composition, and the per-phase
// diagnostics + dump hook.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "circuits/families.h"
#include "core/session.h"
#include "noise/channel.h"
#include "noise/density_ref.h"
#include "noise/model.h"
#include "noise/trajectory.h"
#include "opt/pass_manager.h"
#include "opt/rewrite.h"
#include "sim/reference.h"

namespace atlas {
namespace {

SessionConfig shaped(int local, int regional, int global, int opt_level = 0) {
  SessionConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = 1 << regional;
  cfg.opt_level = opt_level;
  return cfg;
}

std::vector<Amp> amplitudes(const SimulationResult& r) {
  const StateVector sv = r.state.gather();
  std::vector<Amp> out(sv.size());
  for (Index i = 0; i < sv.size(); ++i) out[i] = sv[i];
  return out;
}

/// Max |a_i - e^{ia} b_i| after aligning b's global phase on a's
/// largest amplitude. The passes are phase-exact, so this is pure
/// roundoff — but the *contract* is equivalence up to global phase.
double phase_aligned_diff(const StateVector& a, const StateVector& b) {
  EXPECT_EQ(a.size(), b.size());
  Index best = 0;
  double mag = 0;
  for (Index i = 0; i < a.size(); ++i)
    if (std::abs(a[i]) > mag) {
      mag = std::abs(a[i]);
      best = i;
    }
  if (std::abs(b[best]) < 1e-12) return 1e9;
  const Amp phase =
      (a[best] / std::abs(a[best])) / (b[best] / std::abs(b[best]));
  double d = 0;
  for (Index i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - phase * b[i]));
  return d;
}

Circuit optimize(const Circuit& c, int level,
                 const std::vector<std::string>& only = {},
                 int num_local = 5) {
  opt::OptOptions o;
  o.level = level;
  o.enable = only;
  opt::PassContext ctx;
  ctx.num_local_qubits = num_local;
  return opt::PassManager(o).run(c, ctx);
}

// --- pass framework -------------------------------------------------------

TEST(PassManager, LevelPresetsAndToggles) {
  EXPECT_TRUE(opt::default_passes(0).empty());
  EXPECT_EQ(opt::default_passes(1).size(), 3u);
  EXPECT_EQ(opt::default_passes(2).size(), 6u);
  EXPECT_THROW(opt::default_passes(3), Error);

  opt::OptOptions o;
  o.level = 2;
  o.disable = {"reorder", "resynth-1q"};
  EXPECT_EQ(opt::PassManager(o).pass_names().size(), 4u);
  o = {};
  o.enable = {"cancel-inverses"};
  EXPECT_EQ(opt::PassManager(o).pass_names(),
            std::vector<std::string>{"cancel-inverses"});
  o = {};
  o.enable = {"no-such-pass"};
  EXPECT_THROW(opt::PassManager{o}, Error);
  for (const char* name :
       {"cancel-inverses", "merge-rotations", "block2q", "resynth-1q",
        "drop-identities", "reorder"})
    EXPECT_TRUE(opt::pass_registry().contains(name)) << name;
}

TEST(PassManager, LevelZeroIsAnExactPassThrough) {
  const Circuit c = circuits::random_circuit(5, 40, 7);
  const Circuit oc = optimize(c, 0);
  EXPECT_EQ(oc.fingerprint(), c.fingerprint());
  EXPECT_EQ(oc.num_gates(), c.num_gates());
}

// --- cancel-inverses ------------------------------------------------------

TEST(CancelInverses, AdjacentAndAcrossCommutingDiagonals) {
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::h(0));          // adjacent pair
  c.add(Gate::s(1));
  c.add(Gate::rz(0, 0.5));
  c.add(Gate::cz(0, 1));      // commutes with both rz's
  c.add(Gate::rz(0, -0.5));   // cancels across the cz
  c.add(Gate::sdg(1));        // cancels s across commuting neighbors
  const Circuit oc = optimize(c, 1);
  ASSERT_EQ(oc.num_gates(), 1);
  EXPECT_EQ(oc.gate(0).kind(), GateKind::CZ);
}

TEST(CancelInverses, SymbolicRotationPairsCancelForAnyBinding) {
  const Param theta = Param::symbol("theta");
  Circuit c(2);
  c.add(Gate::rzz(0, 1, theta));
  c.add(Gate::rzz(1, 0, -theta));  // symmetric qubit order still matches
  c.add(Gate::cx(0, 1));
  c.add(Gate::cx(0, 1));
  EXPECT_EQ(optimize(c, 1).num_gates(), 0);
}

TEST(CancelInverses, NonCommutingBlockerPreservesThePair) {
  Circuit c(1);
  c.add(Gate::h(0));
  c.add(Gate::t(0));  // does not commute with h; blocks the scan
  c.add(Gate::h(0));
  EXPECT_EQ(optimize(c, 1, {}, 1).num_gates(), 3);
}

// --- merge-rotations ------------------------------------------------------

TEST(MergeRotations, AccumulatesAffineExpressionsAcrossCommuters) {
  const Param theta = Param::symbol("theta");
  Circuit c(2);
  c.add(Gate::rz(0, theta));
  c.add(Gate::cx(0, 1));       // rz rides the control side
  c.add(Gate::rz(0, 2.0 * theta + 0.25));
  const Circuit oc = optimize(c, 1);
  ASSERT_EQ(oc.num_gates(), 2);
  EXPECT_EQ(oc.gate(0).kind(), GateKind::RZ);
  EXPECT_EQ(oc.gate(0).param(0), 3.0 * theta + 0.25);
}

TEST(MergeRotations, ZeroSumDropsTheGateEntirely) {
  Circuit c(2);
  c.add(Gate::crx(0, 1, 0.7));
  c.add(Gate::crx(0, 1, -0.7));
  c.add(Gate::cp(0, 1, 0.3));
  c.add(Gate::cp(1, 0, 0.4));  // cp is qubit-symmetric
  const Circuit oc = optimize(c, 1);
  ASSERT_EQ(oc.num_gates(), 1);
  EXPECT_EQ(oc.gate(0).kind(), GateKind::CP);
  EXPECT_EQ(oc.gate(0).param(0), Param(0.7));
}

// --- block2q --------------------------------------------------------------

TEST(Block2q, CxRzCxBecomesRzzSymbolically) {
  const Param theta = Param::symbol("theta");
  Circuit c(2);
  c.add(Gate::cx(0, 1));
  c.add(Gate::rz(1, theta));
  c.add(Gate::cx(0, 1));
  const Circuit oc = optimize(c, 2);
  ASSERT_EQ(oc.num_gates(), 1);
  EXPECT_EQ(oc.gate(0).kind(), GateKind::RZZ);
  EXPECT_EQ(oc.gate(0).param(0), theta);
  // Exactness at a binding (global phase included -> max_abs_diff).
  const ParamBinding b{{"theta", 0.83}};
  EXPECT_LT(simulate_reference(oc.bind(b))
                .max_abs_diff(simulate_reference(c.bind(b))),
            1e-12);
}

TEST(Block2q, ConstantMiddlesFoldToOneInsularDiagonal) {
  Circuit c(3);
  c.add(Gate::h(0));  // populate amplitudes
  c.add(Gate::h(1));
  c.add(Gate::cx(0, 1));
  c.add(Gate::s(1));
  c.add(Gate::p(1, 0.4));
  c.add(Gate::cx(0, 1));
  const Circuit oc = optimize(c, 2);
  // h h + one two-qubit diagonal Unitary.
  ASSERT_EQ(oc.num_gates(), 3);
  EXPECT_EQ(oc.gate(2).kind(), GateKind::Unitary);
  EXPECT_TRUE(oc.gate(2).fully_diagonal());
  EXPECT_TRUE(oc.gate(2).non_insular_qubits().empty());
  EXPECT_LT(simulate_reference(oc).max_abs_diff(simulate_reference(c)),
            1e-12);
}

TEST(Block2q, SymbolicPhaseMiddleLowersToInsularTriple) {
  const Param x = Param::symbol("x");
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::h(1));
  c.add(Gate::cx(0, 1));
  c.add(Gate::p(1, x));
  c.add(Gate::cx(0, 1));
  const Circuit oc = optimize(c, 2);
  ASSERT_EQ(oc.num_gates(), 5);  // count-neutral, but every gate insular
  for (int i = 2; i < 5; ++i)
    EXPECT_TRUE(oc.gate(i).non_insular_qubits().empty()) << i;
  const ParamBinding b{{"x", 1.9}};
  EXPECT_LT(simulate_reference(oc.bind(b))
                .max_abs_diff(simulate_reference(c.bind(b))),
            1e-12);
}

// --- resynth-1q / drop-identities ----------------------------------------

TEST(Resynth1q, ConstantRunCollapsesToOneExactGate) {
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::s(0));
  c.add(Gate::cx(1, 0));  // breaks the run on qubit 0
  c.add(Gate::t(0));
  c.add(Gate::rx(0, 0.3));
  c.add(Gate::ry(0, -0.9));
  const Circuit oc = optimize(c, 2, {}, 1);
  ASSERT_EQ(oc.num_gates(), 3);
  EXPECT_EQ(oc.gate(0).kind(), GateKind::Unitary);
  EXPECT_EQ(oc.gate(2).kind(), GateKind::Unitary);
  EXPECT_LT(simulate_reference(oc).max_abs_diff(simulate_reference(c)),
            1e-12);  // exact: no global phase dropped
}

TEST(Resynth1q, SymbolicGatesBreakRuns) {
  Circuit c(1);
  c.add(Gate::h(0));
  c.add(Gate::rz(0, Param::symbol("a")));
  c.add(Gate::h(0));
  EXPECT_EQ(optimize(c, 2, {}, 1).num_gates(), 3);
}

TEST(DropIdentities, ExactIdentitiesVanishPhasesStay) {
  Circuit c(2);
  c.add(Gate::rx(0, 0.0));
  c.add(Gate::cp(0, 1, 0.0));
  c.add(Gate::u3(1, 0.0, 0.0, 0.0));
  c.add(Gate::unitary({0}, Matrix::identity(2)));
  EXPECT_EQ(optimize(c, 1).num_gates(), 0);

  // A scalar e^{ia} I gate is NOT identity under the exact contract...
  Matrix phase = Matrix::identity(2);
  phase(0, 0) = phase(1, 1) = Amp(0, 1);
  Circuit ph(1);
  ph.add(Gate::unitary({0}, phase));
  EXPECT_EQ(optimize(ph, 1).num_gates(), 1);
  // ...but drops when the caller opts into ray equivalence.
  opt::OptOptions o;
  o.level = 1;
  o.pass.up_to_global_phase = true;
  opt::PassContext ctx;
  EXPECT_EQ(opt::PassManager(o).run(ph, ctx).num_gates(), 0);
}

// --- reorder --------------------------------------------------------------

TEST(Reorder, NeverWorsensAndSometimesWinsStages) {
  // The commutation-relaxed schedule may regroup gates; the pass keeps
  // its candidate only when the staging proxy strictly improves, so
  // session-level stage counts can only go down.
  const Session s0(shaped(5, 2, 3, /*opt_level=*/0));
  const Session s2(shaped(5, 2, 3, /*opt_level=*/2));
  bool improved = false;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const Circuit c = circuits::random_circuit(10, 80, seed);
    const std::size_t st0 = s0.compile(c).plan()->stages.size();
    const std::size_t st2 = s2.compile(c).plan()->stages.size();
    EXPECT_LE(st2, st0) << "seed " << seed;
    improved = improved || st2 < st0;
  }
  EXPECT_TRUE(improved);
}

TEST(Reorder, PreservesTheOperatorExactly) {
  for (std::uint64_t seed : {11, 12, 13}) {
    const Circuit c = circuits::random_circuit(7, 60, seed);
    const Circuit oc = optimize(c, 0, {"reorder"}, 3);
    EXPECT_EQ(oc.num_gates(), c.num_gates());
    EXPECT_LT(simulate_reference(oc).max_abs_diff(simulate_reference(c)),
              1e-10)
        << "seed " << seed;
  }
}

// --- randomized equivalence property suite --------------------------------

/// Symbolizes ~30% of rotation parameters (plain symbols and affine
/// combinations), returning the rewritten circuit and the binding that
/// reproduces the original values.
Circuit symbolize(const Circuit& c, std::uint64_t seed, ParamBinding& binding) {
  Rng rng(seed);
  Circuit out(c.num_qubits(), c.name());
  int next = 0;
  for (const Gate& g : c.gates()) {
    if (g.params().empty() || rng.uniform() > 0.3) {
      out.add(g);
      continue;
    }
    std::vector<Param> params;
    for (const Param& p : g.params()) {
      if (!p.is_constant()) {
        params.push_back(p);
        continue;
      }
      // Built by append to dodge GCC 12's -Wrestrict false positive on
      // literal + rvalue-string concatenation (see slot_symbol_name).
      std::string name = "s";
      name += std::to_string(next++);
      if (rng.uniform() < 0.5) {
        binding.set(name, p.constant_term());
        params.push_back(Param::symbol(name));
      } else {
        // value = 2 * sym + 0.125 -> sym = (value - 0.125) / 2.
        binding.set(name, (p.constant_term() - 0.125) / 2.0);
        params.push_back(2.0 * Param::symbol(name) + 0.125);
      }
    }
    out.add(g.with_params(std::move(params)));
  }
  return out;
}

TEST(OptimizerProperty, EquivalentAcrossPassCombinationsAndBindings) {
  const std::vector<std::vector<std::string>> combos = {
      {"cancel-inverses"},
      {"merge-rotations"},
      {"block2q"},
      {"resynth-1q"},
      {"drop-identities"},
      {"reorder"},
      {"cancel-inverses", "merge-rotations", "drop-identities"},
      {"merge-rotations", "block2q", "resynth-1q"},
      {"cancel-inverses", "merge-rotations", "block2q", "resynth-1q",
       "drop-identities", "reorder"},
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Circuit concrete = circuits::random_circuit(6, 40, 100 + seed);
    const StateVector expected = simulate_reference(concrete);
    ParamBinding binding;
    const Circuit symbolic = symbolize(concrete, 200 + seed, binding);
    for (std::size_t ci = 0; ci < combos.size(); ++ci) {
      const Circuit oc = optimize(symbolic, 0, combos[ci], 3);
      EXPECT_LE(oc.num_gates(), concrete.num_gates());
      const Circuit bound = oc.bind(binding);
      EXPECT_LT(phase_aligned_diff(expected, simulate_reference(bound)),
                1e-8)
          << "seed " << seed << " combo " << ci;
    }
    // Full level presets over the same instances.
    for (int level : {1, 2}) {
      const Circuit oc = optimize(symbolic, level);
      EXPECT_LT(phase_aligned_diff(expected,
                                   simulate_reference(oc.bind(binding))),
                1e-8)
          << "seed " << seed << " level " << level;
    }
  }
}

TEST(OptimizerProperty, FamiliesStayEquivalentAtLevel2) {
  for (const std::string& name : circuits::family_names()) {
    const Circuit c = circuits::make_family(name, 8);
    const Circuit oc = optimize(c, 2);
    EXPECT_LE(oc.num_gates(), c.num_gates()) << name;
    EXPECT_LT(phase_aligned_diff(simulate_reference(c),
                                 simulate_reference(oc)),
              1e-8)
        << name;
  }
}

// --- opt_level=0 bit-identity regression ----------------------------------

TEST(OptLevelZero, BitIdenticalToTheValueKeyedPlanPath) {
  // The refactored pipeline at opt_level 0 must execute the exact
  // physics of the pre-optimizer engine: the canonical slot plan of
  // compile()+run() replays bit-for-bit against the legacy
  // value-embedded plan() + execute() pipeline.
  const Session session(shaped(4, 1, 1));
  const Circuit c = circuits::ising(6);
  const SimulationResult via_simulate = session.simulate(c);
  const auto plan = session.plan(c);
  exec::DistState state = session.executor().initial_state(*plan,
                                                           session.cluster());
  session.execute(*plan, state);
  EXPECT_EQ(via_simulate.state.gather().amplitudes(),
            state.gather().amplitudes());
  // And the handle reports a pass-through compile.
  const CompiledCircuit compiled = session.compile(c);
  EXPECT_EQ(compiled.optimized_circuit().fingerprint(), c.fingerprint());
  EXPECT_EQ(compiled.diagnostics().opt.gates_before,
            compiled.diagnostics().opt.gates_after);
}

// --- post-optimization plan-cache keying ----------------------------------

TEST(PlanKeying, EquivalentAuthoredCircuitsShareOnePlan) {
  const Session session(shaped(4, 1, 1, /*opt_level=*/2));
  Circuit split(6), merged(6);
  for (Qubit q = 0; q < 6; ++q) {
    split.add(Gate::h(q));
    split.add(Gate::rz(q, 0.3));
    split.add(Gate::rz(q, 0.4));  // merges into one rz
  }
  for (Qubit q = 0; q < 6; ++q) {
    merged.add(Gate::h(q));
    merged.add(Gate::rz(q, 0.7));
  }
  EXPECT_EQ(session.plan_key(split), session.plan_key(merged));
  const CompiledCircuit a = session.compile(split);
  const CompiledCircuit b = session.compile(merged);
  EXPECT_EQ(a.plan().get(), b.plan().get());
  EXPECT_EQ(session.plan_cache_stats().misses, 1u);
  EXPECT_EQ(session.plan_cache_stats().hits, 1u);
  // Same physics, different slot expressions per handle.
  EXPECT_EQ(amplitudes(session.run(a)), amplitudes(session.run(b)));
}

/// A 6-qubit two-symbol ansatz with real optimization surface: mergeable
/// rz pairs and CX-conjugated rz blocks.
Circuit opt_ansatz() {
  const Param theta = Param::symbol("theta");
  const Param gamma = Param::symbol("gamma");
  Circuit c(6, "opt_ansatz");
  for (Qubit q = 0; q < 6; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q < 6; ++q) {
    c.add(Gate::rz(q, theta));
    c.add(Gate::rz(q, 0.5 * gamma));  // merges with the previous rz
  }
  for (Qubit q = 0; q + 1 < 6; ++q) {
    c.add(Gate::cx(q, q + 1));
    c.add(Gate::rz(q + 1, gamma));    // block2q -> rzz
    c.add(Gate::cx(q, q + 1));
  }
  for (Qubit q = 0; q < 6; ++q) c.add(Gate::rx(q, theta));
  return c;
}

TEST(PlanKeying, SymbolicSweepAtLevel2CompilesExactlyOnePlan) {
  SessionConfig cfg = shaped(4, 1, 1, /*opt_level=*/2);
  cfg.dispatch_threads = 4;
  const Session session(cfg);
  const Circuit ansatz = opt_ansatz();
  const CompiledCircuit compiled = session.compile(ansatz);
  // The optimizer shrank the structure and the slot table follows the
  // optimized circuit.
  EXPECT_LT(compiled.optimized_circuit().num_gates(), ansatz.num_gates());
  EXPECT_EQ(compiled.symbols(),
            (std::vector<std::string>{"gamma", "theta"}));

  std::vector<ParamBinding> bindings;
  for (int i = 0; i < 32; ++i)
    bindings.push_back(ParamBinding{}
                           .set("theta", 0.07 * i - 1.0)
                           .set("gamma", 0.9 - 0.05 * i));
  const auto results = session.sweep(compiled, bindings);
  EXPECT_EQ(session.plan_cache_stats().misses, 1u);
  ASSERT_EQ(results.size(), bindings.size());
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{31}}) {
    EXPECT_LT(phase_aligned_diff(
                  simulate_reference(ansatz.bind(bindings[i])),
                  results[i].state.gather()),
              1e-8)
        << "point " << i;
  }
}

// --- noise-twirl composition ----------------------------------------------

TEST(NoiseCompose, TwirlBatchStillSharesOnePlanAtLevel2) {
  Circuit c(5, "noisy_opt");
  for (Qubit q = 0; q < 5; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < 5; ++q) c.add(Gate::cx(q, q + 1));
  for (Qubit q = 0; q < 5; ++q) c.add(Gate::ry(q, 0.2 + 0.1 * q));
  noise::NoiseModel model;
  model.after_all_gates(noise::KrausChannel::depolarizing(0.05));

  // Non-const: clear_plan_cache() below mutates observable state.
  Session session(shaped(4, 1, 0, /*opt_level=*/2));
  const noise::TrajectoryProgram prog =
      noise::TrajectoryProgram::build(c, model);
  ASSERT_TRUE(prog.pauli_fast_path());
  // The twirl slot-gates are symbolic, so the optimizer leaves them in
  // place and every compile of the twirled circuit shares one entry.
  std::shared_ptr<const exec::ExecutionPlan> shared_plan;
  for (int i = 0; i < 8; ++i) {
    const CompiledCircuit compiled = session.compile(prog.twirled());
    if (!shared_plan) shared_plan = compiled.plan();
    EXPECT_EQ(compiled.plan().get(), shared_plan.get()) << i;
  }
  EXPECT_EQ(session.plan_cache_stats().misses, 1u);
  EXPECT_EQ(session.plan_cache_stats().hits, 7u);

  // End to end: a run_noisy batch on the optimizing session plans once
  // and still converges on the exact density reference.
  session.clear_plan_cache();
  const std::uint64_t misses_before = session.plan_cache_stats().misses;
  noise::NoisyRunOptions opts;
  opts.trajectories = 800;
  const noise::NoisyResult est = session.run_noisy(c, model, opts);
  EXPECT_EQ(session.plan_cache_stats().misses, misses_before + 1);
  const noise::DensityMatrix rho = noise::simulate_density(c, model);
  for (Qubit q = 0; q < 5; ++q) {
    const noise::Estimate z = est.expectation_z(q);
    EXPECT_LE(std::abs(z.value - rho.expectation_z(q)),
              5 * z.std_error + 1e-9)
        << q;
  }
}

// --- diagnostics + dump hook ----------------------------------------------

TEST(Pipeline, DiagnosticsAndDumpHookSeeEveryPhase) {
  std::vector<std::string> dumped;
  SessionConfig cfg = shaped(4, 1, 1, /*opt_level=*/2);
  cfg.compile_dump = [&](const CompileDump& d) {
    dumped.push_back(d.phase);
    if (d.phase == "optimize" || d.phase == "canonicalize") {
      EXPECT_NE(d.circuit, nullptr);
    }
    if (d.phase == "stage") {
      EXPECT_NE(d.staged, nullptr);
    }
    if (d.phase == "kernelize" || d.phase == "program") {
      EXPECT_NE(d.plan, nullptr);
    }
  };
  const Session session(cfg);
  const Circuit c = circuits::ising(6);

  const CompiledCircuit cold = session.compile(c);
  EXPECT_EQ(dumped, (std::vector<std::string>{
                        "optimize", "canonicalize", "stage", "kernelize",
                        "program"}));
  const CompileDiagnostics& diag = cold.diagnostics();
  ASSERT_EQ(diag.phases.size(), 5u);
  EXPECT_FALSE(diag.plan_cached);
  EXPECT_EQ(diag.phases[0].phase, "optimize");
  EXPECT_EQ(diag.phases[0].gates_in, c.num_gates());
  EXPECT_LT(diag.phases[0].gates_out, c.num_gates());  // ising shrinks
  EXPECT_EQ(diag.num_stages, cold.plan()->stages.size());
  EXPECT_GT(diag.opt.gates_before, diag.opt.gates_after);
  EXPECT_FALSE(diag.opt.passes.empty());
  for (const CompilePhaseTiming& p : diag.phases)
    EXPECT_GE(p.seconds, 0.0) << p.phase;

  // A cache hit skips stage/kernelize and says so.
  dumped.clear();
  const CompiledCircuit warm = session.compile(c);
  EXPECT_EQ(dumped, (std::vector<std::string>{"optimize", "canonicalize",
                                              "program"}));
  EXPECT_TRUE(warm.diagnostics().plan_cached);
  EXPECT_EQ(warm.plan().get(), cold.plan().get());
}

TEST(Pipeline, InvalidHandleGuardsNewAccessors) {
  const CompiledCircuit invalid;
  EXPECT_THROW(invalid.optimized_circuit(), Error);
  EXPECT_THROW(invalid.diagnostics(), Error);
}

TEST(Pipeline, OptLevelValidated) {
  SessionConfig cfg = shaped(4, 1, 1);
  cfg.opt_level = 3;
  EXPECT_THROW(Session{cfg}, Error);
  cfg.opt_level = -1;
  EXPECT_THROW(Session{cfg}, Error);
}

}  // namespace
}  // namespace atlas
