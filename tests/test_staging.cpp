// Staging tests: reduction correctness, ILP model (Eq. 3-11), the
// specialized branch-and-bound engine, minimality cross-validation,
// and the SnuQS baseline.

#include <gtest/gtest.h>

#include "circuits/families.h"
#include "common/bits.h"
#include "staging/reduce.h"
#include "staging/snuqs.h"
#include "staging/stager.h"

namespace atlas {
namespace staging {
namespace {

MachineShape shape_of(int n, int local, int regional, int global) {
  MachineShape s;
  s.num_local = local;
  s.num_regional = regional;
  s.num_global = global;
  EXPECT_EQ(s.total(), n);
  return s;
}

TEST(Reduce, InsularGatesContracted) {
  Circuit c(3);
  c.add(Gate::h(0));        // non-insular {0}
  c.add(Gate::cz(0, 1));    // fully insular -> contracted
  c.add(Gate::h(1));        // non-insular {1}, depends on h(0) via cz
  const ReducedCircuit rc = reduce(c);
  ASSERT_EQ(rc.gates.size(), 2u);
  EXPECT_EQ(rc.reduced_of_original[1], -1);
  // h(1) must inherit the dependency on h(0) through the contracted cz.
  ASSERT_EQ(rc.gates[1].preds.size(), 1u);
  EXPECT_EQ(rc.gates[1].preds[0], 0);
}

TEST(Reduce, SubsumptionMerge) {
  Circuit c(2);
  c.add(Gate::h(0));           // reduced gate 0, ni {0}
  c.add(Gate::ry(0, 0.5));     // ni {0}, single pred -> merged into 0
  c.add(Gate::h(1));           // reduced gate 1
  const ReducedCircuit rc = reduce(c);
  ASSERT_EQ(rc.gates.size(), 2u);
  EXPECT_EQ(rc.gates[0].originals.size(), 2u);
  EXPECT_EQ(rc.reduced_of_original[1], 0);
}

TEST(Reduce, QftCollapsesToHChain) {
  // In QFT all cp gates are insular; the model is just the n H gates
  // in a dependency chain.
  const Circuit c = circuits::qft(8);
  const ReducedCircuit rc = reduce(c);
  EXPECT_EQ(rc.gates.size(), 8u);
  for (const auto& g : rc.gates) EXPECT_EQ(popcount(g.ni_mask), 1);
}

TEST(Reduce, AssignOriginalStagesRespectsDependencies) {
  const Circuit c = circuits::qft(6);
  const ReducedCircuit rc = reduce(c);
  std::vector<int> stage_of_reduced(rc.gates.size());
  for (std::size_t g = 0; g < rc.gates.size(); ++g)
    stage_of_reduced[g] = static_cast<int>(g / 3);
  const auto stages = assign_original_stages(c, rc, stage_of_reduced);
  for (const auto& [a, b] : c.dependency_edges())
    EXPECT_LE(stages[a], stages[b]);
}

// ---------------------------------------------------------------------------
// Engine-level tests. Every result must pass validate_staging.

class StagingFamilyTest
    : public ::testing::TestWithParam<std::tuple<std::string, StagerEngine>> {};

TEST_P(StagingFamilyTest, ProducesValidStaging) {
  const auto& [family, engine] = GetParam();
  const int n = 10;
  const Circuit c = circuits::make_family(family, n);
  const MachineShape shape = shape_of(n, 6, 2, 2);
  StagingOptions opt;
  opt.engine = engine;
  const StagedCircuit staged = stage_circuit(c, shape, opt);
  validate_staging(c, staged, shape);
  EXPECT_GE(staged.stages.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    BnbAllFamilies, StagingFamilyTest,
    ::testing::Combine(::testing::ValuesIn(circuits::family_names()),
                       ::testing::Values(StagerEngine::Bnb)));

INSTANTIATE_TEST_SUITE_P(
    SnuqsAllFamilies, StagingFamilyTest,
    ::testing::Combine(::testing::ValuesIn(circuits::family_names()),
                       ::testing::Values(StagerEngine::SnuQS)));

TEST(Staging, SingleStageWhenEverythingFitsLocally) {
  const Circuit c = circuits::ghz(6);
  const StagedCircuit staged = stage_circuit(c, shape_of(6, 6, 0, 0));
  EXPECT_EQ(staged.stages.size(), 1u);
  EXPECT_EQ(staged.comm_cost, 0.0);
}

TEST(Staging, GhzChainStageCountMatchesPrefixPacking) {
  // GHZ's reduced model is a CX-target chain; with L locals a stage
  // covers at most L new qubits, and the first stage covers L
  // (including qubit 0 via H). Minimal stages = ceil((n-1)/(L-?)).
  // Cross-check the engine against the ILP on a small instance.
  const int n = 8;
  const Circuit c = circuits::ghz(n);
  const MachineShape shape = shape_of(n, 4, 2, 2);
  StagingOptions bnb;
  bnb.engine = StagerEngine::Bnb;
  const StagedCircuit via_bnb = stage_circuit(c, shape, bnb);
  StagingOptions ilp;
  ilp.engine = StagerEngine::Ilp;
  const StagedCircuit via_ilp = stage_circuit(c, shape, ilp);
  validate_staging(c, via_bnb, shape);
  validate_staging(c, via_ilp, shape);
  EXPECT_EQ(via_bnb.stages.size(), via_ilp.stages.size());
}

struct CrossCase {
  std::string name;
  Circuit circuit;
  MachineShape shape;
};

std::vector<CrossCase> cross_cases() {
  std::vector<CrossCase> cases;
  cases.push_back({"ghz8_L4", circuits::ghz(8), shape_of(8, 4, 2, 2)});
  cases.push_back({"dj7_L4", circuits::dj(7), shape_of(7, 4, 2, 1)});
  cases.push_back({"wstate6_L3", circuits::wstate(6), shape_of(6, 3, 2, 1)});
  cases.push_back(
      {"graphstate7_L4", circuits::graphstate(7), shape_of(7, 4, 2, 1)});
  cases.push_back({"qft9_L5", circuits::qft(9), shape_of(9, 5, 2, 2)});
  cases.push_back(
      {"random8", circuits::random_circuit(8, 25, 77), shape_of(8, 5, 2, 1)});
  cases.push_back(
      {"random7b", circuits::random_circuit(7, 18, 99), shape_of(7, 4, 2, 1)});
  return cases;
}

class IlpVsBnbTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpVsBnbTest, StageCountsAgree) {
  // The ILP is exact (Theorem 1: minimum feasible stage count). The
  // specialized engine must match it on every small instance.
  const CrossCase cse = cross_cases()[GetParam()];
  StagingOptions ilp_opt;
  ilp_opt.engine = StagerEngine::Ilp;
  ilp_opt.ilp.node_budget = 200000;
  const StagedCircuit via_ilp = stage_circuit(cse.circuit, cse.shape, ilp_opt);
  StagingOptions bnb_opt;
  bnb_opt.engine = StagerEngine::Bnb;
  const StagedCircuit via_bnb = stage_circuit(cse.circuit, cse.shape, bnb_opt);
  validate_staging(cse.circuit, via_ilp, cse.shape);
  validate_staging(cse.circuit, via_bnb, cse.shape);
  EXPECT_EQ(via_bnb.stages.size(), via_ilp.stages.size()) << cse.name;
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, IlpVsBnbTest,
                         ::testing::Range(0, 7));

TEST(Staging, BnbNeverWorseThanSnuqsOnFamilies) {
  // Theorem 1 + Fig. 9: the optimizing stager returns at most as many
  // stages as the heuristic baseline.
  for (const auto& family : circuits::family_names()) {
    const int n = 12;
    const Circuit c = circuits::make_family(family, n);
    const MachineShape shape = shape_of(n, 7, 2, 3);
    StagingOptions opt;
    opt.engine = StagerEngine::Bnb;
    const auto atlas_staged = stage_circuit(c, shape, opt);
    const auto snuqs_staged = stage_with_snuqs(c, shape);
    validate_staging(c, atlas_staged, shape);
    validate_staging(c, snuqs_staged, shape);
    EXPECT_LE(atlas_staged.stages.size(), snuqs_staged.stages.size())
        << family;
  }
}

TEST(Staging, CommCostConsistentWithPartitions) {
  const Circuit c = circuits::qft(10);
  const MachineShape shape = shape_of(10, 5, 3, 2);
  const StagedCircuit staged = stage_circuit(c, shape);
  EXPECT_DOUBLE_EQ(staged.comm_cost,
                   communication_cost(staged.stages, shape.cost_factor));
}

TEST(Staging, ThrowsWhenGateCannotFit) {
  Circuit c(5);
  // A 3-qubit non-insular gate (fused Hadamards) with only 2 local
  // qubits. (An identity/diagonal matrix would be insular and legal.)
  const Matrix h = Gate::h(0).target_matrix();
  c.add(Gate::unitary({0, 1, 2}, h.kron(h).kron(h)));
  EXPECT_THROW(stage_circuit(c, shape_of(5, 2, 2, 1)), Error);
}

TEST(Staging, LargeCircuitCompletesQuickly) {
  // The engine must scale to paper-size circuits (vqc@31 has ~2.9k
  // gates before reduction).
  const Circuit c = circuits::vqc(31);
  const MachineShape shape = shape_of(31, 25, 2, 4);
  const StagedCircuit staged = stage_circuit(c, shape);
  validate_staging(c, staged, shape);
  EXPECT_GE(staged.stages.size(), 2u);
}

TEST(Snuqs, WorseOrEqualWithMoreLocals) {
  // Sanity on the baseline: it always yields a valid staging across a
  // sweep of local sizes.
  const Circuit c = circuits::ising(12);
  for (int local = 4; local <= 12; ++local) {
    MachineShape shape;
    shape.num_local = local;
    shape.num_global = std::min(2, 12 - local);
    shape.num_regional = 12 - local - shape.num_global;
    const auto staged = stage_with_snuqs(c, shape);
    validate_staging(c, staged, shape);
  }
}

}  // namespace
}  // namespace staging
}  // namespace atlas
