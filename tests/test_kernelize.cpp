// Kernelization tests: cost model, attachment preprocessing, the
// KERNELIZE DP (validity, optimality vs brute force on tiny circuits,
// Theorem 6 vs ORDEREDKERNELIZE), and the baselines.

#include <gtest/gtest.h>

#include <limits>

#include "circuits/families.h"
#include "common/bits.h"
#include "kernelize/attach.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/greedy.h"
#include "kernelize/ordered.h"

namespace atlas {
namespace kernelize {
namespace {

TEST(CostModel, DefaultsAreSane) {
  const CostModel m = CostModel::default_model();
  EXPECT_EQ(m.max_fusion_qubits + 1, static_cast<int>(m.fusion_cost.size()));
  // Costs grow with width.
  for (int k = 2; k <= m.max_fusion_qubits; ++k)
    EXPECT_GE(m.fusion_cost[k], m.fusion_cost[k - 1]);
  // The paper's greedy baseline packs to 5 qubits because that is the
  // most cost-efficient width.
  EXPECT_EQ(m.most_efficient_fusion_size(), 5);
}

TEST(CostModel, ShmCostByTargets) {
  const CostModel m = CostModel::default_model();
  EXPECT_LT(m.shm_gate_cost(Gate::h(0)), m.shm_gate_cost(Gate::swap(0, 1)));
  // Controls resolved in scratch memory: cx costs like a 1-target gate.
  EXPECT_DOUBLE_EQ(m.shm_gate_cost(Gate::cx(0, 1)), m.shm_gate_1q);
}

TEST(Attach, SingleQubitGatesJoinHosts) {
  Circuit c(3);
  c.add(Gate::h(0));       // leading 1q: waits for next mq gate on q0
  c.add(Gate::cx(0, 1));   // item 0: absorbs h(0)
  c.add(Gate::t(1));       // adjacent to item 0 -> attached
  c.add(Gate::cz(1, 2));   // item 1
  const auto items = attach_single_qubit_gates(c);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].gate_indices, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(items[1].gate_indices, (std::vector<int>{3}));
}

TEST(Attach, PureSingleQubitChainsBecomeItems) {
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::t(0));
  c.add(Gate::h(1));
  const auto items = attach_single_qubit_gates(c);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].gate_indices, (std::vector<int>{0, 1}));
  EXPECT_EQ(items[1].gate_indices, (std::vector<int>{2}));
}

TEST(Attach, EveryGateExactlyOnce) {
  const Circuit c = circuits::random_circuit(8, 120, 5);
  const auto items = attach_single_qubit_gates(c);
  std::vector<int> seen(c.num_gates(), 0);
  for (const auto& it : items)
    for (int g : it.gate_indices) seen[g]++;
  for (int g = 0; g < c.num_gates(); ++g) EXPECT_EQ(seen[g], 1);
}

// ---------------------------------------------------------------------------

class KernelizeFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelizeFamilyTest, DpProducesValidKernelization) {
  const Circuit c = circuits::make_family(GetParam(), 10);
  const CostModel m = CostModel::default_model();
  const Kernelization k = kernelize_dp(c, m);
  validate_kernelization(c, k, m);
  EXPECT_GT(k.total_cost, 0.0);
}

TEST_P(KernelizeFamilyTest, OrderedProducesValidKernelization) {
  const Circuit c = circuits::make_family(GetParam(), 10);
  const CostModel m = CostModel::default_model();
  const Kernelization k = kernelize_ordered(c, m);
  validate_kernelization(c, k, m);
}

TEST_P(KernelizeFamilyTest, GreedyProducesValidKernelization) {
  const Circuit c = circuits::make_family(GetParam(), 10);
  const CostModel m = CostModel::default_model();
  const Kernelization k = kernelize_greedy(c, m);
  validate_kernelization(c, k, m);
}

TEST_P(KernelizeFamilyTest, Theorem6DpAtMostOrdered) {
  // Theorem 6: KERNELIZE is at least as good as ORDEREDKERNELIZE.
  const Circuit c = circuits::make_family(GetParam(), 10);
  const CostModel m = CostModel::default_model();
  const double dp = kernelize_dp(c, m).total_cost;
  const double ordered = kernelize_ordered(c, m).total_cost;
  EXPECT_LE(dp, ordered + 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, KernelizeFamilyTest,
                         ::testing::ValuesIn(circuits::family_names()));

TEST(Kernelize, Theorem6OnRandomCircuits) {
  const CostModel m = CostModel::default_model();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Circuit c = circuits::random_circuit(7, 40, seed);
    const double dp = kernelize_dp(c, m).total_cost;
    const double ordered = kernelize_ordered(c, m).total_cost;
    EXPECT_LE(dp, ordered + 1e-9) << "seed " << seed;
  }
}

// Brute-force optimal contiguous kernelization for tiny circuits: the
// ordered DP is provably optimal for Problem 1 (contiguous kernels),
// so verify it against explicit enumeration of all segmentations.
double brute_force_contiguous(const Circuit& c, const CostModel& m) {
  const int ng = c.num_gates();
  double best = std::numeric_limits<double>::infinity();
  // Each of the 2^(ng-1) cut patterns is a segmentation.
  for (int cuts = 0; cuts < (1 << (ng - 1)); ++cuts) {
    double total = 0;
    int start = 0;
    bool ok = true;
    for (int end = 1; end <= ng && ok; ++end) {
      const bool boundary = end == ng || ((cuts >> (end - 1)) & 1);
      if (!boundary) continue;
      std::uint64_t qubits = 0;
      double shm = 0;
      for (int g = start; g < end; ++g) {
        for (Qubit q : c.gate(g).qubits()) qubits |= bit(q);
        shm += m.shm_gate_cost(c.gate(g));
      }
      const int width = popcount(qubits);
      double seg = std::numeric_limits<double>::infinity();
      if (width <= m.max_fusion_qubits) seg = m.fusion_kernel_cost(width);
      if (popcount(qubits) + 3 <= m.max_shm_qubits)
        seg = std::min(seg, m.shm_alpha + shm);
      if (seg == std::numeric_limits<double>::infinity()) ok = false;
      total += seg;
      start = end;
    }
    if (ok) best = std::min(best, total);
  }
  return best;
}

TEST(Kernelize, OrderedMatchesBruteForceOnTinyCircuits) {
  const CostModel m = CostModel::default_model();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Circuit c = circuits::random_circuit(6, 10, seed);
    EXPECT_NEAR(kernelize_ordered(c, m).total_cost,
                brute_force_contiguous(c, m), 1e-9)
        << "seed " << seed;
  }
}

TEST(Kernelize, DpAtMostBruteForceContiguous) {
  // KERNELIZE explores a superset of contiguous segmentations
  // (Theorem 3), so it can only do better.
  const CostModel m = CostModel::default_model();
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    const Circuit c = circuits::random_circuit(6, 9, seed);
    EXPECT_LE(kernelize_dp(c, m).total_cost,
              brute_force_contiguous(c, m) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Kernelize, DpBeatsOrderedOnInterleavedStructure) {
  // Two independent gate groups interleaved in the sequence: the
  // ordered DP cannot separate them, KERNELIZE can (the paper's
  // motivating example for Algorithm 3 vs Algorithm 5).
  // Groups of 6 qubits each: their union (12 + the 3 LSBs) exceeds
  // both the fusion width and the shared-memory active-qubit cap, so a
  // contiguous segmentation must keep cutting across the interleaving.
  Circuit c(12);
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 5; ++i) {
      c.add(Gate::cx(i, i + 1));      // group A on {0..5}
      c.add(Gate::cx(6 + i, 7 + i));  // group B on {6..11}
    }
  }
  const CostModel m = CostModel::default_model();
  const double dp = kernelize_dp(c, m).total_cost;
  const double ordered = kernelize_ordered(c, m).total_cost;
  EXPECT_LT(dp, ordered - 1e-9);
}

TEST(Kernelize, PruningThresholdTradesQuality) {
  // Larger T should never produce a worse kernelization (Fig. 13's
  // monotone trend), modulo ties.
  const Circuit c = circuits::su2random(9);
  const CostModel m = CostModel::default_model();
  DpOptions tight;
  tight.prune_threshold = 4;
  DpOptions loose;
  loose.prune_threshold = 500;
  const double cost_tight = kernelize_dp(c, m, tight).total_cost;
  const double cost_loose = kernelize_dp(c, m, loose).total_cost;
  EXPECT_LE(cost_loose, cost_tight + 1e-9);
}

TEST(Kernelize, SingleGateCircuit) {
  Circuit c(3);
  c.add(Gate::ccx(0, 1, 2));
  const CostModel m = CostModel::default_model();
  const Kernelization k = kernelize_dp(c, m);
  validate_kernelization(c, k, m);
  ASSERT_EQ(k.kernels.size(), 1u);
}

TEST(Kernelize, EmptyCircuit) {
  Circuit c(4);
  const CostModel m = CostModel::default_model();
  const Kernelization k = kernelize_dp(c, m);
  EXPECT_TRUE(k.kernels.empty());
  EXPECT_EQ(k.total_cost, 0.0);
}

TEST(Kernelize, GreedyPacksToWidthLimit) {
  // A chain of disjoint 1q+2q gates: greedy should produce kernels of
  // at most 5 qubits.
  const Circuit c = circuits::ghz(12);
  const CostModel m = CostModel::default_model();
  const Kernelization k = kernelize_greedy(c, m);
  for (const Kernel& kernel : k.kernels)
    EXPECT_LE(kernel.qubits.size(), 5u);
}

TEST(Kernelize, HhlManyGatesFewQubitsCompletes) {
  // Fig. 25/37 case study shape: gate count far exceeds qubit count.
  const Circuit c = circuits::hhl(6, 8);
  const CostModel m = CostModel::default_model();
  DpOptions opt;
  opt.prune_threshold = 64;
  const Kernelization dp = kernelize_dp(c, m, opt);
  validate_kernelization(c, dp, m);
  const Kernelization ordered = kernelize_ordered(c, m);
  EXPECT_LE(dp.total_cost, ordered.total_cost + 1e-9);
}

}  // namespace
}  // namespace kernelize
}  // namespace atlas
