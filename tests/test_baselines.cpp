// Baseline-simulator tests: each comparator strategy must be *correct*
// (same final state as the reference) while exhibiting its
// characteristic inefficiency relative to Atlas (more kernels, more
// stages, or more offload traffic).

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "circuits/families.h"
#include "sim/reference.h"

namespace atlas {
namespace {

SimulatorConfig config_for(int local, int regional, int global, int gpus) {
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = gpus;
  cfg.cluster.num_threads = 2;
  return cfg;
}

using baselines::BaselineKind;

class BaselineCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<std::string, BaselineKind>> {
};

TEST_P(BaselineCorrectnessTest, MatchesReference) {
  const auto& [family, kind] = GetParam();
  const int n = 11;
  const Circuit c = circuits::make_family(family, n);
  const auto result = baselines::run_baseline(kind, c, config_for(8, 2, 1, 4));
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8)
      << family << " under " << baselines::baseline_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllBaselines, BaselineCorrectnessTest,
    ::testing::Combine(
        ::testing::Values("ghz", "qft", "wstate", "ising", "su2random"),
        ::testing::Values(BaselineKind::Qiskit, BaselineKind::CuQuantum,
                          BaselineKind::HyQuas)));

TEST(Baselines, QdaoOffloadCorrectAndHeavier) {
  // Offloading shape: 8 DRAM shards/node, 1 physical GPU.
  SimulatorConfig cfg = config_for(7, 3, 0, 1);
  ASSERT_TRUE(cfg.cluster.offloading());
  const Circuit c = circuits::qft(10);
  const auto qdao = baselines::run_baseline(BaselineKind::Qdao, c, cfg);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(qdao.state.gather().max_abs_diff(expected), 1e-8);

  // Atlas on the same shape: one reload per stage, not per kernel.
  const Simulator sim(cfg);
  const auto atlas_result = sim.simulate(c);
  EXPECT_LT(atlas_result.state.gather().max_abs_diff(expected), 1e-8);
  EXPECT_GT(qdao.report.totals.offload_bytes,
            atlas_result.report.totals.offload_bytes);
}

TEST(Baselines, QiskitLaunchesOneKernelPerGate) {
  const Circuit c = circuits::ghz(11);
  const auto plan =
      baselines::plan_baseline(BaselineKind::Qiskit, c, config_for(8, 2, 1, 4));
  int kernels = 0, gates = 0;
  for (const auto& st : plan.stages) {
    kernels += static_cast<int>(st.kernels.kernels.size());
    gates += st.subcircuit.num_gates();
  }
  EXPECT_EQ(kernels, gates);
}

TEST(Baselines, AtlasKernelCostAtMostBaselines) {
  // Fig. 10's premise: the DP kernel cost beats greedy and per-gate
  // execution on every family.
  SimulatorConfig cfg = config_for(11, 0, 0, 1);
  for (const auto& family : circuits::family_names()) {
    const Circuit c = circuits::make_family(family, 11);
    const Simulator sim(cfg);
    const auto atlas_plan = sim.plan(c);
    for (const auto kind : {BaselineKind::Qiskit, BaselineKind::CuQuantum}) {
      const auto base_plan = baselines::plan_baseline(kind, c, cfg);
      EXPECT_LE(atlas_plan.kernel_cost_total,
                base_plan.kernel_cost_total + 1e-9)
          << family << " vs " << baselines::baseline_name(kind);
    }
  }
}

TEST(Baselines, AtlasStagesAtMostSnuqsStages) {
  // The end-to-end speed edge at scale comes from fewer stages; Atlas
  // must never need more than the heuristic staging baselines.
  SimulatorConfig cfg = config_for(8, 2, 2, 4);
  for (const auto& family : circuits::family_names()) {
    const Circuit c = circuits::make_family(family, 12);
    const Simulator sim(cfg);
    const auto atlas_plan = sim.plan(c);
    const auto qiskit_plan =
        baselines::plan_baseline(BaselineKind::Qiskit, c, cfg);
    EXPECT_LE(atlas_plan.stages.size(), qiskit_plan.stages.size()) << family;
  }
}

}  // namespace
}  // namespace atlas
