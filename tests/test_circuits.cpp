// Tests for the benchmark circuit generators: gate-count formulas
// (Table I where exact), structural invariants, scalability.

#include <gtest/gtest.h>

#include "circuits/families.h"

namespace atlas {
namespace {

struct CountCase {
  std::string family;
  int qubits;
  int expected_gates;
};

class TableICountTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(TableICountTest, MatchesPaperTableI) {
  const auto& p = GetParam();
  const Circuit c = circuits::make_family(p.family, p.qubits);
  EXPECT_EQ(c.num_gates(), p.expected_gates)
      << p.family << " @ " << p.qubits << " qubits";
}

// The families whose MQT-Bench gate counts our constructions match
// exactly (see DESIGN.md for the remaining families' deltas).
INSTANTIATE_TEST_SUITE_P(
    ExactFamilies, TableICountTest,
    ::testing::Values(CountCase{"ghz", 28, 28}, CountCase{"ghz", 36, 36},
                      CountCase{"dj", 28, 82}, CountCase{"dj", 33, 97},
                      CountCase{"graphstate", 28, 56},
                      CountCase{"graphstate", 34, 68},
                      CountCase{"ising", 28, 302}, CountCase{"ising", 36, 390},
                      CountCase{"qft", 28, 406}, CountCase{"qft", 32, 528},
                      CountCase{"qsvm", 28, 274}, CountCase{"qsvm", 35, 344},
                      CountCase{"wstate", 28, 109},
                      CountCase{"wstate", 36, 141}));

TEST(Families, AllFamiliesScaleAcrossTableRange) {
  for (const auto& name : circuits::family_names()) {
    int prev = 0;
    for (int n = 28; n <= 36; ++n) {
      const Circuit c = circuits::make_family(name, n);
      EXPECT_EQ(c.num_qubits(), n);
      EXPECT_GT(c.num_gates(), 0);
      EXPECT_GE(c.num_gates(), prev) << name << " should not shrink with n";
      prev = c.num_gates();
    }
  }
}

TEST(Families, EveryQubitIsTouched) {
  for (const auto& name : circuits::family_names()) {
    const Circuit c = circuits::make_family(name, 9);
    std::vector<bool> touched(c.num_qubits(), false);
    for (const Gate& g : c.gates())
      for (Qubit q : g.qubits()) touched[q] = true;
    for (int q = 0; q < c.num_qubits(); ++q)
      EXPECT_TRUE(touched[q]) << name << " leaves qubit " << q << " idle";
  }
}

TEST(Families, DeterministicForFixedSeed) {
  const Circuit a = circuits::su2random(8);
  const Circuit b = circuits::su2random(8);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (int i = 0; i < a.num_gates(); ++i)
    EXPECT_EQ(a.gate(i).params(), b.gate(i).params());
}

TEST(Hhl, GateCountGrowsExponentially) {
  const int g4 = circuits::hhl(4, 12).num_gates();
  const int g7 = circuits::hhl(7, 12).num_gates();
  const int g9 = circuits::hhl(9, 12).num_gates();
  const int g10 = circuits::hhl(10, 12).num_gates();
  EXPECT_LT(g4, g7);
  EXPECT_LT(g7, g9);
  EXPECT_LT(g9, g10);
  // Table II shape: the 9->10 step roughly doubles the gate count.
  EXPECT_GT(static_cast<double>(g10) / g9, 1.7);
  // And 9 qubits is already in the tens of thousands.
  EXPECT_GT(g9, 10000);
}

TEST(Hhl, PaddingAddsIdleQubitsOnly) {
  const Circuit c = circuits::hhl(5, 20);
  EXPECT_EQ(c.num_qubits(), 20);
  for (const Gate& g : c.gates())
    for (Qubit q : g.qubits()) EXPECT_LT(q, 5);
}

TEST(RandomCircuit, RespectsGateCountAndQubitRange) {
  const Circuit c = circuits::random_circuit(7, 123, 5);
  EXPECT_EQ(c.num_gates(), 123);
  for (const Gate& g : c.gates())
    for (Qubit q : g.qubits()) EXPECT_LT(q, 7);
}

TEST(MakeFamily, ThrowsOnUnknownName) {
  EXPECT_THROW(circuits::make_family("nope", 10), Error);
}

}  // namespace
}  // namespace atlas
