// Stage-program pipeline tests: the bind-time compilation layer must be
// invisible to results — distributed execution matches the reference
// simulator across randomized circuits and machine shapes, sweeps stay
// bit-identical to per-binding simulate(), and the dense slot table
// keeps every string-keyed ParamBinding lookup out of the per-point hot
// path (regression-tested through the process-wide lookup probe).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuits/families.h"
#include "core/session.h"
#include "sim/reference.h"

namespace atlas {
namespace {

Circuit make_ansatz(int n, int layers) {
  Circuit c(n, "stage_program_ansatz");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (int l = 0; l < layers; ++l) {
    const Param gamma = Param::symbol("gamma" + std::to_string(l));
    const Param theta = Param::symbol("theta" + std::to_string(l));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::rzz(q, (q + 1) % n, gamma));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::rx(q, theta));
  }
  return c;
}

std::vector<Amp> amplitudes(const SimulationResult& r) {
  return r.state.gather().amplitudes();
}

SessionConfig shaped(int local, int regional, int global) {
  SessionConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = 1 << regional;
  return cfg;
}

class StageProgramShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(StageProgramShapeTest, RandomCircuitsMatchReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 104729);
  const int local = 4 + static_cast<int>(rng.index(2));     // 4..5
  const int regional = static_cast<int>(rng.index(3));      // 0..2
  const int global = static_cast<int>(rng.index(2));        // 0..1
  const int n = local + regional + global;
  const Circuit c = circuits::random_circuit(n, 40, seed * 37);
  const Session session(shaped(local, regional, global));
  const SimulationResult result = session.simulate(c);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8)
      << "seed " << seed << " shape " << local << "/" << regional << "/"
      << global;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StageProgramShapeTest, ::testing::Range(1, 13));

// Directed coverage of every per-shard specialization case: diagonal
// gates restricted by non-local bits, anti-diagonal X/Y flipping the
// shard-id mapping, and controlled gates whose controls live on
// non-local qubits.
TEST(StageProgram, InsularCasesOnNonlocalQubitsMatchReference) {
  const int n = 7;  // 4 local + 2 regional + 1 global
  Circuit c(n, "insular_zoo");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::x(q));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::y(q));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::rz(q, 0.3 + q));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::cp(q, (q + 3) % n, 0.5 + q));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::crz((q + 2) % n, q, 1.1 * q));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::cx((q + 4) % n, q));
  c.add(Gate::ccz(0, 3, 6));
  c.add(Gate::ccx(5, 6, 0));
  const Session session(shaped(4, 2, 1));
  const SimulationResult result = session.simulate(c);
  EXPECT_LT(result.state.gather().max_abs_diff(simulate_reference(c)), 1e-8);
}

TEST(StageProgram, SweepBitIdenticalToPerBindingSimulate) {
  const int n = 7, layers = 2, points = 6;
  const Circuit ansatz = make_ansatz(n, layers);
  const Session session(shaped(4, 2, 1));
  const CompiledCircuit compiled = session.compile(ansatz);

  std::vector<ParamBinding> bindings;
  for (int i = 0; i < points; ++i) {
    ParamBinding b;
    for (int l = 0; l < layers; ++l) {
      b.set("gamma" + std::to_string(l), 0.17 * (i + 1) + 0.29 * l);
      b.set("theta" + std::to_string(l), 0.05 * (i + 1) - 0.31 * l);
    }
    bindings.push_back(std::move(b));
  }
  const std::vector<SimulationResult> swept = session.sweep(compiled, bindings);
  ASSERT_EQ(swept.size(), bindings.size());
  for (int i = 0; i < points; ++i) {
    const SimulationResult direct = session.simulate(ansatz.bind(bindings[i]));
    EXPECT_EQ(amplitudes(swept[static_cast<std::size_t>(i)]),
              amplitudes(direct))
        << "point " << i;
  }
}

TEST(StageProgram, DensePointsMatchBindingSweepBitIdentically) {
  const int n = 6, layers = 2, points = 5;
  const Circuit ansatz = make_ansatz(n, layers);
  const Session session(shaped(4, 1, 1));
  const CompiledCircuit compiled = session.compile(ansatz);
  // symbols() is ascending: gamma0, gamma1, theta0, theta1.
  ASSERT_EQ(compiled.symbols(),
            (std::vector<std::string>{"gamma0", "gamma1", "theta0", "theta1"}));

  std::vector<ParamBinding> bindings;
  std::vector<std::vector<double>> dense;
  for (int i = 0; i < points; ++i) {
    const double g0 = 0.11 * i, g1 = 0.23 * i, t0 = 0.37 * i, t1 = 0.41 * i;
    bindings.push_back(ParamBinding{
        {"gamma0", g0}, {"gamma1", g1}, {"theta0", t0}, {"theta1", t1}});
    dense.push_back({g0, g1, t0, t1});
  }
  const auto via_bindings = session.sweep(compiled, bindings);
  const auto via_dense = session.sweep(compiled, dense);
  ASSERT_EQ(via_bindings.size(), via_dense.size());
  for (int i = 0; i < points; ++i)
    EXPECT_EQ(amplitudes(via_bindings[static_cast<std::size_t>(i)]),
              amplitudes(via_dense[static_cast<std::size_t>(i)]))
        << "point " << i;
}

// The slot-table regression: once compiled, a dense-point run performs
// ZERO string-keyed ParamBinding lookups — parameters flow plan-slot ->
// dense table -> array indexing. The named-binding run() performs
// exactly one lookup per free symbol (lowering the user binding into
// the table), independent of gate count and shard count.
TEST(StageProgram, DensePointRunsDoZeroParamBindingLookups) {
  const int n = 6, layers = 2;
  const Circuit ansatz = make_ansatz(n, layers);
  const Session session(shaped(4, 1, 1));
  const CompiledCircuit compiled = session.compile(ansatz);
  const std::vector<double> point = {0.3, 0.7, 1.1, 1.9};
  (void)session.run(compiled, point);  // warm everything once

  const std::uint64_t before = ParamBinding::probe_lookups();
  constexpr int kRuns = 4;
  for (int i = 0; i < kRuns; ++i) (void)session.run(compiled, point);
  EXPECT_EQ(ParamBinding::probe_lookups() - before, 0u);
}

// The skeleton-cache regression: the binding-independent half of stage
// compilation (pattern bits, fired-gate sets, shm gather maps, fused
// spans) is cached on the plan, so an N-point sweep compiles each
// stage's skeleton exactly once and only re-fills matrix values per
// point.
TEST(StageProgram, SweepCompilesEachStageSkeletonOnce) {
  const int n = 7, layers = 2, points = 32;
  const Circuit ansatz = make_ansatz(n, layers);
  const Session session(shaped(4, 2, 1));
  const CompiledCircuit compiled = session.compile(ansatz);
  std::vector<std::vector<double>> dense;
  for (int i = 0; i < points; ++i)
    dense.push_back({0.1 * i, 0.2 * i, 0.3 * i, 0.4 * i});

  const std::uint64_t before = exec::stage_skeleton_compiles();
  (void)session.sweep(compiled, dense);
  const std::uint64_t first_sweep = exec::stage_skeleton_compiles() - before;
  EXPECT_EQ(first_sweep, compiled.plan()->stages.size())
      << "expected one skeleton build per stage for the whole sweep";

  // A second sweep over the same compiled handle re-binds values only.
  (void)session.sweep(compiled, dense);
  EXPECT_EQ(exec::stage_skeleton_compiles() - before, first_sweep);
}

// Lazily-built SimulationResult::params(): the dense slot record is
// the source of truth; the string-keyed view only materializes on
// demand and matches it.
TEST(StageProgram, ResultParamsBuildLazilyFromSlotValues) {
  const Circuit ansatz = make_ansatz(6, 1);
  const Session session(shaped(4, 1, 1));
  const CompiledCircuit compiled = session.compile(ansatz);
  const SimulationResult r = session.run(compiled, {0.3, 0.9});
  ASSERT_EQ(r.slot_values.size(), compiled.param_slots().size());
  const ParamBinding& named = r.params();
  ASSERT_EQ(named.size(), r.slot_values.size());
  for (std::size_t k = 0; k < r.slot_values.size(); ++k)
    EXPECT_EQ(named.at(slot_symbol_name(static_cast<int>(k))),
              r.slot_values[k]);
  EXPECT_EQ(&named, &r.params());  // cached, not rebuilt
}

TEST(StageProgram, BindingRunsDoOneLookupPerSymbolOnly) {
  const int n = 6, layers = 2;
  const Circuit ansatz = make_ansatz(n, layers);
  const Session session(shaped(4, 1, 1));
  const CompiledCircuit compiled = session.compile(ansatz);
  const ParamBinding binding{
      {"gamma0", 0.3}, {"gamma1", 0.7}, {"theta0", 1.1}, {"theta1", 1.9}};
  (void)session.run(compiled, binding);

  const std::uint64_t before = ParamBinding::probe_lookups();
  constexpr std::uint64_t kRuns = 4;
  for (std::uint64_t i = 0; i < kRuns; ++i) (void)session.run(compiled, binding);
  // One at() per free symbol per run — never per gate, per slot, or per
  // shard (the ansatz has 24 parameterized gates on 4 symbols).
  EXPECT_EQ(ParamBinding::probe_lookups() - before,
            kRuns * compiled.symbols().size());
}

}  // namespace
}  // namespace atlas
