// Tests for the state-vector engine: analytic gate semantics, fusion,
// shared-memory batch execution, and cross-validation between paths.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuits/families.h"
#include "common/bits.h"
#include "ir/gate.h"
#include "sim/apply.h"
#include "sim/fusion.h"
#include "sim/reference.h"
#include "sim/shm_executor.h"
#include "sim/state_vector.h"

namespace atlas {
namespace {

using std::numbers::pi;

constexpr double kTol = 1e-10;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.size(), 8u);
  EXPECT_EQ(sv[0], Amp(1, 0));
  EXPECT_NEAR(sv.norm_sq(), 1.0, kTol);
}

TEST(StateVector, RandomIsNormalized) {
  const StateVector sv = StateVector::random(6, 99);
  EXPECT_NEAR(sv.norm_sq(), 1.0, kTol);
}

TEST(Apply, HadamardCreatesUniformSuperposition) {
  StateVector sv(1);
  apply_gate(sv, Gate::h(0));
  EXPECT_NEAR(std::abs(sv[0]), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv[1]), 1 / std::sqrt(2.0), kTol);
}

TEST(Apply, BellState) {
  StateVector sv(2);
  apply_gate(sv, Gate::h(0));
  apply_gate(sv, Gate::cx(0, 1));
  EXPECT_NEAR(std::abs(sv[0b00]), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv[0b11]), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv[0b01]), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv[0b10]), 0.0, kTol);
}

TEST(Apply, CxOnNonAdjacentQubits) {
  StateVector sv(4);
  apply_gate(sv, Gate::x(3));       // |1000>
  apply_gate(sv, Gate::cx(3, 0));   // control q3 -> flips q0
  EXPECT_NEAR(std::abs(sv[0b1001]), 1.0, kTol);
}

TEST(Apply, ControlZeroDoesNothing) {
  StateVector sv(2);
  apply_gate(sv, Gate::cx(1, 0));  // control q1 = |0>
  EXPECT_NEAR(std::abs(sv[0]), 1.0, kTol);
}

TEST(Apply, SwapExchangesBits) {
  StateVector sv(3);
  apply_gate(sv, Gate::x(0));       // |001>
  apply_gate(sv, Gate::swap(0, 2)); // -> |100>
  EXPECT_NEAR(std::abs(sv[0b100]), 1.0, kTol);
}

TEST(Apply, ToffoliTruthTable) {
  for (int in = 0; in < 8; ++in) {
    StateVector sv(3);
    for (int q = 0; q < 3; ++q)
      if ((in >> q) & 1) apply_gate(sv, Gate::x(q));
    apply_gate(sv, Gate::ccx(0, 1, 2));
    const int expected = ((in & 3) == 3) ? (in ^ 4) : in;
    EXPECT_NEAR(std::abs(sv[expected]), 1.0, kTol) << "input " << in;
  }
}

TEST(Apply, PhaseGateOnlyAffectsOneBasisState) {
  StateVector sv(1);
  apply_gate(sv, Gate::h(0));
  apply_gate(sv, Gate::p(0, pi / 3));
  EXPECT_NEAR(std::arg(sv[1]) - std::arg(sv[0]), pi / 3, kTol);
}

TEST(Apply, RzzDiagonalPhases) {
  // rzz(theta) |11> = e^{-i theta/2} |11>.
  StateVector sv(2);
  apply_gate(sv, Gate::x(0));
  apply_gate(sv, Gate::x(1));
  apply_gate(sv, Gate::rzz(0, 1, 0.8));
  EXPECT_NEAR(std::arg(sv[3]), -0.4, kTol);
}

TEST(Apply, MatrixPathMatchesSpecializedPath) {
  // Apply CX via the generic k-qubit matrix path and via the gate path;
  // both must agree on a random state.
  StateVector a = StateVector::random(5, 17);
  StateVector b = a;
  apply_gate(a, Gate::cx(2, 4));
  apply_matrix(b.data(), b.size(), {4, 2}, Gate::cx(2, 4).full_matrix());
  EXPECT_LT(a.max_abs_diff(b), kTol);
}

TEST(Apply, GateIsUnitaryOnRandomState) {
  StateVector sv = StateVector::random(6, 3);
  apply_gate(sv, Gate::u3(2, 0.3, 0.7, 1.9));
  apply_gate(sv, Gate::ccx(1, 3, 5));
  apply_gate(sv, Gate::rxx(0, 4, 0.4));
  EXPECT_NEAR(sv.norm_sq(), 1.0, kTol);
}

TEST(Fusion, ExpandMatchesDirectApplication) {
  const Gate g = Gate::cp(1, 3, 0.9);
  const std::vector<Qubit> span = {0, 1, 3, 4};
  const Matrix big = expand_to_qubits(g, span);
  EXPECT_TRUE(big.is_unitary());
  // Applying the expanded matrix on span bits == applying the gate.
  StateVector a = StateVector::random(5, 5);
  StateVector b = a;
  apply_gate(a, g);
  apply_matrix(b.data(), b.size(), {0, 1, 3, 4}, big);
  EXPECT_LT(a.max_abs_diff(b), kTol);
}

TEST(Fusion, FusedGateEqualsSequentialApplication) {
  const std::vector<Gate> gates = {Gate::h(0), Gate::cx(0, 2),
                                   Gate::rz(2, 0.4), Gate::cx(1, 2)};
  const Gate fused = fuse_to_gate(gates);
  EXPECT_EQ(fused.num_qubits(), 3);
  StateVector a = StateVector::random(4, 8);
  StateVector b = a;
  for (const Gate& g : gates) apply_gate(a, g);
  apply_gate(b, fused);
  EXPECT_LT(a.max_abs_diff(b), kTol);
}

TEST(Fusion, OrderMatters) {
  // [H, X] vs [X, H] fuse to different unitaries.
  const Matrix hx = fuse_gates({Gate::h(0), Gate::x(0)}, {0});
  const Matrix xh = fuse_gates({Gate::x(0), Gate::h(0)}, {0});
  EXPECT_GT(Matrix::max_abs_diff(hx, xh), 0.5);
}

TEST(Shm, KernelMatchesSequentialApplication) {
  const std::vector<Gate> gates = {Gate::h(4), Gate::cx(4, 6),
                                   Gate::t(6), Gate::cz(5, 6)};
  StateVector a = StateVector::random(8, 21);
  StateVector b = a;
  for (const Gate& g : gates) apply_gate(a, g);
  std::vector<int> identity(8);
  for (int i = 0; i < 8; ++i) identity[i] = i;
  const Index batches =
      run_shared_memory_kernel(b.data(), b.size(), gates, identity);
  EXPECT_LT(a.max_abs_diff(b), kTol);
  // Active bits: {0,1,2} ∪ {4,5,6} -> 6 active, 2^8 / 2^6 = 4 batches.
  EXPECT_EQ(batches, 4u);
}

TEST(Shm, RejectsOversizedKernels) {
  std::vector<Gate> gates;
  for (int q = 0; q < 12; ++q) gates.push_back(Gate::h(q));
  std::vector<int> identity(12);
  for (int i = 0; i < 12; ++i) identity[i] = i;
  StateVector sv(12);
  EXPECT_THROW(
      run_shared_memory_kernel(sv.data(), sv.size(), gates, identity), Error);
}

TEST(Reference, GhzStateAmplitudes) {
  const StateVector sv = simulate_reference(circuits::ghz(4));
  EXPECT_NEAR(std::abs(sv[0b0000]), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv[0b1111]), 1 / std::sqrt(2.0), kTol);
}

TEST(Reference, QftMatchesAnalyticFourierAmplitudes) {
  // QFT of |0...0> is the uniform superposition.
  const StateVector sv = simulate_reference(circuits::qft(5));
  for (Index i = 0; i < sv.size(); ++i)
    EXPECT_NEAR(std::abs(sv[i]), 1.0 / std::sqrt(32.0), kTol);
}

TEST(Reference, WStateHasExactlyNOneHotAmplitudes) {
  const int n = 5;
  const StateVector sv = simulate_reference(circuits::wstate(n));
  double onehot_mass = 0;
  for (int q = 0; q < n; ++q) onehot_mass += std::norm(sv[bit(q)]);
  EXPECT_NEAR(onehot_mass, 1.0, 1e-9);
  for (int q = 0; q < n; ++q)
    EXPECT_NEAR(std::abs(sv[bit(q)]), 1 / std::sqrt(double(n)), 1e-9);
}

TEST(Reference, NormPreservedOnAllFamilies) {
  for (const auto& name : circuits::family_names()) {
    const Circuit c = circuits::make_family(name, 6);
    const StateVector sv = simulate_reference(c);
    EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-9) << name;
  }
}

}  // namespace
}  // namespace atlas
