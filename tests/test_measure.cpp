// Tests for measurement/observable utilities, on both full state
// vectors (sim/measure) and distributed states (exec/queries), and for
// the circuit transform toolbox (inverse, depth, statistics).

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/families.h"
#include "core/atlas.h"
#include "exec/queries.h"
#include "opt/rewrite.h"
#include "sim/measure.h"
#include "sim/reference.h"

namespace atlas {
namespace {

TEST(Measure, GhzProbabilities) {
  const StateVector sv = simulate_reference(circuits::ghz(5));
  EXPECT_NEAR(probability(sv, 0), 0.5, 1e-12);
  EXPECT_NEAR(probability(sv, 31), 0.5, 1e-12);
  EXPECT_NEAR(probability(sv, 7), 0.0, 1e-12);
}

TEST(Measure, MarginalOfGhzSingleQubit) {
  const StateVector sv = simulate_reference(circuits::ghz(6));
  const auto dist = marginal_distribution(sv, {3});
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
  EXPECT_NEAR(dist[1], 0.5, 1e-12);
}

TEST(Measure, MarginalSumsToOne) {
  const StateVector sv = StateVector::random(8, 3);
  const auto dist = marginal_distribution(sv, {1, 4, 6});
  double total = 0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Measure, SamplingMatchesDistribution) {
  // W state: each one-hot outcome with probability 1/n.
  const int n = 4;
  const StateVector sv = simulate_reference(circuits::wstate(n));
  Rng rng(42);
  const auto samples = sample(sv, 4000, rng);
  std::vector<int> counts(1 << n, 0);
  for (Index s : samples) counts[s]++;
  for (int q = 0; q < n; ++q) {
    const double freq = counts[1 << q] / 4000.0;
    EXPECT_NEAR(freq, 0.25, 0.05) << "qubit " << q;
  }
}

// Chi-square goodness of fit for the inverse-CDF sampler: 20000 shots
// from a known 3-qubit distribution. With 7 degrees of freedom the
// 1e-6 critical value is ~35.3; the fixed seed makes the draw (and so
// the statistic) deterministic, so this cannot flake — it fails only
// if the sampler's distribution drifts.
TEST(Measure, ChiSquareAgainstKnownDistribution) {
  Circuit c(3);
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  c.add(Gate::ry(2, 0.9));
  const StateVector sv = simulate_reference(c);
  const int shots = 20000;
  Rng rng(1234);
  const auto samples = sample(sv, shots, rng);
  std::vector<double> observed(8, 0.0);
  for (Index s : samples) observed[s] += 1.0;
  double chi_sq = 0;
  for (Index i = 0; i < 8; ++i) {
    const double expected = probability(sv, i) * shots;
    if (expected < 1e-9) {
      EXPECT_EQ(observed[i], 0.0) << "impossible outcome " << i << " drawn";
      continue;
    }
    const double d = observed[i] - expected;
    chi_sq += d * d / expected;
  }
  EXPECT_LT(chi_sq, 35.3);
}

// The distributed sampler must pass the same test through a sharded
// layout, and the weighted overload must sample the *normalized*
// distribution of a scaled state.
TEST(DistQueries, ChiSquareAndWeightedSampling) {
  const int n = 5;
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = 3;
  cfg.cluster.regional_qubits = 1;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 2;
  const Simulator sim(cfg);
  Circuit c(n);
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  c.add(Gate::cx(0, 4));
  const auto result = sim.simulate(c);
  const StateVector gathered = result.state.gather();

  const int shots = 20000;
  Rng rng(77);
  const auto samples = exec::sample(result.state, shots, rng);
  std::vector<double> observed(Index{1} << n, 0.0);
  for (Index s : samples) observed[s] += 1.0;
  double chi_sq = 0;
  int dof = -1;
  for (Index i = 0; i < observed.size(); ++i) {
    const double expected = probability(gathered, i) * shots;
    if (expected < 1e-9) continue;
    const double d = observed[i] - expected;
    chi_sq += d * d / expected;
    ++dof;
  }
  // 1e-6 critical value for 31 dof is ~78.
  EXPECT_EQ(dof, 31);
  EXPECT_LT(chi_sq, 78.0);

  // Weighted overload: scale the state by 1/2 (norm^2 = 1/4) and
  // sample with the norm passed through — same distribution.
  exec::DistState scaled = result.state;
  for (int s = 0; s < scaled.num_shards(); ++s)
    for (Amp& a : scaled.shard(s)) a *= 0.5;
  Rng rng_a(99), rng_b(99);
  EXPECT_EQ(exec::sample(scaled, 200, rng_a, 0.25),
            exec::sample(result.state, 200, rng_b, 1.0));
}

// Counter-based streams: the per-result sample() overload is
// deterministic, distinct across calls, and replays exactly.
TEST(Measure, ResultSampleStreamsAreDeterministic) {
  SessionConfig cfg;
  cfg.cluster.local_qubits = 5;
  cfg.cluster.gpus_per_node = 1;
  cfg.seed = 42;
  const Session session(cfg);
  const Circuit c = circuits::ghz(5);
  const SimulationResult r1 = session.simulate(c);
  const SimulationResult r2 = session.simulate(c);
  ASSERT_NE(r1.seed, 0u);
  EXPECT_EQ(r1.seed, r2.seed);  // same run identity -> same stream
  const auto a = r1.sample(100);
  const auto b = r1.sample(100);  // next call, next stream
  EXPECT_NE(a, b);
  EXPECT_EQ(a, r2.sample(100));  // replays on an identical run

  SessionConfig other = cfg;
  other.seed = 43;
  const SimulationResult r3 = Session(other).simulate(c);
  EXPECT_NE(r3.seed, r1.seed);  // session seed feeds the stream
}

TEST(Measure, ExpectationZ) {
  // |0>: <Z>=+1. X|0>=|1>: <Z>=-1. H|0>: <Z>=0.
  StateVector a(1);
  EXPECT_NEAR(expectation_z(a, 0), 1.0, 1e-12);
  {
    Circuit c(1);
    c.add(Gate::x(0));
    EXPECT_NEAR(expectation_z(simulate_reference(c), 0), -1.0, 1e-12);
  }
  {
    Circuit c(1);
    c.add(Gate::h(0));
    EXPECT_NEAR(expectation_z(simulate_reference(c), 0), 0.0, 1e-12);
  }
}

TEST(Measure, GhzZZCorrelation) {
  const StateVector sv = simulate_reference(circuits::ghz(5));
  // GHZ: perfectly correlated in Z.
  EXPECT_NEAR(expectation_zz(sv, 0, 4), 1.0, 1e-12);
  EXPECT_NEAR(expectation_z(sv, 2), 0.0, 1e-12);
}

// --------------------------------------------------------------------------
// Distributed queries must agree with gathered-state measurements.

TEST(DistQueries, AgreeWithGatheredState) {
  const int n = 11;
  const Circuit c = circuits::random_circuit(n, 60, 9);
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = 7;
  cfg.cluster.regional_qubits = 2;
  cfg.cluster.global_qubits = 2;
  cfg.cluster.gpus_per_node = 4;
  const Simulator sim(cfg);
  const auto result = sim.simulate(c);
  const StateVector gathered = result.state.gather();

  EXPECT_NEAR(exec::norm_sq(result.state), 1.0, 1e-9);
  for (Index i : {Index{0}, Index{5}, Index{100}, Index{2047}}) {
    EXPECT_LT(std::abs(exec::amplitude(result.state, i) - gathered[i]),
              1e-12);
  }
  const auto d1 = exec::marginal_distribution(result.state, {0, 8, 10});
  const auto d2 = marginal_distribution(gathered, {0, 8, 10});
  for (std::size_t i = 0; i < d1.size(); ++i)
    EXPECT_NEAR(d1[i], d2[i], 1e-9);
  EXPECT_NEAR(exec::expectation_z(result.state, 9),
              expectation_z(gathered, 9), 1e-9);
}

TEST(DistQueries, SamplingDistributedGhz) {
  const int n = 10;
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = 7;
  cfg.cluster.regional_qubits = 2;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 4;
  const Simulator sim(cfg);
  const auto result = sim.simulate(circuits::ghz(n));
  Rng rng(7);
  const auto samples = exec::sample(result.state, 500, rng);
  const Index all_ones = (Index{1} << n) - 1;
  int zeros = 0, ones = 0;
  for (Index s : samples) {
    if (s == 0) ++zeros;
    else if (s == all_ones) ++ones;
    else FAIL() << "GHZ sample was " << s;
  }
  EXPECT_GT(zeros, 150);
  EXPECT_GT(ones, 150);
}

// --------------------------------------------------------------------------
// Circuit transforms.

class InverseRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InverseRoundTripTest, CircuitTimesInverseIsIdentity) {
  const Circuit c = circuits::make_family(GetParam(), 7);
  const Circuit inv = inverse(c);
  Circuit round(7);
  for (const Gate& g : c.gates()) round.add(g);
  for (const Gate& g : inv.gates()) round.add(g);
  const StateVector initial = StateVector::random(7, 55);
  const StateVector out = simulate_reference(round, initial);
  EXPECT_LT(out.max_abs_diff(initial), 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, InverseRoundTripTest,
                         ::testing::ValuesIn(circuits::family_names()));

TEST(Transform, InverseOfRandomCircuit) {
  const Circuit c = circuits::random_circuit(6, 50, 77);
  const Circuit inv = inverse(c);
  Circuit round(6);
  for (const Gate& g : c.gates()) round.add(g);
  for (const Gate& g : inv.gates()) round.add(g);
  const StateVector initial = StateVector::random(6, 4);
  EXPECT_LT(simulate_reference(round, initial).max_abs_diff(initial), 1e-9);
}

TEST(Transform, Depth) {
  Circuit c(3);
  EXPECT_EQ(depth(c), 0);
  c.add(Gate::h(0));
  c.add(Gate::h(1));   // parallel with h(0)
  EXPECT_EQ(depth(c), 1);
  c.add(Gate::cx(0, 1));
  EXPECT_EQ(depth(c), 2);
  c.add(Gate::h(2));   // parallel with everything
  EXPECT_EQ(depth(c), 2);
}

TEST(Transform, Statistics) {
  const Circuit c = circuits::qft(6);
  const CircuitStats s = statistics(c);
  EXPECT_EQ(s.num_gates, 21);
  EXPECT_EQ(s.gate_histogram.at("h"), 6);
  EXPECT_EQ(s.gate_histogram.at("cp"), 15);
  EXPECT_EQ(s.fully_insular_gates, 15);  // all cp gates
  EXPECT_EQ(s.multi_qubit_gates, 15);
}

}  // namespace
}  // namespace atlas
