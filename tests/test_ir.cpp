// Unit tests for the IR: gate matrices, insularity classification
// (paper Definition 2), circuit dependency structure.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "ir/circuit.h"
#include "ir/gate.h"
#include "ir/matrix.h"

namespace atlas {
namespace {

using std::numbers::pi;

TEST(Matrix, IdentityAndMultiply) {
  const Matrix i2 = Matrix::identity(2);
  const Matrix h = Gate::h(0).target_matrix();
  EXPECT_LT(Matrix::max_abs_diff(h * i2, h), 1e-12);
  // H * H = I.
  EXPECT_LT(Matrix::max_abs_diff(h * h, i2), 1e-12);
}

TEST(Matrix, KronDimensions) {
  const Matrix x = Gate::x(0).target_matrix();
  const Matrix k = x.kron(Matrix::identity(2));
  EXPECT_EQ(k.rows(), 4);
  // x ⊗ I with rhs in low bits: entry (0b10, 0b00) = X(1,0)*I(0,0) = 1.
  EXPECT_EQ(k(2, 0), Amp(1, 0));
}

TEST(Matrix, DiagonalAndAntidiagonalDetection) {
  EXPECT_TRUE(Gate::z(0).target_matrix().is_diagonal());
  EXPECT_TRUE(Gate::t(0).target_matrix().is_diagonal());
  EXPECT_FALSE(Gate::h(0).target_matrix().is_diagonal());
  EXPECT_TRUE(Gate::x(0).target_matrix().is_antidiagonal());
  EXPECT_TRUE(Gate::y(0).target_matrix().is_antidiagonal());
  EXPECT_FALSE(Gate::h(0).target_matrix().is_antidiagonal());
}

class AllGatesUnitaryTest : public ::testing::TestWithParam<Gate> {};

TEST_P(AllGatesUnitaryTest, FullMatrixIsUnitary) {
  EXPECT_TRUE(GetParam().full_matrix().is_unitary())
      << GetParam().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    GateLibrary, AllGatesUnitaryTest,
    ::testing::Values(
        Gate::h(0), Gate::x(0), Gate::y(0), Gate::z(0), Gate::s(0),
        Gate::sdg(0), Gate::t(0), Gate::tdg(0), Gate::sx(0),
        Gate::rx(0, 0.3), Gate::ry(0, 0.7), Gate::rz(0, 1.1),
        Gate::p(0, 0.9), Gate::u2(0, 0.1, 0.2), Gate::u3(0, 0.3, 0.4, 0.5),
        Gate::cx(0, 1), Gate::cy(0, 1), Gate::cz(0, 1), Gate::ch(0, 1),
        Gate::cp(0, 1, 0.6), Gate::crx(0, 1, 0.5), Gate::cry(0, 1, 0.4),
        Gate::crz(0, 1, 0.3), Gate::swap(0, 1), Gate::rzz(0, 1, 0.8),
        Gate::rxx(0, 1, 0.2), Gate::ccx(0, 1, 2), Gate::ccz(0, 1, 2),
        Gate::cswap(0, 1, 2)));

TEST(Gate, CxMatrixFlipsTargetWhenControlSet) {
  // qubits = [target, control]; control = bit 1.
  const Matrix m = Gate::cx(5, 3).full_matrix();
  // |control=0, target=0> -> itself.
  EXPECT_EQ(m(0, 0), Amp(1, 0));
  // |control=1, target=0> (idx 2) -> |control=1, target=1> (idx 3).
  EXPECT_EQ(m(3, 2), Amp(1, 0));
  EXPECT_EQ(m(2, 2), Amp(0, 0));
}

TEST(Gate, InsularityOfDiagonalGates) {
  // Diagonal 1-qubit gates: insular.
  EXPECT_TRUE(Gate::z(0).qubit_insular(0));
  EXPECT_TRUE(Gate::rz(0, 0.5).qubit_insular(0));
  EXPECT_TRUE(Gate::t(0).qubit_insular(0));
  // Anti-diagonal: insular.
  EXPECT_TRUE(Gate::x(0).qubit_insular(0));
  EXPECT_TRUE(Gate::y(0).qubit_insular(0));
  // Non-diagonal 1-qubit gates: not insular.
  EXPECT_FALSE(Gate::h(0).qubit_insular(0));
  EXPECT_FALSE(Gate::rx(0, 0.5).qubit_insular(0));
}

TEST(Gate, InsularityOfControlledGates) {
  // CX: target (pos 0) non-insular, control (pos 1) insular.
  const Gate cx = Gate::cx(1, 0);
  EXPECT_FALSE(cx.qubit_insular(0));
  EXPECT_TRUE(cx.qubit_insular(1));
  EXPECT_EQ(cx.non_insular_qubits(), std::vector<Qubit>{0});
  // CZ / CP / CCZ / RZZ are fully diagonal: all qubits insular
  // (footnote 2: any qubit can be the control).
  for (const Gate& g : {Gate::cz(0, 1), Gate::cp(0, 1, 0.4),
                        Gate::rzz(0, 1, 0.3), Gate::ccz(0, 1, 2),
                        Gate::crz(0, 1, 0.2)}) {
    EXPECT_TRUE(g.non_insular_qubits().empty()) << g.to_string();
  }
  // CCX: both controls insular, target not.
  const Gate ccx = Gate::ccx(2, 1, 0);
  EXPECT_EQ(ccx.non_insular_qubits(), std::vector<Qubit>{0});
}

TEST(Gate, SwapIsNotInsular) {
  EXPECT_EQ(Gate::swap(0, 1).non_insular_qubits().size(), 2u);
}

TEST(Gate, DuplicateQubitRejected) {
  EXPECT_THROW(Gate::cx(3, 3), Error);
}

TEST(Circuit, AddValidatesQubitRange) {
  Circuit c(2);
  EXPECT_THROW(c.add(Gate::h(5)), Error);
}

TEST(Circuit, DependencyEdges) {
  Circuit c(3);
  c.add(Gate::h(0));        // 0
  c.add(Gate::cx(0, 1));    // 1 depends on 0
  c.add(Gate::h(2));        // 2 independent
  c.add(Gate::cx(1, 2));    // 3 depends on 1 (q1) and 2 (q2)
  const auto edges = c.dependency_edges();
  const std::vector<std::pair<int, int>> expected = {{0, 1}, {1, 3}, {2, 3}};
  EXPECT_EQ(edges, expected);
}

TEST(Circuit, DependencyEdgesDeduplicated) {
  Circuit c(2);
  c.add(Gate::cz(0, 1));
  c.add(Gate::cz(0, 1));  // shares both qubits: one edge, not two
  EXPECT_EQ(c.dependency_edges().size(), 1u);
}

TEST(Circuit, NonInsularUnion) {
  Circuit c(4);
  c.add(Gate::h(0));
  c.add(Gate::cz(1, 2));  // fully insular
  c.add(Gate::cx(3, 1));  // target q1 non-insular
  const auto u = c.non_insular_qubit_union();
  EXPECT_EQ(u, (std::vector<Qubit>{0, 1}));
}

TEST(Circuit, Subcircuit) {
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::x(1));
  c.add(Gate::cx(0, 1));
  const Circuit sub = c.subcircuit({2, 0});
  ASSERT_EQ(sub.num_gates(), 2);
  EXPECT_EQ(sub.gate(0).kind(), GateKind::CX);
  EXPECT_EQ(sub.gate(1).kind(), GateKind::H);
}

}  // namespace
}  // namespace atlas
