// Tests for the LP simplex and the 0/1 branch-and-bound ILP solver on
// instances with known optima (these are the substrate underneath the
// paper's ILP-based circuit staging).

#include <gtest/gtest.h>

#include "ilp/solver.h"
#include "lp/simplex.h"

namespace atlas {
namespace {

TEST(Simplex, SimpleMaximizationViaNegatedObjective) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
  lp::LpProblem p;
  const int x = p.add_var(-3.0, 1e18);
  const int y = p.add_var(-2.0, 1e18);
  p.add_row({{x, y}, {1, 1}, lp::RowSense::LessEq, 4});
  p.add_row({{x, y}, {1, 3}, lp::RowSense::LessEq, 6});
  const auto s = lp::solve(p);
  ASSERT_EQ(s.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -12.0, 1e-7);
  EXPECT_NEAR(s.x[x], 4.0, 1e-7);
  EXPECT_NEAR(s.x[y], 0.0, 1e-7);
}

TEST(Simplex, EqualityAndGreaterConstraints) {
  // min x + y s.t. x + y = 2, x >= 0.5 -> obj 2.
  lp::LpProblem p;
  const int x = p.add_var(1.0, 1e18);
  const int y = p.add_var(1.0, 1e18);
  p.add_row({{x, y}, {1, 1}, lp::RowSense::Eq, 2});
  p.add_row({{x}, {1}, lp::RowSense::GreaterEq, 0.5});
  const auto s = lp::solve(p);
  ASSERT_EQ(s.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
  EXPECT_GE(s.x[x], 0.5 - 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  lp::LpProblem p;
  const int x = p.add_var(1.0, 1e18);
  p.add_row({{x}, {1}, lp::RowSense::LessEq, 1});
  p.add_row({{x}, {1}, lp::RowSense::GreaterEq, 2});
  EXPECT_EQ(lp::solve(p).status, lp::LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  lp::LpProblem p;
  const int x = p.add_var(-1.0, 1e18);  // min -x with x free upward
  p.add_row({{x}, {1}, lp::RowSense::GreaterEq, 0});
  EXPECT_EQ(lp::solve(p).status, lp::LpStatus::Unbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  lp::LpProblem p;
  const int x = p.add_var(-1.0, 3.0);  // min -x, x <= 3
  (void)x;
  const auto s = lp::solve(p);
  ASSERT_EQ(s.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -2  <=>  x >= 2; min x -> 2.
  lp::LpProblem p;
  const int x = p.add_var(1.0, 1e18);
  p.add_row({{x}, {-1}, lp::RowSense::LessEq, -2});
  const auto s = lp::solve(p);
  ASSERT_EQ(s.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Several redundant constraints through the same vertex.
  lp::LpProblem p;
  const int x = p.add_var(-1.0, 1e18);
  const int y = p.add_var(-1.0, 1e18);
  p.add_row({{x, y}, {1, 1}, lp::RowSense::LessEq, 1});
  p.add_row({{x, y}, {2, 2}, lp::RowSense::LessEq, 2});
  p.add_row({{x, y}, {1, 2}, lp::RowSense::LessEq, 2});
  p.add_row({{x}, {1}, lp::RowSense::LessEq, 1});
  const auto s = lp::solve(p);
  ASSERT_EQ(s.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-7);
}

TEST(Ilp, KnapsackOptimum) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6 -> {a,c} = 17? vs {b,c}=20.
  // (weights: a=3,b=4,c=2; b+c = 6 fits, value 20.)
  ilp::IlpModel m;
  const int a = m.add_binary(-10, "a");
  const int b = m.add_binary(-13, "b");
  const int c = m.add_binary(-7, "c");
  m.add_constraint({a, b, c}, {3, 4, 2}, lp::RowSense::LessEq, 6);
  const auto s = m.solve();
  ASSERT_EQ(s.status, ilp::IlpStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);
  EXPECT_EQ(s.x[a], 0);
  EXPECT_EQ(s.x[b], 1);
  EXPECT_EQ(s.x[c], 1);
}

TEST(Ilp, SetCoverOptimum) {
  // Universe {1..5}; sets A={1,2,3}, B={3,4}, C={4,5}, D={1,5}.
  // Optimal cover = {A, C} (size 2).
  ilp::IlpModel m;
  const int A = m.add_binary(1, "A");
  const int B = m.add_binary(1, "B");
  const int C = m.add_binary(1, "C");
  const int D = m.add_binary(1, "D");
  m.add_constraint({A, D}, {1, 1}, lp::RowSense::GreaterEq, 1);     // 1
  m.add_constraint({A}, {1}, lp::RowSense::GreaterEq, 1);           // 2
  m.add_constraint({A, B}, {1, 1}, lp::RowSense::GreaterEq, 1);     // 3
  m.add_constraint({B, C}, {1, 1}, lp::RowSense::GreaterEq, 1);     // 4
  m.add_constraint({C, D}, {1, 1}, lp::RowSense::GreaterEq, 1);     // 5
  const auto s = m.solve();
  ASSERT_EQ(s.status, ilp::IlpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
  EXPECT_EQ(s.x[A], 1);
  EXPECT_EQ(s.x[C], 1);
}

TEST(Ilp, InfeasibleDetected) {
  ilp::IlpModel m;
  const int a = m.add_binary(1);
  const int b = m.add_binary(1);
  m.add_constraint({a, b}, {1, 1}, lp::RowSense::GreaterEq, 3);  // > 2 max
  EXPECT_EQ(m.solve().status, ilp::IlpStatus::Infeasible);
}

TEST(Ilp, EqualityCardinality) {
  // Choose exactly 2 of 4 items, minimize cost {5,1,3,2} -> items 1,3.
  ilp::IlpModel m;
  std::vector<int> v = {m.add_binary(5), m.add_binary(1), m.add_binary(3),
                        m.add_binary(2)};
  m.add_constraint(v, {1, 1, 1, 1}, lp::RowSense::Eq, 2);
  const auto s = m.solve();
  ASSERT_EQ(s.status, ilp::IlpStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_EQ(s.x[1], 1);
  EXPECT_EQ(s.x[3], 1);
}

TEST(Ilp, ImplicationChain) {
  // x0 <= x1 <= x2, x0 >= 1 forces all; minimize -(x0+x1+x2)+10*x2
  // forces the chain cost trade-off to still satisfy implications.
  ilp::IlpModel m;
  const int x0 = m.add_binary(-1);
  const int x1 = m.add_binary(-1);
  const int x2 = m.add_binary(10);
  m.add_le_sum(x0, {x1});
  m.add_le_sum(x1, {x2});
  m.add_constraint({x0}, {1}, lp::RowSense::GreaterEq, 1);
  const auto s = m.solve();
  ASSERT_EQ(s.status, ilp::IlpStatus::Optimal);
  EXPECT_EQ(s.x[x0], 1);
  EXPECT_EQ(s.x[x1], 1);
  EXPECT_EQ(s.x[x2], 1);
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
}

TEST(Ilp, FractionalLpRequiresBranching) {
  // Classic: max x+y s.t. 2x+2y <= 3 over binaries -> LP gives 1.5,
  // integer optimum is 1.
  ilp::IlpModel m;
  const int x = m.add_binary(-1);
  const int y = m.add_binary(-1);
  m.add_constraint({x, y}, {2, 2}, lp::RowSense::LessEq, 3);
  const auto s = m.solve();
  ASSERT_EQ(s.status, ilp::IlpStatus::Optimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
}

TEST(Ilp, MediumAssignmentProblem) {
  // 6x6 assignment: binary x_{ij}, each row/col exactly one, cost
  // c_{ij} = (i*7 + j*3) % 10. Verify against brute force.
  const int n = 6;
  auto cost = [](int i, int j) { return (i * 7 + j * 3) % 10; };
  ilp::IlpModel m;
  std::vector<std::vector<int>> x(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) x[i][j] = m.add_binary(cost(i, j));
  for (int i = 0; i < n; ++i) {
    std::vector<int> row, col;
    for (int j = 0; j < n; ++j) {
      row.push_back(x[i][j]);
      col.push_back(x[j][i]);
    }
    m.add_constraint(row, std::vector<double>(n, 1.0), lp::RowSense::Eq, 1);
    m.add_constraint(col, std::vector<double>(n, 1.0), lp::RowSense::Eq, 1);
  }
  const auto s = m.solve();
  ASSERT_EQ(s.status, ilp::IlpStatus::Optimal);

  // Brute force over all permutations.
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  int best = 1 << 30;
  do {
    int c = 0;
    for (int i = 0; i < n; ++i) c += cost(i, perm[i]);
    best = std::min(best, c);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(s.objective, best, 1e-6);
}

TEST(Ilp, NodeBudgetReturnsGracefully) {
  ilp::IlpModel m;
  // A slightly awkward parity-flavored instance.
  std::vector<int> v;
  for (int i = 0; i < 14; ++i) v.push_back(m.add_binary(i % 3 == 0 ? -1 : 1));
  for (int i = 0; i + 2 < 14; ++i)
    m.add_constraint({v[i], v[i + 1], v[i + 2]}, {1, 1, 1},
                     lp::RowSense::LessEq, 2);
  const auto s = m.solve(/*max_nodes=*/3);
  EXPECT_TRUE(s.status == ilp::IlpStatus::Feasible ||
              s.status == ilp::IlpStatus::NodeLimit ||
              s.status == ilp::IlpStatus::Optimal);
  EXPECT_LE(s.nodes_explored, 3);
}

}  // namespace
}  // namespace atlas
