// Distributed-execution tests: layout/remap correctness, insular
// partial evaluation, and end-to-end equivalence of the full Atlas
// pipeline (STAGE + KERNELIZE + EXECUTE) against the reference
// simulator, across circuit families, machine shapes, and offloading.

#include <gtest/gtest.h>

#include "circuits/families.h"
#include "core/atlas.h"
#include "exec/partial_eval.h"
#include "exec/remap.h"
#include "sim/reference.h"

namespace atlas {
namespace {

constexpr double kTol = 1e-9;

exec::Layout layout_for(const std::vector<Qubit>& order, int num_local) {
  exec::Layout l;
  l.num_local = num_local;
  const int n = static_cast<int>(order.size());
  l.phys_of_logical.assign(n, -1);
  l.logical_of_phys.assign(n, -1);
  for (int p = 0; p < n; ++p) {
    l.logical_of_phys[p] = order[p];
    l.phys_of_logical[order[p]] = p;
  }
  return l;
}

TEST(DistState, ScatterGatherRoundTrip) {
  const StateVector sv = StateVector::random(8, 42);
  const auto layout = layout_for({3, 1, 7, 0, 2, 6, 4, 5}, 5);
  const exec::DistState st = exec::DistState::scatter(sv, layout);
  EXPECT_EQ(st.num_shards(), 8);
  EXPECT_LT(st.gather().max_abs_diff(sv), kTol);
}

TEST(DistState, ZeroStateHasUnitAmplitudeAtZero) {
  const auto layout = layout_for({2, 0, 1, 3}, 2);
  const exec::DistState st = exec::DistState::zero_state(layout);
  const StateVector sv = st.gather();
  EXPECT_EQ(sv[0], Amp(1, 0));
  EXPECT_NEAR(sv.norm_sq(), 1.0, kTol);
}

TEST(Remap, PreservesStateAcrossArbitraryPermutations) {
  const StateVector sv = StateVector::random(9, 7);
  device::ClusterConfig cc;
  cc.local_qubits = 5;
  cc.regional_qubits = 2;
  cc.global_qubits = 2;
  cc.gpus_per_node = 4;
  cc.num_threads = 2;
  device::Cluster cluster(cc);
  exec::DistState st =
      exec::DistState::scatter(sv, layout_for({0, 1, 2, 3, 4, 5, 6, 7, 8}, 5));
  // Chain several remaps through scrambled layouts, then return.
  const auto l1 = layout_for({8, 6, 4, 2, 0, 7, 5, 3, 1}, 5);
  const auto l2 = layout_for({1, 3, 5, 7, 8, 0, 2, 4, 6}, 5);
  const auto l0 = layout_for({0, 1, 2, 3, 4, 5, 6, 7, 8}, 5);
  auto stats = exec::remap(st, l1, cluster);
  EXPECT_GT(stats.inter_node_bytes + stats.intra_node_bytes, 0u);
  exec::remap(st, l2, cluster);
  exec::remap(st, l0, cluster);
  EXPECT_LT(st.gather().max_abs_diff(sv), kTol);
}

TEST(Remap, IdentityMovesNothing) {
  const StateVector sv = StateVector::random(7, 3);
  device::ClusterConfig cc;
  cc.local_qubits = 4;
  cc.regional_qubits = 2;
  cc.global_qubits = 1;
  cc.gpus_per_node = 4;
  device::Cluster cluster(cc);
  const auto l = layout_for({0, 1, 2, 3, 4, 5, 6}, 4);
  exec::DistState st = exec::DistState::scatter(sv, l);
  const auto stats = exec::remap(st, l, cluster);
  EXPECT_EQ(stats.intra_node_bytes, 0u);
  EXPECT_EQ(stats.inter_node_bytes, 0u);
  EXPECT_EQ(stats.alltoall_rounds, 0);
}

TEST(Remap, LocalOnlyShuffleStaysIntraGpu) {
  // Permuting only local positions never crosses shard boundaries.
  const StateVector sv = StateVector::random(7, 9);
  device::ClusterConfig cc;
  cc.local_qubits = 4;
  cc.regional_qubits = 2;
  cc.global_qubits = 1;
  cc.gpus_per_node = 4;
  device::Cluster cluster(cc);
  exec::DistState st =
      exec::DistState::scatter(sv, layout_for({0, 1, 2, 3, 4, 5, 6}, 4));
  const auto stats =
      exec::remap(st, layout_for({3, 2, 1, 0, 4, 5, 6}, 4), cluster);
  EXPECT_EQ(stats.intra_node_bytes, 0u);
  EXPECT_EQ(stats.inter_node_bytes, 0u);
  EXPECT_LT(st.gather().max_abs_diff(sv), kTol);
}

TEST(PartialEval, NonLocalControlSkipsOrDrops) {
  // Layout: qubit 2 is non-local (position 3 of 4, L=3).
  const auto layout = layout_for({0, 1, 3, 2}, 3);
  const Gate cx = Gate::cx(2, 0);  // control q2 (non-local), target q0
  // Shard 0: q2 = 0 -> skip.
  const auto op0 = exec::partial_evaluate(cx, layout, 0);
  EXPECT_TRUE(op0.skip);
  // Shard 1: q2 = 1 -> plain X on q0.
  const auto op1 = exec::partial_evaluate(cx, layout, 1);
  ASSERT_TRUE(op1.gate.has_value());
  EXPECT_EQ(op1.gate->num_controls(), 0);
  EXPECT_TRUE(op1.gate->target_matrix().is_antidiagonal());
}

TEST(PartialEval, DiagonalGateRestriction) {
  const auto layout = layout_for({0, 1, 3, 2}, 3);
  const Gate cp = Gate::cp(2, 0, 0.7);  // fully diagonal, q2 non-local
  // Shard 1 (q2=1): P(0.7) remains on q0.
  const auto op = exec::partial_evaluate(cp, layout, 1);
  ASSERT_TRUE(op.gate.has_value());
  const Matrix m = op.gate->target_matrix();
  EXPECT_NEAR(std::arg(m(1, 1)), 0.7, kTol);
  // Shard 0 (q2=0): identity.
  const auto op0 = exec::partial_evaluate(cp, layout, 0);
  if (op0.gate.has_value()) {
    EXPECT_LT(Matrix::max_abs_diff(op0.gate->target_matrix(),
                                   Matrix::identity(2)),
              kTol);
  } else {
    EXPECT_TRUE(op0.skip || op0.scale == Amp(1, 0));
  }
}

TEST(PartialEval, AntidiagonalFlip) {
  const auto layout = layout_for({0, 1, 3, 2}, 3);
  const auto op = exec::partial_evaluate(Gate::x(2), layout, 0);
  EXPECT_EQ(op.flip_phys_bit, 3);
  EXPECT_EQ(op.scale, Amp(1, 0));
  // Y carries the +-i phases.
  const auto opy0 = exec::partial_evaluate(Gate::y(2), layout, 0);
  const auto opy1 = exec::partial_evaluate(Gate::y(2), layout, 1);
  EXPECT_EQ(opy0.scale, Amp(0, 1));
  EXPECT_EQ(opy1.scale, Amp(0, -1));
}

// ---------------------------------------------------------------------------
// End-to-end: the full pipeline must match the reference simulator.

SimulatorConfig small_config(int n, int local, int regional, int global,
                             int gpus_per_node) {
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = gpus_per_node;
  cfg.cluster.num_threads = 2;
  EXPECT_EQ(cfg.cluster.total_qubits(), n);
  return cfg;
}

class EndToEndFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EndToEndFamilyTest, MatchesReference) {
  const int n = 12;
  const Circuit c = circuits::make_family(GetParam(), n);
  const Simulator sim(small_config(n, 8, 2, 2, 4));
  const SimulationResult result = sim.simulate(c);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EndToEndFamilyTest,
                         ::testing::ValuesIn(circuits::family_names()));

TEST(EndToEnd, RandomCircuitsAcrossShapes) {
  struct Shape {
    int local, regional, global, gpus;
  };
  const Shape shapes[] = {
      {10, 0, 0, 1}, {8, 2, 0, 4}, {8, 0, 2, 1}, {7, 2, 1, 4}, {6, 2, 2, 4},
  };
  for (const auto& sh : shapes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Circuit c = circuits::random_circuit(10, 60, seed);
      const Simulator sim(
          small_config(10, sh.local, sh.regional, sh.global, sh.gpus));
      const SimulationResult result = sim.simulate(c);
      const StateVector expected = simulate_reference(c);
      EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8)
          << "L=" << sh.local << " R=" << sh.regional << " G=" << sh.global
          << " seed=" << seed;
    }
  }
}

TEST(EndToEnd, OffloadingMatchesReference) {
  // 2^2 = 4 DRAM shards per node but only 1 physical GPU: shards swap
  // through the GPU (Section VII-C).
  const int n = 11;
  SimulatorConfig cfg = small_config(n, 7, 3, 1, 1);
  EXPECT_TRUE(cfg.cluster.offloading());
  const Circuit c = circuits::qft(n);
  const Simulator sim(cfg);
  const SimulationResult result = sim.simulate(c);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8);
  EXPECT_GT(result.report.totals.offload_bytes, 0u);
}

TEST(EndToEnd, ReportAccounting) {
  const int n = 11;
  const Circuit c = circuits::su2random(n);
  const Simulator sim(small_config(n, 8, 2, 1, 4));
  const SimulationResult r = sim.simulate(c);
  EXPECT_EQ(r.report.stages.size(), r.plan->stages.size());
  EXPECT_GT(r.report.wall_seconds, 0.0);
  EXPECT_GT(r.report.totals.kernel_bytes, 0u);
  // Multi-stage plans must have moved data between devices.
  if (r.plan->stages.size() > 1) {
    EXPECT_GT(r.report.totals.intra_node_bytes +
                  r.report.totals.inter_node_bytes,
              0u);
  }
  const double modeled = r.report.modeled_seconds(
      sim.config().comm, sim.cluster().config().num_nodes() * 4,
      sim.cluster().config().num_nodes());
  EXPECT_GT(modeled, 0.0);
}

TEST(EndToEnd, PlanIsReusableAcrossRuns) {
  const int n = 10;
  const Circuit c = circuits::ising(n);
  const Simulator sim(small_config(n, 7, 2, 1, 4));
  const exec::ExecutionPlan plan = sim.plan(c);
  exec::DistState s1 = exec::initial_state(plan, sim.cluster());
  exec::DistState s2 = exec::initial_state(plan, sim.cluster());
  sim.execute(plan, s1);
  sim.execute(plan, s2);
  EXPECT_LT(s1.gather().max_abs_diff(s2.gather()), kTol);
}

TEST(EndToEnd, XGateOnGlobalQubitViaShardXor) {
  // A circuit that forces X on a qubit the stager keeps non-local:
  // only insular gates touch the high qubit.
  const int n = 10;
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.add(Gate::h(std::min(q, 7)));
  c.add(Gate::x(9));           // insular, can stay global
  c.add(Gate::cp(9, 0, 0.5));  // diagonal, reads q9 = 1 now
  const Simulator sim(small_config(n, 8, 1, 1, 2));
  const SimulationResult result = sim.simulate(c);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-8);
}

TEST(EndToEnd, HhlSmallMatchesReference) {
  const Circuit c = circuits::hhl(5, 10);
  const Simulator sim(small_config(10, 7, 2, 1, 4));
  const SimulationResult result = sim.simulate(c);
  const StateVector expected = simulate_reference(c);
  EXPECT_LT(result.state.gather().max_abs_diff(expected), 1e-7);
}

}  // namespace
}  // namespace atlas
