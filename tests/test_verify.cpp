// Verification-layer tests: adversarial corruption of every artifact
// the verify/ checkers cover (hand-assembled circuits, stagings,
// plans, stage programs, Kraus sets, readout confusion), asserting the
// precise diagnostic Code each corruption class raises — plus a
// clean-pass property sweep over the Table-I benchmark families at
// paranoid level proving the checkers raise no false positives on
// everything the real pipeline produces.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "circuits/families.h"
#include "core/pipeline.h"
#include "exec/executor.h"
#include "exec/stage_program.h"
#include "ir/circuit.h"
#include "ir/gate.h"
#include "ir/matrix.h"
#include "ir/param.h"
#include "kernelize/kernelizer.h"
#include "noise/channel.h"
#include "noise/model.h"
#include "staging/registry.h"
#include "staging/stage.h"
#include "verify/verify.h"

namespace atlas {
namespace {

using verify::Code;
using verify::VerifyLevel;
using verify::VerifyReport;

bool has_code(const VerifyReport& report, Code code) {
  for (const auto& d : report.diags)
    if (d.code == code) return true;
  return false;
}

// Renders the report into the gtest failure message.
::testing::AssertionResult clean(const VerifyReport& report) {
  if (report.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.to_string();
}

exec::ExecutionPlan make_plan(const Circuit& circuit,
                              const staging::MachineShape& shape) {
  CompilePipeline::Config pc;
  pc.shape = shape;
  pc.verify = VerifyLevel::off;  // tests corrupt the artifacts themselves
  CompilePipeline pipeline(pc, staging::stager_registry().create("auto"),
                          kernelize::kernelizer_registry().create("best"));
  return pipeline.build_plan(circuit, nullptr);
}

// ghz(4) = h q0; cx q0,q1; cx q1,q2; cx q2,q3 — and a staging of it
// that verify_staged accepts, which the corruption tests then break.
staging::MachineShape shape211() { return {2, 1, 1}; }

staging::StagedCircuit valid_ghz4_staging() {
  staging::StagedCircuit staged;
  staged.stages.push_back({{0, 1}, {{0, 1}, {2}, {3}}});
  staged.stages.push_back({{2, 3}, {{2, 3}, {1}, {0}}});
  return staged;
}

// --- circuit invariants -------------------------------------------------

TEST(VerifyCircuit, ConstructorsAlreadyRejectDuplicateQubits) {
  // Code::duplicate_qubit exists for deserialized/corrupted gates; the
  // factories are the first line of defense and refuse to build one.
  EXPECT_THROW(Gate::unitary({0, 0}, Matrix::identity(4)), Error);
}

TEST(VerifyCircuit, NonunitaryMatrixCaughtOnlyAtParanoid) {
  Circuit c(1);
  c.add(Gate::unitary({0}, Matrix::square(2, {{2, 0}, {0, 0}, {0, 0}, {2, 0}})));
  EXPECT_TRUE(clean(verify::verify_circuit(c, VerifyLevel::boundaries)));
  const auto report = verify::verify_circuit(c, VerifyLevel::paranoid);
  EXPECT_TRUE(has_code(report, Code::nonunitary_matrix));
}

TEST(VerifyCircuit, DanglingSlotSymbol) {
  Circuit c(1);
  c.add(Gate::rx(0, Param::symbol("$2")));  // slots must be dense {$0}
  const auto report = verify::verify_circuit(c);
  EXPECT_TRUE(has_code(report, Code::dangling_slot));
}

TEST(VerifyCircuit, DenseSlotsPass) {
  Circuit c(2);
  c.add(Gate::rx(0, Param::symbol("$0")));
  c.add(Gate::rz(1, Param::symbol("$1")));
  EXPECT_TRUE(clean(verify::verify_circuit(c, VerifyLevel::paranoid)));
}

// --- staging invariants -------------------------------------------------

TEST(VerifyStaged, ValidStagingPasses) {
  const Circuit c = circuits::ghz(4);
  EXPECT_TRUE(clean(verify::verify_staged(c, valid_ghz4_staging(), shape211())));
}

TEST(VerifyStaged, GateUnstaged) {
  const Circuit c = circuits::ghz(4);
  auto staged = valid_ghz4_staging();
  staged.stages[1].gate_indices.pop_back();  // drop gate 3
  const auto report = verify::verify_staged(c, staged, shape211());
  EXPECT_TRUE(has_code(report, Code::gate_unstaged));
}

TEST(VerifyStaged, GateDoubleStaged) {
  const Circuit c = circuits::ghz(4);
  auto staged = valid_ghz4_staging();
  staged.stages[1].gate_indices.push_back(1);  // gate 1 already in stage 0
  const auto report = verify::verify_staged(c, staged, shape211());
  EXPECT_TRUE(has_code(report, Code::gate_double_staged));
}

TEST(VerifyStaged, DependencyRunsBackwards) {
  const Circuit c = circuits::ghz(4);
  auto staged = valid_ghz4_staging();
  std::swap(staged.stages[0], staged.stages[1]);
  const auto report = verify::verify_staged(c, staged, shape211());
  EXPECT_TRUE(has_code(report, Code::stage_order));
}

TEST(VerifyStaged, NonInsularQubitNotLocal) {
  const Circuit c = circuits::ghz(4);
  auto staged = valid_ghz4_staging();
  // cx q1,q2 executes in stage 1; banish its target to global.
  staged.stages[1].partition = {{0, 3}, {1}, {2}};
  const auto report = verify::verify_staged(c, staged, shape211());
  EXPECT_TRUE(has_code(report, Code::stage_locality));
}

TEST(VerifyStaged, PartitionNotPermutation) {
  const Circuit c = circuits::ghz(4);
  auto staged = valid_ghz4_staging();
  staged.stages[1].partition = {{2, 2}, {1}, {0}};  // qubit 2 twice, 3 gone
  const auto report = verify::verify_staged(c, staged, shape211());
  EXPECT_TRUE(has_code(report, Code::partition_not_permutation));
}

// --- plan invariants ----------------------------------------------------

TEST(VerifyPlan, RealPlanPasses) {
  const Circuit c = circuits::ghz(4);
  const auto plan = make_plan(c, shape211());
  EXPECT_TRUE(clean(
      verify::verify_plan(plan, shape211(), &c, VerifyLevel::paranoid)));
}

TEST(VerifyPlan, SubcircuitIndexMismatch) {
  const Circuit c = circuits::ghz(4);
  auto plan = make_plan(c, shape211());
  ASSERT_FALSE(plan.stages.empty());
  ASSERT_FALSE(plan.stages[0].original_indices.empty());
  plan.stages[0].original_indices.pop_back();
  const auto report = verify::verify_plan(plan, shape211());
  EXPECT_TRUE(has_code(report, Code::stage_subcircuit_mismatch));
}

TEST(VerifyPlan, KernelDropsAGate) {
  const Circuit c = circuits::ghz(4);
  auto plan = make_plan(c, shape211());
  ASSERT_FALSE(plan.stages.empty());
  ASSERT_FALSE(plan.stages[0].kernels.kernels.empty());
  auto& kernel = plan.stages[0].kernels.kernels.back();
  ASSERT_FALSE(kernel.gate_indices.empty());
  kernel.gate_indices.pop_back();
  const auto report = verify::verify_plan(plan, shape211());
  EXPECT_TRUE(has_code(report, Code::kernel_coverage));
}

TEST(VerifyPlan, KernelLiesAboutItsQubits) {
  const Circuit c = circuits::ghz(4);
  auto plan = make_plan(c, shape211());
  ASSERT_FALSE(plan.stages.empty());
  ASSERT_FALSE(plan.stages[0].kernels.kernels.empty());
  auto& kernel = plan.stages[0].kernels.kernels[0];
  ASSERT_FALSE(kernel.qubits.empty());
  kernel.qubits.pop_back();  // declared union no longer matches members
  const auto report = verify::verify_plan(plan, shape211());
  EXPECT_TRUE(has_code(report, Code::kernel_qubits));
}

// --- stage-program invariants -------------------------------------------

TEST(VerifyStageProgram, PatternBitsUnsortedOrOutOfRange) {
  exec::StageProgram program;
  exec::KernelProgram kp;
  kp.pattern_bits = {1, 0};  // not ascending
  kp.variants.resize(4);
  program.kernels.push_back(
      std::make_shared<const exec::KernelProgram>(std::move(kp)));
  auto report = verify::verify_stage_program(program, 2, 2);
  EXPECT_TRUE(has_code(report, Code::pattern_bits_invalid));

  exec::KernelProgram kp2;
  kp2.pattern_bits = {0, 5};  // 5 >= num_shard_bits
  kp2.variants.resize(4);
  program.kernels[0] =
      std::make_shared<const exec::KernelProgram>(std::move(kp2));
  report = verify::verify_stage_program(program, 2, 2);
  EXPECT_TRUE(has_code(report, Code::pattern_bits_invalid));
}

TEST(VerifyStageProgram, VariantCountMismatch) {
  exec::StageProgram program;
  exec::KernelProgram kp;
  kp.pattern_bits = {0};
  kp.variants.resize(1);  // want 2^1 = 2
  program.kernels.push_back(
      std::make_shared<const exec::KernelProgram>(std::move(kp)));
  const auto report = verify::verify_stage_program(program, 2, 2);
  EXPECT_TRUE(has_code(report, Code::variant_count));
}

TEST(VerifyStageProgram, GatherTableRepeatsAnOffset) {
  exec::StageProgram program;
  exec::KernelProgram kp;
  kp.variants.resize(1);
  kp.variants[0].op = exec::KernelVariant::Op::Shm;
  kp.variants[0].shm.active = {0};
  kp.variants[0].shm.offset = {3, 3};  // size ok, but not injective
  program.kernels.push_back(
      std::make_shared<const exec::KernelProgram>(std::move(kp)));
  const auto report = verify::verify_stage_program(program, 2, 2);
  EXPECT_TRUE(has_code(report, Code::gather_not_bijective));
}

TEST(VerifyStageProgram, GatherTableExceedsShardBounds) {
  exec::StageProgram program;
  exec::KernelProgram kp;
  kp.variants.resize(1);
  kp.variants[0].op = exec::KernelVariant::Op::Shm;
  kp.variants[0].shm.active = {0};
  kp.variants[0].shm.offset = {1, 7};  // shard holds 2^2 = 4 amplitudes
  program.kernels.push_back(
      std::make_shared<const exec::KernelProgram>(std::move(kp)));
  const auto report = verify::verify_stage_program(program, 2, 2);
  EXPECT_TRUE(has_code(report, Code::gather_not_bijective));
}

// --- noise invariants ---------------------------------------------------

TEST(VerifyNoise, KrausOperatorWrongShape) {
  const auto report =
      verify::verify_kraus_ops({Matrix::identity(4)}, /*num_qubits=*/1);
  EXPECT_TRUE(has_code(report, Code::kraus_shape));
}

TEST(VerifyNoise, KrausSetNotCptp) {
  // sum K^dagger K = I/4: trace-decreasing, violates completeness.
  const Matrix k = Matrix::square(2, {{0.5, 0}, {0, 0}, {0, 0}, {0.5, 0}});
  const auto report = verify::verify_kraus_ops({k}, /*num_qubits=*/1);
  EXPECT_TRUE(has_code(report, Code::non_cptp));
}

TEST(VerifyNoise, ValidKrausSetPasses) {
  const auto ch = noise::KrausChannel::amplitude_damping(0.25);
  EXPECT_TRUE(clean(verify::verify_kraus_ops(ch.kraus_ops(), 1)));
}

TEST(VerifyNoise, ReadoutConfusionRowsNotStochastic) {
  noise::ReadoutError bad;
  bad.p01 = 1.5;
  bad.p10 = -0.1;
  const auto report = verify::verify_readout(bad, /*qubit=*/0);
  EXPECT_TRUE(has_code(report, Code::readout_not_stochastic));
  EXPECT_TRUE(clean(verify::verify_readout({0.01, 0.03}, 0)));
}

TEST(VerifyNoise, WellFormedModelPassesParanoid) {
  noise::NoiseModel model;
  model.after_all_gates(noise::KrausChannel::depolarizing(0.01));
  model.after_gate("cx", noise::KrausChannel::amplitude_damping(0.02));
  model.readout_error_all(0.01, 0.03);
  EXPECT_TRUE(clean(
      verify::verify_noise_model(model, 4, VerifyLevel::paranoid)));
}

// --- check() escalation -------------------------------------------------

TEST(VerifyCheck, ThrowsWithEveryDiagnosticInTheMessage) {
  Circuit c(1);
  c.add(Gate::rx(0, Param::symbol("$7")));
  const auto report = verify::verify_circuit(c);
  try {
    verify::check(report, ErrorCode::invalid_argument);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
    EXPECT_NE(std::string(e.what()).find("dangling_slot"), std::string::npos);
  }
}

TEST(VerifyCheck, CleanReportIsANoOp) {
  EXPECT_NO_THROW(verify::check(verify::verify_circuit(circuits::ghz(3))));
}

// --- clean-pass property sweep ------------------------------------------

// Every Table-I family circuit the real pipeline can produce must pass
// the paranoid checkers at every phase: zero false positives is as
// much a part of the verifier's contract as catching corruption.
TEST(VerifyProperty, TableOneFamiliesCleanAtParanoid) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> qubits(4, 6);
  const std::vector<std::pair<std::string, Circuit (*)(int)>> families = {
      {"ghz", circuits::ghz},       {"dj", circuits::dj},
      {"graphstate", circuits::graphstate},
      {"ising", circuits::ising},   {"qft", circuits::qft},
      {"wstate", circuits::wstate},
  };
  for (const int opt_level : {0, 2}) {
    for (const auto& [name, make] : families) {
      const int n = qubits(rng);
      const Circuit c = make(n);
      SCOPED_TRACE(name + "(" + std::to_string(n) + ") opt " +
                   std::to_string(opt_level));
      EXPECT_TRUE(clean(verify::verify_circuit(c, VerifyLevel::paranoid)));

      CompilePipeline::Config pc;
      pc.shape = {n - 2, 1, 1};
      pc.opt.level = opt_level;
      pc.verify = VerifyLevel::paranoid;  // pipeline throws on any finding
      CompilePipeline pipeline(pc, staging::stager_registry().create("auto"),
                              kernelize::kernelizer_registry().create("best"));
      exec::ExecutionPlan plan;
      ASSERT_NO_THROW(plan = pipeline.build_plan(pipeline.optimize(c), nullptr));
      EXPECT_TRUE(clean(verify::verify_plan(plan, pc.shape, nullptr,
                                            VerifyLevel::paranoid)));
    }
  }
}

// Seeded-parameter families (random rotation angles) exercise the
// unitarity checks with matrices far from the named-gate library.
TEST(VerifyProperty, SeededFamiliesCleanAtParanoid) {
  std::mt19937 rng(77);
  std::uniform_int_distribution<int> qubits(4, 6);
  for (const int opt_level : {0, 2}) {
    for (int trial = 0; trial < 3; ++trial) {
      const int n = qubits(rng);
      const std::uint64_t seed = rng();
      const Circuit c = trial == 0   ? circuits::qsvm(n, seed)
                        : trial == 1 ? circuits::su2random(n, seed)
                                     : circuits::vqc(n, seed);
      SCOPED_TRACE(c.name() + " n=" + std::to_string(n) + " seed=" +
                   std::to_string(seed) + " opt=" + std::to_string(opt_level));
      EXPECT_TRUE(clean(verify::verify_circuit(c, VerifyLevel::paranoid)));

      CompilePipeline::Config pc;
      pc.shape = {n - 2, 1, 1};
      pc.opt.level = opt_level;
      pc.verify = VerifyLevel::paranoid;
      CompilePipeline pipeline(pc, staging::stager_registry().create("auto"),
                              kernelize::kernelizer_registry().create("best"));
      ASSERT_NO_THROW(pipeline.build_plan(pipeline.optimize(c), nullptr));
    }
  }
}

}  // namespace
}  // namespace atlas
