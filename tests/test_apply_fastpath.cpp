// Property tests for the apply fast paths: every specialized kernel
// (1q/2q dense, diagonal, permutation, blocked general-k, shm programs)
// must produce amplitudes exactly equal (operator==, which treats
// -0.0 == +0.0) to a naive textbook gather/mat-vec/scatter loop, across
// randomized gates, randomized states, and randomized bit layouts.
// Exactness is the contract that lets the executor pick fast paths
// freely without perturbing results.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "ir/gate.h"
#include "sim/apply.h"
#include "sim/fusion.h"
#include "sim/reference.h"
#include "sim/shm_executor.h"
#include "sim/state_vector.h"

namespace atlas {
namespace {

/// The textbook loop the fast paths must reproduce bit-for-bit: gather
/// the 2^k amplitudes of each group, dense mat-vec in ascending column
/// order, scatter back.
void naive_apply(std::vector<Amp>& amps, const std::vector<int>& targets,
                 const std::vector<int>& controls, const Matrix& m) {
  const int k = static_cast<int>(targets.size());
  const int c = static_cast<int>(controls.size());
  std::vector<int> all = targets;
  all.insert(all.end(), controls.begin(), controls.end());
  std::sort(all.begin(), all.end());
  Index ctrl_mask = 0;
  for (int cq : controls) ctrl_mask |= bit(cq);
  const Index dim = Index{1} << k;
  const Index groups = static_cast<Index>(amps.size()) >> (k + c);
  std::vector<Index> offset(dim);
  for (Index v = 0; v < dim; ++v) offset[v] = spread_bits(v, targets);
  std::vector<Amp> in(dim), out(dim);
  for (Index g = 0; g < groups; ++g) {
    const Index base = insert_zero_bits(g, all) | ctrl_mask;
    for (Index v = 0; v < dim; ++v) in[v] = amps[base | offset[v]];
    for (Index r = 0; r < dim; ++r) {
      Amp acc{};
      for (Index col = 0; col < dim; ++col)
        acc += m(static_cast<int>(r), static_cast<int>(col)) * in[col];
      out[r] = acc;
    }
    for (Index v = 0; v < dim; ++v) amps[base | offset[v]] = out[v];
  }
}

std::vector<Amp> random_amps(int n, std::uint64_t seed) {
  return StateVector::random(n, seed).amplitudes();
}

/// Draws `count` distinct bit positions in [0, n).
std::vector<int> random_bits(Rng& rng, int n, int count) {
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < count; ++i)
    std::swap(all[i], all[i + static_cast<int>(rng.index(n - i))]);
  all.resize(count);
  return all;
}

/// A gate pool covering every fast-path class: dense/diagonal/
/// anti-diagonal 1q, controlled, 2q dense and diagonal, 3q
/// permutations.
Gate random_gate(Rng& rng, const std::vector<int>& q) {
  switch (rng.index(18)) {
    case 0: return Gate::h(q[0]);
    case 1: return Gate::x(q[0]);
    case 2: return Gate::y(q[0]);
    case 3: return Gate::z(q[0]);
    case 4: return Gate::s(q[0]);
    case 5: return Gate::t(q[0]);
    case 6: return Gate::sx(q[0]);
    case 7: return Gate::rz(q[0], rng.uniform(0, 6.28));
    case 8: return Gate::u3(q[0], rng.uniform(0, 3.1), rng.uniform(0, 3.1),
                            rng.uniform(0, 3.1));
    case 9: return Gate::cx(q[0], q[1]);
    case 10: return Gate::cz(q[0], q[1]);
    case 11: return Gate::cp(q[0], q[1], rng.uniform(0, 6.28));
    case 12: return Gate::crx(q[0], q[1], rng.uniform(0, 6.28));
    case 13: return Gate::swap(q[0], q[1]);
    case 14: return Gate::rzz(q[0], q[1], rng.uniform(0, 6.28));
    case 15: return Gate::rxx(q[0], q[1], rng.uniform(0, 6.28));
    case 16: return Gate::ccx(q[0], q[1], q[2]);
    default: return Gate::ccz(q[0], q[1], q[2]);
  }
}

class FastPathTest : public ::testing::TestWithParam<int> {};

TEST_P(FastPathTest, RandomGatesRandomLayoutsMatchNaiveExactly) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 1299709);
  for (int trial = 0; trial < 24; ++trial) {
    const int n = 3 + static_cast<int>(rng.index(6));  // 3..8 bits
    std::vector<Amp> a = random_amps(n, seed * 131 + trial);
    std::vector<Amp> b = a;
    const Gate g = random_gate(rng, random_bits(rng, n, 3));

    // Randomized layout: logical qubit q lives at buffer bit
    // bit_of_qubit[q], a random permutation — the naive reference gets
    // the already-mapped positions, so any remapping bug diverges.
    const std::vector<int> bit_of_qubit = random_bits(rng, n, n);
    apply_gate_mapped(a.data(), static_cast<Index>(a.size()), g,
                      bit_of_qubit);

    std::vector<int> targets, controls;
    for (Qubit q : g.targets())
      targets.push_back(bit_of_qubit[static_cast<std::size_t>(q)]);
    for (Qubit q : g.controls())
      controls.push_back(bit_of_qubit[static_cast<std::size_t>(q)]);
    naive_apply(b, targets, controls, g.target_matrix());

    ASSERT_EQ(a, b) << "gate " << g.to_string() << " trial " << trial
                    << " seed " << seed;
  }
}

TEST_P(FastPathTest, PreparedGateMatchesOneShotExactly) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  for (int trial = 0; trial < 16; ++trial) {
    const int n = 4 + static_cast<int>(rng.index(5));  // 4..8 bits
    const int k = 1 + static_cast<int>(rng.index(3));  // 1..3 targets
    const int c = static_cast<int>(rng.index(2));      // 0..1 controls
    std::vector<int> bits = random_bits(rng, n, k + c);
    MatrixOp op;
    op.targets.assign(bits.begin(), bits.begin() + k);
    op.controls.assign(bits.begin() + k, bits.end());
    op.m = Matrix(1 << k, 1 << k);
    for (int r = 0; r < (1 << k); ++r)
      for (int col = 0; col < (1 << k); ++col) op.m(r, col) = rng.amp();

    std::vector<Amp> a = random_amps(n, seed * 977 + trial);
    std::vector<Amp> b = a;
    const PreparedGate prepared = prepare_gate(op);
    apply_prepared(a.data(), static_cast<Index>(a.size()), prepared);
    naive_apply(b, op.targets, op.controls, op.m);
    ASSERT_EQ(a, b) << "k=" << k << " c=" << c << " trial " << trial;
  }
}

TEST_P(FastPathTest, ShmProgramMatchesDirectApplicationExactly) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 65537 + 7);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 5 + static_cast<int>(rng.index(4));  // 5..8 bits
    // A random permutation layout for the first `n` logical qubits.
    std::vector<int> bit_of_qubit = random_bits(rng, n, n);
    std::vector<Gate> gates;
    const int num_gates = 2 + static_cast<int>(rng.index(5));
    for (int i = 0; i < num_gates; ++i)
      gates.push_back(random_gate(rng, random_bits(rng, n, 3)));

    std::vector<Amp> a = random_amps(n, seed * 31 + trial);
    std::vector<Amp> b = a;
    run_shared_memory_kernel(a.data(), static_cast<Index>(a.size()), gates,
                             bit_of_qubit);
    for (const Gate& g : gates)
      apply_gate_mapped(b.data(), static_cast<Index>(b.size()), g,
                        bit_of_qubit);
    ASSERT_EQ(a, b) << "trial " << trial << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathTest, ::testing::Range(1, 9));

TEST(FastPathClassification, PicksTheExpectedPaths) {
  const auto path_of = [](const Gate& g) {
    MatrixOp op;
    op.m = g.target_matrix();
    for (Qubit q : g.targets()) op.targets.push_back(q);
    for (Qubit q : g.controls()) op.controls.push_back(q);
    return prepare_gate(op).path;
  };
  EXPECT_EQ(path_of(Gate::h(0)), ApplyPath::Dense1q);
  EXPECT_EQ(path_of(Gate::z(0)), ApplyPath::Diag1q);
  EXPECT_EQ(path_of(Gate::rz(0, 0.4)), ApplyPath::Diag1q);
  EXPECT_EQ(path_of(Gate::x(0)), ApplyPath::PermK);
  EXPECT_EQ(path_of(Gate::cx(0, 1)), ApplyPath::PermK);  // X under control
  EXPECT_EQ(path_of(Gate::rzz(0, 1, 0.4)), ApplyPath::DiagK);
  EXPECT_EQ(path_of(Gate::swap(0, 1)), ApplyPath::PermK);
  EXPECT_EQ(path_of(Gate::rxx(0, 1, 0.4)), ApplyPath::Dense2q);
  // A generic dense 3-qubit unitary lands on the blocked general path.
  Rng rng(42);
  Matrix m(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) m(r, c) = rng.amp();
  EXPECT_EQ(path_of(Gate::unitary({0, 1, 2}, m)), ApplyPath::DenseK);
}

TEST(FastPathClassification, ExactZeroTestNeverDropsTinyEntries) {
  // 1e-300 is numerically negligible but not zero: the classifier must
  // keep the dense path so results stay bit-identical to the naive
  // loop.
  Matrix m = Matrix::identity(2);
  m(0, 1) = Amp(1e-300, 0);
  MatrixOp op;
  op.m = m;
  op.targets = {0};
  EXPECT_EQ(prepare_gate(op).path, ApplyPath::Dense1q);

  std::vector<Amp> a = random_amps(4, 99);
  std::vector<Amp> b = a;
  apply_matrix(a.data(), static_cast<Index>(a.size()), {0}, m);
  naive_apply(b, {0}, {}, m);
  EXPECT_EQ(a, b);
}

TEST(FuseMatrixOps, MatchesGateFusionExactly) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Gate> gates;
    std::vector<MatrixOp> ops;
    const int num_gates = 2 + static_cast<int>(rng.index(4));
    for (int i = 0; i < num_gates; ++i) {
      const Gate g = random_gate(rng, random_bits(rng, 4, 3));
      gates.push_back(g);
      MatrixOp op;
      op.m = g.target_matrix();
      for (Qubit q : g.targets()) op.targets.push_back(q);
      for (Qubit q : g.controls()) op.controls.push_back(q);
      ops.push_back(std::move(op));
    }
    const Gate fused = fuse_to_gate(gates);
    std::vector<int> span;
    for (Qubit q : fused.targets()) span.push_back(q);
    const Matrix via_ops = fuse_matrix_ops(ops, span);
    EXPECT_EQ(Matrix::max_abs_diff(fused.target_matrix(), via_ops), 0.0)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace atlas
