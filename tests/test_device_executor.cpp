// Device-executor tests: the explicit-transfer backend must be
// invisible to results — bit-identical to "inmemory" across randomized
// circuits, shapes, sweeps, and noisy trajectory batches (including
// derived seeds and measurement-sample streams) — while its buffer
// lifecycle stays airtight: zero leaked staging blocks after a session
// closes, constants uploaded once per stage per batch, and delta
// binding paying K + (N-1)*P kernel binds for an N-point batch instead
// of N*K. The CommandQueue is exercised directly for ordering,
// error propagation, and teardown under load (the TSan job runs this
// whole binary, so the stress tests double as race detectors).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "circuits/families.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "device/buffer.h"
#include "device/command_queue.h"
#include "exec/backend.h"
#include "exec/device_executor.h"
#include "exec/stage_program.h"
#include "noise/channel.h"
#include "noise/model.h"
#include "noise/result.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace atlas {
namespace {

Circuit make_ansatz(int n, int layers) {
  Circuit c(n, "device_ansatz");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (int l = 0; l < layers; ++l) {
    const Param gamma = Param::symbol("gamma" + std::to_string(l));
    const Param theta = Param::symbol("theta" + std::to_string(l));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::rzz(q, (q + 1) % n, gamma));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::rx(q, theta));
  }
  return c;
}

/// Constant layers across every qubit, rotations confined to qubit 0:
/// kernelization groups gates by qubit set, so the kernels that never
/// see qubit 0 are parameter-independent — the shape that makes the
/// bind-many delta measurable (P < K).
Circuit make_mixed_circuit(int n) {
  Circuit c(n, "device_mixed");
  for (int layer = 0; layer < 3; ++layer) {
    for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
    for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::cx(q, q + 1));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::t(q));
  }
  const Param theta = Param::symbol("theta");
  c.add(Gate::rx(0, theta));
  c.add(Gate::rz(0, theta));
  return c;
}

std::vector<Amp> amplitudes(const SimulationResult& r) {
  return r.state.gather().amplitudes();
}

/// `gpus` defaults to the non-offloading 2^R; pass fewer to force the
/// DRAM-offloading regime (shards outnumber modeled GPUs).
SessionConfig shaped(const std::string& executor, int local, int regional,
                     int global, int gpus = 0) {
  SessionConfig cfg;
  cfg.executor = executor;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = gpus > 0 ? gpus : (1 << regional);
  cfg.cluster.num_threads = 2;
  return cfg;
}

std::vector<std::vector<double>> sweep_points(const CompiledCircuit& compiled,
                                              int count,
                                              std::uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<std::vector<double>> points(static_cast<std::size_t>(count));
  for (auto& p : points) {
    p.resize(compiled.symbols().size());
    for (double& v : p) v = rng.uniform() * 6.28318 - 3.14159;
  }
  return points;
}

TEST(DeviceRegistry, DeviceBackendRegistered) {
  EXPECT_TRUE(exec::executor_registry().contains("device"));
  const auto backend = exec::executor_registry().create("device");
  EXPECT_EQ(backend->name(), "device");
  EXPECT_TRUE(backend->batched_launches(shaped("device", 4, 1, 0).cluster));
}

// -------------------------------------------------------------------
// Bit-identity: "device" vs "inmemory" on randomized circuits/shapes.
// -------------------------------------------------------------------

class DeviceShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(DeviceShapeTest, RandomCircuitsBitIdenticalToInmemory) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919);
  const int local = 4 + static_cast<int>(rng.index(2));  // 4..5
  const int regional = static_cast<int>(rng.index(3));   // 0..2
  const int global = static_cast<int>(rng.index(2));     // 0..1
  const int n = local + regional + global;
  const Circuit c = circuits::random_circuit(n, 40, seed * 131);

  const Session dev(shaped("device", local, regional, global));
  const Session mem(shaped("inmemory", local, regional, global));
  const SimulationResult rd = dev.simulate(c);
  const SimulationResult rm = mem.simulate(c);

  EXPECT_EQ(rd.seed, rm.seed) << "derived seeds diverged at seed " << seed;
  const std::vector<Amp> ad = amplitudes(rd), am = amplitudes(rm);
  ASSERT_EQ(ad.size(), am.size());
  for (std::size_t i = 0; i < ad.size(); ++i)
    ASSERT_EQ(ad[i], am[i]) << "amp " << i << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceShapeTest, ::testing::Range(1, 9));

TEST(DeviceExecutor, SweepBitIdenticalToInmemoryIncludingSampleStreams) {
  const Circuit ansatz = make_ansatz(7, 2);
  const Session dev(shaped("device", 4, 2, 1));
  const Session mem(shaped("inmemory", 4, 2, 1));
  const CompiledCircuit cd = dev.compile(ansatz);
  const CompiledCircuit cm = mem.compile(ansatz);
  const std::vector<std::vector<double>> points = sweep_points(cd, 12);

  const std::vector<SimulationResult> rd = dev.sweep(cd, points);
  const std::vector<SimulationResult> rm = mem.sweep(cm, points);
  ASSERT_EQ(rd.size(), rm.size());
  for (std::size_t i = 0; i < rd.size(); ++i) {
    EXPECT_EQ(rd[i].seed, rm[i].seed) << "point " << i;
    EXPECT_EQ(amplitudes(rd[i]), amplitudes(rm[i])) << "point " << i;
    // Repeated draws advance each result's internal sample counter the
    // same way on both backends — the whole stream matches, not just
    // the first shot batch.
    EXPECT_EQ(rd[i].sample(8), rm[i].sample(8)) << "point " << i;
    EXPECT_EQ(rd[i].sample(8), rm[i].sample(8)) << "point " << i;
  }
}

TEST(DeviceExecutor, OffloadingShapeMatchesOffloadBackendAndItsMetering) {
  // 4 shards/node on 1 modeled GPU: the regime the offload backend
  // models. The device backend must produce the same state and meter
  // the same modeled offload/kernel traffic, field for field.
  const Circuit c = circuits::qft(7);
  const Session dev(shaped("device", 4, 2, 1, /*gpus=*/1));
  const Session off(shaped("offload", 4, 2, 1, /*gpus=*/1));
  const SimulationResult rd = dev.simulate(c);
  const SimulationResult ro = off.simulate(c);

  EXPECT_EQ(amplitudes(rd), amplitudes(ro));
  EXPECT_EQ(rd.report.totals.offload_bytes, ro.report.totals.offload_bytes);
  EXPECT_GT(rd.report.totals.offload_bytes, 0u);
  EXPECT_EQ(rd.report.totals.kernel_bytes, ro.report.totals.kernel_bytes);
  EXPECT_EQ(rd.report.totals.inter_node_bytes,
            ro.report.totals.inter_node_bytes);
}

TEST(DeviceExecutor, BatchedSweepBitIdenticalToPerPointRuns) {
  const Circuit ansatz = make_ansatz(6, 2);
  const Session dev(shaped("device", 4, 2, 0, /*gpus=*/2));
  const CompiledCircuit compiled = dev.compile(ansatz);
  const std::vector<std::vector<double>> points = sweep_points(compiled, 9);

  const std::vector<SimulationResult> batched = dev.sweep(compiled, points);
  ASSERT_EQ(batched.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SimulationResult solo = dev.run(compiled, points[i]);
    EXPECT_EQ(batched[i].seed, solo.seed) << "point " << i;
    EXPECT_EQ(amplitudes(batched[i]), amplitudes(solo)) << "point " << i;
  }
}

TEST(DeviceExecutor, RunNoisyBitIdenticalToInmemory) {
  const Circuit c = make_ansatz(5, 1).bind(
      {{"gamma0", 0.37}, {"theta0", 1.21}});
  noise::NoiseModel model;
  model.after_all_gates(noise::KrausChannel::depolarizing(0.06));
  model.readout_error_all(0.02, 0.03);
  noise::NoisyRunOptions opts;
  opts.trajectories = 70;  // > 2 chunks through the batched path
  opts.shots = 12;
  opts.accumulate_probabilities = true;

  const noise::NoisyResult rd =
      Session(shaped("device", 3, 1, 1)).run_noisy(c, model, opts);
  const noise::NoisyResult rm =
      Session(shaped("inmemory", 3, 1, 1)).run_noisy(c, model, opts);

  ASSERT_TRUE(rd.pauli_fast_path());
  EXPECT_EQ(rd.counts(), rm.counts());
  EXPECT_EQ(rd.probabilities(), rm.probabilities());
  for (Qubit q = 0; q < c.num_qubits(); ++q) {
    EXPECT_EQ(rd.expectation_z(q).value, rm.expectation_z(q).value) << q;
    EXPECT_EQ(rd.expectation_z(q).std_error, rm.expectation_z(q).std_error)
        << q;
  }
}

// -------------------------------------------------------------------
// Buffer lifecycle and bind accounting.
// -------------------------------------------------------------------

TEST(DeviceBuffers, NoLeakedBuffersAfterSessionClose) {
  const device::BufferStats before = device::buffer_stats();
  {
    const Session dev(shaped("device", 4, 2, 0, /*gpus=*/2));
    const CompiledCircuit compiled = dev.compile(make_ansatz(6, 2));
    const std::vector<SimulationResult> results =
        dev.sweep(compiled, sweep_points(compiled, 8));
    ASSERT_EQ(results.size(), 8u);
  }
  const device::BufferStats after = device::buffer_stats();
  EXPECT_EQ(after.live_buffers, before.live_buffers);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  // Every block the session's arenas carved was returned to the OS.
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks);
  EXPECT_GT(after.uploads, before.uploads);
  EXPECT_GT(after.downloads, before.downloads);
}

TEST(DeviceBuffers, ConstantsUploadOncePerStagePerBatch) {
  const Session dev(shaped("device", 4, 2, 0, /*gpus=*/2));
  const CompiledCircuit compiled = dev.compile(make_ansatz(6, 2));
  const std::vector<std::vector<double>> points = sweep_points(compiled, 32);
  dev.sweep(compiled, points);  // warm the plan + skeleton caches

  obs::Counter& const_uploads =
      obs::counter(obs::names::kDeviceConstUploads);
  obs::Counter& batches = obs::counter(obs::names::kDeviceBatches);
  const std::uint64_t uploads0 = const_uploads.value();
  const std::uint64_t batches0 = batches.value();
  dev.sweep(compiled, points);
  // One constant bind per stage for the whole 32-point batch — not one
  // per point.
  const std::uint64_t stages = compiled.plan()->stages.size();
  EXPECT_EQ(batches.value() - batches0, 1u);
  EXPECT_EQ(const_uploads.value() - uploads0, stages);
}

TEST(DeviceBuffers, DeltaBindPaysConstantsOncePerBatch) {
  const Session dev(shaped("device", 4, 2, 0, /*gpus=*/2));
  const CompiledCircuit compiled = dev.compile(make_mixed_circuit(6));
  const std::vector<std::vector<double>> p1 = sweep_points(compiled, 1);
  dev.run(compiled, p1[0]);  // warm skeleton cache

  // Batch of N pays K + (N-1)*P kernel binds: K full binds for the
  // first point of each stage, then only the P parameter-dependent
  // kernels per additional point. Probe K, then solve for P from two
  // batch sizes and check the affine structure holds exactly.
  const std::uint64_t b0 = exec::stage_kernel_binds();
  dev.run(compiled, p1[0]);
  const std::uint64_t k = exec::stage_kernel_binds() - b0;  // K + 0*P
  const std::uint64_t b1 = exec::stage_kernel_binds();
  dev.sweep(compiled, sweep_points(compiled, 8));
  const std::uint64_t binds8 = exec::stage_kernel_binds() - b1;  // K + 7P
  const std::uint64_t b2 = exec::stage_kernel_binds();
  dev.sweep(compiled, sweep_points(compiled, 16));
  const std::uint64_t binds16 = exec::stage_kernel_binds() - b2;  // K + 15P

  ASSERT_GT(k, 0u);
  ASSERT_GE(binds8, k);
  const std::uint64_t p8 = binds8 - k;          // 7P
  const std::uint64_t p16 = binds16 - k;        // 15P
  EXPECT_EQ(p8 % 7, 0u);
  EXPECT_EQ(p16 % 15, 0u);
  EXPECT_EQ(p8 / 7, p16 / 15);                  // same P both ways
  EXPECT_LE(p8 / 7, k);                         // P <= K by definition
  // The whole point: far fewer binds than naive N*K rebinding.
  EXPECT_LT(binds16, 16 * k);
}

// -------------------------------------------------------------------
// Capacity errors and auto-selection.
// -------------------------------------------------------------------

TEST(DeviceCapacity, TypedCapacityErrorWhenStagingArenaExceedsCap) {
  SessionConfig cfg = shaped("device", 5, 2, 0, /*gpus=*/2);
  cfg.cluster.max_staging_bytes = 64;  // far below 2 slots/GPU
  try {
    const Session session(cfg);
    FAIL() << "expected capacity error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::capacity) << e.what();
  }
  EXPECT_GT(exec::device_staging_bytes(cfg.cluster), 64u);
}

TEST(DeviceCapacity, AutoReportsTypedCapacityErrorWhenNoBackendFits) {
  // Offloading shape rules out "inmemory"; the staging cap rules out
  // "device" — "auto" must surface a typed capacity error naming both.
  SessionConfig cfg = shaped("auto", 5, 2, 0, /*gpus=*/1);
  cfg.cluster.max_staging_bytes = 64;
  try {
    const Session session(cfg);
    FAIL() << "expected capacity error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::capacity) << e.what();
    EXPECT_NE(std::string(e.what()).find("device"), std::string::npos);
  }
}

TEST(DeviceCapacity, AutoPrefersDeviceOnOffloadingShapes) {
  obs::Counter& launches = obs::counter(obs::names::kDeviceLaunches);
  const Circuit c = circuits::ghz(6);

  const std::uint64_t before_mem = launches.value();
  Session(shaped("auto", 4, 1, 1)).simulate(c);  // 2 GPUs, 2 shards/node
  EXPECT_EQ(launches.value(), before_mem)
      << "auto must keep using inmemory when every shard has a GPU";

  const std::uint64_t before_dev = launches.value();
  Session(shaped("auto", 4, 1, 1, /*gpus=*/1)).simulate(c);  // offloading
  EXPECT_GT(launches.value(), before_dev)
      << "auto must route offloading shapes through the device backend";
}

// -------------------------------------------------------------------
// CommandQueue: ordering, error propagation, teardown under load.
// -------------------------------------------------------------------

TEST(CommandQueue, PipelinedRoundsProduceOrderedResults) {
  ThreadPool pool(3);
  device::StagingPool staging;
  constexpr std::size_t kAmps = 64;
  constexpr int kRounds = 10;
  const std::size_t bytes = kAmps * sizeof(Amp);
  // One exec token, two slots — the double-buffered steady state.
  device::CommandQueue queue(pool, 1, 2);
  std::vector<device::DeviceBuffer> slots = {staging.allocate(bytes),
                                             staging.allocate(bytes)};
  std::vector<std::vector<Amp>> host(kRounds, std::vector<Amp>(kAmps));
  for (int r = 0; r < kRounds; ++r)
    for (std::size_t i = 0; i < kAmps; ++i)
      host[r][i] = Amp(static_cast<double>(r), static_cast<double>(i));

  for (int r = 0; r < kRounds; ++r) {
    const int slot = r & 1;
    device::DeviceBuffer buf = slots[static_cast<std::size_t>(slot)];
    queue.enqueue_h2d(buf, host[r].data(), bytes, slot);
    queue.enqueue_launch(
        [buf]() {
          for (std::size_t i = 0; i < kAmps; ++i) buf.data()[i] *= 2.0;
        },
        /*exec_token=*/0, slot);
    queue.enqueue_d2h(buf, host[r].data(), bytes, slot);
  }
  queue.sync();
  for (int r = 0; r < kRounds; ++r)
    for (std::size_t i = 0; i < kAmps; ++i)
      ASSERT_EQ(host[r][i],
                Amp(2.0 * r, 2.0 * static_cast<double>(i)))
          << "round " << r << " amp " << i;
}

TEST(CommandQueue, SyncRethrowsFirstLaunchError) {
  ThreadPool pool(2);
  device::StagingPool staging;
  device::CommandQueue queue(pool, 1, 1);
  device::DeviceBuffer buf = staging.allocate(sizeof(Amp));
  queue.enqueue_launch(
      []() { throw Error("injected launch failure", ErrorCode::internal); },
      0, 0);
  queue.enqueue_launch([]() {}, 0, 0);  // queue keeps draining after
  try {
    queue.sync();
    FAIL() << "expected the launch error to surface from sync()";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
  queue.sync();  // error is consumed; the queue stays usable
}

TEST(CommandQueue, TeardownUnderLoadLeaksNothing) {
  const device::BufferStats before = device::buffer_stats();
  {
    ThreadPool pool(4);
    for (int iter = 0; iter < 20; ++iter) {
      device::StagingPool staging;
      constexpr std::size_t kAmps = 256;
      const std::size_t bytes = kAmps * sizeof(Amp);
      std::vector<Amp> host(kAmps, Amp(1.0, -1.0));
      device::CommandQueue queue(pool, 2, 4);
      for (int r = 0; r < 32; ++r) {
        const int slot = r & 3;
        device::DeviceBuffer buf = staging.allocate(bytes);
        queue.enqueue_h2d(buf, host.data(), bytes, slot);
        queue.enqueue_launch(
            [buf]() {
              for (std::size_t i = 0; i < kAmps; ++i) buf.data()[i] += 1.0;
            },
            r & 1, slot);
        if (r % 4 == 0) queue.enqueue_barrier();
        queue.enqueue_d2h(buf, host.data(), bytes, slot);
      }
      // No sync: the destructor must drain in-flight launches, release
      // every captured handle, and join — under TSan this is the
      // teardown-under-load race check.
    }
  }
  const device::BufferStats after = device::buffer_stats();
  EXPECT_EQ(after.live_buffers, before.live_buffers);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks);
}

}  // namespace
}  // namespace atlas
