// Concurrent-session stress tests: many threads hammering one
// atlas::Session (compile/run/sweep/submit/plan-cache churn) and one
// serve::SessionStore (open/get/run/close racing the TTL purge
// thread). These exist to run under ThreadSanitizer in CI — the
// assertions are deliberately light; the sanitizer is the real check.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "circuits/families.h"
#include "core/atlas.h"
#include "serve/session_store.h"

namespace atlas {
namespace {

SessionConfig stress_config() {
  SessionConfig cfg;
  cfg.cluster.local_qubits = 5;
  cfg.cluster.regional_qubits = 1;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 2;
  cfg.cluster.num_threads = 1;
  cfg.dispatch_threads = 2;
  cfg.plan_cache_capacity = 4;  // small: force eviction churn
  return cfg;
}

TEST(ConcurrencyStress, ManyThreadsHammerOneSession) {
  Session session(stress_config());
  const Circuit qft = circuits::qft(7);
  const Circuit ghz = circuits::ghz(7);

  Circuit ansatz(7, "stress_ansatz");
  const Param theta = Param::symbol("theta");
  for (int q = 0; q < 7; ++q) ansatz.add(Gate::h(q));
  for (int q = 0; q + 1 < 7; ++q) ansatz.add(Gate::cx(q, q + 1));
  for (int q = 0; q < 7; ++q) ansatz.add(Gate::rx(q, theta));

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 12;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int i = 0; i < kItersPerThread; ++i) {
          switch ((t + i) % 5) {
            case 0: {  // compile + run, racing the plan cache
              const CompiledCircuit cc = session.compile(ansatz);
              const SimulationResult r =
                  session.run(cc, std::vector<double>{0.1 * i});
              if (r.norm_sq() < 0.99) failures++;
              break;
            }
            case 1: {  // concrete simulate through the cache
              const SimulationResult r = session.simulate(qft);
              if (r.norm_sq() < 0.99) failures++;
              break;
            }
            case 2: {  // async submit
              auto fut = session.submit(ghz);
              if (fut.get().norm_sq() < 0.99) failures++;
              break;
            }
            case 3: {  // small sweep sharing one plan
              const CompiledCircuit cc = session.compile(ansatz);
              const auto rs = session.sweep(
                  cc, std::vector<std::vector<double>>{{0.2}, {0.4}});
              if (rs.size() != 2) failures++;
              break;
            }
            case 4:  // cache churn racing every other op
              session.clear_plan_cache();
              session.plan_cache_stats();
              break;
          }
        }
      } catch (...) {
        failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Counters stayed coherent through the churn.
  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_LE(stats.size, stats.capacity);
}

TEST(ConcurrencyStress, SessionStoreOpenGetRunCloseRacingPurge) {
  serve::StoreLimits limits;
  limits.max_sessions = 16;
  limits.session_ttl = std::chrono::milliseconds(40);  // aggressive TTL
  limits.purge_interval = std::chrono::milliseconds(5);
  serve::SessionStore store(stress_config(), limits);

  const Circuit ghz = circuits::ghz(7);
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 10;
  std::atomic<int> hard_failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        try {
          auto session = store.open("tenant-" + std::to_string(t),
                                    store.base_config(),
                                    std::chrono::milliseconds(40));
          // begin_work pins the session against the purge thread for
          // the duration of the run — the same protocol the server
          // follows.
          session->begin_work();
          auto found = store.get(session->id());
          SimulationResult r = found->session().simulate(ghz);
          if (r.norm_sq() < 0.99) hard_failures++;
          found->add_result(std::move(r));
          session->end_work();
          if (i % 2 == 0) {
            try {
              store.erase(session->id());
            } catch (const Error&) {
              // Racing purge may have removed it first: acceptable.
            }
          }
        } catch (const Error& e) {
          // capacity (store briefly full) is a legitimate outcome
          // under this contention; anything else is a bug.
          if (e.code() != ErrorCode::capacity &&
              e.code() != ErrorCode::not_found) {
            hard_failures++;
          }
        } catch (...) {
          hard_failures++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hard_failures.load(), 0);

  // Let the purge thread clear the field; the store must end empty.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (store.size() != 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(store.size(), 0u);
  EXPECT_GT(store.purged_total() + 1, 0u);  // counter readable & sane

  const PlanCacheStats aggregate = store.aggregate_plan_cache_stats();
  EXPECT_EQ(aggregate.size, 0u);  // no sessions left
}

TEST(ConcurrencyStress, SharedPlanCacheConcurrentFindInsert) {
  serve::SharedPlanCache cache(4);
  Session session(stress_config());
  const Circuit qft = circuits::qft(7);

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int i = 0; i < 16; ++i) {
          const std::uint64_t key = static_cast<std::uint64_t>((t + i) % 6);
          auto found = cache.find(key);
          if (!found) {
            cache.insert(key, std::make_shared<const CompiledCircuit>(
                                  session.compile(qft)));
          }
        }
      } catch (...) {
        failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const serve::SharedPlanCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace atlas
