// The exact density-matrix reference must agree with the state-vector
// oracle on noiseless circuits, preserve trace under every built-in
// channel, and reproduce the textbook analytic action of each channel
// on simple states — it is the yardstick the trajectory engine is
// measured against, so it gets its own direct validation.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/families.h"
#include "noise/density_ref.h"
#include "sim/measure.h"
#include "sim/reference.h"

namespace atlas {
namespace {

using noise::DensityMatrix;
using noise::KrausChannel;
using noise::NoiseModel;

TEST(DensityRef, NoiselessCircuitMatchesStateVector) {
  for (const char* family : {"ghz", "qft", "wstate"}) {
    const Circuit c = circuits::make_family(family, 5);
    DensityMatrix rho(5);
    rho.apply_circuit(c);
    const StateVector psi = simulate_reference(c);
    const auto probs = rho.probabilities();
    for (Index i = 0; i < psi.size(); ++i)
      EXPECT_NEAR(probs[i], probability(psi, i), 1e-10)
          << family << " basis " << i;
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  }
}

TEST(DensityRef, FromStateMatchesOuterProduct) {
  const StateVector psi = simulate_reference(circuits::ghz(3));
  const DensityMatrix rho = DensityMatrix::from_state(psi);
  EXPECT_NEAR(std::abs(rho.at(0, 0) - Amp(0.5, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rho.at(0, 7) - Amp(0.5, 0)), 0.0, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityRef, ChannelsPreserveTrace) {
  // A mixed-ish state from a couple of gates, then every built-in
  // channel: trace must stay 1 (CPTP).
  Circuit c(2);
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  c.add(Gate::ry(1, 0.7));
  for (const KrausChannel& ch :
       {KrausChannel::depolarizing(0.2), KrausChannel::bit_flip(0.3),
        KrausChannel::phase_flip(0.15), KrausChannel::bit_phase_flip(0.25),
        KrausChannel::amplitude_damping(0.4),
        KrausChannel::phase_damping(0.35)}) {
    DensityMatrix rho(2);
    rho.apply_circuit(c);
    rho.apply_channel(ch, {0});
    rho.apply_channel(ch, {1});
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10) << ch.name();
  }
  DensityMatrix rho(2);
  rho.apply_circuit(c);
  rho.apply_channel(KrausChannel::depolarizing2(0.3), {0, 1});
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10) << "depolarizing2";
}

TEST(DensityRef, BitFlipOnZero) {
  const double p = 0.23;
  DensityMatrix rho(2);
  rho.apply_channel(KrausChannel::bit_flip(p), {0});
  const auto probs = rho.probabilities();
  EXPECT_NEAR(probs[0], 1 - p, 1e-12);
  EXPECT_NEAR(probs[1], p, 1e-12);
}

TEST(DensityRef, DepolarizingShrinksZ) {
  // <Z> of |0> under depolarizing(p) is 1 - 4p/3.
  const double p = 0.3;
  DensityMatrix rho(1);
  rho.apply_channel(KrausChannel::depolarizing(p), {0});
  EXPECT_NEAR(rho.expectation_z(0), 1 - 4 * p / 3, 1e-12);
}

TEST(DensityRef, AmplitudeDampingDecaysExcitedState) {
  // |1> under amplitude damping: P(1) = 1 - gamma.
  const double gamma = 0.37;
  Circuit c(1);
  c.add(Gate::x(0));
  DensityMatrix rho(1);
  rho.apply_circuit(c);
  rho.apply_channel(KrausChannel::amplitude_damping(gamma), {0});
  const auto probs = rho.probabilities();
  EXPECT_NEAR(probs[1], 1 - gamma, 1e-12);
  EXPECT_NEAR(probs[0], gamma, 1e-12);
}

TEST(DensityRef, PhaseDampingKillsCoherenceKeepsPopulations) {
  // H|0> under phase damping: diagonal stays 1/2, off-diagonal scales
  // by sqrt(1 - lambda).
  const double lambda = 0.4;
  Circuit c(1);
  c.add(Gate::h(0));
  DensityMatrix rho(1);
  rho.apply_circuit(c);
  rho.apply_channel(KrausChannel::phase_damping(lambda), {0});
  EXPECT_NEAR(rho.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.at(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.at(0, 1).real(), 0.5 * std::sqrt(1 - lambda), 1e-12);
}

TEST(DensityRef, ReadoutConfusionOnKnownDiagonal) {
  // |10>: qubit 0 reads 0 (flips up with p01), qubit 1 reads 1 (flips
  // down with p10).
  Circuit c(2);
  c.add(Gate::x(1));
  DensityMatrix rho(2);
  rho.apply_circuit(c);
  NoiseModel model;
  model.readout_error(0, 0.1, 0.2).readout_error(1, 0.05, 0.3);
  const auto probs = rho.probabilities_with_readout(model);
  EXPECT_NEAR(probs[0b10], 0.9 * 0.7, 1e-12);
  EXPECT_NEAR(probs[0b11], 0.1 * 0.7, 1e-12);
  EXPECT_NEAR(probs[0b00], 0.9 * 0.3, 1e-12);
  EXPECT_NEAR(probs[0b01], 0.1 * 0.3, 1e-12);
}

TEST(DensityRef, SimulateDensityInterleavesSites) {
  // Noise after the H but before the CX is *not* the same as after
  // both; simulate_density must apply sites at their gate positions.
  Circuit c(2, "ghz2");
  c.add(Gate::h(0));
  c.add(Gate::cx(0, 1));
  NoiseModel after_h;
  after_h.after_gate("h", KrausChannel::bit_flip(0.5));
  const DensityMatrix rho = noise::simulate_density(c, after_h);
  // X error on qubit 0 before CX still produces a GHZ-correlated pair:
  // outcomes 00 and 11 only.
  const auto probs = rho.probabilities();
  EXPECT_NEAR(probs[0b00] + probs[0b11], 1.0, 1e-10);
  EXPECT_NEAR(probs[0b01] + probs[0b10], 0.0, 1e-10);
}

TEST(DensityRef, QubitCapAndValidation) {
  EXPECT_THROW(DensityMatrix(noise::kMaxDensityQubits + 1), Error);
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply_channel(KrausChannel::depolarizing(0.1), {0, 1}),
               Error);  // arity mismatch
  EXPECT_THROW(rho.apply_channel(KrausChannel::depolarizing(0.1), {5}),
               Error);  // qubit out of range
}

}  // namespace
}  // namespace atlas
