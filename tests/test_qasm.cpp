// QASM parser/printer tests: parsing, expression evaluation, error
// reporting, and semantic round-trips through simulation.

#include <gtest/gtest.h>

#include <numbers>

#include "circuits/families.h"
#include "qasm/qasm.h"
#include "sim/reference.h"

namespace atlas {
namespace {

TEST(Qasm, ParsesBasicProgram) {
  const Circuit c = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
rz(pi/4) q[2];
measure q[0] -> c[0];
)");
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.num_gates(), 3);
  EXPECT_EQ(c.gate(0).kind(), GateKind::H);
  EXPECT_EQ(c.gate(1).kind(), GateKind::CX);
  EXPECT_EQ(c.gate(2).kind(), GateKind::RZ);
  EXPECT_NEAR(c.gate(2).params()[0], std::numbers::pi / 4, 1e-12);
}

TEST(Qasm, ExpressionArithmetic) {
  const Circuit c = qasm::parse(
      "qreg q[1]; rz(-pi) q[0]; rz(2*pi/8) q[0]; rz((1+2)*0.5) q[0];"
      "rz(pi*(1-0.5)) q[0];");
  EXPECT_NEAR(c.gate(0).params()[0], -std::numbers::pi, 1e-12);
  EXPECT_NEAR(c.gate(1).params()[0], std::numbers::pi / 4, 1e-12);
  EXPECT_NEAR(c.gate(2).params()[0], 1.5, 1e-12);
  EXPECT_NEAR(c.gate(3).params()[0], std::numbers::pi / 2, 1e-12);
}

TEST(Qasm, CommentsIgnored) {
  const Circuit c = qasm::parse(
      "// header comment\nqreg q[1];\n// another\nh q[0]; // trailing\n");
  EXPECT_EQ(c.num_gates(), 1);
}

TEST(Qasm, MultiQubitGates) {
  const Circuit c = qasm::parse(
      "qreg q[4]; ccx q[0],q[1],q[2]; cswap q[3],q[0],q[1];"
      "cp(0.25) q[2],q[3]; rzz(0.5) q[0],q[3];");
  ASSERT_EQ(c.num_gates(), 4);
  EXPECT_EQ(c.gate(0).num_controls(), 2);
  EXPECT_EQ(c.gate(1).num_controls(), 1);
}

TEST(Qasm, ErrorsCarryLineNumbers) {
  try {
    qasm::parse("qreg q[2];\nfrobnicate q[0];");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(Qasm, RejectsGateBeforeQreg) {
  EXPECT_THROW(qasm::parse("h q[0]; qreg q[2];"), Error);
}

TEST(Qasm, RejectsUnknownRegister) {
  EXPECT_THROW(qasm::parse("qreg q[2]; h r[0];"), Error);
}

class QasmRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(QasmRoundTripTest, SemanticRoundTrip) {
  // Serialize a family circuit to QASM, parse it back, and check the
  // two circuits produce the same state (stronger than text equality).
  const Circuit original = circuits::make_family(GetParam(), 6);
  const Circuit reparsed = qasm::parse(qasm::to_qasm(original));
  EXPECT_EQ(reparsed.num_qubits(), original.num_qubits());
  EXPECT_EQ(reparsed.num_gates(), original.num_gates());
  const StateVector a = simulate_reference(original);
  const StateVector b = simulate_reference(reparsed);
  EXPECT_LT(a.max_abs_diff(b), 1e-10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, QasmRoundTripTest,
                         ::testing::ValuesIn(circuits::family_names()));

TEST(Qasm, RandomCircuitRoundTrip) {
  const Circuit original = circuits::random_circuit(5, 60, 31337);
  const Circuit reparsed = qasm::parse(qasm::to_qasm(original));
  const StateVector a = simulate_reference(original);
  const StateVector b = simulate_reference(reparsed);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

}  // namespace
}  // namespace atlas
