// QASM parser/printer tests: parsing, expression evaluation, error
// reporting, and semantic round-trips through simulation.

#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>

#include "circuits/families.h"
#include "opt/pass_manager.h"
#include "qasm/qasm.h"
#include "sim/reference.h"

namespace atlas {
namespace {

TEST(Qasm, ParsesBasicProgram) {
  const Circuit c = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
rz(pi/4) q[2];
measure q[0] -> c[0];
)");
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.num_gates(), 3);
  EXPECT_EQ(c.gate(0).kind(), GateKind::H);
  EXPECT_EQ(c.gate(1).kind(), GateKind::CX);
  EXPECT_EQ(c.gate(2).kind(), GateKind::RZ);
  EXPECT_NEAR(c.gate(2).param_value(0), std::numbers::pi / 4, 1e-12);
}

TEST(Qasm, ExpressionArithmetic) {
  const Circuit c = qasm::parse(
      "qreg q[1]; rz(-pi) q[0]; rz(2*pi/8) q[0]; rz((1+2)*0.5) q[0];"
      "rz(pi*(1-0.5)) q[0];");
  EXPECT_NEAR(c.gate(0).param_value(0), -std::numbers::pi, 1e-12);
  EXPECT_NEAR(c.gate(1).param_value(0), std::numbers::pi / 4, 1e-12);
  EXPECT_NEAR(c.gate(2).param_value(0), 1.5, 1e-12);
  EXPECT_NEAR(c.gate(3).param_value(0), std::numbers::pi / 2, 1e-12);
}

TEST(Qasm, CommentsIgnored) {
  const Circuit c = qasm::parse(
      "// header comment\nqreg q[1];\n// another\nh q[0]; // trailing\n");
  EXPECT_EQ(c.num_gates(), 1);
}

TEST(Qasm, MultiQubitGates) {
  const Circuit c = qasm::parse(
      "qreg q[4]; ccx q[0],q[1],q[2]; cswap q[3],q[0],q[1];"
      "cp(0.25) q[2],q[3]; rzz(0.5) q[0],q[3];");
  ASSERT_EQ(c.num_gates(), 4);
  EXPECT_EQ(c.gate(0).num_controls(), 2);
  EXPECT_EQ(c.gate(1).num_controls(), 1);
}

TEST(Qasm, ErrorsCarryLineNumbers) {
  try {
    qasm::parse("qreg q[2];\nfrobnicate q[0];");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(Qasm, RejectsGateBeforeQreg) {
  EXPECT_THROW(qasm::parse("h q[0]; qreg q[2];"), Error);
}

TEST(Qasm, RejectsUnknownRegister) {
  EXPECT_THROW(qasm::parse("qreg q[2]; h r[0];"), Error);
}

class QasmRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(QasmRoundTripTest, SemanticRoundTrip) {
  // Serialize a family circuit to QASM, parse it back, and check the
  // two circuits produce the same state (stronger than text equality).
  const Circuit original = circuits::make_family(GetParam(), 6);
  const Circuit reparsed = qasm::parse(qasm::to_qasm(original));
  EXPECT_EQ(reparsed.num_qubits(), original.num_qubits());
  EXPECT_EQ(reparsed.num_gates(), original.num_gates());
  const StateVector a = simulate_reference(original);
  const StateVector b = simulate_reference(reparsed);
  EXPECT_LT(a.max_abs_diff(b), 1e-10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, QasmRoundTripTest,
                         ::testing::ValuesIn(circuits::family_names()));

// --- symbolic parameters (OpenQASM 3 input declarations) ----------------

constexpr const char* kParameterizedAnsatz = R"(
OPENQASM 3.0;
include "stdgates.inc";
input float theta;
input float gamma, beta;
qreg q[4];
h q[0];
h q[1];
h q[2];
h q[3];
rzz(gamma) q[0], q[1];
rzz(2*gamma) q[1], q[2];
rzz(gamma + pi/4) q[2], q[3];
rx(theta) q[0];
rx(-theta) q[1];
rx(theta/2) q[2];
crz(beta - 0.5) q[0], q[3];
)";

TEST(QasmSymbolic, ParsesInputDeclarationsIntoParams) {
  const Circuit c = qasm::parse(kParameterizedAnsatz);
  EXPECT_EQ(c.num_qubits(), 4);
  ASSERT_EQ(c.num_gates(), 11);
  EXPECT_TRUE(c.is_parameterized());
  EXPECT_EQ(c.symbols(),
            (std::vector<std::string>{"beta", "gamma", "theta"}));
  // rzz(2*gamma): coefficient survives parsing.
  EXPECT_EQ(c.gate(5).param(0), 2.0 * Param::symbol("gamma"));
  // rzz(gamma + pi/4): affine constant offset survives.
  EXPECT_NEAR(
      c.gate(6).param(0).evaluate(ParamBinding{{"gamma", 0.0}}),
      std::numbers::pi / 4, 1e-12);
  // rx(-theta) keeps its sign.
  EXPECT_EQ(c.gate(8).param(0), -Param::symbol("theta"));
}

TEST(QasmSymbolic, RoundTripsThroughExport) {
  const Circuit original = qasm::parse(kParameterizedAnsatz);
  const std::string exported = qasm::to_qasm(original);
  // Export declares every free symbol.
  EXPECT_NE(exported.find("input float beta;"), std::string::npos);
  EXPECT_NE(exported.find("input float gamma;"), std::string::npos);
  EXPECT_NE(exported.find("input float theta;"), std::string::npos);

  const Circuit reparsed = qasm::parse(exported);
  EXPECT_EQ(reparsed.symbols(), original.symbols());
  EXPECT_EQ(reparsed.fingerprint(), original.fingerprint());

  // Semantic check: bind both and compare the physics.
  const ParamBinding binding{{"theta", 0.9}, {"gamma", -0.3}, {"beta", 1.7}};
  const StateVector a = simulate_reference(original.bind(binding));
  const StateVector b = simulate_reference(reparsed.bind(binding));
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(QasmSymbolic, UndeclaredSymbolThrows) {
  try {
    qasm::parse("qreg q[1]; rx(theta) q[0];");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("theta"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("input float"), std::string::npos);
  }
}

TEST(QasmSymbolic, RejectsNonAffineExpressions) {
  EXPECT_THROW(
      qasm::parse("input float a; qreg q[1]; rx(a*a) q[0];"), Error);
  EXPECT_THROW(
      qasm::parse("input float a; qreg q[1]; rx(1/a) q[0];"), Error);
}

TEST(QasmSymbolic, RejectsBadDeclarations) {
  EXPECT_THROW(qasm::parse("input int k; qreg q[1]; h q[0];"), Error);
  EXPECT_THROW(
      qasm::parse("input float a; input float a; qreg q[1]; h q[0];"), Error);
  EXPECT_THROW(qasm::parse("input float pi; qreg q[1]; h q[0];"), Error);
}

TEST(QasmSymbolic, UnderscoreIdentifiersRoundTrip) {
  Circuit c(1);
  c.add(Gate::rx(0, Param::symbol("_t0")));
  const Circuit reparsed = qasm::parse(qasm::to_qasm(c));
  EXPECT_EQ(reparsed.symbols(), (std::vector<std::string>{"_t0"}));
}

TEST(QasmSymbolic, RefusesInternalSlotSymbols) {
  // "$k" slot names (from canonicalized plans) are not QASM
  // identifiers; exporting them must fail loudly, not emit garbage.
  Circuit c(1);
  c.add(Gate::rx(0, Param::symbol("$0")));
  EXPECT_THROW(qasm::to_qasm(c), Error);
}

TEST(QasmSymbolic, WidthSuffixAndAngleTypeAccepted) {
  const Circuit c = qasm::parse(
      "input float[64] t; input angle a; qreg q[1]; rx(t) q[0]; rz(a) q[0];");
  EXPECT_EQ(c.symbols(), (std::vector<std::string>{"a", "t"}));
}

TEST(Qasm, RandomCircuitRoundTrip) {
  const Circuit original = circuits::random_circuit(5, 60, 31337);
  const Circuit reparsed = qasm::parse(qasm::to_qasm(original));
  const StateVector a = simulate_reference(original);
  const StateVector b = simulate_reference(reparsed);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

// --------------------------------------------------------------------------
// Pragma-style noise attachment.

constexpr const char* kNoisyProgram = R"(
OPENQASM 2.0;
include "qelib1.inc";
#pragma atlas noise depolarizing(0.01) all
#pragma atlas noise amplitude_damping(0.05) gate cx
#pragma atlas noise bit_flip(0.02) qubit 1
#pragma atlas noise readout(0.01, 0.03) all
#pragma atlas noise readout(0.1, 0.2) qubit 0
qreg q[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
)";

TEST(QasmNoise, PragmasBuildTheNoiseModel) {
  const qasm::NoisyParse parsed = qasm::parse_with_noise(kNoisyProgram);
  EXPECT_EQ(parsed.circuit.num_gates(), 3);
  EXPECT_FALSE(parsed.noise.empty());
  EXPECT_FALSE(parsed.noise.all_pauli());  // amplitude damping attached
  EXPECT_TRUE(parsed.noise.has_readout_error());
  EXPECT_NEAR(parsed.noise.readout_for(0).p01, 0.1, 1e-15);
  EXPECT_NEAR(parsed.noise.readout_for(2).p01, 0.01, 1e-15);
  const auto sites = parsed.noise.sites_for(parsed.circuit);
  // depolarizing: every gate qubit (1 + 2 + 2); amplitude damping on
  // both cx (2 sites of 2 qubits... one per acted qubit: 2 + 2);
  // bit_flip on qubit 1 after cx(0,1) and cx(1,2).
  int depol = 0, damp = 0, flip = 0;
  for (const auto& s : sites) {
    if (s.channel->name() == "depolarizing") ++depol;
    if (s.channel->name() == "amplitude_damping") ++damp;
    if (s.channel->name() == "bit_flip") ++flip;
  }
  EXPECT_EQ(depol, 5);
  EXPECT_EQ(damp, 4);
  EXPECT_EQ(flip, 2);
}

TEST(QasmNoise, PlainParseIgnoresPragmas) {
  const Circuit c = qasm::parse(kNoisyProgram);
  EXPECT_EQ(c.num_gates(), 3);
  EXPECT_EQ(c.num_qubits(), 3);
}

TEST(Qasm, OptimizedCircuitsRoundTripUpToGlobalPhase) {
  // Level-2 optimization emits opaque Unitary gates (1q run products,
  // 2q folded diagonals); the exporter lowers them to u3 / p+p+cp,
  // exact up to a global phase QASM 2 cannot express. The round trip
  // must preserve the ray.
  for (const char* family : {"qsvm", "ising", "su2random"}) {
    const Circuit c = circuits::make_family(family, 5);
    opt::OptOptions o;
    o.level = 2;
    opt::PassContext ctx;
    ctx.num_local_qubits = 3;
    const Circuit oc = opt::PassManager(o).run(c, ctx);
    const bool has_unitary =
        std::any_of(oc.gates().begin(), oc.gates().end(), [](const Gate& g) {
          return g.kind() == GateKind::Unitary;
        });
    EXPECT_TRUE(has_unitary) << family;  // the test exercises the new path
    const Circuit round = qasm::parse(qasm::to_qasm(oc));
    const StateVector a = simulate_reference(c);
    StateVector b = simulate_reference(round);
    // Align b's global phase on a's largest amplitude, then compare.
    Index best = 0;
    double mag = 0;
    for (Index i = 0; i < a.size(); ++i)
      if (std::abs(a[i]) > mag) {
        mag = std::abs(a[i]);
        best = i;
      }
    ASSERT_GT(std::abs(b[best]), 1e-12) << family;
    const Amp phase =
        (a[best] / std::abs(a[best])) / (b[best] / std::abs(b[best]));
    double diff = 0;
    for (Index i = 0; i < a.size(); ++i)
      diff = std::max(diff, std::abs(a[i] - phase * b[i]));
    EXPECT_LT(diff, 1e-9) << family;
  }
  // Shapes the exporter cannot express still refuse loudly.
  Circuit bad(3);
  bad.add(Gate::unitary({0, 1}, Matrix::square(4, {1, 0, 0, 0,  //
                                                   0, 0, 1, 0,  //
                                                   0, 1, 0, 0,  //
                                                   0, 0, 0, 1})));
  EXPECT_THROW(qasm::to_qasm(bad), Error);  // non-diagonal 2q unitary
}

TEST(QasmNoise, MalformedPragmasThrowWithLineNumbers) {
  const auto expect_throw_containing = [](const std::string& src,
                                          const std::string& needle) {
    try {
      qasm::parse_with_noise(src);
      FAIL() << "expected throw for: " << src;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  const std::string prelude = "qreg q[2];\nh q[0];\n";
  expect_throw_containing(
      prelude + "#pragma atlas noise warp_drive(0.1) all\n", "warp_drive");
  expect_throw_containing(
      prelude + "#pragma atlas noise depolarizing(0.1) nowhere\n", "nowhere");
  expect_throw_containing(
      prelude + "#pragma atlas noise depolarizing(1.7) all\n", "[0, 1]");
  expect_throw_containing(
      prelude + "#pragma atlas noise readout(0.1) all\n", "p01, p10");
  expect_throw_containing(prelude + "#pragma atlas teleport\n",
                          "unknown atlas pragma");
  expect_throw_containing(
      prelude + "#pragma atlas noise depolarizing(0.1) gate warp\n",
      "unknown gate name");
}

}  // namespace
}  // namespace atlas
