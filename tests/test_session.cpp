// Session API tests: backend registries (built-ins, custom engines,
// unknown names), construction-time config validation, plan-cache
// behavior (hits, eviction, disabling), legacy-Simulator equivalence,
// and concurrent submit() determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "circuits/families.h"
#include "core/atlas.h"
#include "kernelize/ordered.h"
#include "staging/snuqs.h"

namespace atlas {
namespace {

SessionConfig small_config(int local = 5, int regional = 1, int global = 1) {
  SessionConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = 1 << regional;
  cfg.cluster.num_threads = 2;
  return cfg;
}

std::vector<Amp> amplitudes(const SimulationResult& r) {
  const StateVector sv = r.state.gather();
  std::vector<Amp> out(sv.size());
  for (Index i = 0; i < sv.size(); ++i) out[i] = sv[i];
  return out;
}

// --- registries ---------------------------------------------------------

TEST(Registry, BuiltinsRegistered) {
  for (const char* name : {"ilp", "bnb", "snuqs", "auto"})
    EXPECT_TRUE(staging::stager_registry().contains(name)) << name;
  for (const char* name : {"dp", "ordered", "greedy", "best"})
    EXPECT_TRUE(kernelize::kernelizer_registry().contains(name)) << name;
  for (const char* name : {"inmemory", "offload", "auto"})
    EXPECT_TRUE(exec::executor_registry().contains(name)) << name;
}

TEST(Registry, UnknownNameThrowsListingRegistered) {
  try {
    staging::stager_registry().create("no-such-engine");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-engine"), std::string::npos);
    EXPECT_NE(what.find("bnb"), std::string::npos);  // lists known names
    EXPECT_EQ(e.code(), ErrorCode::not_found);
  }
}

TEST(Registry, SessionRejectsUnknownBackendNames) {
  SessionConfig cfg = small_config();
  cfg.stager = "no-such-stager";
  EXPECT_THROW(Session{cfg}, Error);
  cfg = small_config();
  cfg.kernelizer = "no-such-kernelizer";
  EXPECT_THROW(Session{cfg}, Error);
  cfg = small_config();
  cfg.executor = "no-such-executor";
  EXPECT_THROW(Session{cfg}, Error);
}

TEST(Registry, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      staging::stager_registry().add("bnb", [] {
        return std::shared_ptr<staging::Stager>();
      }),
      Error);
}

std::atomic<int> counting_stager_calls{0};
std::atomic<int> counting_kernelizer_calls{0};

class CountingStager final : public staging::Stager {
 public:
  std::string name() const override { return "test-counting"; }
  staging::StagedCircuit stage(const Circuit& circuit,
                               const staging::MachineShape& shape,
                               const staging::StagingOptions&) const override {
    ++counting_stager_calls;
    return staging::stage_with_snuqs(circuit, shape);
  }
};

class CountingKernelizer final : public kernelize::Kernelizer {
 public:
  std::string name() const override { return "test-counting"; }
  kernelize::Kernelization kernelize(
      const Circuit& circuit, const kernelize::CostModel& model,
      const kernelize::DpOptions&) const override {
    ++counting_kernelizer_calls;
    return kernelize::kernelize_ordered(circuit, model);
  }
};

TEST(Registry, CustomBackendsDriveASession) {
  staging::stager_registry().add(
      "test-counting", [] { return std::make_shared<CountingStager>(); });
  kernelize::kernelizer_registry().add(
      "test-counting", [] { return std::make_shared<CountingKernelizer>(); });

  SessionConfig cfg = small_config();
  cfg.stager = "test-counting";
  cfg.kernelizer = "test-counting";
  Session session(cfg);
  EXPECT_EQ(session.stager().name(), "test-counting");

  const Circuit c = circuits::qft(7);
  const SimulationResult custom = session.simulate(c);
  EXPECT_GT(counting_stager_calls.load(), 0);
  EXPECT_GT(counting_kernelizer_calls.load(), 0);

  // A different planning pipeline must still produce the same state.
  const Session reference(small_config());
  EXPECT_EQ(amplitudes(custom), amplitudes(reference.simulate(c)));
}

// --- config validation --------------------------------------------------

TEST(SessionConfigValidation, RejectsBadClusterShapes) {
  SessionConfig cfg = small_config();
  cfg.cluster.regional_qubits = -1;
  EXPECT_THROW(Session{cfg}, Error);

  cfg = small_config();
  cfg.cluster.local_qubits = -3;
  EXPECT_THROW(Session{cfg}, Error);

  cfg = small_config();
  cfg.cluster.gpus_per_node = 4;  // > 2^regional_qubits = 2
  try {
    Session session(cfg);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("gpus_per_node"), std::string::npos);
  }

  // Negative thread counts must fail fast instead of wrapping around to
  // a huge unsigned pool size.
  cfg = small_config();
  cfg.cluster.num_threads = -2;
  EXPECT_THROW(Session{cfg}, Error);

  cfg = small_config();
  cfg.dispatch_threads = -1;
  EXPECT_THROW(Session{cfg}, Error);
}

TEST(SessionConfigValidation, RejectsBadOptionRanges) {
  SessionConfig cfg = small_config();
  cfg.kernelize.prune_threshold = 0;
  EXPECT_THROW(Session{cfg}, Error);

  cfg = small_config();
  cfg.staging.bnb.beam_width = 0;
  EXPECT_THROW(Session{cfg}, Error);

  cfg = small_config();
  cfg.stage_cost_factor = -1;
  EXPECT_THROW(Session{cfg}, Error);
}

// --- plan cache ---------------------------------------------------------

TEST(PlanCache, SecondPlanOfIdenticalCircuitHits) {
  const Session session(small_config());
  const Circuit c = circuits::qft(7);
  const auto p1 = session.plan(c);
  const auto p2 = session.plan(c);
  EXPECT_EQ(p1.get(), p2.get());  // literally the same plan object

  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);

  // A structurally identical rebuild (different name) also hits.
  Circuit c2 = circuits::qft(7);
  c2.set_name("renamed");
  session.plan(c2);
  EXPECT_EQ(session.plan_cache_stats().hits, 2u);
}

TEST(PlanCache, DistinctCircuitsMissAndLruEvicts) {
  SessionConfig cfg = small_config();
  cfg.plan_cache_capacity = 1;
  const Session session(cfg);
  session.plan(circuits::qft(7));
  session.plan(circuits::ghz(7));      // evicts the qft plan
  session.plan(circuits::qft(7));      // cold again
  const PlanCacheStats stats = session.plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(PlanCache, ZeroCapacityDisablesCaching) {
  SessionConfig cfg = small_config();
  cfg.plan_cache_capacity = 0;
  const Session session(cfg);
  const Circuit c = circuits::ising(7);
  const auto p1 = session.plan(c);
  const auto p2 = session.plan(c);
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(session.plan_cache_stats().hits, 0u);
}

TEST(PlanCache, ClearResetsEntries) {
  Session session(small_config());  // clear_plan_cache() is non-const
  const Circuit c = circuits::qft(7);
  session.plan(c);
  session.clear_plan_cache();
  EXPECT_EQ(session.plan_cache_stats().size, 0u);
  session.plan(c);
  EXPECT_EQ(session.plan_cache_stats().misses, 2u);
}

TEST(Fingerprint, StructuralNotNominal) {
  Circuit a = circuits::qft(7);
  Circuit b = circuits::qft(7);
  b.set_name("other");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), circuits::qft(6).fingerprint());

  Circuit p1(2), p2(2);
  p1.add(Gate::rz(0, 0.25));
  p2.add(Gate::rz(0, 0.50));
  EXPECT_NE(p1.fingerprint(), p2.fingerprint());
}

// --- equivalence and concurrency ----------------------------------------

TEST(Session, MatchesLegacySimulatorOnThreeFamilies) {
  const SessionConfig cfg = small_config();
  const Session session(cfg);
  const Simulator simulator{SimulatorConfig(cfg)};
  for (const Circuit& c :
       {circuits::qft(7), circuits::ghz(7), circuits::ising(7)}) {
    EXPECT_EQ(amplitudes(session.simulate(c)),
              amplitudes(simulator.simulate(c)))
        << c.name();
  }
}

TEST(Session, SubmitMatchesSynchronousSimulate) {
  const Session session(small_config());
  const Circuit c = circuits::wstate(7);
  auto future = session.submit(c);
  EXPECT_EQ(amplitudes(future.get()), amplitudes(session.simulate(c)));
}

TEST(Session, SubmitPropagatesErrors) {
  const Session session(small_config());
  auto future = session.submit(circuits::qft(9));  // wrong qubit count
  EXPECT_THROW(future.get(), Error);
}

TEST(Session, ConcurrentSubmitFromManyThreadsIsBitIdentical) {
  SessionConfig cfg = small_config();
  cfg.dispatch_threads = 4;
  const Session session(cfg);

  const std::vector<Circuit> jobs = {
      circuits::qft(7),   circuits::ghz(7),    circuits::ising(7),
      circuits::dj(7),    circuits::wstate(7), circuits::qft(7),
      circuits::qsvm(7),  circuits::ghz(7)};

  // Sequential ground truth through the legacy shim.
  const Simulator simulator{SimulatorConfig(cfg)};
  std::vector<std::vector<Amp>> expected;
  for (const Circuit& c : jobs) expected.push_back(amplitudes(simulator.simulate(c)));

  // Four caller threads race submissions into the session.
  std::vector<std::future<SimulationResult>> futures(jobs.size());
  {
    std::vector<std::thread> callers;
    std::atomic<std::size_t> next{0};
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= jobs.size()) break;
          futures[i] = session.submit(jobs[i]);
        }
      });
    }
    for (auto& th : callers) th.join();
  }
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(amplitudes(futures[i].get()), expected[i]) << jobs[i].name();

  // Racing duplicates may each build cold, but once the dust settles
  // every one of the four distinct structures is cached: re-compiling
  // the full job list must be all hits (simulate()/submit() cache
  // under compile()'s structural keys).
  const std::uint64_t hits_before = session.plan_cache_stats().hits;
  for (const Circuit& c : jobs) session.compile(c);
  EXPECT_EQ(session.plan_cache_stats().hits, hits_before + jobs.size());
}

TEST(Session, SimulateBatchAlignsResults) {
  const Session session(small_config());
  std::vector<Circuit> batch = {circuits::qft(7), circuits::ghz(7)};
  const auto results = session.simulate_batch(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(amplitudes(results[0]),
            amplitudes(session.simulate(circuits::qft(7))));
  EXPECT_EQ(amplitudes(results[1]),
            amplitudes(session.simulate(circuits::ghz(7))));
}

// --- compile-once / bind-many -------------------------------------------

/// A 7-qubit two-symbol variational ansatz (theta: mixer angles,
/// gamma: entangler angles) matching small_config()'s cluster.
Circuit sweep_ansatz(int n = 7) {
  Circuit c(n, "sweep_ansatz");
  const Param theta = Param::symbol("theta");
  const Param gamma = Param::symbol("gamma");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::rzz(q, q + 1, gamma));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::rx(q, theta));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::rzz(q, q + 1, 0.5 * gamma));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::rx(q, theta + 0.1));
  return c;
}

TEST(CompiledCircuit, HandleExposesSymbolsAndSlotTable) {
  const Session session(small_config());
  const Circuit c = sweep_ansatz();
  const CompiledCircuit compiled = session.compile(c);
  ASSERT_TRUE(compiled.valid());
  EXPECT_EQ(compiled.symbols(), (std::vector<std::string>{"gamma", "theta"}));
  EXPECT_TRUE(compiled.is_parameterized());
  EXPECT_EQ(compiled.num_qubits(), 7);
  // One slot per rotation parameter: 2*(7-1) rzz + 2*7 rx.
  EXPECT_EQ(compiled.param_slots().size(), 26u);
  EXPECT_EQ(compiled.plan_key(), session.plan_key(c));
  // The handle keeps the *user* expressions, not the slot symbols.
  EXPECT_EQ(compiled.param_slots().front().expr,
            Param::symbol("gamma"));
}

TEST(CompiledCircuit, RunMatchesSimulateOfBoundCircuit) {
  const Session session(small_config());
  const CompiledCircuit compiled = session.compile(sweep_ansatz());
  const ParamBinding binding{{"theta", 0.37}, {"gamma", -1.2}};
  const SimulationResult via_run = session.run(compiled, binding);
  const SimulationResult via_simulate =
      session.simulate(sweep_ansatz().bind(binding));
  EXPECT_EQ(amplitudes(via_run), amplitudes(via_simulate));
}

TEST(CompiledCircuit, RunNamesTheMissingSymbol) {
  const Session session(small_config());
  const CompiledCircuit compiled = session.compile(sweep_ansatz());
  try {
    session.run(compiled, ParamBinding{{"theta", 0.1}});
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("gamma"), std::string::npos);
  }
}

TEST(CompiledCircuit, RejectsHandleFromDifferentClusterShape) {
  const Session a(small_config(5, 1, 1));
  const Session b(small_config(4, 2, 1));  // same 7 qubits, other shape
  const CompiledCircuit compiled = a.compile(sweep_ansatz());
  EXPECT_THROW(b.run(compiled, ParamBinding{{"theta", 0.0}, {"gamma", 0.0}}),
               Error);
}

TEST(CompiledCircuit, InvalidHandleThrows) {
  const Session session(small_config());
  EXPECT_THROW(session.run(CompiledCircuit{}), Error);
}

TEST(Session, SimulateRejectsUnboundCircuits) {
  const Session session(small_config());
  try {
    session.simulate(sweep_ansatz());
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("gamma"), std::string::npos);
  }
}

TEST(Session, ConstantParameterVariantsShareOnePlanButNotValues) {
  // Structural caching must never replay the *first* circuit's
  // parameter values: rx(0.3) and rx(0.7) share a plan yet produce
  // different states.
  const Session session(small_config());
  Circuit c1(7), c2(7);
  for (Qubit q = 0; q < 7; ++q) c1.add(Gate::rx(q, 0.3));
  for (Qubit q = 0; q < 7; ++q) c2.add(Gate::rx(q, 0.7));
  const SimulationResult r1 = session.simulate(c1);
  const SimulationResult r2 = session.simulate(c2);
  EXPECT_EQ(r1.plan.get(), r2.plan.get());  // one shared plan
  EXPECT_EQ(session.plan_cache_stats().misses, 1u);
  EXPECT_EQ(session.plan_cache_stats().hits, 1u);
  EXPECT_NE(amplitudes(r1), amplitudes(r2));  // but distinct physics
  EXPECT_EQ(amplitudes(r2),
            amplitudes(Simulator{SimulatorConfig(small_config())}.simulate(c2)));
}

std::atomic<int> sweep_stager_calls{0};
std::atomic<int> sweep_kernelizer_calls{0};

class SweepCountingStager final : public staging::Stager {
 public:
  std::string name() const override { return "sweep-counting"; }
  staging::StagedCircuit stage(const Circuit& circuit,
                               const staging::MachineShape& shape,
                               const staging::StagingOptions&) const override {
    ++sweep_stager_calls;
    return staging::stage_with_snuqs(circuit, shape);
  }
};

class SweepCountingKernelizer final : public kernelize::Kernelizer {
 public:
  std::string name() const override { return "sweep-counting"; }
  kernelize::Kernelization kernelize(
      const Circuit& circuit, const kernelize::CostModel& model,
      const kernelize::DpOptions&) const override {
    ++sweep_kernelizer_calls;
    return kernelize::kernelize_ordered(circuit, model);
  }
};

TEST(Sweep, ThirtyTwoBindingsOneStagingPassBitIdenticalResults) {
  staging::stager_registry().add(
      "sweep-counting", [] { return std::make_shared<SweepCountingStager>(); });
  kernelize::kernelizer_registry().add("sweep-counting", [] {
    return std::make_shared<SweepCountingKernelizer>();
  });

  SessionConfig cfg = small_config();
  cfg.stager = "sweep-counting";
  cfg.kernelizer = "sweep-counting";
  cfg.dispatch_threads = 4;
  const Session session(cfg);

  const CompiledCircuit compiled = session.compile(sweep_ansatz());
  std::vector<ParamBinding> bindings;
  for (int i = 0; i < 32; ++i) {
    bindings.push_back(ParamBinding{}
                           .set("theta", 0.05 * i)
                           .set("gamma", 1.0 - 0.03 * i));
  }
  const int stager_before = sweep_stager_calls.load();
  const std::vector<SimulationResult> results =
      session.sweep(compiled, bindings);

  // The whole 32-point sweep re-used compile()'s single staging +
  // kernelization pass (kernelization runs once per stage of that one
  // pass, never once per binding).
  EXPECT_EQ(sweep_stager_calls.load(), stager_before);
  EXPECT_EQ(session.plan_cache_stats().misses, 1u);
  ASSERT_EQ(results.size(), bindings.size());

  // Spot-check bit-identical agreement with the naive per-binding
  // simulate() path across the sweep.
  for (std::size_t i : {std::size_t{0}, std::size_t{15}, std::size_t{31}}) {
    EXPECT_EQ(amplitudes(results[i]),
              amplitudes(session.simulate(sweep_ansatz().bind(bindings[i]))))
        << "binding " << i;
  }
  EXPECT_EQ(sweep_stager_calls.load(), stager_before);  // still cached
}

TEST(SimulationResult, ReturnedPlanReExecutesWithItsParams) {
  // simulate()'s plan is canonicalized (slot symbols), so re-running it
  // needs the slot values the run recorded in result.params.
  const Session session(small_config());
  const Circuit c = circuits::ising(7);  // carries rotation parameters
  const SimulationResult r = session.simulate(c);
  ASSERT_FALSE(r.slot_values.empty());
  ASSERT_FALSE(r.params().empty());
  exec::DistState fresh = session.executor().initial_state(*r.plan,
                                                           session.cluster());
  session.execute(*r.plan, fresh, r.params());
  EXPECT_EQ(fresh.gather().amplitudes(), r.state.gather().amplitudes());
}

TEST(Sweep, FailsFastNamingTheBadBinding) {
  const Session session(small_config());
  const CompiledCircuit compiled = session.compile(sweep_ansatz());
  std::vector<ParamBinding> bindings = {
      ParamBinding{{"theta", 0.1}, {"gamma", 0.2}},
      ParamBinding{{"theta", 0.3}},  // gamma missing
  };
  try {
    session.sweep(compiled, bindings);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("#1"), std::string::npos);
    EXPECT_NE(what.find("gamma"), std::string::npos);
  }
}

TEST(Sweep, SubmitCompiledMatchesRun) {
  const Session session(small_config());
  const CompiledCircuit compiled = session.compile(sweep_ansatz());
  const ParamBinding binding{{"theta", 0.2}, {"gamma", 0.9}};
  auto future = session.submit(compiled, binding);
  EXPECT_EQ(amplitudes(future.get()),
            amplitudes(session.run(compiled, binding)));
}

// --- plan-cache keying (cluster shape) ----------------------------------

TEST(PlanKey, IncludesClusterShape) {
  // Two sessions over the same 7 logical qubits but different shapes
  // must key the same circuit differently: their plans embed
  // shape-dependent partitions, so shared caches must never collide.
  const Session a(small_config(5, 1, 1));
  const Session b(small_config(4, 2, 1));
  const Circuit c = circuits::qft(7);
  EXPECT_NE(a.plan_key(c), b.plan_key(c));
  EXPECT_EQ(a.plan_key(c), a.plan_key(circuits::qft(7)));

  // Structural keying: parameter values do not enter the key.
  Circuit p1(7), p2(7);
  for (Qubit q = 0; q < 7; ++q) p1.add(Gate::rz(q, 0.25));
  for (Qubit q = 0; q < 7; ++q) p2.add(Gate::rz(q, 0.50));
  EXPECT_EQ(a.plan_key(p1), a.plan_key(p2));
  EXPECT_NE(a.plan_key(p1), b.plan_key(p1));
}

// --- executor backends --------------------------------------------------

TEST(ExecutorBackend, InMemoryRefusesOffloadClusters) {
  SessionConfig cfg = small_config();
  cfg.cluster.gpus_per_node = 1;  // 2 shards/node -> offloading
  cfg.executor = "inmemory";
  // Refused at construction, before any state is allocated.
  try {
    Session session(cfg);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("inmemory"), std::string::npos);
  }

  cfg.executor = "offload";
  const Session offload_session(cfg);
  const auto r = offload_session.simulate(circuits::qft(7));
  EXPECT_GT(r.report.totals.offload_bytes, 0u);

  // "auto" must route offload clusters to the offload backend.
  cfg.executor = "auto";
  const Session auto_session(cfg);
  EXPECT_EQ(amplitudes(auto_session.simulate(circuits::qft(7))),
            amplitudes(offload_session.simulate(circuits::qft(7))));
}

// --- kernelize_best toggle ----------------------------------------------

TEST(KernelizeBest, AlsoTryOrderedToggleKeepsValidity) {
  const Circuit c = circuits::qft(7);
  const auto model = kernelize::CostModel::default_model();
  kernelize::DpOptions opts;
  opts.also_try_ordered = false;
  const auto dp_only = kernelize::kernelize_best(c, model, opts);
  kernelize::validate_kernelization(c, dp_only, model);
  opts.also_try_ordered = true;
  const auto both = kernelize::kernelize_best(c, model, opts);
  // Taking the min over an extra candidate can only help.
  EXPECT_LE(both.total_cost, dp_only.total_cost);
}

}  // namespace
}  // namespace atlas
