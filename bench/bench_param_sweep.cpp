// bench_param_sweep — the compile-once / bind-many payoff on a
// variational workload: a 64-point parameter sweep of an RZZ/RX ansatz
// (QAOA-style: per-layer entangler angle gamma_l and mixer angle
// theta_l), three ways:
//
//   cold-replan : plan cache disabled — every point pays staging +
//                 kernelization, which is what the pre-structural-cache
//                 engine did for distinct parameter values;
//   naive loop  : sequential simulate() per point — the structural
//                 cache plans once, but each point still rebuilds and
//                 re-hashes the circuit and runs alone;
//   sweep()     : one compile(), bindings fanned across the dispatch
//                 pool against the shared plan.
//
// Prints per-mode wall time, plan-cache miss counts, and speedups, and
// verifies the three modes produce bit-identical states. `--smoke`
// shrinks the sweep for CI; `--trace PATH` records the sweep session's
// compile phases and executed stages as Chrome trace-event JSON.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "util.h"

namespace atlas::bench {
namespace {

Circuit make_ansatz(int n, int layers) {
  Circuit c(n, "param_sweep_ansatz");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (int l = 0; l < layers; ++l) {
    const Param gamma = Param::symbol("gamma" + std::to_string(l));
    const Param theta = Param::symbol("theta" + std::to_string(l));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::rzz(q, (q + 1) % n, gamma));
    for (Qubit q = 0; q < n; ++q) c.add(Gate::rx(q, theta));
  }
  return c;
}

std::vector<ParamBinding> make_bindings(int points, int layers) {
  std::vector<ParamBinding> bindings;
  bindings.reserve(points);
  for (int i = 0; i < points; ++i) {
    ParamBinding b;
    for (int l = 0; l < layers; ++l) {
      b.set("gamma" + std::to_string(l), 0.11 * (i + 1) + 0.37 * l);
      b.set("theta" + std::to_string(l), 0.07 * (i + 1) - 0.23 * l);
    }
    bindings.push_back(std::move(b));
  }
  return bindings;
}

std::vector<Amp> amplitudes(const SimulationResult& r) {
  const StateVector sv = r.state.gather();
  return sv.amplitudes();
}

int run(bool smoke, const char* trace_path) {
  const int local = smoke ? 6 : 10;
  const int nonlocal = 2;
  const int layers = 2;
  const int points = smoke ? 8 : 64;
  const int n = local + nonlocal;

  print_header("Parameter sweep: naive simulate() loop vs compile()+sweep()",
               "1000-point VQE/QAOA sweeps re-staging every point",
               (std::to_string(points) + "-point sweep, " +
                std::to_string(n) + "-qubit 2-layer RZZ/RX ansatz")
                   .c_str());

  SessionConfig cfg{scaled_config(local, nonlocal, /*threads=*/2)};
  cfg.dispatch_threads = 4;
  const Circuit ansatz = make_ansatz(n, layers);
  const std::vector<ParamBinding> bindings = make_bindings(points, layers);

  // --- cold-replan: every point stages + kernelizes from scratch.
  SessionConfig cold_cfg = cfg;
  cold_cfg.plan_cache_capacity = 0;
  const Session cold_session(cold_cfg);
  Timer cold_timer;
  std::vector<Amp> cold_last;
  for (const ParamBinding& b : bindings)
    cold_last = amplitudes(cold_session.simulate(ansatz.bind(b)));
  const double cold_seconds = cold_timer.seconds();
  const auto cold_stats = cold_session.plan_cache_stats();

  // --- naive loop: structural cache plans once, runs sequentially.
  const Session naive_session(cfg);
  Timer naive_timer;
  std::vector<Amp> naive_last;
  for (const ParamBinding& b : bindings)
    naive_last = amplitudes(naive_session.simulate(ansatz.bind(b)));
  const double naive_seconds = naive_timer.seconds();
  const auto naive_stats = naive_session.plan_cache_stats();

  // --- compile + sweep: one plan, bindings fanned across the pool.
  // With --trace, this session records every compile phase and
  // executed stage into a Chrome trace-event JSON (the CI artifact;
  // load it in Perfetto / chrome://tracing).
  SessionConfig sweep_cfg = cfg;
  if (trace_path != nullptr) sweep_cfg.trace_path = trace_path;
  const Session sweep_session(sweep_cfg);
  Timer sweep_timer;
  const CompiledCircuit compiled = sweep_session.compile(ansatz);
  const std::vector<SimulationResult> results =
      sweep_session.sweep(compiled, bindings);
  const double sweep_seconds = sweep_timer.seconds();
  const auto sweep_stats = sweep_session.plan_cache_stats();

  std::printf("\n%-12s %12s %14s %12s\n", "mode", "wall [s]", "plan misses",
              "plan hits");
  std::printf("%-12s %12.4f %14llu %12llu\n", "cold-replan", cold_seconds,
              static_cast<unsigned long long>(cold_stats.misses),
              static_cast<unsigned long long>(cold_stats.hits));
  std::printf("%-12s %12.4f %14llu %12llu\n", "naive loop", naive_seconds,
              static_cast<unsigned long long>(naive_stats.misses),
              static_cast<unsigned long long>(naive_stats.hits));
  std::printf("%-12s %12.4f %14llu %12llu\n", "sweep()", sweep_seconds,
              static_cast<unsigned long long>(sweep_stats.misses),
              static_cast<unsigned long long>(sweep_stats.hits));
  std::printf("\nspeedup sweep() vs cold-replan : %6.2fx\n",
              cold_seconds / sweep_seconds);
  // The naive loop shares the structural plan cache but still pays
  // circuit bind+copy, fingerprint hashing, and compile()
  // canonicalization per point; sweep() binds through the dense slot
  // table only. With stage programs compiled once per run the common
  // execution term shrank, widening this gap from ~1.2x (PR 2) to
  // ~1.25-1.3x full / ~2x smoke-scale on a quiet host.
  std::printf("speedup sweep() vs naive loop  : %6.2fx\n",
              naive_seconds / sweep_seconds);

  // Correctness gate: the three modes must agree bit for bit on the
  // final sweep point (they execute identical kernels on identical
  // matrices; any drift means the slot binding is broken).
  const std::vector<Amp> sweep_last = amplitudes(results.back());
  if (sweep_last != naive_last || sweep_last != cold_last) {
    std::printf("FAIL: sweep() state differs from per-binding simulate()\n");
    return 1;
  }
  if (sweep_stats.misses != 1) {
    std::printf("FAIL: expected exactly 1 plan-cache miss for the sweep, "
                "got %llu\n",
                static_cast<unsigned long long>(sweep_stats.misses));
    return 1;
  }
  // Perf gates (full mode only — smoke runs on noisy CI workers): the
  // sweep must clearly beat paying staging+kernelization per point, and
  // must hold its widened lead over the warm naive loop. The naive gate
  // sits well below the quiet-host measurement (~1.25-1.3x) because a
  // loaded host compresses the ratio toward 1x — it exists to catch a
  // real inversion, not to certify the margin.
  if (!smoke && cold_seconds < 1.2 * sweep_seconds) {
    std::printf("FAIL: sweep() not measurably faster than cold replanning "
                "(%.4fs vs %.4fs)\n",
                sweep_seconds, cold_seconds);
    return 1;
  }
  if (!smoke && naive_seconds < 1.02 * sweep_seconds) {
    std::printf("FAIL: sweep() lead over the warm naive loop regressed "
                "(%.4fs vs %.4fs)\n",
                sweep_seconds, naive_seconds);
    return 1;
  }
  std::printf("check: all modes bit-identical, sweep planned once — %s\n",
              smoke ? "SMOKE PASS" : "PASS");
  return 0;
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
  }
  return atlas::bench::run(smoke, trace_path);
}
