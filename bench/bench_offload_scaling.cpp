// Figure 8: DRAM offloading scales across GPUs — simulation time of a
// fixed over-memory qft circuit on 1, 2 and 4 GPUs (the paper's
// contrast: QDAO stays flat when given more GPUs; Atlas speeds up).
//
// Part two runs the same GPU ladder through the device backend's
// batched launches: a parameter sweep over 16 DRAM shards, batched
// execute_batch() vs per-point execute(), at 1/2/4 modeled GPUs. More
// exec tokens mean more concurrent launches for the command queue to
// overlap with staging copies, so the batched advantage should hold
// across the ladder (no wall-time gate here — bench_offload owns it).

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "util.h"

namespace atlas::bench {
namespace {

// Same shape bench_offload amortizes: an entangling wash across every
// qubit, then a deep constant block confined to a 5-qubit fusion
// window, with the swept parameters on a qubit outside the window so
// the deep kernels bind once per sweep rather than once per point.
Circuit scaling_ansatz(int n) {
  Circuit c(n, "scaling_ansatz");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::cx(q, q + 1));
  const int w = std::min(5, n);
  for (int l = 0; l < 6; ++l) {
    for (int q = 0; q < w; ++q) c.add(Gate::h(q));
    for (int q = 0; q < w; ++q)
      c.add(Gate::cp(q, (q + 1) % w, 0.2 + 0.1 * q + 0.05 * l));
    for (int q = 0; q < w; ++q) c.add(Gate::t(q));
  }
  const Param theta = Param::symbol("theta");
  c.add(Gate::rx(5, theta));
  c.add(Gate::rz(5, theta));
  return c;
}

void figure8(int local) {
  const int n = local + 4;  // 16 DRAM shards

  print_header(
      "Figure 8 — DRAM offloading scales with GPUs",
      "32-qubit qft, 28 local qubits, 1/2/4 GPUs on one node",
      "qft at L+4 qubits, 16 DRAM shards swapped through 1/2/4 virtual "
      "GPUs");

  std::printf("%5s | %12s %12s | %12s\n", "GPUs", "atlas", "qdao-like",
              "atlas scaling");
  double atlas_1gpu = 0;
  for (int gpus : {1, 2, 4}) {
    SimulatorConfig cfg;
    cfg.cluster.local_qubits = local;
    cfg.cluster.regional_qubits = 4;
    cfg.cluster.global_qubits = 0;
    cfg.cluster.gpus_per_node = gpus;
    cfg.cluster.num_threads = gpus;
    const Circuit c = circuits::qft(n);

    Simulator sim(cfg);
    const auto r = sim.simulate(c);
    // With g GPUs sharing the swap link and the kernel work, the
    // modeled time divides the per-stage work across them.
    const double modeled = r.report.modeled_seconds(cfg.comm, gpus, 1);
    // QDAO cannot exploit additional GPUs (the paper's Fig. 8 shows a
    // flat line), so its modeled time always uses one GPU.
    const auto qdao =
        baselines::run_baseline(baselines::BaselineKind::Qdao, c, cfg);
    const double qmodeled = qdao.report.modeled_seconds(cfg.comm, 1, 1);
    if (gpus == 1) atlas_1gpu = modeled;
    std::printf("%5d | %10.2fms %10.2fms | %10.2fx\n", gpus, modeled * 1e3,
                qmodeled * 1e3, atlas_1gpu / modeled);
  }
  std::printf("\n(paper: Atlas scales across GPUs; QDAO's time stays flat)\n");
}

void batched_ladder(bool smoke) {
  const int local = smoke ? 6 : 8;
  const int regional = 4;  // 16 DRAM shards
  const int n = local + regional;
  const int points_n = smoke ? 8 : 16;
  const int reps = smoke ? 1 : 3;

  print_header(
      "Device backend — batched-launch speedup across the GPU ladder",
      "batched execute_batch vs per-point execute, 16 DRAM shards",
      smoke ? "8-point sweep through 1/2/4 modeled GPUs (smoke)"
            : "16-point sweep through 1/2/4 modeled GPUs");

  std::printf("%5s | %12s %12s | %8s %6s\n", "GPUs", "per-point", "batched",
              "speedup", "exact");
  for (int gpus : {1, 2, 4}) {
    SessionConfig cfg;
    cfg.executor = "device";
    cfg.cluster.local_qubits = local;
    cfg.cluster.regional_qubits = regional;
    cfg.cluster.global_qubits = 0;
    cfg.cluster.gpus_per_node = gpus;
    cfg.cluster.num_threads = std::max(2, gpus);
    const Session session(cfg);
    const CompiledCircuit compiled = session.compile(scaling_ansatz(n));

    Rng rng(0x5CA11);
    std::vector<std::vector<double>> points(
        static_cast<std::size_t>(points_n));
    for (auto& p : points) {
      p.resize(compiled.symbols().size());
      for (double& v : p) v = rng.uniform() * 6.28318 - 3.14159;
    }

    bool identical = true;
    {
      const std::vector<SimulationResult> batched =
          session.sweep(compiled, points);
      for (std::size_t i = 0; i < points.size(); ++i) {
        const SimulationResult solo = session.run(compiled, points[i]);
        identical &= solo.state.gather().amplitudes() ==
                     batched[i].state.gather().amplitudes();
      }
    }

    double per_point = 1e30, batched = 1e30;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      for (const auto& p : points) session.run(compiled, p);
      per_point = std::min(per_point, t.seconds());
    }
    for (int r = 0; r < reps; ++r) {
      Timer t;
      session.sweep(compiled, points);
      batched = std::min(batched, t.seconds());
    }
    std::printf("%5d | %10.2fms %10.2fms | %7.2fx %6s\n", gpus,
                per_point * 1e3, batched * 1e3, per_point / batched,
                identical ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  using namespace atlas;
  bool smoke = false;
  int local = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      local = std::atoi(argv[i]);
  }
  bench::figure8(smoke ? 12 : local);
  bench::batched_ladder(smoke);
  return 0;
}
