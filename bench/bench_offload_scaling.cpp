// Figure 8: DRAM offloading scales across GPUs — simulation time of a
// fixed over-memory qft circuit on 1, 2 and 4 GPUs (the paper's
// contrast: QDAO stays flat when given more GPUs; Atlas speeds up).

#include <cstdio>

#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const int local = argc > 1 ? std::atoi(argv[1]) : 16;
  const int n = local + 4;  // 16 DRAM shards

  bench::print_header(
      "Figure 8 — DRAM offloading scales with GPUs",
      "32-qubit qft, 28 local qubits, 1/2/4 GPUs on one node",
      "qft at L+4 qubits, 16 DRAM shards swapped through 1/2/4 virtual "
      "GPUs");

  std::printf("%5s | %12s %12s | %12s\n", "GPUs", "atlas", "qdao-like",
              "atlas scaling");
  double atlas_1gpu = 0;
  for (int gpus : {1, 2, 4}) {
    SimulatorConfig cfg;
    cfg.cluster.local_qubits = local;
    cfg.cluster.regional_qubits = 4;
    cfg.cluster.global_qubits = 0;
    cfg.cluster.gpus_per_node = gpus;
    cfg.cluster.num_threads = gpus;
    const Circuit c = circuits::qft(n);

    Simulator sim(cfg);
    const auto r = sim.simulate(c);
    // With g GPUs sharing the swap link and the kernel work, the
    // modeled time divides the per-stage work across them.
    const double modeled =
        r.report.modeled_seconds(cfg.comm, gpus, 1);
    // QDAO cannot exploit additional GPUs (the paper's Fig. 8 shows a
    // flat line), so its modeled time always uses one GPU.
    const auto qdao = baselines::run_baseline(baselines::BaselineKind::Qdao,
                                              c, cfg);
    const double qmodeled = qdao.report.modeled_seconds(cfg.comm, 1, 1);
    if (gpus == 1) atlas_1gpu = modeled;
    std::printf("%5d | %10.2fms %10.2fms | %10.2fx\n", gpus, modeled * 1e3,
                qmodeled * 1e3, atlas_1gpu / modeled);
  }
  std::printf("\n(paper: Atlas scales across GPUs; QDAO's time stays flat)\n");
  return 0;
}
