// bench_serve — request throughput and latency of the serving daemon.
//
// Workload: an embedded Server on a loopback socket; N client threads
// each open a tenant session, submit + compile the same parameterized
// ansatz (one shared plan across all tenants), then issue a stream of
// run() requests. Reports req/s and p50/p99 latency at several client
// counts against the in-process single-thread Session::run() rate —
// the serving overhead (framing, scheduling, fair queueing) must not
// cost more than the concurrency wins back.
//
// Gate: aggregate throughput at 16 clients >= 0.5x the in-process
// single-thread run() rate. --smoke shrinks the request counts and
// skips the gate (CI workers are noisy and often single-core); --json
// PATH emits a BENCH_serve.json artifact for trend tracking.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"
#include "qasm/qasm.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util.h"

namespace atlas::bench {
namespace {

const char* kAnsatzQasm =
    "OPENQASM 3;\n"
    "include \"qelib1.inc\";\n"
    "input float theta;\n"
    "qreg q[8];\n"
    "h q[0];\nh q[1];\nh q[2];\nh q[3];\n"
    "h q[4];\nh q[5];\nh q[6];\nh q[7];\n"
    "cx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\ncx q[3],q[4];\n"
    "cx q[4],q[5];\ncx q[5],q[6];\ncx q[6],q[7];\n"
    "rx(theta) q[0];\nrx(theta) q[1];\nrx(theta) q[2];\nrx(theta) q[3];\n"
    "rx(theta) q[4];\nrx(theta) q[5];\nrx(theta) q[6];\nrx(theta) q[7];\n";

SessionConfig serve_session_config() {
  SessionConfig cfg;
  cfg.cluster.local_qubits = 6;
  cfg.cluster.regional_qubits = 1;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 2;
  cfg.cluster.num_threads = 1;
  cfg.dispatch_threads = 1;
  return cfg;
}

struct ClientOutcome {
  double req_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

ClientOutcome drive_clients(serve::Server& server, int clients,
                            int requests_per_client) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  // All client threads observe into one obs::Histogram (lock-free
  // bucket increments) — same quantile semantics as the server's own
  // serve.request_latency_us.* metrics, so bench numbers and runtime
  // metrics are directly comparable.
  obs::Histogram latency_us;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client("127.0.0.1", server.port());
      serve::OpenSessionRequest open;
      open.tenant = "bench-" + std::to_string(c);
      const std::uint64_t sid = client.open_session(open);
      const serve::SubmitReply sub = client.submit_qasm(sid, kAnsatzQasm);
      const serve::CompileReply cc = client.compile(sid, sub.circuit_id);
      (void)client.run(sid, cc.compiled_id, {0.1});  // warm the path
      ready++;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < requests_per_client; ++i) {
        Timer t;
        (void)client.run(sid, cc.compiled_id, {0.01 * i});
        latency_us.observe(t.seconds() * 1e6);
      }
      client.close_session(sid);
    });
  }
  while (ready.load() != clients) std::this_thread::yield();
  Timer wall;
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double seconds = wall.seconds();

  const obs::Histogram::Snapshot snap = latency_us.snapshot();
  ClientOutcome out;
  out.req_per_sec =
      static_cast<double>(clients) * requests_per_client / seconds;
  out.p50_us = snap.quantile(0.50);
  out.p99_us = snap.quantile(0.99);
  return out;
}

int run(bool smoke, const char* json_path) {
  const int requests_per_client = smoke ? 40 : 250;
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  print_header(
      "Serving daemon: req/s and latency vs client count",
      "long-lived simulation service, many tenants sharing one cluster",
      (std::to_string(requests_per_client) +
       " run() requests/client over loopback, 8-qubit ansatz, shared plan")
          .c_str());

  // --- Baseline: in-process single-thread run() rate, best of 3 —
  // a scheduler hiccup in the reference would distort every ratio.
  double baseline_rps = 0;
  {
    Session session(serve_session_config());
    const qasm::NoisyParse parsed = qasm::parse_with_noise(kAnsatzQasm);
    const CompiledCircuit cc = session.compile(parsed.circuit);
    (void)session.run(cc, std::vector<double>{0.1});  // warm
    const int reps = smoke ? 200 : 1000;
    for (int round = 0; round < 3; ++round) {
      Timer t;
      for (int i = 0; i < reps; ++i)
        (void)session.run(cc, std::vector<double>{0.01 * i});
      baseline_rps = std::max(baseline_rps, reps / t.seconds());
    }
  }
  std::printf("\nbaseline    : %10.0f req/s (in-process, single thread)\n\n",
              baseline_rps);

  // --- Server: throughput/latency at several client counts.
  serve::ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = static_cast<int>(std::min(hardware, 8u));
  cfg.session = serve_session_config();
  serve::Server server(cfg);
  server.start();

  const std::vector<int> client_counts = {1, 4, 16};
  std::vector<ClientOutcome> outcomes;
  std::printf("%-8s %12s %12s %12s %10s\n", "clients", "req/s", "p50 (us)",
              "p99 (us)", "vs base");
  for (int clients : client_counts) {
    // Best of 2 rounds: same noise-rejection as the baseline's
    // best-of-3 (p50/p99 come from the better round).
    ClientOutcome o = drive_clients(server, clients, requests_per_client);
    const ClientOutcome second =
        drive_clients(server, clients, requests_per_client);
    if (second.req_per_sec > o.req_per_sec) o = second;
    outcomes.push_back(o);
    std::printf("%-8d %12.0f %12.1f %12.1f %9.2fx\n", clients, o.req_per_sec,
                o.p50_us, o.p99_us, o.req_per_sec / baseline_rps);
  }

  const serve::SharedPlanCache::Stats cache = server.shared_cache_stats();
  std::printf("\nshared plans: %llu entries, %llu hits / %llu misses — "
              "every tenant rode one compile\n",
              static_cast<unsigned long long>(cache.entries),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  server.stop();

  // --- Gate: serving 16 clients must keep at least half the
  // in-process single-thread rate (the paper's serving premise: the
  // daemon amortizes planning, so the wire cannot dominate).
  const double ratio_16 = outcomes.back().req_per_sec / baseline_rps;
  const bool gate_ok = smoke || ratio_16 >= 0.5;

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"requests_per_client\": %d,\n", requests_per_client);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(f, "  \"baseline_req_per_sec\": %.1f,\n", baseline_rps);
    std::fprintf(f, "  \"clients\": {");
    for (std::size_t i = 0; i < client_counts.size(); ++i) {
      std::fprintf(f,
                   "%s\"c%d\": {\"req_per_sec\": %.1f, \"p50_us\": %.1f, "
                   "\"p99_us\": %.1f}",
                   i == 0 ? "" : ", ", client_counts[i],
                   outcomes[i].req_per_sec, outcomes[i].p50_us,
                   outcomes[i].p99_us);
    }
    std::fprintf(f, "},\n");
    std::fprintf(f,
                 "  \"shared_plan_hits\": %llu,\n"
                 "  \"shared_plan_misses\": %llu,\n",
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses));
    std::fprintf(f, "  \"gate_ok\": %s\n}\n", gate_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (!gate_ok) {
    std::printf("FAIL: 16-client throughput %.2fx baseline (< 0.5x)\n",
                ratio_16);
    return 1;
  }
  std::printf("check: 16-client throughput %.2fx in-process baseline%s — %s\n",
              ratio_16, smoke ? " (gate skipped)" : " (>= 0.5x)",
              smoke ? "SMOKE PASS" : "PASS");
  return 0;
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return atlas::bench::run(smoke, json_path);
}
