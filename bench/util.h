#pragma once

/// \file util.h
/// Shared helpers for the benchmark harnesses. Every bench binary
/// regenerates one table or figure of the paper (see DESIGN.md's
/// per-experiment index) at a scale that fits this host; each prints a
/// header stating the substitution (paper scale -> bench scale).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "circuits/families.h"
#include "core/atlas.h"

namespace atlas::bench {

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

/// Machine config mirroring the paper's: 4 GPUs per node, `nonlocal`
/// qubits split regional-first (at most 2 regional, as in Section
/// VII-B), the rest global.
inline SimulatorConfig scaled_config(int local, int nonlocal,
                                     int threads = 1) {
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = std::min(2, nonlocal);
  cfg.cluster.global_qubits = nonlocal - cfg.cluster.regional_qubits;
  cfg.cluster.gpus_per_node = 1 << cfg.cluster.regional_qubits;
  cfg.cluster.num_threads = threads;
  // Benchmarks favor a moderate pruning threshold; Fig. 13 shows the
  // cost difference vs T=500 is within ~1% while preprocessing is 5x
  // faster.
  cfg.kernelize.prune_threshold = 100;
  return cfg;
}

/// The paper evaluates with 28 local qubits; the host runs scaled-down
/// shards. All byte traffic scales exactly linearly with 2^L, so the
/// projected numbers multiply the measured counters by 2^(28-L) and
/// re-apply the link model — at that scale bandwidth, not latency,
/// dominates, exactly as on the real machine.
inline constexpr int kPaperLocalQubits = 28;

struct RunOutcome {
  double wall_seconds = 0;
  double modeled_seconds = 0;       // at bench scale
  double projected_seconds = 0;     // bytes projected to L=28
  double projected_comm_seconds = 0;
  std::size_t stages = 0;
};

inline RunOutcome make_outcome(const exec::ExecutionReport& report,
                               const SimulatorConfig& cfg,
                               std::size_t stages) {
  const int gpus = cfg.cluster.num_nodes() * cfg.cluster.gpus_per_node;
  const int nodes = cfg.cluster.num_nodes();
  RunOutcome out;
  out.wall_seconds = report.wall_seconds;
  out.modeled_seconds = report.modeled_seconds(cfg.comm, gpus, nodes);
  device::CommStats scaled = report.totals;
  const double f = std::exp2(kPaperLocalQubits - cfg.cluster.local_qubits);
  scaled.intra_gpu_bytes = static_cast<std::uint64_t>(scaled.intra_gpu_bytes * f);
  scaled.intra_node_bytes = static_cast<std::uint64_t>(scaled.intra_node_bytes * f);
  scaled.inter_node_bytes = static_cast<std::uint64_t>(scaled.inter_node_bytes * f);
  scaled.offload_bytes = static_cast<std::uint64_t>(scaled.offload_bytes * f);
  scaled.kernel_bytes = static_cast<std::uint64_t>(scaled.kernel_bytes * f);
  out.projected_comm_seconds =
      scaled.modeled_comm_seconds(cfg.comm, gpus, nodes);
  out.projected_seconds = out.projected_comm_seconds +
                          scaled.modeled_compute_seconds(cfg.comm, gpus);
  out.stages = stages;
  return out;
}

inline RunOutcome run_atlas(const Circuit& c, const SimulatorConfig& cfg) {
  Simulator sim(cfg);
  const SimulationResult r = sim.simulate(c);
  return make_outcome(r.report, cfg, r.plan->stages.size());
}

inline RunOutcome run_base(baselines::BaselineKind kind, const Circuit& c,
                           const SimulatorConfig& cfg) {
  const auto r = baselines::run_baseline(kind, c, cfg);
  return make_outcome(r.report, cfg, r.plan.stages.size());
}

inline void print_header(const char* experiment, const char* paper_setup,
                         const char* bench_setup) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", experiment);
  std::printf("  paper setup: %s\n", paper_setup);
  std::printf("  this bench : %s\n", bench_setup);
  std::printf("==============================================================="
              "=\n");
}

}  // namespace atlas::bench
