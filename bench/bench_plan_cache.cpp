// Plan-cache microbenchmark: cold PARTITION (STAGE + KERNELIZE) vs a
// plan-cache hit on the Session API, for circuits::qft and a random
// circuit family. Plans are state-independent and reusable across runs
// (paper Section III); a served-from-cache plan() is a hash lookup, so
// repeated workloads — parameter sweeps, shot batches, re-submissions
// of a popular circuit — skip preprocessing entirely.
//
//   ./build/bench_plan_cache [max_qubits]

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const int n_lo = 16, n_hi = argc > 1 ? std::atoi(argv[1]) : 24;
  constexpr int kHitReps = 1000;

  bench::print_header(
      "plan cache — cold PARTITION vs cache hit",
      "(no paper counterpart; Section III notes plans are reusable)",
      "qft and random circuits, cold plan() vs LRU hit on this host");

  std::printf("\n%-8s %7s %7s | %12s %12s %10s\n", "family", "qubits",
              "gates", "cold_ms", "hit_us", "speedup");
  for (int n = n_lo; n <= n_hi; n += 4) {
    SessionConfig cfg = bench::scaled_config(n - 4, 4);
    const Session session(cfg);
    const std::vector<Circuit> cases = {
        circuits::qft(n), circuits::random_circuit(n, 6 * n, /*seed=*/17)};
    for (const Circuit& c : cases) {
      Timer cold_timer;
      session.plan(c);
      const double cold_s = cold_timer.seconds();

      Timer hit_timer;
      for (int r = 0; r < kHitReps; ++r) session.plan(c);
      const double hit_s = hit_timer.seconds() / kHitReps;

      std::printf("%-8s %7d %7d | %12.2f %12.2f %10s\n", c.name().c_str(), n,
                  c.num_gates(), cold_s * 1e3, hit_s * 1e6,
                  (std::to_string(static_cast<long>(cold_s / hit_s)) + "x")
                      .c_str());
    }
    const PlanCacheStats stats = session.plan_cache_stats();
    if (stats.hits != 2 * kHitReps || stats.misses != cases.size())
      std::printf("  WARNING: unexpected cache counters (hits=%llu "
                  "misses=%llu)\n",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses));
  }
  std::printf("\nhit cost is a fingerprint pass over the gate list plus a\n"
              "locked hash-map lookup; cold cost grows with STAGE+KERNELIZE.\n");
  return 0;
}
