// Figure 10 (kernelization effectiveness) and Appendix Figures 14-24
// (per-family total execution cost) / 26-36 (preprocessing time):
// KERNELIZE ("Atlas") vs ORDEREDKERNELIZE ("Atlas-Naive") vs the
// greedy <=5-qubit fusion baseline, on every family at 28-36 qubits.
//
// Claims to reproduce: the DP's relative geomean cost vs greedy is
// well below 1 on most families (paper geomean 0.583), ~1.0 on dj and
// qsvm (where greedy is already good), and the DP never loses to the
// ordered variant (Theorem 6).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/timer.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/greedy.h"
#include "kernelize/ordered.h"
#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  using namespace atlas::kernelize;
  const int n_lo = 28, n_hi = argc > 1 ? std::atoi(argv[1]) : 36;

  bench::print_header(
      "Figure 10 + Figs. 14-24/26-36 — kernelization effectiveness",
      "11 families x 28-36 qubits, T=500, measured on a Xeon W-1350",
      "same circuits and pruning threshold on this host");

  const CostModel model = CostModel::default_model();
  DpOptions dp_opt;
  dp_opt.prune_threshold = 500;

  // Paper Figure 10 relative geomean costs (Atlas / greedy baseline).
  const std::map<std::string, double> paper_rel = {
      {"ae", 0.401},        {"dj", 0.999},   {"ghz", 0.816},
      {"graphstate", 0.699},{"ising", 0.607},{"qft", 0.370},
      {"qpeexact", 0.417},  {"qsvm", 0.999}, {"su2random", 0.425},
      {"vqc", 0.423},       {"wstate", 0.686}};

  std::vector<double> all_rel;
  std::printf("\n%-11s %8s | %10s %10s %10s | %9s %9s | %8s %8s\n", "family",
              "qubits", "greedy", "ordered", "dp", "dp_t(s)", "ord_t(s)",
              "rel", "paper");
  for (const auto& family : circuits::family_names()) {
    std::vector<double> rels;
    for (int n = n_lo; n <= n_hi; ++n) {
      const Circuit c = circuits::make_family(family, n);
      const double greedy = kernelize_greedy(c, model).total_cost;
      Timer to;
      const double ordered = kernelize_ordered(c, model).total_cost;
      const double t_ord = to.seconds();
      Timer td;
      const double dp = kernelize_dp(c, model, dp_opt).total_cost;
      const double t_dp = td.seconds();
      const double rel = dp / greedy;
      rels.push_back(rel);
      all_rel.push_back(rel);
      if (n == n_lo || n == n_hi) {
        std::printf("%-11s %8d | %10.1f %10.1f %10.1f | %9.2f %9.2f | %8.3f"
                    " %8s\n",
                    family.c_str(), n, greedy, ordered, dp, t_dp, t_ord, rel,
                    "");
      }
      if (dp > ordered + 1e-6)
        std::printf("  note: ordered beats the DP by %.1f%% on %s@%d (an "
                    "artifact of the single-qubit attachment heuristic, "
                    "Appendix B-d; the production planner takes the min)\n",
                    100.0 * (dp - ordered) / ordered, family.c_str(), n);
    }
    std::printf("%-11s %8s | %*s geomean rel = %.3f   (paper %.3f)\n",
                family.c_str(), "28-36", 44, "", bench::geomean(rels),
                paper_rel.at(family));
  }
  std::printf("\noverall geomean relative cost (Atlas/greedy): %.3f   "
              "(paper 0.583)\n",
              bench::geomean(all_rel));
  return 0;
}
