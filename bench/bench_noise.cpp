// bench_noise — trajectory-throughput scaling of the noise engine.
//
// Workload: an entangling ansatz with single-qubit depolarizing noise
// after every gate (the Pauli-twirl fast path: one CompiledCircuit and
// one plan-cache entry shared by every trajectory). Measures
// trajectories/sec as the dispatch pool widens and reports the
// parallel efficiency vs linear scaling; also verifies the sharing
// property (plan-cache misses stay at 1 across the whole batch) and
// the statistical correctness of the estimate against the exact
// density-matrix reference on a small instance.
//
// --smoke shrinks the workload and skips the efficiency gate (CI
// workers are noisy and often single-core); --json PATH emits a
// BENCH_noise.json artifact for trend tracking.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "noise/channel.h"
#include "noise/density_ref.h"
#include "noise/model.h"
#include "util.h"

namespace atlas::bench {
namespace {

Circuit noisy_ansatz(int n) {
  Circuit c(n, "bench_noise_ansatz");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::cx(q, q + 1));
  for (Qubit q = 0; q < n; ++q) c.add(Gate::ry(q, 0.2 + 0.1 * q));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::cx((q + 2) % n, q));
  return c;
}

int run(bool smoke, const char* json_path) {
  const int local = smoke ? 6 : 10;
  const int nonlocal = 2;
  const int n = local + nonlocal;
  const int trajectories = smoke ? 64 : 256;
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());

  print_header(
      "Noise engine: trajectory throughput vs dispatch width",
      "error-mitigation sweeps averaging 10^3-10^4 noisy trajectories",
      (std::to_string(trajectories) + " trajectories, " + std::to_string(n) +
       "-qubit ansatz, depolarizing(0.01) after every gate")
          .c_str());

  const Circuit circuit = noisy_ansatz(n);
  noise::NoiseModel model;
  model.after_all_gates(noise::KrausChannel::depolarizing(0.01));

  // --- Sharing gate: the whole batch plans exactly once.
  SessionConfig cfg{scaled_config(local, nonlocal, /*threads=*/1)};
  cfg.dispatch_threads = 1;
  bool sharing_ok = false;
  {
    const Session session(cfg);
    noise::NoisyRunOptions opts;
    opts.trajectories = trajectories;
    const noise::NoisyResult r = session.run_noisy(circuit, model, opts);
    const PlanCacheStats stats = session.plan_cache_stats();
    sharing_ok = r.pauli_fast_path() && stats.misses == 1;
    std::printf("\nplan sharing: fast path %s, plan-cache misses %llu "
                "(want 1) over %d trajectories\n",
                r.pauli_fast_path() ? "yes" : "NO",
                static_cast<unsigned long long>(stats.misses), trajectories);
  }

  // --- Statistical gate: trajectory average within 5 sigma of the
  // exact density reference on a small instance.
  bool stats_ok = true;
  {
    const int small_n = 5;
    const Circuit small = noisy_ansatz(small_n);
    noise::NoiseModel strong;
    strong.after_all_gates(noise::KrausChannel::depolarizing(0.05));
    SessionConfig scfg{scaled_config(4, 1, /*threads=*/1)};
    const Session session(scfg);
    noise::NoisyRunOptions opts;
    opts.trajectories = smoke ? 400 : 1500;
    const noise::NoisyResult est = session.run_noisy(small, strong, opts);
    const noise::DensityMatrix rho = noise::simulate_density(small, strong);
    for (Qubit q = 0; q < small_n; ++q) {
      const noise::Estimate z = est.expectation_z(q);
      const double exact = rho.expectation_z(q);
      if (std::abs(z.value - exact) > 5 * z.std_error + 1e-9) {
        std::printf("FAIL: <Z_%d> = %.4f +- %.4f vs exact %.4f\n", q,
                    z.value, z.std_error, exact);
        stats_ok = false;
      }
    }
    std::printf("statistics  : trajectory averages within 5 sigma of the "
                "density reference — %s\n",
                stats_ok ? "ok" : "FAIL");
  }

  // --- Scaling: trajectories/sec vs dispatch width.
  std::vector<int> widths = {1, 2, 4, 8};
  widths.erase(std::remove_if(widths.begin(), widths.end(),
                              [&](int w) {
                                return w > 8 ||
                                       (w > 1 &&
                                        static_cast<unsigned>(w) >
                                            2 * hardware);
                              }),
               widths.end());
  std::printf("\n%-8s %16s %12s\n", "width", "traj/sec", "efficiency");
  std::vector<double> tps(widths.size(), 0.0);
  double base_tps = 0;
  bool scaling_ok = true;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    SessionConfig wcfg{scaled_config(local, nonlocal, /*threads=*/1)};
    wcfg.dispatch_threads = widths[i];
    const Session session(wcfg);
    noise::NoisyRunOptions opts;
    opts.trajectories = trajectories;
    (void)session.run_noisy(circuit, model, opts);  // warm plan + pool
    Timer t;
    (void)session.run_noisy(circuit, model, opts);
    tps[i] = trajectories / t.seconds();
    if (widths[i] == 1) base_tps = tps[i];
    const double efficiency = tps[i] / (base_tps * widths[i]);
    std::printf("%-8d %16.1f %11.0f%%\n", widths[i], tps[i],
                100 * efficiency);
    // The acceptance gate: >= 0.7x linear up to the machine's real
    // core count (oversubscribed widths are informational only).
    if (!smoke && static_cast<unsigned>(widths[i]) <= hardware &&
        efficiency < 0.7)
      scaling_ok = false;
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"noise\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"qubits\": %d,\n  \"trajectories\": %d,\n", n,
                 trajectories);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(f, "  \"trajectories_per_sec\": {");
    for (std::size_t i = 0; i < widths.size(); ++i)
      std::fprintf(f, "%s\"w%d\": %.1f", i == 0 ? "" : ", ", widths[i],
                   tps[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"plan_sharing\": %s,\n  \"stats_ok\": %s\n}\n",
                 sharing_ok ? "true" : "false", stats_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (!sharing_ok) {
    std::printf("FAIL: Pauli-twirl batch did not share a single plan\n");
    return 1;
  }
  if (!stats_ok) return 1;
  if (!scaling_ok) {
    std::printf("FAIL: trajectory scaling below 0.7x linear\n");
    return 1;
  }
  std::printf("check: plan shared, statistics converged%s — %s\n",
              smoke ? "" : ", scaling >= 0.7x linear",
              smoke ? "SMOKE PASS" : "PASS");
  return 0;
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return atlas::bench::run(smoke, json_path);
}
