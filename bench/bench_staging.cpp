// Figures 9 and 12: number of stages, Atlas versus the SnuQS
// heuristic, as the number of local qubits varies. Geometric mean over
// the 11 benchmark families at 31 qubits (Fig. 9) and 42 qubits
// (Fig. 12). Claims to reproduce: Atlas never exceeds SnuQS, and
// SnuQS is non-monotone (more local qubits can *worsen* its staging)
// while Atlas is monotone.

#include <cstdio>
#include <vector>

#include "staging/snuqs.h"
#include "staging/stager.h"
#include "util.h"

namespace {

void sweep(int num_qubits, int min_local, int step) {
  using namespace atlas;
  std::printf("\n--- %d qubits ---\n", num_qubits);
  std::printf("%6s %14s %14s\n", "local", "atlas(geomean)", "snuqs(geomean)");
  double prev_atlas = 0;
  for (int local = min_local; local <= num_qubits; local += step) {
    std::vector<double> atlas_stages, snuqs_stages;
    for (const auto& family : circuits::family_names()) {
      const Circuit c = circuits::make_family(family, num_qubits);
      staging::MachineShape shape;
      shape.num_local = local;
      shape.num_global =
          std::max(0, std::min(num_qubits - local - 2, num_qubits - local));
      shape.num_regional = num_qubits - local - shape.num_global;
      staging::StagingOptions opt;
      opt.engine = staging::StagerEngine::Bnb;
      const auto atlas_staged = staging::stage_circuit(c, shape, opt);
      const auto snuqs_staged = staging::stage_with_snuqs(c, shape);
      atlas_stages.push_back(static_cast<double>(atlas_staged.stages.size()));
      snuqs_stages.push_back(static_cast<double>(snuqs_staged.stages.size()));
    }
    const double ga = atlas::bench::geomean(atlas_stages);
    const double gs = atlas::bench::geomean(snuqs_stages);
    std::printf("%6d %14.2f %14.2f%s\n", local, ga, gs,
                gs < ga - 1e-9 ? "  (!!)" : "");
    prev_atlas = ga;
  }
  (void)prev_atlas;
}

}  // namespace

int main() {
  atlas::bench::print_header(
      "Figures 9 & 12 — number of stages: Atlas vs SnuQS heuristic",
      "11 families at 31 qubits (L=15..31) and 42 qubits (L=18..42), "
      "<=2 regional qubits",
      "same circuits and machine shapes (staging only; no simulation)");

  sweep(31, 15, 1);   // Figure 9
  sweep(42, 18, 3);   // Figure 12
  std::printf("\n(paper: Atlas' geomean is at or below SnuQS everywhere; "
              "SnuQS worsens from L=23 to L=24 at 31 qubits)\n");
  return 0;
}
