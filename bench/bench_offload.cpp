// Figure 7: DRAM offloading on a single GPU — Atlas vs QDAO-like, qft
// circuits that exceed GPU memory. The paper runs 28-32 qubits with a
// 28-qubit GPU (QDAO m=28, t=19) and reports Atlas 61x faster on
// average; the crossover shape to reproduce: equal at the
// fits-in-memory size, then an order-of-magnitude-plus gap.

#include <cstdio>

#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const int local = argc > 1 ? std::atoi(argv[1]) : 16;

  bench::print_header(
      "Figure 7 — DRAM offloading (single GPU), Atlas vs QDAO",
      "qft 28-32 qubits, GPU holds 2^28 amplitudes, rest in DRAM",
      "qft L..L+4 qubits, GPU holds 2^14/2^16 amplitudes, PCIe-class "
      "modeled offload link");

  std::printf("%7s %7s | %12s %12s | %8s\n", "qubits", "shards",
              "atlas", "qdao-like", "speedup");
  std::vector<double> speedups;
  for (int extra = 0; extra <= 4; ++extra) {
    const int n = local + extra;
    SimulatorConfig cfg;
    cfg.cluster.local_qubits = local;
    cfg.cluster.regional_qubits = extra;  // all non-local shards in DRAM
    cfg.cluster.global_qubits = 0;
    cfg.cluster.gpus_per_node = 1;
    const Circuit c = circuits::qft(n);

    const auto atlas_run = bench::run_atlas(c, cfg);
    const auto qdao =
        bench::run_base(baselines::BaselineKind::Qdao, c, cfg);
    const double speedup = qdao.modeled_seconds / atlas_run.modeled_seconds;
    if (extra > 0) speedups.push_back(speedup);
    std::printf("%7d %7d | %10.2fms %10.2fms | %7.1fx\n", n, 1 << extra,
                atlas_run.modeled_seconds * 1e3, qdao.modeled_seconds * 1e3,
                speedup);
  }
  std::printf("\ngeomean speedup beyond GPU memory: %.1fx\n",
              bench::geomean(speedups));
  std::printf("(paper: 6x at the in-memory size, 45-105x beyond, 61x "
              "average)\n");
  return 0;
}
