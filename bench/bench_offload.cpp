// Figure 7: DRAM offloading on a single GPU — Atlas vs QDAO-like, qft
// circuits that exceed GPU memory. The paper runs 28-32 qubits with a
// 28-qubit GPU (QDAO m=28, t=19) and reports Atlas 61x faster on
// average; the crossover shape to reproduce: equal at the
// fits-in-memory size, then an order-of-magnitude-plus gap.
//
// Part two measures the device backend's batched-launch amortization:
// a 32-point parameter sweep on an offloading shape (8 DRAM shards
// through 2 modeled GPUs), batched execute_batch() — one staging
// arena, one command queue, one constant bind per stage — against the
// same sweep as 32 independent execute() calls, each paying the full
// buffer/queue/bind lifecycle. Results are asserted bit-identical
// in-bench before any timing is trusted; full mode gates batched at
// >= 2x per-point. --smoke shrinks the workload and skips the gate
// (shared CI workers are noisy); --json PATH emits a
// BENCH_device.json artifact for trend tracking.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "device/buffer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util.h"

namespace atlas::bench {
namespace {

std::vector<std::vector<double>> sweep_points(const CompiledCircuit& compiled,
                                              int count) {
  Rng rng(0xBE7C4);
  std::vector<std::vector<double>> points(static_cast<std::size_t>(count));
  for (auto& p : points) {
    p.resize(compiled.symbols().size());
    for (double& v : p) v = rng.uniform() * 6.28318 - 3.14159;
  }
  return points;
}

/// The shape batched launches amortize best: an entangling wash across
/// every qubit (a real multi-shard stage), then a deep constant block
/// confined to a 5-qubit window — it stays in one partition and fuses
/// into dense kernels whose bind (fusion-product matrices) costs far
/// more than their replay — with the variational parameters on a qubit
/// outside that window so the deep kernels' bound values never change
/// across the sweep. Per-point execution re-materializes every fusion
/// product at every point; the batched path binds them once per stage
/// and re-binds only the kernels whose slot values the point varies.
Circuit make_ansatz(int n, int layers) {
  Circuit c(n, "offload_ansatz");
  for (Qubit q = 0; q < n; ++q) c.add(Gate::h(q));
  for (Qubit q = 0; q + 1 < n; ++q) c.add(Gate::cx(q, q + 1));
  const int w = std::min(5, n);
  for (int l = 0; l < layers; ++l) {
    for (int q = 0; q < w; ++q) c.add(Gate::h(q));
    for (int q = 0; q < w; ++q)
      c.add(Gate::cp(q, (q + 1) % w, 0.3 + 0.1 * q + 0.05 * l));
    for (int q = 0; q < w; ++q) c.add(Gate::t(q));
  }
  const Param gamma = Param::symbol("gamma");
  const Param theta = Param::symbol("theta");
  c.add(Gate::rx(5, theta));
  c.add(Gate::rz(5, gamma));
  c.add(Gate::rx(5, theta));
  return c;
}

double figure7(int local) {
  print_header(
      "Figure 7 — DRAM offloading (single GPU), Atlas vs QDAO",
      "qft 28-32 qubits, GPU holds 2^28 amplitudes, rest in DRAM",
      "qft L..L+4 qubits, GPU holds 2^14/2^16 amplitudes, PCIe-class "
      "modeled offload link");

  std::printf("%7s %7s | %12s %12s | %8s\n", "qubits", "shards", "atlas",
              "qdao-like", "speedup");
  std::vector<double> speedups;
  for (int extra = 0; extra <= 4; ++extra) {
    const int n = local + extra;
    SimulatorConfig cfg;
    cfg.cluster.local_qubits = local;
    cfg.cluster.regional_qubits = extra;  // all non-local shards in DRAM
    cfg.cluster.global_qubits = 0;
    cfg.cluster.gpus_per_node = 1;
    const Circuit c = circuits::qft(n);

    const auto atlas_run = run_atlas(c, cfg);
    const auto qdao = run_base(baselines::BaselineKind::Qdao, c, cfg);
    const double speedup = qdao.modeled_seconds / atlas_run.modeled_seconds;
    if (extra > 0) speedups.push_back(speedup);
    std::printf("%7d %7d | %10.2fms %10.2fms | %7.1fx\n", n, 1 << extra,
                atlas_run.modeled_seconds * 1e3, qdao.modeled_seconds * 1e3,
                speedup);
  }
  const double gm = geomean(speedups);
  std::printf("\ngeomean speedup beyond GPU memory: %.1fx\n", gm);
  std::printf("(paper: 6x at the in-memory size, 45-105x beyond, 61x "
              "average)\n");
  return gm;
}

struct BatchedOutcome {
  int qubits = 0;
  int shards = 0;
  int gpus = 0;
  int points = 0;
  double per_point_seconds = 0;
  double batched_seconds = 0;
  bool identical = false;
  std::uint64_t const_uploads = 0;
  std::uint64_t staged_bytes = 0;

  double speedup() const { return per_point_seconds / batched_seconds; }
};

BatchedOutcome batched_vs_per_point(bool smoke) {
  const int local = smoke ? 6 : 7;
  const int regional = 3;  // 8 DRAM shards per node
  const int n = local + regional;
  const int points_n = smoke ? 8 : 32;
  const int reps = smoke ? 1 : 3;

  SessionConfig cfg;
  cfg.executor = "device";
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = 0;
  cfg.cluster.gpus_per_node = 2;  // 8 shards through 2 modeled GPUs
  cfg.cluster.num_threads = 2;
  const Session session(cfg);
  const CompiledCircuit compiled = session.compile(make_ansatz(n, 8));
  const std::vector<std::vector<double>> points =
      sweep_points(compiled, points_n);

  BatchedOutcome out;
  out.qubits = n;
  out.shards = 1 << regional;
  out.gpus = cfg.cluster.gpus_per_node;
  out.points = points_n;

  // Bit-identity first: batching is a scheduling change, never a
  // numerical one. Any mismatch invalidates the timings below.
  out.identical = true;
  {
    const std::vector<SimulationResult> batched =
        session.sweep(compiled, points);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SimulationResult solo = session.run(compiled, points[i]);
      out.identical &= solo.seed == batched[i].seed;
      out.identical &= solo.state.gather().amplitudes() ==
                       batched[i].state.gather().amplitudes();
    }
  }

  // Warmed plan + skeleton caches; what remains is pure execution.
  obs::Counter& const_uploads = obs::counter(obs::names::kDeviceConstUploads);
  double per_point_best = 1e30, batched_best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (const std::vector<double>& p : points) session.run(compiled, p);
    per_point_best = std::min(per_point_best, t.seconds());
  }
  const std::uint64_t uploads0 = const_uploads.value();
  const device::BufferStats stats0 = device::buffer_stats();
  for (int r = 0; r < reps; ++r) {
    Timer t;
    session.sweep(compiled, points);
    batched_best = std::min(batched_best, t.seconds());
  }
  out.per_point_seconds = per_point_best;
  out.batched_seconds = batched_best;
  out.const_uploads =
      (const_uploads.value() - uploads0) / static_cast<std::uint64_t>(reps);
  out.staged_bytes = (device::buffer_stats().upload_bytes -
                      stats0.upload_bytes) /
                     static_cast<std::uint64_t>(reps);
  return out;
}

int run(bool smoke, const char* json_path) {
  const int local = smoke ? 12 : 16;
  const double fig7_geomean = figure7(local);

  print_header(
      "Device backend — batched launches vs per-point lifecycle",
      "one command list per stage per sweep: constants bind once, "
      "points enqueue only their parameter delta",
      smoke ? "8-point sweep, 8 DRAM shards / 2 modeled GPUs (smoke)"
            : "32-point sweep, 8 DRAM shards / 2 modeled GPUs");

  const BatchedOutcome b = batched_vs_per_point(smoke);
  std::printf("%7s %7s %5s %7s | %12s %12s | %8s %6s\n", "qubits", "shards",
              "gpus", "points", "per-point", "batched", "speedup", "exact");
  std::printf("%7d %7d %5d %7d | %10.2fms %10.2fms | %7.2fx %6s\n", b.qubits,
              b.shards, b.gpus, b.points, b.per_point_seconds * 1e3,
              b.batched_seconds * 1e3, b.speedup(),
              b.identical ? "yes" : "NO");
  std::printf("constant uploads per sweep: %llu, staged H2D bytes per "
              "sweep: %llu\n",
              static_cast<unsigned long long>(b.const_uploads),
              static_cast<unsigned long long>(b.staged_bytes));

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"device_offload\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"figure7_geomean_speedup\": %.3f,\n", fig7_geomean);
    std::fprintf(f, "  \"batched\": {\n");
    std::fprintf(f, "    \"qubits\": %d,\n    \"shards\": %d,\n", b.qubits,
                 b.shards);
    std::fprintf(f, "    \"gpus\": %d,\n    \"points\": %d,\n", b.gpus,
                 b.points);
    std::fprintf(f, "    \"per_point_seconds\": %.6f,\n",
                 b.per_point_seconds);
    std::fprintf(f, "    \"batched_seconds\": %.6f,\n", b.batched_seconds);
    std::fprintf(f, "    \"speedup\": %.3f,\n", b.speedup());
    std::fprintf(f, "    \"bit_identical\": %s,\n",
                 b.identical ? "true" : "false");
    std::fprintf(f, "    \"const_uploads\": %llu,\n",
                 static_cast<unsigned long long>(b.const_uploads));
    std::fprintf(f, "    \"staged_h2d_bytes\": %llu\n  }\n}\n",
                 static_cast<unsigned long long>(b.staged_bytes));
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (!b.identical) {
    std::printf("\nFAIL: batched sweep is not bit-identical to per-point "
                "runs\n");
    return 1;
  }
  // Timing gate only on a full-mode host (CI smoke workers are too
  // noisy to gate on wall time).
  if (!smoke && b.speedup() < 2.0) {
    std::printf("\nFAIL: batched speedup %.2fx below the 2x amortization "
                "gate\n",
                b.speedup());
    return 1;
  }
  std::printf("\n%s\n", smoke ? "SMOKE PASS" : "PASS");
  return 0;
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return atlas::bench::run(smoke, json_path);
}
