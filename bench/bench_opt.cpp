// bench_opt — gate-level optimizer payoff on the benchmark families.
//
// For every Table-I family (circuits/families.h) plus a few fixed-seed
// random circuits, runs the level-2 pass pipeline and reports the
// gate-count ratio, the staged-plan stage-count ratio (opt_level 0 vs
// 2 sessions over the same cluster shape), and the per-pass breakdown.
// Three gates:
//   * statevector equivalence (up to global phase — the passes are
//     exact, so the measured residual is roundoff) <= 1e-8 everywhere;
//   * geomean gate-count ratio over the 11 families <= 0.85 (the
//     ISSUE-5 acceptance bar: >= 15% reduction);
//   * stage counts never regress, and at least one circuit in the set
//     strictly improves (the commutation-aware reorder payoff).
//
// --smoke shrinks the instances; --json PATH emits BENCH_opt.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "opt/pass_manager.h"
#include "sim/reference.h"
#include "util.h"

namespace atlas::bench {
namespace {

/// Max |a_i - e^{ia} b_i| after aligning b's global phase on a's
/// largest amplitude.
double phase_aligned_diff(const StateVector& a, const StateVector& b) {
  Index best = 0;
  double mag = 0;
  for (Index i = 0; i < a.size(); ++i)
    if (std::abs(a[i]) > mag) {
      mag = std::abs(a[i]);
      best = i;
    }
  if (std::abs(b[best]) < 1e-12) return 1e9;
  const Amp phase =
      (a[best] / std::abs(a[best])) / (b[best] / std::abs(b[best]));
  double d = 0;
  for (Index i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - phase * b[i]));
  return d;
}

struct Row {
  std::string name;
  int gates_before = 0;
  int gates_after = 0;
  std::size_t stages_before = 0;
  std::size_t stages_after = 0;
  double equiv_diff = 0;
  bool family = false;  // counts toward the gate-ratio geomean
};

int run(bool smoke, const char* json_path) {
  const int n = smoke ? 8 : 10;
  const int local = 5;

  print_header(
      "Gate-level optimizer: count / stage reduction at opt_level 2",
      "staged-partitioning cost scales per gate (Eq. 2 + kernel model)",
      (std::to_string(n) + "-qubit Table-I families + random circuits, "
                           "local=" + std::to_string(local))
          .c_str());

  SessionConfig base{scaled_config(local, n - local, /*threads=*/1)};
  SessionConfig optimized = base;
  optimized.opt_level = 2;
  const Session s0(base), s2(optimized);

  opt::OptOptions oo;
  oo.level = 2;
  const opt::PassManager passes(oo);
  opt::PassContext ctx;
  ctx.num_local_qubits = local;

  std::vector<Row> rows;
  auto measure = [&](const std::string& name, const Circuit& c, bool family) {
    opt::OptReport rep;
    const Circuit oc = passes.run(c, ctx, &rep);
    Row r;
    r.name = name;
    r.family = family;
    r.gates_before = rep.gates_before;
    r.gates_after = rep.gates_after;
    r.stages_before = s0.compile(c).plan()->stages.size();
    r.stages_after = s2.compile(c).plan()->stages.size();
    r.equiv_diff = phase_aligned_diff(simulate_reference(c),
                                      simulate_reference(oc));
    rows.push_back(r);
  };

  for (const std::string& name : circuits::family_names())
    measure(name, circuits::make_family(name, n), /*family=*/true);
  const int random_gates = smoke ? 60 : 80;
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{3},
                             std::uint64_t{5}})
    measure("random" + std::to_string(seed),
            circuits::random_circuit(n, random_gates, seed),
            /*family=*/false);

  std::printf("\n%-12s %8s %8s %7s %8s %8s %10s\n", "circuit", "gates",
              "opt", "ratio", "stages", "opt", "|diff|");
  bool equiv_ok = true, stage_regressed = false, stage_improved = false;
  std::vector<double> family_ratios;
  for (const Row& r : rows) {
    const double ratio =
        static_cast<double>(r.gates_after) / r.gates_before;
    if (r.family) family_ratios.push_back(ratio);
    if (r.equiv_diff > 1e-8) equiv_ok = false;
    if (r.stages_after > r.stages_before) stage_regressed = true;
    if (r.stages_after < r.stages_before) stage_improved = true;
    std::printf("%-12s %8d %8d %7.3f %8zu %8zu %10.2e\n", r.name.c_str(),
                r.gates_before, r.gates_after, ratio, r.stages_before,
                r.stages_after, r.equiv_diff);
  }
  const double gate_geomean = geomean(family_ratios);
  std::printf("\ngeomean gate ratio over the %zu families: %.4f "
              "(gate: <= 0.85)\n",
              family_ratios.size(), gate_geomean);
  std::printf("stage counts: %s regressions, %s strict reduction\n",
              stage_regressed ? "HAS" : "no",
              stage_improved ? "has a" : "NO");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"opt\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"qubits\": %d,\n", n);
    std::fprintf(f, "  \"geomean_gate_ratio\": %.4f,\n", gate_geomean);
    std::fprintf(f, "  \"circuits\": {");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "%s\n    \"%s\": {\"gates\": %d, \"gates_opt\": %d, "
                   "\"stages\": %zu, \"stages_opt\": %zu}",
                   i == 0 ? "" : ",", r.name.c_str(), r.gates_before,
                   r.gates_after, r.stages_before, r.stages_after);
    }
    std::fprintf(f, "\n  },\n");
    std::fprintf(f, "  \"equivalence_ok\": %s,\n  \"stage_improved\": %s\n}\n",
                 equiv_ok ? "true" : "false",
                 stage_improved ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (!equiv_ok) {
    std::printf("FAIL: an optimized circuit drifted off its reference\n");
    return 1;
  }
  if (gate_geomean > 0.85) {
    std::printf("FAIL: geomean gate ratio %.4f above the 0.85 gate\n",
                gate_geomean);
    return 1;
  }
  if (stage_regressed) {
    std::printf("FAIL: opt_level 2 increased a stage count\n");
    return 1;
  }
  if (!stage_improved) {
    std::printf("FAIL: no circuit in the set improved its stage count\n");
    return 1;
  }
  std::printf("check: equivalent, >= 15%% geomean gate reduction, stages "
              "never worse and once strictly better — %s\n",
              smoke ? "SMOKE PASS" : "PASS");
  return 0;
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return atlas::bench::run(smoke, json_path);
}
