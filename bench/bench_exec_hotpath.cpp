// bench_exec_hotpath — the apply-kernel rewrite payoff, measured
// against a faithful reimplementation of the seed loop structure
// (insert-zero-bit index arithmetic per group, std::complex mat-vec,
// per-shard shm table rebuilds):
//
//   general : dense k-qubit apply, k = 1..5 — seed gather/mat-vec loop
//             vs the blocked lane-vectorized kernel;
//   fast    : diagonal and permutation gates — seed dense loop vs the
//             classified in-place fast paths;
//   shm     : a shared-memory kernel replayed across shards — seed
//             rebuild-per-invocation vs one compiled ShmProgram;
//   e2e     : compile()+sweep() vs per-binding simulate() (bit-identity
//             gate on the whole pipeline).
//
// Every timed pair runs the same gates on copies of the same buffer and
// the results are compared with operator== (exact; -0.0 == +0.0), so
// the speedup is never bought with different arithmetic. Full mode
// gates on >= 2x geomean speedup for the general k-qubit path (k>=2);
// --smoke shrinks buffers and skips the flaky-on-CI perf gate; --json
// PATH emits a BENCH_exec.json artifact for trend tracking.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/timer.h"
#include "sim/apply.h"
#include "sim/shm_executor.h"
#include "util.h"

namespace atlas::bench {
namespace {

// --- Seed loop structure, reproduced verbatim ---------------------------

/// The seed's specialized 1-qubit path: insert_zero_bit per iteration,
/// std::complex arithmetic.
void seed_apply_1q(Amp* data, Index size, int q, const Matrix& m) {
  const Amp u00 = m(0, 0), u01 = m(0, 1), u10 = m(1, 0), u11 = m(1, 1);
  const Index stride = bit(q);
  const Index groups = size >> 1;
  for (Index g = 0; g < groups; ++g) {
    const Index i0 = insert_zero_bit(g, q);
    const Index i1 = i0 | stride;
    const Amp a0 = data[i0], a1 = data[i1];
    data[i0] = u00 * a0 + u01 * a1;
    data[i1] = u10 * a0 + u11 * a1;
  }
}

/// The seed's general k-qubit path: per-group insert_zero_bits, dense
/// std::complex mat-vec through the Matrix accessor.
void seed_apply_matrix(Amp* data, Index size, const std::vector<int>& targets,
                       const Matrix& m) {
  const int k = static_cast<int>(targets.size());
  if (k == 1) {
    seed_apply_1q(data, size, targets[0], m);
    return;
  }
  std::vector<int> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  const Index dim = Index{1} << k;
  const Index groups = size >> k;
  std::vector<Index> offset(dim);
  for (Index v = 0; v < dim; ++v) offset[v] = spread_bits(v, targets);
  std::vector<Amp> in(dim), out(dim);
  for (Index g = 0; g < groups; ++g) {
    const Index base = insert_zero_bits(g, sorted);
    for (Index v = 0; v < dim; ++v) in[v] = data[base | offset[v]];
    for (Index r = 0; r < dim; ++r) {
      Amp acc{};
      for (Index c = 0; c < dim; ++c) {
        acc += m(static_cast<int>(r), static_cast<int>(c)) * in[c];
      }
      out[r] = acc;
    }
    for (Index v = 0; v < dim; ++v) data[base | offset[v]] = out[v];
  }
}

/// The seed's controlled path (apply_1q_1c + the general controlled
/// gather loop).
void seed_apply_controlled(Amp* data, Index size,
                           const std::vector<int>& targets,
                           const std::vector<int>& controls, const Matrix& m) {
  if (controls.empty()) {
    seed_apply_matrix(data, size, targets, m);
    return;
  }
  if (targets.size() == 1 && controls.size() == 1) {
    const Amp u00 = m(0, 0), u01 = m(0, 1), u10 = m(1, 0), u11 = m(1, 1);
    const int t = targets[0], c = controls[0];
    const Index tbit = bit(t), cbit = bit(c);
    const int lo = std::min(t, c), hi = std::max(t, c);
    const Index groups = size >> 2;
    for (Index g = 0; g < groups; ++g) {
      const Index base = insert_zero_bit(insert_zero_bit(g, lo), hi) | cbit;
      const Index i0 = base, i1 = base | tbit;
      const Amp a0 = data[i0], a1 = data[i1];
      data[i0] = u00 * a0 + u01 * a1;
      data[i1] = u10 * a0 + u11 * a1;
    }
    return;
  }
  const int k = static_cast<int>(targets.size());
  const int c = static_cast<int>(controls.size());
  std::vector<int> all = targets;
  all.insert(all.end(), controls.begin(), controls.end());
  std::sort(all.begin(), all.end());
  Index ctrl_mask = 0;
  for (int cq : controls) ctrl_mask |= bit(cq);
  const Index dim = Index{1} << k;
  const Index groups = size >> (k + c);
  std::vector<Index> offset(dim);
  for (Index v = 0; v < dim; ++v) offset[v] = spread_bits(v, targets);
  std::vector<Amp> in(dim), out(dim);
  for (Index g = 0; g < groups; ++g) {
    const Index base = insert_zero_bits(g, all) | ctrl_mask;
    for (Index v = 0; v < dim; ++v) in[v] = data[base | offset[v]];
    for (Index r = 0; r < dim; ++r) {
      Amp acc{};
      for (Index col = 0; col < dim; ++col)
        acc += m(static_cast<int>(r), static_cast<int>(col)) * in[col];
      out[r] = acc;
    }
    for (Index v = 0; v < dim; ++v) data[base | offset[v]] = out[v];
  }
}

/// The seed's shared-memory kernel: identity map + std::find scan +
/// offset table rebuilt on every invocation.
Index seed_run_shm(Amp* data, Index size, const std::vector<Gate>& gates,
                   const std::vector<int>& bit_of_qubit) {
  std::vector<int> active = {0, 1, 2};
  for (const Gate& g : gates)
    for (Qubit q : g.qubits()) active.push_back(bit_of_qubit[q]);
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());
  const int a = static_cast<int>(active.size());
  const Index batch = Index{1} << a;
  const Index num_batches = size >> a;
  std::vector<int> shm_bit_of_qubit(bit_of_qubit.size(), -1);
  for (std::size_t q = 0; q < bit_of_qubit.size(); ++q) {
    const auto it = std::find(active.begin(), active.end(), bit_of_qubit[q]);
    if (it != active.end())
      shm_bit_of_qubit[q] = static_cast<int>(it - active.begin());
  }
  std::vector<Index> offset(batch);
  for (Index v = 0; v < batch; ++v) offset[v] = spread_bits(v, active);
  std::vector<Amp> shm(batch);
  for (Index b = 0; b < num_batches; ++b) {
    const Index base = insert_zero_bits(b, active);
    for (Index v = 0; v < batch; ++v) shm[v] = data[base | offset[v]];
    for (const Gate& g : gates) {
      std::vector<int> targets, controls;
      for (Qubit q : g.targets()) targets.push_back(shm_bit_of_qubit[q]);
      for (Qubit q : g.controls()) controls.push_back(shm_bit_of_qubit[q]);
      seed_apply_controlled(shm.data(), batch, targets, controls,
                            g.target_matrix());
    }
    for (Index v = 0; v < batch; ++v) data[base | offset[v]] = shm[v];
  }
  return num_batches;
}

// --- Harness ------------------------------------------------------------

std::vector<Amp> random_buffer(int n, std::uint64_t seed) {
  return StateVector::random(n, seed).amplitudes();
}

std::vector<int> random_positions(Rng& rng, int n, int k) {
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < k; ++i)
    std::swap(all[i], all[i + static_cast<int>(rng.index(n - i))]);
  all.resize(k);
  return all;
}

Matrix random_dense(Rng& rng, int dim) {
  Matrix m(dim, dim);
  for (int r = 0; r < dim; ++r)
    for (int c = 0; c < dim; ++c) m(r, c) = rng.amp();
  return m;
}

struct GateCase {
  std::vector<int> targets;
  Matrix m;
};

struct PairResult {
  double seed_seconds = 0;
  double new_seconds = 0;
  bool identical = false;
  double speedup() const { return seed_seconds / new_seconds; }
};

/// Times the same gate sequence through the seed loop and the prepared
/// kernels, on copies of the same buffer, and compares the results
/// exactly.
PairResult time_pair(const std::vector<Amp>& initial,
                     const std::vector<GateCase>& gates, int reps) {
  PairResult out;
  std::vector<Amp> a, b;
  {
    a = initial;
    Timer t;
    for (int r = 0; r < reps; ++r)
      for (const GateCase& g : gates)
        seed_apply_matrix(a.data(), static_cast<Index>(a.size()), g.targets,
                          g.m);
    out.seed_seconds = t.seconds();
  }
  {
    b = initial;
    std::vector<PreparedGate> prepared;
    prepared.reserve(gates.size());
    Timer t;
    for (const GateCase& g : gates)
      prepared.push_back(prepare_gate(MatrixOp{g.m, g.targets, {}}));
    for (int r = 0; r < reps; ++r)
      for (const PreparedGate& p : prepared)
        apply_prepared(b.data(), static_cast<Index>(b.size()), p);
    out.new_seconds = t.seconds();
  }
  out.identical = a == b;
  return out;
}

int run(bool smoke, const char* json_path) {
  const int n = smoke ? 16 : 20;
  const int reps = smoke ? 2 : 4;
  const int gates_per_k = 4;

  print_header(
      "Execution hot path: seed loop structure vs compiled stage kernels",
      "per-shard gather loops with per-iteration index inserts",
      (std::string("2^") + std::to_string(n) +
       "-amp buffer, dense/diag/perm kernels + shm replay, 1 thread")
          .c_str());

  const std::vector<Amp> initial = random_buffer(n, 0xA71A5);
  Rng rng(12345);
  bool all_identical = true;

  // --- general dense k-qubit apply.
  std::printf("\n%-28s %12s %12s %9s %6s\n", "kernel", "seed [s]", "new [s]",
              "speedup", "exact");
  std::vector<double> general_speedups(6, 0.0);
  for (int k = 1; k <= 5; ++k) {
    std::vector<GateCase> gates;
    for (int i = 0; i < gates_per_k; ++i)
      gates.push_back(
          GateCase{random_positions(rng, n, k), random_dense(rng, 1 << k)});
    const PairResult r = time_pair(initial, gates, reps);
    general_speedups[static_cast<std::size_t>(k)] = r.speedup();
    all_identical &= r.identical;
    std::printf("%-28s %12.4f %12.4f %8.2fx %6s\n",
                (std::string("dense ") + std::to_string(k) + "q").c_str(),
                r.seed_seconds, r.new_seconds, r.speedup(),
                r.identical ? "yes" : "NO");
  }
  std::vector<double> tail(general_speedups.begin() + 2,
                           general_speedups.end());
  const double general_geomean = geomean(tail);

  // --- diagonal / permutation fast paths (seed ran these dense).
  const auto fast_case = [&](const char* name, int k, bool diag) {
    std::vector<GateCase> gates;
    for (int i = 0; i < gates_per_k; ++i) {
      Matrix m(1 << k, 1 << k);
      if (diag) {
        for (int v = 0; v < (1 << k); ++v) {
          const double t = rng.uniform(0, 6.28);
          m(v, v) = Amp(std::cos(t), std::sin(t));
        }
      } else {
        // A phased cyclic permutation.
        for (int v = 0; v < (1 << k); ++v) {
          const double t = rng.uniform(0, 6.28);
          m(v, (v + 1) % (1 << k)) = Amp(std::cos(t), std::sin(t));
        }
      }
      gates.push_back(GateCase{random_positions(rng, n, k), std::move(m)});
    }
    const PairResult r = time_pair(initial, gates, reps);
    all_identical &= r.identical;
    std::printf("%-28s %12.4f %12.4f %8.2fx %6s\n", name, r.seed_seconds,
                r.new_seconds, r.speedup(), r.identical ? "yes" : "NO");
    return r.speedup();
  };
  const double diag_speedup = fast_case("diagonal 2q", 2, true);
  const double perm_speedup = fast_case("permutation 3q", 3, false);

  // --- shm kernel: rebuild-per-invocation vs compiled program replay,
  // emulating one stage kernel run across 2^4 shards.
  double shm_speedup;
  {
    const int shards = 16;
    std::vector<int> bit_of_qubit(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) bit_of_qubit[static_cast<std::size_t>(q)] = q;
    std::vector<Gate> gates;
    for (int i = 0; i < 6; ++i) {
      const std::vector<int> qs = random_positions(rng, 8, 2);
      gates.push_back(i % 2 == 0 ? Gate::cx(qs[0], qs[1])
                                 : Gate::u3(qs[0], 0.3 + i, 0.7, 1.1));
    }
    std::vector<Amp> a = initial, b = initial;
    PairResult r;
    {
      Timer t;
      for (int s = 0; s < shards; ++s)
        seed_run_shm(a.data(), static_cast<Index>(a.size()), gates,
                     bit_of_qubit);
      r.seed_seconds = t.seconds();
    }
    {
      Timer t;
      std::vector<MatrixOp> ops;
      for (const Gate& g : gates) {
        MatrixOp op;
        op.m = g.target_matrix();
        for (Qubit q : g.targets()) op.targets.push_back(bit_of_qubit[q]);
        for (Qubit q : g.controls()) op.controls.push_back(bit_of_qubit[q]);
        ops.push_back(std::move(op));
      }
      const ShmProgram prog = compile_shm_program(ops);
      std::vector<Amp> scratch;
      for (int s = 0; s < shards; ++s)
        run_shm_program(b.data(), static_cast<Index>(b.size()), prog, scratch);
      r.new_seconds = t.seconds();
    }
    r.identical = a == b;
    all_identical &= r.identical;
    shm_speedup = r.speedup();
    std::printf("%-28s %12.4f %12.4f %8.2fx %6s\n", "shm kernel x16 shards",
                r.seed_seconds, r.new_seconds, r.speedup(),
                r.identical ? "yes" : "NO");
  }

  std::printf("\ngeneral k-qubit geomean (k=2..5): %5.2fx\n", general_geomean);

  // --- end-to-end bit-identity gate: compile()+sweep() == simulate().
  bool e2e_identical = true;
  {
    const int qubits = smoke ? 8 : 10;
    SessionConfig cfg{scaled_config(qubits - 2, 2, /*threads=*/1)};
    Circuit ansatz(qubits, "hotpath_ansatz");
    for (Qubit q = 0; q < qubits; ++q) ansatz.add(Gate::h(q));
    const Param theta = Param::symbol("theta");
    for (Qubit q = 0; q < qubits; ++q)
      ansatz.add(Gate::rzz(q, (q + 1) % qubits, theta));
    for (Qubit q = 0; q < qubits; ++q) ansatz.add(Gate::rx(q, theta * 0.5));
    const Session session(cfg);
    const CompiledCircuit compiled = session.compile(ansatz);
    for (int i = 0; i < 4; ++i) {
      const ParamBinding b{{"theta", 0.2 + 0.4 * i}};
      const auto via_run = session.run(compiled, b).state.gather();
      const auto direct = session.simulate(ansatz.bind(b)).state.gather();
      e2e_identical &= via_run.amplitudes() == direct.amplitudes();
    }
    std::printf("e2e compile()+run() vs simulate(): %s\n",
                e2e_identical ? "bit-identical" : "MISMATCH");
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exec_hotpath\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"buffer_bits\": %d,\n", n);
    std::fprintf(f, "  \"general_speedup\": {");
    for (int k = 1; k <= 5; ++k)
      std::fprintf(f, "%s\"k%d\": %.3f", k == 1 ? "" : ", ", k,
                   general_speedups[static_cast<std::size_t>(k)]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"general_geomean_k2_5\": %.3f,\n", general_geomean);
    std::fprintf(f, "  \"diag_speedup\": %.3f,\n", diag_speedup);
    std::fprintf(f, "  \"perm_speedup\": %.3f,\n", perm_speedup);
    std::fprintf(f, "  \"shm_speedup\": %.3f,\n", shm_speedup);
    std::fprintf(f, "  \"bit_identical\": %s\n}\n",
                 (all_identical && e2e_identical) ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  // Correctness gates run in both modes; the perf gate only on a quiet
  // full-mode host (CI smoke workers are too noisy to gate on time).
  if (!all_identical || !e2e_identical) {
    std::printf("FAIL: fast paths are not bit-identical to the seed loop\n");
    return 1;
  }
  if (!smoke && general_geomean < 2.0) {
    std::printf("FAIL: general k-qubit apply speedup %.2fx < 2x target\n",
                general_geomean);
    return 1;
  }
  std::printf("check: all kernels bit-identical to seed loops — %s\n",
              smoke ? "SMOKE PASS" : "PASS");
  return 0;
}

}  // namespace
}  // namespace atlas::bench

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  return atlas::bench::run(smoke, json_path);
}
