// Table I: benchmark circuits and their sizes (number of gates) for
// 28-36 qubits. Prints our generators' gate counts next to the MQT
// Bench counts reported in the paper; families whose construction we
// matched exactly show zero delta (see DESIGN.md for the rest).

#include <cstdio>
#include <map>
#include <vector>

#include "circuits/families.h"
#include "util.h"

int main() {
  using namespace atlas;
  bench::print_header(
      "Table I — benchmark circuits and their size (number of gates)",
      "MQT Bench / NWQBench circuits, 28-36 qubits",
      "atlas::circuits generators, same qubit range");

  // Paper Table I values.
  const std::map<std::string, std::vector<int>> paper = {
      {"ae", {514, 547, 581, 616, 652, 689, 727, 766, 806}},
      {"dj", {82, 85, 88, 91, 94, 97, 100, 103, 106}},
      {"ghz", {28, 29, 30, 31, 32, 33, 34, 35, 36}},
      {"graphstate", {56, 58, 60, 62, 64, 66, 68, 70, 72}},
      {"ising", {302, 313, 324, 335, 346, 357, 368, 379, 390}},
      {"qft", {406, 435, 465, 496, 528, 561, 595, 630, 666}},
      {"qpeexact", {432, 463, 493, 524, 559, 593, 628, 664, 701}},
      {"qsvm", {274, 284, 294, 304, 314, 324, 334, 344, 354}},
      {"su2random", {1246, 1334, 1425, 1519, 1616, 1716, 1819, 1925, 2034}},
      {"vqc", {1873, 1998, 2127, 2260, 2397, 2538, 2683, 2832, 2985}},
      {"wstate", {109, 113, 117, 121, 125, 129, 133, 137, 141}},
  };

  std::printf("%-11s", "circuit");
  for (int n = 28; n <= 36; ++n) std::printf("  %11d", n);
  std::printf("\n");
  int exact_families = 0;
  for (const auto& name : circuits::family_names()) {
    std::printf("%-11s", name.c_str());
    bool exact = true;
    for (int n = 28; n <= 36; ++n) {
      const int ours = circuits::make_family(name, n).num_gates();
      const int theirs = paper.at(name)[n - 28];
      if (ours == theirs) {
        std::printf("  %6d     ", ours);
      } else {
        std::printf("  %6d(%+d)", ours, ours - theirs);
        exact = false;
      }
    }
    std::printf("  %s\n", exact ? "== paper" : "(delta vs paper)");
    exact_families += exact;
  }
  std::printf("\n%d of 11 families match Table I exactly; the others use\n"
              "standard textbook constructions (DESIGN.md).\n",
              exact_families);
  return 0;
}
