// Figure 6: simulation-time breakdown — average communication time and
// its share of total time across the 11 benchmark circuits, per GPU
// count. The paper's shape: computation dominates within one node
// (<= 4 GPUs); once the machine spans nodes, inter-node all-to-alls
// dominate (~60-66%).

#include <cstdio>
#include <vector>

#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const int local = argc > 1 ? std::atoi(argv[1]) : 14;

  bench::print_header(
      "Figure 6 — simulation time breakdown (communication share)",
      "average over 11 circuits, 1..256 GPUs, measured on Perlmutter",
      "simulated cluster, L=14, 1..16 virtual GPUs, modeled link times");

  std::printf("%5s %12s %12s %8s\n", "GPUs", "total(ms)", "comm(ms)",
              "comm%");
  for (int nl = 0; nl <= 6; ++nl) {
    double total = 0, comm = 0;
    for (const auto& family : circuits::family_names()) {
      const SimulatorConfig cfg = bench::scaled_config(local, nl);
      const Circuit c = circuits::make_family(family, local + nl);
      const auto run = bench::run_atlas(c, cfg);
      total += run.projected_seconds;
      comm += run.projected_comm_seconds;
    }
    const int families = static_cast<int>(circuits::family_names().size());
    total /= families;
    comm /= families;
    std::printf("%5d %12.3f %12.3f %7.1f%%\n", 1 << nl, total * 1e3,
                comm * 1e3, 100.0 * comm / total);
  }
  std::printf("\n(paper: 0%% at 1 GPU, ~13-22%% within a node, ~52-66%% once "
              "inter-node links appear)\n");
  return 0;
}
