// Figure 5 (a-l): weak scaling of Atlas vs HyQuas-, cuQuantum- and
// Qiskit-like baselines. The paper fixes 28 local qubits and grows the
// machine from 1 to 256 GPUs (0 to 8 non-local qubits); this bench
// fixes a host-sized local count and grows 1 -> 16 virtual GPUs. As in
// the paper, the Qiskit baseline is only run up to 4 GPUs.
//
// The headline claims this reproduces: Atlas is fastest on (nearly)
// every family, and its advantage grows with the GPU count because
// ILP/B&B staging needs fewer stages (less inter-node traffic).

#include <cstdio>
#include <vector>

#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  using baselines::BaselineKind;
  const int local = argc > 1 ? std::atoi(argv[1]) : 13;

  bench::print_header(
      "Figure 5 — weak scaling vs HyQuas / cuQuantum / Qiskit",
      "L=28 local qubits, 1..256 A100 GPUs (4/node), NVLink+Slingshot",
      "simulated cluster, L=14 local qubits, 1..16 virtual GPUs (4/node); "
      "modeled times use Perlmutter-like link constants");

  const std::vector<int> nonlocal_counts = {0, 1, 2, 3, 4, 6};
  std::vector<std::vector<double>> vs_hyquas(nonlocal_counts.size()),
      vs_cuq(nonlocal_counts.size()), vs_qiskit(nonlocal_counts.size());

  for (const auto& family : circuits::family_names()) {
    std::printf("\n--- %s ---\n", family.c_str());
    std::printf("%5s %8s | %11s %11s %11s %11s | %s\n", "GPUs", "qubits",
                "atlas", "hyquas", "cuquantum", "qiskit", "speedup");
    for (std::size_t i = 0; i < nonlocal_counts.size(); ++i) {
      const int nl = nonlocal_counts[i];
      const int n = local + nl;
      const SimulatorConfig cfg = bench::scaled_config(local, nl);
      const Circuit c = circuits::make_family(family, n);

      const auto atlas_run = bench::run_atlas(c, cfg);
      const auto hyquas = bench::run_base(BaselineKind::HyQuas, c, cfg);
      const auto cuq = bench::run_base(BaselineKind::CuQuantum, c, cfg);
      const bool run_qiskit = (1 << nl) <= 4;
      bench::RunOutcome qiskit;
      if (run_qiskit) qiskit = bench::run_base(BaselineKind::Qiskit, c, cfg);

      vs_hyquas[i].push_back(hyquas.projected_seconds /
                             atlas_run.projected_seconds);
      vs_cuq[i].push_back(cuq.projected_seconds /
                          atlas_run.projected_seconds);
      if (run_qiskit)
        vs_qiskit[i].push_back(qiskit.projected_seconds /
                               atlas_run.projected_seconds);
      const double speedup =
          std::min(hyquas.projected_seconds, cuq.projected_seconds) /
          atlas_run.projected_seconds;
      std::printf("%5d %8d | %9.3fs  %9.3fs  %9.3fs  ", 1 << nl, n,
                  atlas_run.projected_seconds ,
                  hyquas.projected_seconds , cuq.projected_seconds );
      if (run_qiskit)
        std::printf("%9.3fs  ", qiskit.projected_seconds );
      else
        std::printf("%11s ", "-");
      std::printf("| %4.1fx (stages %zu vs %zu/%zu)\n", speedup,
                  atlas_run.stages, hyquas.stages, cuq.stages);
    }
  }

  std::printf("\n=== geomean Atlas speedup per baseline ===\n");
  std::printf("%6s %12s %12s %12s\n", "GPUs", "vs hyquas", "vs cuquantum",
              "vs qiskit");
  for (std::size_t i = 0; i < nonlocal_counts.size(); ++i) {
    std::printf("%6d %11.2fx %11.2fx ", 1 << nonlocal_counts[i],
                bench::geomean(vs_hyquas[i]), bench::geomean(vs_cuq[i]));
    if (!vs_qiskit[i].empty())
      std::printf("%11.2fx\n", bench::geomean(vs_qiskit[i]));
    else
      std::printf("%12s\n", "-");
  }
  std::printf(
      "(paper: 4.0x avg over HyQuas, 3.2x over cuQuantum, 286x over Qiskit,\n"
      " growing with GPU count. On our shared substrate the cuQuantum and\n"
      " Qiskit trends reproduce; the HyQuas-like baseline converges to\n"
      " Atlas at scale because staging quality is the only remaining\n"
      " difference — see EXPERIMENTS.md.)\n");
  return 0;
}
