// Figure 13: pruning-threshold study — relative geomean cost (vs the
// greedy baseline) and preprocessing time of KERNELIZE as T sweeps,
// with ORDEREDKERNELIZE as the reference point. Claims to reproduce:
// cost decreases and time grows as T grows; the benefit flattens by
// T~500; even tiny T beats ORDEREDKERNELIZE on cost.

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/greedy.h"
#include "kernelize/ordered.h"
#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  using namespace atlas::kernelize;
  // The paper sweeps all 99 circuits; one size per family keeps this
  // bench in budget (pass a different size to widen).
  const int n = argc > 1 ? std::atoi(argv[1]) : 30;

  bench::print_header(
      "Figure 13 — pruning threshold T: cost vs preprocessing time",
      "all 99 Table-I circuits, T in {4..4000}",
      "11 families at one size each, T in {4..2000}");

  const CostModel model = CostModel::default_model();

  // Reference: ORDEREDKERNELIZE (Atlas-Naive).
  {
    std::vector<double> rel;
    double time = 0;
    for (const auto& family : circuits::family_names()) {
      const Circuit c = circuits::make_family(family, n);
      const double greedy = kernelize_greedy(c, model).total_cost;
      Timer t;
      const double ordered = kernelize_ordered(c, model).total_cost;
      time += t.seconds();
      rel.push_back(ordered / greedy);
    }
    std::printf("%8s %16s %14s\n", "T", "rel geomean", "time(s)");
    std::printf("%8s %16.4f %14.3f   <- Atlas-Naive reference\n", "-",
                bench::geomean(rel), time);
  }

  for (int t_threshold : {4, 10, 20, 50, 100, 200, 500, 1000, 2000}) {
    DpOptions opt;
    opt.prune_threshold = t_threshold;
    std::vector<double> rel;
    double time = 0;
    for (const auto& family : circuits::family_names()) {
      const Circuit c = circuits::make_family(family, n);
      const double greedy = kernelize_greedy(c, model).total_cost;
      Timer t;
      const double dp = kernelize_dp(c, model, opt).total_cost;
      time += t.seconds();
      rel.push_back(dp / greedy);
    }
    std::printf("%8d %16.4f %14.3f\n", t_threshold, bench::geomean(rel),
                time);
  }
  std::printf("\n(paper: relative cost falls from ~0.64 toward ~0.58 as T "
              "grows; time grows exponentially; even T=4 beats "
              "Atlas-Naive)\n");
  return 0;
}
