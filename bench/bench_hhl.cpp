// Table II + Figures 25 and 37: the hhl case study — circuits whose
// gate count is orders of magnitude larger than their qubit count.
// Claims to reproduce: gate counts grow exponentially with the qubit
// count (Table II shape); KERNELIZE matches ORDEREDKERNELIZE's cost
// while preprocessing faster (it is linear in the gate count, the
// ordered DP is quadratic).

#include <cstdio>

#include "common/timer.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/greedy.h"
#include "kernelize/ordered.h"
#include "util.h"

int main(int argc, char** argv) {
  using namespace atlas;
  using namespace atlas::kernelize;
  const int max_k = argc > 1 ? std::atoi(argv[1]) : 10;

  bench::print_header(
      "Table II + Figures 25/37 — hhl case study (many gates, few qubits)",
      "NWQBench hhl at 4/7/9/10 qubits (80 / 689 / 91,968 / 186,795 gates) "
      "padded to 28 qubits",
      "atlas::circuits::hhl (Trotterized QPE + uniformly controlled "
      "rotation; exponential count, ~4x below NWQBench's transpilation), "
      "padded to 28 qubits");

  const CostModel model = CostModel::default_model();
  const int paper_gates[] = {80, 689, 91968, 186795};
  const int ks[] = {4, 7, 9, 10};

  std::printf("%4s %9s %9s | %9s %9s %9s %9s | %9s %9s\n", "k", "gates",
              "paper", "greedy", "ordered", "dp", "atlas", "dp_t(s)",
              "ord_t(s)");
  for (int i = 0; i < 4; ++i) {
    const int k = ks[i];
    if (k > max_k) break;
    const Circuit c = circuits::hhl(k, 28);
    DpOptions opt;
    opt.prune_threshold = 200;

    const double greedy = kernelize_greedy(c, model).total_cost;
    Timer to;
    const double ordered = kernelize_ordered(c, model).total_cost;
    const double t_ord = to.seconds();
    Timer td;
    const double dp = kernelize_dp(c, model, opt).total_cost;
    const double t_dp = td.seconds();
    // "atlas" = the production planner (kernelize_best): min of the
    // two DPs, since the ordered pass is cheap relative to the main DP.
    std::printf("%4d %9d %9d | %9.1f %9.1f %9.1f %9.1f | %9.2f %9.2f\n", k,
                c.num_gates(), paper_gates[i], greedy, ordered, dp,
                std::min(dp, ordered), t_dp, t_ord);
  }
  std::printf("\n(paper: KERNELIZE matches ORDEREDKERNELIZE's cost on hhl "
              "and preprocesses faster at large gate counts. Here the "
              "ordered pass grows quadratically with the gate count while "
              "the DP grows linearly — the Fig. 37 crossover; the planner "
              "takes the cheaper result of the two.)\n");
  return 0;
}
