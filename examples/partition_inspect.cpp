// Partition inspector: shows what the Atlas compiler pipeline does to
// a circuit — the ILP/B&B staging (stages, qubit partitions, Eq. 2
// communication cost) and the DP kernelization of each stage — and
// compares against the heuristic baselines.
//
//   ./build/examples/partition_inspect <family|file.qasm> [qubits] [local]
//   e.g. ./build/examples/partition_inspect qft 24 20
//        ./build/examples/partition_inspect my_circuit.qasm

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/baselines.h"
#include "circuits/families.h"
#include "core/atlas.h"
#include "qasm/qasm.h"
#include "staging/snuqs.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const std::string spec = argc > 1 ? argv[1] : "qft";
  const int n = argc > 2 ? std::atoi(argv[2]) : 24;
  Circuit circuit;
  if (spec.size() > 5 && spec.substr(spec.size() - 5) == ".qasm") {
    circuit = qasm::parse_file(spec);
  } else {
    circuit = circuits::make_family(spec, n);
  }
  const int local = argc > 3 ? std::atoi(argv[3]) : circuit.num_qubits() - 4;
  const int regional = std::min(2, circuit.num_qubits() - local);
  const int global = circuit.num_qubits() - local - regional;

  SimulatorConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node = 1 << regional;

  std::printf("circuit '%s': %d qubits, %d gates\n", circuit.name().c_str(),
              circuit.num_qubits(), circuit.num_gates());
  std::printf("machine: L=%d R=%d G=%d (%d GPUs on %d nodes)\n\n", local,
              regional, global, (1 << (regional + global)), 1 << global);

  Simulator sim(cfg);
  const exec::ExecutionPlan plan = sim.plan(circuit);

  std::printf("=== Atlas staging: %zu stages, comm cost %.1f ===\n",
              plan.stages.size(), plan.staging_comm_cost);
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    const auto& st = plan.stages[s];
    std::printf("stage %zu: %d gates | local = {", s,
                st.subcircuit.num_gates());
    for (std::size_t i = 0; i < st.partition.local.size(); ++i)
      std::printf("%s%d", i ? "," : "", st.partition.local[i]);
    std::printf("} global = {");
    for (std::size_t i = 0; i < st.partition.global.size(); ++i)
      std::printf("%s%d", i ? "," : "", st.partition.global[i]);
    std::printf("}\n");
    std::printf("  kernelized into %zu kernels (cost %.2f):\n",
                st.kernels.kernels.size(), st.kernels.total_cost);
    for (const auto& k : st.kernels.kernels) {
      std::printf("    %-6s %2zu qubits %4zu gates  cost %.2f\n",
                  k.type == kernelize::KernelType::Fusion ? "fusion" : "shm",
                  k.qubits.size(), k.gate_indices.size(), k.cost);
    }
  }

  // Heuristic staging baseline for comparison (Fig. 9's SnuQS line).
  staging::MachineShape shape;
  shape.num_local = local;
  shape.num_regional = regional;
  shape.num_global = global;
  const auto snuqs = staging::stage_with_snuqs(circuit, shape);
  std::printf("\n=== SnuQS heuristic staging: %zu stages (Atlas: %zu) ===\n",
              snuqs.stages.size(), plan.stages.size());
  return 0;
}
