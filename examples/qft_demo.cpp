// QFT round-trip demo: run the quantum Fourier transform followed by
// its inverse on a distributed state and verify the state returns to
// |0...0> — exercising multi-stage execution and the all-to-all
// resharding path on a circuit family from the paper's benchmark set.
//
//   ./build/examples/qft_demo [num_qubits]   (default 18)

#include <cstdio>
#include <cstdlib>

#include "circuits/families.h"
#include "core/atlas.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const int n = argc > 1 ? std::atoi(argv[1]) : 18;
  if (n < 8 || n > 26) {
    std::fprintf(stderr, "num_qubits must be in [8, 26]\n");
    return 1;
  }

  SimulatorConfig cfg;
  cfg.cluster.local_qubits = n - 4;
  cfg.cluster.regional_qubits = 2;
  cfg.cluster.global_qubits = 2;
  cfg.cluster.gpus_per_node = 4;

  // qft then iqft: the composition is the identity.
  const Circuit fwd = circuits::qft(n);
  const Circuit inv = circuits::iqft(n);
  Circuit round_trip(n, "qft-roundtrip");
  for (const Gate& g : fwd.gates()) round_trip.add(g);
  for (const Gate& g : inv.gates()) round_trip.add(g);

  Simulator sim(cfg);
  std::printf("qft+iqft on %d qubits (%d gates), 16 virtual GPUs...\n", n,
              round_trip.num_gates());
  SimulationResult result = sim.simulate(round_trip);

  const StateVector sv = result.state.gather();
  const double p0 = std::norm(sv[0]);
  std::printf("stages: %zu   wall: %.1f ms   inter-node: %.2f MiB\n",
              result.plan->stages.size(), result.report.wall_seconds * 1e3,
              result.report.totals.inter_node_bytes / 1048576.0);
  std::printf("|<0|QFT^-1 QFT|0>|^2 = %.12f %s\n", p0,
              p0 > 0.999999 ? "(round trip verified)" : "(MISMATCH!)");
  return p0 > 0.999999 ? 0 : 1;
}
