// DRAM-offloading demo (paper Section VII-C): simulate a circuit whose
// state does not fit in GPU memory by keeping shards in node DRAM and
// swapping them through the available GPUs once per stage. Contrast
// Atlas' stage-level swaps with QDAO-style per-kernel reloads.
//
//   ./build/examples/offload_demo [num_qubits]   (default 20)

#include <cstdio>
#include <cstdlib>

#include "baselines/baselines.h"
#include "circuits/families.h"
#include "core/atlas.h"

int main(int argc, char** argv) {
  using namespace atlas;
  const int n = argc > 1 ? std::atoi(argv[1]) : 20;
  if (n < 10 || n > 26) {
    std::fprintf(stderr, "num_qubits must be in [10, 26]\n");
    return 1;
  }

  // One node, one physical GPU holding 2^(n-3) amplitudes; the full
  // 2^n state lives in DRAM as 8 shards.
  SimulatorConfig cfg;
  cfg.cluster.local_qubits = n - 3;
  cfg.cluster.regional_qubits = 3;
  cfg.cluster.global_qubits = 0;
  cfg.cluster.gpus_per_node = 1;

  const Circuit circuit = circuits::qft(n);
  std::printf("qft %d qubits with DRAM offloading (GPU holds 1/8 of the "
              "state)\n\n", n);

  Simulator sim(cfg);
  const SimulationResult atlas_result = sim.simulate(circuit);
  const auto qdao = baselines::run_baseline(baselines::BaselineKind::Qdao,
                                            circuit, cfg);

  const auto& comm = cfg.comm;
  auto show = [&](const char* name, const exec::ExecutionReport& r,
                  std::size_t stages) {
    std::printf("%-12s stages=%-3zu offload=%8.1f MiB  modeled=%7.3f s  "
                "wall=%6.1f ms\n",
                name, stages, r.totals.offload_bytes / 1048576.0,
                r.modeled_seconds(comm, 1, 1), r.wall_seconds * 1e3);
  };
  show("atlas", atlas_result.report, atlas_result.plan->stages.size());
  show("qdao-like", qdao.report, qdao.plan.stages.size());

  std::printf("\natlas swaps each shard once per stage; the QDAO-style\n"
              "schedule reloads blocks per kernel, multiplying PCIe "
              "traffic.\n");
  return 0;
}
