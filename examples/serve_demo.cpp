// Serving demo: embed an atlas-serve Server on an ephemeral loopback
// port, then talk to it through the blocking Client exactly like a
// remote tenant would — open a session, submit QASM, compile (noting
// the cross-tenant shared-plan cache), run, sweep, sample, and read
// the daemon's introspection ops.
//
//   ./build/serve_demo

#include <cstdio>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"

int main() {
  using namespace atlas;

  serve::ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = 2;
  config.session.cluster.local_qubits = 8;
  config.session.cluster.regional_qubits = 1;
  config.session.cluster.global_qubits = 1;
  config.session.cluster.gpus_per_node = 2;

  serve::Server server(config);
  server.start();
  std::printf("embedded daemon on 127.0.0.1:%d\n", server.port());

  const std::string qasm =
      "OPENQASM 3;\n"
      "include \"qelib1.inc\";\n"
      "input float theta;\n"
      "qreg q[10];\n"
      "h q[0];\n"
      "cx q[0],q[1];\n"
      "cx q[1],q[2];\n"
      "rx(theta) q[3];\n"
      "cx q[2],q[3];\n";

  // Tenant A: submit -> compile -> run -> sample.
  serve::Client alice("127.0.0.1", server.port());
  serve::OpenSessionRequest open;
  open.tenant = "alice";
  const std::uint64_t a = alice.open_session(open);
  const serve::SubmitReply submitted = alice.submit_qasm(a, qasm);
  std::printf("alice: session %llu, circuit %u (%u qubits, %u gates)\n",
              static_cast<unsigned long long>(a), submitted.circuit_id,
              submitted.num_qubits, submitted.num_gates);

  const serve::CompileReply compiled = alice.compile(a, submitted.circuit_id);
  std::printf("alice: compiled %u (shared cache %s)\n", compiled.compiled_id,
              compiled.shared_cache_hit ? "hit" : "miss");

  const serve::RunReply run = alice.run(a, compiled.compiled_id, {0.4});
  std::printf("alice: run -> norm^2 %.6f, <Z_0> % .4f, result %u\n",
              run.norm_sq, run.expectation_z[0], run.result_id);

  const auto samples = alice.sample(a, run.result_id, 5);
  std::printf("alice: 5 shots:");
  for (const auto s : samples)
    std::printf(" |%llx>", static_cast<unsigned long long>(s));
  std::printf("\n");

  // A parameter sweep: the daemon fans points through its fair-share
  // dispatcher; one plan serves every point.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 6; ++i) points.push_back({0.3 * i});
  const auto sweep = alice.sweep(a, compiled.compiled_id, points);
  std::printf("alice: sweep over %zu points, <Z_3> =", sweep.size());
  for (const auto& p : sweep) std::printf(" % .3f", p.expectation_z[3]);
  std::printf("\n");

  // Tenant B submits the *same* circuit: its compile is a shared-plan
  // cache hit — the plan built for alice is structurally identical and
  // state-independent, so bob reuses it without re-partitioning.
  serve::Client bob("127.0.0.1", server.port());
  open.tenant = "bob";
  const std::uint64_t b = bob.open_session(open);
  const serve::CompileReply bob_compiled =
      bob.compile(b, bob.submit_qasm(b, qasm).circuit_id);
  std::printf("bob:   compiled %u (shared cache %s)\n",
              bob_compiled.compiled_id,
              bob_compiled.shared_cache_hit ? "hit" : "miss");

  // Introspection: what an operator sees through atlas-servectl.
  const auto stats = alice.cache_stats();
  std::printf(
      "stats: %u/%u sessions, shared plans %u entries (%llu hits / %llu "
      "misses)\n",
      stats.sessions, stats.session_capacity, stats.shared_entries,
      static_cast<unsigned long long>(stats.shared_hits),
      static_cast<unsigned long long>(stats.shared_misses));
  for (const auto& info : alice.list_sessions()) {
    std::printf("  session %llu tenant=%s circuits=%u compiled=%u results=%u\n",
                static_cast<unsigned long long>(info.session_id),
                info.tenant.c_str(), info.circuits, info.compiled,
                info.results);
  }

  alice.close_session(a);
  bob.close_session(b);
  server.stop();
  std::printf("done\n");
  return 0;
}
