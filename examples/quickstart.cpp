// Quickstart: build circuits, submit them concurrently to a Session on
// a simulated 2-node x 4-GPU cluster, and inspect the results — plus a
// plan-cache hit on resubmission and a compile-once / bind-many
// parameter sweep with the typed result facade.
//
//   ./build/quickstart

#include <cstdio>
#include <vector>

#include "core/atlas.h"
#include "ir/gate.h"

int main() {
  using namespace atlas;

  // A 13-qubit GHZ-like circuit with some phase structure.
  Circuit circuit(13, "quickstart");
  circuit.add(Gate::h(0));
  for (int q = 1; q < 13; ++q) circuit.add(Gate::cx(q - 1, q));
  for (int q = 0; q < 13; ++q) circuit.add(Gate::t(q));
  for (int q = 1; q < 13; ++q) circuit.add(Gate::cx(q - 1, q));
  circuit.add(Gate::h(0));

  // Machine shape: 2^10 amplitudes per GPU, 4 GPUs per node (2
  // regional qubits), 2 nodes (1 global qubit). The Session validates
  // this shape up front and resolves its backends ("auto"/"best"/
  // "auto" by default) from the registries.
  SessionConfig cfg;
  cfg.cluster.local_qubits = 10;
  cfg.cluster.regional_qubits = 2;
  cfg.cluster.global_qubits = 1;
  cfg.cluster.gpus_per_node = 4;

  Session session(cfg);

  // Asynchronous submission on the session's dispatch pool.
  auto pending = session.submit(circuit);
  SimulationResult result = pending.get();

  // Plans are reusable (paper Section III): recompiling a structurally
  // identical circuit is served from the session's LRU cache.
  session.compile(circuit);

  std::printf("quickstart: %d qubits, %d gates\n", circuit.num_qubits(),
              circuit.num_gates());
  std::printf("plan: %zu stage(s), staging comm cost %.1f, kernel cost %.2f\n",
              result.plan->stages.size(), result.plan->staging_comm_cost,
              result.plan->kernel_cost_total);
  for (std::size_t s = 0; s < result.plan->stages.size(); ++s) {
    const auto& st = result.plan->stages[s];
    std::printf("  stage %zu: %d gates in %zu kernels\n", s,
                st.subcircuit.num_gates(), st.kernels.kernels.size());
  }
  std::printf("executed in %.3f ms wall (%.1f%% communication)\n",
              result.report.wall_seconds * 1e3,
              100.0 * result.report.comm_seconds /
                  std::max(1e-12, result.report.wall_seconds));

  const PlanCacheStats cache = session.plan_cache_stats();
  std::printf("plan cache: %llu hit(s), %llu miss(es)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));

  // Largest amplitudes of the final state.
  const StateVector sv = result.state.gather();
  std::printf("top amplitudes:\n");
  for (Index i = 0; i < sv.size(); ++i) {
    if (std::abs(sv[i]) > 0.2) {
      std::printf("  |%04llx>  % .4f %+.4fi   (p=%.3f)\n",
                  static_cast<unsigned long long>(i), sv[i].real(),
                  sv[i].imag(), std::norm(sv[i]));
    }
  }

  // --- parameter sweep: compile once, bind many --------------------
  // A variational ansatz over two symbols. Staging + kernelization run
  // exactly once, in compile(); every binding re-uses the plan.
  Circuit ansatz(13, "quickstart_ansatz");
  const Param theta = Param::symbol("theta");
  const Param gamma = Param::symbol("gamma");
  for (int q = 0; q < 13; ++q) ansatz.add(Gate::h(q));
  for (int q = 0; q + 1 < 13; ++q) ansatz.add(Gate::rzz(q, q + 1, gamma));
  for (int q = 0; q < 13; ++q) ansatz.add(Gate::rx(q, theta));

  const CompiledCircuit compiled = session.compile(ansatz);
  std::vector<ParamBinding> bindings;
  for (int i = 0; i < 8; ++i)
    bindings.push_back(
        ParamBinding{}.set("theta", 0.2 * i).set("gamma", 0.5 - 0.1 * i));
  const std::vector<SimulationResult> sweep =
      session.sweep(compiled, bindings);

  // The typed result facade answers observable queries without ever
  // touching the distributed state directly.
  std::printf("sweep over %zu bindings (%zu parameter slots, 1 plan):\n",
              sweep.size(), compiled.param_slots().size());
  for (std::size_t i = 0; i < sweep.size(); ++i)
    std::printf("  theta=%.2f  <Z_0> = % .4f   p(|0...0>) = %.4f\n",
                0.2 * static_cast<double>(i), sweep[i].expectation_z(0),
                sweep[i].probability(0));
  return 0;
}
