// atlas_cli — command-line front end: simulate a QASM file or a named
// benchmark family on a configurable virtual cluster and report
// statistics, the partition plan, timings, and sampled measurement
// outcomes.
//
//   atlas_cli <family|file.qasm> [--qubits n] [--local L] [--regional R]
//             [--global G] [--gpus-per-node g] [--shots k] [--seed s]
//
//   e.g. ./build/atlas_cli ghz --qubits 18 --local 14 --regional 2 --global 2 --shots 8

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "circuits/families.h"
#include "core/atlas.h"
#include "exec/queries.h"
#include "opt/rewrite.h"
#include "qasm/qasm.h"

namespace {

int arg_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 2; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atlas;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <family|file.qasm> [--qubits n] [--local L] "
                 "[--regional R] [--global G] [--gpus-per-node g] "
                 "[--shots k] [--seed s]\n",
                 argv[0]);
    return 2;
  }
  const std::string spec = argv[1];
  const int n = arg_int(argc, argv, "--qubits", 16);

  Circuit circuit;
  try {
    if (spec.size() > 5 && spec.substr(spec.size() - 5) == ".qasm") {
      circuit = qasm::parse_file(spec);
    } else {
      circuit = circuits::make_family(spec, n);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const int nq = circuit.num_qubits();
  const int local = arg_int(argc, argv, "--local", std::max(3, nq - 4));
  const int regional =
      arg_int(argc, argv, "--regional", std::min(2, nq - local));
  const int global = arg_int(argc, argv, "--global", nq - local - regional);
  const int shots = arg_int(argc, argv, "--shots", 8);
  const int seed = arg_int(argc, argv, "--seed", 1);

  SimulatorConfig cfg;
  cfg.cluster.local_qubits = local;
  cfg.cluster.regional_qubits = regional;
  cfg.cluster.global_qubits = global;
  cfg.cluster.gpus_per_node =
      arg_int(argc, argv, "--gpus-per-node", 1 << regional);

  const CircuitStats stats = statistics(circuit);
  std::printf("circuit: %s — %d qubits, %d gates, depth %d "
              "(%d multi-qubit, %d fully insular)\n",
              circuit.name().c_str(), stats.num_qubits, stats.num_gates,
              stats.depth, stats.multi_qubit_gates,
              stats.fully_insular_gates);
  std::printf("machine: L=%d R=%d G=%d, %d GPU(s)/node, %d node(s)%s\n",
              local, regional, global, cfg.cluster.gpus_per_node,
              cfg.cluster.num_nodes(),
              cfg.cluster.offloading() ? " [DRAM offloading]" : "");

  try {
    Simulator sim(cfg);
    const SimulationResult r = sim.simulate(circuit);
    std::printf("plan: %zu stage(s), staging cost %.1f, kernel cost %.2f\n",
                r.plan->stages.size(), r.plan->staging_comm_cost,
                r.plan->kernel_cost_total);
    std::printf("run: %.1f ms wall | inter-node %.2f MiB | "
                "intra-node %.2f MiB | offload %.2f MiB\n",
                r.report.wall_seconds * 1e3,
                r.report.totals.inter_node_bytes / 1048576.0,
                r.report.totals.intra_node_bytes / 1048576.0,
                r.report.totals.offload_bytes / 1048576.0);
    std::printf("norm: %.12f\n", exec::norm_sq(r.state));
    if (shots > 0) {
      Rng rng(seed);
      std::printf("samples (%d shots):", shots);
      for (Index s : exec::sample(r.state, shots, rng))
        std::printf(" %llx", static_cast<unsigned long long>(s));
      std::printf("\n");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
