OPENQASM 2.0;
include "qelib1.inc";
#pragma atlas noise depolarizing(0.01) all
#pragma atlas noise amplitude_damping(0.02) gate cx
#pragma atlas noise readout(0.01, 0.03) all
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
