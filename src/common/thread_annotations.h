#pragma once

/// \file thread_annotations.h
/// Clang thread-safety analysis attributes, spelled as ATLAS_* macros
/// that expand to nothing under compilers without the attribute (gcc
/// builds them as plain code; the CI static-analysis job compiles with
/// clang and -Werror=thread-safety to enforce them).
///
/// Conventions (docs/VERIFY.md has the full catalog):
///  * every mutex-protected member is ATLAS_GUARDED_BY(mu_);
///  * private helpers that assume the lock are suffixed `_locked` and
///    annotated ATLAS_REQUIRES(mu_);
///  * public entry points that take the lock are ATLAS_EXCLUDES(mu_)
///    when re-entry would deadlock;
///  * ATLAS_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry
///    a comment explaining why the analysis cannot see the invariant.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ATLAS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ATLAS_THREAD_ANNOTATION
#define ATLAS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define ATLAS_CAPABILITY(name) ATLAS_THREAD_ANNOTATION(capability(name))
#define ATLAS_SCOPED_CAPABILITY ATLAS_THREAD_ANNOTATION(scoped_lockable)
#define ATLAS_GUARDED_BY(x) ATLAS_THREAD_ANNOTATION(guarded_by(x))
#define ATLAS_PT_GUARDED_BY(x) ATLAS_THREAD_ANNOTATION(pt_guarded_by(x))
#define ATLAS_ACQUIRE(...) \
  ATLAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ATLAS_RELEASE(...) \
  ATLAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ATLAS_TRY_ACQUIRE(...) \
  ATLAS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ATLAS_REQUIRES(...) \
  ATLAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ATLAS_EXCLUDES(...) ATLAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ATLAS_ASSERT_CAPABILITY(x) \
  ATLAS_THREAD_ANNOTATION(assert_capability(x))
#define ATLAS_RETURN_CAPABILITY(x) ATLAS_THREAD_ANNOTATION(lock_returned(x))
#define ATLAS_NO_THREAD_SAFETY_ANALYSIS \
  ATLAS_THREAD_ANNOTATION(no_thread_safety_analysis)
