#pragma once

/// \file rng.h
/// Deterministic random number generation. Every randomized component
/// (random circuits, random states, su2random parameters) takes an
/// explicit seed so tests and benchmarks are reproducible.

#include <cstdint>
#include <random>

#include "common/types.h"

namespace atlas {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return dist_(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(gen_);
  }

  /// Standard normal.
  double normal() { return normal_(gen_); }

  /// A random complex amplitude with normally distributed components.
  Amp amp() { return Amp(normal(), normal()); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace atlas
