#pragma once

/// \file rng.h
/// Deterministic random number generation. Every randomized component
/// (random circuits, random states, su2random parameters) takes an
/// explicit seed so tests and benchmarks are reproducible.
///
/// Parallel work uses *counter-based streams*: rng_stream_seed() mixes a
/// base seed with a stream counter (SplitMix64 finalizer) into an
/// independent seed, so the k-th trajectory / shot batch / sweep point
/// draws the same numbers no matter which dispatch-pool thread runs it
/// or in which order jobs complete.

#include <cstdint>
#include <random>

#include "common/types.h"

namespace atlas {

/// Mixes (seed, stream) into the seed of an independent stream
/// (SplitMix64 finalizer over the golden-ratio-stepped counter). Equal
/// inputs always give equal outputs; nearby streams are uncorrelated.
inline std::uint64_t rng_stream_seed(std::uint64_t seed,
                                     std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : gen_(seed) {}

  /// The deterministic generator for stream `stream` of `seed` —
  /// independent of every other stream regardless of scheduling.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) {
    return Rng(rng_stream_seed(seed, stream));
  }

  /// Uniform double in [0, 1).
  double uniform() { return dist_(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(gen_);
  }

  /// Standard normal.
  double normal() { return normal_(gen_); }

  /// A random complex amplitude with normally distributed components.
  Amp amp() { return Amp(normal(), normal()); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace atlas
