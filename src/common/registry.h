#pragma once

/// \file registry.h
/// String-keyed factory registry shared by the pluggable backend seams
/// (staging::Stager, kernelize::Kernelizer, exec::ExecutorBackend).
/// New engines register under a name at startup (or any time before
/// first use) and become selectable from SessionConfig without touching
/// core headers — the module-registration discipline of large C
/// servers, adapted to C++.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace atlas {

template <typename Interface>
class Registry {
 public:
  using Factory = std::function<std::shared_ptr<Interface>()>;

  /// `kind` names the seam ("stager", "kernelizer", ...) in errors.
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers `factory` under `name`. Throws atlas::Error if the name
  /// is empty or already taken (overwriting a backend silently would
  /// make behavior depend on registration order).
  void add(const std::string& name, Factory factory) {
    ATLAS_CHECK(!name.empty(), "empty " << kind_ << " name");
    ATLAS_CHECK(factory != nullptr, "null factory for " << kind_ << " '"
                                                        << name << "'");
    std::lock_guard<std::mutex> lock(mu_);
    ATLAS_CHECK(factories_.emplace(name, std::move(factory)).second,
                "" << kind_ << " '" << name << "' is already registered");
  }

  bool contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(name) != 0;
  }

  /// Instantiates the backend registered under `name`. Throws
  /// atlas::Error listing the registered names when `name` is unknown.
  std::shared_ptr<Interface> create(const std::string& name) const {
    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(name);
      if (it != factories_.end()) factory = it->second;
    }
    if (!factory) {
      std::ostringstream os;
      os << "unknown " << kind_ << " '" << name << "'; registered: ";
      const auto known = names();
      for (std::size_t i = 0; i < known.size(); ++i) {
        if (i) os << ", ";
        os << known[i];
      }
      throw Error(os.str(), ErrorCode::not_found);
    }
    auto backend = factory();
    ATLAS_CHECK(backend != nullptr,
                "" << kind_ << " '" << name << "' factory returned null");
    return backend;
  }

  /// Registered names, sorted (std::map iteration order).
  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
  }

 private:
  std::string kind_;
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace atlas
