#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/error.h"

namespace atlas {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (draining_) {
      throw Error("ThreadPool is draining; new tasks are rejected",
                  ErrorCode::unavailable);
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  cv_idle_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
    return in_flight_ == 0;
  });
}

void ThreadPool::drain() {
  MutexLock lock(mu_);
  draining_ = true;
  cv_idle_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
    return in_flight_ == 0;
  });
}

bool ThreadPool::draining() const {
  MutexLock lock(mu_);
  return draining_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    // Avoid queueing overhead when there is no parallelism to exploit.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // Per-call completion state; local to the call, so GUARDED_BY cannot
  // be expressed — the lock sites below keep the discipline manually.
  Mutex done_mu;
  std::exception_ptr first_error;
  CondVar done_cv;
  std::size_t done = 0;
  const std::size_t num_tasks = std::min(n, workers_.size());
  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(done_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
      MutexLock lock(done_mu);
      if (++done == num_tasks) done_cv.notify_all();
    });
  }
  // Wait on this call's own completion count, not pool-wide idleness:
  // concurrent parallel_for calls (e.g. two Session jobs sharing the
  // cluster pool) must not act as barriers for each other.
  MutexLock lock(done_mu);
  done_cv.wait(done_mu, [&] { return done == num_tasks; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_task_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace atlas
