#pragma once

/// \file bits.h
/// Bit-manipulation helpers for state-vector index arithmetic.
///
/// State-vector indices encode qubit values: bit `q` of index `i` is the
/// value of (physical) qubit `q` in basis state |i>. Applying a k-qubit
/// gate iterates over all assignments of the non-target bits and, for
/// each, gathers the 2^k amplitudes obtained by varying the target bits
/// — `insert_bits`/`spread_bits` implement that index arithmetic.

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace atlas {

/// Returns an Index with bit `q` set.
constexpr Index bit(int q) { return Index{1} << q; }

/// Tests bit `q` of `i`.
constexpr bool test_bit(Index i, int q) { return (i >> q) & 1; }

/// Sets bit `q` of `i` to `v`.
constexpr Index set_bit(Index i, int q, bool v) {
  return v ? (i | bit(q)) : (i & ~bit(q));
}

/// Number of set bits.
constexpr int popcount(Index i) { return std::popcount(i); }

/// Inserts a zero bit at position `q`: bits [q..) of `i` shift up by one.
/// This is the f(i) of the paper's Eq. (1) generalized: iterating i over
/// [0, 2^(n-1)) and inserting a zero at q enumerates all indices with
/// bit q clear.
constexpr Index insert_zero_bit(Index i, int q) {
  const Index low = i & (bit(q) - 1);
  const Index high = (i >> q) << (q + 1);
  return high | low;
}

/// Inserts zero bits at each position in `qs` (ascending, distinct).
inline Index insert_zero_bits(Index i, const std::vector<int>& qs) {
  for (int q : qs) i = insert_zero_bit(i, q);
  return i;
}

/// Scatters the low `qs.size()` bits of `mask_bits` to positions `qs`.
inline Index spread_bits(Index mask_bits, const std::vector<int>& qs) {
  Index r = 0;
  for (std::size_t j = 0; j < qs.size(); ++j)
    if (test_bit(mask_bits, static_cast<int>(j))) r |= bit(qs[j]);
  return r;
}

/// Gathers bits of `i` at positions `qs` into a compact low-bit value.
inline Index gather_bits(Index i, const std::vector<int>& qs) {
  Index r = 0;
  for (std::size_t j = 0; j < qs.size(); ++j)
    if (test_bit(i, qs[j])) r |= bit(static_cast<int>(j));
  return r;
}

/// Inverse position index of a sorted bit list: result[b] = index of
/// bit position b within `bits`, or -1 when absent (result is sized
/// bits.back()+1; empty for an empty list). The O(1)-lookup complement
/// of spread_bits/gather_bits used when remapping between bit spaces.
inline std::vector<int> inverse_index(const std::vector<int>& bits) {
  std::vector<int> pos(bits.empty() ? 0 : static_cast<std::size_t>(
                                              bits.back()) + 1,
                       -1);
  for (std::size_t i = 0; i < bits.size(); ++i)
    pos[static_cast<std::size_t>(bits[i])] = static_cast<int>(i);
  return pos;
}

/// floor(log2(x)) for x > 0.
constexpr int floor_log2(Index x) {
  return 63 - std::countl_zero(x);
}

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(Index x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace atlas
