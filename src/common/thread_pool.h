#pragma once

/// \file thread_pool.h
/// A small task-based thread pool (Core Guidelines CP.4: think in terms
/// of tasks). Atlas uses it to execute per-shard GPU work in parallel:
/// each virtual GPU's kernel launches for a stage form one task.
///
/// Lock discipline is statically checked: `mu_` is an annotated
/// capability (common/mutex.h) guarding the queue and lifecycle flags,
/// and the CI clang build enforces the GUARDED_BY contracts with
/// -Werror=thread-safety.

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace atlas {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns immediately. Throws atlas::Error
  /// (ErrorCode::unavailable) once drain() has been called.
  void submit(std::function<void()> task) ATLAS_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void wait_idle() ATLAS_EXCLUDES(mu_);

  /// Graceful shutdown mode: atomically stops accepting new submit()s
  /// (they throw ErrorCode::unavailable from this point on), lets every
  /// queued and running task finish, and returns once the pool is idle.
  /// Terminal — there is no way to resume a drained pool; destroy it
  /// instead. Idempotent and safe to call concurrently with submitters:
  /// a submit either lands before the drain (and is waited for) or
  /// throws. Workers stay parked so the destructor still works.
  /// Must not be called from a task running on this pool (deadlock).
  void drain() ATLAS_EXCLUDES(mu_);

  /// True once drain() has begun.
  bool draining() const ATLAS_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, n), distributing across the pool and
  /// blocking until all iterations complete. Exceptions from tasks are
  /// rethrown (the first one captured). Waits on this call's own
  /// iterations — not pool-wide idleness — so concurrent callers do
  /// not serialize each other.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop() ATLAS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  std::queue<std::function<void()>> tasks_ ATLAS_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ ATLAS_GUARDED_BY(mu_) = 0;
  bool stop_ ATLAS_GUARDED_BY(mu_) = false;
  bool draining_ ATLAS_GUARDED_BY(mu_) = false;
};

}  // namespace atlas
