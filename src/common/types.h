#pragma once

/// \file types.h
/// Fundamental scalar types shared by every Atlas module.

#include <complex>
#include <cstdint>

namespace atlas {

/// A single state-vector amplitude. The paper simulates with
/// double-precision complex numbers (16 bytes each).
using Amp = std::complex<double>;

/// Index into a (possibly distributed) state vector. 64 bits supports
/// up to 2^63 amplitudes, far beyond any simulable circuit.
using Index = std::uint64_t;

/// A qubit id within a circuit (logical) or within the machine
/// (physical). Circuits in this codebase stay well below 2^31 qubits.
using Qubit = int;

inline constexpr double kAmpTolerance = 1e-9;

}  // namespace atlas
