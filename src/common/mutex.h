#pragma once

/// \file mutex.h
/// Annotated mutex wrappers: a std::mutex the clang thread-safety
/// analysis can reason about (ATLAS_CAPABILITY), a scoped guard, and a
/// condition variable that waits on it. Drop-in for the std types —
/// same semantics, zero overhead — but every lock site becomes
/// statically checkable: members declare ATLAS_GUARDED_BY(mu_),
/// helpers declare ATLAS_REQUIRES(mu_), and the CI clang build refuses
/// unprotected access.
///
/// CondVar is std::condition_variable_any (Mutex is BasicLockable, not
/// std::mutex, so the _any variant is required); its wait() declares
/// ATLAS_REQUIRES(mu) since the analysis cannot model the unlock/relock
/// cycle inside the wait.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace atlas {

class ATLAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ATLAS_ACQUIRE() { mu_.lock(); }
  void unlock() ATLAS_RELEASE() { mu_.unlock(); }
  bool try_lock() ATLAS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard with the scoped-capability annotation.
class ATLAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ATLAS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ATLAS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Callers hold the Mutex across wait
/// (expressed via ATLAS_REQUIRES); notify needs no lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) ATLAS_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) ATLAS_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace atlas
