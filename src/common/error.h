#pragma once

/// \file error.h
/// Error handling used across Atlas. Programming errors and violated
/// invariants throw atlas::Error with a formatted message; hot loops use
/// ATLAS_DCHECK which compiles out in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace atlas {

/// Exception type thrown on any Atlas failure (bad input, violated
/// invariant, infeasible model, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace atlas

/// Always-on invariant check. `msg` is streamed, e.g.
/// ATLAS_CHECK(x > 0, "x=" << x).
#define ATLAS_CHECK(cond, ...)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream atlas_check_os_;                               \
      atlas_check_os_ << "" __VA_ARGS__;                                \
      ::atlas::detail::fail(#cond, __FILE__, __LINE__,                  \
                            atlas_check_os_.str());                     \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define ATLAS_DCHECK(cond, ...) \
  do {                          \
  } while (0)
#else
#define ATLAS_DCHECK(cond, ...) ATLAS_CHECK(cond, __VA_ARGS__)
#endif
