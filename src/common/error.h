#pragma once

/// \file error.h
/// Error handling used across Atlas. Programming errors and violated
/// invariants throw atlas::Error with a formatted message; hot loops use
/// ATLAS_DCHECK which compiles out in release builds.
///
/// Every Error carries an ErrorCode classifying the failure, so layers
/// that translate exceptions into another vocabulary (the serve
/// subsystem maps them to wire status codes) can switch on the code
/// instead of string-matching the message. Checks default to
/// `internal`; input-validation sites use ATLAS_CHECK_ARG (or throw
/// with an explicit code).

#include <sstream>
#include <stdexcept>
#include <string>

namespace atlas {

/// Classification of an atlas::Error, coarse by design (it is a wire
/// vocabulary, not a taxonomy of every failure).
enum class ErrorCode {
  /// Violated invariant or unclassified internal failure.
  internal = 0,
  /// The caller passed something malformed or out of range.
  invalid_argument = 1,
  /// A named entity (registry key, session, handle) does not exist.
  not_found = 2,
  /// A bounded resource (store, queue, admission budget) is full.
  capacity = 3,
  /// The target exists but is refusing work (draining, shut down).
  unavailable = 4,
};

/// Stable lowercase name of `code` ("internal", "invalid_argument", ...).
const char* error_code_name(ErrorCode code);

/// Exception type thrown on any Atlas failure (bad input, violated
/// invariant, infeasible model, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::internal)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::internal: return "internal";
    case ErrorCode::invalid_argument: return "invalid_argument";
    case ErrorCode::not_found: return "not_found";
    case ErrorCode::capacity: return "capacity";
    case ErrorCode::unavailable: return "unavailable";
  }
  return "internal";
}

namespace detail {

[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg,
                              ErrorCode code = ErrorCode::internal) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), code);
}

}  // namespace detail
}  // namespace atlas

/// Always-on invariant check. `msg` is streamed, e.g.
/// ATLAS_CHECK(x > 0, "x=" << x).
#define ATLAS_CHECK(cond, ...)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream atlas_check_os_;                               \
      atlas_check_os_ << "" __VA_ARGS__;                                \
      ::atlas::detail::fail(#cond, __FILE__, __LINE__,                  \
                            atlas_check_os_.str());                     \
    }                                                                   \
  } while (0)

/// As ATLAS_CHECK, but classifies the failure as caller error
/// (ErrorCode::invalid_argument) — use at API boundaries validating
/// caller-supplied input.
#define ATLAS_CHECK_ARG(cond, ...)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream atlas_check_os_;                               \
      atlas_check_os_ << "" __VA_ARGS__;                                \
      ::atlas::detail::fail(#cond, __FILE__, __LINE__,                  \
                            atlas_check_os_.str(),                      \
                            ::atlas::ErrorCode::invalid_argument);      \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define ATLAS_DCHECK(cond, ...) \
  do {                          \
  } while (0)
#else
#define ATLAS_DCHECK(cond, ...) ATLAS_CHECK(cond, __VA_ARGS__)
#endif
