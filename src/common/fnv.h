#pragma once

/// \file fnv.h
/// FNV-1a 64-bit hashing, shared by the circuit fingerprints and the
/// session's plan-cache key salting so the byte-folding can never drift
/// between them.

#include <cstdint>
#include <cstring>
#include <string>

namespace atlas {

class Fnv {
 public:
  static constexpr std::uint64_t kDefaultBasis = 1469598103934665603ull;

  explicit Fnv(std::uint64_t basis = kDefaultBasis) : h_(basis) {}

  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (8 * byte)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }

  void mix_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }

  void mix_string(const std::string& s) {
    mix(s.size());
    for (char c : s) mix(static_cast<unsigned char>(c));
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_;
};

/// FNV-1a folding of `v` into basis `h` — the shared salting step of
/// every plan-cache key (session.cpp value keys, pipeline.cpp
/// structural keys). One definition so the two key spaces can never
/// drift apart.
inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  Fnv f(h);
  f.mix(v);
  return f.value();
}

}  // namespace atlas
