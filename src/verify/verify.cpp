#include "verify/verify.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <unordered_set>

#include "core/compiled.h"
#include "exec/executor.h"
#include "exec/stage_program.h"
#include "noise/channel.h"
#include "noise/model.h"
#include "staging/stage.h"

namespace atlas::verify {

const char* verify_level_name(VerifyLevel level) {
  switch (level) {
    case VerifyLevel::off: return "off";
    case VerifyLevel::boundaries: return "boundaries";
    case VerifyLevel::paranoid: return "paranoid";
  }
  return "off";
}

const char* code_name(Code code) {
  switch (code) {
    case Code::qubit_out_of_range: return "qubit_out_of_range";
    case Code::duplicate_qubit: return "duplicate_qubit";
    case Code::bad_arity: return "bad_arity";
    case Code::bad_matrix_shape: return "bad_matrix_shape";
    case Code::nonunitary_matrix: return "nonunitary_matrix";
    case Code::dangling_slot: return "dangling_slot";
    case Code::gate_unstaged: return "gate_unstaged";
    case Code::gate_double_staged: return "gate_double_staged";
    case Code::stage_order: return "stage_order";
    case Code::stage_locality: return "stage_locality";
    case Code::partition_not_permutation: return "partition_not_permutation";
    case Code::stage_subcircuit_mismatch: return "stage_subcircuit_mismatch";
    case Code::kernel_coverage: return "kernel_coverage";
    case Code::kernel_qubits: return "kernel_qubits";
    case Code::slot_table_mismatch: return "slot_table_mismatch";
    case Code::symbol_unbound: return "symbol_unbound";
    case Code::gather_not_bijective: return "gather_not_bijective";
    case Code::variant_count: return "variant_count";
    case Code::pattern_bits_invalid: return "pattern_bits_invalid";
    case Code::non_cptp: return "non_cptp";
    case Code::kraus_shape: return "kraus_shape";
    case Code::readout_not_stochastic: return "readout_not_stochastic";
  }
  return "?";
}

std::string VerifyDiagnostic::to_string() const {
  std::ostringstream os;
  if (stage >= 0) os << "stage " << stage << " ";
  if (kernel >= 0) os << "kernel " << kernel << " ";
  if (gate >= 0) os << "gate " << gate << " ";
  os << code_name(code) << ": " << message;
  return os.str();
}

void VerifyReport::merge(const VerifyReport& other) {
  diags.insert(diags.end(), other.diags.begin(), other.diags.end());
  if (subject.empty()) subject = other.subject;
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << "verify failed";
  if (!subject.empty()) os << " for " << subject;
  os << " (" << diags.size() << " diagnostic" << (diags.size() == 1 ? "" : "s")
     << "):";
  for (const VerifyDiagnostic& d : diags) os << "\n  " << d.to_string();
  return os.str();
}

namespace {

void add(VerifyReport& report, Code code, std::string message, int gate = -1,
         int stage = -1, int kernel = -1) {
  report.diags.push_back(
      VerifyDiagnostic{code, std::move(message), gate, stage, kernel});
}

/// Expected (qubits, params) per gate kind; {-1, -1} means variable
/// (Unitary) and is checked separately.
std::pair<int, int> kind_arity(GateKind kind) {
  switch (kind) {
    case GateKind::H: case GateKind::X: case GateKind::Y: case GateKind::Z:
    case GateKind::S: case GateKind::Sdg: case GateKind::T:
    case GateKind::Tdg: case GateKind::SX:
      return {1, 0};
    case GateKind::RX: case GateKind::RY: case GateKind::RZ: case GateKind::P:
      return {1, 1};
    case GateKind::U2: return {1, 2};
    case GateKind::U3: return {1, 3};
    case GateKind::CX: case GateKind::CY: case GateKind::CZ: case GateKind::CH:
    case GateKind::SWAP:
      return {2, 0};
    case GateKind::CP: case GateKind::CRX: case GateKind::CRY:
    case GateKind::CRZ: case GateKind::RZZ: case GateKind::RXX:
      return {2, 1};
    case GateKind::CCX: case GateKind::CCZ: case GateKind::CSWAP:
      return {3, 0};
    case GateKind::Unitary: return {-1, -1};
  }
  return {-1, -1};
}

/// The slot id when `name` is an engine slot symbol "$<digits>", else -1.
int slot_id_of(const std::string& name) {
  if (name.size() < 2 || name[0] != '$') return -1;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return -1;
  return std::stoi(name.substr(1));
}

/// Shared circuit walk. `require_dense_slots` is on for whole circuits
/// (the canonical-form contract) and off for stage subcircuits, which
/// legally reference a subset of the plan's slots. `stage` tags the
/// diagnostics when walking a stage subcircuit.
void check_circuit_core(const Circuit& circuit, VerifyLevel level,
                        const Tolerances& tol, bool require_dense_slots,
                        VerifyReport& report, int stage = -1) {
  std::set<int> slots_seen;
  bool slot_form_ok = true;
  for (int gi = 0; gi < circuit.num_gates(); ++gi) {
    const Gate& g = circuit.gate(gi);
    // Qubit bounds and distinctness.
    std::unordered_set<Qubit> seen;
    for (Qubit q : g.qubits()) {
      if (q < 0 || q >= circuit.num_qubits()) {
        add(report, Code::qubit_out_of_range,
            "qubit " + std::to_string(q) + " of " + g.to_string() +
                " outside [0, " + std::to_string(circuit.num_qubits()) + ")",
            gi, stage);
      } else if (!seen.insert(q).second) {
        add(report, Code::duplicate_qubit,
            "qubit " + std::to_string(q) + " listed twice in " + g.to_string(),
            gi, stage);
      }
    }
    // Arity per kind.
    const auto [want_qubits, want_params] = kind_arity(g.kind());
    if (want_qubits >= 0) {
      if (g.num_qubits() != want_qubits ||
          static_cast<int>(g.params().size()) != want_params) {
        add(report, Code::bad_arity,
            gate_kind_name(g.kind()) + " has " +
                std::to_string(g.num_qubits()) + " qubits / " +
                std::to_string(g.params().size()) + " params, expected " +
                std::to_string(want_qubits) + " / " +
                std::to_string(want_params),
            gi, stage);
      }
    } else {
      // Unitary: matrix square 2^targets. target_matrix() returns the
      // stored custom matrix; a shape break here means the gate was
      // assembled outside the factory checks.
      const Matrix m = g.target_matrix();
      const int want = 1 << g.num_targets();
      if (m.rows() != want || m.cols() != want) {
        add(report, Code::bad_matrix_shape,
            "unitary matrix is " + std::to_string(m.rows()) + "x" +
                std::to_string(m.cols()) + " but the gate has " +
                std::to_string(g.num_targets()) + " targets (want " +
                std::to_string(want) + "x" + std::to_string(want) + ")",
            gi, stage);
      } else if (level >= VerifyLevel::paranoid &&
                 !m.is_unitary(tol.unitarity)) {
        add(report, Code::nonunitary_matrix,
            "explicit matrix deviates from unitarity beyond " +
                std::to_string(tol.unitarity),
            gi, stage);
      }
    }
    // Engine-slot discipline: any "$k" must be a pure slot reference.
    for (const Param& p : g.params()) {
      bool has_slot_symbol = false;
      for (const auto& [sym, coeff] : p.terms()) {
        (void)coeff;
        if (slot_id_of(sym) >= 0) has_slot_symbol = true;
      }
      if (!has_slot_symbol) continue;
      const int id = p.slot_index();
      if (id < 0) {
        slot_form_ok = false;
        add(report, Code::dangling_slot,
            "parameter " + p.to_string() +
                " mixes an engine slot symbol into a non-slot expression",
            gi, stage);
      } else {
        slots_seen.insert(id);
      }
    }
  }
  // Canonical circuits: slots dense [0, count).
  if (require_dense_slots && slot_form_ok && !slots_seen.empty()) {
    const int max_slot = *slots_seen.rbegin();
    if (*slots_seen.begin() != 0 ||
        max_slot + 1 != static_cast<int>(slots_seen.size())) {
      std::ostringstream os;
      os << "slot symbols are not dense: " << slots_seen.size()
         << " distinct slots but the highest is $" << max_slot;
      add(report, Code::dangling_slot, os.str(), -1, stage);
    }
  }
}

/// True when `partition` is a permutation of [0, n) with the shape's
/// sizes; appends diagnostics otherwise.
void check_partition(const staging::QubitPartition& partition, int num_qubits,
                     const staging::MachineShape& shape, VerifyReport& report,
                     int stage) {
  const auto sizes_ok =
      static_cast<int>(partition.local.size()) == shape.num_local &&
      static_cast<int>(partition.regional.size()) == shape.num_regional &&
      static_cast<int>(partition.global.size()) == shape.num_global;
  if (!sizes_ok) {
    std::ostringstream os;
    os << "partition sizes L/R/G = " << partition.local.size() << "/"
       << partition.regional.size() << "/" << partition.global.size()
       << ", shape wants " << shape.num_local << "/" << shape.num_regional
       << "/" << shape.num_global;
    add(report, Code::partition_not_permutation, os.str(), -1, stage);
  }
  std::vector<int> count(static_cast<std::size_t>(std::max(num_qubits, 1)), 0);
  bool in_range = true;
  auto tally = [&](const std::vector<Qubit>& qs) {
    for (Qubit q : qs) {
      if (q < 0 || q >= num_qubits) {
        in_range = false;
        add(report, Code::partition_not_permutation,
            "partition names qubit " + std::to_string(q) + " outside [0, " +
                std::to_string(num_qubits) + ")",
            -1, stage);
      } else {
        ++count[static_cast<std::size_t>(q)];
      }
    }
  };
  tally(partition.local);
  tally(partition.regional);
  tally(partition.global);
  if (in_range && sizes_ok) {
    for (int q = 0; q < num_qubits; ++q) {
      if (count[static_cast<std::size_t>(q)] != 1) {
        add(report, Code::partition_not_permutation,
            "qubit " + std::to_string(q) + " appears " +
                std::to_string(count[static_cast<std::size_t>(q)]) +
                " times across local/regional/global",
            -1, stage);
      }
    }
  }
}

/// Stage locality: every non-insular qubit of every gate local.
void check_locality(const Circuit& gates_of, const std::vector<int>& indices,
                    const staging::QubitPartition& partition,
                    VerifyReport& report, int stage) {
  const std::unordered_set<Qubit> local(partition.local.begin(),
                                        partition.local.end());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const Gate& g = gates_of.gate(indices[i]);
    for (Qubit q : g.non_insular_qubits()) {
      if (local.count(q) == 0) {
        add(report, Code::stage_locality,
            "non-insular qubit " + std::to_string(q) + " of " + g.to_string() +
                " is not local in its stage",
            indices[i], stage);
      }
    }
  }
}

void check_kraus(const std::vector<Matrix>& ops, int num_qubits,
                 const Tolerances& tol, bool check_cptp, VerifyReport& report,
                 const std::string& what) {
  if (num_qubits < 1 || ops.empty()) {
    add(report, Code::kraus_shape,
        what + ": empty Kraus set or non-positive arity");
    return;
  }
  const int dim = 1 << num_qubits;
  bool shapes_ok = true;
  for (std::size_t k = 0; k < ops.size(); ++k) {
    if (ops[k].rows() != dim || ops[k].cols() != dim) {
      shapes_ok = false;
      add(report, Code::kraus_shape,
          what + ": operator " + std::to_string(k) + " is " +
              std::to_string(ops[k].rows()) + "x" +
              std::to_string(ops[k].cols()) + ", want " + std::to_string(dim) +
              "x" + std::to_string(dim));
    }
  }
  if (!shapes_ok || !check_cptp) return;
  Matrix sum(dim, dim);
  for (const Matrix& k : ops) {
    const Matrix kk = k.dagger() * k;
    for (int r = 0; r < dim; ++r)
      for (int c = 0; c < dim; ++c) sum(r, c) += kk(r, c);
  }
  const double dev = Matrix::max_abs_diff(sum, Matrix::identity(dim));
  if (dev > tol.cptp) {
    std::ostringstream os;
    os << what << ": sum K^dagger K deviates from I by " << dev
       << " (tolerance " << tol.cptp << ")";
    add(report, Code::non_cptp, os.str());
  }
}

}  // namespace

VerifyReport verify_circuit(const Circuit& circuit, VerifyLevel level,
                            const Tolerances& tol) {
  VerifyReport report;
  report.subject = "circuit '" + circuit.name() + "'";
  if (level == VerifyLevel::off) return report;
  check_circuit_core(circuit, level, tol, /*require_dense_slots=*/true,
                     report);
  return report;
}

VerifyReport verify_staged(const Circuit& circuit,
                           const staging::StagedCircuit& staged,
                           const staging::MachineShape& shape) {
  VerifyReport report;
  report.subject = "staging of '" + circuit.name() + "'";
  if (shape.total() != circuit.num_qubits()) {
    add(report, Code::partition_not_permutation,
        "machine shape totals " + std::to_string(shape.total()) +
            " qubits, circuit has " + std::to_string(circuit.num_qubits()));
    return report;
  }
  // Coverage: each gate in exactly one stage.
  std::vector<int> stage_of(static_cast<std::size_t>(circuit.num_gates()), -1);
  for (std::size_t k = 0; k < staged.stages.size(); ++k) {
    const int si = static_cast<int>(k);
    for (int gi : staged.stages[k].gate_indices) {
      if (gi < 0 || gi >= circuit.num_gates()) {
        add(report, Code::gate_unstaged,
            "stage lists gate index " + std::to_string(gi) + " outside [0, " +
                std::to_string(circuit.num_gates()) + ")",
            gi, si);
        continue;
      }
      if (stage_of[static_cast<std::size_t>(gi)] >= 0) {
        add(report, Code::gate_double_staged,
            "gate already assigned to stage " +
                std::to_string(stage_of[static_cast<std::size_t>(gi)]),
            gi, si);
      } else {
        stage_of[static_cast<std::size_t>(gi)] = si;
      }
    }
  }
  for (int gi = 0; gi < circuit.num_gates(); ++gi) {
    if (stage_of[static_cast<std::size_t>(gi)] < 0) {
      add(report, Code::gate_unstaged, "gate assigned to no stage", gi);
    }
  }
  // Order: down-closed stage prefixes along every dependency edge.
  for (const auto& [a, b] : circuit.dependency_edges()) {
    const int sa = stage_of[static_cast<std::size_t>(a)];
    const int sb = stage_of[static_cast<std::size_t>(b)];
    if (sa >= 0 && sb >= 0 && sa > sb) {
      add(report, Code::stage_order,
          "gate " + std::to_string(a) + " (stage " + std::to_string(sa) +
              ") must precede gate " + std::to_string(b) + " (stage " +
              std::to_string(sb) + ")",
          b, sb);
    }
  }
  // Partitions and locality per stage.
  for (std::size_t k = 0; k < staged.stages.size(); ++k) {
    const int si = static_cast<int>(k);
    check_partition(staged.stages[k].partition, circuit.num_qubits(), shape,
                    report, si);
    check_locality(circuit, staged.stages[k].gate_indices,
                   staged.stages[k].partition, report, si);
  }
  return report;
}

VerifyReport verify_plan(const exec::ExecutionPlan& plan,
                         const staging::MachineShape& shape,
                         const Circuit* original, VerifyLevel level,
                         const Tolerances& tol) {
  VerifyReport report;
  report.subject = "execution plan (" + std::to_string(plan.stages.size()) +
                   " stages)";
  if (level == VerifyLevel::off) return report;
  std::vector<int> covered;
  if (original != nullptr)
    covered.assign(static_cast<std::size_t>(original->num_gates()), 0);
  for (std::size_t k = 0; k < plan.stages.size(); ++k) {
    const int si = static_cast<int>(k);
    const exec::PlannedStage& ps = plan.stages[k];
    const Circuit& sub = ps.subcircuit;
    if (sub.num_qubits() != shape.total()) {
      add(report, Code::stage_subcircuit_mismatch,
          "stage subcircuit spans " + std::to_string(sub.num_qubits()) +
              " qubits, shape totals " + std::to_string(shape.total()),
          -1, si);
    }
    if (sub.num_gates() != static_cast<int>(ps.original_indices.size())) {
      add(report, Code::stage_subcircuit_mismatch,
          "subcircuit holds " + std::to_string(sub.num_gates()) +
              " gates but original_indices lists " +
              std::to_string(ps.original_indices.size()),
          -1, si);
    }
    check_partition(ps.partition, sub.num_qubits(), shape, report, si);
    // Locality under the stage's own partition.
    std::vector<int> all(static_cast<std::size_t>(sub.num_gates()));
    for (int i = 0; i < sub.num_gates(); ++i) all[static_cast<std::size_t>(i)] = i;
    check_locality(sub, all, ps.partition, report, si);
    // Subcircuit gate sanity (slot subsets are legal per stage).
    check_circuit_core(sub, level, tol, /*require_dense_slots=*/false, report,
                       si);
    // Cross-checks against the original circuit.
    if (original != nullptr) {
      for (std::size_t i = 0; i < ps.original_indices.size(); ++i) {
        const int oi = ps.original_indices[i];
        if (oi < 0 || oi >= original->num_gates()) {
          add(report, Code::stage_subcircuit_mismatch,
              "original gate index " + std::to_string(oi) + " outside [0, " +
                  std::to_string(original->num_gates()) + ")",
              static_cast<int>(i), si);
          continue;
        }
        ++covered[static_cast<std::size_t>(oi)];
        if (static_cast<int>(i) < sub.num_gates()) {
          const Gate& got = sub.gate(static_cast<int>(i));
          const Gate& want = original->gate(oi);
          if (got.kind() != want.kind() || got.qubits() != want.qubits() ||
              got.params() != want.params()) {
            add(report, Code::stage_subcircuit_mismatch,
                "subcircuit gate " + got.to_string() +
                    " does not match original gate " + want.to_string(),
                static_cast<int>(i), si);
          }
        }
      }
    }
    // Kernel coverage of the subcircuit.
    std::vector<int> in_kernel(static_cast<std::size_t>(sub.num_gates()), 0);
    for (std::size_t ki = 0; ki < ps.kernels.kernels.size(); ++ki) {
      const kernelize::Kernel& kern = ps.kernels.kernels[ki];
      std::set<Qubit> union_qubits;
      for (int gi : kern.gate_indices) {
        if (gi < 0 || gi >= sub.num_gates()) {
          add(report, Code::kernel_coverage,
              "kernel lists gate index " + std::to_string(gi) +
                  " outside [0, " + std::to_string(sub.num_gates()) + ")",
              gi, si, static_cast<int>(ki));
          continue;
        }
        ++in_kernel[static_cast<std::size_t>(gi)];
        for (Qubit q : sub.gate(gi).qubits()) union_qubits.insert(q);
      }
      const std::set<Qubit> declared(kern.qubits.begin(), kern.qubits.end());
      if (declared != union_qubits) {
        add(report, Code::kernel_qubits,
            "kernel declares " + std::to_string(declared.size()) +
                " qubits but its gates touch " +
                std::to_string(union_qubits.size()),
            -1, si, static_cast<int>(ki));
      }
    }
    for (int gi = 0; gi < sub.num_gates(); ++gi) {
      if (in_kernel[static_cast<std::size_t>(gi)] != 1) {
        add(report, Code::kernel_coverage,
            "gate covered by " +
                std::to_string(in_kernel[static_cast<std::size_t>(gi)]) +
                " kernels (want exactly 1)",
            gi, si);
      }
    }
  }
  if (original != nullptr) {
    for (int gi = 0; gi < original->num_gates(); ++gi) {
      if (covered[static_cast<std::size_t>(gi)] != 1) {
        add(report, Code::stage_subcircuit_mismatch,
            "original gate staged " +
                std::to_string(covered[static_cast<std::size_t>(gi)]) +
                " times across the plan (want exactly 1)",
            gi);
      }
    }
  }
  return report;
}

VerifyReport verify_compiled(const CompiledCircuit& compiled) {
  VerifyReport report;
  report.subject = "compiled circuit";
  if (!compiled.valid()) {
    add(report, Code::slot_table_mismatch,
        "handle is invalid (default-constructed or plan missing)");
    return report;
  }
  report.subject = "compiled circuit '" + compiled.circuit().name() + "'";
  const auto& slots = compiled.param_slots();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].index != static_cast<int>(i)) {
      add(report, Code::slot_table_mismatch,
          "slot table entry " + std::to_string(i) + " carries index " +
              std::to_string(slots[i].index));
    }
  }
  // Every "$k" the plan references must have a table entry.
  const int num_slots = static_cast<int>(slots.size());
  for (std::size_t k = 0; k < compiled.plan()->stages.size(); ++k) {
    const Circuit& sub = compiled.plan()->stages[k].subcircuit;
    for (int gi = 0; gi < sub.num_gates(); ++gi) {
      for (const Param& p : sub.gate(gi).params()) {
        const int id = p.slot_index();
        if (p.is_symbolic() && id < 0) {
          add(report, Code::slot_table_mismatch,
              "plan parameter " + p.to_string() +
                  " is not a pure slot reference",
              gi, static_cast<int>(k));
        } else if (id >= num_slots) {
          add(report, Code::slot_table_mismatch,
              "plan references slot $" + std::to_string(id) +
                  " but the table holds " + std::to_string(num_slots) +
                  " slots",
              gi, static_cast<int>(k));
        }
      }
    }
  }
  // Slot expressions draw only on the handle's exposed symbols.
  const std::unordered_set<std::string> exposed(compiled.symbols().begin(),
                                                compiled.symbols().end());
  for (const auto& slot : slots) {
    for (const std::string& sym : slot.expr.symbols()) {
      if (exposed.count(sym) == 0) {
        add(report, Code::symbol_unbound,
            "slot $" + std::to_string(slot.index) + " expression " +
                slot.expr.to_string() + " uses symbol '" + sym +
                "' the handle does not expose",
            slot.gate);
      }
    }
  }
  return report;
}

VerifyReport verify_stage_program(const exec::StageProgram& program,
                                  int num_local, int num_shard_bits) {
  VerifyReport report;
  report.subject = "stage program";
  const Index shard_size = Index{1} << num_local;
  for (std::size_t ki = 0; ki < program.kernels.size(); ++ki) {
    const int kid = static_cast<int>(ki);
    const exec::KernelProgram& kp = *program.kernels[ki];
    // Pattern bits: sorted, unique, within the shard-index width.
    for (std::size_t i = 0; i < kp.pattern_bits.size(); ++i) {
      const int b = kp.pattern_bits[i];
      if (b < 0 || b >= num_shard_bits) {
        add(report, Code::pattern_bits_invalid,
            "pattern bit " + std::to_string(b) + " outside [0, " +
                std::to_string(num_shard_bits) + ")",
            -1, -1, kid);
      }
      if (i > 0 && kp.pattern_bits[i - 1] >= b) {
        add(report, Code::pattern_bits_invalid,
            "pattern bits not strictly ascending", -1, -1, kid);
      }
    }
    // Variant table: exactly 2^j entries for j pattern bits.
    const std::size_t want =
        std::size_t{1} << std::min<std::size_t>(kp.pattern_bits.size(), 63);
    if (kp.variants.size() != want) {
      add(report, Code::variant_count,
          std::to_string(kp.variants.size()) + " variants for " +
              std::to_string(kp.pattern_bits.size()) +
              " pattern bits (want " + std::to_string(want) + ")",
          -1, -1, kid);
    }
    // Shm gather/scatter tables: bijections into the shard bounds.
    for (const exec::KernelVariant& v : kp.variants) {
      if (v.op != exec::KernelVariant::Op::Shm) continue;
      const ShmProgram& shm = v.shm;
      const std::size_t batch = std::size_t{1} << shm.active.size();
      if (shm.offset.size() != batch) {
        add(report, Code::gather_not_bijective,
            "offset table holds " + std::to_string(shm.offset.size()) +
                " entries for " + std::to_string(shm.active.size()) +
                " active bits (want " + std::to_string(batch) + ")",
            -1, -1, kid);
        continue;
      }
      std::unordered_set<Index> seen;
      for (Index off : shm.offset) {
        if (off >= shard_size) {
          add(report, Code::gather_not_bijective,
              "gather offset " + std::to_string(off) +
                  " exceeds the shard bound " + std::to_string(shard_size),
              -1, -1, kid);
        } else if (!seen.insert(off).second) {
          add(report, Code::gather_not_bijective,
              "gather offset " + std::to_string(off) +
                  " repeats (table is not injective)",
              -1, -1, kid);
        }
      }
    }
  }
  return report;
}

VerifyReport verify_kraus_ops(const std::vector<Matrix>& ops, int num_qubits,
                              const Tolerances& tol) {
  VerifyReport report;
  report.subject = "Kraus set";
  check_kraus(ops, num_qubits, tol, /*check_cptp=*/true, report, "Kraus set");
  return report;
}

VerifyReport verify_readout(const noise::ReadoutError& readout, int qubit) {
  VerifyReport report;
  report.subject = "readout confusion";
  const auto bad = [](double p) { return !(p >= 0.0 && p <= 1.0); };
  if (bad(readout.p01) || bad(readout.p10)) {
    std::ostringstream os;
    os << "qubit " << qubit << ": confusion probabilities (p01=" << readout.p01
       << ", p10=" << readout.p10 << ") must lie in [0, 1]";
    add(report, Code::readout_not_stochastic, os.str());
  }
  return report;
}

VerifyReport verify_noise_model(const noise::NoiseModel& model, int num_qubits,
                                VerifyLevel level, const Tolerances& tol) {
  VerifyReport report;
  report.subject = "noise model";
  if (level == VerifyLevel::off) return report;
  for (const noise::KrausChannel* ch : model.channels()) {
    check_kraus(ch->kraus_ops(), ch->num_qubits(), tol,
                /*check_cptp=*/level >= VerifyLevel::paranoid, report,
                "channel '" + ch->name() + "'");
  }
  for (int q = 0; q < num_qubits; ++q)
    report.merge(verify_readout(model.readout_for(q), q));
  report.subject = "noise model";
  return report;
}

void check(const VerifyReport& report, ErrorCode code) {
  if (report.ok()) return;
  throw Error(report.to_string(), code);
}

}  // namespace atlas::verify
