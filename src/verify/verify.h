#pragma once

/// \file verify.h
/// An MLIR-verifier-style invariant checker for every hand-off contract
/// in the compile pipeline and the serving data plane. Each checker
/// walks one artifact — circuit, staged circuit, execution plan,
/// compiled handle, stage program, noise model — and returns a
/// VerifyReport listing *every* violated invariant as a structured
/// VerifyDiagnostic (code + location), instead of throwing on the
/// first like the legacy validate_* helpers.
///
/// The checkers trust nothing about provenance: artifacts assembled by
/// hand, deserialized from a cache, or corrupted by a buggy pass are
/// all first-class inputs. That is the point — the pipeline's phase
/// contracts (slot-canonical parameters, stage qubit-locality, kernel
/// insularity, gather-table bijectivity) were previously enforced only
/// where a downstream crash happened to notice.
///
/// Invariant catalog: docs/VERIFY.md. Wiring: CompilePipeline runs the
/// phase-boundary checkers at VerifyLevel::boundaries (the Debug
/// default); `paranoid` adds the numeric checks (unitarity, CPTP).
/// atlas-lint drives the same checkers over QASM files from the CLI.

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "ir/circuit.h"
#include "ir/matrix.h"
#include "verify/diagnostic.h"

namespace atlas {
class CompiledCircuit;
namespace exec {
struct ExecutionPlan;
struct StageProgram;
}  // namespace exec
namespace noise {
class NoiseModel;
struct ReadoutError;
}  // namespace noise
namespace staging {
struct StagedCircuit;
struct MachineShape;
struct QubitPartition;
}  // namespace staging
}  // namespace atlas

namespace atlas::verify {

/// Numeric tolerances for the paranoid-level checks.
struct Tolerances {
  double unitarity = 1e-8;  ///< max |U U† - I| entry
  double cptp = 1e-8;       ///< max |sum K†K - I| entry
};

/// Circuit invariants: qubit ids in [0, num_qubits), no duplicate
/// qubits within a gate, per-kind qubit/parameter arity, Unitary
/// matrix shapes, and — when "$k" engine-slot symbols appear — slot
/// denseness (the canonical-form contract: slots are exactly
/// {$0..$k-1}, each a pure slot reference). At `paranoid`, every
/// constant explicit matrix is additionally checked for unitarity
/// within `tol.unitarity` (named kinds are unitary by construction and
/// are not re-derived).
VerifyReport verify_circuit(const Circuit& circuit,
                            VerifyLevel level = VerifyLevel::boundaries,
                            const Tolerances& tol = {});

/// Staging invariants (the stage phase's hand-off contract): every
/// gate in exactly one stage, stages dependency-ordered (each stage's
/// gate set down-closed), every gate's non-insular qubits local in its
/// stage, and every stage partition a permutation of [0, n) with the
/// shape's local/regional/global sizes.
VerifyReport verify_staged(const Circuit& circuit,
                           const staging::StagedCircuit& staged,
                           const staging::MachineShape& shape);

/// Plan invariants (the kernelize phase's hand-off contract), per
/// stage: partition validity, subcircuit consistent with
/// original_indices, kernels covering the subcircuit exactly once with
/// truthful qubit unions, and stage locality under the stage's own
/// partition. When `original` is non-null, additionally checks that
/// original_indices tile [0, original->num_gates()) exactly once
/// across stages and each subcircuit gate matches the original gate it
/// claims to be.
VerifyReport verify_plan(const exec::ExecutionPlan& plan,
                         const staging::MachineShape& shape,
                         const Circuit* original = nullptr,
                         VerifyLevel level = VerifyLevel::boundaries,
                         const Tolerances& tol = {});

/// Compiled-handle invariants (the program phase's hand-off contract):
/// a valid plan, a slot table whose indices are dense [0, count), plan
/// gates referencing only slots the table defines (no dangling "$k"),
/// and slot expressions built only from symbols the handle exposes.
VerifyReport verify_compiled(const CompiledCircuit& compiled);

/// Stage-program invariants (bind-time output): per kernel, variant
/// count == 2^|pattern_bits| with pattern bits sorted, unique, and
/// within the shard-index width `num_shard_bits`; per shm variant, the
/// gather/scatter offset table is a bijection into the shard bounds
/// (2^num_local amplitudes): distinct offsets, each below the bound,
/// table size 2^|active|.
VerifyReport verify_stage_program(const exec::StageProgram& program,
                                  int num_local, int num_shard_bits);

/// Kraus-set invariants: every operator square 2^num_qubits, plus the
/// completeness sum K†K = I within `tol.cptp` — the CPTP contract the
/// channel factories promise but hand-assembled or deserialized sets
/// may violate. (verify_noise_model defers the numeric CPTP check to
/// `paranoid`; calling this directly always runs it.)
VerifyReport verify_kraus_ops(const std::vector<Matrix>& ops, int num_qubits,
                              const Tolerances& tol = {});

/// Readout-confusion invariants for one qubit's ReadoutError: both
/// conditional error probabilities in [0, 1] (rows of the 2x2
/// confusion matrix stochastic).
VerifyReport verify_readout(const noise::ReadoutError& readout, int qubit);

/// Noise-model invariants over a model attached to an `num_qubits`
/// circuit: every reachable channel's Kraus set (CPTP at `paranoid`),
/// and every qubit's readout confusion stochastic.
VerifyReport verify_noise_model(const noise::NoiseModel& model,
                                int num_qubits,
                                VerifyLevel level = VerifyLevel::paranoid,
                                const Tolerances& tol = {});

/// Throws atlas::Error carrying `report.to_string()` (every diagnostic,
/// one per line) when the report is not ok; no-op otherwise. `code`
/// classifies the failure for layers that translate exceptions —
/// internal for pipeline-invariant breaks, invalid_argument at API
/// boundaries checking caller-supplied artifacts (the serve QASM
/// ingest).
void check(const VerifyReport& report,
           ErrorCode code = ErrorCode::internal);

}  // namespace atlas::verify
