#pragma once

/// \file diagnostic.h
/// The verification layer's vocabulary: diagnostic codes, the
/// structured VerifyDiagnostic record, the VerifyReport container, and
/// the VerifyLevel knob. Deliberately header-light (no IR includes) so
/// core/pipeline.h can embed diagnostics in CompileDiagnostics without
/// pulling the checkers in.
///
/// The checkers themselves live in verify/verify.h; this split mirrors
/// common/error.h vs the code that throws.

#include <string>
#include <vector>

namespace atlas::verify {

/// How much invariant checking the engine performs (SessionConfig::
/// verify_level, CompilePipeline::Config::verify).
///
///  * `off`        — no verifier runs; only the always-on legacy
///                   validators (validate_staging/validate_kernelization)
///                   guard the pipeline.
///  * `boundaries` — structural invariants are checked at every compile
///                   phase hand-off (optimize, canonicalize, stage,
///                   kernelize, program) and at the serve data plane's
///                   QASM ingest. Cheap: O(gates + stages * qubits),
///                   no numerics. The Debug-build default.
///  * `paranoid`   — boundaries plus numeric checks: unitarity of every
///                   constant gate matrix within tolerance, CPTP /
///                   stochasticity of noise models before noisy runs.
enum class VerifyLevel { off = 0, boundaries = 1, paranoid = 2 };

/// Stable lowercase name ("off", "boundaries", "paranoid").
const char* verify_level_name(VerifyLevel level);

/// What went wrong, as a machine-readable class. Codes are append-only:
/// tests and tooling switch on them, so renumbering is a break.
enum class Code {
  // --- Circuit invariants (verify_circuit) ---
  qubit_out_of_range = 0,   ///< gate qubit id ≥ circuit num_qubits
  duplicate_qubit = 1,      ///< one gate lists a qubit twice
  bad_arity = 2,            ///< qubit/param count impossible for the kind
  bad_matrix_shape = 3,     ///< Unitary matrix size != 2^targets square
  nonunitary_matrix = 4,    ///< ||U U† - I|| over tolerance (paranoid)
  dangling_slot = 5,        ///< "$k" slot symbols not dense [0, count)
  // --- Staging invariants (verify_staged) ---
  gate_unstaged = 6,        ///< a gate appears in no stage
  gate_double_staged = 7,   ///< a gate appears in two stages
  stage_order = 8,          ///< dependency runs backwards across stages
  stage_locality = 9,       ///< non-insular qubit not local in its stage
  partition_not_permutation = 10,  ///< partition is not a permutation of
                                   ///< [0, n) with the shape's sizes
  // --- Plan invariants (verify_plan) ---
  stage_subcircuit_mismatch = 11,  ///< subcircuit vs original_indices
  kernel_coverage = 12,     ///< kernels drop or double-cover a gate
  kernel_qubits = 13,       ///< kernel qubit union != member gates' union
  // --- Compiled-handle invariants (verify_compiled) ---
  slot_table_mismatch = 14, ///< slot table vs plan slot symbols disagree
  symbol_unbound = 15,      ///< slot expression uses a symbol the handle
                            ///< does not expose
  // --- Stage-program invariants (verify_stage_program) ---
  gather_not_bijective = 16,  ///< shm gather/scatter table repeats or
                              ///< exceeds shard bounds
  variant_count = 17,         ///< kernel variants != 2^|pattern_bits|
  pattern_bits_invalid = 18,  ///< pattern bit ids unsorted or negative
  // --- Noise invariants (verify_noise_model / verify_kraus_ops) ---
  non_cptp = 19,            ///< sum K†K deviates from I over tolerance
  kraus_shape = 20,         ///< Kraus operator not square 2^arity
  readout_not_stochastic = 21,  ///< confusion row outside [0, 1]
};

/// Stable lowercase name of `code` ("qubit_out_of_range", ...).
const char* code_name(Code code);

/// One violated invariant, located as precisely as the checked object
/// allows. `gate`, `stage`, and `kernel` are -1 when not applicable.
struct VerifyDiagnostic {
  Code code = Code::qubit_out_of_range;
  std::string message;
  int gate = -1;    ///< gate index (circuit- or subcircuit-relative)
  int stage = -1;   ///< stage index within the staged circuit / plan
  int kernel = -1;  ///< kernel index within its stage

  /// "stage 2 kernel 0: gather_not_bijective: ..." rendering.
  std::string to_string() const;
};

/// The outcome of one verifier call: every violated invariant found
/// (the checkers keep going after the first hit so a report names all
/// corruption, not the lexicographically first).
struct VerifyReport {
  std::vector<VerifyDiagnostic> diags;
  /// What was checked, for report rendering ("circuit 'qft_8'", ...).
  std::string subject;

  bool ok() const { return diags.empty(); }
  /// Merges `other` into this report (pipeline phases accumulate).
  void merge(const VerifyReport& other);
  /// Multi-line rendering: one diagnostic per line, subject first.
  std::string to_string() const;
};

}  // namespace atlas::verify
