#pragma once

/// \file trace.h
/// Lightweight execution tracing with Chrome trace-event JSON export.
///
/// A TraceSpan is an RAII scope: construction captures a monotonic
/// (steady_clock) start timestamp, destruction (or an explicit end())
/// records a complete event into a bounded per-thread ring buffer.
/// Callers that already hold their own monotonic timestamps — the
/// pipeline's phase Timers, say — can record directly via
/// Tracer::record(name, start_ns, dur_ns).
///
/// Off by default: when no trace is active, a span costs one relaxed
/// atomic load and a predictable branch — nothing is allocated,
/// timestamped, or locked (the ≤1% bench_exec_hotpath gate). Enable
/// by setting SessionConfig::trace_path; the Session starts the
/// process-wide tracer on construction and the JSON file is written
/// when the last tracing Session is destroyed. Load the file at
/// https://ui.perfetto.dev or chrome://tracing.
///
/// Timestamps are steady_clock nanoseconds — never wall-clock — so
/// traces are immune to clock steps and need no date handling; the
/// exporter rebases them to the earliest event.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace atlas::obs {

/// Nanoseconds on the process-wide monotonic clock (steady_clock).
std::int64_t monotonic_ns() noexcept;

class Tracer {
 public:
  /// Events a single thread retains; older events are overwritten
  /// (bounded memory no matter how long a trace runs).
  static constexpr std::size_t kRingCapacity = 16384;

  static Tracer& instance();

  /// Begins (or joins) a trace. Calls nest: the path of the first
  /// start() wins and the file is written by the matching last stop().
  void start(const std::string& path);
  /// Ends one start(). The last stop() writes the JSON file, clears
  /// the buffers, and disables the fast path again.
  void stop();

  /// The disabled-path gate: one relaxed load.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one complete span with caller-supplied monotonic
  /// timestamps. `name` is copied (truncated to the event's fixed
  /// buffer); `arg` >= 0 is exported as args.index. No-op when
  /// disabled.
  void record(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
              std::int64_t arg = -1) noexcept;

  /// Writes buffered events as Chrome trace-event JSON. Returns false
  /// (and leaves no partial file promises) on I/O failure. Buffers are
  /// not cleared — stop() owns lifecycle.
  bool write_json(const std::string& path) const;

  /// Buffered events across all threads (test hook).
  std::size_t event_count() const;
  /// Drops all buffered events (test hook).
  void discard();

 private:
  struct Event {
    char name[48];
    std::int64_t start_ns = 0;
    std::int64_t dur_ns = 0;
    std::int64_t arg = -1;
  };

  /// One thread's bounded buffer. The owning thread appends under
  /// ring mu_ (uncontended except during export), the exporter reads
  /// under the same lock — data-race free under TSan by construction.
  struct Ring {
    Mutex mu;
    std::vector<Event> events ATLAS_GUARDED_BY(mu);  // ring storage
    std::size_t next ATLAS_GUARDED_BY(mu) = 0;       // overwrite cursor
    std::uint64_t total ATLAS_GUARDED_BY(mu) = 0;    // lifetime appends
  };

  Tracer() = default;
  Ring& local_ring();

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  int active_ ATLAS_GUARDED_BY(mu_) = 0;
  std::string path_ ATLAS_GUARDED_BY(mu_);
  /// Rings live for the process lifetime (threads may exit before
  /// export; their events must not).
  std::vector<std::unique_ptr<Ring>> rings_ ATLAS_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) when tracing is
/// enabled, does nothing measurable when it is not.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = -1) noexcept {
    if (!Tracer::instance().enabled()) return;
    name_ = name;
    arg_ = arg;
    start_ns_ = monotonic_ns();
  }
  ~TraceSpan() { end(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now (idempotent); the destructor becomes a no-op.
  void end() noexcept {
    if (name_ == nullptr) return;
    Tracer::instance().record(name_, start_ns_, monotonic_ns() - start_ns_,
                              arg_);
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::int64_t arg_ = -1;
};

}  // namespace atlas::obs
