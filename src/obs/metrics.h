#pragma once

/// \file metrics.h
/// Process-wide metrics: named counters, gauges, and fixed-bucket
/// latency histograms, registered once and updated lock-free from any
/// thread.
///
/// Registration (name -> cell) takes a mutex and should happen once
/// per site — cache the returned reference in a function-local static:
///
///     static obs::Counter& hits = obs::counter(names::kPlanCacheHits);
///     hits.inc();
///
/// Update paths are wait-free relaxed atomics: counters shard across
/// cache-line-padded cells indexed by thread, histograms do one
/// fetch_add on a power-of-two bucket. Reads (value(), snapshot())
/// are racy-but-monotone, which is the right trade for telemetry.
///
/// snapshot() returns a MetricsReport sorted by name — the stable
/// order the wire protocol, servectl, and tests rely on. Metric names
/// come from obs/names.h (append-only catalog).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace atlas::obs {

/// Monotonically increasing event count. Thread-sharded: concurrent
/// writers from different threads land on different cache lines, so a
/// hot counter never becomes a coherence hotspot.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) noexcept;
  void inc() noexcept { add(1); }
  /// Sum over all shards. Monotone but not a linearizable point-in-time
  /// read — fine for telemetry.
  std::uint64_t value() const noexcept;

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Instantaneous signed value (queue depth, resident bytes, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram with power-of-two bucket bounds:
/// bucket 0 holds [0,1), bucket b holds [2^(b-1), 2^b). 64 buckets
/// cover the full useful range of a microsecond (or any nonnegative)
/// measurement; observe() is one relaxed fetch_add. Quantiles are read
/// out by linear interpolation inside the covering bucket — the exact
/// same semantics the benches use, so bench p50/p99 and runtime
/// p50/p99 are comparable numbers.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept;

  /// Point-in-time copy of the bucket state; all derived read-outs
  /// (count/sum/quantile) come from one snapshot so they are mutually
  /// consistent.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Interpolated quantile, q in [0,1]. Returns 0 when empty.
    double quantile(double q) const noexcept;
  };
  Snapshot snapshot() const noexcept;

  std::uint64_t count() const noexcept { return snapshot().count; }
  double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double quantile(double q) const noexcept { return snapshot().quantile(q); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0};
};

enum class MetricKind : std::uint8_t { counter = 0, gauge = 1, histogram = 2 };

const char* metric_kind_name(MetricKind kind);

/// One metric's read-out in a report. Which fields are meaningful
/// depends on `kind`: counters fill `count`, gauges fill `gauge`,
/// histograms fill count/sum/p50/p90/p99.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::counter;
  std::uint64_t count = 0;
  std::int64_t gauge = 0;
  double sum = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// A stable snapshot of every registered metric, sorted by name.
struct MetricsReport {
  std::vector<MetricValue> entries;
};

/// Human-readable multi-line rendering (the `--metrics-dump` format).
std::string to_text(const MetricsReport& report);

/// The process-wide registry. get-or-create by name; re-requesting an
/// existing name with the same kind returns the same cell (stable for
/// the process lifetime), with a different kind it throws.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsReport snapshot() const;

 private:
  MetricsRegistry() = default;

  struct Entry {
    MetricKind kind = MetricKind::counter;
    // Heap cells: references handed out stay valid across rehashes
    // for the life of the process.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ ATLAS_GUARDED_BY(mu_);
};

/// Shorthands for MetricsRegistry::instance().xxx(name).
inline Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return MetricsRegistry::instance().histogram(name);
}

}  // namespace atlas::obs
