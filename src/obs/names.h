#pragma once

/// \file names.h
/// The canonical catalog of metric and span names. Names are part of
/// the operator-facing contract (dashboards, `atlas-servectl metrics`,
/// trace viewers key on them), so — like verify::Code — the catalog is
/// **append-only**: never rename or delete an entry, add a new one and
/// deprecate the old in docs/OBSERVABILITY.md.
///
/// Every registration site must name its metric through a constant in
/// this file; `atlas-lint --metrics-catalog src/obs/names.h` (run in
/// CI) fails the build if two constants carry the same string, which
/// is how a copy-paste "registered twice under one name" slips in.
///
/// Conventions: `<layer>.<noun>[.<event>]`, `_us` suffix for
/// microsecond histograms, counters are monotone, gauges are
/// instantaneous. Per-tenant serve metrics append the tenant name to
/// kServeTenantLatencyPrefix.

namespace atlas::obs::names {

// --- compile pipeline (core/pipeline.cpp) -----------------------------
inline constexpr char kCompileCount[] = "compile.count";
inline constexpr char kCompileTotalUs[] = "compile.total_us";
inline constexpr char kCompileOptimizeUs[] = "compile.phase_us.optimize";
inline constexpr char kCompileCanonicalizeUs[] =
    "compile.phase_us.canonicalize";
inline constexpr char kCompileStageUs[] = "compile.phase_us.stage";
inline constexpr char kCompileKernelizeUs[] = "compile.phase_us.kernelize";
inline constexpr char kCompileProgramUs[] = "compile.phase_us.program";

// --- per-session structural plan cache (core/session.cpp) -------------
inline constexpr char kPlanCacheHits[] = "core.plan_cache.hits";
inline constexpr char kPlanCacheMisses[] = "core.plan_cache.misses";
inline constexpr char kPlanCacheEvictions[] = "core.plan_cache.evictions";

// --- execution (exec/executor.cpp, exec/stage_program.cpp) ------------
inline constexpr char kExecRuns[] = "exec.runs";
inline constexpr char kExecStageUs[] = "exec.stage_us";
inline constexpr char kSkeletonCacheHits[] = "exec.skeleton_cache.hits";
inline constexpr char kSkeletonCacheMisses[] = "exec.skeleton_cache.misses";

// --- device backend (device/buffer.cpp, device/command_queue.cpp,
// --- exec/device_executor.cpp) ----------------------------------------
inline constexpr char kDeviceQueueDepth[] = "device.queue.depth";
inline constexpr char kDeviceUploadBytes[] = "device.upload_bytes";
inline constexpr char kDeviceDownloadBytes[] = "device.download_bytes";
inline constexpr char kDeviceConstUploads[] = "device.const_uploads";
inline constexpr char kDeviceLaunches[] = "device.launches";
inline constexpr char kDeviceBatches[] = "device.batches";
inline constexpr char kDeviceBatchSize[] = "device.launch_batch_size";

// --- noise engine (noise/engine.cpp) ----------------------------------
inline constexpr char kNoiseTrajectories[] = "noise.trajectories";
inline constexpr char kNoiseBatches[] = "noise.batches";

// --- serving daemon (serve/) ------------------------------------------
inline constexpr char kServeRequests[] = "serve.requests";
inline constexpr char kServeAdmissionRefused[] = "serve.admission.refused";
inline constexpr char kServeBytesIn[] = "serve.bytes_in";
inline constexpr char kServeBytesOut[] = "serve.bytes_out";
inline constexpr char kServeQueueWaitUs[] = "serve.queue_wait_us";
/// Per-tenant request latency histograms: prefix + tenant name.
inline constexpr char kServeTenantLatencyPrefix[] =
    "serve.request_latency_us.";

// --- trace span names (not registry metrics; catalogued here so the
// --- duplicate-name lint covers them too) -----------------------------
inline constexpr char kSpanCompileOptimize[] = "compile.optimize";
inline constexpr char kSpanCompileCanonicalize[] = "compile.canonicalize";
inline constexpr char kSpanCompileStage[] = "compile.stage";
inline constexpr char kSpanCompileKernelize[] = "compile.kernelize";
inline constexpr char kSpanCompileProgram[] = "compile.program";
inline constexpr char kSpanExecStage[] = "exec.stage";
inline constexpr char kSpanExecBind[] = "exec.bind";
inline constexpr char kSpanExecShard[] = "exec.shard";
inline constexpr char kSpanNoiseBatch[] = "noise.batch";
inline constexpr char kSpanDeviceStage[] = "device.stage";
inline constexpr char kSpanDeviceBatch[] = "device.batch";
inline constexpr char kSpanDeviceH2D[] = "device.h2d";
inline constexpr char kSpanDeviceD2H[] = "device.d2h";
inline constexpr char kSpanDeviceLaunch[] = "device.launch";

}  // namespace atlas::obs::names
