#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace atlas::obs {

namespace {

/// Stable small per-thread shard slot: threads get sequential ids on
/// first touch, folded into the shard range. Sequential assignment
/// spreads a thread pool evenly instead of trusting the hash of
/// std::thread::id.
std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void atomic_add(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// Bucket bounds: bucket 0 = [0,1), bucket b = [2^(b-1), 2^b).
double bucket_lower(std::size_t b) noexcept {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double bucket_upper(std::size_t b) noexcept {
  return std::ldexp(1.0, static_cast<int>(b));
}

std::size_t bucket_index(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // negatives and NaN clamp to bucket 0
  // For v >= 1, the integer part's bit width is exactly the bucket
  // whose range [2^(b-1), 2^b) contains v.
  const double capped =
      value >= 9.2e18 ? 9.2e18 : value;  // keep the cast in u64 range
  const auto iv = static_cast<std::uint64_t>(capped);
  const std::size_t b = static_cast<std::size_t>(std::bit_width(iv));
  return b >= Histogram::kBuckets ? Histogram::kBuckets - 1 : b;
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  cells_[shard_slot() % kShards].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Histogram::observe(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation (1-based, clamped into [1, count]).
  const double rank_raw = q * static_cast<double>(count);
  const double rank = rank_raw < 1.0 ? 1.0 : rank_raw;
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const auto in_bucket = static_cast<double>(buckets[b]);
    if (static_cast<double>(before) + in_bucket >= rank) {
      const double frac = (rank - static_cast<double>(before)) / in_bucket;
      return bucket_lower(b) + (bucket_upper(b) - bucket_lower(b)) * frac;
    }
    before += buckets[b];
  }
  return bucket_upper(kBuckets - 1);
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::histogram: return "histogram";
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    ATLAS_CHECK_ARG(e.gauge == nullptr && e.histogram == nullptr,
                    "metric '" << name << "' already registered as "
                               << metric_kind_name(e.kind));
    e.kind = MetricKind::counter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    ATLAS_CHECK_ARG(e.counter == nullptr && e.histogram == nullptr,
                    "metric '" << name << "' already registered as "
                               << metric_kind_name(e.kind));
    e.kind = MetricKind::gauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    ATLAS_CHECK_ARG(e.counter == nullptr && e.gauge == nullptr,
                    "metric '" << name << "' already registered as "
                               << metric_kind_name(e.kind));
    e.kind = MetricKind::histogram;
    e.histogram = std::make_unique<Histogram>();
  }
  return *e.histogram;
}

MetricsReport MetricsRegistry::snapshot() const {
  MetricsReport report;
  MutexLock lock(mu_);
  report.entries.reserve(entries_.size());
  // std::map iterates in key order, so the report is name-sorted by
  // construction — the stability the wire format and tests rely on.
  for (const auto& [name, e] : entries_) {
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::counter:
        v.count = e.counter->value();
        break;
      case MetricKind::gauge:
        v.gauge = e.gauge->value();
        break;
      case MetricKind::histogram: {
        const Histogram::Snapshot s = e.histogram->snapshot();
        v.count = s.count;
        v.sum = s.sum;
        v.p50 = s.quantile(0.50);
        v.p90 = s.quantile(0.90);
        v.p99 = s.quantile(0.99);
        break;
      }
    }
    report.entries.push_back(std::move(v));
  }
  return report;
}

std::string to_text(const MetricsReport& report) {
  std::ostringstream out;
  for (const MetricValue& v : report.entries) {
    out << v.name << " ";
    switch (v.kind) {
      case MetricKind::counter:
        out << v.count;
        break;
      case MetricKind::gauge:
        out << v.gauge;
        break;
      case MetricKind::histogram:
        out << "count=" << v.count << " sum=" << v.sum << " p50=" << v.p50
            << " p90=" << v.p90 << " p99=" << v.p99;
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace atlas::obs
