#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace atlas::obs {

std::int64_t monotonic_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never dtor'd: rings outlive threads
  return *tracer;
}

void Tracer::start(const std::string& path) {
  MutexLock lock(mu_);
  if (active_ == 0) path_ = path;
  ++active_;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  std::string path;
  {
    MutexLock lock(mu_);
    if (active_ == 0) return;
    if (--active_ > 0) return;
    // Last stop: disable the fast path first so concurrent spans stop
    // appending, then export and clear.
    enabled_.store(false, std::memory_order_relaxed);
    path.swap(path_);
  }
  if (!path.empty() && !write_json(path)) {
    std::fprintf(stderr, "atlas: failed to write trace file '%s'\n",
                 path.c_str());
  }
  discard();
}

Tracer::Ring& Tracer::local_ring() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    {
      MutexLock lock(owned->mu);
      owned->events.reserve(kRingCapacity);
    }
    ring = owned.get();
    MutexLock lock(mu_);
    rings_.push_back(std::move(owned));
  }
  return *ring;
}

void Tracer::record(const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns, std::int64_t arg) noexcept {
  if (!enabled()) return;
  Ring& ring = local_ring();
  Event ev;
  std::strncpy(ev.name, name, sizeof(ev.name) - 1);
  ev.name[sizeof(ev.name) - 1] = '\0';
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.arg = arg;
  MutexLock lock(ring.mu);
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(ev);
  } else {
    ring.events[ring.next] = ev;  // bounded: overwrite the oldest
    ring.next = (ring.next + 1) % kRingCapacity;
  }
  ++ring.total;
}

namespace {

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }  // control chars in a span name: drop, they are never legitimate
  }
  out += '"';
}

}  // namespace

bool Tracer::write_json(const std::string& path) const {
  struct Flat {
    Event ev;
    std::size_t tid;
  };
  std::vector<Flat> all;
  {
    MutexLock lock(mu_);
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
      Ring& ring = *rings_[tid];
      MutexLock ring_lock(ring.mu);
      for (const Event& ev : ring.events) all.push_back({ev, tid});
    }
  }
  std::sort(all.begin(), all.end(), [](const Flat& a, const Flat& b) {
    return a.ev.start_ns < b.ev.start_ns;
  });
  // Rebase to the earliest event so ts values are small and the trace
  // opens centered in Perfetto regardless of the steady_clock origin.
  const std::int64_t base = all.empty() ? 0 : all.front().ev.start_ns;

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  std::string body = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Event& ev = all[i].ev;
    if (i != 0) body += ',';
    body += "{\"name\":";
    append_json_string(body, ev.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"cat\":\"atlas\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%zu",
                  static_cast<double>(ev.start_ns - base) / 1e3,
                  static_cast<double>(ev.dur_ns) / 1e3, all[i].tid);
    body += buf;
    if (ev.arg >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"index\":%lld}",
                    static_cast<long long>(ev.arg));
      body += buf;
    }
    body += '}';
  }
  body += "]}\n";
  out << body;
  out.flush();
  return static_cast<bool>(out);
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  MutexLock lock(mu_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    n += ring->events.size();
  }
  return n;
}

void Tracer::discard() {
  MutexLock lock(mu_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
  }
}

}  // namespace atlas::obs
