#include "core/session.h"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/mutex.h"
#include "common/fnv.h"
#include "exec/queries.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "staging/stage.h"

namespace atlas {
namespace {

staging::MachineShape shape_of(const SessionConfig& config) {
  staging::MachineShape shape;
  shape.num_local = config.cluster.local_qubits;
  shape.num_regional = config.cluster.regional_qubits;
  shape.num_global = config.cluster.global_qubits;
  shape.cost_factor = config.stage_cost_factor;
  return shape;
}

/// Hash of everything about the machine shape a plan depends on. Mixed
/// into every plan-cache key so two sessions with different shapes can
/// never alias, even if their caches were ever shared or a
/// CompiledCircuit handle migrated between sessions.
std::uint64_t shape_salt_of(const SessionConfig& config) {
  Fnv f(0xcbf29ce484222325ull);
  f.mix(static_cast<std::uint64_t>(config.cluster.local_qubits));
  f.mix(static_cast<std::uint64_t>(config.cluster.regional_qubits));
  f.mix(static_cast<std::uint64_t>(config.cluster.global_qubits));
  f.mix(static_cast<std::uint64_t>(config.cluster.gpus_per_node));
  f.mix_double(config.stage_cost_factor);
  return f.value();
}

}  // namespace

// --- SimulationResult query facade ---------------------------------------

const ParamBinding& SimulationResult::params() const {
  // Built on demand: sweeps and trajectory batches produce thousands of
  // results whose string-keyed binding nobody reads — the dense
  // slot_values record is the source of truth.
  if (!params_cache_) {
    auto built = std::make_shared<ParamBinding>();
    for (std::size_t k = 0; k < slot_values.size(); ++k)
      built->set(slot_symbol_name(static_cast<int>(k)), slot_values[k]);
    params_cache_ = std::move(built);
  }
  return *params_cache_;
}

Amp SimulationResult::amplitude(Index index) const {
  return exec::amplitude(state, index);
}

double SimulationResult::probability(Index index) const {
  return exec::probability(state, index);
}

double SimulationResult::norm_sq() const { return exec::norm_sq(state); }

std::vector<double> SimulationResult::marginal(
    const std::vector<Qubit>& qubits) const {
  return exec::marginal_distribution(state, qubits);
}

double SimulationResult::expectation_z(Qubit q) const {
  return exec::expectation_z(state, q);
}

std::vector<Index> SimulationResult::sample(int shots, Rng& rng) const {
  return exec::sample(state, shots, rng);
}

std::vector<Index> SimulationResult::sample(int shots) const {
  Rng rng = Rng::for_stream(seed, sample_counter_++);
  return exec::sample(state, shots, rng);
}

void validate_session_config(const SessionConfig& config) {
  const auto& cc = config.cluster;
  ATLAS_CHECK_ARG(cc.local_qubits >= 3 && cc.local_qubits < 40,
              "cluster.local_qubits must be in [3, 40), got "
                  << cc.local_qubits);
  ATLAS_CHECK_ARG(cc.regional_qubits >= 0, "cluster.regional_qubits is negative: "
                                           << cc.regional_qubits);
  ATLAS_CHECK_ARG(cc.global_qubits >= 0,
              "cluster.global_qubits is negative: " << cc.global_qubits);
  ATLAS_CHECK_ARG(cc.regional_qubits + cc.global_qubits < 24,
              "cluster has 2^" << (cc.regional_qubits + cc.global_qubits)
                               << " shards; that cannot be simulated");
  ATLAS_CHECK_ARG(cc.gpus_per_node >= 1,
              "cluster.gpus_per_node must be >= 1, got " << cc.gpus_per_node);
  ATLAS_CHECK_ARG(cc.gpus_per_node <= cc.shards_per_node(),
              "cluster.gpus_per_node ("
                  << cc.gpus_per_node << ") exceeds 2^regional_qubits ("
                  << cc.shards_per_node()
                  << "); shrink gpus_per_node or grow regional_qubits");
  ATLAS_CHECK_ARG(cc.num_threads >= 0,
              "cluster.num_threads is negative: " << cc.num_threads);
  ATLAS_CHECK_ARG(config.dispatch_threads >= 0,
              "dispatch_threads is negative: " << config.dispatch_threads);
  ATLAS_CHECK_ARG(config.stage_cost_factor > 0,
              "stage_cost_factor must be positive, got "
                  << config.stage_cost_factor);
  ATLAS_CHECK_ARG(config.staging.ilp.max_stages >= 1,
              "staging.ilp.max_stages must be >= 1, got "
                  << config.staging.ilp.max_stages);
  ATLAS_CHECK_ARG(config.staging.ilp.node_budget >= 0,
              "staging.ilp.node_budget is negative");
  ATLAS_CHECK_ARG(config.staging.bnb.max_stages >= 1,
              "staging.bnb.max_stages must be >= 1, got "
                  << config.staging.bnb.max_stages);
  ATLAS_CHECK_ARG(config.staging.bnb.beam_width >= 1,
              "staging.bnb.beam_width must be >= 1, got "
                  << config.staging.bnb.beam_width);
  ATLAS_CHECK_ARG(config.staging.bnb.max_solutions >= 1,
              "staging.bnb.max_solutions must be >= 1, got "
                  << config.staging.bnb.max_solutions);
  ATLAS_CHECK_ARG(config.staging.bnb.node_budget >= 0,
              "staging.bnb.node_budget is negative");
  ATLAS_CHECK_ARG(config.kernelize.prune_threshold >= 1,
              "kernelize.prune_threshold must be >= 1, got "
                  << config.kernelize.prune_threshold);
  ATLAS_CHECK_ARG(!config.cost_model.fusion_cost.empty() &&
                  config.cost_model.max_fusion_qubits + 1 ==
                      static_cast<int>(config.cost_model.fusion_cost.size()),
              "cost_model.fusion_cost does not match max_fusion_qubits");
  ATLAS_CHECK_ARG(config.opt_level >= 0 && config.opt_level <= 2,
              "opt_level must be in [0, 2], got " << config.opt_level);
}

/// LRU plan cache. One map holds two disjoint key spaces (distinct FNV
/// bases): value-sensitive fingerprint() keys from plan(), which map to
/// concrete plans, and structural_fingerprint() keys from compile()/
/// simulate(), which map to canonicalized slot plans. Every key is
/// additionally salted with the session's cluster shape so entries can
/// never alias across shapes (plans embed shape-dependent partitions).
/// num_qubits/num_gates ride along as cheap collision guards for the
/// 64-bit hash.
class Session::PlanCache {
 public:
  explicit PlanCache(std::size_t capacity,
                     std::shared_ptr<PlanCacheListener> listener)
      : capacity_(capacity), listener_(std::move(listener)) {}

  std::shared_ptr<const exec::ExecutionPlan> find(std::uint64_t key,
                                                  const Circuit& circuit) {
    std::shared_ptr<const exec::ExecutionPlan> found;
    {
      MutexLock lock(mu_);
      if (capacity_ == 0) {
        // Disabled caches still count misses: the counter is the
        // replanning canary benches and tests read.
        ++misses_;
      } else {
        auto it = index_.find(key);
        if (it == index_.end() ||
            it->second->num_qubits != circuit.num_qubits() ||
            it->second->num_gates != circuit.num_gates()) {
          ++misses_;
        } else {
          entries_.splice(entries_.begin(), entries_, it->second);  // to MRU
          ++hits_;
          found = it->second->plan;
        }
      }
    }
    // Telemetry outside the cache lock: the process-wide registry
    // counters and the optional per-session listener mirror the
    // hit/miss accounting above exactly.
    static obs::Counter& hits = obs::counter(obs::names::kPlanCacheHits);
    static obs::Counter& misses = obs::counter(obs::names::kPlanCacheMisses);
    if (found != nullptr) {
      hits.inc();
      if (listener_) listener_->on_hit();
    } else {
      misses.inc();
      if (listener_) listener_->on_miss();
    }
    return found;
  }

  void insert(std::uint64_t key, const Circuit& circuit,
              std::shared_ptr<const exec::ExecutionPlan> plan) {
    if (capacity_ == 0) return;
    // Size the plan outside the lock; it walks every stage.
    const std::size_t bytes = exec::approx_resident_bytes(*plan);
    bool inserted = false;
    bool evicted = false;
    std::size_t evicted_bytes = 0;
    {
      MutexLock lock(mu_);
      if (index_.count(key)) return;  // a concurrent planner won the race
      entries_.push_front(Entry{key, circuit.num_qubits(),
                                circuit.num_gates(), bytes, std::move(plan)});
      index_[key] = entries_.begin();
      resident_bytes_ += bytes;
      inserted = true;
      if (entries_.size() > capacity_) {
        evicted_bytes = entries_.back().bytes;
        resident_bytes_ -= evicted_bytes;
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++evictions_;
        evicted = true;
      }
    }
    if (inserted && listener_) listener_->on_insert(bytes);
    if (evicted) {
      static obs::Counter& evictions =
          obs::counter(obs::names::kPlanCacheEvictions);
      evictions.inc();
      if (listener_) listener_->on_evict(evicted_bytes);
    }
  }

  PlanCacheStats stats() const {
    MutexLock lock(mu_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.size = entries_.size();
    s.capacity = capacity_;
    s.resident_bytes = resident_bytes_;
    return s;
  }

  void clear() {
    std::size_t entries = 0;
    std::size_t bytes = 0;
    {
      MutexLock lock(mu_);
      entries = entries_.size();
      bytes = resident_bytes_;
      entries_.clear();
      index_.clear();
      resident_bytes_ = 0;
    }
    if (listener_ && entries > 0) listener_->on_clear(entries, bytes);
  }

 private:
  struct Entry {
    std::uint64_t key;
    int num_qubits;
    int num_gates;
    std::size_t bytes;
    std::shared_ptr<const exec::ExecutionPlan> plan;
  };

  const std::size_t capacity_;
  const std::shared_ptr<PlanCacheListener> listener_;
  mutable Mutex mu_;
  std::list<Entry> entries_ ATLAS_GUARDED_BY(mu_);  // MRU at front
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      ATLAS_GUARDED_BY(mu_);
  std::uint64_t hits_ ATLAS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ ATLAS_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ ATLAS_GUARDED_BY(mu_) = 0;
  std::size_t resident_bytes_ ATLAS_GUARDED_BY(mu_) = 0;
};

Session::Session(SessionConfig config)
    : config_((validate_session_config(config), std::move(config))),
      cluster_(config_.cluster),
      shape_salt_(shape_salt_of(config_)),
      stager_(staging::stager_registry().create(config_.stager)),
      kernelizer_(kernelize::kernelizer_registry().create(config_.kernelizer)),
      executor_(exec::executor_registry().create(config_.executor)),
      pipeline_([this] {
        CompilePipeline::Config pc;
        pc.shape = shape_of(config_);
        pc.staging = config_.staging;
        pc.cost_model = config_.cost_model;
        pc.kernelize = config_.kernelize;
        pc.opt.level = config_.opt_level;
        pc.verify = config_.verify_level;
        pc.dump = config_.compile_dump;
        return std::make_unique<CompilePipeline>(std::move(pc), stager_,
                                                 kernelizer_);
      }()),
      plan_cache_(std::make_unique<PlanCache>(config_.plan_cache_capacity,
                                              config_.plan_cache_listener)),
      dispatch_pool_(std::make_unique<ThreadPool>(
          config_.dispatch_threads > 0
              ? static_cast<std::size_t>(config_.dispatch_threads)
              : std::min<std::size_t>(
                    4, std::max<std::size_t>(
                           1, std::thread::hardware_concurrency())))) {
  executor_->validate(config_.cluster);
  if (!config_.trace_path.empty()) {
    obs::Tracer::instance().start(config_.trace_path);
    trace_started_ = true;
  }
}

Session::~Session() {
  // Drain in-flight submit() jobs before any member goes away; the
  // pool's destructor finishes queued tasks, and everything they touch
  // (cluster, cache, backends) outlives it by member order.
  dispatch_pool_.reset();
  // After the drain every span this session could emit has been
  // recorded; the matching stop() writes the trace file when this was
  // the last tracing session.
  if (trace_started_) obs::Tracer::instance().stop();
}

exec::ExecutionPlan Session::build_plan(const Circuit& circuit) const {
  // The back half of the compile pipeline (stage -> kernelize ->
  // assemble); the value-keyed plan() path and the noise engine's
  // per-trajectory plans skip the optimize/canonicalize phases.
  return pipeline_->build_plan(circuit, nullptr);
}

std::shared_ptr<const exec::ExecutionPlan> Session::plan_memoized(
    std::uint64_t key, const Circuit& circuit) const {
  if (auto cached = plan_cache_->find(key, circuit)) return cached;
  auto built =
      std::make_shared<const exec::ExecutionPlan>(build_plan(circuit));
  plan_cache_->insert(key, circuit, built);
  return built;
}

std::shared_ptr<const exec::ExecutionPlan> Session::plan(
    const Circuit& circuit) const {
  return plan_memoized(fnv_mix(shape_salt_, circuit.fingerprint()), circuit);
}

std::uint64_t Session::plan_key(const Circuit& circuit) const {
  return pipeline_->plan_key(circuit, shape_salt_);
}

CompiledCircuit Session::compile(const Circuit& circuit) const {
  return pipeline_->compile(
      circuit, shape_salt_,
      [this](std::uint64_t key, const Circuit& canonical,
             CompileDiagnostics& diag) {
        if (auto cached = plan_cache_->find(key, canonical)) {
          diag.plan_cached = true;
          return cached;
        }
        auto built = std::make_shared<const exec::ExecutionPlan>(
            pipeline_->build_plan(canonical, &diag));
        plan_cache_->insert(key, canonical, built);
        return built;
      });
}

void Session::check_compiled(const CompiledCircuit& compiled,
                             const char* what) const {
  ATLAS_CHECK_ARG(compiled.valid(), "" << what
                                    << "() on an invalid CompiledCircuit; "
                                       "use Session::compile()");
  ATLAS_CHECK_ARG(compiled.shape_salt_ == shape_salt_,
              "CompiledCircuit was compiled for a different cluster shape; "
              "recompile it with this session");
}

void Session::dispatch_each(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  // Tasks reference caller-owned state through `fn`, so no exception
  // may unwind this frame while a task is still queued or running: a
  // future is recorded only once its task is queued, and every
  // recorded future is joined before anything propagates.
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  try {
    for (std::size_t i = 0; i < count; ++i) {
      auto task = std::make_shared<std::packaged_task<void()>>(
          [&fn, i] { fn(i); });
      std::future<void> future = task->get_future();
      dispatch_pool_->submit([task] { (*task)(); });
      futures.push_back(std::move(future));
    }
  } catch (...) {
    for (auto& f : futures) f.wait();
    throw;
  }
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();  // rethrows the first task failure
}

std::vector<SimulationResult> Session::fan_out(
    std::size_t count,
    const std::function<SimulationResult(std::size_t)>& run_point) const {
  std::vector<SimulationResult> results(count);
  dispatch_each(count,
                [&](std::size_t i) { results[i] = run_point(i); });
  return results;
}

SimulationResult Session::run(const CompiledCircuit& compiled,
                              const ParamBinding& binding) const {
  check_compiled(compiled, "run");
  return run_with_slots(compiled, compiled.slot_values(binding));
}

SimulationResult Session::run(const CompiledCircuit& compiled,
                              const std::vector<double>& symbol_values) const {
  check_compiled(compiled, "run");
  return run_with_slots(compiled, compiled.slot_values_from(symbol_values));
}

SimulationResult Session::run_with_slots(const CompiledCircuit& compiled,
                                         SlotValues values) const {
  SimulationResult result;
  result.plan = compiled.plan();
  // The dense slot table is both the execution input and the
  // reproducibility record; the string-keyed view is built lazily by
  // params().
  result.slot_values = std::move(values);
  // Sampling seed keyed by the run's identity (not a call counter):
  // equal runs sample equal shots, and sweep results are independent
  // of dispatch-pool completion order.
  {
    Fnv f;
    f.mix(compiled.plan_key());
    for (double v : result.slot_values) f.mix_double(v);
    result.seed = rng_stream_seed(config_.seed, f.value());
  }
  result.state = executor_->initial_state(*result.plan, cluster_);
  ParamEnv env;
  env.slots = &result.slot_values;
  result.report =
      executor_->execute(*result.plan, cluster_, result.state, env);
  return result;
}

std::vector<SimulationResult> Session::run_batch_with_slots(
    const CompiledCircuit& compiled, std::vector<SlotValues> values) const {
  std::vector<SimulationResult> results(values.size());
  std::vector<exec::BatchPoint> points(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    SimulationResult& r = results[i];
    r.plan = compiled.plan();
    r.slot_values = std::move(values[i]);
    // Identical seed derivation to run_with_slots(): batching must not
    // change any sample stream.
    Fnv f;
    f.mix(compiled.plan_key());
    for (double v : r.slot_values) f.mix_double(v);
    r.seed = rng_stream_seed(config_.seed, f.value());
    r.state = executor_->initial_state(*r.plan, cluster_);
    points[i].state = &r.state;
    points[i].env.slots = &r.slot_values;
  }
  std::vector<exec::ExecutionReport> reports =
      executor_->execute_batch(*compiled.plan(), cluster_, points);
  ATLAS_CHECK(reports.size() == results.size(),
              "executor '" << executor_->name() << "' returned "
                           << reports.size() << " batch reports for "
                           << results.size() << " points");
  for (std::size_t i = 0; i < results.size(); ++i)
    results[i].report = std::move(reports[i]);
  return results;
}

std::future<SimulationResult> Session::submit(const CompiledCircuit& compiled,
                                              ParamBinding binding) const {
  auto task = std::make_shared<std::packaged_task<SimulationResult()>>(
      [this, compiled, binding = std::move(binding)] {
        return run(compiled, binding);
      });
  std::future<SimulationResult> future = task->get_future();
  dispatch_pool_->submit([task] { (*task)(); });
  return future;
}

std::vector<SimulationResult> Session::sweep(
    const CompiledCircuit& compiled, std::vector<ParamBinding> bindings) const {
  check_compiled(compiled, "sweep");
  // Fail fast with the offending point named, before any work is
  // dispatched — a bad binding mid-sweep would otherwise surface as an
  // unattributed exception after discarding every computed result.
  for (std::size_t i = 0; i < bindings.size(); ++i)
    for (const std::string& s : compiled.symbols())
      ATLAS_CHECK_ARG(bindings[i].contains(s), "sweep binding #"
                                               << i << " is missing symbol '"
                                               << s << "'");
  if (executor_->batched_launches(cluster_.config())) {
    std::vector<SlotValues> values;
    values.reserve(bindings.size());
    for (const ParamBinding& b : bindings)
      values.push_back(compiled.slot_values(b));
    return run_batch_with_slots(compiled, std::move(values));
  }
  return fan_out(bindings.size(),
                 [&](std::size_t i) { return run(compiled, bindings[i]); });
}

std::vector<SimulationResult> Session::sweep(
    const CompiledCircuit& compiled,
    const std::vector<std::vector<double>>& points) const {
  check_compiled(compiled, "sweep");
  const std::size_t want = compiled.symbols().size();
  for (std::size_t i = 0; i < points.size(); ++i)
    ATLAS_CHECK_ARG(points[i].size() == want,
                "sweep point #" << i << " has " << points[i].size()
                                << " values but the compiled circuit takes "
                                << want << " symbols");
  if (executor_->batched_launches(cluster_.config())) {
    std::vector<SlotValues> values;
    values.reserve(points.size());
    for (const std::vector<double>& p : points)
      values.push_back(compiled.slot_values_from(p));
    return run_batch_with_slots(compiled, std::move(values));
  }
  return fan_out(points.size(),
                 [&](std::size_t i) { return run(compiled, points[i]); });
}

exec::ExecutionReport Session::execute(const exec::ExecutionPlan& plan,
                                       exec::DistState& state) const {
  return executor_->execute(plan, cluster_, state);
}

exec::ExecutionReport Session::execute(const exec::ExecutionPlan& plan,
                                       exec::DistState& state,
                                       const ParamBinding& binding) const {
  return executor_->execute(plan, cluster_, state, &binding);
}

SimulationResult Session::simulate(const Circuit& circuit) const {
  if (circuit.is_parameterized()) {
    const auto symbols = circuit.symbols();
    throw Error("simulate() needs a fully bound circuit but '" +
                circuit.name() + "' has free symbols (" + symbols.front() +
                ", ...); use compile()/run() with a ParamBinding or "
                "Circuit::bind",
                ErrorCode::invalid_argument);
  }
  return run(compile(circuit), ParamBinding{});
}

std::future<SimulationResult> Session::submit(Circuit circuit) const {
  auto task = std::make_shared<std::packaged_task<SimulationResult()>>(
      [this, circuit = std::move(circuit)] { return simulate(circuit); });
  std::future<SimulationResult> future = task->get_future();
  dispatch_pool_->submit([task] { (*task)(); });
  return future;
}

std::vector<SimulationResult> Session::simulate_batch(
    std::vector<Circuit> circuits) const {
  std::vector<std::future<SimulationResult>> futures;
  futures.reserve(circuits.size());
  for (Circuit& c : circuits) futures.push_back(submit(std::move(c)));
  std::vector<SimulationResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

PlanCacheStats Session::plan_cache_stats() const {
  return plan_cache_->stats();
}

void Session::clear_plan_cache() { plan_cache_->clear(); }

}  // namespace atlas
