#pragma once

/// \file pipeline.h
/// The explicit multi-phase compile pipeline behind Session::compile():
///
///   optimize ──▶ canonicalize ──▶ stage ──▶ kernelize ──▶ program
///
/// * **optimize** — the opt/ pass pipeline (level from
///   SessionConfig::opt_level) rewrites the authored circuit exactly
///   (global phase included). It runs *before* slot canonicalization on
///   purpose: value-aware passes (constant run resynthesis, diagonal
///   folding) need the authored constants, and keying the plan cache on
///   the *post-optimization* structure lets equivalent authored
///   circuits — rz(a) rz(b) vs rz(a+b) — share one plan.
/// * **canonicalize** — every remaining rotation parameter (constant or
///   symbolic) becomes a dense slot symbol "$k"; the slot table maps
///   each slot back to the caller's affine expression.
/// * **stage / kernelize** — PARTITION on the canonical circuit,
///   memoized through the session's plan cache (these phases are
///   skipped entirely on a cache hit; diagnostics record that).
/// * **program** — slot-program compilation and handle assembly.
///
/// Each phase is timed into CompileDiagnostics (retrievable from the
/// returned CompiledCircuit) and reported to the optional dump hook,
/// which sees the circuit/staging/plan snapshot after the phase — the
/// debugging seam for "what did the optimizer do to my circuit".

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled.h"
#include "exec/executor.h"
#include "ir/circuit.h"
#include "kernelize/kernelizer.h"
#include "opt/pass_manager.h"
#include "staging/registry.h"
#include "verify/diagnostic.h"

namespace atlas {

struct CompilePhaseTiming {
  std::string phase;
  double seconds = 0;
  int gates_in = 0;
  int gates_out = 0;
};

struct CompileDiagnostics {
  /// One entry per executed phase, in order. stage/kernelize are
  /// absent when the plan cache already held the plan.
  std::vector<CompilePhaseTiming> phases;
  /// Per-pass optimizer accounting (empty pass list at opt_level 0).
  opt::OptReport opt;
  /// True when stage/kernelize were skipped via the plan cache.
  bool plan_cached = false;
  std::size_t num_stages = 0;
  double total_seconds = 0;
  /// The verify level the pipeline ran at, so tooling can tell a clean
  /// compile from an unchecked one.
  verify::VerifyLevel verify_level = verify::VerifyLevel::off;
  /// Structured verifier findings. Populated right before the pipeline
  /// throws on a broken phase hand-off; empty on success. build_plan()
  /// callers passing a CompileDiagnostics keep these across the throw.
  std::vector<verify::VerifyDiagnostic> verify;
};

/// Snapshot handed to the dump hook after each phase; only the
/// pointers relevant to that phase are non-null, and none outlive the
/// hook invocation.
struct CompileDump {
  std::string phase;
  const Circuit* circuit = nullptr;                // optimize, canonicalize
  const staging::StagedCircuit* staged = nullptr;  // stage
  const exec::ExecutionPlan* plan = nullptr;       // kernelize, program
};
using CompileDumpHook = std::function<void(const CompileDump&)>;

class CompilePipeline {
 public:
  struct Config {
    staging::MachineShape shape;
    staging::StagingOptions staging;
    kernelize::CostModel cost_model = kernelize::CostModel::default_model();
    kernelize::DpOptions kernelize;
    opt::OptOptions opt;
    /// Invariant checking at phase hand-offs (docs/VERIFY.md):
    /// `boundaries` runs the structural checkers after every phase,
    /// `paranoid` adds the numeric ones (unitarity). Cached plans were
    /// verified when built, so `boundaries` skips re-checking them on
    /// a cache hit; `paranoid` re-checks. Defaults to `boundaries` in
    /// Debug builds and `off` in Release.
    verify::VerifyLevel verify =
#ifndef NDEBUG
        verify::VerifyLevel::boundaries;
#else
        verify::VerifyLevel::off;
#endif
    /// Invoked after every phase when set; exceptions propagate.
    CompileDumpHook dump;
  };

  /// The plan-cache seam: compile() hands the post-optimization key and
  /// the canonical circuit to the resolver, which returns the cached
  /// plan or calls back into build_plan() and records the miss.
  using PlanResolver =
      std::function<std::shared_ptr<const exec::ExecutionPlan>(
          std::uint64_t key, const Circuit& canonical,
          CompileDiagnostics& diag)>;

  CompilePipeline(Config config,
                  std::shared_ptr<const staging::Stager> stager,
                  std::shared_ptr<const kernelize::Kernelizer> kernelizer);

  /// Runs every phase over `circuit` and assembles the immutable
  /// handle. Thread-safe and deterministic.
  CompiledCircuit compile(const Circuit& circuit, std::uint64_t shape_salt,
                          const PlanResolver& resolver) const;

  /// The key compile() will use for `circuit`: the structural
  /// fingerprint of the *post-optimization* circuit, salted with the
  /// cluster shape.
  std::uint64_t plan_key(const Circuit& circuit,
                         std::uint64_t shape_salt) const;

  /// The stage -> kernelize -> assemble back half, usable for any
  /// circuit (the value-keyed Session::plan() path and the noise
  /// engine's per-trajectory plans skip the front phases). `diag` may
  /// be null.
  exec::ExecutionPlan build_plan(const Circuit& circuit,
                                 CompileDiagnostics* diag) const;

  /// Just the optimize phase (introspection for tests and benches).
  Circuit optimize(const Circuit& circuit,
                   opt::OptReport* report = nullptr) const;

  const opt::PassManager& passes() const { return passes_; }

 private:
  void dump(CompileDump payload) const;

  Config config_;
  opt::PassManager passes_;
  opt::PassContext pass_ctx_;
  std::shared_ptr<const staging::Stager> stager_;
  std::shared_ptr<const kernelize::Kernelizer> kernelizer_;
};

}  // namespace atlas
