#include "core/compiled.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "core/pipeline.h"

namespace atlas {

const Circuit& CompiledCircuit::optimized_circuit() const {
  ATLAS_CHECK(optimized_ != nullptr,
              "invalid CompiledCircuit; use Session::compile()");
  return *optimized_;
}

const CompileDiagnostics& CompiledCircuit::diagnostics() const {
  ATLAS_CHECK(diagnostics_ != nullptr,
              "invalid CompiledCircuit; use Session::compile()");
  return *diagnostics_;
}

std::string slot_symbol_name(int index) {
  // Built by append (not "$" + ...) to dodge GCC 12's -Wrestrict false
  // positive on literal + rvalue-string concatenation.
  std::string name = "$";
  name += std::to_string(index);
  return name;
}

void CompiledCircuit::build_slot_programs() {
  std::unordered_map<std::string, int> index_of;
  index_of.reserve(symbols_.size());
  for (std::size_t i = 0; i < symbols_.size(); ++i)
    index_of.emplace(symbols_[i], static_cast<int>(i));
  slot_programs_.clear();
  slot_programs_.reserve(slots_.size());
  for (const Slot& s : slots_) {
    SlotProgram prog;
    prog.constant = s.expr.constant_term();
    prog.terms.reserve(s.expr.terms().size());
    for (const auto& [sym, coeff] : s.expr.terms()) {
      const auto it = index_of.find(sym);
      ATLAS_CHECK(it != index_of.end(),
                  "slot expression references unknown symbol '" << sym << "'");
      prog.terms.push_back(SlotTerm{it->second, coeff});
    }
    slot_programs_.push_back(std::move(prog));
  }
}

SlotValues CompiledCircuit::slot_values_from(
    const std::vector<double>& symbol_values) const {
  ATLAS_CHECK(valid(), "slot_values_from() on an invalid CompiledCircuit; "
                       "use Session::compile()");
  ATLAS_CHECK(symbol_values.size() == symbols_.size(),
              "expected " << symbols_.size() << " symbol values (one per "
                          << "entry of symbols()), got "
                          << symbol_values.size());
  SlotValues values(slot_programs_.size());
  for (std::size_t k = 0; k < slot_programs_.size(); ++k) {
    const SlotProgram& prog = slot_programs_[k];
    double v = prog.constant;
    for (const SlotTerm& t : prog.terms)
      v += t.coeff * symbol_values[static_cast<std::size_t>(t.sym)];
    values[k] = v;
  }
  return values;
}

SlotValues CompiledCircuit::slot_values(const ParamBinding& binding) const {
  ATLAS_CHECK(valid(), "slot_values() on an invalid CompiledCircuit; use "
                       "Session::compile()");
  std::vector<double> symbol_values;
  symbol_values.reserve(symbols_.size());
  for (const std::string& sym : symbols_)
    symbol_values.push_back(binding.at(sym));
  return slot_values_from(symbol_values);
}

}  // namespace atlas
