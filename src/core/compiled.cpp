#include "core/compiled.h"

#include <string>

#include "common/error.h"

namespace atlas {

std::string slot_symbol_name(int index) {
  // Built by append (not "$" + ...) to dodge GCC 12's -Wrestrict false
  // positive on literal + rvalue-string concatenation.
  std::string name = "$";
  name += std::to_string(index);
  return name;
}

ParamBinding CompiledCircuit::bind_slots(const ParamBinding& binding) const {
  ATLAS_CHECK(valid(), "bind_slots() on an invalid CompiledCircuit; use "
                       "Session::compile()");
  ParamBinding slots;
  for (const Slot& s : slots_)
    slots.set(slot_symbol_name(s.index), s.expr.evaluate(binding));
  return slots;
}

}  // namespace atlas
