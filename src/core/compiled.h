#pragma once

/// \file compiled.h
/// The compile-once / bind-many handle. Session::compile() canonicalizes
/// every rotation-family parameter of a circuit into a slot symbol
/// ("$0", "$1", ...) and stages + kernelizes the canonical circuit
/// exactly once; the resulting CompiledCircuit is an immutable handle
/// over that shared ExecutionPlan plus the slot table mapping each slot
/// back to the caller's parameter expression (a concrete value, a
/// symbol, or an affine combination). Session::run()/submit()/sweep()
/// evaluate the slot table against a ParamBinding and execute the plan
/// — staging and kernelization never repeat across bindings, which is
/// sound because plans depend only on gate structure (insularity and
/// diagonality are per-kind properties; paper Section III).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "exec/executor.h"
#include "ir/circuit.h"
#include "ir/param.h"

namespace atlas {

class Session;
class CompilePipeline;
struct CompileDiagnostics;

class CompiledCircuit {
 public:
  /// One canonicalized parameter: slot `index` (symbol "$index" in the
  /// plan's gates) holds the value of `expr` at bind time. `gate` and
  /// `param` locate the originating parameter in optimized_circuit()
  /// (== circuit() at opt_level 0; the optimizer may have merged
  /// several authored parameters into one affine `expr`).
  struct Slot {
    int index = 0;
    int gate = 0;
    int param = 0;
    Param expr;
  };

  CompiledCircuit() = default;

  /// False for a default-constructed handle.
  bool valid() const { return plan_ != nullptr; }

  /// The source circuit as handed to compile() (original parameters).
  /// Throws atlas::Error on an invalid (default-constructed) handle.
  const Circuit& circuit() const {
    ATLAS_CHECK(circuit_ != nullptr,
                "invalid CompiledCircuit; use Session::compile()");
    return *circuit_;
  }

  /// The post-optimization circuit the plan was built from — what the
  /// slot table's gate/param indices reference. Identical to circuit()
  /// when SessionConfig::opt_level is 0 or no pass fired. Throws
  /// atlas::Error on an invalid handle.
  const Circuit& optimized_circuit() const;

  /// Per-phase compile timings, optimizer pass accounting, and the
  /// plan-cache outcome of the compile() that built this handle.
  /// Throws atlas::Error on an invalid handle.
  const CompileDiagnostics& diagnostics() const;

  /// The shared, immutable execution plan (canonical slot symbols).
  const std::shared_ptr<const exec::ExecutionPlan>& plan() const {
    return plan_;
  }

  int num_qubits() const { return circuit().num_qubits(); }

  /// The user-facing free symbols a run() binding must supply,
  /// ascending. Empty for fully concrete circuits.
  const std::vector<std::string>& symbols() const { return symbols_; }
  bool is_parameterized() const { return !symbols_.empty(); }

  /// The parameter slot table, in slot order.
  const std::vector<Slot>& param_slots() const { return slots_; }

  /// The structural plan-cache key this handle was compiled under
  /// (structural fingerprint mixed with the cluster shape).
  std::uint64_t plan_key() const { return plan_key_; }

  /// Dense slot-value table for `binding`: index k holds the value of
  /// plan slot "$k". Exactly one string lookup per free symbol; every
  /// slot expression is then evaluated by a precompiled symbol-index
  /// program, and execution resolves plan parameters by array indexing
  /// — zero ParamBinding lookups past this call. Throws atlas::Error
  /// naming the first missing symbol.
  SlotValues slot_values(const ParamBinding& binding) const;

  /// As slot_values(), from values positionally aligned with symbols()
  /// — the zero-string-lookup sweep entry. Throws atlas::Error on a
  /// size mismatch.
  SlotValues slot_values_from(const std::vector<double>& symbol_values) const;

 private:
  friend class Session;
  friend class CompilePipeline;

  /// One slot expression lowered to symbol indices: constant +
  /// sum(coeff * symbol_values[sym]). Built once at compile() so
  /// binding a sweep point is pure arithmetic.
  struct SlotTerm {
    int sym = 0;
    double coeff = 0;
  };
  struct SlotProgram {
    double constant = 0;
    std::vector<SlotTerm> terms;
  };

  void build_slot_programs();

  std::shared_ptr<const Circuit> circuit_;
  std::shared_ptr<const Circuit> optimized_;
  std::shared_ptr<const CompileDiagnostics> diagnostics_;
  std::shared_ptr<const exec::ExecutionPlan> plan_;
  std::vector<std::string> symbols_;
  std::vector<Slot> slots_;
  std::vector<SlotProgram> slot_programs_;
  std::uint64_t plan_key_ = 0;
  std::uint64_t shape_salt_ = 0;  // guards cross-session handle misuse
};

/// The canonical name of parameter slot `index` ("$3"). The "$" prefix
/// is reserved for the engine: QASM identifiers cannot produce it (and
/// export refuses it), and even a hand-minted Param::symbol("$k") never
/// meets a plan slot — user expressions are evaluated by slot_values()
/// before the dense slot table reaches the execution layer.
std::string slot_symbol_name(int index);

}  // namespace atlas
