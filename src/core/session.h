#pragma once

/// \file session.h
/// The Atlas engine API: a long-lived Session owning the simulated
/// cluster, the backend engines (resolved by name from the pluggable
/// registries), an LRU plan cache, and an async dispatch pool.
///
///   atlas::SessionConfig cfg;
///   cfg.cluster.local_qubits = 20;
///   cfg.cluster.regional_qubits = 2;
///   cfg.cluster.global_qubits = 1;
///   cfg.cluster.gpus_per_node = 4;
///   cfg.stager = "bnb";                 // any registered staging engine
///   atlas::Session session(cfg);        // validates cfg, resolves backends
///
///   auto f1 = session.submit(atlas::circuits::qft(23));   // async
///   auto f2 = session.submit(atlas::circuits::ghz(23));
///   atlas::SimulationResult r1 = f1.get(), r2 = f2.get();
///
/// Plans are state-independent and reusable across runs (paper Section
/// III); the Session exploits that with an LRU cache keyed by the
/// circuit's structural fingerprint, so repeated workloads skip
/// PARTITION entirely. plan_cache_stats() exposes hit/miss counters.

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "device/cluster.h"
#include "exec/backend.h"
#include "ir/circuit.h"
#include "kernelize/kernelizer.h"
#include "staging/registry.h"

namespace atlas {

struct SimulatorConfig {
  device::ClusterConfig cluster;
  staging::StagingOptions staging;
  kernelize::CostModel cost_model = kernelize::CostModel::default_model();
  kernelize::DpOptions kernelize;
  /// Inter-node cost factor c of Eq. (2); the paper uses 3.
  double stage_cost_factor = 3.0;
  device::CommCostModel comm = device::CommCostModel::perlmutter_like();
};

/// Session construction knobs: everything the legacy SimulatorConfig
/// carried, plus backend selection by registry name and the plan-cache
/// and dispatch shapes.
struct SessionConfig : SimulatorConfig {
  SessionConfig() = default;
  SessionConfig(SimulatorConfig base) : SimulatorConfig(std::move(base)) {}

  /// Staging engine (staging::stager_registry() key).
  std::string stager = "auto";
  /// Kernelization engine (kernelize::kernelizer_registry() key).
  std::string kernelizer = "best";
  /// Execution backend (exec::executor_registry() key).
  std::string executor = "auto";
  /// Plans retained in the LRU cache; 0 disables caching.
  std::size_t plan_cache_capacity = 64;
  /// Worker threads dispatching submit()/simulate_batch() jobs
  /// (0 = min(hardware, 4)). Distinct from cluster.num_threads, which
  /// sizes the per-shard compute pool.
  int dispatch_threads = 0;
};

struct SimulationResult {
  /// The immutable plan this run executed — shared with the session's
  /// plan cache rather than deep-copied, so cache hits stay cheap.
  std::shared_ptr<const exec::ExecutionPlan> plan;
  exec::ExecutionReport report;
  exec::DistState state;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// A long-lived simulation engine. Thread-safe: plan(), simulate(),
/// submit(), and simulate_batch() may be called concurrently; results
/// are bit-identical to sequential execution because every job owns
/// its state and plans are immutable once built.
class Session {
 public:
  /// Validates `config` (throws atlas::Error naming the offending
  /// field) and resolves the three backends from their registries
  /// (throws atlas::Error listing registered names on an unknown one).
  explicit Session(SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionConfig& config() const { return config_; }
  const device::Cluster& cluster() const { return cluster_; }

  const staging::Stager& stager() const { return *stager_; }
  const kernelize::Kernelizer& kernelizer() const { return *kernelizer_; }
  const exec::ExecutorBackend& executor() const { return *executor_; }

  /// PARTITION with memoization: returns the cached plan when an
  /// identical circuit (by structural fingerprint) was planned before,
  /// else stages + kernelizes and caches the result. The returned plan
  /// is immutable and safe to share across threads.
  std::shared_ptr<const exec::ExecutionPlan> plan(const Circuit& circuit) const;

  /// EXECUTE: runs a plan over an existing distributed state via the
  /// configured execution backend.
  exec::ExecutionReport execute(const exec::ExecutionPlan& plan,
                                exec::DistState& state) const;

  /// SIMULATE: plan (cached) + execute from |0...0>.
  SimulationResult simulate(const Circuit& circuit) const;

  /// Asynchronous SIMULATE on the session's dispatch pool. Exceptions
  /// surface from Future::get(). Jobs submitted concurrently share the
  /// plan cache and the cluster's compute pool.
  std::future<SimulationResult> submit(Circuit circuit) const;

  /// Simulates a batch concurrently; results are positionally aligned
  /// with `circuits`.
  std::vector<SimulationResult> simulate_batch(
      std::vector<Circuit> circuits) const;

  PlanCacheStats plan_cache_stats() const;
  void clear_plan_cache() const;

 private:
  class PlanCache;

  exec::ExecutionPlan build_plan(const Circuit& circuit) const;

  SessionConfig config_;
  device::Cluster cluster_;
  std::shared_ptr<const staging::Stager> stager_;
  std::shared_ptr<const kernelize::Kernelizer> kernelizer_;
  std::shared_ptr<const exec::ExecutorBackend> executor_;
  std::unique_ptr<PlanCache> plan_cache_;
  /// Runs submit() jobs; must be distinct from the cluster pool (whose
  /// wait_idle() a job calls transitively via execute_plan) and must be
  /// the first member destroyed so in-flight jobs finish while the rest
  /// of the session is still alive.
  std::unique_ptr<ThreadPool> dispatch_pool_;
};

/// Validates a SessionConfig without constructing a Session: cluster
/// shape (negative dimensions, gpus_per_node vs. 2^regional_qubits
/// mismatch, thread counts), staging/kernelize option ranges, and the
/// cost factor. Throws atlas::Error naming the offending field.
/// Backend names are checked against the registries at Session
/// construction, not here, so the check stays side-effect free.
void validate_session_config(const SessionConfig& config);

}  // namespace atlas
