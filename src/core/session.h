#pragma once

/// \file session.h
/// The Atlas engine API: a long-lived Session owning the simulated
/// cluster, the backend engines (resolved by name from the pluggable
/// registries), an LRU plan cache, and an async dispatch pool.
///
///   atlas::SessionConfig cfg;
///   cfg.cluster.local_qubits = 20;
///   cfg.cluster.regional_qubits = 2;
///   cfg.cluster.global_qubits = 1;
///   cfg.cluster.gpus_per_node = 4;
///   cfg.stager = "bnb";                 // any registered staging engine
///   atlas::Session session(cfg);        // validates cfg, resolves backends
///
///   auto f1 = session.submit(atlas::circuits::qft(23));   // async
///   auto f2 = session.submit(atlas::circuits::ghz(23));
///   atlas::SimulationResult r1 = f1.get(), r2 = f2.get();
///
/// Plans are state-independent and reusable across runs (paper Section
/// III) — and parameter-value-independent for the whole rotation
/// family. The Session exploits both: an LRU cache keyed by the
/// circuit's *structural* fingerprint (plus the cluster shape) lets
/// repeated workloads skip PARTITION entirely, and compile()/run()/
/// sweep() bind symbolic parameters against one shared plan:
///
///   atlas::CompiledCircuit cc = session.compile(ansatz);   // 1 plan
///   auto results = session.sweep(cc, bindings);            // N runs
///
/// plan_cache_stats() exposes hit/miss counters.

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/compiled.h"
#include "core/pipeline.h"
#include "device/cluster.h"
#include "exec/backend.h"
#include "ir/circuit.h"
#include "ir/param.h"
#include "kernelize/kernelizer.h"
#include "noise/result.h"
#include "staging/registry.h"

namespace atlas {

namespace noise {
class NoiseModel;
}

struct SimulatorConfig {
  device::ClusterConfig cluster;
  staging::StagingOptions staging;
  kernelize::CostModel cost_model = kernelize::CostModel::default_model();
  kernelize::DpOptions kernelize;
  /// Inter-node cost factor c of Eq. (2); the paper uses 3.
  double stage_cost_factor = 3.0;
  device::CommCostModel comm = device::CommCostModel::perlmutter_like();
};

/// Optional observer of a Session's plan-cache events, invoked outside
/// the cache lock (implementations must be thread-safe and cheap —
/// think relaxed atomics). The serving layer uses this to maintain
/// aggregate cache counters without walking every session on each
/// `cache_stats` request (serve/session_store.h).
class PlanCacheListener {
 public:
  virtual ~PlanCacheListener() = default;
  virtual void on_hit() = 0;
  /// Also fired by disabled (capacity 0) caches, matching the miss
  /// counter semantics of PlanCacheStats.
  virtual void on_miss() = 0;
  virtual void on_insert(std::size_t plan_bytes) = 0;
  virtual void on_evict(std::size_t plan_bytes) = 0;
  virtual void on_clear(std::size_t entries, std::size_t resident_bytes) = 0;
};

/// Session construction knobs: everything the legacy SimulatorConfig
/// carried, plus backend selection by registry name and the plan-cache
/// and dispatch shapes.
struct SessionConfig : SimulatorConfig {
  SessionConfig() = default;
  SessionConfig(SimulatorConfig base) : SimulatorConfig(std::move(base)) {}

  /// Staging engine (staging::stager_registry() key).
  std::string stager = "auto";
  /// Kernelization engine (kernelize::kernelizer_registry() key).
  std::string kernelizer = "best";
  /// Execution backend (exec::executor_registry() key).
  std::string executor = "auto";
  /// Plans retained in the LRU cache; 0 disables caching.
  std::size_t plan_cache_capacity = 64;
  /// Worker threads dispatching submit()/simulate_batch() jobs
  /// (0 = min(hardware, 4)). Distinct from cluster.num_threads, which
  /// sizes the per-shard compute pool.
  int dispatch_threads = 0;
  /// Gate-level optimization level for the compile pipeline
  /// (core/pipeline.h) behind compile()/simulate() and the noise
  /// engine's twirl compile:
  ///   0  off (default) — bit-identical to the pre-optimizer pipeline;
  ///   1  local cleanups: inverse-pair cancellation, rotation merging
  ///      across commuting diagonals (affine, symbolic-safe), identity
  ///      elimination;
  ///   2  + CX-conjugated diagonal resynthesis, constant single-qubit
  ///      run resynthesis, and commutation-aware reordering that packs
  ///      gates to cut stage count.
  /// Every pass preserves the operator exactly (global phase included)
  /// and is valid for any binding of symbolic parameters; the plan
  /// cache keys on the *post-optimization* structure, so equivalent
  /// authored circuits share one plan. The default stays 0 because the
  /// engine's regression contracts (sweep() bit-identical to
  /// per-binding simulate(), per-trajectory plan sharing of lowered
  /// twirl circuits) are stated at the unoptimized structure; opt in
  /// per session for standalone simulation workloads.
  int opt_level = 0;
  /// Invariant verification level for the compile pipeline and the
  /// noise path (verify/verify.h, docs/VERIFY.md):
  ///   off        — only the always-on legacy validators run;
  ///   boundaries — structural checkers at every compile phase
  ///                hand-off (cheap, no numerics; the Debug default);
  ///   paranoid   — boundaries plus numeric checks: unitarity of
  ///                explicit matrices, CPTP of noise channels, and
  ///                re-verification of cache-hit plans.
  /// Defaults to `boundaries` in Debug builds and `off` in Release.
  verify::VerifyLevel verify_level =
#ifndef NDEBUG
      verify::VerifyLevel::boundaries;
#else
      verify::VerifyLevel::off;
#endif
  /// Optional per-phase dump hook: invoked after every compile phase
  /// (optimize, canonicalize, stage, kernelize, program) with the
  /// phase's snapshot. Cache-hit compiles skip stage/kernelize.
  CompileDumpHook compile_dump;
  /// Base seed for every sampling path the session owns: noise
  /// trajectories, readout-error draws, and SimulationResult::sample()
  /// without an explicit Rng. All of them derive counter-based streams
  /// (rng_stream_seed) keyed by stable indices — trajectory number,
  /// sweep point — never by dispatch order, so results are bit-stable
  /// under any dispatch_threads value.
  std::uint64_t seed = 0x0a71a5ba5e5eed01ull;
  /// When non-empty, enables the process-wide tracer (obs/trace.h) for
  /// this Session's lifetime: compile phases, per-stage/per-shard
  /// execution, and noise batches record spans, and a Chrome
  /// trace-event JSON file is written to this path when the last
  /// tracing Session is destroyed. Empty (the default) keeps tracing
  /// disabled at a cost of one relaxed atomic load per would-be span.
  std::string trace_path;
  /// Optional plan-cache event sink (see PlanCacheListener). Null (the
  /// default) means no callback.
  std::shared_ptr<PlanCacheListener> plan_cache_listener;
};

struct SimulationResult {
  /// The immutable plan this run executed — shared with the session's
  /// plan cache rather than deep-copied, so cache hits stay cheap.
  /// Plans from simulate()/run() are canonicalized: their gates carry
  /// slot symbols ("$0", "$1", ...) instead of concrete values.
  std::shared_ptr<const exec::ExecutionPlan> plan;
  /// Dense slot values this run executed under (index k = plan slot
  /// "$k") — the reproducibility record, kept in the form the engine
  /// ran with. The string-keyed view is built lazily by params().
  SlotValues slot_values;
  /// Deterministic per-run sampling seed, derived from
  /// SessionConfig::seed and the run's identity (plan key + slot
  /// values) — equal runs sample identically, independent of dispatch
  /// interleaving.
  std::uint64_t seed = 0;
  exec::ExecutionReport report;
  exec::DistState state;

  /// The slot-symbol binding ("$k" -> value) this run executed under;
  /// re-execute the same physics on a fresh state with
  /// `session.execute(*result.plan, state, result.params())`. Built on
  /// first access from `slot_values` and cached (not safe to *first*
  /// call concurrently from two threads; copies share the cache).
  const ParamBinding& params() const;

  /// \name Typed query facade
  /// Observable queries over the distributed final state, delegating to
  /// exec/queries.h so callers never reach into exec internals (`state`
  /// stays public as an escape hatch only). All run shard-by-shard
  /// without gathering.
  /// @{
  /// The amplitude of logical basis state `index`.
  Amp amplitude(Index index) const;
  /// |amplitude|^2 of logical basis state `index`.
  double probability(Index index) const;
  /// Sum of |a|^2 over the whole state (~1 when normalized).
  double norm_sq() const;
  /// Marginal distribution over `qubits` (packed ascending).
  std::vector<double> marginal(const std::vector<Qubit>& qubits) const;
  /// <Z_q> on logical qubit q.
  double expectation_z(Qubit q) const;
  /// Draws `shots` basis-state samples; deterministic under a fixed Rng.
  std::vector<Index> sample(int shots, Rng& rng) const;
  /// As above with the result's own deterministic stream (`seed`):
  /// call k draws stream k, so repeat calls give fresh batches yet the
  /// whole call sequence replays exactly on an identical run. Like
  /// params(), not safe to call concurrently on one result (the call
  /// counter is plain state; copies also replay the original's
  /// streams) — share an explicit Rng for multi-threaded sampling.
  std::vector<Index> sample(int shots) const;
  /// @}

 private:
  mutable std::shared_ptr<const ParamBinding> params_cache_;
  mutable std::uint64_t sample_counter_ = 0;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Entries currently resident.
  std::size_t size = 0;
  std::size_t capacity = 0;
  /// Approximate heap footprint of the resident plans
  /// (exec::approx_resident_bytes summed over entries) — lets serving
  /// layers report cache memory, not just hit counters.
  std::size_t resident_bytes = 0;
};

/// A long-lived simulation engine. Thread-safe: plan(), simulate(),
/// submit(), and simulate_batch() may be called concurrently; results
/// are bit-identical to sequential execution because every job owns
/// its state and plans are immutable once built.
class Session {
 public:
  /// Validates `config` (throws atlas::Error naming the offending
  /// field) and resolves the three backends from their registries
  /// (throws atlas::Error listing registered names on an unknown one).
  explicit Session(SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionConfig& config() const { return config_; }
  const device::Cluster& cluster() const { return cluster_; }

  const staging::Stager& stager() const { return *stager_; }
  const kernelize::Kernelizer& kernelizer() const { return *kernelizer_; }
  const exec::ExecutorBackend& executor() const { return *executor_; }
  /// The session's compile pipeline (optimizer introspection; the
  /// phases compile() runs are documented in core/pipeline.h).
  const CompilePipeline& pipeline() const { return *pipeline_; }

  /// \name Compile-once / bind-many
  /// @{
  /// Runs the compile pipeline (optimize at config().opt_level, then
  /// canonicalize rotation-family parameters into slot symbols, then
  /// stage + kernelize the canonical form — memoized on the
  /// *post-optimization* structural fingerprint plus the cluster
  /// shape, so rx(0.3), rx(0.7), rx(theta), and optimizer-equivalent
  /// authored variants all share one plan) and returns an immutable
  /// handle carrying the plan, the parameter slot table, and the
  /// compile diagnostics.
  CompiledCircuit compile(const Circuit& circuit) const;

  /// Executes a compiled circuit under `binding`; staging and
  /// kernelization never re-run. Throws atlas::Error when the binding
  /// misses one of compiled.symbols(), or when the handle was compiled
  /// by a session with a different cluster shape. Bit-identical to
  /// simulate(circuit.bind(binding)).
  SimulationResult run(const CompiledCircuit& compiled,
                       const ParamBinding& binding = {}) const;

  /// run() from values positionally aligned with compiled.symbols():
  /// the zero-string-lookup hot path — parameters flow through the
  /// dense slot table only, never through ParamBinding lookups (the
  /// result still records its slot binding in `params` for
  /// reproducibility). Note: a braced `{}` second argument is
  /// ambiguous with the binding overload — spell `ParamBinding{}`.
  SimulationResult run(const CompiledCircuit& compiled,
                       const std::vector<double>& symbol_values) const;

  /// Asynchronous run() on the session's dispatch pool.
  std::future<SimulationResult> submit(const CompiledCircuit& compiled,
                                       ParamBinding binding) const;

  /// Fans `bindings` across the dispatch pool against one shared plan
  /// (the variational-sweep hot path). Results are positionally
  /// aligned with `bindings`.
  std::vector<SimulationResult> sweep(const CompiledCircuit& compiled,
                                      std::vector<ParamBinding> bindings) const;

  /// As sweep(), but each point is a dense value vector positionally
  /// aligned with compiled.symbols() — zero string-keyed lookups per
  /// point.
  std::vector<SimulationResult> sweep(
      const CompiledCircuit& compiled,
      const std::vector<std::vector<double>>& points) const;

  /// The structural plan-cache key compile() would use for `circuit`
  /// under this session's cluster shape (exposed for diagnostics and
  /// cache-keying tests).
  std::uint64_t plan_key(const Circuit& circuit) const;
  /// @}

  /// PARTITION with memoization: returns the cached plan when an
  /// identical circuit (by value-sensitive fingerprint) was planned
  /// before, else stages + kernelizes and caches the result. The plan
  /// embeds the circuit's concrete parameter values, so it executes
  /// without a binding — use compile() for the value-independent
  /// variant. Note the two paths key *disjoint* spaces of the shared
  /// LRU cache (a plan() entry never serves compile()/simulate(), and
  /// vice versa); to warm the cache for simulate()/sweep() traffic,
  /// call compile(), not plan(). Immutable and thread-safe.
  std::shared_ptr<const exec::ExecutionPlan> plan(const Circuit& circuit) const;

  /// EXECUTE: runs a plan over an existing distributed state via the
  /// configured execution backend. The binding overload supplies
  /// values for plans holding symbolic parameters.
  exec::ExecutionReport execute(const exec::ExecutionPlan& plan,
                                exec::DistState& state) const;
  exec::ExecutionReport execute(const exec::ExecutionPlan& plan,
                                exec::DistState& state,
                                const ParamBinding& binding) const;

  /// SIMULATE: compile (structurally cached) + run from |0...0>. The
  /// circuit must be fully bound; parameterized circuits go through
  /// compile()/run() with an explicit binding.
  SimulationResult simulate(const Circuit& circuit) const;

  /// Asynchronous SIMULATE on the session's dispatch pool. Exceptions
  /// surface from Future::get(). Jobs submitted concurrently share the
  /// plan cache and the cluster's compute pool.
  std::future<SimulationResult> submit(Circuit circuit) const;

  /// Simulates a batch concurrently; results are positionally aligned
  /// with `circuits`.
  std::vector<SimulationResult> simulate_batch(
      std::vector<Circuit> circuits) const;

  /// \name Noisy simulation (stochastic trajectory unravelling)
  /// Averages `options.trajectories` stochastic unravellings of
  /// `model` applied to `circuit`, fanned across the dispatch pool.
  /// All-Pauli models ride the fast path: every trajectory binds the
  /// same CompiledCircuit (one plan-cache entry for the whole batch);
  /// general Kraus channels fall back to norm-tracked per-trajectory
  /// lowering, with plans memoized on the sampled outcome *pattern*
  /// when the model has few noise sites (equal patterns lower to
  /// identical circuits). Deterministic in SessionConfig::seed (or the per-run
  /// override) regardless of dispatch parallelism. Implemented in
  /// noise/engine.cpp.
  /// @{
  noise::NoisyResult run_noisy(
      const Circuit& circuit, const noise::NoiseModel& model,
      const noise::NoisyRunOptions& options = {}) const;

  /// run_noisy() with `shots` measurement samples per trajectory — the
  /// counts-first entry (readout error applied when modeled).
  noise::NoisyResult sample_noisy(const Circuit& circuit,
                                  const noise::NoiseModel& model, int shots,
                                  noise::NoisyRunOptions options = {}) const;
  /// @}

  PlanCacheStats plan_cache_stats() const;
  /// Drops every cached plan (counters are kept). Non-const on
  /// purpose: it mutates observable session state, unlike the
  /// logically-const memoization the const methods do.
  void clear_plan_cache();

 private:
  class PlanCache;

  exec::ExecutionPlan build_plan(const Circuit& circuit) const;
  std::shared_ptr<const exec::ExecutionPlan> plan_memoized(
      std::uint64_t key, const Circuit& circuit) const;
  /// Shared tail of every run() flavor: executes the compiled plan
  /// under a dense slot table (the only parameter path the executor
  /// sees — zero string lookups).
  SimulationResult run_with_slots(const CompiledCircuit& compiled,
                                  SlotValues values) const;
  /// Batched tail of sweep()/run_noisy() for backends with
  /// batched_launches(): builds every point's result shell (plan,
  /// slot values, derived seed, initial state) and ships the whole set
  /// through ExecutorBackend::execute_batch — one command list per
  /// stage instead of one execute() per point. Bit-identical to
  /// calling run_with_slots() per point.
  std::vector<SimulationResult> run_batch_with_slots(
      const CompiledCircuit& compiled, std::vector<SlotValues> values) const;
  /// Guards shared by run()/sweep(): valid handle, matching shape.
  void check_compiled(const CompiledCircuit& compiled, const char* what) const;
  /// Fans `count` points across the dispatch pool and joins them;
  /// `run_point` must be thread-safe and outlives the call (fan_out
  /// blocks until every future resolves).
  std::vector<SimulationResult> fan_out(
      std::size_t count,
      const std::function<SimulationResult(std::size_t)>& run_point) const;
  /// As fan_out() for void tasks writing their own outputs (trajectory
  /// partials): runs fn(i) for i in [0, count) on the dispatch pool,
  /// joins all, rethrows the first failure after every task finished.
  void dispatch_each(std::size_t count,
                     const std::function<void(std::size_t)>& fn) const;

  SessionConfig config_;
  device::Cluster cluster_;
  /// Hash of the cluster shape, mixed into every plan-cache key: two
  /// sessions with different shapes must never share a key even for
  /// equal circuits (plans embed shape-dependent partitions).
  std::uint64_t shape_salt_ = 0;
  std::shared_ptr<const staging::Stager> stager_;
  std::shared_ptr<const kernelize::Kernelizer> kernelizer_;
  std::shared_ptr<const exec::ExecutorBackend> executor_;
  /// Owns phases optimize -> canonicalize -> stage -> kernelize ->
  /// program; compile()/plan()/build_plan() all route through it.
  std::unique_ptr<CompilePipeline> pipeline_;
  std::unique_ptr<PlanCache> plan_cache_;
  /// True when this Session's trace_path started the process tracer;
  /// the destructor issues the matching stop() (which writes the JSON
  /// once the last tracing Session goes away).
  bool trace_started_ = false;
  /// Runs submit() jobs; must be distinct from the cluster pool (whose
  /// wait_idle() a job calls transitively via execute_plan) and must be
  /// the first member destroyed so in-flight jobs finish while the rest
  /// of the session is still alive.
  std::unique_ptr<ThreadPool> dispatch_pool_;
};

/// Validates a SessionConfig without constructing a Session: cluster
/// shape (negative dimensions, gpus_per_node vs. 2^regional_qubits
/// mismatch, thread counts), staging/kernelize option ranges, and the
/// cost factor. Throws atlas::Error naming the offending field.
/// Backend names are checked against the registries at Session
/// construction, not here, so the check stays side-effect free.
void validate_session_config(const SessionConfig& config);

}  // namespace atlas
