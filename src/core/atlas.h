#pragma once

/// \file atlas.h
/// The Atlas public API. Mirrors the paper's Algorithm 1:
///
///   PARTITION = STAGE (ILP / specialized B&B, Section IV)
///             + KERNELIZE per stage (DP, Section V)
///   EXECUTE   = reshard between stages + per-shard kernel launches
///   SIMULATE  = PARTITION then EXECUTE
///
/// Quick start — the Session engine API (core/session.h):
///
///   atlas::SessionConfig cfg;
///   cfg.cluster.local_qubits = 20;    // 2^20 amplitudes per GPU
///   cfg.cluster.regional_qubits = 2;  // 4 GPUs per node
///   cfg.cluster.global_qubits = 1;    // 2 nodes
///   cfg.cluster.gpus_per_node = 4;
///   cfg.stager = "bnb";               // pick any registered backend
///   atlas::Session session(cfg);      // validates cfg up front
///
///   // Asynchronous submission over the session's dispatch pool:
///   auto f = session.submit(atlas::circuits::qft(23));
///   atlas::SimulationResult result = f.get();
///   // result carries the report (wall/modeled times, comm stats) and
///   // answers observable queries through its typed facade:
///   //   result.probability(i), result.expectation_z(q),
///   //   result.marginal({0,1}), result.sample(1024, rng)
///
///   // Plans are reusable: a second simulate()/submit() of a
///   // structurally identical circuit skips PARTITION via the LRU
///   // plan cache (keys are value-independent).
///   session.simulate(atlas::circuits::qft(23));
///   assert(session.plan_cache_stats().hits >= 1);
///
/// Variational workloads compile once and bind many (core/compiled.h):
///
///   atlas::Circuit ansatz = ...;             // Gate::rx(q, Param::symbol("theta"))
///   atlas::CompiledCircuit cc = session.compile(ansatz);  // 1 plan
///   session.run(cc, {{"theta", 0.3}});                    // bind + execute
///   session.sweep(cc, bindings);             // fan bindings across the pool
///
/// Backends live in string-keyed registries — staging::stager_registry()
/// ("ilp", "bnb", "snuqs", "auto"), kernelize::kernelizer_registry()
/// ("dp", "ordered", "greedy", "best"), exec::executor_registry()
/// ("inmemory", "offload", "auto") — and new engines plug in without
/// touching core headers:
///
///   staging::stager_registry().add("mine", [] { return
///       std::make_shared<MyStager>(); });
///   cfg.stager = "mine";
///
/// The synchronous single-circuit Simulator below is a thin
/// compatibility shim over Session.

#include <memory>

#include "core/session.h"

namespace atlas {

/// Legacy facade: synchronous, single-circuit, default backends. New
/// code should hold a Session (async submission, plan cache, backend
/// selection); this shim simply forwards to one.
class Simulator {
 public:
  explicit Simulator(SimulatorConfig config)
      : session_(SessionConfig(std::move(config))) {}

  const SimulatorConfig& config() const { return session_.config(); }
  const device::Cluster& cluster() const { return session_.cluster(); }

  /// PARTITION: stages the circuit and kernelizes each stage. The plan
  /// is state-independent and reusable across runs (Section III).
  exec::ExecutionPlan plan(const Circuit& circuit) const {
    return *session_.plan(circuit);
  }

  /// EXECUTE: runs a plan over an existing distributed state.
  exec::ExecutionReport execute(const exec::ExecutionPlan& plan,
                                exec::DistState& state) const {
    return session_.execute(plan, state);
  }

  /// SIMULATE: plan + execute from |0...0>.
  SimulationResult simulate(const Circuit& circuit) const {
    return session_.simulate(circuit);
  }

 private:
  Session session_;
};

}  // namespace atlas
