#pragma once

/// \file atlas.h
/// The Atlas public API. Mirrors the paper's Algorithm 1:
///
///   PARTITION = STAGE (ILP / specialized B&B, Section IV)
///             + KERNELIZE per stage (DP, Section V)
///   EXECUTE   = reshard between stages + per-shard kernel launches
///   SIMULATE  = PARTITION then EXECUTE
///
/// Quick start:
///
///   atlas::SimulatorConfig cfg;
///   cfg.cluster.local_qubits = 20;    // 2^20 amplitudes per GPU
///   cfg.cluster.regional_qubits = 2;  // 4 GPUs per node
///   cfg.cluster.global_qubits = 1;    // 2 nodes
///   cfg.cluster.gpus_per_node = 4;
///   atlas::Simulator sim(cfg);
///   auto result = sim.simulate(atlas::circuits::qft(23));
///   // result.state holds the final distributed state vector;
///   // result.report carries wall/modeled times and comm statistics.

#include <memory>

#include "device/cluster.h"
#include "exec/executor.h"
#include "ir/circuit.h"
#include "kernelize/dp_kernelizer.h"
#include "staging/stager.h"

namespace atlas {

struct SimulatorConfig {
  device::ClusterConfig cluster;
  staging::StagingOptions staging;
  kernelize::CostModel cost_model = kernelize::CostModel::default_model();
  kernelize::DpOptions kernelize;
  /// Inter-node cost factor c of Eq. (2); the paper uses 3.
  double stage_cost_factor = 3.0;
  device::CommCostModel comm = device::CommCostModel::perlmutter_like();
};

struct SimulationResult {
  exec::ExecutionPlan plan;
  exec::ExecutionReport report;
  exec::DistState state;
};

class Simulator {
 public:
  explicit Simulator(SimulatorConfig config);

  const SimulatorConfig& config() const { return config_; }
  const device::Cluster& cluster() const { return cluster_; }

  /// PARTITION: stages the circuit and kernelizes each stage. The plan
  /// is state-independent and reusable across runs (Section III).
  exec::ExecutionPlan plan(const Circuit& circuit) const;

  /// EXECUTE: runs a plan over an existing distributed state.
  exec::ExecutionReport execute(const exec::ExecutionPlan& plan,
                                exec::DistState& state) const;

  /// SIMULATE: plan + execute from |0...0>.
  SimulationResult simulate(const Circuit& circuit) const;

 private:
  SimulatorConfig config_;
  device::Cluster cluster_;
};

}  // namespace atlas
