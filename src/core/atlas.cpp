#include "core/atlas.h"

#include "common/error.h"
#include "kernelize/kernelizer.h"

namespace atlas {

Simulator::Simulator(SimulatorConfig config)
    : config_(std::move(config)), cluster_(config_.cluster) {}

exec::ExecutionPlan Simulator::plan(const Circuit& circuit) const {
  const auto& cc = config_.cluster;
  ATLAS_CHECK(circuit.num_qubits() == cc.total_qubits(),
              "circuit has " << circuit.num_qubits()
                             << " qubits but the cluster shape totals "
                             << cc.total_qubits());
  staging::MachineShape shape;
  shape.num_local = cc.local_qubits;
  shape.num_regional = cc.regional_qubits;
  shape.num_global = cc.global_qubits;
  shape.cost_factor = config_.stage_cost_factor;

  const staging::StagedCircuit staged =
      staging::stage_circuit(circuit, shape, config_.staging);
  staging::validate_staging(circuit, staged, shape);

  exec::ExecutionPlan plan;
  plan.staging_comm_cost = staged.comm_cost;
  for (const auto& stage : staged.stages) {
    exec::PlannedStage ps;
    ps.original_indices = stage.gate_indices;
    ps.partition = stage.partition;
    ps.subcircuit = circuit.subcircuit(stage.gate_indices);
    ps.kernels = kernelize::kernelize_best(ps.subcircuit, config_.cost_model,
                                           config_.kernelize);
    kernelize::validate_kernelization(ps.subcircuit, ps.kernels,
                                      config_.cost_model);
    plan.kernel_cost_total += ps.kernels.total_cost;
    plan.stages.push_back(std::move(ps));
  }
  return plan;
}

exec::ExecutionReport Simulator::execute(const exec::ExecutionPlan& plan,
                                         exec::DistState& state) const {
  return exec::execute_plan(plan, cluster_, state);
}

SimulationResult Simulator::simulate(const Circuit& circuit) const {
  SimulationResult result;
  result.plan = plan(circuit);
  result.state = exec::initial_state(result.plan, cluster_);
  result.report = execute(result.plan, result.state);
  return result;
}

}  // namespace atlas
