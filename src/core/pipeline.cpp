#include "core/pipeline.h"

#include <utility>

#include "common/error.h"
#include "common/fnv.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "staging/stage.h"
#include "verify/verify.h"

namespace atlas {
namespace {

/// Phase-boundary verification: copies any findings into `diag` (which
/// may outlive the throw when the caller owns it, as in build_plan)
/// and then throws through verify::check.
void check_phase(const verify::VerifyReport& report,
                 CompileDiagnostics* diag) {
  if (report.ok()) return;
  if (diag != nullptr)
    diag->verify.insert(diag->verify.end(), report.diags.begin(),
                        report.diags.end());
  verify::check(report);
}

/// Slot canonicalization: every parameter — concrete or symbolic —
/// becomes a slot symbol, so the cached plan is valid for any binding
/// and two structurally equal circuits build the exact same canonical
/// circuit. `slots` receives the table mapping slot k back to the
/// originating (gate, param) and the caller's expression.
Circuit canonicalize(const Circuit& circuit,
                     std::vector<CompiledCircuit::Slot>& slots) {
  Circuit canonical(circuit.num_qubits(), circuit.name());
  for (int gi = 0; gi < circuit.num_gates(); ++gi) {
    const Gate& g = circuit.gate(gi);
    if (g.params().empty()) {
      canonical.add(g);
      continue;
    }
    std::vector<Param> slot_params;
    slot_params.reserve(g.params().size());
    for (int pi = 0; pi < static_cast<int>(g.params().size()); ++pi) {
      const int index = static_cast<int>(slots.size());
      slots.push_back(CompiledCircuit::Slot{index, gi, pi, g.param(pi)});
      slot_params.push_back(Param::symbol(slot_symbol_name(index)));
    }
    canonical.add(g.with_params(std::move(slot_params)));
  }
  return canonical;
}

}  // namespace

CompilePipeline::CompilePipeline(
    Config config, std::shared_ptr<const staging::Stager> stager,
    std::shared_ptr<const kernelize::Kernelizer> kernelizer)
    : config_(std::move(config)),
      passes_(config_.opt),
      stager_(std::move(stager)),
      kernelizer_(std::move(kernelizer)) {
  pass_ctx_.num_local_qubits = config_.shape.num_local;
  pass_ctx_.options = config_.opt.pass;
}

void CompilePipeline::dump(CompileDump payload) const {
  if (config_.dump) config_.dump(payload);
}

Circuit CompilePipeline::optimize(const Circuit& circuit,
                                  opt::OptReport* report) const {
  return passes_.run(circuit, pass_ctx_, report);
}

std::uint64_t CompilePipeline::plan_key(const Circuit& circuit,
                                        std::uint64_t shape_salt) const {
  // Canonicalization replaces parameters with slot symbols but keeps
  // kinds, qubits, and parameter counts, so the canonical circuit's
  // structural fingerprint equals the optimized circuit's — the key
  // can skip building the canonical form.
  return fnv_mix(shape_salt, optimize(circuit).structural_fingerprint());
}

exec::ExecutionPlan CompilePipeline::build_plan(const Circuit& circuit,
                                                CompileDiagnostics* diag) const {
  ATLAS_CHECK(circuit.num_qubits() == config_.shape.total(),
              "circuit has " << circuit.num_qubits()
                             << " qubits but the cluster shape totals "
                             << config_.shape.total());
  Timer t;
  obs::TraceSpan stage_span(obs::names::kSpanCompileStage);
  const staging::StagedCircuit staged =
      stager_->stage(circuit, config_.shape, config_.staging);
  staging::validate_staging(circuit, staged, config_.shape);
  if (config_.verify != verify::VerifyLevel::off)
    check_phase(verify::verify_staged(circuit, staged, config_.shape), diag);
  stage_span.end();
  {
    static obs::Histogram& stage_us =
        obs::histogram(obs::names::kCompileStageUs);
    stage_us.observe(t.seconds() * 1e6);
  }
  if (diag != nullptr) {
    diag->phases.push_back({"stage", t.seconds(), circuit.num_gates(),
                            circuit.num_gates()});
    diag->num_stages = staged.stages.size();
  }
  dump({"stage", &circuit, &staged, nullptr});

  t.reset();
  obs::TraceSpan kernelize_span(obs::names::kSpanCompileKernelize);
  exec::ExecutionPlan plan;
  plan.staging_comm_cost = staged.comm_cost;
  for (const auto& stage : staged.stages) {
    exec::PlannedStage ps;
    ps.original_indices = stage.gate_indices;
    ps.partition = stage.partition;
    ps.subcircuit = circuit.subcircuit(stage.gate_indices);
    ps.kernels = kernelizer_->kernelize(ps.subcircuit, config_.cost_model,
                                        config_.kernelize);
    kernelize::validate_kernelization(ps.subcircuit, ps.kernels,
                                      config_.cost_model);
    plan.kernel_cost_total += ps.kernels.total_cost;
    plan.stages.push_back(std::move(ps));
  }
  if (config_.verify != verify::VerifyLevel::off)
    check_phase(verify::verify_plan(plan, config_.shape, &circuit,
                                    config_.verify),
                diag);
  kernelize_span.end();
  {
    static obs::Histogram& kernelize_us =
        obs::histogram(obs::names::kCompileKernelizeUs);
    kernelize_us.observe(t.seconds() * 1e6);
  }
  if (diag != nullptr)
    diag->phases.push_back({"kernelize", t.seconds(), circuit.num_gates(),
                            circuit.num_gates()});
  dump({"kernelize", nullptr, nullptr, &plan});
  return plan;
}

CompiledCircuit CompilePipeline::compile(const Circuit& circuit,
                                         std::uint64_t shape_salt,
                                         const PlanResolver& resolver) const {
  CompiledCircuit cc;
  auto diag = std::make_shared<CompileDiagnostics>();
  diag->verify_level = config_.verify;
  const bool verifying = config_.verify != verify::VerifyLevel::off;
  Timer total;
  {
    static obs::Counter& compiles = obs::counter(obs::names::kCompileCount);
    compiles.inc();
  }

  // Phase 1: optimize (a no-op pipeline at level 0 — bit-identical).
  Timer t;
  obs::TraceSpan optimize_span(obs::names::kSpanCompileOptimize);
  Circuit optimized = passes_.run(circuit, pass_ctx_, &diag->opt);
  if (verifying)
    check_phase(verify::verify_circuit(optimized, config_.verify),
                diag.get());
  optimize_span.end();
  {
    static obs::Histogram& optimize_us =
        obs::histogram(obs::names::kCompileOptimizeUs);
    optimize_us.observe(t.seconds() * 1e6);
  }
  diag->phases.push_back({"optimize", t.seconds(), circuit.num_gates(),
                          optimized.num_gates()});
  dump({"optimize", &optimized, nullptr, nullptr});

  // Phase 2: canonicalize (parameters -> dense slots).
  t.reset();
  obs::TraceSpan canonicalize_span(obs::names::kSpanCompileCanonicalize);
  auto optimized_shared = std::make_shared<const Circuit>(std::move(optimized));
  Circuit canonical = canonicalize(*optimized_shared, cc.slots_);
  if (verifying)
    check_phase(verify::verify_circuit(canonical, config_.verify),
                diag.get());
  canonicalize_span.end();
  {
    static obs::Histogram& canonicalize_us =
        obs::histogram(obs::names::kCompileCanonicalizeUs);
    canonicalize_us.observe(t.seconds() * 1e6);
  }
  diag->phases.push_back({"canonicalize", t.seconds(),
                          optimized_shared->num_gates(),
                          canonical.num_gates()});
  dump({"canonicalize", &canonical, nullptr, nullptr});

  cc.circuit_ = std::make_shared<const Circuit>(circuit);
  cc.optimized_ = optimized_shared;
  cc.symbols_ = optimized_shared->symbols();
  cc.shape_salt_ = shape_salt;
  cc.plan_key_ = fnv_mix(shape_salt, canonical.structural_fingerprint());

  // Phases 3+4: stage + kernelize, through the plan cache. A freshly
  // built plan is verified inside build_plan(); at paranoid the
  // cache-hit path re-verifies the cached plan too.
  cc.plan_ = resolver(cc.plan_key_, canonical, *diag);
  ATLAS_CHECK(cc.plan_ != nullptr, "plan resolver returned null");
  if (config_.verify >= verify::VerifyLevel::paranoid && diag->plan_cached)
    check_phase(verify::verify_plan(*cc.plan_, config_.shape, &canonical,
                                    config_.verify),
                diag.get());

  // Phase 5: program — slot-program compilation + handle assembly.
  t.reset();
  obs::TraceSpan program_span(obs::names::kSpanCompileProgram);
  cc.build_slot_programs();
  if (verifying) check_phase(verify::verify_compiled(cc), diag.get());
  program_span.end();
  {
    static obs::Histogram& program_us =
        obs::histogram(obs::names::kCompileProgramUs);
    program_us.observe(t.seconds() * 1e6);
  }
  diag->num_stages = cc.plan_->stages.size();
  diag->phases.push_back({"program", t.seconds(), canonical.num_gates(),
                          canonical.num_gates()});
  dump({"program", nullptr, nullptr, cc.plan_.get()});

  diag->total_seconds = total.seconds();
  {
    static obs::Histogram& total_us =
        obs::histogram(obs::names::kCompileTotalUs);
    total_us.observe(diag->total_seconds * 1e6);
  }
  cc.diagnostics_ = std::move(diag);
  return cc;
}

}  // namespace atlas
