#include "kernelize/attach.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"

namespace atlas::kernelize {

std::vector<Item> attach_single_qubit_gates(const Circuit& circuit) {
  const int n = circuit.num_qubits();
  ATLAS_CHECK(n < 64, "kernelization supports < 64 qubits");
  std::vector<Item> items;
  // Index of the item last touching each qubit, and 1-qubit gates
  // waiting for the next multi-qubit gate on their qubit.
  std::vector<int> last_item(n, -1);
  std::vector<std::vector<int>> pending(n);

  for (int i = 0; i < circuit.num_gates(); ++i) {
    const Gate& g = circuit.gate(i);
    if (g.num_qubits() == 1) {
      const Qubit q = g.qubits()[0];
      if (pending[q].empty() && last_item[q] >= 0) {
        // Adjacent to the previous item on q: attach backwards.
        items[last_item[q]].gate_indices.push_back(i);
      } else {
        // Wait for the next multi-qubit gate on q.
        pending[q].push_back(i);
      }
      continue;
    }
    Item item;
    for (Qubit q : g.qubits()) {
      item.qubit_mask |= bit(q);
      for (int p : pending[q]) item.gate_indices.push_back(p);
      pending[q].clear();
    }
    item.gate_indices.push_back(i);
    std::sort(item.gate_indices.begin(), item.gate_indices.end());
    const int idx = static_cast<int>(items.size());
    for (Qubit q : g.qubits()) last_item[q] = idx;
    items.push_back(std::move(item));
  }

  // Leftovers: trailing 1-qubit gates with no following multi-qubit
  // gate. Attach to the last item on the qubit, else form a standalone
  // single-qubit chain item.
  for (Qubit q = 0; q < n; ++q) {
    if (pending[q].empty()) continue;
    if (last_item[q] >= 0) {
      auto& host = items[last_item[q]].gate_indices;
      host.insert(host.end(), pending[q].begin(), pending[q].end());
      std::sort(host.begin(), host.end());
    } else {
      Item item;
      item.qubit_mask = bit(q);
      item.gate_indices = pending[q];
      items.push_back(std::move(item));
    }
    pending[q].clear();
  }
  return items;
}

}  // namespace atlas::kernelize
