#include "kernelize/dp_kernelizer.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/bits.h"
#include "common/error.h"
#include "kernelize/attach.h"
#include "sim/fusion.h"

namespace atlas::kernelize {
namespace {

using Mask = std::uint64_t;

/// An open kernel in a DP state.
struct OpenKernel {
  Mask qubits = 0;
  Mask ext = 0;        // meaningful when !ext_all
  bool ext_all = true; // extensible set is "all qubits"
  KernelType type = KernelType::Fusion;
  double shm_cost = 0; // accumulated per-gate cost (SharedMemory only)
  std::vector<int> items;
};

/// Closed kernels are kept in an immutable shared chain so states can
/// branch cheaply.
struct ClosedNode {
  std::shared_ptr<const ClosedNode> prev;
  KernelType type;
  std::vector<int> items;
  double cost;
};

struct DpState {
  std::vector<OpenKernel> open;
  double closed_cost = 0;
  std::shared_ptr<const ClosedNode> closed;
};

/// Structural key for dominance dedup: two states with the same open-
/// kernel structure differ only in committed cost, so the cheaper one
/// dominates.
struct StateKey {
  std::vector<std::tuple<Mask, Mask, bool, int>> open;
  bool operator==(const StateKey& o) const { return open == o.open; }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    std::size_t h = 1469598103934665603ull;
    for (const auto& [q, e, all, t] : k.open) {
      h ^= q + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= e + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= (static_cast<std::size_t>(all) << 1) ^ t;
      h *= 1099511628211ull;
    }
    return h;
  }
};

StateKey key_of(const DpState& s) {
  StateKey k;
  for (const auto& ok : s.open)
    k.open.emplace_back(ok.qubits, ok.ext_all ? ~Mask{0} : ok.ext, ok.ext_all,
                        static_cast<int>(ok.type));
  std::sort(k.open.begin(), k.open.end());
  return k;
}

class DpKernelizer {
 public:
  DpKernelizer(const Circuit& circuit, const CostModel& model,
               const DpOptions& options)
      : circuit_(circuit), model_(model), options_(options) {}

  Kernelization run() {
    items_ = attach_single_qubit_gates(circuit_);
    if (items_.empty()) return {};

    std::unordered_map<StateKey, DpState, StateKeyHash> frontier;
    frontier.emplace(StateKey{}, DpState{});

    for (const Item& item : items_) {
      std::unordered_map<StateKey, DpState, StateKeyHash> next;
      next.reserve(frontier.size() * 4);
      auto offer = [&](DpState&& s) {
        StateKey k = key_of(s);
        auto it = next.find(k);
        if (it == next.end()) {
          next.emplace(std::move(k), std::move(s));
        } else if (total_open_cost(s) + s.closed_cost <
                   total_open_cost(it->second) + it->second.closed_cost) {
          it->second = std::move(s);
        }
      };
      for (auto& [key, state] : frontier) {
        expand(state, item, offer);
      }
      ATLAS_CHECK(!next.empty(), "kernelizer produced no successor states");
      frontier = std::move(next);
      prune(frontier);
    }

    // Finalize: the greedy packing estimate can be optimistic (a merge
    // may be invalidated by cross-kernel dependencies), so rank states
    // by estimate but select by *actual* reconstructed cost over the
    // best few candidates.
    std::vector<std::pair<double, const DpState*>> ranked;
    for (auto& [key, state] : frontier)
      ranked.emplace_back(state.closed_cost + pack(state.open).first, &state);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ATLAS_CHECK(!ranked.empty(), "kernelizer found no solution");

    Kernelization best;
    best.total_cost = std::numeric_limits<double>::infinity();
    const std::size_t candidates = std::min<std::size_t>(ranked.size(), 16);
    for (std::size_t i = 0; i < candidates; ++i) {
      const DpState& state = *ranked[i].second;
      Kernelization attempt;
      try {
        attempt = reconstruct(state, pack(state.open).second);
      } catch (const Error&) {
        // Greedy packing merged kernels into a dependency cycle; the
        // unmerged open kernels are always a valid fallback.
        attempt = reconstruct(state, state.open);
      }
      if (attempt.total_cost < best.total_cost) best = std::move(attempt);
    }
    return best;
  }

 private:
  bool capacity_ok(Mask qubits, KernelType type) const {
    if (type == KernelType::Fusion)
      return popcount(qubits) <= model_.max_fusion_qubits;
    // Shared-memory kernels always include the shard's 3 least
    // significant *physical* bits; the kernel's logical qubits may map
    // anywhere, so budget for them conservatively.
    return popcount(qubits) + 3 <= model_.max_shm_qubits;
  }

  double item_shm_cost(const Item& item) const {
    double c = 0;
    for (int gi : item.gate_indices)
      c += model_.shm_gate_cost(circuit_.gate(gi));
    return c;
  }

  double close_cost(const OpenKernel& k) const {
    if (k.type == KernelType::Fusion)
      return model_.fusion_kernel_cost(popcount(k.qubits));
    return model_.shm_alpha + k.shm_cost;
  }

  /// Applies Algorithm 4 to all kernels other than `receiver` after
  /// the item with mask g was added; closes kernels whose extensible
  /// set empties.
  void update_others(DpState& s, std::size_t receiver, Mask g) const {
    std::vector<OpenKernel> kept;
    kept.reserve(s.open.size());
    for (std::size_t j = 0; j < s.open.size(); ++j) {
      OpenKernel& k = s.open[j];
      if (j == receiver) {
        kept.push_back(std::move(k));
        continue;
      }
      if (k.ext_all) {
        if ((g & k.qubits) != 0) {
          k.ext_all = false;
          k.ext = k.qubits & ~g;  // monotonicity freezes the qubit set
        }
      } else {
        k.ext &= ~g;
      }
      if (!k.ext_all && k.ext == 0) {
        // No gate can ever join: close and commit the cost.
        s.closed_cost += close_cost(k);
        auto node = std::make_shared<ClosedNode>();
        node->prev = s.closed;
        node->type = k.type;
        node->items = std::move(k.items);
        node->cost = close_cost(k);
        s.closed = std::move(node);
      } else {
        kept.push_back(std::move(k));
      }
    }
    s.open = std::move(kept);
  }

  template <typename Offer>
  void expand(const DpState& state, const Item& item, Offer&& offer) const {
    const Mask g = item.qubit_mask;
    const int item_index = static_cast<int>(&item - items_.data());

    // Which kernels can accept this item under Constraint 1?
    std::vector<std::size_t> eligible;
    for (std::size_t j = 0; j < state.open.size(); ++j) {
      const OpenKernel& k = state.open[j];
      const bool ext_ok = k.ext_all || (g & ~k.ext) == 0;
      if (!ext_ok) continue;
      if (!capacity_ok(k.qubits | g, k.type)) continue;
      eligible.push_back(j);
    }

    // Subsumption fast path (Appendix B-b): if the item's qubits are
    // contained in a kernel (or contain it while extensible), commit
    // to that single transition.
    for (std::size_t j : eligible) {
      const OpenKernel& k = state.open[j];
      if ((g & ~k.qubits) == 0 || (k.qubits & ~g) == 0) {
        DpState s = state;
        OpenKernel& recv = s.open[j];
        recv.qubits |= g;
        recv.items.push_back(item_index);
        if (recv.type == KernelType::SharedMemory)
          recv.shm_cost += item_shm_cost(item);
        update_others(s, j, g);
        offer(std::move(s));
        return;
      }
    }

    // General transitions: join each eligible kernel...
    for (std::size_t j : eligible) {
      DpState s = state;
      OpenKernel& recv = s.open[j];
      recv.qubits |= g;
      recv.items.push_back(item_index);
      if (recv.type == KernelType::SharedMemory)
        recv.shm_cost += item_shm_cost(item);
      update_others(s, j, g);
      offer(std::move(s));
    }
    // ...or start a new kernel of either type (Section VI-B).
    for (KernelType type : {KernelType::Fusion, KernelType::SharedMemory}) {
      if (!capacity_ok(g, type)) continue;
      DpState s = state;
      OpenKernel k;
      k.qubits = g;
      k.ext_all = true;
      k.type = type;
      k.items = {item_index};
      if (type == KernelType::SharedMemory) k.shm_cost = item_shm_cost(item);
      s.open.push_back(std::move(k));
      update_others(s, s.open.size() - 1, g);
      offer(std::move(s));
    }
  }

  double total_open_cost(const DpState& s) const {
    double c = 0;
    for (const auto& k : s.open) c += close_cost(k);
    return c;
  }

  /// Greedy packing of the remaining open kernels (Appendix B-e):
  /// disjoint fusion kernels are merged toward the most cost-efficient
  /// width, disjoint shared-memory kernels toward the capacity limit.
  /// Returns (cost, merged kernels).
  std::pair<double, std::vector<OpenKernel>> pack(
      std::vector<OpenKernel> open) const {
    const int fusion_target = model_.most_efficient_fusion_size();
    int merges = 0;
    for (int pass = 0; pass < 2; ++pass) {
      bool merged_any = true;
      while (merged_any) {
        merged_any = false;
        for (std::size_t a = 0; a < open.size() && !merged_any; ++a) {
          for (std::size_t b = a + 1; b < open.size() && !merged_any; ++b) {
            if (open[a].type != open[b].type) continue;
            if ((open[a].qubits & open[b].qubits) != 0) continue;
            const Mask q = open[a].qubits | open[b].qubits;
            if (!capacity_ok(q, open[a].type)) continue;
            if (open[a].type == KernelType::Fusion) {
              // Only merge when it does not exceed the efficient width
              // on the first pass; the second pass merges the rest.
              if (pass == 0 && popcount(q) > fusion_target) continue;
              // Merging must actually pay.
              const double before = close_cost(open[a]) + close_cost(open[b]);
              OpenKernel m = open[a];
              m.qubits = q;
              if (close_cost(m) >= before) continue;
            }
            // Perform the merge (gate order restored by the final
            // topological sort).
            open[a].qubits = q;
            open[a].shm_cost += open[b].shm_cost;
            open[a].items.insert(open[a].items.end(), open[b].items.begin(),
                                 open[b].items.end());
            open.erase(open.begin() + b);
            merged_any = true;
            ++merges;
          }
        }
      }
    }
    double cost = 0;
    for (const auto& k : open) cost += close_cost(k);
    // Merges can be invalidated by cross-kernel dependencies at
    // reconstruction, so an estimate that relies on them is slightly
    // optimistic; a tiny penalty breaks pruning ties in favor of
    // states that do not need merging.
    cost += 1e-7 * merges;
    return {cost, std::move(open)};
  }

  /// Builds the final kernel sequence: closed chain + packed leftovers,
  /// topologically ordered by gate dependencies.
  Kernelization reconstruct(const DpState& state,
                            const std::vector<OpenKernel>& packed) const {
    struct ProtoKernel {
      KernelType type;
      std::vector<int> gates;  // original gate indices
      double cost;
    };
    std::vector<ProtoKernel> protos;
    for (auto node = state.closed; node; node = node->prev) {
      ProtoKernel p;
      p.type = node->type;
      for (int it : node->items)
        p.gates.insert(p.gates.end(), items_[it].gate_indices.begin(),
                       items_[it].gate_indices.end());
      p.cost = node->cost;
      protos.push_back(std::move(p));
    }
    for (const auto& k : packed) {
      ProtoKernel p;
      p.type = k.type;
      for (int it : k.items)
        p.gates.insert(p.gates.end(), items_[it].gate_indices.begin(),
                       items_[it].gate_indices.end());
      p.cost = close_cost(k);
      protos.push_back(std::move(p));
    }
    for (auto& p : protos) std::sort(p.gates.begin(), p.gates.end());

    // Topological order over kernels: edge a->b when some gate of a
    // precedes a dependent gate of b. Constraint 1 guarantees this
    // relation is acyclic (Theorem 2).
    const int nk = static_cast<int>(protos.size());
    std::vector<int> kernel_of_gate(circuit_.num_gates(), -1);
    for (int k = 0; k < nk; ++k)
      for (int gi : protos[k].gates) kernel_of_gate[gi] = k;
    std::vector<std::vector<int>> succ(nk);
    std::vector<int> indeg(nk, 0);
    for (const auto& [a, b] : circuit_.dependency_edges()) {
      const int ka = kernel_of_gate[a], kb = kernel_of_gate[b];
      if (ka != kb) {
        succ[ka].push_back(kb);
        ++indeg[kb];
      }
    }
    std::vector<int> order;
    std::vector<int> ready;
    for (int k = 0; k < nk; ++k)
      if (indeg[k] == 0) ready.push_back(k);
    while (!ready.empty()) {
      // Deterministic order: smallest kernel id (creation order) first.
      std::sort(ready.begin(), ready.end(), std::greater<int>());
      const int k = ready.back();
      ready.pop_back();
      order.push_back(k);
      for (int s : succ[k])
        if (--indeg[s] == 0) ready.push_back(s);
    }
    ATLAS_CHECK(static_cast<int>(order.size()) == nk,
                "kernel dependency graph has a cycle (Constraint 1 violated)");

    Kernelization out;
    for (int k : order) {
      Kernel kernel;
      kernel.type = protos[k].type;
      kernel.gate_indices = protos[k].gates;
      std::vector<Gate> gates;
      for (int gi : kernel.gate_indices) gates.push_back(circuit_.gate(gi));
      kernel.qubits = qubit_union(gates);
      kernel.cost = kernel_cost(circuit_, kernel, model_);
      out.total_cost += kernel.cost;
      out.kernels.push_back(std::move(kernel));
    }
    return out;
  }

  void prune(
      std::unordered_map<StateKey, DpState, StateKeyHash>& frontier) const {
    const int t = options_.prune_threshold;
    if (static_cast<int>(frontier.size()) < t) return;
    std::vector<std::pair<double, const StateKey*>> scored;
    scored.reserve(frontier.size());
    for (auto& [key, state] : frontier) {
      auto open_copy = state.open;
      scored.emplace_back(state.closed_cost + pack(std::move(open_copy)).first,
                          &key);
    }
    const std::size_t keep = std::max<std::size_t>(1, t / 2);
    std::nth_element(scored.begin(), scored.begin() + keep - 1, scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::unordered_map<StateKey, DpState, StateKeyHash> kept;
    kept.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      auto it = frontier.find(*scored[i].second);
      kept.insert(frontier.extract(it));
    }
    frontier = std::move(kept);
  }

  const Circuit& circuit_;
  const CostModel& model_;
  const DpOptions& options_;
  std::vector<Item> items_;
};

}  // namespace

Kernelization kernelize_dp(const Circuit& circuit, const CostModel& model,
                           const DpOptions& options) {
  for (const Gate& g : circuit.gates()) {
    ATLAS_CHECK(g.num_qubits() <= model.max_fusion_qubits ||
                    g.num_qubits() + 3 <= model.max_shm_qubits,
                "gate " << g.to_string() << " exceeds every kernel capacity");
  }
  return DpKernelizer(circuit, model, options).run();
}

}  // namespace atlas::kernelize
