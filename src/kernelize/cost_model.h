#pragma once

/// \file cost_model.h
/// The kernel cost model of Section V-B / VI-B. Two execution modes:
///
///  * Fusion kernels — all gates pre-multiplied into one dense matrix
///    applied at once (cuQuantum-style). Cost depends only on the
///    kernel's qubit count.
///  * Shared-memory kernels — amplitudes loaded into scratch memory in
///    micro-batches, gates applied one by one (HyQuas SHM-style).
///    Cost = alpha (batch load) + sum of per-gate costs.
///
/// Constants are calibrated by micro-benchmarking the simulation
/// substrate (mirroring the paper's Section VII-A profiling step);
/// `default_model()` ships constants measured on the reference
/// substrate so preprocessing is deterministic without calibration.

#include "ir/gate.h"

namespace atlas::kernelize {

struct CostModel {
  /// fusion_cost[k] = cost of a fusion kernel on k qubits (index 0
  /// unused). The most cost-efficient density (cost[k]/k) should sit
  /// at ~5 qubits, matching the paper's greedy-baseline choice.
  std::vector<double> fusion_cost;

  /// Shared-memory kernel: fixed micro-batch load cost...
  double shm_alpha = 0.0;
  /// ...plus per-gate costs by target count (1-, 2-, 3+-qubit) applied
  /// inside the scratch buffer.
  double shm_gate_1q = 0.0;
  double shm_gate_2q = 0.0;
  double shm_gate_3q = 0.0;

  int max_fusion_qubits = 0;  // == fusion_cost.size() - 1
  int max_shm_qubits = 0;     // active-qubit cap (includes 3 LSBs)

  double fusion_kernel_cost(int num_qubits) const;
  double shm_gate_cost(const Gate& g) const;

  /// The fusion kernel size k maximizing k / fusion_cost[k] (the
  /// "most cost-efficient kernel size" used by the greedy baseline).
  int most_efficient_fusion_size() const;

  /// Constants measured once on the reference substrate.
  static CostModel default_model();

  /// Micro-benchmarks gate application on a 2^buffer_qubits buffer to
  /// fill the constants (Section VII-A). Deterministic inputs, timed
  /// with steady_clock; intended for benches, not unit tests.
  static CostModel calibrate(int buffer_qubits = 18);
};

}  // namespace atlas::kernelize
