#include "kernelize/ordered.h"

#include <limits>

#include "common/bits.h"
#include "common/error.h"
#include "sim/fusion.h"

namespace atlas::kernelize {

Kernelization kernelize_ordered(const Circuit& circuit,
                                const CostModel& model) {
  const int ng = circuit.num_gates();
  if (ng == 0) return {};
  using Mask = std::uint64_t;
  std::vector<Mask> gate_mask(ng, 0);
  std::vector<double> gate_shm(ng, 0);
  for (int i = 0; i < ng; ++i) {
    for (Qubit q : circuit.gate(i).qubits()) gate_mask[i] |= bit(q);
    gate_shm[i] = model.shm_gate_cost(circuit.gate(i));
  }

  // DP[i] = best cost of kernelizing the first i gates; split[i] = the
  // start of the last kernel; type[i] = its execution mode.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(ng + 1, inf);
  std::vector<int> split(ng + 1, -1);
  std::vector<KernelType> type(ng + 1, KernelType::Fusion);
  dp[0] = 0;
  for (int i = 0; i < ng; ++i) {
    if (dp[i] == inf) continue;
    Mask qubits = 0;
    double shm_sum = 0;
    for (int j = i; j < ng; ++j) {
      qubits |= gate_mask[j];
      shm_sum += gate_shm[j];
      const int width = popcount(qubits);
      // Budget 3 slots for the shard's physical LSBs (see
      // dp_kernelizer.cpp's capacity rule).
      const int shm_width = popcount(qubits) + 3;
      const bool fusion_ok = width <= model.max_fusion_qubits;
      const bool shm_ok = shm_width <= model.max_shm_qubits;
      if (!fusion_ok && !shm_ok) break;  // wider segments only grow
      double seg_cost = inf;
      KernelType seg_type = KernelType::Fusion;
      if (fusion_ok) {
        seg_cost = model.fusion_kernel_cost(width);
      }
      if (shm_ok) {
        const double c = model.shm_alpha + shm_sum;
        if (c < seg_cost) {
          seg_cost = c;
          seg_type = KernelType::SharedMemory;
        }
      }
      if (dp[i] + seg_cost < dp[j + 1]) {
        dp[j + 1] = dp[i] + seg_cost;
        split[j + 1] = i;
        type[j + 1] = seg_type;
      }
    }
  }
  ATLAS_CHECK(dp[ng] < inf, "a gate exceeds every kernel capacity");

  // Reconstruct segments right-to-left.
  std::vector<std::pair<int, int>> segments;  // [start, end)
  for (int i = ng; i > 0; i = split[i]) segments.emplace_back(split[i], i);

  Kernelization out;
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    Kernel k;
    k.type = type[it->second];
    for (int g = it->first; g < it->second; ++g) k.gate_indices.push_back(g);
    std::vector<Gate> gates;
    for (int gi : k.gate_indices) gates.push_back(circuit.gate(gi));
    k.qubits = qubit_union(gates);
    k.cost = kernel_cost(circuit, k, model);
    out.total_cost += k.cost;
    out.kernels.push_back(std::move(k));
  }
  return out;
}

}  // namespace atlas::kernelize
