#pragma once

/// \file dp_kernelizer.h
/// The KERNELIZE dynamic program (Section V, Algorithms 3 and 4).
///
/// DP states walk the gate sequence (after single-qubit attachment)
/// maintaining a set of *open kernels*, each represented — as in the
/// paper's Section VI-A — by its qubit set and its *extensible qubit
/// set* (Definition 3), plus a fusion/shared-memory type tag
/// (Section VI-B). A gate may join a kernel iff its qubits are all
/// extensible for it (Constraint 1: weak convexity + monotonicity);
/// joining freezes or shrinks other kernels' extensible sets exactly
/// per Algorithm 4. Kernels whose extensible set empties are closed
/// and their cost committed. States are deduplicated by structure and
/// pruned to a threshold T by post-processed cost (Section VI-B,
/// optimization f).
///
/// Implemented optimizations from Appendix B: subsumption transitions
/// (b), single-qubit attachment (d), greedy post-processing packing
/// (e), and threshold pruning (f). The insular-qubit constraint
/// lifting (a) is not implemented; see DESIGN.md.

#include "ir/circuit.h"
#include "kernelize/cost_model.h"
#include "kernelize/kernel.h"

namespace atlas::kernelize {

struct DpOptions {
  /// Pruning threshold T (Appendix B-f); the paper uses 500.
  int prune_threshold = 500;
  /// kernelize_best() only: also run ORDEREDKERNELIZE and keep the
  /// cheaper result. The ordered pass costs O(|C|^2) and beats the DP
  /// only in rare shallow-circuit corner cases (Appendix B-d); turn it
  /// off to skip that work on hot planning paths.
  bool also_try_ordered = true;
};

/// Kernelizes `circuit` (typically one stage's subcircuit) minimizing
/// total kernel cost under `model`. The result passes
/// validate_kernelization().
Kernelization kernelize_dp(const Circuit& circuit, const CostModel& model,
                           const DpOptions& options = {});

}  // namespace atlas::kernelize
