#pragma once

/// \file ordered.h
/// ORDEREDKERNELIZE (paper Appendix A, Algorithm 5): the O(|C|^2)
/// dynamic program over contiguous gate segments. It is optimal among
/// kernelizations that respect the given sequential order, and serves
/// as the "Atlas-Naive" comparison line in Figures 13-37. KERNELIZE is
/// provably at least as good (Theorem 6); tests assert that property.

#include "ir/circuit.h"
#include "kernelize/cost_model.h"
#include "kernelize/kernel.h"

namespace atlas::kernelize {

Kernelization kernelize_ordered(const Circuit& circuit,
                                const CostModel& model);

}  // namespace atlas::kernelize
