#pragma once

/// \file greedy.h
/// The greedy fusion baseline of Section VII-E (Figure 10): scan the
/// sequence packing gates into fusion kernels of up to the most
/// cost-efficient width (5 qubits under the reference cost model),
/// closing a kernel whenever the next gate does not fit.

#include "ir/circuit.h"
#include "kernelize/cost_model.h"
#include "kernelize/kernel.h"

namespace atlas::kernelize {

Kernelization kernelize_greedy(const Circuit& circuit, const CostModel& model,
                               int max_qubits = 5);

}  // namespace atlas::kernelize
