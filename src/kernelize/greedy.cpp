#include "kernelize/greedy.h"

#include "common/bits.h"
#include "common/error.h"
#include "sim/fusion.h"

namespace atlas::kernelize {

Kernelization kernelize_greedy(const Circuit& circuit, const CostModel& model,
                               int max_qubits) {
  ATLAS_CHECK(max_qubits >= 1 && max_qubits <= model.max_fusion_qubits,
              "greedy width out of range");
  using Mask = std::uint64_t;
  Kernelization out;
  Mask current = 0;
  std::vector<int> gates;
  auto flush = [&] {
    if (gates.empty()) return;
    Kernel k;
    k.type = KernelType::Fusion;
    k.gate_indices = gates;
    std::vector<Gate> gs;
    for (int gi : k.gate_indices) gs.push_back(circuit.gate(gi));
    k.qubits = qubit_union(gs);
    k.cost = kernel_cost(circuit, k, model);
    out.total_cost += k.cost;
    out.kernels.push_back(std::move(k));
    gates.clear();
    current = 0;
  };
  for (int i = 0; i < circuit.num_gates(); ++i) {
    Mask m = 0;
    for (Qubit q : circuit.gate(i).qubits()) m |= bit(q);
    ATLAS_CHECK(popcount(m) <= max_qubits,
                "gate wider than the greedy fusion limit");
    if (popcount(current | m) > max_qubits) flush();
    current |= m;
    gates.push_back(i);
  }
  flush();
  return out;
}

}  // namespace atlas::kernelize
