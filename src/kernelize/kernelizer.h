#pragma once

/// \file kernelizer.h
/// Production kernelization facade: runs KERNELIZE (the DP of
/// Algorithm 3) and, because ORDEREDKERNELIZE costs O(|C|^2) which is
/// negligible next to the DP, also the ordered variant, returning the
/// cheaper result. The DP's single-qubit *attachment* preprocessing
/// (Appendix B-d) is a heuristic that can very occasionally cede a
/// fraction of a percent to the ordered DP on shallow circuits; taking
/// the min restores Theorem 6 unconditionally for the planner.

#include "ir/circuit.h"
#include "kernelize/cost_model.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/kernel.h"
#include "kernelize/ordered.h"

namespace atlas::kernelize {

inline Kernelization kernelize_best(const Circuit& circuit,
                                    const CostModel& model,
                                    const DpOptions& options = {}) {
  Kernelization dp = kernelize_dp(circuit, model, options);
  Kernelization ordered = kernelize_ordered(circuit, model);
  return dp.total_cost <= ordered.total_cost ? std::move(dp)
                                             : std::move(ordered);
}

}  // namespace atlas::kernelize
