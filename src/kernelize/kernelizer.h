#pragma once

/// \file kernelizer.h
/// The pluggable kernelization seam: a polymorphic Kernelizer
/// interface over the KERNELIZE engines plus a string-keyed registry
/// so external engines can plug in without touching core headers.
/// Built-ins:
///
///  * "dp"      — the KERNELIZE DP (Algorithm 3)
///  * "ordered" — ORDEREDKERNELIZE (Algorithm 5, O(|C|^2))
///  * "greedy"  — the greedy fusion baseline (Section VII-E)
///  * "best"    — kernelize_best(), the production default
///
/// kernelize_best runs the DP and, when DpOptions::also_try_ordered is
/// set (the default), also the ordered variant, returning the cheaper
/// result. The DP's single-qubit *attachment* preprocessing (Appendix
/// B-d) is a heuristic that can very occasionally cede a fraction of a
/// percent to the ordered DP on shallow circuits; taking the min
/// restores Theorem 6 unconditionally for the planner.

#include <memory>
#include <string>

#include "common/registry.h"
#include "ir/circuit.h"
#include "kernelize/cost_model.h"
#include "kernelize/dp_kernelizer.h"
#include "kernelize/kernel.h"

namespace atlas::kernelize {

/// A kernelization engine. Implementations must return a result that
/// passes validate_kernelization() under `model`.
class Kernelizer {
 public:
  virtual ~Kernelizer() = default;

  /// The registry key this engine was built for ("dp", ...).
  virtual std::string name() const = 0;

  /// Kernelizes `circuit` (typically one stage's subcircuit) under
  /// `model`. Engines read the DpOptions knobs they understand and
  /// ignore the rest.
  virtual Kernelization kernelize(const Circuit& circuit,
                                  const CostModel& model,
                                  const DpOptions& options) const = 0;
};

using KernelizerRegistry = Registry<Kernelizer>;

/// The process-wide kernelizer registry. Built-ins ("dp", "ordered",
/// "greedy", "best") are registered on first access; user engines may
/// be added any time with kernelizer_registry().add(name, factory).
KernelizerRegistry& kernelizer_registry();

/// Production default: the DP, plus the ordered pass when
/// `options.also_try_ordered` — see the file comment.
Kernelization kernelize_best(const Circuit& circuit, const CostModel& model,
                             const DpOptions& options = {});

}  // namespace atlas::kernelize
