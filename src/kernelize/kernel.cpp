#include "kernelize/kernel.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "sim/fusion.h"

namespace atlas::kernelize {

double kernel_cost(const Circuit& circuit, const Kernel& kernel,
                   const CostModel& model) {
  if (kernel.type == KernelType::Fusion) {
    return model.fusion_kernel_cost(static_cast<int>(kernel.qubits.size()));
  }
  double c = model.shm_alpha;
  for (int gi : kernel.gate_indices)
    c += model.shm_gate_cost(circuit.gate(gi));
  return c;
}

void validate_kernelization(const Circuit& circuit, const Kernelization& k,
                            const CostModel& model) {
  // Coverage: each gate in exactly one kernel.
  std::vector<int> position_in_sequence(circuit.num_gates(), -1);
  int pos = 0;
  for (const Kernel& kernel : k.kernels) {
    for (int gi : kernel.gate_indices) {
      ATLAS_CHECK(gi >= 0 && gi < circuit.num_gates(), "bad gate index");
      ATLAS_CHECK(position_in_sequence[gi] < 0,
                  "gate " << gi << " appears in two kernels");
      position_in_sequence[gi] = pos++;
    }
  }
  for (int gi = 0; gi < circuit.num_gates(); ++gi)
    ATLAS_CHECK(position_in_sequence[gi] >= 0, "gate " << gi
                                                       << " not kernelized");

  // Topological equivalence (Theorem 2): gates sharing a qubit keep
  // their relative order in the concatenated sequence.
  for (const auto& [a, b] : circuit.dependency_edges())
    ATLAS_CHECK(position_in_sequence[a] < position_in_sequence[b],
                "kernel sequence reorders dependent gates " << a << " and "
                                                            << b);

  // Per-kernel structure: qubit union, limits, and cost.
  for (const Kernel& kernel : k.kernels) {
    std::vector<Gate> gates;
    for (int gi : kernel.gate_indices) gates.push_back(circuit.gate(gi));
    const std::vector<Qubit> expected = qubit_union(gates);
    ATLAS_CHECK(kernel.qubits == expected, "kernel qubit set mismatch");
    if (kernel.type == KernelType::Fusion) {
      ATLAS_CHECK(static_cast<int>(kernel.qubits.size()) <=
                      model.max_fusion_qubits,
                  "fusion kernel too wide: " << kernel.qubits.size());
    } else {
      // Active set = the qubits' physical bit positions plus the 3
      // physical LSBs of the shard; at planning time the positions are
      // unknown, so the budget is qubit count + 3 (conservative).
      ATLAS_CHECK(static_cast<int>(kernel.qubits.size()) + 3 <=
                      model.max_shm_qubits,
                  "shared-memory kernel too wide: " << kernel.qubits.size());
    }
    ATLAS_CHECK(std::abs(kernel.cost - kernel_cost(circuit, kernel, model)) <
                    1e-9,
                "kernel cost out of sync with the cost model");
  }

  // Total cost consistency.
  double total = 0;
  for (const Kernel& kernel : k.kernels) total += kernel.cost;
  ATLAS_CHECK(std::abs(total - k.total_cost) < 1e-6,
              "total cost " << k.total_cost << " != sum of kernels " << total);
}

}  // namespace atlas::kernelize
