#include "kernelize/kernelizer.h"

#include "kernelize/greedy.h"
#include "kernelize/ordered.h"

namespace atlas::kernelize {
namespace {

class DpKernelizer final : public Kernelizer {
 public:
  std::string name() const override { return "dp"; }
  Kernelization kernelize(const Circuit& circuit, const CostModel& model,
                          const DpOptions& options) const override {
    return kernelize_dp(circuit, model, options);
  }
};

class OrderedKernelizer final : public Kernelizer {
 public:
  std::string name() const override { return "ordered"; }
  Kernelization kernelize(const Circuit& circuit, const CostModel& model,
                          const DpOptions&) const override {
    return kernelize_ordered(circuit, model);
  }
};

class GreedyKernelizer final : public Kernelizer {
 public:
  std::string name() const override { return "greedy"; }
  Kernelization kernelize(const Circuit& circuit, const CostModel& model,
                          const DpOptions&) const override {
    return kernelize_greedy(circuit, model);
  }
};

class BestKernelizer final : public Kernelizer {
 public:
  std::string name() const override { return "best"; }
  Kernelization kernelize(const Circuit& circuit, const CostModel& model,
                          const DpOptions& options) const override {
    return kernelize_best(circuit, model, options);
  }
};

}  // namespace

KernelizerRegistry& kernelizer_registry() {
  static KernelizerRegistry* registry = [] {
    auto* r = new KernelizerRegistry("kernelizer");
    r->add("dp", [] { return std::make_shared<DpKernelizer>(); });
    r->add("ordered", [] { return std::make_shared<OrderedKernelizer>(); });
    r->add("greedy", [] { return std::make_shared<GreedyKernelizer>(); });
    r->add("best", [] { return std::make_shared<BestKernelizer>(); });
    return r;
  }();
  return *registry;
}

Kernelization kernelize_best(const Circuit& circuit, const CostModel& model,
                             const DpOptions& options) {
  Kernelization dp = kernelize_dp(circuit, model, options);
  if (!options.also_try_ordered) return dp;
  Kernelization ordered = kernelize_ordered(circuit, model);
  return dp.total_cost <= ordered.total_cost ? std::move(dp)
                                             : std::move(ordered);
}

}  // namespace atlas::kernelize
