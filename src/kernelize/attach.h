#pragma once

/// \file attach.h
/// Single-qubit-gate attachment (Section VI-B, optimization d):
/// independent single-qubit gates explode the kernelization DP state
/// count, so each one is attached to an adjacent multi-qubit gate and
/// the DP operates on the resulting *items*. Attachment is sound
/// because the attached gate is adjacent to its host on the shared
/// qubit (no gate on that qubit in between), so grouping them into one
/// kernel preserves topological equivalence.

#include <cstdint>
#include <vector>

#include "ir/circuit.h"

namespace atlas::kernelize {

/// A DP item: one multi-qubit gate plus its attached single-qubit
/// gates (or a chain of single-qubit gates on a qubit that never meets
/// a multi-qubit gate).
struct Item {
  std::uint64_t qubit_mask = 0;
  std::vector<int> gate_indices;  // ascending original order
};

/// Groups the circuit's gates into items. Every gate appears in
/// exactly one item; items are ordered by their anchor gate's position.
std::vector<Item> attach_single_qubit_gates(const Circuit& circuit);

}  // namespace atlas::kernelize
