#pragma once

/// \file kernel.h
/// Kernelization output types (Section V): a kernel is a group of
/// gates executed by one GPU kernel launch, either as a fused matrix
/// or as a shared-memory batch pass.

#include <vector>

#include "common/types.h"
#include "ir/circuit.h"
#include "kernelize/cost_model.h"

namespace atlas::kernelize {

enum class KernelType { Fusion, SharedMemory };

struct Kernel {
  KernelType type = KernelType::Fusion;
  /// Gate indices into the kernelized circuit, in execution order.
  std::vector<int> gate_indices;
  /// Union of the gates' qubits, ascending.
  std::vector<Qubit> qubits;
  double cost = 0.0;
};

struct Kernelization {
  std::vector<Kernel> kernels;
  double total_cost = 0.0;
};

/// Computes a kernel's cost under `model` from its type, qubit count,
/// and member gates.
double kernel_cost(const Circuit& circuit, const Kernel& kernel,
                   const CostModel& model);

/// Throws atlas::Error unless `k` is a valid kernelization of
/// `circuit`: every gate appears exactly once, each kernel's qubit
/// union and size limits hold, and concatenating the kernels yields a
/// sequence topologically equivalent to the circuit (Theorem 2): any
/// two gates sharing a qubit keep their relative order.
void validate_kernelization(const Circuit& circuit, const Kernelization& k,
                            const CostModel& model);

}  // namespace atlas::kernelize
