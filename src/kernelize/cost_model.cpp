#include "kernelize/cost_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/timer.h"
#include "sim/apply.h"
#include "sim/fusion.h"
#include "sim/shm_executor.h"
#include "sim/state_vector.h"

namespace atlas::kernelize {

double CostModel::fusion_kernel_cost(int num_qubits) const {
  ATLAS_CHECK(num_qubits >= 1 && num_qubits <= max_fusion_qubits,
              "fusion kernel on " << num_qubits << " qubits out of range");
  return fusion_cost[num_qubits];
}

double CostModel::shm_gate_cost(const Gate& g) const {
  // Controls resolved inside scratch memory are cheap; cost follows
  // the dense target count.
  switch (std::min(3, g.num_targets())) {
    case 1: return shm_gate_1q;
    case 2: return shm_gate_2q;
    default: return shm_gate_3q;
  }
}

int CostModel::most_efficient_fusion_size() const {
  int best = 1;
  for (int k = 2; k <= max_fusion_qubits; ++k)
    if (k / fusion_cost[k] > best / fusion_cost[best]) best = k;
  return best;
}

CostModel CostModel::default_model() {
  CostModel m;
  // One unit = one full streaming pass applying a 1-qubit fused gate.
  // The table reflects measured behaviour of dense k-qubit matrix
  // application: memory-bound (flat) until ~5 qubits, then the 2^k
  // arithmetic dominates. cost[k]/k bottoms out at k = 5, matching the
  // paper's remark that 5 qubits is the most cost-efficient fusion
  // size under their profile.
  m.fusion_cost = {0.0, 1.0, 1.06, 1.2, 1.45, 1.75, 3.4, 7.0};
  m.max_fusion_qubits = 7;
  m.shm_alpha = 0.9;
  m.shm_gate_1q = 0.05;
  m.shm_gate_2q = 0.09;
  m.shm_gate_3q = 0.18;
  m.max_shm_qubits = kShmQubits;
  return m;
}

CostModel CostModel::calibrate(int buffer_qubits) {
  ATLAS_CHECK(buffer_qubits >= 12 && buffer_qubits <= 26,
              "calibration buffer out of range");
  CostModel m = default_model();
  StateVector sv = StateVector::random(buffer_qubits, 12345);
  std::vector<int> identity(buffer_qubits);
  for (int i = 0; i < buffer_qubits; ++i) identity[i] = i;

  auto time_of = [&](auto&& fn) {
    // Warm-up + best-of-3 to shave scheduler noise.
    fn();
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      fn();
      best = std::min(best, t.seconds());
    }
    return best;
  };

  // Fusion kernels: dense k-qubit random unitary-ish matrices (the
  // cost model does not care about unitarity).
  Rng rng(7);
  std::vector<double> raw(m.max_fusion_qubits + 1, 0.0);
  for (int k = 1; k <= m.max_fusion_qubits; ++k) {
    Matrix mat(1 << k, 1 << k);
    for (int r = 0; r < (1 << k); ++r)
      for (int c = 0; c < (1 << k); ++c) mat(r, c) = rng.amp();
    std::vector<int> targets;
    for (int t = 0; t < k; ++t) targets.push_back(t + 3);
    raw[k] = time_of(
        [&] { apply_matrix(sv.data(), sv.size(), targets, mat); });
  }
  // Normalize to 1-qubit units.
  for (int k = 1; k <= m.max_fusion_qubits; ++k)
    m.fusion_cost[k] = raw[k] / raw[1];

  // Shared-memory: alpha from an empty kernel; per-gate costs from the
  // marginal cost of extra gates in one kernel.
  const double empty = time_of([&] {
    run_shared_memory_kernel(sv.data(), sv.size(), {}, identity);
  });
  auto shm_gates_time = [&](const std::vector<Gate>& gates) {
    return time_of([&] {
      run_shared_memory_kernel(sv.data(), sv.size(), gates, identity);
    });
  };
  const std::vector<Gate> g1(8, Gate::h(4));
  const std::vector<Gate> g2(8, Gate::rxx(4, 5, 0.3));
  Matrix m3(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) m3(r, c) = rng.amp();
  const std::vector<Gate> g3(8, Gate::unitary({4, 5, 6}, m3));
  m.shm_alpha = empty / raw[1];
  m.shm_gate_1q = std::max(1e-4, (shm_gates_time(g1) - empty) / 8 / raw[1]);
  m.shm_gate_2q = std::max(1e-4, (shm_gates_time(g2) - empty) / 8 / raw[1]);
  m.shm_gate_3q = std::max(1e-4, (shm_gates_time(g3) - empty) / 8 / raw[1]);
  return m;
}

}  // namespace atlas::kernelize
