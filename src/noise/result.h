#pragma once

/// \file result.h
/// Options and aggregate result of trajectory-based noisy simulation
/// (Session::run_noisy / sample_noisy). A NoisyResult is a Monte-Carlo
/// aggregate: per-qubit Z expectations and (opt-in) basis-state
/// probabilities carry standard errors from the trajectory spread, and
/// measurement counts are weighted by each trajectory's norm so the
/// general-Kraus unravelling stays unbiased.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ir/param.h"
#include "noise/channel.h"

namespace atlas::noise {

/// Hard cap for NoisyRunOptions::accumulate_probabilities (the
/// accumulator is a dense 2^n vector per trajectory partial).
inline constexpr int kMaxProbabilityQubits = 14;

/// A Monte-Carlo estimate with its standard error (sample standard
/// deviation of the per-trajectory values over sqrt(N)).
struct Estimate {
  double value = 0;
  double std_error = 0;
};

/// Knobs for Session::run_noisy()/sample_noisy().
struct NoisyRunOptions {
  /// Trajectories to average. Standard errors shrink as 1/sqrt(N).
  int trajectories = 256;
  /// Measurement shots drawn per trajectory (0 = no counts). Readout
  /// confusion from the NoiseModel applies to these samples only —
  /// expectation_z/probability stay pre-readout observables.
  int shots = 0;
  /// Accumulate the exact per-trajectory basis-state distribution
  /// (sampling-noise-free probability estimates); allowed up to
  /// kMaxProbabilityQubits qubits.
  bool accumulate_probabilities = false;
  /// Binding for the circuit's own free symbols, if any.
  ParamBinding binding;
  /// Nonzero: override SessionConfig::seed for this run.
  std::uint64_t seed = 0;
};

class NoisyResult {
 public:
  int num_qubits() const { return num_qubits_; }
  std::uint64_t trajectories() const { return trajectories_; }
  /// True when the model unraveled through the shared-plan Pauli-twirl
  /// path (every trajectory weight exactly 1).
  bool pauli_fast_path() const { return pauli_fast_path_; }
  int shots_per_trajectory() const { return shots_; }

  /// tr(rho Z_q) estimate with standard error.
  Estimate expectation_z(Qubit q) const;

  /// Norm-weighted measurement counts (readout confusion applied).
  /// Each of the N*S samples contributes its trajectory's weight;
  /// divide by total_shots() for probability estimates.
  const std::map<Index, double>& counts() const { return counts_; }
  /// N * shots_per_trajectory — the denominator of count estimates.
  double total_shots() const;
  /// counts()[basis] / total_shots(): the post-readout probability
  /// estimate of one basis state.
  double shot_probability(Index basis) const;

  /// \name Readout-confusion-corrected count queries
  /// Counts carry the model's readout confusion; these variants undo
  /// it by applying the *inverse* per-qubit confusion matrices
  /// C_q^{-1}, C_q = [[1-p01, p10], [p01, 1-p10]], to the sampled
  /// counts — estimating the pre-readout observable from post-readout
  /// shots (the standard measurement-mitigation estimator; unbiased,
  /// though individual corrected probabilities may leave [0, 1] at
  /// finite shots). They statistically match probability() /
  /// expectation_z() without requiring accumulate_probabilities.
  /// Both throw when the run drew no shots or a qubit's confusion
  /// matrix is singular (p01 + p10 = 1); qubits without modeled
  /// readout error are passed through unchanged.
  /// @{
  /// Corrected probability estimate of one basis state.
  double corrected_probability(Index basis) const;
  /// Corrected <Z_q> from the counts: (<Z_q>_counts + p01 - p10) /
  /// (1 - p01 - p10).
  double corrected_expectation_z(Qubit q) const;
  /// The per-qubit confusion the correction inverts (non-trivial
  /// entries only, as recorded by the run).
  const std::vector<std::pair<Qubit, ReadoutError>>& readout() const {
    return readout_;
  }
  /// @}

  /// Pre-readout probability estimate of one basis state (requires
  /// accumulate_probabilities).
  Estimate probability(Index basis) const;
  /// All accumulated mean probabilities (empty unless opted in).
  std::vector<double> probabilities() const;

  /// Per-trajectory norm^2 weights; their mean estimates tr(rho) (~1).
  const std::vector<double>& weights() const { return weights_; }
  double mean_weight() const;

 private:
  friend class NoisyResultBuilder;

  int num_qubits_ = 0;
  std::uint64_t trajectories_ = 0;
  bool pauli_fast_path_ = false;
  int shots_ = 0;
  std::vector<double> weights_;
  std::vector<double> z_sum_, z_sum_sq_;        // per qubit
  std::vector<double> prob_sum_, prob_sum_sq_;  // per basis state (opt-in)
  std::map<Index, double> counts_;
  /// Non-trivial per-qubit readout confusion the counts were drawn
  /// under (what corrected_* inverts).
  std::vector<std::pair<Qubit, ReadoutError>> readout_;
};

/// Assembles a NoisyResult from per-trajectory partials in
/// deterministic (trajectory-index) order — the accumulation side of
/// the engine, exposed so tests can build results directly.
class NoisyResultBuilder {
 public:
  /// `readout` records the non-trivial per-qubit confusion applied to
  /// the samples being folded in (empty = none), enabling the
  /// corrected_* queries on the finished result.
  NoisyResultBuilder(int num_qubits, bool pauli_fast_path, int shots,
                     bool accumulate_probabilities,
                     std::vector<std::pair<Qubit, ReadoutError>> readout = {});

  /// Folds one trajectory in: its weight, raw per-qubit Z sums, the
  /// drawn (readout-corrected) samples, and its exact distribution
  /// (empty unless accumulating).
  void add(double weight, const std::vector<double>& raw_z,
           const std::vector<Index>& samples,
           const std::vector<double>& raw_probabilities);

  NoisyResult finish();

 private:
  NoisyResult result_;
  bool accumulate_probabilities_ = false;
};

}  // namespace atlas::noise
