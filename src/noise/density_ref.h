#pragma once

/// \file density_ref.h
/// Exact density-matrix reference simulator. The trusted oracle for
/// noise: evolves rho = sum_k K_k rho K_k^dagger channel semantics
/// exactly (no sampling), so trajectory averages can be tested for
/// convergence against it. Dense 2^n x 2^n storage caps it at ~10
/// qubits — a *test* oracle, deliberately simple, exactly like
/// sim/reference.h is for the unitary engine.
///
/// Representation: rho is stored row-major as a 2^(2n) amplitude
/// buffer; a gate U is applied as U (row axis, bit positions n..2n-1)
/// followed by conj(U) (column axis, bits 0..n-1), reusing the
/// engine's own apply kernels.

#include <vector>

#include "common/types.h"
#include "ir/circuit.h"
#include "noise/model.h"
#include "sim/state_vector.h"

namespace atlas::noise {

/// Hard cap on the reference's qubit count (16 MiB of amplitudes).
inline constexpr int kMaxDensityQubits = 10;

class DensityMatrix {
 public:
  /// |0...0><0...0| on n qubits (n <= kMaxDensityQubits).
  explicit DensityMatrix(int num_qubits);

  /// |psi><psi| of a pure state.
  static DensityMatrix from_state(const StateVector& psi);

  int num_qubits() const { return num_qubits_; }
  Index dim() const { return Index{1} << num_qubits_; }

  Amp& at(Index row, Index col) { return data_[(row << num_qubits_) | col]; }
  const Amp& at(Index row, Index col) const {
    return data_[(row << num_qubits_) | col];
  }

  /// rho <- U rho U^dagger for a (possibly controlled) gate.
  void apply_gate(const Gate& g);

  /// rho <- sum_k K_k rho K_k^dagger with the channel acting on
  /// `qubits` (channel matrix bit i = qubits[i]).
  void apply_channel(const KrausChannel& channel,
                     const std::vector<Qubit>& qubits);

  /// Applies every gate of `circuit` (no noise).
  void apply_circuit(const Circuit& circuit);

  double trace() const;

  /// Diagonal of rho: exact basis-state probabilities.
  std::vector<double> probabilities() const;

  /// probabilities() pushed through per-qubit readout confusion.
  std::vector<double> probabilities_with_readout(
      const NoiseModel& model) const;

  /// tr(rho Z_q).
  double expectation_z(Qubit q) const;

 private:
  int num_qubits_ = 0;
  std::vector<Amp> data_;  // row-major: index = (row << n) | col
};

/// Exact noisy evolution from |0...0>: every gate of `circuit`
/// followed by the model's channel sites for that gate.
DensityMatrix simulate_density(const Circuit& circuit,
                               const NoiseModel& model);

}  // namespace atlas::noise
