#pragma once

/// \file trajectory.h
/// Stochastic unravelling of a noisy circuit into per-trajectory
/// concrete circuits.
///
/// Fast path (every channel Pauli): sampled Paulis are *unitary*, so a
/// trajectory differs from its siblings only in which Pauli landed at
/// each noise site. The compiler inserts one u3 gate per (site, qubit)
/// whose three angles are fresh engine-reserved symbols; all
/// trajectories share that single twirled circuit — and therefore one
/// CompiledCircuit and one plan-cache entry — and binding a trajectory
/// is just filling the sampled angles into the dense slot table
/// (ir/pauli.h maps Pauli -> u3 angles).
///
/// General path (any non-Pauli channel, e.g. amplitude damping):
/// outcome k of a site is drawn with the channel's a-priori weight
/// q_k = tr(K_k^dagger K_k)/2^a and K_k/sqrt(q_k) is inserted as an
/// explicit (non-unitary) Unitary gate. The trajectory's final norm^2
/// — its *tracked weight* — makes the mixture estimator unbiased:
/// E_q[|phi><phi|] = sum_k K_k rho K_k^dagger exactly. Each trajectory
/// carries its own matrices, so this path re-plans per trajectory (the
/// documented cost of leaving the Pauli family).
///
/// Trajectory t always draws from the counter-based stream
/// rng_stream_seed(seed, t): results are independent of dispatch-pool
/// interleaving.

#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.h"
#include "noise/model.h"

namespace atlas::noise {

/// Prefix of engine-reserved trajectory symbols ("~n<site>q<k><a|b|c>").
/// QASM identifiers cannot produce '~'; programmatic user symbols must
/// not start with it.
inline constexpr const char* kNoiseSymbolPrefix = "~n";

class TrajectoryProgram {
 public:
  /// Expands `model` against `circuit` (validating the rules) and
  /// selects the unravelling path. The model must outlive the program.
  static TrajectoryProgram build(const Circuit& circuit,
                                 const NoiseModel& model);

  bool pauli_fast_path() const { return pauli_fast_path_; }
  int num_sites() const { return static_cast<int>(sites_.size()); }
  const std::vector<NoiseSite>& sites() const { return sites_; }

  /// Fast path only: the shared slot-parameterized twirl circuit.
  const Circuit& twirled() const;

  /// Fast path only: the inserted noise symbols, three per (site,
  /// qubit) in sampling order (theta, phi, lambda triples).
  const std::vector<std::string>& noise_symbols() const {
    return noise_symbols_;
  }

  /// Fast path only: samples trajectory `t` and writes the u3 angles
  /// into `values`: the j-th noise symbol lands at
  /// values[positions[j]]. Deterministic in (seed, t).
  void sample_pauli_angles(std::uint64_t seed, std::uint64_t t,
                           const std::vector<int>& positions,
                           std::vector<double>& values) const;

  /// Lowers trajectory `t` into a concrete circuit (both paths; the
  /// fast path inserts u3 gates with the sampled angles as constants,
  /// so every lowered trajectory shares the twirled circuit's
  /// *structural* fingerprint). Gate parameters of the source circuit
  /// are left as-is; bind user symbols before executing.
  Circuit lower(std::uint64_t seed, std::uint64_t t) const;

  /// As lower(), from an explicit per-site outcome pattern (one index
  /// per site, as produced by sample_outcomes()). Two trajectories
  /// with equal patterns lower to *identical* circuits — the property
  /// the engine's general-Kraus plan memoization keys on.
  Circuit lower_outcomes(const std::vector<int>& outcomes) const;

  /// The sampled outcome index per site for trajectory `t`.
  std::vector<int> sample_outcomes(std::uint64_t seed, std::uint64_t t) const;

 private:
  const Circuit* circuit_ = nullptr;
  std::vector<NoiseSite> sites_;
  bool pauli_fast_path_ = false;
  Circuit twirled_;
  std::vector<std::string> noise_symbols_;
};

}  // namespace atlas::noise
