#include "noise/trajectory.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "ir/pauli.h"

namespace atlas::noise {
namespace {

std::string noise_symbol(int site, int qubit_pos, int angle) {
  static const char suffix[3] = {'a', 'b', 'c'};
  return std::string(kNoiseSymbolPrefix) + std::to_string(site) + "q" +
         std::to_string(qubit_pos) + suffix[angle];
}

/// Draws one outcome index from the channel's sampling weights.
int draw_outcome(const KrausChannel& ch, Rng& rng) {
  const std::vector<double>& w = ch.outcome_weights();
  const double u = rng.uniform();
  double cum = 0;
  int last_positive = -1;
  for (int k = 0; k < static_cast<int>(w.size()); ++k) {
    if (w[k] <= 0) continue;
    cum += w[k];
    last_positive = k;
    if (u < cum) return k;
  }
  // Numerical slack (weights sum to 1 within rounding): the last
  // positive-weight outcome absorbs the residual tail.
  ATLAS_CHECK(last_positive >= 0,
              "channel '" << ch.name() << "' has no positive-weight outcome");
  return last_positive;
}

Matrix scaled(const Matrix& m, double factor) {
  Matrix out = m;
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c) out(r, c) *= factor;
  return out;
}

}  // namespace

TrajectoryProgram TrajectoryProgram::build(const Circuit& circuit,
                                           const NoiseModel& model) {
  TrajectoryProgram prog;
  prog.circuit_ = &circuit;
  prog.sites_ = model.sites_for(circuit);
  prog.pauli_fast_path_ = model.all_pauli();
  if (!prog.pauli_fast_path_) return prog;

  // Build the shared twirl circuit: one u3 per (site, qubit), its
  // angles fresh engine-reserved symbols filled per trajectory.
  Circuit twirled(circuit.num_qubits(), circuit.name().empty()
                                            ? "noisy"
                                            : circuit.name() + "+noise");
  std::size_t next = 0;
  for (int gi = 0; gi < circuit.num_gates(); ++gi) {
    twirled.add(circuit.gate(gi));
    for (; next < prog.sites_.size() && prog.sites_[next].after_gate == gi;
         ++next) {
      const NoiseSite& site = prog.sites_[next];
      for (std::size_t k = 0; k < site.qubits.size(); ++k) {
        Param angles[3];
        for (int a = 0; a < 3; ++a) {
          prog.noise_symbols_.push_back(noise_symbol(
              static_cast<int>(next), static_cast<int>(k), a));
          angles[a] = Param::symbol(prog.noise_symbols_.back());
        }
        twirled.add(
            Gate::u3(site.qubits[k], angles[0], angles[1], angles[2]));
      }
    }
  }
  prog.twirled_ = std::move(twirled);
  return prog;
}

const Circuit& TrajectoryProgram::twirled() const {
  ATLAS_CHECK(pauli_fast_path_,
              "twirled() is only available on the Pauli fast path");
  return twirled_;
}

std::vector<int> TrajectoryProgram::sample_outcomes(std::uint64_t seed,
                                                    std::uint64_t t) const {
  Rng rng = Rng::for_stream(seed, t);
  std::vector<int> outcomes;
  outcomes.reserve(sites_.size());
  for (const NoiseSite& site : sites_)
    outcomes.push_back(draw_outcome(*site.channel, rng));
  return outcomes;
}

void TrajectoryProgram::sample_pauli_angles(
    std::uint64_t seed, std::uint64_t t, const std::vector<int>& positions,
    std::vector<double>& values) const {
  ATLAS_CHECK(pauli_fast_path_,
              "sample_pauli_angles() is only available on the Pauli path");
  ATLAS_CHECK(positions.size() == noise_symbols_.size(),
              "positions size mismatch: " << positions.size() << " vs "
                                          << noise_symbols_.size());
  const std::vector<int> outcomes = sample_outcomes(seed, t);
  std::size_t j = 0;
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const PauliTerm& term =
        sites_[s].channel->pauli_outcomes()[static_cast<std::size_t>(
            outcomes[s])];
    for (std::size_t k = 0; k < sites_[s].qubits.size(); ++k) {
      const PauliAngles a = pauli_u3_angles(term[k]);
      values[static_cast<std::size_t>(positions[j++])] = a.theta;
      values[static_cast<std::size_t>(positions[j++])] = a.phi;
      values[static_cast<std::size_t>(positions[j++])] = a.lambda;
    }
  }
}

Circuit TrajectoryProgram::lower(std::uint64_t seed, std::uint64_t t) const {
  return lower_outcomes(sample_outcomes(seed, t));
}

Circuit TrajectoryProgram::lower_outcomes(
    const std::vector<int>& outcomes) const {
  ATLAS_CHECK(outcomes.size() == sites_.size(),
              "outcome pattern has " << outcomes.size() << " entries but the "
                                     << "program has " << sites_.size()
                                     << " noise sites");
  Circuit out(circuit_->num_qubits(), circuit_->name().empty()
                                          ? "noisy"
                                          : circuit_->name() + "+noise");
  std::size_t next = 0;
  for (int gi = 0; gi < circuit_->num_gates(); ++gi) {
    out.add(circuit_->gate(gi));
    for (; next < sites_.size() && sites_[next].after_gate == gi; ++next) {
      const NoiseSite& site = sites_[next];
      const int k = outcomes[next];
      if (site.channel->is_pauli()) {
        const PauliTerm& term =
            site.channel->pauli_outcomes()[static_cast<std::size_t>(k)];
        for (std::size_t qi = 0; qi < site.qubits.size(); ++qi) {
          const PauliAngles a = pauli_u3_angles(term[qi]);
          out.add(Gate::u3(site.qubits[qi], a.theta, a.phi, a.lambda));
        }
      } else {
        const double q =
            site.channel->outcome_weights()[static_cast<std::size_t>(k)];
        out.add(Gate::unitary(
            site.qubits,
            scaled(site.channel->kraus_ops()[static_cast<std::size_t>(k)],
                   1.0 / std::sqrt(q))));
      }
    }
  }
  return out;
}

}  // namespace atlas::noise
