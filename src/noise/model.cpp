#include "noise/model.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "ir/circuit.h"

namespace atlas::noise {
namespace {

const std::vector<std::string>& known_gate_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (int k = 0; k <= static_cast<int>(GateKind::Unitary); ++k)
      out.push_back(gate_kind_name(static_cast<GateKind>(k)));
    return out;
  }();
  return names;
}

void check_readout(double p01, double p10) {
  ATLAS_CHECK(p01 >= 0 && p01 <= 1,
              "readout p01 must be in [0, 1], got " << p01);
  ATLAS_CHECK(p10 >= 0 && p10 <= 1,
              "readout p10 must be in [0, 1], got " << p10);
}

}  // namespace

NoiseModel& NoiseModel::after_all_gates(KrausChannel ch) {
  Rule r(std::move(ch));
  r.trigger = Rule::Trigger::AllGates;
  rules_.push_back(std::move(r));
  return *this;
}

NoiseModel& NoiseModel::after_gate(const std::string& gate_name,
                                   KrausChannel ch) {
  const auto& names = known_gate_names();
  ATLAS_CHECK(std::find(names.begin(), names.end(), gate_name) != names.end(),
              "unknown gate name '" << gate_name
                                    << "' in NoiseModel::after_gate");
  Rule r(std::move(ch));
  r.trigger = Rule::Trigger::GateKind;
  r.gate_name = gate_name;
  rules_.push_back(std::move(r));
  return *this;
}

NoiseModel& NoiseModel::on_qubit(Qubit q, KrausChannel ch) {
  ATLAS_CHECK(q >= 0, "negative qubit id " << q << " in NoiseModel::on_qubit");
  ATLAS_CHECK(ch.num_qubits() == 1,
              "NoiseModel::on_qubit takes a single-qubit channel; '"
                  << ch.name() << "' acts on " << ch.num_qubits());
  Rule r(std::move(ch));
  r.trigger = Rule::Trigger::OnQubit;
  r.qubit = q;
  rules_.push_back(std::move(r));
  return *this;
}

NoiseModel& NoiseModel::readout_error(Qubit q, double p01, double p10) {
  ATLAS_CHECK(q >= 0, "negative qubit id " << q
                                           << " in NoiseModel::readout_error");
  check_readout(p01, p10);
  for (auto& [qubit, err] : readout_)
    if (qubit == q) {
      err = ReadoutError{p01, p10};
      return *this;
    }
  readout_.push_back({q, ReadoutError{p01, p10}});
  return *this;
}

NoiseModel& NoiseModel::readout_error_all(double p01, double p10) {
  check_readout(p01, p10);
  readout_all_ = ReadoutError{p01, p10};
  has_readout_all_ = true;
  return *this;
}

bool NoiseModel::empty() const {
  return rules_.empty() && !has_readout_error();
}

bool NoiseModel::has_readout_error() const {
  if (has_readout_all_ && !readout_all_.trivial()) return true;
  for (const auto& [q, err] : readout_)
    if (!err.trivial()) return true;
  return false;
}

ReadoutError NoiseModel::readout_for(Qubit q) const {
  for (const auto& [qubit, err] : readout_)
    if (qubit == q) return err;
  return has_readout_all_ ? readout_all_ : ReadoutError{};
}

bool NoiseModel::all_pauli() const {
  for (const Rule& r : rules_)
    if (!r.channel.is_pauli()) return false;
  return true;
}

std::vector<NoiseSite> NoiseModel::sites_for(const Circuit& circuit) const {
  std::vector<NoiseSite> sites;
  for (int gi = 0; gi < circuit.num_gates(); ++gi) {
    const Gate& g = circuit.gate(gi);
    for (const Rule& r : rules_) {
      bool fires = false;
      switch (r.trigger) {
        case Rule::Trigger::AllGates:
          fires = true;
          break;
        case Rule::Trigger::GateKind:
          fires = gate_kind_name(g.kind()) == r.gate_name;
          break;
        case Rule::Trigger::OnQubit:
          fires = g.acts_on(r.qubit);
          break;
      }
      if (!fires) continue;
      if (r.channel.num_qubits() == 1) {
        if (r.trigger == Rule::Trigger::OnQubit) {
          sites.push_back(NoiseSite{&r.channel, {r.qubit}, gi});
        } else {
          for (Qubit q : g.qubits())
            sites.push_back(NoiseSite{&r.channel, {q}, gi});
        }
      } else {
        ATLAS_CHECK(g.num_qubits() == 2,
                    "two-qubit channel '"
                        << r.channel.name() << "' triggered by gate '"
                        << g.to_string() << "' with " << g.num_qubits()
                        << " qubits");
        sites.push_back(
            NoiseSite{&r.channel, {g.qubits()[0], g.qubits()[1]}, gi});
      }
    }
  }
  return sites;
}

std::vector<const KrausChannel*> NoiseModel::channels() const {
  std::vector<const KrausChannel*> out;
  out.reserve(rules_.size());
  for (const Rule& r : rules_) out.push_back(&r.channel);
  return out;
}

}  // namespace atlas::noise
