// The trajectory engine behind Session::run_noisy()/sample_noisy():
// fans trajectories across the session's dispatch pool, streams each
// final state into a small per-trajectory partial (weight, raw Z sums,
// measurement samples, optional exact distribution) so N states are
// never resident at once, and reduces the partials in trajectory-index
// order — floating-point accumulation is deterministic no matter how
// the pool interleaves. Lives in noise/ but defines Session members,
// so the general-Kraus path can reach build_plan() directly and keep
// its per-trajectory plans out of the session's LRU cache.

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/bits.h"
#include "common/error.h"
#include "core/session.h"
#include "exec/queries.h"
#include "noise/model.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "verify/verify.h"
#include "noise/trajectory.h"

namespace atlas {
namespace {

/// Salt separating the measurement-shot streams from the channel-
/// outcome streams of the same trajectory.
constexpr std::uint64_t kMeasureSalt = 0x6d65617375726531ull;

/// Pauli-fast-path trajectories routed through a batched-launch
/// executor go in chunks of this many points: within a chunk every
/// trajectory's state is resident at once (the batch schedule needs
/// them), so the chunk bounds peak memory the way the streaming
/// per-trajectory path did, while still amortizing per-point executor
/// setup across the chunk.
constexpr std::size_t kTrajectoryBatchChunk = 32;

/// General-Kraus trajectory plans are memoized on the sampled outcome
/// *pattern* when the whole pattern space — prod over sites of the
/// channel's outcome count — is at most this large: equal patterns
/// lower to identical circuits, so a batch of N trajectories then
/// builds at most this many plans instead of N. Gating on the product
/// (not the site count) also bounds the memo's memory: a larger
/// pattern space means repeats are rare and the map would accumulate
/// one full ExecutionPlan per trajectory as dead weight.
constexpr std::uint64_t kKrausPatternMemoMaxPatterns = 512;

/// The pattern-space size of `sites`, saturating at `cap + 1`.
std::uint64_t pattern_space(const std::vector<noise::NoiseSite>& sites,
                            std::uint64_t cap) {
  std::uint64_t total = 1;
  for (const noise::NoiseSite& site : sites) {
    total *= static_cast<std::uint64_t>(site.channel->outcome_weights().size());
    if (total > cap) return cap + 1;
  }
  return total;
}

struct TrajectoryPartial {
  double weight = 1.0;
  std::vector<double> raw_z;
  std::vector<Index> samples;
  std::vector<double> probs;
};

/// The non-trivial per-qubit readout confusions of a model, resolved
/// once per run — readout_for() is a linear scan that must stay out of
/// the shots-by-qubits inner loop of every trajectory.
std::vector<std::pair<Qubit, noise::ReadoutError>> readout_plan(
    const noise::NoiseModel& model, int num_qubits) {
  std::vector<std::pair<Qubit, noise::ReadoutError>> plan;
  for (Qubit q = 0; q < num_qubits; ++q) {
    const noise::ReadoutError err = model.readout_for(q);
    if (!err.trivial()) plan.emplace_back(q, err);
  }
  return plan;
}

/// Streams one finished trajectory state into its partial.
TrajectoryPartial partial_of(
    const exec::DistState& state,
    const std::vector<std::pair<Qubit, noise::ReadoutError>>& readout,
    int shots, bool accumulate_probs, std::uint64_t seed, std::uint64_t t) {
  const int n = state.num_qubits();
  TrajectoryPartial p;
  exec::StateMoments moments = exec::state_moments(state);
  p.weight = moments.norm_sq;
  p.raw_z = std::move(moments.z);
  if (shots > 0) {
    Rng rng = Rng::for_stream(seed ^ kMeasureSalt, t);
    p.samples = exec::sample(state, shots, rng, p.weight);
    for (Index& s : p.samples)
      for (const auto& [q, err] : readout) {
        const double flip = test_bit(s, q) ? err.p10 : err.p01;
        if (flip > 0 && rng.uniform() < flip) s ^= bit(q);
      }
  }
  if (accumulate_probs) {
    std::vector<Qubit> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    p.probs = exec::marginal_distribution(state, all);
  }
  return p;
}

}  // namespace

noise::NoisyResult Session::run_noisy(
    const Circuit& circuit, const noise::NoiseModel& model,
    const noise::NoisyRunOptions& options) const {
  ATLAS_CHECK(options.trajectories >= 1,
              "run_noisy needs trajectories >= 1, got "
                  << options.trajectories);
  ATLAS_CHECK(options.shots >= 0,
              "run_noisy shots is negative: " << options.shots);
  if (options.accumulate_probabilities)
    ATLAS_CHECK(circuit.num_qubits() <= noise::kMaxProbabilityQubits,
                "accumulate_probabilities is capped at "
                    << noise::kMaxProbabilityQubits << " qubits, circuit has "
                    << circuit.num_qubits());

  // The noise-model contract (Kraus shapes always; CPTP and readout
  // stochasticity numerics at paranoid) is checked once up front —
  // trajectory sampling assumes it.
  if (config_.verify_level != verify::VerifyLevel::off)
    verify::check(verify::verify_noise_model(model, circuit.num_qubits(),
                                             config_.verify_level),
                  ErrorCode::invalid_argument);

  const std::uint64_t seed = options.seed ? options.seed : config_.seed;
  const noise::TrajectoryProgram prog =
      noise::TrajectoryProgram::build(circuit, model);
  const auto readout = readout_plan(model, circuit.num_qubits());
  const std::size_t count = static_cast<std::size_t>(options.trajectories);
  std::vector<TrajectoryPartial> partials(count);

  // Trajectory fan-out telemetry: one batch, `count` unravellings.
  {
    static obs::Counter& batches = obs::counter(obs::names::kNoiseBatches);
    static obs::Counter& trajectories =
        obs::counter(obs::names::kNoiseTrajectories);
    batches.inc();
    trajectories.add(count);
  }
  obs::TraceSpan batch_span(obs::names::kSpanNoiseBatch,
                            static_cast<std::int64_t>(count));

  if (prog.pauli_fast_path()) {
    // One compile, one plan-cache entry; every trajectory re-binds the
    // same CompiledCircuit through the dense slot table.
    const CompiledCircuit compiled = compile(prog.twirled());
    std::unordered_map<std::string, std::size_t> flat_index;
    for (std::size_t j = 0; j < prog.noise_symbols().size(); ++j)
      flat_index[prog.noise_symbols()[j]] = j;
    std::vector<int> positions(prog.noise_symbols().size(), -1);
    std::vector<double> base(compiled.symbols().size(), 0.0);
    for (std::size_t i = 0; i < compiled.symbols().size(); ++i) {
      const std::string& sym = compiled.symbols()[i];
      const auto it = flat_index.find(sym);
      if (it != flat_index.end())
        positions[it->second] = static_cast<int>(i);
      else
        base[i] = options.binding.at(sym);  // throws naming the symbol
    }
    if (executor_->batched_launches(cluster_.config())) {
      // Batched launches: each chunk of trajectories ships as one
      // command list per stage (constant kernels bind once, every
      // trajectory enqueues only its sampled-angle delta). Seeds,
      // states, and sample streams are bit-identical to the
      // per-trajectory path — batching is scheduling, not semantics.
      for (std::size_t begin = 0; begin < count;
           begin += kTrajectoryBatchChunk) {
        const std::size_t n = std::min(kTrajectoryBatchChunk, count - begin);
        std::vector<SlotValues> chunk(n);
        dispatch_each(n, [&](std::size_t j) {
          std::vector<double> values = base;
          prog.sample_pauli_angles(seed, begin + j, positions, values);
          chunk[j] = compiled.slot_values_from(values);
        });
        const std::vector<SimulationResult> results =
            run_batch_with_slots(compiled, std::move(chunk));
        dispatch_each(n, [&](std::size_t j) {
          partials[begin + j] =
              partial_of(results[j].state, readout, options.shots,
                         options.accumulate_probabilities, seed, begin + j);
        });
      }
    } else {
      dispatch_each(count, [&](std::size_t t) {
        std::vector<double> values = base;
        prog.sample_pauli_angles(seed, t, positions, values);
        const SimulationResult r = run(compiled, values);
        partials[t] = partial_of(r.state, readout, options.shots,
                                 options.accumulate_probabilities, seed, t);
      });
    }
  } else {
    // General Kraus: each trajectory carries its own sampled operator
    // matrices, so it is lowered and planned per outcome *pattern* —
    // bypassing the LRU plan cache on purpose (N structurally distinct
    // entries would evict the session's real plans). Equal patterns
    // lower to identical circuits, so a run-local memo (small pattern
    // spaces only — the bound caps the memo's plan count) collapses N
    // trajectory plans to the number of distinct patterns actually
    // drawn; a racing rebuild of the same pattern is harmless — both
    // plans are identical — and the first insertion wins. The final
    // norm^2 is the trajectory's weight; partial_of() threads it
    // through sampling and the Builder keeps the mixture estimator
    // unbiased.
    const bool memoize =
        pattern_space(prog.sites(), kKrausPatternMemoMaxPatterns) <=
        kKrausPatternMemoMaxPatterns;
    std::mutex memo_mu;
    std::map<std::vector<int>, std::shared_ptr<const exec::ExecutionPlan>>
        memo;
    dispatch_each(count, [&](std::size_t t) {
      const std::vector<int> outcomes = prog.sample_outcomes(seed, t);
      std::shared_ptr<const exec::ExecutionPlan> plan;
      if (memoize) {
        std::lock_guard<std::mutex> lock(memo_mu);
        const auto it = memo.find(outcomes);
        if (it != memo.end()) plan = it->second;
      }
      if (!plan) {
        Circuit lowered = prog.lower_outcomes(outcomes);
        if (lowered.is_parameterized())
          lowered = lowered.bind(options.binding);
        plan = std::make_shared<const exec::ExecutionPlan>(
            build_plan(lowered));
        if (memoize) {
          std::lock_guard<std::mutex> lock(memo_mu);
          plan = memo.emplace(outcomes, std::move(plan)).first->second;
        }
      }
      exec::DistState state = executor_->initial_state(*plan, cluster_);
      executor_->execute(*plan, cluster_, state, ParamEnv{});
      partials[t] = partial_of(state, readout, options.shots,
                               options.accumulate_probabilities, seed, t);
    });
  }

  noise::NoisyResultBuilder builder(circuit.num_qubits(),
                                      prog.pauli_fast_path(), options.shots,
                                      options.accumulate_probabilities,
                                      readout);
  for (const TrajectoryPartial& p : partials)
    builder.add(p.weight, p.raw_z, p.samples, p.probs);
  return builder.finish();
}

noise::NoisyResult Session::sample_noisy(const Circuit& circuit,
                                         const noise::NoiseModel& model,
                                         int shots,
                                         noise::NoisyRunOptions options) const {
  ATLAS_CHECK(shots >= 1, "sample_noisy needs shots >= 1, got " << shots);
  options.shots = shots;
  return run_noisy(circuit, model, options);
}

}  // namespace atlas
