#include "noise/result.h"

#include <array>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"

namespace atlas::noise {
namespace {

Estimate estimate_of(double sum, double sum_sq, std::uint64_t n) {
  Estimate e;
  if (n == 0) return e;
  const double mean = sum / static_cast<double>(n);
  e.value = mean;
  if (n > 1) {
    const double var =
        (sum_sq - static_cast<double>(n) * mean * mean) /
        static_cast<double>(n - 1);
    e.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(n));
  }
  return e;
}

}  // namespace

Estimate NoisyResult::expectation_z(Qubit q) const {
  ATLAS_CHECK(q >= 0 && q < num_qubits_, "qubit " << q << " out of range");
  return estimate_of(z_sum_[static_cast<std::size_t>(q)],
                     z_sum_sq_[static_cast<std::size_t>(q)], trajectories_);
}

double NoisyResult::total_shots() const {
  return static_cast<double>(trajectories_) * shots_;
}

double NoisyResult::shot_probability(Index basis) const {
  ATLAS_CHECK(shots_ > 0, "run had no measurement shots; set "
                          "NoisyRunOptions::shots or use sample_noisy()");
  const auto it = counts_.find(basis);
  return it == counts_.end() ? 0.0 : it->second / total_shots();
}

double NoisyResult::corrected_probability(Index basis) const {
  ATLAS_CHECK(shots_ > 0, "run had no measurement shots; set "
                          "NoisyRunOptions::shots or use sample_noisy()");
  // Per-qubit inverse confusion: C^{-1} = [[1-p10, -p10], [-p01,
  // 1-p01]] / (1 - p01 - p10); entry [true][measured].
  std::vector<std::array<std::array<double, 2>, 2>> inv;
  inv.reserve(readout_.size());
  Index modeled = 0;
  for (const auto& [q, err] : readout_) {
    const double det = 1.0 - err.p01 - err.p10;
    ATLAS_CHECK(std::abs(det) > 1e-9,
                "readout confusion on qubit "
                    << q << " is singular (p01 + p10 = 1); the inverse "
                    << "correction is undefined");
    inv.push_back({{{(1.0 - err.p10) / det, -err.p10 / det},
                    {-err.p01 / det, (1.0 - err.p01) / det}}});
    modeled |= bit(q);
  }
  double acc = 0;
  for (const auto& [s, w] : counts_) {
    // Unmodeled qubits carry no confusion: their measured bits must
    // already match the queried basis state.
    if ((s ^ basis) & ~modeled) continue;
    double f = w;
    for (std::size_t i = 0; i < readout_.size(); ++i) {
      const Qubit q = readout_[i].first;
      f *= inv[i][test_bit(basis, q) ? 1 : 0][test_bit(s, q) ? 1 : 0];
    }
    acc += f;
  }
  return acc / total_shots();
}

double NoisyResult::corrected_expectation_z(Qubit q) const {
  ATLAS_CHECK(q >= 0 && q < num_qubits_, "qubit " << q << " out of range");
  ATLAS_CHECK(shots_ > 0, "run had no measurement shots; set "
                          "NoisyRunOptions::shots or use sample_noisy()");
  double z = 0;
  for (const auto& [s, w] : counts_) z += w * (test_bit(s, q) ? -1.0 : 1.0);
  z /= total_shots();
  for (const auto& [rq, err] : readout_) {
    if (rq != q) continue;
    const double det = 1.0 - err.p01 - err.p10;
    ATLAS_CHECK(std::abs(det) > 1e-9,
                "readout confusion on qubit "
                    << q << " is singular (p01 + p10 = 1); the inverse "
                    << "correction is undefined");
    return (z + err.p01 - err.p10) / det;
  }
  return z;  // no modeled confusion on q: counts are already unbiased
}

Estimate NoisyResult::probability(Index basis) const {
  ATLAS_CHECK(!prob_sum_.empty(),
              "probabilities were not accumulated; set "
              "NoisyRunOptions::accumulate_probabilities");
  ATLAS_CHECK(basis < prob_sum_.size(), "basis state out of range");
  return estimate_of(prob_sum_[basis], prob_sum_sq_[basis], trajectories_);
}

std::vector<double> NoisyResult::probabilities() const {
  std::vector<double> out(prob_sum_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = prob_sum_[i] / static_cast<double>(trajectories_);
  return out;
}

double NoisyResult::mean_weight() const {
  double total = 0;
  for (double w : weights_) total += w;
  return weights_.empty() ? 0.0 : total / static_cast<double>(weights_.size());
}

NoisyResultBuilder::NoisyResultBuilder(
    int num_qubits, bool pauli_fast_path, int shots,
    bool accumulate_probabilities,
    std::vector<std::pair<Qubit, ReadoutError>> readout)
    : accumulate_probabilities_(accumulate_probabilities) {
  result_.num_qubits_ = num_qubits;
  result_.pauli_fast_path_ = pauli_fast_path;
  result_.shots_ = shots;
  result_.readout_ = std::move(readout);
  result_.z_sum_.assign(static_cast<std::size_t>(num_qubits), 0.0);
  result_.z_sum_sq_.assign(static_cast<std::size_t>(num_qubits), 0.0);
  if (accumulate_probabilities) {
    const std::size_t dim = std::size_t{1} << num_qubits;
    result_.prob_sum_.assign(dim, 0.0);
    result_.prob_sum_sq_.assign(dim, 0.0);
  }
}

void NoisyResultBuilder::add(double weight, const std::vector<double>& raw_z,
                             const std::vector<Index>& samples,
                             const std::vector<double>& raw_probabilities) {
  ++result_.trajectories_;
  result_.weights_.push_back(weight);
  for (std::size_t q = 0; q < raw_z.size(); ++q) {
    result_.z_sum_[q] += raw_z[q];
    result_.z_sum_sq_[q] += raw_z[q] * raw_z[q];
  }
  for (Index s : samples) result_.counts_[s] += weight;
  if (accumulate_probabilities_) {
    ATLAS_CHECK(raw_probabilities.size() == result_.prob_sum_.size(),
                "trajectory distribution size mismatch");
    for (std::size_t i = 0; i < raw_probabilities.size(); ++i) {
      result_.prob_sum_[i] += raw_probabilities[i];
      result_.prob_sum_sq_[i] += raw_probabilities[i] * raw_probabilities[i];
    }
  }
}

NoisyResult NoisyResultBuilder::finish() { return std::move(result_); }

}  // namespace atlas::noise
