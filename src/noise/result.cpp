#include "noise/result.h"

#include <cmath>

#include "common/error.h"

namespace atlas::noise {
namespace {

Estimate estimate_of(double sum, double sum_sq, std::uint64_t n) {
  Estimate e;
  if (n == 0) return e;
  const double mean = sum / static_cast<double>(n);
  e.value = mean;
  if (n > 1) {
    const double var =
        (sum_sq - static_cast<double>(n) * mean * mean) /
        static_cast<double>(n - 1);
    e.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(n));
  }
  return e;
}

}  // namespace

Estimate NoisyResult::expectation_z(Qubit q) const {
  ATLAS_CHECK(q >= 0 && q < num_qubits_, "qubit " << q << " out of range");
  return estimate_of(z_sum_[static_cast<std::size_t>(q)],
                     z_sum_sq_[static_cast<std::size_t>(q)], trajectories_);
}

double NoisyResult::total_shots() const {
  return static_cast<double>(trajectories_) * shots_;
}

double NoisyResult::shot_probability(Index basis) const {
  ATLAS_CHECK(shots_ > 0, "run had no measurement shots; set "
                          "NoisyRunOptions::shots or use sample_noisy()");
  const auto it = counts_.find(basis);
  return it == counts_.end() ? 0.0 : it->second / total_shots();
}

Estimate NoisyResult::probability(Index basis) const {
  ATLAS_CHECK(!prob_sum_.empty(),
              "probabilities were not accumulated; set "
              "NoisyRunOptions::accumulate_probabilities");
  ATLAS_CHECK(basis < prob_sum_.size(), "basis state out of range");
  return estimate_of(prob_sum_[basis], prob_sum_sq_[basis], trajectories_);
}

std::vector<double> NoisyResult::probabilities() const {
  std::vector<double> out(prob_sum_.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = prob_sum_[i] / static_cast<double>(trajectories_);
  return out;
}

double NoisyResult::mean_weight() const {
  double total = 0;
  for (double w : weights_) total += w;
  return weights_.empty() ? 0.0 : total / static_cast<double>(weights_.size());
}

NoisyResultBuilder::NoisyResultBuilder(int num_qubits, bool pauli_fast_path,
                                       int shots,
                                       bool accumulate_probabilities)
    : accumulate_probabilities_(accumulate_probabilities) {
  result_.num_qubits_ = num_qubits;
  result_.pauli_fast_path_ = pauli_fast_path;
  result_.shots_ = shots;
  result_.z_sum_.assign(static_cast<std::size_t>(num_qubits), 0.0);
  result_.z_sum_sq_.assign(static_cast<std::size_t>(num_qubits), 0.0);
  if (accumulate_probabilities) {
    const std::size_t dim = std::size_t{1} << num_qubits;
    result_.prob_sum_.assign(dim, 0.0);
    result_.prob_sum_sq_.assign(dim, 0.0);
  }
}

void NoisyResultBuilder::add(double weight, const std::vector<double>& raw_z,
                             const std::vector<Index>& samples,
                             const std::vector<double>& raw_probabilities) {
  ++result_.trajectories_;
  result_.weights_.push_back(weight);
  for (std::size_t q = 0; q < raw_z.size(); ++q) {
    result_.z_sum_[q] += raw_z[q];
    result_.z_sum_sq_[q] += raw_z[q] * raw_z[q];
  }
  for (Index s : samples) result_.counts_[s] += weight;
  if (accumulate_probabilities_) {
    ATLAS_CHECK(raw_probabilities.size() == result_.prob_sum_.size(),
                "trajectory distribution size mismatch");
    for (std::size_t i = 0; i < raw_probabilities.size(); ++i) {
      result_.prob_sum_[i] += raw_probabilities[i];
      result_.prob_sum_sq_[i] += raw_probabilities[i] * raw_probabilities[i];
    }
  }
}

NoisyResult NoisyResultBuilder::finish() { return std::move(result_); }

}  // namespace atlas::noise
