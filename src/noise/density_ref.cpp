#include "noise/density_ref.h"

#include <cmath>

#include "common/bits.h"
#include "common/error.h"
#include "sim/apply.h"

namespace atlas::noise {
namespace {

Matrix conjugate(const Matrix& m) {
  Matrix out = m;
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c) out(r, c) = std::conj(out(r, c));
  return out;
}

/// rho -> A rho B^dagger over the flattened 2^(2n) buffer: A on the
/// row bits [n, 2n), conj(B) on the column bits [0, n). `bits[i]` is
/// the qubit matching matrix bit i.
void apply_two_sided(std::vector<Amp>& data, int n, const Matrix& a,
                     const Matrix& b, const std::vector<Qubit>& qubits) {
  std::vector<int> row_bits, col_bits;
  row_bits.reserve(qubits.size());
  col_bits.reserve(qubits.size());
  for (Qubit q : qubits) {
    row_bits.push_back(n + q);
    col_bits.push_back(q);
  }
  const Index size = Index{1} << (2 * n);
  apply_matrix(data.data(), size, row_bits, a);
  apply_matrix(data.data(), size, col_bits, conjugate(b));
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits) : num_qubits_(num_qubits) {
  ATLAS_CHECK(num_qubits >= 1 && num_qubits <= kMaxDensityQubits,
              "DensityMatrix supports 1.." << kMaxDensityQubits
                                           << " qubits, got " << num_qubits);
  data_.assign(Index{1} << (2 * num_qubits), Amp{});
  data_[0] = Amp(1, 0);
}

DensityMatrix DensityMatrix::from_state(const StateVector& psi) {
  DensityMatrix rho(psi.num_qubits());
  const Index d = rho.dim();
  for (Index r = 0; r < d; ++r)
    for (Index c = 0; c < d; ++c) rho.at(r, c) = psi[r] * std::conj(psi[c]);
  return rho;
}

void DensityMatrix::apply_gate(const Gate& g) {
  const Matrix u = g.full_matrix();
  apply_two_sided(data_, num_qubits_, u, u, g.qubits());
}

void DensityMatrix::apply_channel(const KrausChannel& channel,
                                  const std::vector<Qubit>& qubits) {
  ATLAS_CHECK(static_cast<int>(qubits.size()) == channel.num_qubits(),
              "channel '" << channel.name() << "' acts on "
                          << channel.num_qubits() << " qubits, got "
                          << qubits.size());
  for (Qubit q : qubits)
    ATLAS_CHECK(q >= 0 && q < num_qubits_,
                "channel qubit " << q << " out of range");
  std::vector<Amp> sum(data_.size(), Amp{});
  for (const Matrix& k : channel.kraus_ops()) {
    std::vector<Amp> term = data_;
    apply_two_sided(term, num_qubits_, k, k, qubits);
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += term[i];
  }
  data_ = std::move(sum);
}

void DensityMatrix::apply_circuit(const Circuit& circuit) {
  ATLAS_CHECK(circuit.num_qubits() == num_qubits_,
              "circuit has " << circuit.num_qubits() << " qubits, rho has "
                             << num_qubits_);
  for (const Gate& g : circuit.gates()) apply_gate(g);
}

double DensityMatrix::trace() const {
  double tr = 0;
  for (Index i = 0; i < dim(); ++i) tr += at(i, i).real();
  return tr;
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> p(dim());
  for (Index i = 0; i < dim(); ++i) p[i] = at(i, i).real();
  return p;
}

std::vector<double> DensityMatrix::probabilities_with_readout(
    const NoiseModel& model) const {
  std::vector<double> p = probabilities();
  for (Qubit q = 0; q < num_qubits_; ++q) {
    const ReadoutError err = model.readout_for(q);
    if (err.trivial()) continue;
    for (Index i = 0; i < p.size(); ++i) {
      if (test_bit(i, q)) continue;
      const Index j = i | bit(q);
      const double p0 = p[i], p1 = p[j];
      p[i] = (1 - err.p01) * p0 + err.p10 * p1;
      p[j] = err.p01 * p0 + (1 - err.p10) * p1;
    }
  }
  return p;
}

double DensityMatrix::expectation_z(Qubit q) const {
  ATLAS_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  double e = 0;
  for (Index i = 0; i < dim(); ++i)
    e += (test_bit(i, q) ? -1.0 : 1.0) * at(i, i).real();
  return e;
}

DensityMatrix simulate_density(const Circuit& circuit,
                               const NoiseModel& model) {
  DensityMatrix rho(circuit.num_qubits());
  const std::vector<NoiseSite> sites = model.sites_for(circuit);
  std::size_t next = 0;
  for (int gi = 0; gi < circuit.num_gates(); ++gi) {
    rho.apply_gate(circuit.gate(gi));
    while (next < sites.size() && sites[next].after_gate == gi) {
      rho.apply_channel(*sites[next].channel, sites[next].qubits);
      ++next;
    }
  }
  return rho;
}

}  // namespace atlas::noise
