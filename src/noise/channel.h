#pragma once

/// \file channel.h
/// Quantum noise channels in Kraus form: a completely-positive trace-
/// preserving map rho -> sum_k K_k rho K_k^dagger. Channels are built
/// either from explicit Kraus operators (validated for completeness
/// sum K^dagger K = I) or as *Pauli channels* — every operator a
/// scaled Pauli string — which the trajectory compiler unravels into
/// purely unitary trajectories (the fast path: one shared execution
/// plan for the whole batch). Built-ins cover the standard single-
/// qubit menagerie plus two-qubit depolarizing.

#include <string>
#include <vector>

#include "ir/matrix.h"
#include "ir/pauli.h"

namespace atlas::noise {

class KrausChannel {
 public:
  /// General channel from explicit Kraus operators (all square
  /// 2^arity, arity in {1, 2}). Throws atlas::Error when the operators
  /// are malformed or violate completeness (sum K^dagger K = I within
  /// 1e-8).
  static KrausChannel kraus(std::string name, std::vector<Matrix> ops);

  /// Pauli channel: outcome i applies the Pauli string `outcomes[i]`
  /// (one Pauli per channel qubit) with probability `probs[i]`.
  /// Probabilities must be in [0, 1] and sum to 1 within 1e-9.
  static KrausChannel pauli(std::string name, std::vector<PauliTerm> outcomes,
                            std::vector<double> probs);

  /// \name Built-in channels (p / gamma / lambda validated to [0, 1])
  /// @{
  /// I with 1-p, else X/Y/Z uniformly: the single-qubit depolarizer.
  static KrausChannel depolarizing(double p);
  /// Two-qubit depolarizing: I (x) I with 1-p, else one of the 15
  /// non-identity Pauli pairs uniformly.
  static KrausChannel depolarizing2(double p);
  static KrausChannel bit_flip(double p);          ///< X with p
  static KrausChannel phase_flip(double p);        ///< Z with p
  static KrausChannel bit_phase_flip(double p);    ///< Y with p
  /// T1 decay: K0 = diag(1, sqrt(1-gamma)), K1 = sqrt(gamma)|0><1|.
  /// Not a Pauli channel — trajectories fall back to norm-tracked
  /// non-unitary resampling.
  static KrausChannel amplitude_damping(double gamma);
  /// Pure T2 dephasing: K0 = diag(1, sqrt(1-lambda)),
  /// K1 = sqrt(lambda)|1><1|. Not a Pauli channel.
  static KrausChannel phase_damping(double lambda);
  /// @}

  const std::string& name() const { return name_; }
  /// Channel arity (qubits acted on): 1 or 2.
  int num_qubits() const { return num_qubits_; }
  int num_outcomes() const { return static_cast<int>(ops_.size()); }

  /// True when every Kraus operator is a scaled Pauli string — the
  /// unitary-unravelling fast path.
  bool is_pauli() const { return !pauli_outcomes_.empty(); }

  /// The Kraus operators (Pauli channels included: sqrt(p_i) * P_i).
  const std::vector<Matrix>& kraus_ops() const { return ops_; }

  /// Pauli channels only: outcome strings and their probabilities.
  const std::vector<PauliTerm>& pauli_outcomes() const {
    return pauli_outcomes_;
  }
  const std::vector<double>& pauli_probs() const { return pauli_probs_; }

  /// Sampling weights for the general-Kraus unravelling: q_k =
  /// tr(K_k^dagger K_k) / 2^arity (sums to 1 by completeness). The
  /// trajectory inserts K_k / sqrt(q_k) and tracks the resulting state
  /// norm as its weight, which keeps the estimator unbiased.
  const std::vector<double>& outcome_weights() const { return weights_; }

 private:
  KrausChannel() = default;

  std::string name_;
  int num_qubits_ = 1;
  std::vector<Matrix> ops_;
  std::vector<double> weights_;
  std::vector<PauliTerm> pauli_outcomes_;  // empty unless is_pauli()
  std::vector<double> pauli_probs_;
};

/// Per-qubit classical readout confusion: P(read 1 | prepared 0) and
/// P(read 0 | prepared 1).
struct ReadoutError {
  double p01 = 0;
  double p10 = 0;
  bool trivial() const { return p01 == 0 && p10 == 0; }
};

}  // namespace atlas::noise
