#include "noise/channel.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace atlas::noise {
namespace {

void check_probability(const char* what, double p) {
  ATLAS_CHECK(p >= 0.0 && p <= 1.0,
              "" << what << " probability must be in [0, 1], got " << p);
}

Matrix scaled(const Matrix& m, double factor) {
  Matrix out = m;
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c) out(r, c) *= factor;
  return out;
}

/// Kraus matrix of a Pauli string (term[i] acts on matrix bit i).
Matrix pauli_term_matrix(const PauliTerm& term) {
  Matrix m = pauli_matrix(term[0]);
  for (std::size_t i = 1; i < term.size(); ++i)
    m = pauli_matrix(term[i]).kron(m);
  return m;
}

}  // namespace

KrausChannel KrausChannel::kraus(std::string name, std::vector<Matrix> ops) {
  ATLAS_CHECK(!ops.empty(), "channel '" << name << "' has no Kraus operators");
  const int dim = ops.front().rows();
  ATLAS_CHECK(dim == 2 || dim == 4, "channel '"
                                        << name << "' operators must be 2x2 "
                                        << "or 4x4, got " << dim << "x"
                                        << ops.front().cols());
  KrausChannel ch;
  ch.name_ = std::move(name);
  ch.num_qubits_ = dim == 2 ? 1 : 2;
  Matrix completeness(dim, dim);
  for (const Matrix& k : ops) {
    ATLAS_CHECK(k.rows() == dim && k.cols() == dim,
                "channel '" << ch.name_ << "' has mixed operator shapes");
    const Matrix kdk = k.dagger() * k;
    for (int r = 0; r < dim; ++r)
      for (int c = 0; c < dim; ++c) completeness(r, c) += kdk(r, c);
  }
  ATLAS_CHECK(
      Matrix::max_abs_diff(completeness, Matrix::identity(dim)) < 1e-8,
      "channel '" << ch.name_
                  << "' is not trace preserving (sum K^dagger K != I)");
  ch.weights_.reserve(ops.size());
  for (const Matrix& k : ops) {
    double tr = 0;
    for (int r = 0; r < dim; ++r)
      for (int c = 0; c < dim; ++c) tr += std::norm(k(r, c));
    ch.weights_.push_back(tr / dim);
  }
  ch.ops_ = std::move(ops);
  return ch;
}

KrausChannel KrausChannel::pauli(std::string name,
                                 std::vector<PauliTerm> outcomes,
                                 std::vector<double> probs) {
  ATLAS_CHECK(!outcomes.empty(),
              "Pauli channel '" << name << "' has no outcomes");
  ATLAS_CHECK(outcomes.size() == probs.size(),
              "Pauli channel '" << name << "': " << outcomes.size()
                                << " outcomes but " << probs.size()
                                << " probabilities");
  const std::size_t arity = outcomes.front().size();
  ATLAS_CHECK(arity == 1 || arity == 2,
              "Pauli channel '" << name << "' must act on 1 or 2 qubits, got "
                                << arity);
  double total = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ATLAS_CHECK(outcomes[i].size() == arity,
                "Pauli channel '" << name << "' has mixed outcome arities");
    check_probability(name.c_str(), probs[i]);
    total += probs[i];
  }
  ATLAS_CHECK(std::abs(total - 1.0) < 1e-9,
              "Pauli channel '" << name << "' probabilities sum to " << total
                                << ", expected 1");

  KrausChannel ch;
  ch.name_ = std::move(name);
  ch.num_qubits_ = static_cast<int>(arity);
  ch.ops_.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    ch.ops_.push_back(
        scaled(pauli_term_matrix(outcomes[i]), std::sqrt(probs[i])));
  ch.weights_ = probs;
  ch.pauli_outcomes_ = std::move(outcomes);
  ch.pauli_probs_ = std::move(probs);
  return ch;
}

KrausChannel KrausChannel::depolarizing(double p) {
  check_probability("depolarizing", p);
  return pauli("depolarizing",
               {{Pauli::I}, {Pauli::X}, {Pauli::Y}, {Pauli::Z}},
               {1 - p, p / 3, p / 3, p / 3});
}

KrausChannel KrausChannel::depolarizing2(double p) {
  check_probability("depolarizing2", p);
  std::vector<PauliTerm> outcomes;
  std::vector<double> probs;
  const Pauli paulis[4] = {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z};
  for (Pauli a : paulis)
    for (Pauli b : paulis) {
      outcomes.push_back({a, b});
      probs.push_back(a == Pauli::I && b == Pauli::I ? 1 - p : p / 15);
    }
  return pauli("depolarizing2", std::move(outcomes), std::move(probs));
}

KrausChannel KrausChannel::bit_flip(double p) {
  check_probability("bit_flip", p);
  return pauli("bit_flip", {{Pauli::I}, {Pauli::X}}, {1 - p, p});
}

KrausChannel KrausChannel::phase_flip(double p) {
  check_probability("phase_flip", p);
  return pauli("phase_flip", {{Pauli::I}, {Pauli::Z}}, {1 - p, p});
}

KrausChannel KrausChannel::bit_phase_flip(double p) {
  check_probability("bit_phase_flip", p);
  return pauli("bit_phase_flip", {{Pauli::I}, {Pauli::Y}}, {1 - p, p});
}

KrausChannel KrausChannel::amplitude_damping(double gamma) {
  check_probability("amplitude_damping", gamma);
  KrausChannel ch = kraus(
      "amplitude_damping",
      {Matrix::square(2, {1, 0, 0, std::sqrt(1 - gamma)}),
       Matrix::square(2, {0, std::sqrt(gamma), 0, 0})});
  return ch;
}

KrausChannel KrausChannel::phase_damping(double lambda) {
  check_probability("phase_damping", lambda);
  return kraus("phase_damping",
               {Matrix::square(2, {1, 0, 0, std::sqrt(1 - lambda)}),
                Matrix::square(2, {0, 0, 0, std::sqrt(lambda)})});
}

}  // namespace atlas::noise
