#pragma once

/// \file model.h
/// Attaches Kraus channels to a circuit. A NoiseModel is a set of
/// rules — after every gate, after gates of one kind, after gates
/// touching one qubit — plus per-qubit readout confusion; sites_for()
/// expands the rules against a concrete circuit into the ordered list
/// of channel applications the trajectory compiler (noise/trajectory.h)
/// and the exact density reference (noise/density_ref.h) both consume,
/// so the two semantics can never drift apart.
///
/// Rules with single-qubit channels apply the channel independently to
/// every qubit the triggering gate acts on; two-qubit channels require
/// a two-qubit trigger and act on its qubit pair.

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "noise/channel.h"

namespace atlas {
class Circuit;
}

namespace atlas::noise {

/// One concrete channel application: `channel` (owned by the model —
/// valid while the model is alive and no further rules are added)
/// acting on `qubits` right after circuit gate `after_gate`.
struct NoiseSite {
  const KrausChannel* channel = nullptr;
  std::vector<Qubit> qubits;
  int after_gate = 0;
};

class NoiseModel {
 public:
  /// Applies `ch` after every gate (see file comment for arity rules).
  NoiseModel& after_all_gates(KrausChannel ch);

  /// Applies `ch` after every gate whose kind name is `gate_name`
  /// ("h", "cx", ...; validated against the gate library).
  NoiseModel& after_gate(const std::string& gate_name, KrausChannel ch);

  /// Applies the single-qubit `ch` to qubit `q` after every gate that
  /// acts on `q`. Throws for multi-qubit channels.
  NoiseModel& on_qubit(Qubit q, KrausChannel ch);

  /// Classical readout confusion on qubit `q`: p01 = P(read 1 |
  /// prepared 0), p10 = P(read 0 | prepared 1). Applied to measurement
  /// samples (counts), not to amplitude-level observables.
  NoiseModel& readout_error(Qubit q, double p01, double p10);

  /// Readout confusion applied to every qubit not covered by a
  /// per-qubit entry.
  NoiseModel& readout_error_all(double p01, double p10);

  /// True when no rule and no readout error is attached.
  bool empty() const;

  bool has_readout_error() const;
  /// The confusion for qubit `q` (per-qubit entry, else the _all
  /// default, else trivial).
  ReadoutError readout_for(Qubit q) const;

  /// True when every attached channel is a Pauli channel — the whole
  /// model unravels into unitary trajectories sharing one plan.
  bool all_pauli() const;

  /// Expands the rules against `circuit` into execution-ordered sites.
  /// Throws atlas::Error when a rule cannot apply (two-qubit channel
  /// triggered by a gate without exactly two qubits, qubit id out of
  /// range).
  std::vector<NoiseSite> sites_for(const Circuit& circuit) const;

  /// The distinct channels reachable through the rules (diagnostics).
  std::vector<const KrausChannel*> channels() const;

 private:
  struct Rule {
    enum class Trigger { AllGates, GateKind, OnQubit };
    explicit Rule(KrausChannel ch) : channel(std::move(ch)) {}
    Trigger trigger = Trigger::AllGates;
    std::string gate_name;  // GateKind trigger
    Qubit qubit = 0;        // OnQubit trigger
    KrausChannel channel;
  };

  std::vector<Rule> rules_;
  std::vector<std::pair<Qubit, ReadoutError>> readout_;
  ReadoutError readout_all_;
  bool has_readout_all_ = false;
};

}  // namespace atlas::noise
