#pragma once

/// \file buffer.h
/// Explicit device-buffer lifecycle for the device-style offload
/// executor (exec/device_executor.h). The "device" is host memory
/// behind an explicit transfer API — the point is the architecture,
/// not the silicon: shard data only reaches a kernel replay after an
/// explicit upload() into a DeviceBuffer, and only leaves through an
/// explicit download(), so every byte of staging traffic is a visible,
/// metered event and the swap to a real accelerator runtime is a
/// reimplementation of this file, not of the executor.
///
/// Lifecycle (mirrors the idock kernel class: ctor-upload of constant
/// tables, update() per plan, launch() per task batch, dtor-free):
///
///   StagingPool pool;                          // one per plan context
///   DeviceBuffer slot = pool.allocate(bytes);  // ref-counted handle
///   slot.upload(host_src, bytes);              // H2D, metered
///   ... kernel replay reads slot.data() ...
///   slot.download(host_dst, bytes);            // D2H, metered
///   // handle release returns the block to the pool's free list;
///   // pool destruction frees the arena.
///
/// Freed blocks are recycled by exact size (allocate-once-per-plan:
/// a sweep re-acquiring the same slot shape never re-allocates), and
/// process-wide BufferStats expose allocation/traffic accounting so
/// tests can assert zero leaked buffers after a session closes.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace atlas::device {

/// Process-wide device-buffer accounting. Monotone counters except the
/// live_* pair, which are exact instantaneous values (every allocate
/// is matched by a release before a pool dies). Snapshot via
/// buffer_stats(); tests assert deltas.
struct BufferStats {
  std::uint64_t allocated_blocks = 0;  ///< blocks ever carved from arenas
  std::uint64_t freed_blocks = 0;      ///< blocks returned to the OS
  std::uint64_t live_buffers = 0;      ///< DeviceBuffer handles outstanding
  std::uint64_t live_bytes = 0;        ///< bytes held by live handles
  std::uint64_t uploads = 0;           ///< upload() calls (H2D)
  std::uint64_t upload_bytes = 0;
  std::uint64_t downloads = 0;         ///< download() calls (D2H)
  std::uint64_t download_bytes = 0;
};

/// Point-in-time copy of the process-wide counters.
BufferStats buffer_stats();

namespace detail {
struct Block;
class PoolImpl;
}  // namespace detail

/// Ref-counted handle to one device-side allocation. Copies share the
/// block; the last handle to go away returns the block to its pool's
/// free list (or to the OS when the pool is already gone). A
/// default-constructed handle is null.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  bool valid() const { return block_ != nullptr; }
  std::size_t bytes() const;

  /// Device-side storage. Valid while any handle is alive; kernel
  /// replays read and write through this pointer.
  Amp* data() const;

  /// H2D: copies `bytes` from host memory into the buffer. Metered in
  /// BufferStats and the device.* obs counters. Throws atlas::Error on
  /// overflow of the block.
  void upload(const void* host_src, std::size_t bytes) const;

  /// D2H: copies `bytes` from the buffer out to host memory. Metered.
  void download(void* host_dst, std::size_t bytes) const;

 private:
  friend class StagingPool;
  friend class detail::PoolImpl;
  explicit DeviceBuffer(std::shared_ptr<detail::Block> block)
      : block_(std::move(block)) {}

  std::shared_ptr<detail::Block> block_;
};

/// The pinned-style host staging arena: owns every block it hands out
/// and recycles released blocks by exact size, so steady-state
/// execution (a sweep replaying one plan) allocates each distinct slot
/// shape exactly once. Thread-safe: allocate() and handle releases may
/// race (the command-queue worker drops in-flight handles).
class StagingPool {
 public:
  StagingPool();
  ~StagingPool();

  StagingPool(const StagingPool&) = delete;
  StagingPool& operator=(const StagingPool&) = delete;

  /// Hands out a zero-initialized-or-recycled block of exactly `bytes`
  /// (recycled blocks keep their stale contents — callers upload before
  /// launching). Throws atlas::Error on bytes == 0.
  DeviceBuffer allocate(std::size_t bytes);

  /// Handles outstanding from this pool (free-listed blocks excluded).
  std::uint64_t live_buffers() const;
  /// Bytes resident in this pool: live handles plus the free list.
  std::uint64_t resident_bytes() const;

 private:
  std::shared_ptr<detail::PoolImpl> impl_;
};

}  // namespace atlas::device
