#pragma once

/// \file cluster.h
/// The simulated multi-node GPU cluster (paper Section II architectural
/// model): 2^G nodes x 2^R GPUs, each GPU holding a 2^L-amplitude
/// shard. Shard buffers live in host memory; the topology determines
/// how data movement is metered and how work is scheduled.

#include <cstdint>
#include <memory>

#include "common/error.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "device/comm.h"

namespace atlas::device {

struct ClusterConfig {
  int local_qubits = 0;     // L: log2 amplitudes per GPU shard
  int regional_qubits = 0;  // R: log2 GPUs (or DRAM shards) per node
  int global_qubits = 0;    // G: log2 nodes
  /// Physical GPUs per node. Normally 2^R; with DRAM offloading it may
  /// be smaller — shards then swap through the available GPUs
  /// (Section VII-C).
  int gpus_per_node = 0;
  /// Worker threads for per-shard parallelism (0 = hardware).
  int num_threads = 0;
  /// Capacity ceiling for the device backend's staging arena (two
  /// slots per physical GPU), in bytes; 0 = unlimited. The "device"
  /// executor refuses clusters whose double-buffered staging footprint
  /// exceeds this, and "auto" surfaces the refusal as a typed capacity
  /// error when no backend is left.
  std::uint64_t max_staging_bytes = 0;

  int num_nodes() const { return 1 << global_qubits; }
  int shards_per_node() const { return 1 << regional_qubits; }
  int num_shards() const { return num_nodes() * shards_per_node(); }
  int total_gpus() const { return num_nodes() * gpus_per_node; }
  int total_qubits() const {
    return local_qubits + regional_qubits + global_qubits;
  }
  bool offloading() const { return gpus_per_node < shards_per_node(); }

  void validate() const;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config)
      : config_(config), pool_(std::make_unique<ThreadPool>(
                             config.num_threads == 0
                                 ? 0
                                 : static_cast<std::size_t>(config.num_threads))) {
    config.validate();
  }

  const ClusterConfig& config() const { return config_; }
  ThreadPool& pool() const { return *pool_; }

  int node_of_shard(int shard) const {
    return shard >> config_.regional_qubits;
  }

 private:
  ClusterConfig config_;
  std::unique_ptr<ThreadPool> pool_;
};

inline void ClusterConfig::validate() const {
  ATLAS_CHECK(local_qubits >= 3 && local_qubits < 40,
              "local qubits out of range: " << local_qubits);
  ATLAS_CHECK(regional_qubits >= 0 && global_qubits >= 0,
              "negative machine dimensions");
  ATLAS_CHECK(gpus_per_node >= 1 && gpus_per_node <= shards_per_node(),
              "gpus_per_node must be in [1, 2^R]");
}

}  // namespace atlas::device
