#pragma once

/// \file comm.h
/// Communication cost model and metering for the simulated GPU
/// cluster. The substrate performs all data movement for real (host
/// memcpy between shard buffers) and *meters* every byte by the link
/// class it would traverse on the modeled machine: intra-GPU
/// (shard-local), intra-node (NVLink-class), inter-node
/// (Slingshot-class), or GPU<->DRAM (offloading). Modeled times use
/// Perlmutter-like constants so benchmark curves keep the paper's
/// shape even though the wall clock runs on one host.

#include <cstdint>

#include "common/types.h"

namespace atlas::device {

struct CommCostModel {
  double intra_node_bw = 0;   // bytes/s per GPU (NVLink-class)
  double inter_node_bw = 0;   // bytes/s per node (NIC-class)
  double offload_bw = 0;      // bytes/s GPU<->DRAM (PCIe-class)
  double intra_node_latency = 0;  // seconds per all-to-all round
  double inter_node_latency = 0;
  double gpu_mem_bw = 0;      // bytes/s streamed by kernels on a GPU

  /// Perlmutter-flavored constants: A100-40GB (1.5 TB/s HBM), NVLink3
  /// (~200 GB/s effective per GPU), Slingshot 200 Gb/s (~25 GB/s per
  /// node), PCIe4 x16 (~25 GB/s).
  static CommCostModel perlmutter_like();
};

/// Byte counters, accumulated by the executor.
struct CommStats {
  std::uint64_t intra_gpu_bytes = 0;   // moved within one shard
  std::uint64_t intra_node_bytes = 0;  // between GPUs of one node
  std::uint64_t inter_node_bytes = 0;  // between nodes
  std::uint64_t offload_bytes = 0;     // DRAM <-> GPU staging
  std::uint64_t kernel_bytes = 0;      // streamed by compute kernels
  int alltoall_rounds = 0;

  CommStats& operator+=(const CommStats& o);

  /// Modeled seconds spent communicating (intra + inter + offload).
  double modeled_comm_seconds(const CommCostModel& m, int gpus,
                              int nodes) const;

  /// Modeled seconds spent in kernels (memory-bandwidth bound).
  double modeled_compute_seconds(const CommCostModel& m, int gpus) const;
};

}  // namespace atlas::device
