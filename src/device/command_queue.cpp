#include "device/command_queue.h"

#include <exception>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace atlas::device {
namespace {

obs::Gauge& queue_depth() {
  static obs::Gauge& g = obs::gauge(obs::names::kDeviceQueueDepth);
  return g;
}

}  // namespace

CommandQueue::CommandQueue(ThreadPool& pool, int num_exec_tokens,
                           int num_buffer_tokens)
    : pool_(pool) {
  ATLAS_CHECK_ARG(num_exec_tokens >= 1 && num_buffer_tokens >= 1,
                  "CommandQueue needs at least one token per domain, got "
                      << num_exec_tokens << " exec / " << num_buffer_tokens
                      << " buffer");
  pending_exec_.assign(static_cast<std::size_t>(num_exec_tokens), 0);
  pending_buf_.assign(static_cast<std::size_t>(num_buffer_tokens), 0);
  worker_ = std::thread([this] { worker_loop(); });
}

CommandQueue::~CommandQueue() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  worker_.join();
  // The worker exits only with an empty queue; launches it dispatched
  // may still be running on the pool — wait them out so the buffers
  // they capture die before the executor's state does.
  MutexLock lock(mu_);
  cv_state_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
    return pending_total_ == 0;
  });
}

void CommandQueue::push(Command cmd) {
  {
    MutexLock lock(mu_);
    ATLAS_CHECK(!stop_, "enqueue on a stopping CommandQueue");
    queue_.push(std::move(cmd));
  }
  queue_depth().add(1);
  cv_work_.notify_one();
}

void CommandQueue::enqueue_h2d(DeviceBuffer buf, const Amp* host_src,
                               std::size_t bytes, int buffer_token) {
  Command cmd;
  cmd.kind = Command::Kind::H2D;
  cmd.buf = std::move(buf);
  cmd.host_src = host_src;
  cmd.bytes = bytes;
  cmd.buffer_token = buffer_token;
  push(std::move(cmd));
}

void CommandQueue::enqueue_d2h(DeviceBuffer buf, Amp* host_dst,
                               std::size_t bytes, int buffer_token) {
  Command cmd;
  cmd.kind = Command::Kind::D2H;
  cmd.buf = std::move(buf);
  cmd.host_dst = host_dst;
  cmd.bytes = bytes;
  cmd.buffer_token = buffer_token;
  push(std::move(cmd));
}

void CommandQueue::enqueue_launch(std::function<void()> fn, int exec_token,
                                  int buffer_token) {
  Command cmd;
  cmd.kind = Command::Kind::Launch;
  cmd.fn = std::move(fn);
  cmd.exec_token = exec_token;
  cmd.buffer_token = buffer_token;
  push(std::move(cmd));
}

void CommandQueue::enqueue_barrier() {
  Command cmd;
  cmd.kind = Command::Kind::Barrier;
  push(std::move(cmd));
}

void CommandQueue::sync() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    cv_state_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
      return queue_.empty() && !worker_busy_ && pending_total_ == 0;
    });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void CommandQueue::record_error(std::exception_ptr error) {
  if (!first_error_) first_error_ = std::move(error);
}

void CommandQueue::finish_launch(int exec_token, int buffer_token,
                                 std::exception_ptr error) {
  queue_depth().add(-1);
  MutexLock lock(mu_);
  --pending_exec_[static_cast<std::size_t>(exec_token)];
  --pending_buf_[static_cast<std::size_t>(buffer_token)];
  --pending_total_;
  if (error) record_error(std::move(error));
  // Notify while still holding mu_. The destructor (and sync() callers
  // that tear the queue down right after) free this object the moment
  // pending_total_ hits zero, and their waiter cannot recheck that
  // predicate until mu_ is released — so notifying under the lock is
  // what keeps this pool-thread callback from touching a freed condvar
  // when two launches finish back-to-back during teardown.
  cv_state_.notify_all();
}

void CommandQueue::run_command(Command& cmd) {
  switch (cmd.kind) {
    case Command::Kind::H2D: {
      {
        // The modeled DMA engine: wait for the launch reading this slot
        // (other slots' copies and every launch proceed meanwhile).
        MutexLock lock(mu_);
        const std::size_t b = static_cast<std::size_t>(cmd.buffer_token);
        cv_state_.wait(mu_, [this, b]() ATLAS_REQUIRES(mu_) {
          return pending_buf_[b] == 0;
        });
      }
      try {
        obs::TraceSpan span(obs::names::kSpanDeviceH2D, cmd.buffer_token);
        cmd.buf.upload(cmd.host_src, cmd.bytes);
      } catch (...) {
        MutexLock lock(mu_);
        record_error(std::current_exception());
      }
      queue_depth().add(-1);
      break;
    }
    case Command::Kind::D2H: {
      {
        MutexLock lock(mu_);
        const std::size_t b = static_cast<std::size_t>(cmd.buffer_token);
        cv_state_.wait(mu_, [this, b]() ATLAS_REQUIRES(mu_) {
          return pending_buf_[b] == 0;
        });
      }
      try {
        obs::TraceSpan span(obs::names::kSpanDeviceD2H, cmd.buffer_token);
        cmd.buf.download(cmd.host_dst, cmd.bytes);
      } catch (...) {
        MutexLock lock(mu_);
        record_error(std::current_exception());
      }
      queue_depth().add(-1);
      break;
    }
    case Command::Kind::Launch: {
      {
        // One kernel at a time per modeled GPU — but the launch runs on
        // the pool, so the worker is free to start the next slot's H2D
        // the moment this dispatch lands: that gap is the overlap.
        MutexLock lock(mu_);
        const std::size_t g = static_cast<std::size_t>(cmd.exec_token);
        cv_state_.wait(mu_, [this, g]() ATLAS_REQUIRES(mu_) {
          return pending_exec_[g] == 0;
        });
        ++pending_exec_[g];
        ++pending_buf_[static_cast<std::size_t>(cmd.buffer_token)];
        ++pending_total_;
      }
      static obs::Counter& launches =
          obs::counter(obs::names::kDeviceLaunches);
      launches.inc();
      auto task = [this, fn = std::move(cmd.fn), g = cmd.exec_token,
                   b = cmd.buffer_token] {
        std::exception_ptr error;
        try {
          obs::TraceSpan span(obs::names::kSpanDeviceLaunch, g);
          fn();
        } catch (...) {
          error = std::current_exception();
        }
        finish_launch(g, b, std::move(error));
      };
      try {
        pool_.submit(task);
      } catch (const Error&) {
        // Pool draining (session teardown): degrade to inline replay so
        // the queue still drains deterministically.
        task();
      }
      break;
    }
    case Command::Kind::Barrier: {
      MutexLock lock(mu_);
      cv_state_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
        return pending_total_ == 0;
      });
      queue_depth().add(-1);
      break;
    }
  }
}

void CommandQueue::worker_loop() {
  for (;;) {
    Command cmd;
    {
      MutexLock lock(mu_);
      cv_work_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and fully drained
      cmd = std::move(queue_.front());
      queue_.pop();
      worker_busy_ = true;
    }
    run_command(cmd);
    {
      MutexLock lock(mu_);
      worker_busy_ = false;
    }
    cv_state_.notify_all();
  }
}

}  // namespace atlas::device
