#include "device/comm.h"

#include <algorithm>

namespace atlas::device {

CommCostModel CommCostModel::perlmutter_like() {
  CommCostModel m;
  m.intra_node_bw = 200e9;
  m.inter_node_bw = 25e9;
  m.offload_bw = 25e9;
  m.intra_node_latency = 10e-6;
  m.inter_node_latency = 30e-6;
  m.gpu_mem_bw = 1.5e12;
  return m;
}

CommStats& CommStats::operator+=(const CommStats& o) {
  intra_gpu_bytes += o.intra_gpu_bytes;
  intra_node_bytes += o.intra_node_bytes;
  inter_node_bytes += o.inter_node_bytes;
  offload_bytes += o.offload_bytes;
  kernel_bytes += o.kernel_bytes;
  alltoall_rounds += o.alltoall_rounds;
  return *this;
}

double CommStats::modeled_comm_seconds(const CommCostModel& m, int gpus,
                                       int nodes) const {
  // Balanced all-to-all assumption: each GPU moves its share of the
  // intra-node traffic concurrently; each node its share of the
  // inter-node traffic. Latency is charged once per all-to-all round.
  const double intra =
      static_cast<double>(intra_node_bytes) / std::max(1, gpus) /
      m.intra_node_bw;
  const double inter =
      static_cast<double>(inter_node_bytes) / std::max(1, nodes) /
      m.inter_node_bw;
  const double offload =
      static_cast<double>(offload_bytes) / std::max(1, gpus) / m.offload_bw;
  const double latency =
      alltoall_rounds * (inter_node_bytes > 0 ? m.inter_node_latency
                                              : m.intra_node_latency);
  return intra + inter + offload + latency;
}

double CommStats::modeled_compute_seconds(const CommCostModel& m,
                                          int gpus) const {
  return static_cast<double>(kernel_bytes) / std::max(1, gpus) / m.gpu_mem_bw;
}

}  // namespace atlas::device
