#include "device/buffer.h"

#include <atomic>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace atlas::device {
namespace {

// Process-wide accounting. Relaxed atomics: the counters are telemetry
// and test probes, not synchronization.
struct StatCells {
  std::atomic<std::uint64_t> allocated_blocks{0};
  std::atomic<std::uint64_t> freed_blocks{0};
  std::atomic<std::uint64_t> live_buffers{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> uploads{0};
  std::atomic<std::uint64_t> upload_bytes{0};
  std::atomic<std::uint64_t> downloads{0};
  std::atomic<std::uint64_t> download_bytes{0};
};

StatCells& cells() {
  static StatCells c;
  return c;
}

}  // namespace

BufferStats buffer_stats() {
  const StatCells& c = cells();
  BufferStats s;
  s.allocated_blocks = c.allocated_blocks.load(std::memory_order_relaxed);
  s.freed_blocks = c.freed_blocks.load(std::memory_order_relaxed);
  s.live_buffers = c.live_buffers.load(std::memory_order_relaxed);
  s.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  s.uploads = c.uploads.load(std::memory_order_relaxed);
  s.upload_bytes = c.upload_bytes.load(std::memory_order_relaxed);
  s.downloads = c.downloads.load(std::memory_order_relaxed);
  s.download_bytes = c.download_bytes.load(std::memory_order_relaxed);
  return s;
}

namespace detail {

/// One device-side allocation: the storage plus a weak edge back to the
/// pool so the handle deleter can recycle it. Amp-typed storage keeps
/// the "device" memory correctly aligned for kernel replay.
struct Block {
  std::vector<Amp> storage;
  std::size_t bytes = 0;
  std::weak_ptr<PoolImpl> pool;
};

/// The pool state shared between the pool facade and every outstanding
/// handle's deleter. Kept alive by whichever of them dies last.
class PoolImpl : public std::enable_shared_from_this<PoolImpl> {
 public:
  DeviceBuffer allocate(std::size_t bytes) {
    ATLAS_CHECK_ARG(bytes > 0, "DeviceBuffer of zero bytes");
    std::unique_ptr<Block> block;
    {
      MutexLock lock(mu_);
      auto it = free_.find(bytes);
      if (it != free_.end() && !it->second.empty()) {
        block = std::move(it->second.back());
        it->second.pop_back();
        free_bytes_ -= bytes;
      }
    }
    if (!block) {
      block = std::make_unique<Block>();
      block->bytes = bytes;
      block->storage.resize((bytes + sizeof(Amp) - 1) / sizeof(Amp));
      block->pool = weak_from_this();
      cells().allocated_blocks.fetch_add(1, std::memory_order_relaxed);
    }
    cells().live_buffers.fetch_add(1, std::memory_order_relaxed);
    cells().live_bytes.fetch_add(bytes, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    // The shared_ptr aliases the raw Block; its deleter routes the block
    // back through the pool (or frees it when the pool died first).
    Block* raw = block.release();
    return DeviceBuffer(std::shared_ptr<Block>(raw, [](Block* b) {
      cells().live_buffers.fetch_sub(1, std::memory_order_relaxed);
      cells().live_bytes.fetch_sub(b->bytes, std::memory_order_relaxed);
      if (std::shared_ptr<PoolImpl> pool = b->pool.lock()) {
        pool->recycle(std::unique_ptr<Block>(b));
      } else {
        cells().freed_blocks.fetch_add(1, std::memory_order_relaxed);
        delete b;
      }
    }));
  }

  void recycle(std::unique_ptr<Block> block) {
    live_.fetch_sub(1, std::memory_order_relaxed);
    live_bytes_.fetch_sub(block->bytes, std::memory_order_relaxed);
    MutexLock lock(mu_);
    free_bytes_ += block->bytes;
    free_[block->bytes].push_back(std::move(block));
  }

  /// Pool teardown: the free list dies here; in-flight handles outlive
  /// the pool and free their blocks directly from the deleter.
  void drop_free_list() {
    std::unordered_map<std::size_t, std::vector<std::unique_ptr<Block>>> dead;
    {
      MutexLock lock(mu_);
      dead.swap(free_);
      free_bytes_ = 0;
    }
    std::uint64_t n = 0;
    for (auto& [bytes, blocks] : dead) n += blocks.size();
    if (n) cells().freed_blocks.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t live() const { return live_.load(std::memory_order_relaxed); }
  std::uint64_t resident_bytes() const {
    MutexLock lock(mu_);
    return free_bytes_ + live_bytes_.load(std::memory_order_relaxed);
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::size_t, std::vector<std::unique_ptr<Block>>> free_
      ATLAS_GUARDED_BY(mu_);
  std::uint64_t free_bytes_ ATLAS_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> live_bytes_{0};
};

}  // namespace detail

std::size_t DeviceBuffer::bytes() const {
  return block_ ? block_->bytes : 0;
}

Amp* DeviceBuffer::data() const {
  ATLAS_CHECK(block_, "null DeviceBuffer");
  return block_->storage.data();
}

void DeviceBuffer::upload(const void* host_src, std::size_t bytes) const {
  ATLAS_CHECK(block_, "upload into a null DeviceBuffer");
  ATLAS_CHECK_ARG(bytes <= block_->bytes,
                  "upload of " << bytes << " bytes overflows a "
                               << block_->bytes << "-byte DeviceBuffer");
  std::memcpy(block_->storage.data(), host_src, bytes);
  cells().uploads.fetch_add(1, std::memory_order_relaxed);
  cells().upload_bytes.fetch_add(bytes, std::memory_order_relaxed);
  static obs::Counter& metered = obs::counter(obs::names::kDeviceUploadBytes);
  metered.add(bytes);
}

void DeviceBuffer::download(void* host_dst, std::size_t bytes) const {
  ATLAS_CHECK(block_, "download from a null DeviceBuffer");
  ATLAS_CHECK_ARG(bytes <= block_->bytes,
                  "download of " << bytes << " bytes overflows a "
                                 << block_->bytes << "-byte DeviceBuffer");
  std::memcpy(host_dst, block_->storage.data(), bytes);
  cells().downloads.fetch_add(1, std::memory_order_relaxed);
  cells().download_bytes.fetch_add(bytes, std::memory_order_relaxed);
  static obs::Counter& metered =
      obs::counter(obs::names::kDeviceDownloadBytes);
  metered.add(bytes);
}

StagingPool::StagingPool() : impl_(std::make_shared<detail::PoolImpl>()) {}

StagingPool::~StagingPool() { impl_->drop_free_list(); }

DeviceBuffer StagingPool::allocate(std::size_t bytes) {
  return impl_->allocate(bytes);
}

std::uint64_t StagingPool::live_buffers() const { return impl_->live(); }

std::uint64_t StagingPool::resident_bytes() const {
  return impl_->resident_bytes();
}

}  // namespace atlas::device
