#pragma once

/// \file command_queue.h
/// The asynchronous half of the device backend: a FIFO of typed
/// commands (H2D, D2H, LAUNCH, BARRIER) drained by one dedicated worker
/// thread, modeling a device stream. The executor enqueues a stage's
/// whole transfer/replay schedule and returns to host work (remapping
/// the next point, binding matrices) while the queue runs it.
///
/// Overlap model — two serialization domains, nothing else ordered:
///
///  * a **buffer token** names one staging slot: copies on a slot wait
///    for the launch reading it, never for launches on other slots;
///  * an **exec token** names one modeled GPU: its launches run one at
///    a time (a device executes one kernel per stream), but they run
///    *asynchronously* on the cluster pool, so the worker thread is
///    already performing the next slot's H2D while they replay.
///
/// With double-buffered slots (two buffer tokens per exec token) the
/// steady state is exactly the classic pipeline: upload shard i+1 into
/// slot B while the kernel replays shard i out of slot A.
///
/// Copies are executed synchronously by the worker (they are the
/// modeled DMA engine); launches are submitted to the cluster's thread
/// pool and tracked via per-token pending counts. BARRIER (and sync())
/// waits for every prior command to complete. The destructor drains
/// whatever is still enqueued — tearing a queue down under load is
/// safe and exercised by the TSan suite. The first exception thrown by
/// any command is captured and rethrown from sync().

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "device/buffer.h"

namespace atlas::device {

class CommandQueue {
 public:
  /// `pool` runs launch bodies; tokens index the two domains:
  /// exec tokens in [0, num_exec_tokens), buffer tokens in
  /// [0, num_buffer_tokens).
  CommandQueue(ThreadPool& pool, int num_exec_tokens, int num_buffer_tokens);

  /// Drains every command still enqueued, waits for in-flight launches,
  /// and joins the worker. Pending errors are swallowed here (sync()
  /// is the reporting point); destruction is never throwing.
  ~CommandQueue();

  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  /// Copy `bytes` from host memory into `buf` once every launch
  /// reading `buffer_token` has completed.
  void enqueue_h2d(DeviceBuffer buf, const Amp* host_src, std::size_t bytes,
                   int buffer_token);

  /// Copy `bytes` out of `buf` to host memory once every launch
  /// writing `buffer_token` has completed.
  void enqueue_d2h(DeviceBuffer buf, Amp* host_dst, std::size_t bytes,
                   int buffer_token);

  /// Run `fn` on the cluster pool once `exec_token`'s previous launch
  /// has completed. `fn` owns everything it reads (capture the
  /// DeviceBuffer handle by value — the queue may outlive the caller's
  /// stack frame).
  void enqueue_launch(std::function<void()> fn, int exec_token,
                      int buffer_token);

  /// Full pipeline flush: the worker waits until every prior command
  /// (including in-flight launches) has completed before consuming
  /// anything enqueued after the barrier.
  void enqueue_barrier();

  /// Blocks until everything enqueued so far has completed; rethrows
  /// the first exception any command raised since the last sync().
  void sync();

 private:
  struct Command {
    enum class Kind { H2D, D2H, Launch, Barrier };
    Kind kind = Kind::Barrier;
    DeviceBuffer buf;
    const Amp* host_src = nullptr;
    Amp* host_dst = nullptr;
    std::size_t bytes = 0;
    int exec_token = 0;
    int buffer_token = 0;
    std::function<void()> fn;
  };

  void push(Command cmd) ATLAS_EXCLUDES(mu_);
  void worker_loop() ATLAS_EXCLUDES(mu_);
  void run_command(Command& cmd) ATLAS_EXCLUDES(mu_);
  void finish_launch(int exec_token, int buffer_token,
                     std::exception_ptr error) ATLAS_EXCLUDES(mu_);
  void record_error(std::exception_ptr error) ATLAS_REQUIRES(mu_);

  ThreadPool& pool_;
  mutable Mutex mu_;
  CondVar cv_work_;   ///< worker: queue non-empty or stopping
  CondVar cv_state_;  ///< waiters: pending counts / queue drained
  std::queue<Command> queue_ ATLAS_GUARDED_BY(mu_);
  std::vector<int> pending_exec_ ATLAS_GUARDED_BY(mu_);
  std::vector<int> pending_buf_ ATLAS_GUARDED_BY(mu_);
  int pending_total_ ATLAS_GUARDED_BY(mu_) = 0;
  bool worker_busy_ ATLAS_GUARDED_BY(mu_) = false;
  bool stop_ ATLAS_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ ATLAS_GUARDED_BY(mu_);
  std::thread worker_;
};

}  // namespace atlas::device
