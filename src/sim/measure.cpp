#include "sim/measure.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {

double probability(const StateVector& sv, Index basis_state) {
  ATLAS_CHECK(basis_state < sv.size(), "basis state out of range");
  return std::norm(sv[basis_state]);
}

std::vector<double> marginal_distribution(const StateVector& sv,
                                          const std::vector<Qubit>& qubits) {
  for (Qubit q : qubits)
    ATLAS_CHECK(q >= 0 && q < sv.num_qubits(), "qubit out of range");
  std::vector<double> dist(Index{1} << qubits.size(), 0.0);
  std::vector<int> positions(qubits.begin(), qubits.end());
  for (Index i = 0; i < sv.size(); ++i) {
    const double p = std::norm(sv[i]);
    if (p == 0.0) continue;
    dist[gather_bits(i, positions)] += p;
  }
  return dist;
}

std::vector<Index> sample(const StateVector& sv, int shots, Rng& rng) {
  // Inverse-CDF sampling over sorted uniform draws: one pass over the
  // state vector regardless of the shot count.
  std::vector<double> draws(shots);
  for (auto& d : draws) d = rng.uniform();
  std::sort(draws.begin(), draws.end());
  std::vector<Index> out(shots);
  double cum = 0.0;
  Index state = 0;
  std::size_t k = 0;
  for (Index i = 0; i < sv.size() && k < draws.size(); ++i) {
    cum += std::norm(sv[i]);
    state = i;
    while (k < draws.size() && draws[k] < cum) out[k++] = i;
  }
  // Numerical slack: any residual draws map to the last visited state.
  while (k < draws.size()) out[k++] = state;
  // Restore a random order (draws were sorted).
  std::shuffle(out.begin(), out.end(), rng.engine());
  return out;
}

double expectation_z(const StateVector& sv, Qubit q) {
  ATLAS_CHECK(q >= 0 && q < sv.num_qubits(), "qubit out of range");
  double e = 0.0;
  for (Index i = 0; i < sv.size(); ++i)
    e += (test_bit(i, q) ? -1.0 : 1.0) * std::norm(sv[i]);
  return e;
}

double expectation_zz(const StateVector& sv, Qubit a, Qubit b) {
  ATLAS_CHECK(a >= 0 && a < sv.num_qubits(), "qubit out of range");
  ATLAS_CHECK(b >= 0 && b < sv.num_qubits(), "qubit out of range");
  double e = 0.0;
  for (Index i = 0; i < sv.size(); ++i) {
    const int sign = (test_bit(i, a) == test_bit(i, b)) ? 1 : -1;
    e += sign * std::norm(sv[i]);
  }
  return e;
}

}  // namespace atlas
