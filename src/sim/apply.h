#pragma once

/// \file apply.h
/// Gate application to amplitude buffers. These functions are the
/// "device kernels" of the simulated GPU: they apply a (possibly
/// controlled) k-qubit unitary to every amplitude group of a buffer in
/// a data-parallel fashion, using exactly the strided index arithmetic
/// of the paper's Eq. (1) generalized to k qubits.
///
/// All functions take *bit positions within the buffer*; callers that
/// work with logical qubits map them through their layout first.
///
/// Hot paths are two-tier: prepare_gate() lowers a MatrixOp once —
/// resolving strides/offset tables and classifying the matrix into a
/// fast-path class (1q/2q dense, diagonal, permutation, general) — and
/// apply_prepared() replays it with stride-based nested loops whose
/// inner loop walks contiguous amplitudes, with the complex arithmetic
/// spelled out over raw doubles so the compiler can vectorize it.
/// Classification uses *exact* zero tests, so every fast path computes
/// bit-identical amplitudes (modulo the sign of zero) to the general
/// dense loop. The one-shot wrappers (apply_matrix & co.) prepare and
/// apply in a single call.

#include <vector>

#include "common/types.h"
#include "ir/gate.h"
#include "ir/matrix.h"
#include "sim/state_vector.h"

namespace atlas {

/// A (possibly controlled) unitary lowered to buffer bit positions: the
/// common currency of bind-time kernel compilation (fusion spans,
/// shared-memory programs, stage programs) — no Gate, no logical
/// qubits. Matrix row/column bit i corresponds to targets[i]; the op
/// acts only where every control bit is 1.
struct MatrixOp {
  Matrix m;
  std::vector<int> targets;
  std::vector<int> controls;
};

/// Fast-path class of a prepared kernel, decided once at preparation.
enum class ApplyPath {
  Dense1q,   ///< dense 2x2 on one target
  Diag1q,    ///< diagonal 2x2: two scalar multiplies per group
  Dense2q,   ///< dense 4x4 on two targets
  DiagK,     ///< diagonal 2^k: in-place scalar multiplies, no gather
  PermK,     ///< one nonzero per row/column: gather + phased permute
  DenseK,    ///< general 2^k x 2^k gather / mat-vec / scatter
};

/// A gate kernel lowered for repeated application: bit positions
/// resolved, offsets precomputed, matrix classified. Immutable after
/// prepare_gate(); apply_prepared() is const and thread-safe.
struct PreparedGate {
  ApplyPath path = ApplyPath::DenseK;
  int span = 0;                  ///< targets + controls bit count
  Index ctrl_mask = 0;           ///< OR of control bit positions
  std::vector<int> targets;      ///< matrix-order target bit positions
  std::vector<int> sorted_bits;  ///< targets + controls, ascending
  std::vector<double> m_re;      ///< Dense*: row-major / Diag*: diagonal
  std::vector<double> m_im;      ///< imaginary counterpart of m_re
  std::vector<int> perm;         ///< PermK: column of row r's nonzero
  std::vector<Amp> phase;        ///< PermK: value of row r's nonzero
  std::vector<Index> offset;     ///< buffer offset of matrix index v
};

/// Lowers `op` into a PreparedGate (positions must be distinct and the
/// matrix 2^|targets| square).
PreparedGate prepare_gate(const MatrixOp& op);

/// Applies a prepared kernel to the buffer (`size` a power of two,
/// every bit position < log2(size)).
void apply_prepared(Amp* data, Index size, const PreparedGate& g);

/// Applies the 2^k x 2^k matrix `m` to target bit positions `targets`
/// of the buffer (`size` must be a power of two, all positions <
/// log2(size), matrix row/col bit i corresponds to targets[i]).
void apply_matrix(Amp* data, Index size, const std::vector<int>& targets,
                  const Matrix& m);

/// As apply_matrix, but only on amplitude groups where every bit in
/// `controls` is 1.
void apply_controlled_matrix(Amp* data, Index size,
                             const std::vector<int>& targets,
                             const std::vector<int>& controls,
                             const Matrix& m);

/// Applies `gate` to the buffer with qubit q living at bit position
/// `bit_of_qubit[q]`. Entries for untouched qubits are ignored.
void apply_gate_mapped(Amp* data, Index size, const Gate& gate,
                       const std::vector<int>& bit_of_qubit);

/// Applies `gate` to a full state vector (identity layout: qubit q at
/// bit q — no per-call mapping is materialized).
void apply_gate(StateVector& sv, const Gate& gate);

/// Multiplies every amplitude by `factor` (used when a diagonal or
/// anti-diagonal gate acts on a non-local qubit whose value is fixed
/// for the shard).
void scale_buffer(Amp* data, Index size, Amp factor);

}  // namespace atlas
