#pragma once

/// \file apply.h
/// Gate application to amplitude buffers. These functions are the
/// "device kernels" of the simulated GPU: they apply a (possibly
/// controlled) k-qubit unitary to every amplitude group of a buffer in
/// a data-parallel fashion, using exactly the strided index arithmetic
/// of the paper's Eq. (1) generalized to k qubits.
///
/// All functions take *bit positions within the buffer*; callers that
/// work with logical qubits map them through their layout first.

#include <vector>

#include "common/types.h"
#include "ir/gate.h"
#include "ir/matrix.h"
#include "sim/state_vector.h"

namespace atlas {

/// Applies the 2^k x 2^k matrix `m` to target bit positions `targets`
/// of the buffer (`size` must be a power of two, all positions <
/// log2(size), matrix row/col bit i corresponds to targets[i]).
void apply_matrix(Amp* data, Index size, const std::vector<int>& targets,
                  const Matrix& m);

/// As apply_matrix, but only on amplitude groups where every bit in
/// `controls` is 1.
void apply_controlled_matrix(Amp* data, Index size,
                             const std::vector<int>& targets,
                             const std::vector<int>& controls,
                             const Matrix& m);

/// Applies `gate` to the buffer with qubit q living at bit position
/// `bit_of_qubit[q]`. Entries for untouched qubits are ignored.
void apply_gate_mapped(Amp* data, Index size, const Gate& gate,
                       const std::vector<int>& bit_of_qubit);

/// Applies `gate` to a full state vector (identity layout: qubit q at
/// bit q).
void apply_gate(StateVector& sv, const Gate& gate);

/// Multiplies every amplitude by `factor` (used when a diagonal or
/// anti-diagonal gate acts on a non-local qubit whose value is fixed
/// for the shard).
void scale_buffer(Amp* data, Index size, Amp factor);

}  // namespace atlas
