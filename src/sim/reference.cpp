#include "sim/reference.h"

#include "common/error.h"
#include "sim/apply.h"

namespace atlas {

StateVector simulate_reference(const Circuit& circuit) {
  ATLAS_CHECK(!circuit.is_parameterized(),
              "reference simulator needs a fully bound circuit; call "
              "Circuit::bind with values for its symbols first");
  StateVector sv(circuit.num_qubits());
  for (const Gate& g : circuit.gates()) apply_gate(sv, g);
  return sv;
}

StateVector simulate_reference(const Circuit& circuit,
                               const StateVector& initial) {
  ATLAS_CHECK(initial.num_qubits() == circuit.num_qubits(),
              "initial state has " << initial.num_qubits()
                                   << " qubits, circuit needs "
                                   << circuit.num_qubits());
  StateVector sv = initial;
  for (const Gate& g : circuit.gates()) apply_gate(sv, g);
  return sv;
}

}  // namespace atlas
