#pragma once

/// \file measure.h
/// Measurement and observable utilities on state vectors: basis-state
/// probabilities, marginal distributions over qubit subsets, sampling,
/// and Pauli-Z expectation values. These operate on full state vectors
/// (use exec::queries for distributed states).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/state_vector.h"

namespace atlas {

/// |amplitude|^2 of one basis state.
double probability(const StateVector& sv, Index basis_state);

/// Marginal probability distribution over `qubits` (ascending order of
/// the packed outcome bits: outcome bit i = qubits[i]). Result has
/// 2^|qubits| entries summing to ~1.
std::vector<double> marginal_distribution(const StateVector& sv,
                                          const std::vector<Qubit>& qubits);

/// Draws `shots` basis-state samples from the measurement distribution.
std::vector<Index> sample(const StateVector& sv, int shots, Rng& rng);

/// <Z_q>: expectation of Pauli-Z on qubit q (in [-1, 1]).
double expectation_z(const StateVector& sv, Qubit q);

/// <Z_a Z_b>: two-point correlator.
double expectation_zz(const StateVector& sv, Qubit a, Qubit b);

}  // namespace atlas
