#pragma once

/// \file reference.h
/// The trusted oracle simulator: applies each gate of a circuit to a
/// full state vector, one at a time, with no partitioning or fusion.
/// Every other execution path in Atlas is validated against it.

#include "ir/circuit.h"
#include "sim/state_vector.h"

namespace atlas {

/// Simulates `circuit` starting from |0...0>.
StateVector simulate_reference(const Circuit& circuit);

/// Simulates `circuit` starting from `initial` (copied).
StateVector simulate_reference(const Circuit& circuit,
                               const StateVector& initial);

}  // namespace atlas
