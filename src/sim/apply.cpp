#include "sim/apply.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {
namespace {

/// Lane count of the blocked kernels: groups are processed in batches
/// of up to kLanes so the per-lane arithmetic vectorizes (each lane is
/// an independent amplitude group — no reduction across lanes, so the
/// compiler may use SIMD without reassociating any floating-point sum,
/// keeping results bit-identical to the scalar loop).
constexpr Index kLanes = 32;

/// Exact-zero test: fast paths must preserve bit-identical arithmetic,
/// so classification never uses a tolerance (an entry of 1e-300 still
/// forces the dense path).
bool exactly_zero(const Amp& a) { return a.real() == 0.0 && a.imag() == 0.0; }

/// Group walk shared by the non-blocked paths: enumerates the base
/// index of every amplitude group, with the bits below the lowest
/// op bit walked by a contiguous inner loop.
template <class Body>
void for_each_base(Index size, int span, const std::vector<int>& sorted,
                   Index ctrl_mask, Body&& body) {
  const Index groups = size >> span;
  const int b0 = sorted.front();
  const Index inner = Index{1} << b0;
  const Index outer = groups >> b0;
  for (Index h = 0; h < outer; ++h) {
    const Index hb = insert_zero_bits(h << b0, sorted) | ctrl_mask;
    for (Index l = 0; l < inner; ++l) body(hb + l);
  }
}

/// Uncontrolled dense 1q: the dominant kernel. Processes 2^q-long
/// contiguous runs of paired amplitudes; the inner loop is stride-1
/// over raw doubles and vectorizes.
void apply_dense_1q_direct(Amp* data, Index size, int q, const double* mre,
                           const double* mim) {
  const double u00r = mre[0], u00i = mim[0];
  const double u01r = mre[1], u01i = mim[1];
  const double u10r = mre[2], u10i = mim[2];
  const double u11r = mre[3], u11i = mim[3];
  double* d = reinterpret_cast<double*>(data);
  const Index run = Index{2} << q;  // doubles per contiguous half-block
  for (Index base = 0; base < 2 * size; base += 2 * run) {
    double* p0 = d + base;
    double* p1 = p0 + run;
    for (Index j = 0; j < run; j += 2) {
      const double a0r = p0[j], a0i = p0[j + 1];
      const double a1r = p1[j], a1i = p1[j + 1];
      p0[j] = (u00r * a0r - u00i * a0i) + (u01r * a1r - u01i * a1i);
      p0[j + 1] = (u00r * a0i + u00i * a0r) + (u01r * a1i + u01i * a1r);
      p1[j] = (u10r * a0r - u10i * a0i) + (u11r * a1r - u11i * a1i);
      p1[j + 1] = (u10r * a0i + u10i * a0r) + (u11r * a1i + u11i * a1r);
    }
  }
}

/// Uncontrolled diagonal 1q: two contiguous scalar-multiply runs per
/// block, no pairing loads at all.
void apply_diag_1q_direct(Amp* data, Index size, int q, const double* dre,
                          const double* dim) {
  const double d0r = dre[0], d0i = dim[0];
  const double d1r = dre[1], d1i = dim[1];
  double* d = reinterpret_cast<double*>(data);
  const Index run = Index{2} << q;
  for (Index base = 0; base < 2 * size; base += 2 * run) {
    double* p0 = d + base;
    double* p1 = p0 + run;
    for (Index j = 0; j < run; j += 2) {
      const double a0r = p0[j], a0i = p0[j + 1];
      p0[j] = a0r * d0r - a0i * d0i;
      p0[j + 1] = a0r * d0i + a0i * d0r;
      const double a1r = p1[j], a1i = p1[j + 1];
      p1[j] = a1r * d1r - a1i * d1i;
      p1[j + 1] = a1r * d1i + a1i * d1r;
    }
  }
}

/// Scratch for the blocked kernels, allocated once per apply call and
/// reused across every group block.
struct BlockScratch {
  std::vector<Index> base;
  std::vector<double> in_re, in_im, out_re, out_im;

  void size_for(Index lanes, Index dim, bool with_out) {
    base.resize(lanes);
    in_re.resize(dim * lanes);
    in_im.resize(dim * lanes);
    if (with_out) {
      out_re.resize(dim * lanes);
      out_im.resize(dim * lanes);
    }
  }
};

/// Fills scratch.base with the next `nb` group bases starting at group
/// index g0.
void fill_bases(BlockScratch& s, Index g0, Index nb,
                const std::vector<int>& sorted, Index ctrl_mask) {
  for (Index j = 0; j < nb; ++j)
    s.base[j] = insert_zero_bits(g0 + j, sorted) | ctrl_mask;
}

/// Blocked dense kernel: gathers a (dim x lanes) tile, multiplies by
/// the matrix with the reduction kept in strict column order (lane-wise
/// SIMD only), and scatters back. DIM == 0 selects the runtime-dim
/// variant.
template <Index DIM>
void apply_dense_blocked(Amp* data, Index size, const PreparedGate& g,
                         Index dyn_dim) {
  const Index dim = DIM == 0 ? dyn_dim : DIM;
  const Index groups = size >> g.span;
  const Index lanes = std::min<Index>(kLanes, groups);
  // Reused across calls: shared-memory programs replay small-batch
  // kernels at high call rates, where per-call allocation would
  // dominate.
  static thread_local BlockScratch s;
  s.size_for(lanes, dim, /*with_out=*/true);
  const double* mre = g.m_re.data();
  const double* mim = g.m_im.data();
  const Index* off = g.offset.data();
  for (Index g0 = 0; g0 < groups; g0 += lanes) {
    const Index nb = std::min(lanes, groups - g0);
    fill_bases(s, g0, nb, g.sorted_bits, g.ctrl_mask);
    for (Index v = 0; v < dim; ++v) {
      const Index o = off[v];
      double* ir = s.in_re.data() + v * lanes;
      double* ii = s.in_im.data() + v * lanes;
      for (Index j = 0; j < nb; ++j) {
        const Amp a = data[s.base[j] + o];
        ir[j] = a.real();
        ii[j] = a.imag();
      }
    }
    for (Index r = 0; r < dim; ++r) {
      double* orr = s.out_re.data() + r * lanes;
      double* ori = s.out_im.data() + r * lanes;
      for (Index j = 0; j < nb; ++j) {
        orr[j] = 0.0;
        ori[j] = 0.0;
      }
      for (Index c = 0; c < dim; ++c) {
        const double ur = mre[r * dim + c], ui = mim[r * dim + c];
        const double* ir = s.in_re.data() + c * lanes;
        const double* ii = s.in_im.data() + c * lanes;
        for (Index j = 0; j < nb; ++j) {
          orr[j] += ur * ir[j] - ui * ii[j];
          ori[j] += ur * ii[j] + ui * ir[j];
        }
      }
    }
    for (Index r = 0; r < dim; ++r) {
      const Index o = off[r];
      const double* orr = s.out_re.data() + r * lanes;
      const double* ori = s.out_im.data() + r * lanes;
      for (Index j = 0; j < nb; ++j)
        data[s.base[j] + o] = Amp(orr[j], ori[j]);
    }
  }
}

/// Diagonal k-qubit kernel: pure in-place scalar multiplies, no
/// gather/scatter tile. The loop nest is entry-major so the innermost
/// loop walks a contiguous amplitude run per diagonal entry.
void apply_diag_k(Amp* data, Index size, const PreparedGate& g) {
  const Index dim = Index{1} << g.targets.size();
  const Index groups = size >> g.span;
  const int b0 = g.sorted_bits.front();
  const Index inner = Index{1} << b0;
  const Index outer = groups >> b0;
  for (Index h = 0; h < outer; ++h) {
    const Index hb = insert_zero_bits(h << b0, g.sorted_bits) | g.ctrl_mask;
    for (Index v = 0; v < dim; ++v) {
      const double dr = g.m_re[v], di = g.m_im[v];
      double* p = reinterpret_cast<double*>(data + hb + g.offset[v]);
      for (Index l = 0; l < 2 * inner; l += 2) {
        const double ar = p[l], ai = p[l + 1];
        p[l] = ar * dr - ai * di;
        p[l + 1] = ar * di + ai * dr;
      }
    }
  }
}

/// Permutation kernel: gathers each group once, then writes row r from
/// column perm[r] scaled by the row's single nonzero entry.
void apply_perm_k(Amp* data, Index size, const PreparedGate& g) {
  const Index dim = Index{1} << g.targets.size();
  const Index groups = size >> g.span;
  const Index lanes = std::min<Index>(kLanes, groups);
  static thread_local BlockScratch s;
  s.size_for(lanes, dim, /*with_out=*/false);
  for (Index g0 = 0; g0 < groups; g0 += lanes) {
    const Index nb = std::min(lanes, groups - g0);
    fill_bases(s, g0, nb, g.sorted_bits, g.ctrl_mask);
    for (Index v = 0; v < dim; ++v) {
      const Index o = g.offset[v];
      double* ir = s.in_re.data() + v * lanes;
      double* ii = s.in_im.data() + v * lanes;
      for (Index j = 0; j < nb; ++j) {
        const Amp a = data[s.base[j] + o];
        ir[j] = a.real();
        ii[j] = a.imag();
      }
    }
    for (Index r = 0; r < dim; ++r) {
      const Index o = g.offset[r];
      const Index c = static_cast<Index>(g.perm[r]);
      const double pr = g.phase[r].real(), pi = g.phase[r].imag();
      const double* ir = s.in_re.data() + c * lanes;
      const double* ii = s.in_im.data() + c * lanes;
      for (Index j = 0; j < nb; ++j)
        data[s.base[j] + o] =
            Amp(pr * ir[j] - pi * ii[j], pr * ii[j] + pi * ir[j]);
    }
  }
}

}  // namespace

PreparedGate prepare_gate(const MatrixOp& op) {
  const int k = static_cast<int>(op.targets.size());
  const Index dim = Index{1} << k;
  ATLAS_DCHECK(op.m.rows() == static_cast<int>(dim) &&
                   op.m.cols() == static_cast<int>(dim),
               "matrix size mismatch");
  PreparedGate g;
  g.targets = op.targets;
  g.span = k + static_cast<int>(op.controls.size());
  g.sorted_bits = op.targets;
  g.sorted_bits.insert(g.sorted_bits.end(), op.controls.begin(),
                       op.controls.end());
  std::sort(g.sorted_bits.begin(), g.sorted_bits.end());
  for (int c : op.controls) g.ctrl_mask |= bit(c);

  // Classify: exact structure tests only (see file comment).
  bool diagonal = true;
  bool permutation = true;
  std::vector<int> perm(dim, -1);
  std::vector<bool> col_used(dim, false);
  for (Index r = 0; r < dim && permutation; ++r) {
    int nonzero = -1;
    for (Index c = 0; c < dim; ++c) {
      if (exactly_zero(op.m(static_cast<int>(r), static_cast<int>(c))))
        continue;
      if (c != r) diagonal = false;
      if (nonzero >= 0) {
        permutation = false;
        break;
      }
      nonzero = static_cast<int>(c);
    }
    if (nonzero < 0 || col_used[static_cast<std::size_t>(nonzero)]) {
      permutation = false;  // zero row / duplicated column: not a permutation
      break;
    }
    col_used[static_cast<std::size_t>(nonzero)] = true;
    perm[static_cast<std::size_t>(r)] = nonzero;
  }

  if (diagonal && permutation) {
    g.m_re.resize(dim);
    g.m_im.resize(dim);
    for (Index v = 0; v < dim; ++v) {
      const Amp d = op.m(static_cast<int>(v), static_cast<int>(v));
      g.m_re[v] = d.real();
      g.m_im[v] = d.imag();
    }
    if (k == 1) {
      g.path = ApplyPath::Diag1q;
      return g;
    }
    g.path = ApplyPath::DiagK;
    g.offset.resize(dim);
    for (Index v = 0; v < dim; ++v) g.offset[v] = spread_bits(v, g.targets);
    return g;
  }
  if (permutation) {
    g.path = ApplyPath::PermK;
    g.perm = std::move(perm);
    g.phase.resize(dim);
    for (Index r = 0; r < dim; ++r)
      g.phase[r] = op.m(static_cast<int>(r), g.perm[r]);
    g.offset.resize(dim);
    for (Index v = 0; v < dim; ++v) g.offset[v] = spread_bits(v, g.targets);
    return g;
  }

  g.m_re.resize(dim * dim);
  g.m_im.resize(dim * dim);
  for (Index r = 0; r < dim; ++r)
    for (Index c = 0; c < dim; ++c) {
      const Amp u = op.m(static_cast<int>(r), static_cast<int>(c));
      g.m_re[r * dim + c] = u.real();
      g.m_im[r * dim + c] = u.imag();
    }
  g.offset.resize(dim);
  for (Index v = 0; v < dim; ++v) g.offset[v] = spread_bits(v, g.targets);
  g.path = k == 1 ? ApplyPath::Dense1q
                  : (k == 2 ? ApplyPath::Dense2q : ApplyPath::DenseK);
  return g;
}

void apply_prepared(Amp* data, Index size, const PreparedGate& g) {
  switch (g.path) {
    case ApplyPath::Dense1q:
      if (g.ctrl_mask == 0) {
        apply_dense_1q_direct(data, size, g.targets[0], g.m_re.data(),
                              g.m_im.data());
      } else {
        apply_dense_blocked<2>(data, size, g, 2);
      }
      return;
    case ApplyPath::Diag1q: {
      if (g.ctrl_mask == 0) {
        apply_diag_1q_direct(data, size, g.targets[0], g.m_re.data(),
                             g.m_im.data());
        return;
      }
      // Controlled diagonal 1q: walk the control-selected groups.
      const Amp d0(g.m_re[0], g.m_im[0]), d1(g.m_re[1], g.m_im[1]);
      const Index s0 = bit(g.targets[0]);
      for_each_base(size, g.span, g.sorted_bits, g.ctrl_mask, [&](Index b) {
        Amp& a0 = data[b];
        a0 = Amp(a0.real() * d0.real() - a0.imag() * d0.imag(),
                 a0.real() * d0.imag() + a0.imag() * d0.real());
        Amp& a1 = data[b + s0];
        a1 = Amp(a1.real() * d1.real() - a1.imag() * d1.imag(),
                 a1.real() * d1.imag() + a1.imag() * d1.real());
      });
      return;
    }
    case ApplyPath::Dense2q:
      apply_dense_blocked<4>(data, size, g, 4);
      return;
    case ApplyPath::DiagK:
      apply_diag_k(data, size, g);
      return;
    case ApplyPath::PermK:
      apply_perm_k(data, size, g);
      return;
    case ApplyPath::DenseK:
      apply_dense_blocked<0>(data, size, g,
                             Index{1} << g.targets.size());
      return;
  }
}

void apply_matrix(Amp* data, Index size, const std::vector<int>& targets,
                  const Matrix& m) {
  apply_prepared(data, size, prepare_gate(MatrixOp{m, targets, {}}));
}

void apply_controlled_matrix(Amp* data, Index size,
                             const std::vector<int>& targets,
                             const std::vector<int>& controls,
                             const Matrix& m) {
  apply_prepared(data, size, prepare_gate(MatrixOp{m, targets, controls}));
}

void apply_gate_mapped(Amp* data, Index size, const Gate& gate,
                       const std::vector<int>& bit_of_qubit) {
  MatrixOp op;
  op.targets.reserve(gate.num_targets());
  for (Qubit q : gate.targets()) op.targets.push_back(bit_of_qubit[q]);
  op.controls.reserve(gate.num_controls());
  for (Qubit q : gate.controls()) op.controls.push_back(bit_of_qubit[q]);
  op.m = gate.target_matrix();
  apply_prepared(data, size, prepare_gate(op));
}

void apply_gate(StateVector& sv, const Gate& gate) {
  // Identity layout: qubit ids are bit positions — no per-call map.
  MatrixOp op;
  op.m = gate.target_matrix();
  const std::vector<Qubit> ts = gate.targets(), cs = gate.controls();
  op.targets.assign(ts.begin(), ts.end());
  op.controls.assign(cs.begin(), cs.end());
  apply_prepared(sv.data(), sv.size(), prepare_gate(op));
}

void scale_buffer(Amp* data, Index size, Amp factor) {
  const double fr = factor.real(), fi = factor.imag();
  double* d = reinterpret_cast<double*>(data);
  for (Index i = 0; i < 2 * size; i += 2) {
    const double ar = d[i], ai = d[i + 1];
    d[i] = ar * fr - ai * fi;
    d[i + 1] = ar * fi + ai * fr;
  }
}

}  // namespace atlas
