#include "sim/apply.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {
namespace {

/// Specialized 1-qubit path: the dominant case in practice.
void apply_1q(Amp* data, Index size, int q, const Matrix& m) {
  const Amp u00 = m(0, 0), u01 = m(0, 1), u10 = m(1, 0), u11 = m(1, 1);
  const Index stride = bit(q);
  const Index groups = size >> 1;
  for (Index g = 0; g < groups; ++g) {
    const Index i0 = insert_zero_bit(g, q);
    const Index i1 = i0 | stride;
    const Amp a0 = data[i0], a1 = data[i1];
    data[i0] = u00 * a0 + u01 * a1;
    data[i1] = u10 * a0 + u11 * a1;
  }
}

/// Controlled 1-qubit path (e.g. CX, CP with one control).
void apply_1q_1c(Amp* data, Index size, int t, int c, const Matrix& m) {
  const Amp u00 = m(0, 0), u01 = m(0, 1), u10 = m(1, 0), u11 = m(1, 1);
  const Index tbit = bit(t), cbit = bit(c);
  const int lo = std::min(t, c), hi = std::max(t, c);
  const Index groups = size >> 2;
  for (Index g = 0; g < groups; ++g) {
    const Index base = insert_zero_bit(insert_zero_bit(g, lo), hi) | cbit;
    const Index i0 = base, i1 = base | tbit;
    const Amp a0 = data[i0], a1 = data[i1];
    data[i0] = u00 * a0 + u01 * a1;
    data[i1] = u10 * a0 + u11 * a1;
  }
}

}  // namespace

void apply_matrix(Amp* data, Index size, const std::vector<int>& targets,
                  const Matrix& m) {
  const int k = static_cast<int>(targets.size());
  ATLAS_DCHECK(m.rows() == (1 << k), "matrix size mismatch");
  if (k == 1) {
    apply_1q(data, size, targets[0], m);
    return;
  }
  std::vector<int> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  const Index dim = Index{1} << k;
  const Index groups = size >> k;
  // Precompute the buffer offset of each matrix index.
  std::vector<Index> offset(dim);
  for (Index v = 0; v < dim; ++v) offset[v] = spread_bits(v, targets);
  std::vector<Amp> in(dim), out(dim);
  for (Index g = 0; g < groups; ++g) {
    const Index base = insert_zero_bits(g, sorted);
    for (Index v = 0; v < dim; ++v) in[v] = data[base | offset[v]];
    for (Index r = 0; r < dim; ++r) {
      Amp acc{};
      for (Index c = 0; c < dim; ++c) {
        acc += m(static_cast<int>(r), static_cast<int>(c)) * in[c];
      }
      out[r] = acc;
    }
    for (Index v = 0; v < dim; ++v) data[base | offset[v]] = out[v];
  }
}

void apply_controlled_matrix(Amp* data, Index size,
                             const std::vector<int>& targets,
                             const std::vector<int>& controls,
                             const Matrix& m) {
  if (controls.empty()) {
    apply_matrix(data, size, targets, m);
    return;
  }
  if (targets.size() == 1 && controls.size() == 1) {
    apply_1q_1c(data, size, targets[0], controls[0], m);
    return;
  }
  const int k = static_cast<int>(targets.size());
  const int c = static_cast<int>(controls.size());
  std::vector<int> all = targets;
  all.insert(all.end(), controls.begin(), controls.end());
  std::sort(all.begin(), all.end());
  Index ctrl_mask = 0;
  for (int cq : controls) ctrl_mask |= bit(cq);
  const Index dim = Index{1} << k;
  const Index groups = size >> (k + c);
  std::vector<Index> offset(dim);
  for (Index v = 0; v < dim; ++v) offset[v] = spread_bits(v, targets);
  std::vector<Amp> in(dim), out(dim);
  for (Index g = 0; g < groups; ++g) {
    const Index base = insert_zero_bits(g, all) | ctrl_mask;
    for (Index v = 0; v < dim; ++v) in[v] = data[base | offset[v]];
    for (Index r = 0; r < dim; ++r) {
      Amp acc{};
      for (Index col = 0; col < dim; ++col) {
        acc += m(static_cast<int>(r), static_cast<int>(col)) * in[col];
      }
      out[r] = acc;
    }
    for (Index v = 0; v < dim; ++v) data[base | offset[v]] = out[v];
  }
}

void apply_gate_mapped(Amp* data, Index size, const Gate& gate,
                       const std::vector<int>& bit_of_qubit) {
  std::vector<int> targets, controls;
  targets.reserve(gate.num_targets());
  for (Qubit q : gate.targets()) targets.push_back(bit_of_qubit[q]);
  for (Qubit q : gate.controls()) controls.push_back(bit_of_qubit[q]);
  apply_controlled_matrix(data, size, targets, controls,
                          gate.target_matrix());
}

void apply_gate(StateVector& sv, const Gate& gate) {
  std::vector<int> identity(sv.num_qubits());
  for (int i = 0; i < sv.num_qubits(); ++i) identity[i] = i;
  apply_gate_mapped(sv.data(), sv.size(), gate, identity);
}

void scale_buffer(Amp* data, Index size, Amp factor) {
  for (Index i = 0; i < size; ++i) data[i] *= factor;
}

}  // namespace atlas
