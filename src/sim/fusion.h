#pragma once

/// \file fusion.h
/// Gate fusion: pre-compute the product of several gate matrices over
/// the union of their qubits, so a whole kernel can be applied as one
/// dense matrix (the paper's "fusion kernel" execution mode, which the
/// original system delegates to cuQuantum).

#include <vector>

#include "ir/gate.h"
#include "ir/matrix.h"
#include "sim/apply.h"

namespace atlas {

/// Union of the ops' bit positions (targets and controls), ascending.
std::vector<int> bit_union(const std::vector<MatrixOp>& ops);

/// The fused unitary of bit-space ops (applied left-to-right: ops[0]
/// first) over `span` (ascending bit positions; span[i] = bit i of the
/// result). Every op bit must appear in `span`. This is the bind-time
/// fusion entry used by stage programs: matrices are already
/// materialized, so no Gate objects and no parameter checks.
Matrix fuse_matrix_ops(const std::vector<MatrixOp>& ops,
                       const std::vector<int>& span);

/// Expands `gate`'s full (controlled) matrix onto the qubit space
/// `qubits` (ascending bit order: qubits[i] = bit i of the result).
/// Every qubit of the gate must appear in `qubits`.
Matrix expand_to_qubits(const Gate& gate, const std::vector<Qubit>& qubits);

/// The fused unitary of `gates` (applied left-to-right: gates[0] first)
/// over `qubits`. Result is 2^|qubits| square.
Matrix fuse_gates(const std::vector<Gate>& gates,
                  const std::vector<Qubit>& qubits);

/// Union of the qubits of `gates`, ascending.
std::vector<Qubit> qubit_union(const std::vector<Gate>& gates);

/// Builds a single Unitary gate equivalent to applying `gates` in
/// order. The result's targets are the ascending qubit union.
Gate fuse_to_gate(const std::vector<Gate>& gates);

}  // namespace atlas
