#pragma once

/// \file fusion.h
/// Gate fusion: pre-compute the product of several gate matrices over
/// the union of their qubits, so a whole kernel can be applied as one
/// dense matrix (the paper's "fusion kernel" execution mode, which the
/// original system delegates to cuQuantum).

#include <vector>

#include "ir/gate.h"
#include "ir/matrix.h"

namespace atlas {

/// Expands `gate`'s full (controlled) matrix onto the qubit space
/// `qubits` (ascending bit order: qubits[i] = bit i of the result).
/// Every qubit of the gate must appear in `qubits`.
Matrix expand_to_qubits(const Gate& gate, const std::vector<Qubit>& qubits);

/// The fused unitary of `gates` (applied left-to-right: gates[0] first)
/// over `qubits`. Result is 2^|qubits| square.
Matrix fuse_gates(const std::vector<Gate>& gates,
                  const std::vector<Qubit>& qubits);

/// Union of the qubits of `gates`, ascending.
std::vector<Qubit> qubit_union(const std::vector<Gate>& gates);

/// Builds a single Unitary gate equivalent to applying `gates` in
/// order. The result's targets are the ascending qubit union.
Gate fuse_to_gate(const std::vector<Gate>& gates);

}  // namespace atlas
