#include "sim/shm_executor.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"
#include "sim/fusion.h"

namespace atlas {
namespace {

/// Sorted, deduplicated union of the ops' bit positions plus the three
/// always-active low bits.
std::vector<int> active_bits_of(const std::vector<MatrixOp>& ops) {
  std::vector<int> bits = bit_union(ops);
  bits.insert(bits.end(), {0, 1, 2});
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  ATLAS_CHECK(static_cast<int>(bits.size()) <= kShmQubits,
              "shared-memory kernel with " << bits.size()
                                           << " active qubits exceeds "
                                           << kShmQubits);
  return bits;
}

}  // namespace

std::vector<int> active_bits(const std::vector<Gate>& gates,
                             const std::vector<int>& bit_of_qubit) {
  std::vector<MatrixOp> ops;
  ops.reserve(gates.size());
  for (const Gate& g : gates) {
    MatrixOp op;
    for (Qubit q : g.qubits()) op.targets.push_back(bit_of_qubit[q]);
    ops.push_back(std::move(op));
  }
  return active_bits_of(ops);
}

ShmProgram compile_shm_program(const std::vector<MatrixOp>& ops) {
  ShmProgram prog;
  prog.active = active_bits_of(ops);
  const int a = static_cast<int>(prog.active.size());
  const Index batch = Index{1} << a;

  // Scratch-space position of each buffer bit: a direct inverse-index
  // fill (O(bits)) instead of a per-qubit linear scan of `active`.
  const std::vector<int> pos_of_bit = inverse_index(prog.active);

  // Buffer offset of each scratch index (the gather/scatter map).
  prog.offset.resize(batch);
  for (Index v = 0; v < batch; ++v)
    prog.offset[v] = spread_bits(v, prog.active);

  prog.gates.reserve(ops.size());
  for (const MatrixOp& op : ops) {
    MatrixOp remapped;
    remapped.m = op.m;
    remapped.targets.reserve(op.targets.size());
    for (int b : op.targets)
      remapped.targets.push_back(pos_of_bit[static_cast<std::size_t>(b)]);
    remapped.controls.reserve(op.controls.size());
    for (int b : op.controls)
      remapped.controls.push_back(pos_of_bit[static_cast<std::size_t>(b)]);
    prog.gates.push_back(prepare_gate(remapped));
  }
  return prog;
}

Index run_shm_program(Amp* data, Index size, const ShmProgram& prog,
                      std::vector<Amp>& scratch) {
  const int a = static_cast<int>(prog.active.size());
  const Index batch = Index{1} << a;
  const Index num_batches = size >> a;
  scratch.resize(batch);
  Amp* shm = scratch.data();
  const Index* offset = prog.offset.data();
  for (Index b = 0; b < num_batches; ++b) {
    const Index base = insert_zero_bits(b, prog.active);
    for (Index v = 0; v < batch; ++v) shm[v] = data[base | offset[v]];
    for (const PreparedGate& g : prog.gates) apply_prepared(shm, batch, g);
    for (Index v = 0; v < batch; ++v) data[base | offset[v]] = shm[v];
  }
  return num_batches;
}

Index run_shared_memory_kernel(Amp* data, Index size,
                               const std::vector<Gate>& gates,
                               const std::vector<int>& bit_of_qubit) {
  std::vector<MatrixOp> ops;
  ops.reserve(gates.size());
  for (const Gate& g : gates) {
    MatrixOp op;
    op.m = g.target_matrix();
    for (Qubit q : g.targets()) op.targets.push_back(bit_of_qubit[q]);
    for (Qubit q : g.controls()) op.controls.push_back(bit_of_qubit[q]);
    ops.push_back(std::move(op));
  }
  std::vector<Amp> scratch;
  return run_shm_program(data, size, compile_shm_program(ops), scratch);
}

}  // namespace atlas
