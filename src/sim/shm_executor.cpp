#include "sim/shm_executor.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"
#include "sim/fusion.h"

namespace atlas {
namespace {

/// Sorted, deduplicated union of the ops' bit positions plus the three
/// always-active low bits.
std::vector<int> active_bits_of(const std::vector<MatrixOp>& ops) {
  std::vector<int> bits = bit_union(ops);
  bits.insert(bits.end(), {0, 1, 2});
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  ATLAS_CHECK(static_cast<int>(bits.size()) <= kShmQubits,
              "shared-memory kernel with " << bits.size()
                                           << " active qubits exceeds "
                                           << kShmQubits);
  return bits;
}

}  // namespace

std::vector<int> active_bits(const std::vector<Gate>& gates,
                             const std::vector<int>& bit_of_qubit) {
  std::vector<MatrixOp> ops;
  ops.reserve(gates.size());
  for (const Gate& g : gates) {
    MatrixOp op;
    for (Qubit q : g.qubits()) op.targets.push_back(bit_of_qubit[q]);
    ops.push_back(std::move(op));
  }
  return active_bits_of(ops);
}

ShmSkeleton compile_shm_skeleton(const std::vector<MatrixOp>& ops) {
  ShmSkeleton skel;
  skel.active = active_bits_of(ops);
  const int a = static_cast<int>(skel.active.size());
  const Index batch = Index{1} << a;

  // Scratch-space position of each buffer bit: a direct inverse-index
  // fill (O(bits)) instead of a per-qubit linear scan of `active`.
  const std::vector<int> pos_of_bit = inverse_index(skel.active);

  // Buffer offset of each scratch index (the gather/scatter map).
  skel.offset.resize(batch);
  for (Index v = 0; v < batch; ++v)
    skel.offset[v] = spread_bits(v, skel.active);

  skel.ops.reserve(ops.size());
  for (const MatrixOp& op : ops) {
    ShmSkeleton::OpSlots slots;
    slots.targets.reserve(op.targets.size());
    for (int b : op.targets)
      slots.targets.push_back(pos_of_bit[static_cast<std::size_t>(b)]);
    slots.controls.reserve(op.controls.size());
    for (int b : op.controls)
      slots.controls.push_back(pos_of_bit[static_cast<std::size_t>(b)]);
    skel.ops.push_back(std::move(slots));
  }
  return skel;
}

ShmProgram bind_shm_program(const ShmSkeleton& skeleton,
                            const std::vector<const Matrix*>& matrices) {
  ATLAS_CHECK(matrices.size() == skeleton.ops.size(),
              "shm bind: " << matrices.size() << " matrices for "
                           << skeleton.ops.size() << " ops");
  ShmProgram prog;
  prog.active = skeleton.active;
  prog.offset = skeleton.offset;
  prog.gates.reserve(skeleton.ops.size());
  for (std::size_t i = 0; i < skeleton.ops.size(); ++i) {
    MatrixOp remapped;
    remapped.m = *matrices[i];
    remapped.targets = skeleton.ops[i].targets;
    remapped.controls = skeleton.ops[i].controls;
    prog.gates.push_back(prepare_gate(remapped));
  }
  return prog;
}

ShmProgram compile_shm_program(const std::vector<MatrixOp>& ops) {
  std::vector<const Matrix*> matrices;
  matrices.reserve(ops.size());
  for (const MatrixOp& op : ops) matrices.push_back(&op.m);
  return bind_shm_program(compile_shm_skeleton(ops), matrices);
}

Index run_shm_program(Amp* data, Index size, const ShmProgram& prog,
                      std::vector<Amp>& scratch) {
  const int a = static_cast<int>(prog.active.size());
  const Index batch = Index{1} << a;
  const Index num_batches = size >> a;
  scratch.resize(batch);
  Amp* shm = scratch.data();
  const Index* offset = prog.offset.data();
  for (Index b = 0; b < num_batches; ++b) {
    const Index base = insert_zero_bits(b, prog.active);
    for (Index v = 0; v < batch; ++v) shm[v] = data[base | offset[v]];
    for (const PreparedGate& g : prog.gates) apply_prepared(shm, batch, g);
    for (Index v = 0; v < batch; ++v) data[base | offset[v]] = shm[v];
  }
  return num_batches;
}

Index run_shared_memory_kernel(Amp* data, Index size,
                               const std::vector<Gate>& gates,
                               const std::vector<int>& bit_of_qubit) {
  std::vector<MatrixOp> ops;
  ops.reserve(gates.size());
  for (const Gate& g : gates) {
    MatrixOp op;
    op.m = g.target_matrix();
    for (Qubit q : g.targets()) op.targets.push_back(bit_of_qubit[q]);
    for (Qubit q : g.controls()) op.controls.push_back(bit_of_qubit[q]);
    ops.push_back(std::move(op));
  }
  std::vector<Amp> scratch;
  return run_shm_program(data, size, compile_shm_program(ops), scratch);
}

}  // namespace atlas
