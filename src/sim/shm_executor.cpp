#include "sim/shm_executor.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"
#include "sim/apply.h"

namespace atlas {

std::vector<int> active_bits(const std::vector<Gate>& gates,
                             const std::vector<int>& bit_of_qubit) {
  std::vector<int> bits = {0, 1, 2};
  for (const Gate& g : gates)
    for (Qubit q : g.qubits()) bits.push_back(bit_of_qubit[q]);
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  ATLAS_CHECK(static_cast<int>(bits.size()) <= kShmQubits,
              "shared-memory kernel with " << bits.size()
                                           << " active qubits exceeds "
                                           << kShmQubits);
  return bits;
}

Index run_shared_memory_kernel(Amp* data, Index size,
                               const std::vector<Gate>& gates,
                               const std::vector<int>& bit_of_qubit) {
  const std::vector<int> active = active_bits(gates, bit_of_qubit);
  const int a = static_cast<int>(active.size());
  const Index batch = Index{1} << a;
  const Index num_batches = size >> a;

  // Bit position of each qubit *inside the scratch buffer*.
  std::vector<int> shm_bit_of_qubit(bit_of_qubit.size(), -1);
  for (std::size_t q = 0; q < bit_of_qubit.size(); ++q) {
    const auto it =
        std::find(active.begin(), active.end(), bit_of_qubit[q]);
    if (it != active.end())
      shm_bit_of_qubit[q] = static_cast<int>(it - active.begin());
  }

  // Buffer offset of each scratch index (the gather/scatter map).
  std::vector<Index> offset(batch);
  for (Index v = 0; v < batch; ++v) offset[v] = spread_bits(v, active);

  std::vector<Amp> shm(batch);
  for (Index b = 0; b < num_batches; ++b) {
    const Index base = insert_zero_bits(b, active);
    for (Index v = 0; v < batch; ++v) shm[v] = data[base | offset[v]];
    for (const Gate& g : gates)
      apply_gate_mapped(shm.data(), batch, g, shm_bit_of_qubit);
    for (Index v = 0; v < batch; ++v) data[base | offset[v]] = shm[v];
  }
  return num_batches;
}

}  // namespace atlas
