#pragma once

/// \file state_vector.h
/// Dense Schrödinger state vector: 2^n complex amplitudes. Used both as
/// the reference single-device representation and as the per-shard
/// buffer type in the distributed executor.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace atlas {

class StateVector {
 public:
  StateVector() = default;

  /// |0...0> on n qubits.
  explicit StateVector(int num_qubits);

  /// Adopts an existing amplitude buffer (size must be a power of two).
  explicit StateVector(std::vector<Amp> amps);

  int num_qubits() const { return num_qubits_; }
  Index size() const { return static_cast<Index>(amps_.size()); }

  Amp& operator[](Index i) { return amps_[i]; }
  const Amp& operator[](Index i) const { return amps_[i]; }

  Amp* data() { return amps_.data(); }
  const Amp* data() const { return amps_.data(); }

  std::vector<Amp>& amplitudes() { return amps_; }
  const std::vector<Amp>& amplitudes() const { return amps_; }

  /// Sum of |a_i|^2 (should be 1 for a normalized state).
  double norm_sq() const;

  /// |<this|other>|: 1 for identical states up to global phase.
  double fidelity(const StateVector& other) const;

  /// Max |a_i - b_i| across amplitudes.
  double max_abs_diff(const StateVector& other) const;

  /// Haar-ish random normalized state (Gaussian amplitudes, normalized).
  static StateVector random(int num_qubits, std::uint64_t seed);

 private:
  int num_qubits_ = 0;
  std::vector<Amp> amps_;
};

}  // namespace atlas
