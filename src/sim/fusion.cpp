#include "sim/fusion.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {

Matrix expand_to_qubits(const Gate& gate, const std::vector<Qubit>& qubits) {
  const int nq = static_cast<int>(qubits.size());
  ATLAS_CHECK(nq <= 16, "refusing to expand onto " << nq << " qubits");
  // Fusion is bind-time work: matrices of symbolic gates do not exist
  // until their parameters are bound, so fail with the fix spelled out
  // instead of deep inside target_matrix().
  ATLAS_CHECK(!gate.is_parameterized(),
              "cannot fuse gate '" << gate.to_string()
                                   << "' with unbound symbolic parameters; "
                                      "bind a ParamBinding first");
  // Position of each gate qubit within `qubits`.
  std::vector<int> pos;
  pos.reserve(gate.num_qubits());
  for (Qubit q : gate.qubits()) {
    const auto it = std::find(qubits.begin(), qubits.end(), q);
    ATLAS_CHECK(it != qubits.end(), "gate qubit " << q << " not in span");
    pos.push_back(static_cast<int>(it - qubits.begin()));
  }
  const Matrix g = gate.full_matrix();
  const Index dim = Index{1} << nq;
  Index gate_mask = 0;
  for (int p : pos) gate_mask |= bit(p);
  Matrix out(static_cast<int>(dim), static_cast<int>(dim));
  for (Index r = 0; r < dim; ++r) {
    const Index rest = r & ~gate_mask;
    const Index gr = gather_bits(r, pos);
    for (Index gc = 0; gc < (Index{1} << gate.num_qubits()); ++gc) {
      const Amp v = g(static_cast<int>(gr), static_cast<int>(gc));
      if (v == Amp{}) continue;
      const Index c = rest | spread_bits(gc, pos);
      out(static_cast<int>(r), static_cast<int>(c)) = v;
    }
  }
  return out;
}

Matrix fuse_gates(const std::vector<Gate>& gates,
                  const std::vector<Qubit>& qubits) {
  const Index dim = Index{1} << qubits.size();
  Matrix m = Matrix::identity(static_cast<int>(dim));
  for (const Gate& g : gates) m = expand_to_qubits(g, qubits) * m;
  return m;
}

std::vector<Qubit> qubit_union(const std::vector<Gate>& gates) {
  std::vector<Qubit> qs;
  for (const Gate& g : gates)
    qs.insert(qs.end(), g.qubits().begin(), g.qubits().end());
  std::sort(qs.begin(), qs.end());
  qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
  return qs;
}

Gate fuse_to_gate(const std::vector<Gate>& gates) {
  ATLAS_CHECK(!gates.empty(), "cannot fuse an empty gate list");
  std::vector<Qubit> qs = qubit_union(gates);
  Matrix m = fuse_gates(gates, qs);
  return Gate::unitary(std::move(qs), std::move(m));
}

}  // namespace atlas
