#include "sim/fusion.h"

#include <algorithm>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {
namespace {

/// Expands a full (already controlled) matrix whose qubit i sits at
/// span position pos[i] onto the 2^|span| space. Shared by the Gate
/// and MatrixOp entries.
Matrix expand_full(const Matrix& g, const std::vector<int>& pos,
                   int span_qubits) {
  const Index dim = Index{1} << span_qubits;
  const Index gate_dim = Index{1} << pos.size();
  Index gate_mask = 0;
  for (int p : pos) gate_mask |= bit(p);
  Matrix out(static_cast<int>(dim), static_cast<int>(dim));
  for (Index r = 0; r < dim; ++r) {
    const Index rest = r & ~gate_mask;
    const Index gr = gather_bits(r, pos);
    for (Index gc = 0; gc < gate_dim; ++gc) {
      const Amp v = g(static_cast<int>(gr), static_cast<int>(gc));
      if (v == Amp{}) continue;
      const Index c = rest | spread_bits(gc, pos);
      out(static_cast<int>(r), static_cast<int>(c)) = v;
    }
  }
  return out;
}

/// Full (controlled) matrix of a bit-space op. Qubit order is
/// targets..., controls... (matching Gate::full_matrix).
Matrix op_full_matrix(const MatrixOp& op) {
  return embed_controlled(op.m, static_cast<int>(op.controls.size()));
}

}  // namespace

Matrix expand_to_qubits(const Gate& gate, const std::vector<Qubit>& qubits) {
  const int nq = static_cast<int>(qubits.size());
  ATLAS_CHECK(nq <= 16, "refusing to expand onto " << nq << " qubits");
  // Fusion is bind-time work: matrices of symbolic gates do not exist
  // until their parameters are bound, so fail with the fix spelled out
  // instead of deep inside target_matrix().
  ATLAS_CHECK(!gate.is_parameterized(),
              "cannot fuse gate '" << gate.to_string()
                                   << "' with unbound symbolic parameters; "
                                      "bind a ParamBinding first");
  // Position of each gate qubit within `qubits`.
  std::vector<int> pos;
  pos.reserve(gate.num_qubits());
  for (Qubit q : gate.qubits()) {
    const auto it = std::find(qubits.begin(), qubits.end(), q);
    ATLAS_CHECK(it != qubits.end(), "gate qubit " << q << " not in span");
    pos.push_back(static_cast<int>(it - qubits.begin()));
  }
  return expand_full(gate.full_matrix(), pos, nq);
}

std::vector<int> bit_union(const std::vector<MatrixOp>& ops) {
  std::vector<int> bits;
  for (const MatrixOp& op : ops) {
    bits.insert(bits.end(), op.targets.begin(), op.targets.end());
    bits.insert(bits.end(), op.controls.begin(), op.controls.end());
  }
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  return bits;
}

Matrix fuse_matrix_ops(const std::vector<MatrixOp>& ops,
                       const std::vector<int>& span) {
  const int nq = static_cast<int>(span.size());
  ATLAS_CHECK(nq <= 16, "refusing to fuse onto " << nq << " qubits");
  // Inverse index: span position of each buffer bit (no linear scans).
  const std::vector<int> pos_of_bit = inverse_index(span);
  const auto pos_of = [&](int b) {
    ATLAS_CHECK(b >= 0 && b < static_cast<int>(pos_of_bit.size()) &&
                    pos_of_bit[static_cast<std::size_t>(b)] >= 0,
                "op bit " << b << " not in fusion span");
    return pos_of_bit[static_cast<std::size_t>(b)];
  };

  const Index dim = Index{1} << nq;
  Matrix m = Matrix::identity(static_cast<int>(dim));
  for (const MatrixOp& op : ops) {
    std::vector<int> pos;
    pos.reserve(op.targets.size() + op.controls.size());
    for (int b : op.targets) pos.push_back(pos_of(b));
    for (int b : op.controls) pos.push_back(pos_of(b));
    m = expand_full(op_full_matrix(op), pos, nq) * m;
  }
  return m;
}

Matrix fuse_gates(const std::vector<Gate>& gates,
                  const std::vector<Qubit>& qubits) {
  const Index dim = Index{1} << qubits.size();
  Matrix m = Matrix::identity(static_cast<int>(dim));
  for (const Gate& g : gates) m = expand_to_qubits(g, qubits) * m;
  return m;
}

std::vector<Qubit> qubit_union(const std::vector<Gate>& gates) {
  std::vector<Qubit> qs;
  for (const Gate& g : gates)
    qs.insert(qs.end(), g.qubits().begin(), g.qubits().end());
  std::sort(qs.begin(), qs.end());
  qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
  return qs;
}

Gate fuse_to_gate(const std::vector<Gate>& gates) {
  ATLAS_CHECK(!gates.empty(), "cannot fuse an empty gate list");
  std::vector<Qubit> qs = qubit_union(gates);
  Matrix m = fuse_gates(gates, qs);
  return Gate::unitary(std::move(qs), std::move(m));
}

}  // namespace atlas
