#include "sim/state_vector.h"

#include <cmath>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  ATLAS_CHECK(num_qubits >= 0 && num_qubits < 48,
              "unreasonable qubit count " << num_qubits);
  amps_.assign(Index{1} << num_qubits, Amp{});
  amps_[0] = Amp(1.0, 0.0);
}

StateVector::StateVector(std::vector<Amp> amps) : amps_(std::move(amps)) {
  ATLAS_CHECK(is_pow2(amps_.size()), "buffer size must be a power of two");
  num_qubits_ = floor_log2(amps_.size());
}

double StateVector::norm_sq() const {
  double s = 0;
  for (const Amp& a : amps_) s += std::norm(a);
  return s;
}

double StateVector::fidelity(const StateVector& other) const {
  ATLAS_CHECK(size() == other.size(), "state size mismatch");
  Amp dot{};
  for (Index i = 0; i < size(); ++i) dot += std::conj(amps_[i]) * other[i];
  return std::abs(dot);
}

double StateVector::max_abs_diff(const StateVector& other) const {
  ATLAS_CHECK(size() == other.size(), "state size mismatch");
  double m = 0;
  for (Index i = 0; i < size(); ++i)
    m = std::max(m, std::abs(amps_[i] - other[i]));
  return m;
}

StateVector StateVector::random(int num_qubits, std::uint64_t seed) {
  StateVector sv(num_qubits);
  Rng rng(seed);
  double norm = 0;
  for (Index i = 0; i < sv.size(); ++i) {
    sv[i] = rng.amp();
    norm += std::norm(sv[i]);
  }
  const double inv = 1.0 / std::sqrt(norm);
  for (Index i = 0; i < sv.size(); ++i) sv[i] *= inv;
  return sv;
}

}  // namespace atlas
