#pragma once

/// \file shm_executor.h
/// Shared-memory kernel execution (the paper's second kernel type,
/// mirroring HyQuas' SHM-GROUPING): amplitudes are loaded into a small
/// scratch buffer ("GPU shared memory") in micro-batches indexed by the
/// kernel's *active qubits*, every gate of the kernel is applied inside
/// the scratch buffer, and the batch is stored back. Per the paper
/// (footnote 3), the three least significant buffer bits are always
/// active so each load moves at least 2^3 contiguous amplitudes.

#include <vector>

#include "common/types.h"
#include "ir/gate.h"

namespace atlas {

/// Number of amplitudes the emulated shared memory holds (2^10 complex
/// doubles = 16 KiB, matching an A100 SM's usable shared memory
/// budget per block at double precision).
inline constexpr int kShmQubits = 10;

/// Executes `gates` on `data` via micro-batched shared-memory passes.
///
/// \param bit_of_qubit  maps each logical qubit to its buffer bit
///                      position; gates must only touch qubits whose
///                      bit position is < log2(size).
/// \returns the number of micro-batches processed (used by cost-model
///          calibration).
Index run_shared_memory_kernel(Amp* data, Index size,
                               const std::vector<Gate>& gates,
                               const std::vector<int>& bit_of_qubit);

/// The active bit positions a shared-memory kernel would use for
/// `gates` under the given layout: the union of the gates' bit
/// positions plus bits {0,1,2}, ascending. Throws if more than
/// kShmQubits bits would be active.
std::vector<int> active_bits(const std::vector<Gate>& gates,
                             const std::vector<int>& bit_of_qubit);

}  // namespace atlas
