#pragma once

/// \file shm_executor.h
/// Shared-memory kernel execution (the paper's second kernel type,
/// mirroring HyQuas' SHM-GROUPING): amplitudes are loaded into a small
/// scratch buffer ("GPU shared memory") in micro-batches indexed by the
/// kernel's *active qubits*, every gate of the kernel is applied inside
/// the scratch buffer, and the batch is stored back. Per the paper
/// (footnote 3), the three least significant buffer bits are always
/// active so each load moves at least 2^3 contiguous amplitudes.
///
/// The kernel is compiled once into a ShmProgram — active-bit set,
/// gather/scatter offset table, and the member gates pre-lowered into
/// scratch-space PreparedGates — and replayed per shard / per stage
/// without rebuilding any of it (compile_shm_program / run_shm_program).
/// run_shared_memory_kernel is the one-shot wrapper.

#include <vector>

#include "common/types.h"
#include "ir/gate.h"
#include "sim/apply.h"

namespace atlas {

/// Number of amplitudes the emulated shared memory holds (2^10 complex
/// doubles = 16 KiB, matching an A100 SM's usable shared memory
/// budget per block at double precision).
inline constexpr int kShmQubits = 10;

/// A compiled shared-memory kernel: everything invariant across
/// micro-batches, shards, and bindings of the same localized gate list.
struct ShmProgram {
  std::vector<int> active;       ///< active buffer bit positions, ascending
  std::vector<Index> offset;     ///< gather/scatter map, size 2^|active|
  std::vector<PreparedGate> gates;  ///< lowered to scratch bit positions
};

/// The bit-structure half of a ShmProgram — everything except matrix
/// values: active bits, the gather/scatter offset table, and each op's
/// scratch-space target/control positions. Binding-independent, so
/// sweeps and trajectory batches compile it once and only re-fill the
/// matrices per point (bind_shm_program).
struct ShmSkeleton {
  std::vector<int> active;    ///< active buffer bit positions, ascending
  std::vector<Index> offset;  ///< gather/scatter map, size 2^|active|
  struct OpSlots {
    std::vector<int> targets, controls;  ///< scratch bit positions
  };
  std::vector<OpSlots> ops;
};

/// Compiles the bit-structure of `ops` (matrices ignored). Throws if
/// more than kShmQubits bits would be active.
ShmSkeleton compile_shm_skeleton(const std::vector<MatrixOp>& ops);

/// Fills a skeleton with matrix values (positionally aligned with the
/// ops the skeleton was compiled from) into a runnable ShmProgram.
ShmProgram bind_shm_program(const ShmSkeleton& skeleton,
                            const std::vector<const Matrix*>& matrices);

/// Compiles buffer-bit-space ops into a ShmProgram. Throws if more than
/// kShmQubits bits would be active.
ShmProgram compile_shm_program(const std::vector<MatrixOp>& ops);

/// Replays a compiled program over the buffer. `scratch` is caller-
/// provided storage reused across invocations (resized as needed).
/// \returns the number of micro-batches processed (used by cost-model
///          calibration).
Index run_shm_program(Amp* data, Index size, const ShmProgram& prog,
                      std::vector<Amp>& scratch);

/// One-shot wrapper: compiles `gates` under `bit_of_qubit` and runs the
/// program once.
///
/// \param bit_of_qubit  maps each logical qubit to its buffer bit
///                      position; gates must only touch qubits whose
///                      bit position is < log2(size).
Index run_shared_memory_kernel(Amp* data, Index size,
                               const std::vector<Gate>& gates,
                               const std::vector<int>& bit_of_qubit);

/// The active bit positions a shared-memory kernel would use for
/// `gates` under the given layout: the union of the gates' bit
/// positions plus bits {0,1,2}, ascending. Throws if more than
/// kShmQubits bits would be active.
std::vector<int> active_bits(const std::vector<Gate>& gates,
                             const std::vector<int>& bit_of_qubit);

}  // namespace atlas
