#pragma once

/// \file simplex.h
/// A dense two-phase primal simplex solver for linear programs in the
/// form
///     minimize    c^T x
///     subject to  A_i x {<=, =, >=} b_i      for each row i
///                 0 <= x_j <= ub_j           for each variable j
///
/// This is the LP engine underneath the 0/1 branch-and-bound MIP
/// solver (ilp/solver.h) that stands in for the paper's off-the-shelf
/// HiGHS solver. It targets the small/medium models produced by the
/// circuit-staging formulation; it is a textbook tableau implementation
/// with Bland's rule for anti-cycling.

#include <vector>

namespace atlas::lp {

enum class RowSense { LessEq, Eq, GreaterEq };

enum class LpStatus { Optimal, Infeasible, Unbounded };

struct LpRow {
  /// Sparse row: parallel arrays of variable indices and coefficients.
  std::vector<int> vars;
  std::vector<double> coeffs;
  RowSense sense = RowSense::LessEq;
  double rhs = 0.0;
};

struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;   // size num_vars; minimized
  std::vector<double> upper;       // per-variable upper bound (>= 0)
  std::vector<LpRow> rows;

  /// Creates a variable with the given objective coefficient and upper
  /// bound; returns its index.
  int add_var(double obj_coeff, double upper_bound = 1.0);

  void add_row(LpRow row);
};

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the LP. Deterministic; throws atlas::Error on malformed
/// input (NaNs, bad indices).
LpSolution solve(const LpProblem& problem);

}  // namespace atlas::lp
