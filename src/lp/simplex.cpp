#include "lp/simplex.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace atlas::lp {
namespace {

constexpr double kEps = 1e-9;

/// Dense tableau with explicit basis, pivoted with Bland's rule.
class Tableau {
 public:
  Tableau(int num_rows, int num_cols)
      : m_(num_rows), n_(num_cols), a_(num_rows, std::vector<double>(num_cols + 1, 0.0)),
        obj_(num_cols + 1, 0.0), basis_(num_rows, -1) {}

  std::vector<double>& row(int i) { return a_[i]; }
  double& obj(int j) { return obj_[j]; }
  double rhs_obj() const { return obj_[n_]; }
  int basis(int i) const { return basis_[i]; }
  void set_basis(int i, int var) { basis_[i] = var; }

  /// Eliminates basic columns from the objective row.
  void price_out() {
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[i];
      const double coeff = obj_[b];
      if (std::abs(coeff) < kEps) continue;
      for (int j = 0; j <= n_; ++j) obj_[j] -= coeff * a_[i][j];
    }
  }

  /// Runs simplex iterations until optimal or unbounded. Returns false
  /// on unbounded.
  bool iterate(int max_col) {
    for (;;) {
      // Bland: entering variable = lowest index with negative reduced
      // cost (we minimize; improving columns have obj coeff < 0).
      int enter = -1;
      for (int j = 0; j < max_col; ++j) {
        if (obj_[j] < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      // Ratio test; Bland tie-break on basis variable index.
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        if (a_[i][enter] > kEps) {
          const double ratio = a_[i][n_] / a_[i][enter];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave < 0 || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave < 0) return false;  // unbounded
      pivot(leave, enter);
    }
  }

  void pivot(int r, int c) {
    const double p = a_[r][c];
    ATLAS_CHECK(std::abs(p) > kEps, "zero pivot");
    for (int j = 0; j <= n_; ++j) a_[r][j] /= p;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double f = a_[i][c];
      if (std::abs(f) < kEps) continue;
      for (int j = 0; j <= n_; ++j) a_[i][j] -= f * a_[r][j];
    }
    const double f = obj_[c];
    if (std::abs(f) > kEps)
      for (int j = 0; j <= n_; ++j) obj_[j] -= f * a_[r][j];
    basis_[r] = c;
  }

  int rows() const { return m_; }
  int cols() const { return n_; }

 private:
  int m_, n_;
  std::vector<std::vector<double>> a_;  // m x (n+1); last col = rhs
  std::vector<double> obj_;
  std::vector<int> basis_;
};

}  // namespace

int LpProblem::add_var(double obj_coeff, double upper_bound) {
  objective.push_back(obj_coeff);
  upper.push_back(upper_bound);
  return num_vars++;
}

void LpProblem::add_row(LpRow row) { rows.push_back(std::move(row)); }

LpSolution solve(const LpProblem& problem) {
  const int n = problem.num_vars;
  ATLAS_CHECK(static_cast<int>(problem.objective.size()) == n &&
                  static_cast<int>(problem.upper.size()) == n,
              "inconsistent LpProblem arrays");

  // Materialize rows including variable upper bounds (x_j <= ub_j),
  // skipping bounds that can never bind for binary models (ub >= big).
  struct DenseRow {
    std::vector<double> a;
    RowSense sense;
    double rhs;
  };
  std::vector<DenseRow> rows;
  rows.reserve(problem.rows.size() + n);
  for (const LpRow& r : problem.rows) {
    DenseRow d{std::vector<double>(n, 0.0), r.sense, r.rhs};
    ATLAS_CHECK(r.vars.size() == r.coeffs.size(), "ragged LpRow");
    for (std::size_t k = 0; k < r.vars.size(); ++k) {
      ATLAS_CHECK(r.vars[k] >= 0 && r.vars[k] < n,
                  "row references unknown variable " << r.vars[k]);
      d.a[r.vars[k]] += r.coeffs[k];
    }
    rows.push_back(std::move(d));
  }
  for (int j = 0; j < n; ++j) {
    ATLAS_CHECK(problem.upper[j] >= 0, "negative upper bound");
    if (problem.upper[j] < 1e17) {
      DenseRow d{std::vector<double>(n, 0.0), RowSense::LessEq,
                 problem.upper[j]};
      d.a[j] = 1.0;
      rows.push_back(std::move(d));
    }
  }

  const int m = static_cast<int>(rows.size());
  // Column layout: [0,n) structural; [n, n+m) slack/surplus (zero
  // column for Eq rows); [n+m, n+2m) artificials (created on demand).
  const int n_total = n + 2 * m;
  Tableau t(m, n_total);
  int num_artificials = 0;
  for (int i = 0; i < m; ++i) {
    DenseRow& r = rows[i];
    double sign = 1.0;
    if (r.rhs < 0) {
      // Normalize rhs >= 0 by negating the row (flips the sense).
      sign = -1.0;
      r.rhs = -r.rhs;
      r.sense = r.sense == RowSense::LessEq ? RowSense::GreaterEq
                : r.sense == RowSense::GreaterEq ? RowSense::LessEq
                                                 : RowSense::Eq;
    }
    auto& row = t.row(i);
    for (int j = 0; j < n; ++j) row[j] = sign * r.a[j];
    row[n_total] = r.rhs;
    if (r.sense == RowSense::LessEq) {
      row[n + i] = 1.0;  // slack enters the basis directly
      t.set_basis(i, n + i);
    } else {
      if (r.sense == RowSense::GreaterEq) row[n + i] = -1.0;  // surplus
      const int art = n + m + i;
      row[art] = 1.0;
      t.set_basis(i, art);
      ++num_artificials;
    }
  }

  // Phase 1: minimize the sum of artificials.
  if (num_artificials > 0) {
    for (int i = 0; i < m; ++i)
      if (t.basis(i) >= n + m) t.obj(t.basis(i)) = 1.0;
    t.price_out();
    // Artificials may enter/leave; allow pivoting on all columns.
    if (!t.iterate(n_total)) {
      // Phase 1 is bounded below by 0, so this cannot happen.
      throw Error("phase-1 simplex reported unbounded");
    }
    if (t.rhs_obj() < -kEps) {
      // Objective row stores -(current value); infeasible if sum > 0.
      return {LpStatus::Infeasible, 0.0, {}};
    }
    // Drive any artificial still in the basis (at value 0) out by
    // pivoting on any nonbasic non-artificial column in its row.
    for (int i = 0; i < m; ++i) {
      if (t.basis(i) >= n + m) {
        bool pivoted = false;
        for (int j = 0; j < n + m && !pivoted; ++j) {
          if (std::abs(t.row(i)[j]) > kEps) {
            t.pivot(i, j);
            pivoted = true;
          }
        }
        // If the whole row is zero, the row is redundant; the
        // artificial stays basic at value 0 and is harmless as long as
        // phase 2 never pivots on artificial columns.
      }
    }
  }

  // Phase 2: original objective over non-artificial columns.
  for (int j = 0; j <= n_total; ++j) t.obj(j) = 0.0;
  for (int j = 0; j < n; ++j) t.obj(j) = problem.objective[j];
  t.price_out();
  if (!t.iterate(n + m)) return {LpStatus::Unbounded, 0.0, {}};

  LpSolution sol;
  sol.status = LpStatus::Optimal;
  sol.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    const int b = t.basis(i);
    if (b < n) sol.x[b] = t.row(i)[n_total];
  }
  sol.objective = -t.rhs_obj();
  return sol;
}

}  // namespace atlas::lp
