#pragma once

/// \file solver.h
/// A 0/1 integer linear programming solver: branch-and-bound over the
/// LP relaxation (lp/simplex.h), with LP-guided rounding for incumbent
/// generation and most-fractional branching. This plays the role of
/// the paper's off-the-shelf PuLP/HiGHS solver for the circuit-staging
/// model (Section IV, Eq. 3-11).
///
/// The solver is exact: when it returns Optimal the solution minimizes
/// the objective over all feasible 0/1 assignments. A node budget
/// guards against pathological instances; exceeding it returns
/// `Feasible` (best incumbent, not proven optimal) or `NodeLimit`.

#include <string>
#include <vector>

#include "lp/simplex.h"

namespace atlas::ilp {

enum class IlpStatus {
  Optimal,    // proven optimal incumbent
  Feasible,   // incumbent found but search truncated by node budget
  Infeasible, // no 0/1 assignment satisfies the constraints
  NodeLimit,  // budget exhausted with no incumbent
};

struct IlpSolution {
  IlpStatus status = IlpStatus::Infeasible;
  double objective = 0.0;
  std::vector<int> x;     // 0/1 per variable
  long nodes_explored = 0;
};

class IlpModel {
 public:
  /// Adds a binary variable with the given objective coefficient
  /// (minimized); returns its index. `name` aids debugging.
  int add_binary(double obj_coeff, std::string name = "");

  /// Adds sum(coeffs[i] * x[vars[i]]) `sense` rhs.
  void add_constraint(std::vector<int> vars, std::vector<double> coeffs,
                      lp::RowSense sense, double rhs);

  /// Convenience: x[a] <= x[b] + x[c] (common implication shape).
  void add_le_sum(int a, std::vector<int> rhs_vars);

  int num_vars() const { return static_cast<int>(names_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  const std::string& var_name(int v) const { return names_[v]; }

  /// Solves with branch-and-bound. `max_nodes` bounds the search tree.
  IlpSolution solve(long max_nodes = 200000) const;

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<lp::LpRow> rows_;
};

}  // namespace atlas::ilp
