#include "ilp/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace atlas::ilp {
namespace {

constexpr double kIntTol = 1e-6;

bool is_integral(double v) {
  return std::abs(v - std::round(v)) < kIntTol;
}

/// Checks a candidate 0/1 vector against the raw rows.
bool satisfies(const std::vector<lp::LpRow>& rows, const std::vector<int>& x) {
  for (const auto& r : rows) {
    double lhs = 0;
    for (std::size_t k = 0; k < r.vars.size(); ++k)
      lhs += r.coeffs[k] * x[r.vars[k]];
    switch (r.sense) {
      case lp::RowSense::LessEq:
        if (lhs > r.rhs + kIntTol) return false;
        break;
      case lp::RowSense::GreaterEq:
        if (lhs < r.rhs - kIntTol) return false;
        break;
      case lp::RowSense::Eq:
        if (std::abs(lhs - r.rhs) > kIntTol) return false;
        break;
    }
  }
  return true;
}

}  // namespace

int IlpModel::add_binary(double obj_coeff, std::string name) {
  objective_.push_back(obj_coeff);
  if (name.empty()) name = "x" + std::to_string(names_.size());
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size()) - 1;
}

void IlpModel::add_constraint(std::vector<int> vars,
                              std::vector<double> coeffs, lp::RowSense sense,
                              double rhs) {
  ATLAS_CHECK(vars.size() == coeffs.size(), "ragged constraint");
  for (int v : vars)
    ATLAS_CHECK(v >= 0 && v < num_vars(), "unknown variable " << v);
  rows_.push_back(lp::LpRow{std::move(vars), std::move(coeffs), sense, rhs});
}

void IlpModel::add_le_sum(int a, std::vector<int> rhs_vars) {
  std::vector<int> vars = {a};
  std::vector<double> coeffs = {1.0};
  for (int v : rhs_vars) {
    vars.push_back(v);
    coeffs.push_back(-1.0);
  }
  add_constraint(std::move(vars), std::move(coeffs), lp::RowSense::LessEq,
                 0.0);
}

IlpSolution IlpModel::solve(long max_nodes) const {
  const int n = num_vars();

  IlpSolution best;
  best.status = IlpStatus::Infeasible;
  double incumbent = std::numeric_limits<double>::infinity();

  // A branch-and-bound node fixes a prefix-arbitrary subset of
  // variables; unfixed = -1.
  struct Node {
    std::vector<int> fixed;  // -1 / 0 / 1 per variable
  };
  std::vector<Node> stack;
  stack.push_back(Node{std::vector<int>(n, -1)});

  long nodes = 0;
  while (!stack.empty()) {
    if (nodes >= max_nodes) {
      if (best.status == IlpStatus::Optimal) best.status = IlpStatus::Feasible;
      else best.status = IlpStatus::NodeLimit;
      best.nodes_explored = nodes;
      return best;
    }
    ++nodes;
    const Node node = std::move(stack.back());
    stack.pop_back();

    // Build the LP relaxation with the node's fixings as bound rows.
    lp::LpProblem lp;
    lp.num_vars = n;
    lp.objective = objective_;
    lp.upper.assign(n, 1.0);
    lp.rows = rows_;
    for (int j = 0; j < n; ++j) {
      if (node.fixed[j] == 0) {
        lp.upper[j] = 0.0;
      } else if (node.fixed[j] == 1) {
        lp.rows.push_back(
            lp::LpRow{{j}, {1.0}, lp::RowSense::GreaterEq, 1.0});
      }
    }
    const lp::LpSolution relax = lp::solve(lp);
    if (relax.status == lp::LpStatus::Infeasible) continue;
    ATLAS_CHECK(relax.status == lp::LpStatus::Optimal,
                "0/1 relaxation cannot be unbounded");
    if (relax.objective >= incumbent - kIntTol) continue;  // bound

    // Integral relaxation: new incumbent.
    int frac_var = -1;
    double frac_dist = -1.0;
    for (int j = 0; j < n; ++j) {
      if (!is_integral(relax.x[j])) {
        const double d = std::abs(relax.x[j] - 0.5);
        if (frac_var < 0 || d < frac_dist) {
          frac_var = j;
          frac_dist = d;
        }
      }
    }
    if (frac_var < 0) {
      std::vector<int> xi(n);
      for (int j = 0; j < n; ++j) xi[j] = static_cast<int>(std::round(relax.x[j]));
      if (satisfies(rows_, xi) && relax.objective < incumbent) {
        incumbent = relax.objective;
        best.status = IlpStatus::Optimal;
        best.objective = relax.objective;
        best.x = std::move(xi);
      }
      continue;
    }

    // Rounding heuristic: snap the fractional solution and test it.
    {
      std::vector<int> xi(n);
      for (int j = 0; j < n; ++j)
        xi[j] = relax.x[j] >= 0.5 ? 1 : 0;
      if (satisfies(rows_, xi)) {
        double obj = 0;
        for (int j = 0; j < n; ++j) obj += objective_[j] * xi[j];
        if (obj < incumbent) {
          incumbent = obj;
          best.status = IlpStatus::Optimal;
          best.objective = obj;
          best.x = std::move(xi);
        }
      }
    }

    // Branch on the most fractional variable, exploring the rounded
    // direction first (pushed last = popped first).
    Node down = node, up = node;
    down.fixed[frac_var] = 0;
    up.fixed[frac_var] = 1;
    if (relax.x[frac_var] >= 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  best.nodes_explored = nodes;
  if (best.status == IlpStatus::Optimal) {
    // Exhausted the whole tree: incumbent proven optimal.
    return best;
  }
  return best;  // Infeasible
}

}  // namespace atlas::ilp
