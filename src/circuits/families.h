#pragma once

/// \file families.h
/// Generators for the scalable benchmark circuit families of the
/// paper's Table I (MQT Bench) plus the `hhl` case study (NWQBench,
/// Table II). Each generator is parametric in the number of qubits so
/// the weak-scaling experiments can grow circuits with the machine.
///
/// Where MQT Bench's construction is documented by its gate-count
/// formula we match Table I exactly (ghz, dj, graphstate, ising, qft,
/// qsvm, wstate); for the remaining families we build the standard
/// textbook construction and report our counts next to the paper's in
/// `bench_circuit_table` (see EXPERIMENTS.md for deltas).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace atlas::circuits {

/// GHZ state preparation: H + CX chain. n gates.
Circuit ghz(int n);

/// Deutsch–Jozsa with a balanced oracle. 3n-2 gates.
Circuit dj(int n);

/// Graph state on a ring graph: H each + CZ ring. 2n gates.
Circuit graphstate(int n);

/// Transverse-field Ising model, 2 Trotter steps. 11n-6 gates.
Circuit ising(int n);

/// Quantum Fourier transform (no terminal swaps). n(n+1)/2 gates.
Circuit qft(int n);

/// Inverse QFT as an explicit circuit (with terminal swaps).
Circuit iqft(int n);

/// Exact quantum phase estimation of a phase with an (n-1)-bit binary
/// expansion; includes eigenstate prep and the inverse QFT.
Circuit qpeexact(int n);

/// Amplitude estimation over a 1-qubit Bernoulli operator.
Circuit ae(int n);

/// QSVM / ZZ-feature-map, 2 layers. 10n-6 gates.
Circuit qsvm(int n, std::uint64_t seed = 7);

/// EfficientSU2 ansatz, random parameters, 3 reps, full entanglement.
Circuit su2random(int n, std::uint64_t seed = 11);

/// Variational quantum classifier: feature map + 4-rep ansatz.
Circuit vqc(int n, std::uint64_t seed = 13);

/// W state preparation. 4n-3 gates.
Circuit wstate(int n);

/// HHL-style circuit on `k` logical qubits (QPE + uniformly controlled
/// rotation + inverse QPE with Trotterized controlled evolution), then
/// padded with idle qubits to `padded_qubits`. Gate count grows
/// exponentially in k, mirroring NWQBench's Table II.
Circuit hhl(int k, int padded_qubits);

/// The 11 Table I family names in paper order.
const std::vector<std::string>& family_names();

/// Dispatch by family name ("ae", "dj", ...). Throws on unknown name.
Circuit make_family(const std::string& name, int n);

/// Uniformly random circuit for property tests: `num_gates` gates drawn
/// from the full gate library on random qubits.
Circuit random_circuit(int n, int num_gates, std::uint64_t seed);

}  // namespace atlas::circuits
