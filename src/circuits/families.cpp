#include "circuits/families.h"

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/rng.h"

namespace atlas::circuits {

using std::numbers::pi;

Circuit ghz(int n) {
  ATLAS_CHECK(n >= 1, "ghz needs >= 1 qubit");
  Circuit c(n, "ghz");
  c.add(Gate::h(0));
  for (int i = 1; i < n; ++i) c.add(Gate::cx(i - 1, i));
  return c;
}

Circuit dj(int n) {
  ATLAS_CHECK(n >= 2, "dj needs >= 2 qubits");
  Circuit c(n, "dj");
  for (int i = 0; i < n; ++i) c.add(Gate::h(i));
  for (int i = 0; i < n - 1; ++i) c.add(Gate::cx(i, n - 1));  // balanced oracle
  for (int i = 0; i < n - 1; ++i) c.add(Gate::h(i));
  return c;
}

Circuit graphstate(int n) {
  ATLAS_CHECK(n >= 3, "graphstate needs >= 3 qubits");
  Circuit c(n, "graphstate");
  for (int i = 0; i < n; ++i) c.add(Gate::h(i));
  for (int i = 0; i < n; ++i) c.add(Gate::cz(i, (i + 1) % n));
  return c;
}

Circuit ising(int n) {
  ATLAS_CHECK(n >= 2, "ising needs >= 2 qubits");
  Circuit c(n, "ising");
  const double dt = 0.1;
  const double h_field = 1.0, j_coupling = 1.0;
  // Initial layer: transverse-field kick.
  for (int i = 0; i < n; ++i) c.add(Gate::rx(i, 2 * h_field * dt));
  // Two first-order Trotter steps: ZZ couplings (CX-RZ-CX) + fields.
  for (int step = 0; step < 2; ++step) {
    for (int i = 0; i + 1 < n; ++i) {
      c.add(Gate::cx(i, i + 1));
      c.add(Gate::rz(i + 1, 2 * j_coupling * dt));
      c.add(Gate::cx(i, i + 1));
    }
    for (int i = 0; i < n; ++i) c.add(Gate::rz(i, 2 * h_field * dt));
    for (int i = 0; i < n; ++i) c.add(Gate::rx(i, 2 * h_field * dt));
  }
  return c;
}

Circuit qft(int n) {
  ATLAS_CHECK(n >= 1, "qft needs >= 1 qubit");
  Circuit c(n, "qft");
  for (int i = n - 1; i >= 0; --i) {
    c.add(Gate::h(i));
    for (int j = i - 1; j >= 0; --j)
      c.add(Gate::cp(j, i, pi / static_cast<double>(Index{1} << (i - j))));
  }
  return c;
}

Circuit iqft(int n) {
  Circuit c(n, "iqft");
  for (int i = 0; i < n / 2; ++i) c.add(Gate::swap(i, n - 1 - i));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j)
      c.add(Gate::cp(j, i, -pi / static_cast<double>(Index{1} << (i - j))));
    c.add(Gate::h(i));
  }
  return c;
}

Circuit qpeexact(int n) {
  ATLAS_CHECK(n >= 3, "qpeexact needs >= 3 qubits");
  // Counting register: qubits 0..n-2; eigenstate qubit: n-1.
  const int m = n - 1;
  Circuit c(n, "qpeexact");
  // Phase with an exactly representable m-bit binary expansion.
  const double theta = (static_cast<double>((Index{1} << (m - 1)) | 1)) /
                       static_cast<double>(Index{1} << m);
  c.add(Gate::x(n - 1));  // eigenstate |1> of the phase gate
  for (int i = 0; i < m; ++i) c.add(Gate::h(i));
  for (int i = 0; i < m; ++i) {
    // Controlled-U^(2^i) with U = P(2*pi*theta): still one CP gate.
    const double angle =
        2 * pi * theta * static_cast<double>(Index{1} << i);
    c.add(Gate::cp(i, n - 1, angle));
  }
  // Inverse QFT on the counting register.
  for (int i = 0; i < m / 2; ++i) c.add(Gate::swap(i, m - 1 - i));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < i; ++j)
      c.add(Gate::cp(j, i, -pi / static_cast<double>(Index{1} << (i - j))));
    c.add(Gate::h(i));
  }
  return c;
}

Circuit ae(int n) {
  ATLAS_CHECK(n >= 3, "ae needs >= 3 qubits");
  // Counting register: 0..n-2; Bernoulli state qubit: n-1.
  const int m = n - 1;
  Circuit c(n, "ae");
  const double p_good = 0.2;
  const double theta = 2 * std::asin(std::sqrt(p_good));
  c.add(Gate::ry(n - 1, theta));  // A operator
  for (int i = 0; i < m; ++i) c.add(Gate::h(i));
  for (int i = 0; i < m; ++i) {
    // Controlled Grover power Q^(2^i); for the Bernoulli operator the
    // power collapses to a single controlled rotation plus a phase fix.
    const double angle = theta * static_cast<double>(Index{1} << (i + 1));
    c.add(Gate::cry(i, n - 1, angle));
    c.add(Gate::cp(i, n - 1, pi));
  }
  // Inverse QFT on the counting register.
  for (int i = 0; i < m / 2; ++i) c.add(Gate::swap(i, m - 1 - i));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < i; ++j)
      c.add(Gate::cp(j, i, -pi / static_cast<double>(Index{1} << (i - j))));
    c.add(Gate::h(i));
  }
  return c;
}

Circuit qsvm(int n, std::uint64_t seed) {
  ATLAS_CHECK(n >= 2, "qsvm needs >= 2 qubits");
  Circuit c(n, "qsvm");
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(0, 2 * pi);
  for (int layer = 0; layer < 2; ++layer) {
    for (int i = 0; i < n; ++i) c.add(Gate::h(i));
    for (int i = 0; i < n; ++i) c.add(Gate::p(i, 2 * x[i]));
    for (int i = 0; i + 1 < n; ++i) {
      c.add(Gate::cx(i, i + 1));
      c.add(Gate::p(i + 1, 2 * (pi - x[i]) * (pi - x[i + 1])));
      c.add(Gate::cx(i, i + 1));
    }
  }
  return c;
}

Circuit su2random(int n, std::uint64_t seed) {
  ATLAS_CHECK(n >= 2, "su2random needs >= 2 qubits");
  Circuit c(n, "su2random");
  Rng rng(seed);
  const int reps = 3;
  auto rotation_layer = [&] {
    for (int i = 0; i < n; ++i) c.add(Gate::ry(i, rng.uniform(0, 2 * pi)));
    for (int i = 0; i < n; ++i) c.add(Gate::rz(i, rng.uniform(0, 2 * pi)));
  };
  rotation_layer();
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) c.add(Gate::cx(i, j));  // full
    rotation_layer();
  }
  return c;
}

Circuit vqc(int n, std::uint64_t seed) {
  ATLAS_CHECK(n >= 2, "vqc needs >= 2 qubits");
  Circuit c(n, "vqc");
  Rng rng(seed);
  // Data-encoding feature map.
  for (int i = 0; i < n; ++i) c.add(Gate::h(i));
  for (int i = 0; i < n; ++i) c.add(Gate::rz(i, rng.uniform(0, 2 * pi)));
  // Ansatz: 4 reps of rotations + full CX entanglement + final layer.
  const int reps = 4;
  for (int r = 0; r < reps; ++r) {
    for (int i = 0; i < n; ++i) c.add(Gate::ry(i, rng.uniform(0, 2 * pi)));
    for (int i = 0; i < n; ++i) c.add(Gate::rz(i, rng.uniform(0, 2 * pi)));
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) c.add(Gate::cx(i, j));
  }
  for (int i = 0; i < n; ++i) c.add(Gate::ry(i, rng.uniform(0, 2 * pi)));
  for (int i = 0; i < n; ++i) c.add(Gate::rz(i, rng.uniform(0, 2 * pi)));
  return c;
}

Circuit wstate(int n) {
  ATLAS_CHECK(n >= 2, "wstate needs >= 2 qubits");
  Circuit c(n, "wstate");
  c.add(Gate::x(0));
  // Each step splits the excitation between qubit i and i+1 with the
  // controlled-G block (ry/cz/ry) and moves it along with a CX,
  // leaving amplitude 1/sqrt(n) behind at each qubit. 4n-3 gates.
  for (int i = 0; i + 1 < n; ++i) {
    const double theta =
        std::acos(std::sqrt(1.0 / static_cast<double>(n - i)));
    c.add(Gate::ry(i + 1, -theta));
    c.add(Gate::cz(i, i + 1));
    c.add(Gate::ry(i + 1, theta));
    c.add(Gate::cx(i + 1, i));
  }
  return c;
}

Circuit hhl(int k, int padded_qubits) {
  ATLAS_CHECK(k >= 4, "hhl needs >= 4 logical qubits");
  ATLAS_CHECK(padded_qubits >= k, "padding must not shrink the circuit");
  // Registers: b-vector qubit b = 0, clock register 1..nc, ancilla last.
  const int nc = k - 2;
  const int b = 0;
  const int anc = k - 1;
  Circuit c(padded_qubits, "hhl");
  // Trotter repetitions per controlled power; grows with k the way
  // NWQBench's transpiled gate counts do (Table II).
  const int trotter = std::max(1, 3 * (1 << std::max(0, k - 6)));
  const double t0 = 2 * pi / static_cast<double>(Index{1} << nc);

  auto evolution = [&](int sign) {
    // QPE controlled evolution exp(sign * i A t), Trotterized.
    for (int j = 0; j < nc; ++j) {
      const Index reps = static_cast<Index>(trotter) * (Index{1} << j);
      const double step = sign * t0 / static_cast<double>(trotter);
      for (Index r = 0; r < reps; ++r) {
        c.add(Gate::crx(1 + j, b, step));
        c.add(Gate::crz(1 + j, b, step * 0.5));
      }
    }
  };

  for (int j = 0; j < nc; ++j) c.add(Gate::h(1 + j));
  evolution(+1);
  // Uniformly controlled RY on the ancilla conditioned on the clock:
  // standard 2^nc-term CX/RY staircase decomposition.
  const Index terms = Index{1} << nc;
  for (Index t = 0; t < terms; ++t) {
    const double angle =
        2 * std::asin(1.0 / static_cast<double>(t + 1));
    c.add(Gate::ry(anc, angle / static_cast<double>(terms)));
    const int ctrl = std::countr_zero(t + 1) % nc;
    c.add(Gate::cx(1 + ctrl, anc));
  }
  evolution(-1);
  for (int j = 0; j < nc; ++j) c.add(Gate::h(1 + j));
  return c;
}

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = {
      "ae",  "dj",        "ghz",  "graphstate", "ising", "qft",
      "qpeexact", "qsvm", "su2random", "vqc",   "wstate"};
  return names;
}

Circuit make_family(const std::string& name, int n) {
  if (name == "ae") return ae(n);
  if (name == "dj") return dj(n);
  if (name == "ghz") return ghz(n);
  if (name == "graphstate") return graphstate(n);
  if (name == "ising") return ising(n);
  if (name == "qft") return qft(n);
  if (name == "qpeexact") return qpeexact(n);
  if (name == "qsvm") return qsvm(n);
  if (name == "su2random") return su2random(n);
  if (name == "vqc") return vqc(n);
  if (name == "wstate") return wstate(n);
  throw Error("unknown circuit family '" + name + "'");
}

Circuit random_circuit(int n, int num_gates, std::uint64_t seed) {
  ATLAS_CHECK(n >= 3, "random_circuit needs >= 3 qubits");
  Circuit c(n, "random");
  Rng rng(seed);
  auto q = [&] { return static_cast<Qubit>(rng.index(n)); };
  auto distinct2 = [&](Qubit a) {
    Qubit b = q();
    while (b == a) b = q();
    return b;
  };
  for (int i = 0; i < num_gates; ++i) {
    const int pick = static_cast<int>(rng.index(16));
    const Qubit a = q();
    const double th = rng.uniform(0, 2 * pi);
    switch (pick) {
      case 0: c.add(Gate::h(a)); break;
      case 1: c.add(Gate::x(a)); break;
      case 2: c.add(Gate::y(a)); break;
      case 3: c.add(Gate::z(a)); break;
      case 4: c.add(Gate::t(a)); break;
      case 5: c.add(Gate::rx(a, th)); break;
      case 6: c.add(Gate::ry(a, th)); break;
      case 7: c.add(Gate::rz(a, th)); break;
      case 8: c.add(Gate::p(a, th)); break;
      case 9: c.add(Gate::cx(a, distinct2(a))); break;
      case 10: c.add(Gate::cz(a, distinct2(a))); break;
      case 11: c.add(Gate::cp(a, distinct2(a), th)); break;
      case 12: c.add(Gate::swap(a, distinct2(a))); break;
      case 13: c.add(Gate::rzz(a, distinct2(a), th)); break;
      case 14: {
        const Qubit b2 = distinct2(a);
        Qubit c3 = q();
        while (c3 == a || c3 == b2) c3 = q();
        c.add(Gate::ccx(a, b2, c3));
        break;
      }
      default: c.add(Gate::u3(a, th, th / 2, th / 3)); break;
    }
  }
  return c;
}

}  // namespace atlas::circuits
