#include "ir/matrix.h"

#include <algorithm>
#include <cmath>

namespace atlas {

Matrix Matrix::square(int n, std::initializer_list<Amp> values) {
  ATLAS_CHECK(static_cast<int>(values.size()) == n * n,
              "expected " << n * n << " entries, got " << values.size());
  Matrix m(n, n);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = Amp(1.0, 0.0);
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  ATLAS_CHECK(cols_ == rhs.rows_, "matmul shape mismatch: " << cols_ << " vs "
                                                            << rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const Amp a = (*this)(i, k);
      if (a == Amp{}) continue;
      for (int j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
    }
  }
  return out;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j)
      for (int r = 0; r < rhs.rows_; ++r)
        for (int c = 0; c < rhs.cols_; ++c)
          out(i * rhs.rows_ + r, j * rhs.cols_ + c) = (*this)(i, j) * rhs(r, c);
  return out;
}

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

bool Matrix::is_diagonal(double tol) const {
  if (rows_ != cols_) return false;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j)
      if (i != j && std::abs((*this)(i, j)) > tol) return false;
  return true;
}

bool Matrix::is_antidiagonal(double tol) const {
  if (rows_ != cols_) return false;
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j)
      if (j != rows_ - 1 - i && std::abs((*this)(i, j)) > tol) return false;
  return true;
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const Matrix p = (*this) * dagger();
  return max_abs_diff(p, identity(rows_)) < tol;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  ATLAS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

Matrix embed_controlled(const Matrix& u, int num_controls) {
  if (num_controls == 0) return u;
  const int t_dim = u.rows();
  ATLAS_CHECK(t_dim == u.cols(), "embed_controlled needs a square matrix");
  Matrix full = Matrix::identity(t_dim << num_controls);
  // Controls occupy the high index bits: the U block sits where all
  // controls = 1; every other block stays identity, which is exactly
  // controlled-U.
  const int ctrl_mask = ((1 << num_controls) - 1) * t_dim;
  for (int r = 0; r < t_dim; ++r)
    for (int c = 0; c < t_dim; ++c) full(ctrl_mask | r, ctrl_mask | c) = u(r, c);
  return full;
}

}  // namespace atlas
