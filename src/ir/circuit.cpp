#include "ir/circuit.h"

#include <algorithm>

#include "common/error.h"
#include "common/fnv.h"

namespace atlas {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  ATLAS_CHECK(num_qubits >= 0, "negative qubit count");
}

void Circuit::add(Gate g) {
  for (Qubit q : g.qubits()) {
    ATLAS_CHECK(q < num_qubits_, "gate " << g.to_string() << " uses qubit "
                                         << q << " but circuit has only "
                                         << num_qubits_ << " qubits");
  }
  gates_.push_back(std::move(g));
}

std::vector<std::pair<int, int>> Circuit::dependency_edges() const {
  std::vector<std::pair<int, int>> edges;
  std::vector<int> last_on_qubit(num_qubits_, -1);
  for (int i = 0; i < num_gates(); ++i) {
    for (Qubit q : gates_[i].qubits()) {
      if (last_on_qubit[q] >= 0) edges.emplace_back(last_on_qubit[q], i);
      last_on_qubit[q] = i;
    }
  }
  // A pair of gates sharing several qubits produces duplicate edges;
  // deduplicate to keep downstream models small.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<std::vector<int>> Circuit::predecessors() const {
  std::vector<std::vector<int>> preds(num_gates());
  for (const auto& [a, b] : dependency_edges()) preds[b].push_back(a);
  return preds;
}

std::vector<Qubit> Circuit::non_insular_qubit_union() const {
  std::vector<bool> used(num_qubits_, false);
  for (const Gate& g : gates_)
    for (Qubit q : g.non_insular_qubits()) used[q] = true;
  std::vector<Qubit> out;
  for (Qubit q = 0; q < num_qubits_; ++q)
    if (used[q]) out.push_back(q);
  return out;
}

int Circuit::num_multi_qubit_gates() const {
  int n = 0;
  for (const Gate& g : gates_)
    if (g.num_qubits() >= 2) ++n;
  return n;
}

namespace {

std::uint64_t hash_circuit(const Circuit& circuit, bool structural) {
  // Distinct bases keep the two key spaces from aliasing when both
  // kinds of keys land in one plan cache.
  Fnv f(structural ? 0x2b992ddfa23249d6ull : Fnv::kDefaultBasis);
  f.mix(static_cast<std::uint64_t>(circuit.num_qubits()));
  for (const Gate& g : circuit.gates()) {
    f.mix(static_cast<std::uint64_t>(g.kind()));
    f.mix(static_cast<std::uint64_t>(g.num_controls()));
    for (Qubit q : g.qubits()) f.mix(static_cast<std::uint64_t>(q));
    f.mix(g.params().size());
    if (!structural) {
      for (const Param& p : g.params()) {
        f.mix_double(p.constant_term());
        f.mix(p.terms().size());
        for (const auto& [sym, coeff] : p.terms()) {
          f.mix_string(sym);
          f.mix_double(coeff);
        }
      }
    }
    if (g.kind() == GateKind::Unitary) {
      const Matrix m = g.target_matrix();
      for (const Amp& a : m.data()) {
        f.mix_double(a.real());
        f.mix_double(a.imag());
      }
    }
  }
  return f.value();
}

}  // namespace

std::uint64_t Circuit::fingerprint() const {
  return hash_circuit(*this, /*structural=*/false);
}

std::uint64_t Circuit::structural_fingerprint() const {
  return hash_circuit(*this, /*structural=*/true);
}

bool Circuit::is_parameterized() const {
  for (const Gate& g : gates_)
    if (g.is_parameterized()) return true;
  return false;
}

std::vector<std::string> Circuit::symbols() const {
  std::vector<std::string> out;
  for (const Gate& g : gates_) g.collect_symbols(out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Circuit Circuit::bind(const ParamBinding& binding) const {
  Circuit bound(num_qubits_, name_);
  bound.gates_.reserve(gates_.size());
  for (const Gate& g : gates_) bound.gates_.push_back(g.bind(binding));
  return bound;
}

Circuit Circuit::subcircuit(const std::vector<int>& gate_indices) const {
  Circuit sub(num_qubits_, name_);
  for (int i : gate_indices) {
    ATLAS_CHECK(i >= 0 && i < num_gates(), "bad gate index " << i);
    sub.add(gates_[i]);
  }
  return sub;
}

}  // namespace atlas
