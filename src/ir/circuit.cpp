#include "ir/circuit.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace atlas {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  ATLAS_CHECK(num_qubits >= 0, "negative qubit count");
}

void Circuit::add(Gate g) {
  for (Qubit q : g.qubits()) {
    ATLAS_CHECK(q < num_qubits_, "gate " << g.to_string() << " uses qubit "
                                         << q << " but circuit has only "
                                         << num_qubits_ << " qubits");
  }
  gates_.push_back(std::move(g));
}

std::vector<std::pair<int, int>> Circuit::dependency_edges() const {
  std::vector<std::pair<int, int>> edges;
  std::vector<int> last_on_qubit(num_qubits_, -1);
  for (int i = 0; i < num_gates(); ++i) {
    for (Qubit q : gates_[i].qubits()) {
      if (last_on_qubit[q] >= 0) edges.emplace_back(last_on_qubit[q], i);
      last_on_qubit[q] = i;
    }
  }
  // A pair of gates sharing several qubits produces duplicate edges;
  // deduplicate to keep downstream models small.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<std::vector<int>> Circuit::predecessors() const {
  std::vector<std::vector<int>> preds(num_gates());
  for (const auto& [a, b] : dependency_edges()) preds[b].push_back(a);
  return preds;
}

std::vector<Qubit> Circuit::non_insular_qubit_union() const {
  std::vector<bool> used(num_qubits_, false);
  for (const Gate& g : gates_)
    for (Qubit q : g.non_insular_qubits()) used[q] = true;
  std::vector<Qubit> out;
  for (Qubit q = 0; q < num_qubits_; ++q)
    if (used[q]) out.push_back(q);
  return out;
}

int Circuit::num_multi_qubit_gates() const {
  int n = 0;
  for (const Gate& g : gates_)
    if (g.num_qubits() >= 2) ++n;
  return n;
}

std::uint64_t Circuit::fingerprint() const {
  // FNV-1a, 64-bit.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(num_qubits_));
  for (const Gate& g : gates_) {
    mix(static_cast<std::uint64_t>(g.kind()));
    mix(static_cast<std::uint64_t>(g.num_controls()));
    for (Qubit q : g.qubits()) mix(static_cast<std::uint64_t>(q));
    for (double p : g.params()) mix_double(p);
    if (g.kind() == GateKind::Unitary) {
      const Matrix m = g.target_matrix();
      for (const Amp& a : m.data()) {
        mix_double(a.real());
        mix_double(a.imag());
      }
    }
  }
  return h;
}

Circuit Circuit::subcircuit(const std::vector<int>& gate_indices) const {
  Circuit sub(num_qubits_, name_);
  for (int i : gate_indices) {
    ATLAS_CHECK(i >= 0 && i < num_gates(), "bad gate index " << i);
    sub.add(gates_[i]);
  }
  return sub;
}

}  // namespace atlas
