#pragma once

/// \file matrix.h
/// Dense complex matrices for gate unitaries and kernel fusion. Gate
/// matrices are tiny (2^k x 2^k for k-qubit gates, k <= ~6 after
/// fusion), so a simple row-major dense representation suffices.

#include <initializer_list>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace atlas {

class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols) {}

  /// Square matrix from a row-major initializer list.
  static Matrix square(int n, std::initializer_list<Amp> values);

  /// Identity of size n x n.
  static Matrix identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Amp& operator()(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  const Amp& operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  const std::vector<Amp>& data() const { return data_; }

  Matrix operator*(const Matrix& rhs) const;

  /// Kronecker product: (*this) ⊗ rhs, with `rhs` occupying the
  /// low-order index bits.
  Matrix kron(const Matrix& rhs) const;

  /// Conjugate transpose.
  Matrix dagger() const;

  /// True iff every off-diagonal entry is (numerically) zero.
  bool is_diagonal(double tol = kAmpTolerance) const;

  /// True iff nonzero entries appear only on the anti-diagonal.
  bool is_antidiagonal(double tol = kAmpTolerance) const;

  /// True iff U * U^dagger == I within `tol`.
  bool is_unitary(double tol = 1e-8) const;

  /// Max |a_ij - b_ij| over all entries.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Amp> data_;
};

/// Embeds a 2^t square target unitary into the 2^(t+c) controlled
/// unitary: identity everywhere except the block where all `c` control
/// bits (the high index bits) are 1, which holds `u`. The one shared
/// definition of the control-block convention (Gate::full_matrix and
/// bit-space fusion both use it).
Matrix embed_controlled(const Matrix& u, int num_controls);

}  // namespace atlas
