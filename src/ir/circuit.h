#pragma once

/// \file circuit.h
/// A quantum circuit as an ordered gate sequence plus dependency
/// structure. Staging and kernelization both consume this
/// representation; the dependency DAG (adjacent gate pairs sharing a
/// qubit) is the `E` of the paper's ILP constraint 8.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ir/gate.h"

namespace atlas {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, std::string name = "");

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_gates() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(int i) const { return gates_[i]; }
  const std::vector<Gate>& gates() const { return gates_; }

  /// Appends a gate; validates qubit ids against num_qubits().
  void add(Gate g);

  /// Dependency edges (g1, g2) with g1 < g2: g2 is the next gate after
  /// g1 acting on some common qubit. This is the adjacency relation E
  /// used in ILP constraint 8; its transitive closure is the full
  /// dependence partial order.
  std::vector<std::pair<int, int>> dependency_edges() const;

  /// For each gate, the indices of gates it directly depends on
  /// (predecessors in the dependency DAG).
  std::vector<std::vector<int>> predecessors() const;

  /// The union of non-insular qubits over all gates.
  std::vector<Qubit> non_insular_qubit_union() const;

  /// Total number of gates with >= 2 qubits.
  int num_multi_qubit_gates() const;

  /// A sub-circuit containing the given gate indices, in the given
  /// order, over the same qubit count.
  Circuit subcircuit(const std::vector<int>& gate_indices) const;

  /// Value-sensitive FNV-1a hash over qubit count, gate kinds, qubit
  /// lists, parameter expressions (bit patterns of constants, symbol
  /// structure of expressions), and explicit unitary matrices. Two
  /// circuits with equal fingerprints execute identically regardless of
  /// their names.
  std::uint64_t fingerprint() const;

  /// Shape-only hash: like fingerprint() but every rotation-family
  /// parameter is treated as an opaque placeholder, so rx(q, 0.3),
  /// rx(q, 0.7) and rx(q, theta) all collide by design. Execution
  /// plans depend only on this shape (insularity and diagonality are
  /// decided per gate kind, paper Definition 2), so the structural
  /// fingerprint — plus the machine shape — keys the compiled-circuit
  /// cache. Explicit Unitary matrices still enter the hash: their
  /// numeric content decides diagonality and thus the plan.
  std::uint64_t structural_fingerprint() const;

  /// True iff any gate parameter still contains a free symbol.
  bool is_parameterized() const;

  /// The distinct free symbols over all gates, ascending.
  std::vector<std::string> symbols() const;

  /// A copy with every symbolic parameter evaluated against `binding`;
  /// throws atlas::Error naming the first missing symbol.
  Circuit bind(const ParamBinding& binding) const;

 private:
  int num_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace atlas
