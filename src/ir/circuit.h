#pragma once

/// \file circuit.h
/// A quantum circuit as an ordered gate sequence plus dependency
/// structure. Staging and kernelization both consume this
/// representation; the dependency DAG (adjacent gate pairs sharing a
/// qubit) is the `E` of the paper's ILP constraint 8.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ir/gate.h"

namespace atlas {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, std::string name = "");

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_gates() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(int i) const { return gates_[i]; }
  const std::vector<Gate>& gates() const { return gates_; }

  /// Appends a gate; validates qubit ids against num_qubits().
  void add(Gate g);

  /// Dependency edges (g1, g2) with g1 < g2: g2 is the next gate after
  /// g1 acting on some common qubit. This is the adjacency relation E
  /// used in ILP constraint 8; its transitive closure is the full
  /// dependence partial order.
  std::vector<std::pair<int, int>> dependency_edges() const;

  /// For each gate, the indices of gates it directly depends on
  /// (predecessors in the dependency DAG).
  std::vector<std::vector<int>> predecessors() const;

  /// The union of non-insular qubits over all gates.
  std::vector<Qubit> non_insular_qubit_union() const;

  /// Total number of gates with >= 2 qubits.
  int num_multi_qubit_gates() const;

  /// A sub-circuit containing the given gate indices, in the given
  /// order, over the same qubit count.
  Circuit subcircuit(const std::vector<int>& gate_indices) const;

  /// Structural FNV-1a hash over qubit count, gate kinds, qubit lists,
  /// parameter bit patterns, and explicit unitary matrices. Two
  /// circuits with equal fingerprints execute identically regardless of
  /// their names, so the fingerprint (plus the machine shape) keys the
  /// session plan cache.
  std::uint64_t fingerprint() const;

 private:
  int num_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace atlas
