#pragma once

/// \file param.h
/// Symbolic gate parameters. A Param is an affine expression over named
/// symbols — `constant + sum(coeff_i * symbol_i)` — which is exactly the
/// family QASM ansatz files and variational workloads need (theta,
/// 2*theta + pi/2, -phi, ...). Affine closure keeps binding trivial and
/// lets the plan layer treat every rotation-family parameter as an
/// opaque placeholder: insularity and diagonality are decided per gate
/// kind, never numerically, so execution plans are valid for *any*
/// binding of the symbols (the compile-once / bind-many contract).
///
/// A ParamBinding maps symbol names to concrete values; evaluating a
/// Param against a binding that lacks one of its symbols throws an
/// atlas::Error naming the symbol.
///
/// Execution never touches ParamBinding on its hot path: the engine
/// lowers bindings into a dense SlotValues table (slot "$k" at index k)
/// once per run, and kernels resolve parameters by array indexing. The
/// ParamBinding lookup probe (probe_lookups()) exists to regression-test
/// exactly that — it counts every string-keyed at()/contains() call
/// process-wide.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace atlas {

/// Dense engine-slot values: index k holds the value of plan slot "$k".
/// Built once per run by CompiledCircuit::slot_values(); consumed by the
/// execution layer through ParamEnv with pure array indexing.
using SlotValues = std::vector<double>;

/// Symbol-name -> value assignment used to bind parameterized circuits.
class ParamBinding {
 public:
  ParamBinding() = default;
  ParamBinding(
      std::initializer_list<std::pair<const std::string, double>> init)
      : values_(init) {}

  /// Chainable: binding.set("theta", 0.3).set("phi", 1.2).
  ParamBinding& set(std::string name, double value) {
    values_[std::move(name)] = value;
    return *this;
  }

  bool contains(const std::string& name) const;

  /// Throws atlas::Error naming the symbol when unbound.
  double at(const std::string& name) const;

  /// Process-wide count of string-keyed lookups (at()/contains()) made
  /// against any ParamBinding. The hot-path regression tests snapshot
  /// this around sweeps to prove execution does zero per-point string
  /// lookups once parameters are slot-lowered.
  static std::uint64_t probe_lookups();

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::unordered_map<std::string, double>& values() const {
    return values_;
  }

 private:
  std::unordered_map<std::string, double> values_;
};

/// An affine parameter expression: constant + sum(coeff * symbol).
/// Implicitly constructible from double, so every legacy call site
/// (`Gate::rx(q, 0.5)`) keeps compiling; symbolic parameters enter via
/// `Param::symbol("theta")` and compose with +, -, * and / by scalars.
class Param {
 public:
  /// The zero constant.
  Param() = default;
  /// A concrete value (implicit on purpose: doubles are Params).
  Param(double value) : constant_(value) {}

  /// A free symbol with coefficient 1.
  static Param symbol(std::string name);

  bool is_constant() const { return terms_.empty(); }
  bool is_symbolic() const { return !terms_.empty(); }

  /// The value of a constant expression; throws atlas::Error when the
  /// expression still contains symbols.
  double constant_value() const;

  /// Evaluates against `binding`; throws atlas::Error naming the first
  /// symbol the binding is missing.
  double evaluate(const ParamBinding& binding) const;

  /// The dense slot id when this expression is exactly one engine slot
  /// symbol ("$k" with coefficient 1 and no constant), else -1. Plans
  /// produced by Session::compile() carry only such parameters, so the
  /// execution layer resolves them by indexing a SlotValues table.
  int slot_index() const;

  /// The distinct symbol names, ascending.
  std::vector<std::string> symbols() const;

  /// Structure accessors (terms sorted by symbol, coefficients != 0).
  const std::vector<std::pair<std::string, double>>& terms() const {
    return terms_;
  }
  double constant_term() const { return constant_; }

  /// Re-parseable rendering: "0.5", "theta", "2*theta + 0.5", "-phi".
  std::string to_string() const;

  Param operator-() const;
  Param& operator+=(const Param& other);
  Param& operator-=(const Param& other);
  Param& operator*=(double factor);
  Param& operator/=(double divisor);

  friend Param operator+(Param a, const Param& b) { return a += b; }
  friend Param operator-(Param a, const Param& b) { return a -= b; }
  friend Param operator*(Param a, double b) { return a *= b; }
  friend Param operator*(double a, Param b) { return b *= a; }
  friend Param operator/(Param a, double b) { return a /= b; }

  /// Product of two expressions; throws atlas::Error unless at least
  /// one side is constant (the result must stay affine).
  friend Param operator*(const Param& a, const Param& b);
  /// Quotient; throws atlas::Error when the divisor is symbolic.
  friend Param operator/(const Param& a, const Param& b);

  friend bool operator==(const Param& a, const Param& b) {
    return a.constant_ == b.constant_ && a.terms_ == b.terms_;
  }
  friend bool operator!=(const Param& a, const Param& b) { return !(a == b); }

 private:
  void drop_zero_terms();

  double constant_ = 0.0;
  /// Sorted by symbol name; no zero coefficients, no duplicates.
  std::vector<std::pair<std::string, double>> terms_;
};

/// Streams the same rendering as to_string(), honoring the stream's
/// floating-point precision (QASM export runs at precision 17).
std::ostream& operator<<(std::ostream& os, const Param& p);

/// The parameter environment a plan executes under. Either side may be
/// null: `slots` serves canonical plans (every parameter a "$k" slot)
/// with array indexing; `named` is the general fallback for plans that
/// carry free user symbols. Both null means only constant parameters
/// can be resolved.
struct ParamEnv {
  const ParamBinding* named = nullptr;
  const SlotValues* slots = nullptr;

  bool empty() const { return named == nullptr && slots == nullptr; }
};

/// Resolves `p` against `env`: constants directly, slot symbols through
/// env.slots by index, anything else through env.named. Throws
/// atlas::Error naming the expression when it cannot be resolved.
double resolve_param(const Param& p, const ParamEnv& env);

}  // namespace atlas
