#pragma once

/// \file pauli.h
/// The single-qubit Pauli group as a fast value type. Noise channels
/// whose Kraus operators are (scaled) Pauli strings — depolarizing,
/// bit/phase flip — unravel into *unitary* trajectories: each sampled
/// outcome inserts Paulis as ordinary gates. The trajectory compiler
/// lowers a sampled Pauli to a u3 gate whose three angles realize
/// I/X/Y/Z exactly, so every trajectory of a batch shares one slot-
/// parameterized circuit structure (and therefore one execution plan).

#include <string>
#include <vector>

#include "ir/matrix.h"

namespace atlas {

enum class Pauli : unsigned char { I, X, Y, Z };

/// "I", "X", "Y", "Z".
std::string pauli_name(Pauli p);

/// The 2x2 matrix of `p`.
Matrix pauli_matrix(Pauli p);

/// u3(theta, phi, lambda) angles realizing `p` (up to the ~1e-16
/// rounding of the trig evaluation — far below any statistical
/// tolerance of a trajectory estimate) under the convention
///      u3 = [[cos(t/2), -e^{il} sin(t/2)],
///                  [e^{ip} sin(t/2), e^{i(p+l)} cos(t/2)]]:
///   I = u3(0, 0, 0)      X = u3(pi, 0, pi)
///   Z = u3(0, 0, pi)     Y = u3(pi, pi/2, pi/2)
struct PauliAngles {
  double theta = 0, phi = 0, lambda = 0;
};
PauliAngles pauli_u3_angles(Pauli p);

/// A Pauli on each of an ordered qubit subset (one channel outcome).
using PauliTerm = std::vector<Pauli>;

}  // namespace atlas
