#include "ir/gate.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/bits.h"
#include "common/error.h"

namespace atlas {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// Widest parameter list of any gate kind (U3); the callers of
/// materialize_target() size their value buffers with it.
constexpr std::size_t kMaxGateParams = 3;

Amp expi(double theta) { return Amp(std::cos(theta), std::sin(theta)); }

Matrix m2(Amp a, Amp b, Amp c, Amp d) { return Matrix::square(2, {a, b, c, d}); }

Matrix rx_matrix(double t) {
  const double c = std::cos(t / 2), s = std::sin(t / 2);
  return m2(Amp(c, 0), Amp(0, -s), Amp(0, -s), Amp(c, 0));
}

Matrix ry_matrix(double t) {
  const double c = std::cos(t / 2), s = std::sin(t / 2);
  return m2(Amp(c, 0), Amp(-s, 0), Amp(s, 0), Amp(c, 0));
}

Matrix rz_matrix(double t) {
  return m2(expi(-t / 2), Amp{}, Amp{}, expi(t / 2));
}

Matrix u3_matrix(double t, double phi, double lam) {
  const double c = std::cos(t / 2), s = std::sin(t / 2);
  return m2(Amp(c, 0), -expi(lam) * s, expi(phi) * s, expi(phi + lam) * c);
}

}  // namespace

std::string gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::H: return "h";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SX: return "sx";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::P: return "p";
    case GateKind::U2: return "u2";
    case GateKind::U3: return "u3";
    case GateKind::CX: return "cx";
    case GateKind::CY: return "cy";
    case GateKind::CZ: return "cz";
    case GateKind::CH: return "ch";
    case GateKind::CP: return "cp";
    case GateKind::CRX: return "crx";
    case GateKind::CRY: return "cry";
    case GateKind::CRZ: return "crz";
    case GateKind::SWAP: return "swap";
    case GateKind::RZZ: return "rzz";
    case GateKind::RXX: return "rxx";
    case GateKind::CCX: return "ccx";
    case GateKind::CCZ: return "ccz";
    case GateKind::CSWAP: return "cswap";
    case GateKind::Unitary: return "unitary";
  }
  return "?";
}

Gate::Gate(GateKind kind, std::vector<Qubit> qubits, int num_controls,
           std::vector<Param> params)
    : kind_(kind),
      qubits_(std::move(qubits)),
      num_controls_(num_controls),
      params_(std::move(params)) {
  std::unordered_set<Qubit> seen;
  for (Qubit q : qubits_) {
    ATLAS_CHECK(q >= 0, "negative qubit id " << q);
    ATLAS_CHECK(seen.insert(q).second, "duplicate qubit " << q << " in gate "
                                                          << gate_kind_name(kind_));
  }
}

Gate Gate::h(Qubit q) { return Gate(GateKind::H, {q}, 0, {}); }
Gate Gate::x(Qubit q) { return Gate(GateKind::X, {q}, 0, {}); }
Gate Gate::y(Qubit q) { return Gate(GateKind::Y, {q}, 0, {}); }
Gate Gate::z(Qubit q) { return Gate(GateKind::Z, {q}, 0, {}); }
Gate Gate::s(Qubit q) { return Gate(GateKind::S, {q}, 0, {}); }
Gate Gate::sdg(Qubit q) { return Gate(GateKind::Sdg, {q}, 0, {}); }
Gate Gate::t(Qubit q) { return Gate(GateKind::T, {q}, 0, {}); }
Gate Gate::tdg(Qubit q) { return Gate(GateKind::Tdg, {q}, 0, {}); }
Gate Gate::sx(Qubit q) { return Gate(GateKind::SX, {q}, 0, {}); }
Gate Gate::rx(Qubit q, Param t) {
  return Gate(GateKind::RX, {q}, 0, {std::move(t)});
}
Gate Gate::ry(Qubit q, Param t) {
  return Gate(GateKind::RY, {q}, 0, {std::move(t)});
}
Gate Gate::rz(Qubit q, Param t) {
  return Gate(GateKind::RZ, {q}, 0, {std::move(t)});
}
Gate Gate::p(Qubit q, Param t) {
  return Gate(GateKind::P, {q}, 0, {std::move(t)});
}
Gate Gate::u2(Qubit q, Param phi, Param lam) {
  return Gate(GateKind::U2, {q}, 0, {std::move(phi), std::move(lam)});
}
Gate Gate::u3(Qubit q, Param t, Param phi, Param lam) {
  return Gate(GateKind::U3, {q}, 0,
              {std::move(t), std::move(phi), std::move(lam)});
}
Gate Gate::cx(Qubit c, Qubit t) { return Gate(GateKind::CX, {t, c}, 1, {}); }
Gate Gate::cy(Qubit c, Qubit t) { return Gate(GateKind::CY, {t, c}, 1, {}); }
Gate Gate::cz(Qubit a, Qubit b) { return Gate(GateKind::CZ, {a, b}, 1, {}); }
Gate Gate::ch(Qubit c, Qubit t) { return Gate(GateKind::CH, {t, c}, 1, {}); }
Gate Gate::cp(Qubit a, Qubit b, Param t) {
  return Gate(GateKind::CP, {a, b}, 1, {std::move(t)});
}
Gate Gate::crx(Qubit c, Qubit t, Param th) {
  return Gate(GateKind::CRX, {t, c}, 1, {std::move(th)});
}
Gate Gate::cry(Qubit c, Qubit t, Param th) {
  return Gate(GateKind::CRY, {t, c}, 1, {std::move(th)});
}
Gate Gate::crz(Qubit c, Qubit t, Param th) {
  return Gate(GateKind::CRZ, {t, c}, 1, {std::move(th)});
}
Gate Gate::swap(Qubit a, Qubit b) {
  return Gate(GateKind::SWAP, {a, b}, 0, {});
}
Gate Gate::rzz(Qubit a, Qubit b, Param t) {
  return Gate(GateKind::RZZ, {a, b}, 0, {std::move(t)});
}
Gate Gate::rxx(Qubit a, Qubit b, Param t) {
  return Gate(GateKind::RXX, {a, b}, 0, {std::move(t)});
}
Gate Gate::ccx(Qubit c0, Qubit c1, Qubit t) {
  return Gate(GateKind::CCX, {t, c0, c1}, 2, {});
}
Gate Gate::ccz(Qubit a, Qubit b, Qubit c) {
  return Gate(GateKind::CCZ, {a, b, c}, 2, {});
}
Gate Gate::cswap(Qubit c, Qubit a, Qubit b) {
  return Gate(GateKind::CSWAP, {a, b, c}, 1, {});
}

Gate Gate::unitary(std::vector<Qubit> targets, Matrix m) {
  const int t = static_cast<int>(targets.size());
  ATLAS_CHECK(m.rows() == (1 << t) && m.cols() == (1 << t),
              "unitary matrix size " << m.rows() << " does not match "
                                     << t << " target qubits");
  Gate g(GateKind::Unitary, std::move(targets), 0, {});
  g.custom_ = std::make_shared<Matrix>(std::move(m));
  return g;
}

Gate Gate::controlled_unitary(std::vector<Qubit> controls,
                              std::vector<Qubit> targets, Matrix m) {
  const int t = static_cast<int>(targets.size());
  ATLAS_CHECK(m.rows() == (1 << t) && m.cols() == (1 << t),
              "unitary matrix size mismatch");
  std::vector<Qubit> qubits = std::move(targets);
  const int c = static_cast<int>(controls.size());
  qubits.insert(qubits.end(), controls.begin(), controls.end());
  Gate g(GateKind::Unitary, std::move(qubits), c, {});
  g.custom_ = std::make_shared<Matrix>(std::move(m));
  return g;
}

double Gate::param_value(int i) const {
  ATLAS_CHECK(params_[i].is_constant(),
              "gate '" << gate_kind_name(kind_) << "' parameter "
                       << params_[i].to_string()
                       << " is unbound; bind(...) before materializing");
  return params_[i].constant_term();
}

bool Gate::is_parameterized() const {
  for (const Param& p : params_)
    if (p.is_symbolic()) return true;
  return false;
}

Gate Gate::bind(const ParamBinding& binding) const {
  if (!is_parameterized()) return *this;
  Gate g = *this;
  for (Param& p : g.params_)
    if (p.is_symbolic()) p = Param(p.evaluate(binding));
  return g;
}

void Gate::collect_symbols(std::vector<std::string>& out) const {
  for (const Param& p : params_)
    for (std::string& s : p.symbols()) out.push_back(std::move(s));
}

Gate Gate::with_params(std::vector<Param> params) const {
  ATLAS_CHECK(params.size() == params_.size(),
              "gate '" << gate_kind_name(kind_) << "' takes "
                       << params_.size() << " parameters, got "
                       << params.size());
  Gate g = *this;
  g.params_ = std::move(params);
  return g;
}

std::vector<Qubit> Gate::targets() const {
  return {qubits_.begin(), qubits_.begin() + num_targets()};
}

std::vector<Qubit> Gate::controls() const {
  return {qubits_.begin() + num_targets(), qubits_.end()};
}

Matrix Gate::target_matrix() const {
  double values[kMaxGateParams] = {0, 0, 0};
  ATLAS_DCHECK(params_.size() <= kMaxGateParams,
               "gate kind with " << params_.size()
                                 << " params exceeds kMaxGateParams");
  for (std::size_t pi = 0; pi < params_.size(); ++pi)
    values[pi] = param_value(static_cast<int>(pi));
  return materialize_target(values);
}

Matrix Gate::target_matrix_resolved(const ParamEnv& env) const {
  double values[kMaxGateParams] = {0, 0, 0};
  ATLAS_DCHECK(params_.size() <= kMaxGateParams,
               "gate kind with " << params_.size()
                                 << " params exceeds kMaxGateParams");
  for (std::size_t pi = 0; pi < params_.size(); ++pi)
    values[pi] = resolve_param(params_[pi], env);
  return materialize_target(values);
}

Matrix Gate::full_matrix_resolved(const ParamEnv& env) const {
  return embed_controlled(target_matrix_resolved(env), num_controls_);
}

Matrix Gate::materialize_target(const double* values) const {
  const Amp i(0, 1);
  switch (kind_) {
    case GateKind::H:
      return m2(kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
    case GateKind::X:
    case GateKind::CX:
    case GateKind::CCX:
      return m2(0, 1, 1, 0);
    case GateKind::Y:
    case GateKind::CY:
      return m2(0, -i, i, 0);
    case GateKind::Z:
    case GateKind::CZ:
    case GateKind::CCZ:
      return m2(1, 0, 0, -1);
    case GateKind::S:
      return m2(1, 0, 0, i);
    case GateKind::Sdg:
      return m2(1, 0, 0, -i);
    case GateKind::T:
      return m2(1, 0, 0, expi(std::numbers::pi / 4));
    case GateKind::Tdg:
      return m2(1, 0, 0, expi(-std::numbers::pi / 4));
    case GateKind::SX:
      return m2(Amp(0.5, 0.5), Amp(0.5, -0.5), Amp(0.5, -0.5), Amp(0.5, 0.5));
    case GateKind::RX:
    case GateKind::CRX:
      return rx_matrix(values[0]);
    case GateKind::RY:
    case GateKind::CRY:
      return ry_matrix(values[0]);
    case GateKind::RZ:
    case GateKind::CRZ:
      return rz_matrix(values[0]);
    case GateKind::P:
    case GateKind::CP:
      return m2(1, 0, 0, expi(values[0]));
    case GateKind::U2:
      return u3_matrix(std::numbers::pi / 2, values[0], values[1]);
    case GateKind::U3:
      return u3_matrix(values[0], values[1], values[2]);
    case GateKind::SWAP:
    case GateKind::CSWAP:
      return Matrix::square(4, {1, 0, 0, 0,  //
                                0, 0, 1, 0,  //
                                0, 1, 0, 0,  //
                                0, 0, 0, 1});
    case GateKind::RZZ: {
      const double t = values[0];
      const Amp e0 = expi(-t / 2), e1 = expi(t / 2);
      return Matrix::square(4, {e0, 0, 0, 0,  //
                                0, e1, 0, 0,  //
                                0, 0, e1, 0,  //
                                0, 0, 0, e0});
    }
    case GateKind::RXX: {
      const double t = values[0];
      const double c = std::cos(t / 2), s = std::sin(t / 2);
      const Amp d(c, 0), o(0, -s);
      return Matrix::square(4, {d, 0, 0, o,  //
                                0, d, o, 0,  //
                                0, o, d, 0,  //
                                o, 0, 0, d});
    }
    case GateKind::CH:
      return m2(kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
    case GateKind::Unitary:
      return *custom_;
  }
  throw Error("unhandled gate kind in target_matrix");
}

Matrix Gate::full_matrix() const {
  return embed_controlled(target_matrix(), num_controls_);
}

bool Gate::fully_diagonal() const {
  switch (kind_) {
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::CRZ:
    case GateKind::CCZ:
    case GateKind::RZZ:
      return true;
    case GateKind::Unitary:
      return custom_->is_diagonal();
    default:
      return false;
  }
}

bool Gate::antidiagonal_1q() const {
  if (num_controls_ != 0 || num_targets() != 1) return false;
  switch (kind_) {
    case GateKind::X:
    case GateKind::Y:
      return true;
    case GateKind::Unitary:
      return custom_->is_antidiagonal();
    default:
      return false;
  }
}

bool Gate::qubit_insular(int pos) const {
  ATLAS_DCHECK(pos >= 0 && pos < num_qubits(), "bad qubit position " << pos);
  if (fully_diagonal()) return true;
  if (antidiagonal_1q()) return true;
  return pos >= num_targets();  // control qubits are insular
}

std::vector<Qubit> Gate::non_insular_qubits() const {
  std::vector<Qubit> out;
  for (int pos = 0; pos < num_qubits(); ++pos)
    if (!qubit_insular(pos)) out.push_back(qubits_[pos]);
  return out;
}

bool Gate::acts_on(Qubit q) const {
  return std::find(qubits_.begin(), qubits_.end(), q) != qubits_.end();
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_kind_name(kind_);
  if (!params_.empty()) {
    os << "(";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (i) os << ",";
      os << params_[i];
    }
    os << ")";
  }
  os << " ";
  // Print in user-facing order: controls first, then targets (matching
  // the factory signatures like cx(control, target)).
  bool first = true;
  for (Qubit q : controls()) {
    if (!first) os << ", ";
    os << "q" << q;
    first = false;
  }
  for (Qubit q : targets()) {
    if (!first) os << ", ";
    os << "q" << q;
    first = false;
  }
  return os.str();
}

}  // namespace atlas
