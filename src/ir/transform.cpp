#include "ir/transform.h"

#include <algorithm>
#include <numbers>

#include "common/error.h"

namespace atlas {

Gate inverse_gate(const Gate& g) {
  switch (g.kind()) {
    // Self-inverse gates.
    case GateKind::H: case GateKind::X: case GateKind::Y: case GateKind::Z:
    case GateKind::CX: case GateKind::CY: case GateKind::CZ:
    case GateKind::CH: case GateKind::SWAP: case GateKind::CCX:
    case GateKind::CCZ: case GateKind::CSWAP:
      return g;
    case GateKind::S:
      return Gate::sdg(g.qubits()[0]);
    case GateKind::Sdg:
      return Gate::s(g.qubits()[0]);
    case GateKind::T:
      return Gate::tdg(g.qubits()[0]);
    case GateKind::Tdg:
      return Gate::t(g.qubits()[0]);
    case GateKind::SX:
      // SX^-1 = SX^dagger, expressible as a custom unitary.
      return Gate::unitary({g.qubits()[0]}, g.target_matrix().dagger());
    case GateKind::RX:
      return Gate::rx(g.qubits()[0], -g.params()[0]);
    case GateKind::RY:
      return Gate::ry(g.qubits()[0], -g.params()[0]);
    case GateKind::RZ:
      return Gate::rz(g.qubits()[0], -g.params()[0]);
    case GateKind::P:
      return Gate::p(g.qubits()[0], -g.params()[0]);
    case GateKind::U2:
      // u2(phi,lam) = u3(pi/2, phi, lam) and u3(t,phi,lam)^-1 =
      // u3(-t,-lam,-phi); staying parametric keeps symbolic circuits
      // invertible.
      return Gate::u3(g.qubits()[0], -std::numbers::pi / 2, -g.param(1),
                      -g.param(0));
    case GateKind::U3:
      return Gate::u3(g.qubits()[0], -g.param(0), -g.param(2), -g.param(1));
    case GateKind::CP:
      return Gate::cp(g.qubits()[0], g.qubits()[1], -g.params()[0]);
    case GateKind::CRX:
      return Gate::crx(g.control(0), g.target(0), -g.params()[0]);
    case GateKind::CRY:
      return Gate::cry(g.control(0), g.target(0), -g.params()[0]);
    case GateKind::CRZ:
      return Gate::crz(g.control(0), g.target(0), -g.params()[0]);
    case GateKind::RZZ:
      return Gate::rzz(g.qubits()[0], g.qubits()[1], -g.params()[0]);
    case GateKind::RXX:
      return Gate::rxx(g.qubits()[0], g.qubits()[1], -g.params()[0]);
    case GateKind::Unitary:
      return Gate::controlled_unitary(g.controls(), g.targets(),
                                      g.target_matrix().dagger());
  }
  throw Error("unhandled gate kind in inverse_gate");
}

Circuit inverse(const Circuit& circuit) {
  Circuit inv(circuit.num_qubits(), circuit.name() + "_inv");
  for (int i = circuit.num_gates() - 1; i >= 0; --i)
    inv.add(inverse_gate(circuit.gate(i)));
  return inv;
}

int depth(const Circuit& circuit) {
  std::vector<int> level(circuit.num_qubits(), 0);
  int d = 0;
  for (const Gate& g : circuit.gates()) {
    int l = 0;
    for (Qubit q : g.qubits()) l = std::max(l, level[q]);
    ++l;
    for (Qubit q : g.qubits()) level[q] = l;
    d = std::max(d, l);
  }
  return d;
}

CircuitStats statistics(const Circuit& circuit) {
  CircuitStats s;
  s.num_qubits = circuit.num_qubits();
  s.num_gates = circuit.num_gates();
  s.depth = depth(circuit);
  s.multi_qubit_gates = circuit.num_multi_qubit_gates();
  for (const Gate& g : circuit.gates()) {
    ++s.gate_histogram[gate_kind_name(g.kind())];
    if (g.non_insular_qubits().empty()) ++s.fully_insular_gates;
  }
  return s;
}

}  // namespace atlas
