#include "ir/pauli.h"

#include <numbers>

#include "common/error.h"

namespace atlas {

std::string pauli_name(Pauli p) {
  switch (p) {
    case Pauli::I: return "I";
    case Pauli::X: return "X";
    case Pauli::Y: return "Y";
    case Pauli::Z: return "Z";
  }
  throw Error("unhandled Pauli");
}

Matrix pauli_matrix(Pauli p) {
  const Amp i(0, 1);
  switch (p) {
    case Pauli::I: return Matrix::square(2, {1, 0, 0, 1});
    case Pauli::X: return Matrix::square(2, {0, 1, 1, 0});
    case Pauli::Y: return Matrix::square(2, {0, -i, i, 0});
    case Pauli::Z: return Matrix::square(2, {1, 0, 0, -1});
  }
  throw Error("unhandled Pauli");
}

PauliAngles pauli_u3_angles(Pauli p) {
  constexpr double pi = std::numbers::pi;
  switch (p) {
    case Pauli::I: return {0, 0, 0};
    case Pauli::X: return {pi, 0, pi};
    case Pauli::Y: return {pi, pi / 2, pi / 2};
    case Pauli::Z: return {0, 0, pi};
  }
  throw Error("unhandled Pauli");
}

}  // namespace atlas
