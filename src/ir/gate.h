#pragma once

/// \file gate.h
/// The quantum gate library: gate kinds, unitaries, and the insular-
/// qubit classification of the paper's Definition 2.
///
/// Conventions
/// -----------
/// * `qubits` lists targets first, then controls:
///   `qubits = [t0 .. t_{T-1}, c0 .. c_{C-1}]`.
/// * In any matrix produced for this gate, qubit `qubits[i]` maps to bit
///   `i` of the row/column index (LSB = `qubits[0]`).
/// * `target_matrix()` is the 2^T x 2^T unitary applied to the targets
///   when all control bits are 1; `full_matrix()` is the full
///   2^(T+C) x 2^(T+C) controlled unitary.

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "ir/matrix.h"
#include "ir/param.h"

namespace atlas {

enum class GateKind {
  // Single-qubit.
  H, X, Y, Z, S, Sdg, T, Tdg, SX,
  RX, RY, RZ, P,  // P(theta) = diag(1, e^{i theta}) (a.k.a. u1)
  U2, U3,
  // Two-qubit.
  CX, CY, CZ, CH, CP, CRX, CRY, CRZ,
  SWAP, RZZ, RXX,
  // Three-qubit.
  CCX, CCZ, CSWAP,
  // Arbitrary (possibly controlled) unitary with an explicit matrix;
  // used by generators (e.g. QPE's controlled powers) and by fusion.
  Unitary,
};

/// Human-readable lowercase gate name ("h", "cx", ...).
std::string gate_kind_name(GateKind kind);

class Gate {
 public:
  /// \name Factories
  /// @{
  static Gate h(Qubit q);
  static Gate x(Qubit q);
  static Gate y(Qubit q);
  static Gate z(Qubit q);
  static Gate s(Qubit q);
  static Gate sdg(Qubit q);
  static Gate t(Qubit q);
  static Gate tdg(Qubit q);
  static Gate sx(Qubit q);
  /// The rotation family accepts symbolic parameters (Param converts
  /// implicitly from double, so concrete call sites are unchanged).
  static Gate rx(Qubit q, Param theta);
  static Gate ry(Qubit q, Param theta);
  static Gate rz(Qubit q, Param theta);
  static Gate p(Qubit q, Param theta);
  static Gate u2(Qubit q, Param phi, Param lambda);
  static Gate u3(Qubit q, Param theta, Param phi, Param lambda);
  static Gate cx(Qubit control, Qubit target);
  static Gate cy(Qubit control, Qubit target);
  static Gate cz(Qubit a, Qubit b);
  static Gate ch(Qubit control, Qubit target);
  static Gate cp(Qubit a, Qubit b, Param theta);
  static Gate crx(Qubit control, Qubit target, Param theta);
  static Gate cry(Qubit control, Qubit target, Param theta);
  static Gate crz(Qubit control, Qubit target, Param theta);
  static Gate swap(Qubit a, Qubit b);
  static Gate rzz(Qubit a, Qubit b, Param theta);
  static Gate rxx(Qubit a, Qubit b, Param theta);
  static Gate ccx(Qubit c0, Qubit c1, Qubit target);
  static Gate ccz(Qubit a, Qubit b, Qubit c);
  static Gate cswap(Qubit control, Qubit a, Qubit b);
  /// Arbitrary unitary on `targets` (matrix size 2^|targets|).
  static Gate unitary(std::vector<Qubit> targets, Matrix m);
  /// `matrix` applied to `targets` when all `controls` are |1>.
  static Gate controlled_unitary(std::vector<Qubit> controls,
                                 std::vector<Qubit> targets, Matrix m);
  /// @}

  GateKind kind() const { return kind_; }
  const std::vector<Qubit>& qubits() const { return qubits_; }
  const std::vector<Param>& params() const { return params_; }
  const Param& param(int i) const { return params_[i]; }

  /// The concrete value of parameter `i`; throws atlas::Error when it
  /// is still symbolic (bind() first).
  double param_value(int i) const;

  /// True iff any parameter still contains a free symbol.
  bool is_parameterized() const;

  /// A copy with every parameter evaluated against `binding`; throws
  /// atlas::Error naming the first missing symbol. Identity for
  /// concrete gates.
  Gate bind(const ParamBinding& binding) const;

  /// Appends this gate's free symbols to `out` (unsorted, may repeat).
  void collect_symbols(std::vector<std::string>& out) const;

  /// A copy with its parameter list replaced (arity must match). The
  /// canonicalization step of Session::compile() uses this to swap
  /// user parameters for plan slot symbols.
  Gate with_params(std::vector<Param> params) const;

  int num_qubits() const { return static_cast<int>(qubits_.size()); }
  int num_targets() const { return num_qubits() - num_controls_; }
  int num_controls() const { return num_controls_; }

  Qubit target(int i) const { return qubits_[i]; }
  Qubit control(int i) const { return qubits_[num_targets() + i]; }
  std::vector<Qubit> targets() const;
  std::vector<Qubit> controls() const;

  /// 2^T x 2^T unitary applied to targets when all controls are 1.
  Matrix target_matrix() const;

  /// Full 2^(T+C) x 2^(T+C) matrix (controls = high bits).
  Matrix full_matrix() const;

  /// target_matrix()/full_matrix() with symbolic parameters resolved
  /// against `env` instead of requiring constants — the bind-time
  /// materialization entry: no gate copy, no circuit bind(), and for
  /// slot-canonical plans no string lookups (dense slot indexing).
  Matrix target_matrix_resolved(const ParamEnv& env) const;
  Matrix full_matrix_resolved(const ParamEnv& env) const;

  /// Insularity of `qubits()[pos]` per Definition 2:
  /// * all qubits of a fully diagonal gate are insular (covers
  ///   footnote 2's "any qubit can be the control": cz, cp, ccz, rzz,
  ///   and the diagonal 1-qubit gates);
  /// * the qubit of an uncontrolled single-qubit anti-diagonal gate
  ///   (x, y) is insular;
  /// * control qubits of controlled-U gates are insular;
  /// * everything else is non-insular.
  bool qubit_insular(int pos) const;

  /// The subset of qubits() that is non-insular (order preserved).
  std::vector<Qubit> non_insular_qubits() const;

  /// True iff full_matrix() is diagonal (decided per kind, not
  /// numerically, so it is exact for parameterized gates).
  bool fully_diagonal() const;

  /// True iff this is an uncontrolled 1-qubit gate whose matrix is
  /// anti-diagonal (x, y).
  bool antidiagonal_1q() const;

  /// True iff the gate touches qubit q.
  bool acts_on(Qubit q) const;

  /// "h q3", "cp(0.7853982) q0, q5", ... for debugging and QASM output.
  std::string to_string() const;

 private:
  Gate(GateKind kind, std::vector<Qubit> qubits, int num_controls,
       std::vector<Param> params);

  /// target_matrix() with explicit parameter values (values[i] is the
  /// resolved value of params_[i]); the single switch both public
  /// entries share.
  Matrix materialize_target(const double* values) const;

  GateKind kind_;
  std::vector<Qubit> qubits_;  // targets..., controls...
  int num_controls_ = 0;
  std::vector<Param> params_;
  std::shared_ptr<const Matrix> custom_;  // target matrix for Unitary
};

}  // namespace atlas
