#pragma once

/// \file transform.h
/// Circuit-level utilities: inversion, depth, and summary statistics.
/// These are standard toolbox operations a downstream user expects from
/// a circuit IR (and tests use inverse() to build identity round trips
/// on every family).

#include <map>
#include <string>

#include "ir/circuit.h"

namespace atlas {

/// The inverse circuit: gates reversed, each replaced by its dagger.
/// inverse(c) applied after c maps any state back to itself.
Circuit inverse(const Circuit& circuit);

/// The dagger of a single gate.
Gate inverse_gate(const Gate& gate);

/// Circuit depth: longest dependency chain (layers of parallel gates).
int depth(const Circuit& circuit);

struct CircuitStats {
  int num_qubits = 0;
  int num_gates = 0;
  int depth = 0;
  int multi_qubit_gates = 0;
  int fully_insular_gates = 0;
  std::map<std::string, int> gate_histogram;
};

CircuitStats statistics(const Circuit& circuit);

}  // namespace atlas
