#include "ir/param.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace atlas {
namespace {

/// Counts every string-keyed ParamBinding lookup process-wide. Relaxed
/// increments: the probe is a monotonic counter read between quiescent
/// points, never a synchronization primitive.
std::atomic<std::uint64_t> g_binding_lookups{0};

/// Prints one term's coefficient and symbol: "theta", "-theta",
/// "2*theta". `lead` selects the leading-position form (signed) vs the
/// continuation form (magnitude only; the caller printed " + "/" - ").
void print_term(std::ostream& os, double coeff, const std::string& sym,
                bool lead) {
  const double mag = lead ? coeff : std::abs(coeff);
  if (mag == 1.0) {
    os << sym;
  } else if (lead && mag == -1.0) {
    os << "-" << sym;
  } else {
    os << mag << "*" << sym;
  }
}

}  // namespace

bool ParamBinding::contains(const std::string& name) const {
  g_binding_lookups.fetch_add(1, std::memory_order_relaxed);
  return values_.count(name) != 0;
}

double ParamBinding::at(const std::string& name) const {
  g_binding_lookups.fetch_add(1, std::memory_order_relaxed);
  auto it = values_.find(name);
  ATLAS_CHECK(it != values_.end(), "no value bound for symbol '" << name
                                                                 << "'");
  return it->second;
}

std::uint64_t ParamBinding::probe_lookups() {
  return g_binding_lookups.load(std::memory_order_relaxed);
}

Param Param::symbol(std::string name) {
  // Identifier syntax keeps every symbol printable and QASM
  // round-trippable; the '$' start is reserved for the engine's
  // internal plan slots ("$0", "$1", ...) and the '~' start for the
  // noise engine's trajectory slots ("~n<site>..."): QASM identifiers
  // can produce neither, so user symbols never collide with engine
  // symbols.
  ATLAS_CHECK(!name.empty(), "empty parameter symbol name");
  ATLAS_CHECK(std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
                  name[0] == '_' || name[0] == '$' || name[0] == '~',
              "bad parameter symbol '"
                  << name
                  << "': must start with a letter, _, $ or ~ ($ and ~ are "
                     "reserved for engine slots)");
  for (std::size_t i = 1; i < name.size(); ++i) {
    ATLAS_CHECK(std::isalnum(static_cast<unsigned char>(name[i])) != 0 ||
                    name[i] == '_',
                "bad parameter symbol '" << name
                                         << "': only letters, digits and _");
  }
  ATLAS_CHECK(name != "pi", "'pi' is a reserved constant, not a symbol");
  Param p;
  p.terms_.emplace_back(std::move(name), 1.0);
  return p;
}

double Param::constant_value() const {
  ATLAS_CHECK(is_constant(), "parameter '"
                                 << to_string()
                                 << "' is symbolic; bind its symbols first");
  return constant_;
}

double Param::evaluate(const ParamBinding& binding) const {
  double v = constant_;
  for (const auto& [sym, coeff] : terms_) {
    ATLAS_CHECK(binding.contains(sym),
                "binding is missing symbol '" << sym << "' needed by '"
                                              << to_string() << "'");
    v += coeff * binding.at(sym);
  }
  return v;
}

int Param::slot_index() const {
  if (constant_ != 0.0 || terms_.size() != 1) return -1;
  const auto& [sym, coeff] = terms_.front();
  // <= 9 digits keeps the accumulator below INT_MAX; longer strings are
  // user-minted '$' symbols, never engine slots.
  if (coeff != 1.0 || sym.size() < 2 || sym.size() > 10 || sym[0] != '$')
    return -1;
  int index = 0;
  for (std::size_t i = 1; i < sym.size(); ++i) {
    const unsigned char ch = static_cast<unsigned char>(sym[i]);
    if (std::isdigit(ch) == 0) return -1;
    index = index * 10 + (sym[i] - '0');
  }
  return index;
}

std::vector<std::string> Param::symbols() const {
  std::vector<std::string> out;
  out.reserve(terms_.size());
  for (const auto& [sym, coeff] : terms_) out.push_back(sym);
  return out;  // terms_ is sorted and deduplicated by construction
}

std::string Param::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Param Param::operator-() const {
  Param p = *this;
  p.constant_ = -p.constant_;
  for (auto& [sym, coeff] : p.terms_) coeff = -coeff;
  return p;
}

Param& Param::operator+=(const Param& other) {
  constant_ += other.constant_;
  // Merge two sorted term lists.
  std::vector<std::pair<std::string, double>> merged;
  merged.reserve(terms_.size() + other.terms_.size());
  auto a = terms_.begin();
  auto b = other.terms_.begin();
  while (a != terms_.end() || b != other.terms_.end()) {
    if (b == other.terms_.end() || (a != terms_.end() && a->first < b->first)) {
      merged.push_back(*a++);
    } else if (a == terms_.end() || b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.emplace_back(a->first, a->second + b->second);
      ++a, ++b;
    }
  }
  terms_ = std::move(merged);
  drop_zero_terms();
  return *this;
}

Param& Param::operator-=(const Param& other) { return *this += -other; }

Param& Param::operator*=(double factor) {
  constant_ *= factor;
  for (auto& [sym, coeff] : terms_) coeff *= factor;
  drop_zero_terms();
  return *this;
}

Param& Param::operator/=(double divisor) {
  ATLAS_CHECK(divisor != 0.0, "division by zero in parameter expression");
  return *this *= 1.0 / divisor;
}

Param operator*(const Param& a, const Param& b) {
  ATLAS_CHECK(a.is_constant() || b.is_constant(),
              "non-affine parameter expression: cannot multiply '"
                  << a.to_string() << "' by '" << b.to_string() << "'");
  if (a.is_constant()) return Param(b) *= a.constant_;
  return Param(a) *= b.constant_;
}

Param operator/(const Param& a, const Param& b) {
  ATLAS_CHECK(b.is_constant(), "non-affine parameter expression: cannot "
                               "divide by symbolic '"
                                   << b.to_string() << "'");
  return Param(a) /= b.constant_value();
}

void Param::drop_zero_terms() {
  terms_.erase(std::remove_if(terms_.begin(), terms_.end(),
                              [](const auto& t) { return t.second == 0.0; }),
               terms_.end());
}

double resolve_param(const Param& p, const ParamEnv& env) {
  if (p.is_constant()) return p.constant_term();
  if (env.slots != nullptr) {
    const int k = p.slot_index();
    if (k >= 0 && k < static_cast<int>(env.slots->size()))
      return (*env.slots)[static_cast<std::size_t>(k)];
  }
  ATLAS_CHECK(env.named != nullptr,
              "no binding supplied for symbolic parameter '" << p.to_string()
                                                             << "'");
  return p.evaluate(*env.named);
}

std::ostream& operator<<(std::ostream& os, const Param& p) {
  const auto& terms = p.terms();
  if (terms.empty()) {
    os << p.constant_term();
    return os;
  }
  print_term(os, terms[0].second, terms[0].first, /*lead=*/true);
  for (std::size_t i = 1; i < terms.size(); ++i) {
    os << (terms[i].second < 0 ? " - " : " + ");
    print_term(os, terms[i].second, terms[i].first, /*lead=*/false);
  }
  const double c = p.constant_term();
  if (c != 0.0) os << (c < 0 ? " - " : " + ") << std::abs(c);
  return os;
}

}  // namespace atlas
