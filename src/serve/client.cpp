#include "serve/client.h"

#include <algorithm>
#include <utility>

namespace atlas::serve {

Client::Client(const std::string& host, int port)
    : fd_(tcp_connect(host, port)) {}

std::uint64_t Client::post(Op op, std::uint64_t session_id,
                           const std::vector<std::uint8_t>& body) {
  const std::uint64_t request_id = next_request_id_++;
  WireWriter w;
  w.u64(request_id);
  w.u16(static_cast<std::uint16_t>(op));
  w.u64(session_id);
  std::vector<std::uint8_t> frame = w.take();
  frame.insert(frame.end(), body.begin(), body.end());
  if (!write_frame(fd_.get(), frame)) {
    throw Error("serve connection lost while sending " +
                    std::string(op_name(op)),
                ErrorCode::unavailable);
  }
  return request_id;
}

Status Client::wait_status(std::uint64_t request_id,
                           std::vector<std::uint8_t>* body,
                           std::string* message) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    // Parked frame from an earlier out-of-order arrival?
    auto it = std::find_if(parked_.begin(), parked_.end(),
                           [request_id](const auto& p) {
                             return p.first == request_id;
                           });
    if (it != parked_.end()) {
      payload = std::move(it->second);
      parked_.erase(it);
    } else {
      if (!read_frame(fd_.get(), payload)) {
        throw Error("serve connection lost while waiting for reply " +
                        std::to_string(request_id),
                    ErrorCode::unavailable);
      }
      WireReader peek(payload);
      const std::uint64_t got = peek.u64();
      if (got != request_id) {
        parked_.emplace_back(got, std::move(payload));
        payload.clear();
        continue;
      }
    }
    WireReader r(payload);
    r.u64();  // request_id, already matched
    const Status status = static_cast<Status>(r.u16());
    if (status == Status::ok) {
      if (body != nullptr) {
        body->assign(payload.begin() +
                         static_cast<std::ptrdiff_t>(payload.size() -
                                                     r.remaining()),
                     payload.end());
      }
    } else if (message != nullptr) {
      *message = r.str();
    }
    return status;
  }
}

std::vector<std::uint8_t> Client::wait(std::uint64_t request_id) {
  std::vector<std::uint8_t> body;
  std::string message;
  const Status status = wait_status(request_id, &body, &message);
  if (status != Status::ok) {
    throw Error("serve error (" + std::string(status_name(status)) +
                    "): " + message,
                error_code_from(status));
  }
  return body;
}

std::vector<std::uint8_t> Client::call(Op op, std::uint64_t session_id,
                                       const std::vector<std::uint8_t>& body) {
  return wait(post(op, session_id, body));
}

bool Client::send_raw_frame(const std::vector<std::uint8_t>& payload) {
  return write_frame(fd_.get(), payload);
}

std::uint64_t Client::open_session(const OpenSessionRequest& request) {
  WireWriter w;
  request.encode(w);
  const std::vector<std::uint8_t> reply = call(Op::open_session, 0, w.bytes());
  WireReader r(reply);
  return r.u64();
}

SubmitReply Client::submit_qasm(std::uint64_t session_id,
                                const std::string& qasm) {
  WireWriter w;
  w.str(qasm);
  const std::vector<std::uint8_t> reply = call(Op::submit_qasm, session_id, w.bytes());
  WireReader r(reply);
  return SubmitReply::decode(r);
}

CompileReply Client::compile(std::uint64_t session_id,
                             std::uint32_t circuit_id) {
  WireWriter w;
  w.u32(circuit_id);
  const std::vector<std::uint8_t> reply = call(Op::compile, session_id, w.bytes());
  WireReader r(reply);
  return CompileReply::decode(r);
}

RunReply Client::run(std::uint64_t session_id, std::uint32_t compiled_id,
                     const std::vector<double>& values) {
  WireWriter w;
  w.u32(compiled_id);
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) w.f64(v);
  const std::vector<std::uint8_t> reply = call(Op::run, session_id, w.bytes());
  WireReader r(reply);
  return RunReply::decode(r);
}

std::vector<SweepPoint> Client::sweep(
    std::uint64_t session_id, std::uint32_t compiled_id,
    const std::vector<std::vector<double>>& points) {
  const std::size_t point_size = points.empty() ? 0 : points.front().size();
  for (const auto& p : points) {
    ATLAS_CHECK_ARG(p.size() == point_size,
                    "sweep points must have equal size");
  }
  WireWriter w;
  w.u32(compiled_id);
  w.u32(static_cast<std::uint32_t>(points.size()));
  w.u32(static_cast<std::uint32_t>(point_size));
  for (const auto& p : points) {
    for (double v : p) w.f64(v);
  }
  const std::vector<std::uint8_t> reply = call(Op::sweep, session_id, w.bytes());
  WireReader r(reply);
  const std::uint32_t n = r.u32();
  std::vector<SweepPoint> out(n);
  for (auto& p : out) {
    p.norm_sq = r.f64();
    const std::uint32_t nq = r.u32();
    p.expectation_z.resize(nq);
    for (auto& z : p.expectation_z) z = r.f64();
  }
  return out;
}

NoisyReply Client::run_noisy(std::uint64_t session_id,
                             std::uint32_t circuit_id, int trajectories,
                             int shots, const std::vector<double>& values) {
  WireWriter w;
  w.u32(circuit_id);
  w.u32(static_cast<std::uint32_t>(trajectories));
  w.u32(static_cast<std::uint32_t>(shots));
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) w.f64(v);
  const std::vector<std::uint8_t> reply = call(Op::run_noisy, session_id, w.bytes());
  WireReader r(reply);
  return NoisyReply::decode(r);
}

std::vector<std::uint64_t> Client::sample(std::uint64_t session_id,
                                          std::uint32_t result_id,
                                          int shots) {
  WireWriter w;
  w.u32(result_id);
  w.u32(static_cast<std::uint32_t>(shots));
  const std::vector<std::uint8_t> reply = call(Op::sample, session_id, w.bytes());
  WireReader r(reply);
  const std::uint32_t n = r.u32();
  std::vector<std::uint64_t> out(n);
  for (auto& s : out) s = r.u64();
  return out;
}

void Client::close_session(std::uint64_t session_id) {
  call(Op::close_session, session_id, {});
}

std::vector<SessionInfo> Client::list_sessions() {
  const std::vector<std::uint8_t> reply = call(Op::list_sessions, 0, {});
  WireReader r(reply);
  const std::uint32_t n = r.u32();
  std::vector<SessionInfo> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(SessionInfo::decode(r));
  return out;
}

CacheStatsReply Client::cache_stats() {
  const std::vector<std::uint8_t> reply = call(Op::cache_stats, 0, {});
  WireReader r(reply);
  return CacheStatsReply::decode(r);
}

MetricsReply Client::metrics() {
  const std::vector<std::uint8_t> reply = call(Op::metrics, 0, {});
  WireReader r(reply);
  return MetricsReply::decode(r);
}

void Client::evict_session(std::uint64_t session_id) {
  call(Op::evict_session, session_id, {});
}

void Client::drain() { call(Op::drain, 0, {}); }

void Client::shutdown_server() { call(Op::shutdown, 0, {}); }

}  // namespace atlas::serve
