#pragma once

/// \file server.h
/// The atlas-serve daemon core: a TCP accept loop, one reader thread
/// per connection, and the request router. Data-plane ops are executed
/// on the Dispatcher's fair-share worker pool (replies go out from
/// worker threads, serialized per connection); introspection ops are
/// answered inline on the reader thread so a saturated data plane
/// never blocks `atlas-servectl list`/`stats`.
///
/// Lifecycle: start() binds and spawns the accept loop; drain (the op
/// or drain()) stops admitting data-plane work and waits out what is
/// in flight; stop() tears everything down. A shutdown op requests
/// termination — the embedding main() observes wait_shutdown() and
/// calls stop(), keeping teardown off connection threads.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "core/session.h"
#include "serve/dispatcher.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/session_store.h"

namespace atlas::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (read it back with port()).
  int port = 0;
  /// Dispatcher worker threads executing data-plane ops (0 = hardware
  /// concurrency).
  int workers = 2;
  /// Per-tenant admission bound (0 = unbounded).
  std::size_t max_pending_per_tenant = 32;
  /// Cross-tenant shared plan cache capacity (entries).
  std::size_t shared_plan_capacity = 128;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Reply-write deadline per frame: a client that stops reading its
  /// socket for this long is declared dead and its connection is torn
  /// down, so a stalled peer cannot pin a dispatcher worker in
  /// send_reply (or wedge stop()'s drain) indefinitely. -1 = forever.
  int write_timeout_ms = 10000;
  /// Base SessionConfig for tenant sessions (open_session overrides
  /// shape/opt_level/seed per tenant). Defaults keep each session
  /// single-threaded — serving parallelism comes from `workers`, not
  /// from nested per-session pools.
  SessionConfig session;
  StoreLimits store;

  ServerConfig() {
    session.cluster.num_threads = 1;
    session.dispatch_threads = 1;
    // A valid default cluster shape (ClusterConfig's zeros fail
    // Session validation): 12 logical qubits, 2 GPUs/node, 2 nodes.
    // Daemon operators size the real shape via the atlas-serve flags.
    session.cluster.local_qubits = 10;
    session.cluster.regional_qubits = 1;
    session.cluster.global_qubits = 1;
    session.cluster.gpus_per_node = 2;
  }
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts accepting. Throws atlas::Error when the address
  /// is unusable.
  void start();
  /// The bound port (valid after start()).
  int port() const { return port_; }
  const ServerConfig& config() const { return config_; }

  /// Stops admitting data-plane requests and blocks until in-flight
  /// work (including fanned-out sweep points) has completed.
  /// Idempotent. Introspection ops keep working afterwards.
  void drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Full teardown: drain, close the listener and every connection,
  /// join all threads. Idempotent; called by the destructor.
  void stop();

  /// Blocks until a client issues the shutdown op (or stop() runs).
  /// Returns true when shutdown was requested, false when the wait was
  /// ended by stop().
  bool wait_shutdown();

  /// \name Test/diagnostic access
  /// @{
  SessionStore& store() { return *store_; }
  SharedPlanCache::Stats shared_cache_stats() const {
    return shared_cache_->stats();
  }
  /// @}

 private:
  struct Connection {
    Fd fd;
    /// Serializes whole reply frames: workers for different requests
    /// on one connection interleave at frame, not byte, granularity.
    Mutex write_mu;
    std::thread reader;
    std::atomic<bool> dead{false};
  };

  /// Per-request context threaded into handlers: where to reply and
  /// how to settle admission accounting exactly once.
  struct RequestContext;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  /// Routes one decoded frame. Returns false when the connection must
  /// be dropped (unparseable header).
  bool handle_frame(const std::shared_ptr<Connection>& conn,
                    std::vector<std::uint8_t> payload);
  void handle_data_op(const std::shared_ptr<RequestContext>& ctx,
                      std::shared_ptr<std::vector<std::uint8_t>> payload);
  void handle_inline_op(const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, Op op,
                        std::uint64_t session_id, WireReader& body);

  /// Op bodies (executed on dispatcher workers). Each returns the
  /// encoded reply body.
  std::vector<std::uint8_t> do_open_session(std::uint64_t& session_id_out,
                                            WireReader& body);
  std::vector<std::uint8_t> do_submit_qasm(ServeSession& session,
                                           WireReader& body);
  std::vector<std::uint8_t> do_compile(ServeSession& session,
                                       WireReader& body);
  std::vector<std::uint8_t> do_run(ServeSession& session, WireReader& body);
  std::vector<std::uint8_t> do_run_noisy(ServeSession& session,
                                         WireReader& body);
  std::vector<std::uint8_t> do_sample(ServeSession& session, WireReader& body);
  /// sweep fans per-point items through the dispatcher and replies from
  /// the last point; returns without settling the context.
  void do_sweep(const std::shared_ptr<RequestContext>& ctx,
                const std::shared_ptr<ServeSession>& session,
                WireReader& body);

  void send_reply(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id, Status status,
                  const std::vector<std::uint8_t>& body);
  void send_error(const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id, Status status,
                  const std::string& message);

  ServerConfig config_;
  std::unique_ptr<SessionStore> store_;
  std::unique_ptr<SharedPlanCache> shared_cache_;
  std::unique_ptr<Dispatcher> dispatcher_;

  Fd listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  Mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> connections_
      ATLAS_GUARDED_BY(conn_mu_);

  Mutex shutdown_mu_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ ATLAS_GUARDED_BY(shutdown_mu_) = false;
  bool stopped_ ATLAS_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace atlas::serve
