#pragma once

/// \file net.h
/// Minimal POSIX TCP plumbing for the serve subsystem: listener/
/// connector helpers and poll-driven exact-size reads and writes over
/// nonblocking sockets. Every fd handed out by these helpers is
/// nonblocking and parks in poll() instead of in the kernel's blocking
/// send/recv paths. Reads park indefinitely — an idle connection is
/// normal, and shutdown_fd() wakes the poll for teardown. Writes take
/// a caller-supplied deadline, so a peer that stops reading cannot
/// wedge a writer thread (the server passes a finite timeout and drops
/// the connection on expiry).

#include <cstddef>
#include <cstdint>
#include <string>

namespace atlas::serve {

/// RAII socket handle (close on destroy, move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void reset();
  /// Releases ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Opens a nonblocking listener on host:port (SO_REUSEADDR). port 0
/// binds an ephemeral port; `*bound_port` receives the actual one.
/// Throws atlas::Error on failure.
Fd tcp_listen(const std::string& host, int port, int* bound_port);

/// Connects to host:port and returns a nonblocking socket. Throws
/// atlas::Error (ErrorCode::unavailable) when the peer is unreachable
/// within `timeout_ms`.
Fd tcp_connect(const std::string& host, int port, int timeout_ms = 5000);

/// Reads exactly `n` bytes, polling for readability between partial
/// reads. Returns false on EOF or a socket error (connection is dead);
/// true when the buffer is full.
bool read_exact(int fd, void* buf, std::size_t n);

/// Writes exactly `n` bytes, polling for writability between partial
/// nonblocking sends. `timeout_ms` bounds the TOTAL time spent parked
/// waiting for the peer to drain its receive window (-1 = forever);
/// on expiry the write fails as if the peer died. Returns false when
/// the peer is gone or the deadline passed.
bool write_all(int fd, const void* buf, std::size_t n, int timeout_ms = -1);

/// Half-closes + closes a socket to wake any thread polling on it.
void shutdown_fd(int fd);

}  // namespace atlas::serve
