#include "serve/protocol.h"

#include <bit>

#include "serve/net.h"

namespace atlas::serve {

static_assert(std::endian::native == std::endian::little,
              "the serve wire protocol assumes a little-endian host");

Status status_from(ErrorCode code) {
  switch (code) {
    case ErrorCode::invalid_argument: return Status::invalid_argument;
    case ErrorCode::not_found: return Status::not_found;
    case ErrorCode::capacity: return Status::capacity;
    case ErrorCode::unavailable: return Status::unavailable;
    case ErrorCode::internal: return Status::internal;
  }
  return Status::internal;
}

ErrorCode error_code_from(Status status) {
  switch (status) {
    case Status::ok: return ErrorCode::internal;  // not an error
    case Status::invalid_argument: return ErrorCode::invalid_argument;
    case Status::not_found: return ErrorCode::not_found;
    case Status::capacity: return ErrorCode::capacity;
    case Status::unavailable: return ErrorCode::unavailable;
    case Status::internal: return ErrorCode::internal;
  }
  return ErrorCode::internal;
}

const char* status_name(Status status) {
  switch (status) {
    case Status::ok: return "ok";
    case Status::invalid_argument: return "invalid_argument";
    case Status::not_found: return "not_found";
    case Status::capacity: return "capacity";
    case Status::unavailable: return "unavailable";
    case Status::internal: return "internal";
  }
  return "?";
}

const char* op_name(Op op) {
  switch (op) {
    case Op::open_session: return "open_session";
    case Op::submit_qasm: return "submit_qasm";
    case Op::compile: return "compile";
    case Op::run: return "run";
    case Op::sweep: return "sweep";
    case Op::run_noisy: return "run_noisy";
    case Op::sample: return "sample";
    case Op::close_session: return "close_session";
    case Op::list_sessions: return "list_sessions";
    case Op::cache_stats: return "cache_stats";
    case Op::evict_session: return "evict_session";
    case Op::drain: return "drain";
    case Op::shutdown: return "shutdown";
    case Op::metrics: return "metrics";
  }
  return "?";
}

void OpenSessionRequest::encode(WireWriter& w) const {
  w.str(tenant);
  w.u32(static_cast<std::uint32_t>(local_qubits));
  w.u32(static_cast<std::uint32_t>(regional_qubits));
  w.u32(static_cast<std::uint32_t>(global_qubits));
  w.u32(static_cast<std::uint32_t>(gpus_per_node));
  w.u32(static_cast<std::uint32_t>(opt_level));
  w.u64(seed);
  w.u32(ttl_ms);
}

OpenSessionRequest OpenSessionRequest::decode(WireReader& r) {
  OpenSessionRequest q;
  q.tenant = r.str();
  q.local_qubits = static_cast<int>(r.u32());
  q.regional_qubits = static_cast<int>(r.u32());
  q.global_qubits = static_cast<int>(r.u32());
  q.gpus_per_node = static_cast<int>(r.u32());
  q.opt_level = static_cast<int>(r.u32());
  q.seed = r.u64();
  q.ttl_ms = r.u32();
  return q;
}

namespace {

void encode_strings(WireWriter& w, const std::vector<std::string>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) w.str(s);
}

std::vector<std::string> decode_strings(WireReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::string> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.str());
  return v;
}

void encode_doubles(WireWriter& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) w.f64(x);
}

std::vector<double> decode_doubles(WireReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

}  // namespace

void SubmitReply::encode(WireWriter& w) const {
  w.u32(circuit_id);
  w.u32(num_qubits);
  w.u32(num_gates);
  w.u8(has_noise ? 1 : 0);
  encode_strings(w, symbols);
}

SubmitReply SubmitReply::decode(WireReader& r) {
  SubmitReply q;
  q.circuit_id = r.u32();
  q.num_qubits = r.u32();
  q.num_gates = r.u32();
  q.has_noise = r.u8() != 0;
  q.symbols = decode_strings(r);
  return q;
}

void CompileReply::encode(WireWriter& w) const {
  w.u32(compiled_id);
  w.u8(shared_cache_hit ? 1 : 0);
  encode_strings(w, symbols);
}

CompileReply CompileReply::decode(WireReader& r) {
  CompileReply q;
  q.compiled_id = r.u32();
  q.shared_cache_hit = r.u8() != 0;
  q.symbols = decode_strings(r);
  return q;
}

void RunReply::encode(WireWriter& w) const {
  w.u32(result_id);
  w.u64(seed);
  w.f64(norm_sq);
  encode_doubles(w, expectation_z);
}

RunReply RunReply::decode(WireReader& r) {
  RunReply q;
  q.result_id = r.u32();
  q.seed = r.u64();
  q.norm_sq = r.f64();
  q.expectation_z = decode_doubles(r);
  return q;
}

void NoisyReply::encode(WireWriter& w) const {
  w.u64(trajectories);
  w.u8(pauli_fast_path ? 1 : 0);
  w.f64(mean_weight);
  encode_doubles(w, z_value);
  encode_doubles(w, z_std_error);
  w.u32(static_cast<std::uint32_t>(counts.size()));
  for (const auto& [basis, weight] : counts) {
    w.u64(basis);
    w.f64(weight);
  }
}

NoisyReply NoisyReply::decode(WireReader& r) {
  NoisyReply q;
  q.trajectories = r.u64();
  q.pauli_fast_path = r.u8() != 0;
  q.mean_weight = r.f64();
  q.z_value = decode_doubles(r);
  q.z_std_error = decode_doubles(r);
  const std::uint32_t n = r.u32();
  q.counts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t basis = r.u64();
    const double weight = r.f64();
    q.counts.emplace_back(basis, weight);
  }
  return q;
}

void SessionInfo::encode(WireWriter& w) const {
  w.u64(session_id);
  w.str(tenant);
  w.f64(idle_seconds);
  w.f64(ttl_seconds);
  w.u32(active);
  w.u32(queued);
  w.u32(circuits);
  w.u32(compiled);
  w.u32(results);
}

SessionInfo SessionInfo::decode(WireReader& r) {
  SessionInfo q;
  q.session_id = r.u64();
  q.tenant = r.str();
  q.idle_seconds = r.f64();
  q.ttl_seconds = r.f64();
  q.active = r.u32();
  q.queued = r.u32();
  q.circuits = r.u32();
  q.compiled = r.u32();
  q.results = r.u32();
  return q;
}

void CacheStatsReply::encode(WireWriter& w) const {
  w.u64(shared_hits);
  w.u64(shared_misses);
  w.u64(shared_evictions);
  w.u32(shared_entries);
  w.u64(shared_resident_bytes);
  w.u64(session_hits);
  w.u64(session_misses);
  w.u64(session_evictions);
  w.u64(session_entries);
  w.u64(session_resident_bytes);
  w.u32(sessions);
  w.u32(session_capacity);
  w.u64(sessions_purged);
}

CacheStatsReply CacheStatsReply::decode(WireReader& r) {
  CacheStatsReply q;
  q.shared_hits = r.u64();
  q.shared_misses = r.u64();
  q.shared_evictions = r.u64();
  q.shared_entries = r.u32();
  q.shared_resident_bytes = r.u64();
  q.session_hits = r.u64();
  q.session_misses = r.u64();
  q.session_evictions = r.u64();
  q.session_entries = r.u64();
  q.session_resident_bytes = r.u64();
  q.sessions = r.u32();
  q.session_capacity = r.u32();
  q.sessions_purged = r.u64();
  return q;
}

void MetricsReply::encode(WireWriter& w) const {
  w.u32(static_cast<std::uint32_t>(metrics.size()));
  for (const auto& m : metrics) {
    w.str(m.name);
    w.u8(m.kind);
    switch (m.kind) {
      case 0:  // counter
        w.u64(m.count);
        break;
      case 1:  // gauge
        w.u64(static_cast<std::uint64_t>(m.gauge));
        break;
      default:  // histogram
        w.u64(m.count);
        w.f64(m.sum);
        w.f64(m.p50);
        w.f64(m.p90);
        w.f64(m.p99);
        break;
    }
  }
}

MetricsReply MetricsReply::decode(WireReader& r) {
  MetricsReply q;
  const std::uint32_t n = r.u32();
  q.metrics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MetricEntry m;
    m.name = r.str();
    m.kind = r.u8();
    switch (m.kind) {
      case 0:
        m.count = r.u64();
        break;
      case 1:
        m.gauge = static_cast<std::int64_t>(r.u64());
        break;
      default:
        m.count = r.u64();
        m.sum = r.f64();
        m.p50 = r.f64();
        m.p90 = r.f64();
        m.p99 = r.f64();
        break;
    }
    q.metrics.push_back(std::move(m));
  }
  return q;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_bytes) {
  std::uint32_t len = 0;
  if (!read_exact(fd, &len, sizeof(len))) return false;
  if (len > max_bytes) return false;  // garbage length prefix
  payload.resize(len);
  if (len == 0) return true;
  return read_exact(fd, payload.data(), len);
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 int timeout_ms) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  // Typical frames are tiny: coalesce prefix + payload into one
  // send() instead of two. Big frames skip the copy and pay the
  // second syscall, which is noise at that size.
  constexpr std::size_t kCoalesceLimit = 64 * 1024;
  if (payload.size() <= kCoalesceLimit) {
    std::vector<std::uint8_t> frame(sizeof(len) + payload.size());
    std::memcpy(frame.data(), &len, sizeof(len));
    if (!payload.empty()) {
      std::memcpy(frame.data() + sizeof(len), payload.data(),
                  payload.size());
    }
    return write_all(fd, frame.data(), frame.size(), timeout_ms);
  }
  if (!write_all(fd, &len, sizeof(len), timeout_ms)) return false;
  return write_all(fd, payload.data(), payload.size(), timeout_ms);
}

}  // namespace atlas::serve
