#include "serve/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"

namespace atlas::serve {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ATLAS_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ATLAS_CHECK_ARG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "not an IPv4 address: '" << host << "'");
  return addr;
}

/// Blocks in poll() until `events` is ready. Returns false on timeout
/// or poll error; hangup/err still return true so the caller's
/// recv/send observes the failure and reports it precisely.
bool poll_for(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;  // timeout
    if (errno == EINTR) continue;
    return false;
  }
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd tcp_listen(const std::string& host, int port, int* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  ATLAS_CHECK(fd.valid(), "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  ATLAS_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "bind(" << host << ":" << port
                      << ") failed: " << std::strerror(errno));
  ATLAS_CHECK(::listen(fd.get(), 128) == 0,
              "listen() failed: " << std::strerror(errno));
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    ATLAS_CHECK(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                              &len) == 0,
                "getsockname() failed: " << std::strerror(errno));
    *bound_port = ntohs(actual.sin_port);
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd tcp_connect(const std::string& host, int port, int timeout_ms) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  ATLAS_CHECK(fd.valid(), "socket() failed: " << std::strerror(errno));
  set_nonblocking(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    if (!poll_for(fd.get(), POLLOUT, timeout_ms)) {
      throw Error("connect to " + host + ":" + std::to_string(port) +
                      " timed out",
                  ErrorCode::unavailable);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    throw Error("connect to " + host + ":" + std::to_string(port) +
                    " failed: " + std::strerror(errno),
                ErrorCode::unavailable);
  }
  return fd;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_for(fd, POLLIN, -1)) return false;
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n, int timeout_ms) {
  // One deadline for the whole buffer: a peer trickling one byte per
  // poll window cannot stretch the write past timeout_ms total.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (left <= 0) return false;  // peer stopped reading
        wait_ms = static_cast<int>(left);
      }
      if (!poll_for(fd, POLLOUT, wait_ms)) return false;
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace atlas::serve
