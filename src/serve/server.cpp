#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "qasm/qasm.h"
#include "verify/verify.h"

namespace atlas::serve {

namespace {

bool is_data_op(Op op) {
  switch (op) {
    case Op::open_session:
    case Op::submit_qasm:
    case Op::compile:
    case Op::run:
    case Op::sweep:
    case Op::run_noisy:
    case Op::sample:
    case Op::close_session:
      return true;
    default:
      return false;
  }
}

bool is_known_op(std::uint16_t raw) {
  const Op op = static_cast<Op>(raw);
  switch (op) {
    case Op::open_session:
    case Op::submit_qasm:
    case Op::compile:
    case Op::run:
    case Op::sweep:
    case Op::run_noisy:
    case Op::sample:
    case Op::close_session:
    case Op::list_sessions:
    case Op::cache_stats:
    case Op::evict_session:
    case Op::drain:
    case Op::shutdown:
    case Op::metrics:
      return true;
  }
  return false;
}

/// Per-qubit <Z> summary attached to every run reply.
std::vector<double> all_expectation_z(const SimulationResult& result) {
  const int n = result.state.num_qubits();
  std::vector<double> z(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) z[static_cast<std::size_t>(q)] =
      result.expectation_z(q);
  return z;
}

}  // namespace

/// Carries one admitted data-plane request from the reader thread
/// through the dispatcher to its (exactly one) reply. Settling is
/// idempotent — whichever of handler success, handler failure, or the
/// last sweep point gets there first wins — and always releases the
/// tenant's admission slot and the session's purge guard.
struct Server::RequestContext {
  Server* server = nullptr;
  std::shared_ptr<Connection> conn;
  std::uint64_t request_id = 0;
  std::string tenant;
  std::shared_ptr<ServeSession> session;  // null for open_session
  /// True once enqueue_request() accepted this request. Only an
  /// admitted request owns an admission slot: a refusal or a
  /// pre-admission failure must not call request_done(), which would
  /// free a slot held by a *different* in-flight request and let the
  /// tenant's real concurrency creep past the bound. Written by the
  /// reader thread before the work item is published (the dispatcher's
  /// mutex orders it against worker reads).
  bool admitted = false;
  /// Stamp taken by the reader thread on arrival; finish() observes
  /// wire-to-reply latency into the tenant's histogram.
  std::int64_t start_ns = 0;
  std::atomic<bool> settled{false};

  ~RequestContext() {
    // A context dropped without a reply (server bug) must not leak the
    // admission slot.
    reply_error(Status::internal, "request dropped without a reply");
  }

  // finish() runs BEFORE the reply hits the wire: once a client has
  // seen a reply, its admission slot is guaranteed free, so a
  // pipelined follow-up request is never spuriously refused.
  void reply_ok(const std::vector<std::uint8_t>& body) {
    if (settled.exchange(true)) return;
    finish();
    server->send_reply(conn, request_id, Status::ok, body);
  }

  void reply_error(Status status, const std::string& message) {
    if (settled.exchange(true)) return;
    finish();
    server->send_error(conn, request_id, status, message);
  }

 private:
  void finish() {
    if (session != nullptr) {
      session->touch();
      session->end_work();
    }
    if (admitted) server->dispatcher_->request_done(tenant);
    static obs::Counter& requests = obs::counter(obs::names::kServeRequests);
    requests.inc();
    if (!tenant.empty() && start_ns != 0) {
      // Per-tenant wire-to-reply latency. Name lookup hits the registry
      // map, which is fine at request granularity (data-plane requests
      // do compiles and state-vector runs; a map lookup is noise).
      obs::histogram(obs::names::kServeTenantLatencyPrefix + tenant)
          .observe(static_cast<double>(obs::monotonic_ns() - start_ns) /
                   1e3);
    }
  }
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  store_ = std::make_unique<SessionStore>(config_.session, config_.store);
  shared_cache_ =
      std::make_unique<SharedPlanCache>(config_.shared_plan_capacity);
  dispatcher_ = std::make_unique<Dispatcher>(config_.workers,
                                             config_.max_pending_per_tenant);
}

Server::~Server() { stop(); }

void Server::start() {
  ATLAS_CHECK(!running_.load(), "Server::start() called twice");
  listener_ = tcp_listen(config_.host, config_.port, &port_);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd p{};
    p.fd = listener_.get();
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0 && errno != EINTR) break;

    // Reap connections whose readers have exited (client hangups) so a
    // long-lived daemon does not accumulate dead fds and threads.
    {
      MutexLock lock(conn_mu_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->dead.load() && (*it)->reader.joinable()) {
          (*it)->reader.join();
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (rc <= 0) continue;

    const int cfd = ::accept(listener_.get(), nullptr, nullptr);
    if (cfd < 0) continue;  // EAGAIN, EINTR, or a teardown race
    const int flags = ::fcntl(cfd, F_GETFL, 0);
    ::fcntl(cfd, F_SETFL, flags | O_NONBLOCK);
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = Fd(cfd);
    {
      MutexLock lock(conn_mu_);
      connections_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::vector<std::uint8_t> payload;
  static obs::Counter& bytes_in = obs::counter(obs::names::kServeBytesIn);
  while (running_.load(std::memory_order_acquire)) {
    if (!read_frame(conn->fd.get(), payload, config_.max_frame_bytes)) break;
    bytes_in.add(payload.size() + 4);  // +4: the length prefix
    if (!handle_frame(conn, std::move(payload))) break;
    payload.clear();
  }
  conn->dead.store(true);
}

bool Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          std::vector<std::uint8_t> payload) {
  std::uint64_t request_id = 0;
  std::uint16_t op_raw = 0;
  std::uint64_t session_id = 0;
  std::size_t header_size = 0;
  try {
    WireReader header(payload);
    request_id = header.u64();
    op_raw = header.u16();
    session_id = header.u64();
    header_size = payload.size() - header.remaining();
  } catch (const Error&) {
    // Too short even for a header: no request_id to address a reply
    // to. Drop the connection; the daemon lives on.
    return false;
  }

  if (!is_known_op(op_raw)) {
    send_error(conn, request_id, Status::invalid_argument,
               "unknown op " + std::to_string(op_raw));
    return true;
  }
  const Op op = static_cast<Op>(op_raw);

  if (!is_data_op(op)) {
    WireReader body(payload.data() + header_size,
                    payload.size() - header_size);
    handle_inline_op(conn, request_id, op, session_id, body);
    return true;
  }

  auto ctx = std::make_shared<RequestContext>();
  ctx->server = this;
  ctx->conn = conn;
  ctx->request_id = request_id;
  ctx->start_ns = obs::monotonic_ns();
  try {
    if (op == Op::open_session) {
      // Tenant comes from the request body; decode errors are answered
      // (invalid_argument), not fatal to the connection.
      WireReader body(payload.data() + header_size,
                      payload.size() - header_size);
      ctx->tenant = OpenSessionRequest::decode(body).tenant;
      ATLAS_CHECK_ARG(!ctx->tenant.empty(), "tenant name must not be empty");
    } else {
      ctx->session = store_->get(session_id);
      ctx->tenant = ctx->session->tenant();
      // Pin the session against TTL purge from admission to reply.
      ctx->session->begin_work();
    }
  } catch (const Error& e) {
    ctx->reply_error(status_from(e.code()), e.what());
    return true;
  }

  auto body_buf = std::make_shared<std::vector<std::uint8_t>>(
      payload.begin() + static_cast<std::ptrdiff_t>(header_size),
      payload.end());
  try {
    // Marked before the call: on success the work item (which may
    // settle the context from a worker thread at any point after) must
    // already see the slot as owned. enqueue_request only throws
    // before publishing the work, so the rollback below cannot race a
    // running handler.
    ctx->admitted = true;
    dispatcher_->enqueue_request(
        ctx->tenant, [this, ctx, op, body_buf, session_id]() mutable {
          WireReader body(*body_buf);
          try {
            switch (op) {
              case Op::open_session: {
                std::uint64_t sid = 0;
                ctx->reply_ok(do_open_session(sid, body));
                break;
              }
              case Op::submit_qasm:
                ctx->reply_ok(do_submit_qasm(*ctx->session, body));
                break;
              case Op::compile:
                ctx->reply_ok(do_compile(*ctx->session, body));
                break;
              case Op::run:
                ctx->reply_ok(do_run(*ctx->session, body));
                break;
              case Op::sweep:
                do_sweep(ctx, ctx->session, body);
                break;
              case Op::run_noisy:
                ctx->reply_ok(do_run_noisy(*ctx->session, body));
                break;
              case Op::sample:
                ctx->reply_ok(do_sample(*ctx->session, body));
                break;
              case Op::close_session:
                store_->erase(session_id);
                ctx->reply_ok({});
                break;
              default:
                ctx->reply_error(Status::internal, "unroutable op");
            }
          } catch (const Error& e) {
            ctx->reply_error(status_from(e.code()), e.what());
          } catch (const std::exception& e) {
            ctx->reply_error(Status::internal, e.what());
          }
        });
  } catch (const Error& e) {
    // Admission refused: per-tenant bound (capacity) or draining
    // (unavailable). This request never took a slot — un-mark it so
    // finish() leaves the tenant's slots to the requests that own them.
    ctx->admitted = false;
    static obs::Counter& refused =
        obs::counter(obs::names::kServeAdmissionRefused);
    refused.inc();
    ctx->reply_error(status_from(e.code()), e.what());
  }
  return true;
}

void Server::handle_inline_op(const std::shared_ptr<Connection>& conn,
                              std::uint64_t request_id, Op op,
                              std::uint64_t session_id, WireReader& body) {
  (void)body;  // no inline op reads a body today
  try {
    switch (op) {
      case Op::list_sessions: {
        WireWriter w;
        const auto sessions = store_->snapshot();
        w.u32(static_cast<std::uint32_t>(sessions.size()));
        for (const auto& s : sessions) {
          SessionInfo info;
          info.session_id = s->id();
          info.tenant = s->tenant();
          info.idle_seconds = s->idle_seconds();
          info.ttl_seconds = s->ttl_seconds();
          info.active = static_cast<std::uint32_t>(
              s->active() < 0 ? 0 : s->active());
          info.queued =
              static_cast<std::uint32_t>(dispatcher_->queued(s->tenant()));
          info.circuits = s->num_circuits();
          info.compiled = s->num_compiled();
          info.results = s->num_results();
          info.encode(w);
        }
        send_reply(conn, request_id, Status::ok, w.bytes());
        break;
      }
      case Op::cache_stats: {
        const SharedPlanCache::Stats shared = shared_cache_->stats();
        const PlanCacheStats local = store_->aggregate_plan_cache_stats();
        CacheStatsReply reply;
        reply.shared_hits = shared.hits;
        reply.shared_misses = shared.misses;
        reply.shared_evictions = shared.evictions;
        reply.shared_entries = static_cast<std::uint32_t>(shared.entries);
        reply.shared_resident_bytes = shared.resident_bytes;
        reply.session_hits = local.hits;
        reply.session_misses = local.misses;
        reply.session_evictions = local.evictions;
        reply.session_entries = local.size;
        reply.session_resident_bytes = local.resident_bytes;
        reply.sessions = static_cast<std::uint32_t>(store_->size());
        reply.session_capacity =
            static_cast<std::uint32_t>(store_->limits().max_sessions);
        reply.sessions_purged = store_->purged_total();
        WireWriter w;
        reply.encode(w);
        send_reply(conn, request_id, Status::ok, w.bytes());
        break;
      }
      case Op::evict_session: {
        store_->erase(session_id);
        send_reply(conn, request_id, Status::ok, {});
        break;
      }
      case Op::drain: {
        // Blocks this reader until in-flight work finishes — drain is
        // an operator action, and the caller wants completion, not an
        // acknowledgment.
        drain();
        send_reply(conn, request_id, Status::ok, {});
        break;
      }
      case Op::shutdown: {
        send_reply(conn, request_id, Status::ok, {});
        MutexLock lock(shutdown_mu_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
        break;
      }
      case Op::metrics: {
        const obs::MetricsReport report =
            obs::MetricsRegistry::instance().snapshot();
        MetricsReply reply;
        reply.metrics.reserve(report.entries.size());
        for (const obs::MetricValue& v : report.entries) {
          MetricEntry m;
          m.name = v.name;
          m.kind = static_cast<std::uint8_t>(v.kind);
          m.count = v.count;
          m.gauge = v.gauge;
          m.sum = v.sum;
          m.p50 = v.p50;
          m.p90 = v.p90;
          m.p99 = v.p99;
          reply.metrics.push_back(std::move(m));
        }
        WireWriter w;
        reply.encode(w);
        send_reply(conn, request_id, Status::ok, w.bytes());
        break;
      }
      default:
        send_error(conn, request_id, Status::internal, "unroutable op");
    }
  } catch (const Error& e) {
    send_error(conn, request_id, status_from(e.code()), e.what());
  } catch (const std::exception& e) {
    send_error(conn, request_id, Status::internal, e.what());
  }
}

std::vector<std::uint8_t> Server::do_open_session(
    std::uint64_t& session_id_out, WireReader& body) {
  const OpenSessionRequest q = OpenSessionRequest::decode(body);
  SessionConfig cfg = config_.session;
  if (q.local_qubits >= 0) cfg.cluster.local_qubits = q.local_qubits;
  if (q.regional_qubits >= 0) cfg.cluster.regional_qubits = q.regional_qubits;
  if (q.global_qubits >= 0) cfg.cluster.global_qubits = q.global_qubits;
  if (q.gpus_per_node >= 0) cfg.cluster.gpus_per_node = q.gpus_per_node;
  if (q.opt_level >= 0) cfg.opt_level = q.opt_level;
  if (q.seed != 0) cfg.seed = q.seed;
  const auto session =
      store_->open(q.tenant, cfg, std::chrono::milliseconds(q.ttl_ms));
  session_id_out = session->id();
  WireWriter w;
  w.u64(session->id());
  return w.take();
}

std::vector<std::uint8_t> Server::do_submit_qasm(ServeSession& session,
                                                 WireReader& body) {
  const std::string source = body.str();
  qasm::NoisyParse parsed = qasm::parse_with_noise(source);
  // Data-plane ingest check: the parser guarantees well-formed syntax,
  // the verifier guarantees the IR invariants the engine assumes
  // (docs/VERIFY.md). Caller-supplied artifact, so invalid_argument ->
  // Status::invalid_argument on the wire.
  const auto verify_level = session.session().config().verify_level;
  if (verify_level != verify::VerifyLevel::off) {
    verify::check(verify::verify_circuit(parsed.circuit, verify_level),
                  ErrorCode::invalid_argument);
    if (!parsed.noise.empty())
      verify::check(
          verify::verify_noise_model(parsed.noise,
                                     parsed.circuit.num_qubits(),
                                     verify_level),
          ErrorCode::invalid_argument);
  }
  StoredCircuit stored;
  stored.symbols = parsed.circuit.symbols();
  stored.has_noise = !parsed.noise.empty();
  stored.circuit = std::move(parsed.circuit);
  stored.noise = std::move(parsed.noise);

  SubmitReply reply;
  reply.num_qubits = static_cast<std::uint32_t>(stored.circuit.num_qubits());
  reply.num_gates = static_cast<std::uint32_t>(stored.circuit.num_gates());
  reply.has_noise = stored.has_noise;
  reply.symbols = stored.symbols;
  reply.circuit_id = session.add_circuit(std::move(stored));
  WireWriter w;
  reply.encode(w);
  return w.take();
}

std::vector<std::uint8_t> Server::do_compile(ServeSession& session,
                                             WireReader& body) {
  const std::uint32_t circuit_id = body.u32();
  const auto stored = session.circuit(circuit_id);

  // The cross-tenant fast path: the key is the post-optimization
  // structural fingerprint mixed with the cluster shape, so any hit is
  // a plan some session with an identical shape already built — valid
  // for this one too (plans are state- and session-independent).
  const std::uint64_t key = session.session().plan_key(stored->circuit);
  std::shared_ptr<const CompiledCircuit> compiled = shared_cache_->find(key);
  const bool shared_hit = compiled != nullptr;
  if (!shared_hit) {
    compiled = std::make_shared<const CompiledCircuit>(
        session.session().compile(stored->circuit));
    shared_cache_->insert(key, compiled);
  }

  CompileReply reply;
  reply.shared_cache_hit = shared_hit;
  reply.symbols = compiled->symbols();
  reply.compiled_id = session.add_compiled(std::move(compiled));
  WireWriter w;
  reply.encode(w);
  return w.take();
}

std::vector<std::uint8_t> Server::do_run(ServeSession& session,
                                         WireReader& body) {
  const std::uint32_t compiled_id = body.u32();
  const std::uint32_t num_values = body.u32();
  std::vector<double> values(num_values);
  for (auto& v : values) v = body.f64();

  const auto compiled = session.compiled(compiled_id);
  SimulationResult result = session.session().run(*compiled, values);

  RunReply reply;
  reply.seed = result.seed;
  reply.norm_sq = result.norm_sq();
  reply.expectation_z = all_expectation_z(result);
  reply.result_id = session.add_result(std::move(result));
  WireWriter w;
  reply.encode(w);
  return w.take();
}

void Server::do_sweep(const std::shared_ptr<RequestContext>& ctx,
                      const std::shared_ptr<ServeSession>& session,
                      WireReader& body) {
  const std::uint32_t compiled_id = body.u32();
  const std::uint32_t num_points = body.u32();
  const std::uint32_t point_size = body.u32();
  auto points = std::make_shared<std::vector<std::vector<double>>>();
  points->reserve(num_points);
  for (std::uint32_t i = 0; i < num_points; ++i) {
    std::vector<double> point(point_size);
    for (auto& v : point) v = body.f64();
    points->push_back(std::move(point));
  }
  const auto compiled = session->compiled(compiled_id);

  if (num_points == 0) {
    WireWriter w;
    w.u32(0);
    ctx->reply_ok(w.bytes());
    return;
  }

  // Fan one dispatcher item per point under this tenant's queue: with
  // other tenants enqueued, the round-robin cursor interleaves their
  // work between points instead of running the sweep to completion
  // first. The last point to finish assembles and sends the reply.
  struct SweepState {
    std::vector<SweepPoint> results;
    std::atomic<std::size_t> remaining;
    Mutex err_mu;
    std::string error ATLAS_GUARDED_BY(err_mu);
    Status error_status ATLAS_GUARDED_BY(err_mu) = Status::ok;
  };
  auto state = std::make_shared<SweepState>();
  state->results.resize(num_points);
  state->remaining.store(num_points);

  for (std::uint32_t i = 0; i < num_points; ++i) {
    dispatcher_->enqueue_internal(
        ctx->tenant, [this, ctx, session, compiled, points, state, i] {
          try {
            const SimulationResult result =
                session->session().run(*compiled, (*points)[i]);
            state->results[i].norm_sq = result.norm_sq();
            state->results[i].expectation_z = all_expectation_z(result);
          } catch (const Error& e) {
            MutexLock lock(state->err_mu);
            if (state->error_status == Status::ok) {
              state->error_status = status_from(e.code());
              state->error = e.what();
            }
          } catch (const std::exception& e) {
            MutexLock lock(state->err_mu);
            if (state->error_status == Status::ok) {
              state->error_status = Status::internal;
              state->error = e.what();
            }
          }
          if (state->remaining.fetch_sub(1) != 1) return;
          if (state->error_status != Status::ok) {
            ctx->reply_error(state->error_status, state->error);
            return;
          }
          WireWriter w;
          w.u32(static_cast<std::uint32_t>(state->results.size()));
          for (const SweepPoint& p : state->results) {
            w.f64(p.norm_sq);
            w.u32(static_cast<std::uint32_t>(p.expectation_z.size()));
            for (double z : p.expectation_z) w.f64(z);
          }
          ctx->reply_ok(w.bytes());
        });
  }
}

std::vector<std::uint8_t> Server::do_run_noisy(ServeSession& session,
                                               WireReader& body) {
  const std::uint32_t circuit_id = body.u32();
  noise::NoisyRunOptions options;
  options.trajectories = static_cast<int>(body.u32());
  options.shots = static_cast<int>(body.u32());
  const std::uint32_t num_values = body.u32();
  std::vector<double> values(num_values);
  for (auto& v : values) v = body.f64();

  const auto stored = session.circuit(circuit_id);
  if (num_values != 0) {
    ATLAS_CHECK_ARG(values.size() == stored->symbols.size(),
                    "run_noisy expects " << stored->symbols.size()
                                         << " parameter values, got "
                                         << values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
      options.binding.set(stored->symbols[k], values[k]);
    }
  }

  const noise::NoisyResult result =
      session.session().run_noisy(stored->circuit, stored->noise, options);

  NoisyReply reply;
  reply.trajectories = result.trajectories();
  reply.pauli_fast_path = result.pauli_fast_path();
  reply.mean_weight = result.mean_weight();
  const int n = result.num_qubits();
  reply.z_value.resize(static_cast<std::size_t>(n));
  reply.z_std_error.resize(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    const noise::Estimate e = result.expectation_z(q);
    reply.z_value[static_cast<std::size_t>(q)] = e.value;
    reply.z_std_error[static_cast<std::size_t>(q)] = e.std_error;
  }
  reply.counts.reserve(result.counts().size());
  for (const auto& [basis, weight] : result.counts()) {
    reply.counts.emplace_back(static_cast<std::uint64_t>(basis), weight);
  }
  WireWriter w;
  reply.encode(w);
  return w.take();
}

std::vector<std::uint8_t> Server::do_sample(ServeSession& session,
                                            WireReader& body) {
  const std::uint32_t result_id = body.u32();
  const std::uint32_t shots = body.u32();
  ATLAS_CHECK_ARG(shots > 0 && shots <= (1u << 24),
                  "shots must be in [1, 2^24], got " << shots);
  const std::vector<Index> samples =
      session.sample_result(result_id, static_cast<int>(shots));
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (Index s : samples) w.u64(static_cast<std::uint64_t>(s));
  return w.take();
}

void Server::send_reply(const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, Status status,
                        const std::vector<std::uint8_t>& body) {
  WireWriter w;
  w.u64(request_id);
  w.u16(static_cast<std::uint16_t>(status));
  std::vector<std::uint8_t> frame = w.take();
  frame.insert(frame.end(), body.begin(), body.end());
  static obs::Counter& bytes_out = obs::counter(obs::names::kServeBytesOut);
  bytes_out.add(frame.size() + 4);  // +4: the length prefix
  MutexLock lock(conn->write_mu);
  if (conn->dead.load()) return;
  if (!write_frame(conn->fd.get(), frame, config_.write_timeout_ms)) {
    // Vanished or stalled peer: half-close so the connection's parked
    // reader wakes and exits instead of waiting on a dead client.
    conn->dead.store(true);
    shutdown_fd(conn->fd.get());
  }
}

void Server::send_error(const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, Status status,
                        const std::string& message) {
  WireWriter w;
  w.str(message);
  send_reply(conn, request_id, status, w.bytes());
}

void Server::drain() {
  draining_.store(true, std::memory_order_release);
  dispatcher_->drain();
}

void Server::stop() {
  {
    MutexLock lock(shutdown_mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_cv_.notify_all();
  }
  // Let in-flight work reply over still-open connections first.
  drain();
  running_.store(false, std::memory_order_release);
  shutdown_fd(listener_.get());
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    MutexLock lock(conn_mu_);
    conns.swap(connections_);
  }
  for (const auto& conn : conns) shutdown_fd(conn->fd.get());
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  dispatcher_->stop();
}

bool Server::wait_shutdown() {
  MutexLock lock(shutdown_mu_);
  shutdown_cv_.wait(shutdown_mu_, [this]() ATLAS_REQUIRES(shutdown_mu_) {
    return shutdown_requested_ || stopped_;
  });
  return shutdown_requested_;
}

}  // namespace atlas::serve
