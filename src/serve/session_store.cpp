#include "serve/session_store.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace atlas::serve {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void PlanCacheTelemetry::session_closed(const PlanCacheStats& final_stats) {
  hits_.fetch_sub(final_stats.hits, std::memory_order_relaxed);
  misses_.fetch_sub(final_stats.misses, std::memory_order_relaxed);
  evictions_.fetch_sub(final_stats.evictions, std::memory_order_relaxed);
  size_.fetch_sub(static_cast<std::int64_t>(final_stats.size),
                  std::memory_order_relaxed);
  capacity_.fetch_sub(static_cast<std::int64_t>(final_stats.capacity),
                      std::memory_order_relaxed);
  resident_bytes_.fetch_sub(
      static_cast<std::int64_t>(final_stats.resident_bytes),
      std::memory_order_relaxed);
}

PlanCacheStats PlanCacheTelemetry::totals() const {
  const auto clamp = [](std::int64_t v) {
    return v < 0 ? std::size_t{0} : static_cast<std::size_t>(v);
  };
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  // Gauges can transiently dip negative while a departing session's
  // subtraction races its last events; clamp rather than wrap.
  s.size = clamp(size_.load(std::memory_order_relaxed));
  s.capacity = clamp(capacity_.load(std::memory_order_relaxed));
  s.resident_bytes = clamp(resident_bytes_.load(std::memory_order_relaxed));
  return s;
}

ServeSession::ServeSession(std::uint64_t id, std::string tenant,
                           SessionConfig config, std::chrono::milliseconds ttl,
                           std::size_t max_results, std::size_t max_circuits,
                           std::shared_ptr<PlanCacheTelemetry> telemetry)
    : id_(id),
      tenant_(std::move(tenant)),
      ttl_(ttl),
      max_results_(max_results),
      max_circuits_(max_circuits),
      telemetry_(std::move(telemetry)),
      session_(std::move(config)),
      last_used_ns_(now_ns()) {
  if (telemetry_) {
    telemetry_->session_opened(session_.plan_cache_stats().capacity);
  }
}

ServeSession::~ServeSession() {
  // Nobody holds this session anymore (refcount hit zero), so the
  // final stats are settled: subtracting them removes this session's
  // entire contribution from the store aggregate.
  if (telemetry_) telemetry_->session_closed(session_.plan_cache_stats());
}

double ServeSession::ttl_seconds() const {
  return std::chrono::duration<double>(ttl_).count();
}

std::uint32_t ServeSession::add_circuit(StoredCircuit parsed) {
  MutexLock lock(mu_);
  if (circuits_.size() >= max_circuits_) {
    throw Error("session " + std::to_string(id_) + " holds " +
                    std::to_string(circuits_.size()) +
                    " circuits (per-session limit); close_session and reopen",
                ErrorCode::capacity);
  }
  const std::uint32_t id = next_id_++;
  circuits_.emplace(id,
                    std::make_shared<const StoredCircuit>(std::move(parsed)));
  return id;
}

std::shared_ptr<const StoredCircuit> ServeSession::circuit(
    std::uint32_t id) const {
  MutexLock lock(mu_);
  auto it = circuits_.find(id);
  if (it == circuits_.end()) {
    throw Error("no circuit " + std::to_string(id) + " in session " +
                    std::to_string(id_),
                ErrorCode::not_found);
  }
  return it->second;
}

std::uint32_t ServeSession::add_compiled(
    std::shared_ptr<const CompiledCircuit> compiled) {
  MutexLock lock(mu_);
  if (compiled_.size() >= max_circuits_) {
    throw Error("session " + std::to_string(id_) + " holds " +
                    std::to_string(compiled_.size()) +
                    " compiled circuits (per-session limit)",
                ErrorCode::capacity);
  }
  const std::uint32_t id = next_id_++;
  compiled_.emplace(id, std::move(compiled));
  return id;
}

std::shared_ptr<const CompiledCircuit> ServeSession::compiled(
    std::uint32_t id) const {
  MutexLock lock(mu_);
  auto it = compiled_.find(id);
  if (it == compiled_.end()) {
    throw Error("no compiled circuit " + std::to_string(id) + " in session " +
                    std::to_string(id_),
                ErrorCode::not_found);
  }
  return it->second;
}

std::uint32_t ServeSession::add_result(SimulationResult result) {
  MutexLock lock(mu_);
  const std::uint32_t id = next_id_++;
  results_.emplace(id, std::move(result));
  // Oldest-first eviction: ids are monotone, so begin() is the FIFO
  // head. Each result pins a full state vector; the bound is what keeps
  // an absent-minded tenant from holding the daemon's memory hostage.
  while (results_.size() > max_results_) results_.erase(results_.begin());
  return id;
}

std::vector<Index> ServeSession::sample_result(std::uint32_t id, int shots) {
  // Serialized under mu_: SimulationResult::sample(shots) advances a
  // plain call counter (deliberately, for replayability).
  MutexLock lock(mu_);
  auto it = results_.find(id);
  if (it == results_.end()) {
    throw Error("no result " + std::to_string(id) + " in session " +
                    std::to_string(id_) +
                    " (results are a bounded FIFO; rerun or raise the bound)",
                ErrorCode::not_found);
  }
  return it->second.sample(shots);
}

void ServeSession::touch() {
  last_used_ns_.store(now_ns(), std::memory_order_relaxed);
}

double ServeSession::idle_seconds() const {
  const std::int64_t idle =
      now_ns() - last_used_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(idle) * 1e-9;
}

bool ServeSession::expired() const {
  if (active() > 0) return false;
  return idle_seconds() * 1e3 >= static_cast<double>(ttl_.count());
}

std::uint32_t ServeSession::num_circuits() const {
  MutexLock lock(mu_);
  return static_cast<std::uint32_t>(circuits_.size());
}

std::uint32_t ServeSession::num_compiled() const {
  MutexLock lock(mu_);
  return static_cast<std::uint32_t>(compiled_.size());
}

std::uint32_t ServeSession::num_results() const {
  MutexLock lock(mu_);
  return static_cast<std::uint32_t>(results_.size());
}

std::shared_ptr<const CompiledCircuit> SharedPlanCache::find(
    std::uint64_t key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  entries_.splice(entries_.begin(), entries_, it->second);  // mark MRU
  return it->second->compiled;
}

void SharedPlanCache::insert(std::uint64_t key,
                             std::shared_ptr<const CompiledCircuit> compiled) {
  if (capacity_ == 0 || compiled == nullptr) return;
  const std::size_t bytes =
      compiled->plan() ? exec::approx_resident_bytes(*compiled->plan()) : 0;
  MutexLock lock(mu_);
  if (index_.count(key) != 0) return;  // racing compile; first one wins
  entries_.push_front(Entry{key, bytes, std::move(compiled)});
  index_[key] = entries_.begin();
  resident_bytes_ += bytes;
  while (entries_.size() > capacity_) {
    const Entry& victim = entries_.back();
    resident_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    entries_.pop_back();
    ++evictions_;
  }
}

SharedPlanCache::Stats SharedPlanCache::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.resident_bytes = resident_bytes_;
  return s;
}

SessionStore::SessionStore(SessionConfig base, StoreLimits limits)
    : base_(std::move(base)), limits_(limits) {
  validate_session_config(base_);
  ATLAS_CHECK_ARG(limits_.max_sessions > 0, "max_sessions must be positive");
  ATLAS_CHECK_ARG(limits_.purge_interval.count() > 0,
                  "purge_interval must be positive");
  purge_thread_ = std::thread([this] { purge_loop(); });
}

SessionStore::~SessionStore() {
  {
    MutexLock lock(purge_mu_);
    stop_ = true;
  }
  purge_cv_.notify_all();
  purge_thread_.join();
}

std::shared_ptr<ServeSession> SessionStore::open(
    const std::string& tenant, SessionConfig config,
    std::chrono::milliseconds ttl) {
  ATLAS_CHECK_ARG(!tenant.empty(), "tenant name must not be empty");
  validate_session_config(config);
  if (ttl.count() <= 0) ttl = limits_.session_ttl;

  // Construct outside the store lock — Session construction builds a
  // cluster and thread pools.
  std::uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_id_++;
  }
  // Route the session's plan-cache events into the store aggregate so
  // cache_stats never has to walk sessions.
  config.plan_cache_listener = telemetry_;
  auto session = std::make_shared<ServeSession>(
      id, tenant, std::move(config), ttl, limits_.max_results_per_session,
      limits_.max_circuits_per_session, telemetry_);

  MutexLock lock(mu_);
  if (sessions_.size() >= limits_.max_sessions) {
    // Reclaim expired entries before refusing — mirrors kamailio's
    // purge-on-insert: a full table of dead sessions should not lock
    // live tenants out until the next timer tick.
    std::size_t purged = 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->expired()) {
        it = sessions_.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    purged_total_.fetch_add(purged, std::memory_order_relaxed);
    if (sessions_.size() >= limits_.max_sessions) {
      throw Error("session store is full (" +
                      std::to_string(limits_.max_sessions) +
                      " live sessions); close sessions or retry later",
                  ErrorCode::capacity);
    }
  }
  sessions_.emplace(id, session);
  return session;
}

std::shared_ptr<ServeSession> SessionStore::get(std::uint64_t id) const {
  std::shared_ptr<ServeSession> session;
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw Error("no session " + std::to_string(id) +
                      " (closed, evicted, or expired)",
                  ErrorCode::not_found);
    }
    session = it->second;
  }
  session->touch();
  return session;
}

void SessionStore::erase(std::uint64_t id) {
  std::shared_ptr<ServeSession> victim;  // destroy outside the lock
  {
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      throw Error("no session " + std::to_string(id), ErrorCode::not_found);
    }
    victim = std::move(it->second);
    sessions_.erase(it);
  }
}

std::size_t SessionStore::purge_expired() {
  std::vector<std::shared_ptr<ServeSession>> victims;
  {
    MutexLock lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->expired()) {
        victims.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  purged_total_.fetch_add(victims.size(), std::memory_order_relaxed);
  return victims.size();
}

std::vector<std::shared_ptr<ServeSession>> SessionStore::snapshot() const {
  std::vector<std::shared_ptr<ServeSession>> out;
  MutexLock lock(mu_);
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  return out;
}

std::size_t SessionStore::size() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

PlanCacheStats SessionStore::aggregate_plan_cache_stats() const {
  // Maintained counters, not a walk: every live session's cache
  // reports events into telemetry_ and a departing session subtracts
  // its final stats, so this read is O(1) and lock-free yet equals
  // the old sum-over-live-sessions walk at quiescence.
  return telemetry_->totals();
}

void SessionStore::purge_loop() {
  for (;;) {
    {
      MutexLock lock(purge_mu_);
      // wait_for returns the predicate's value: true means stop was
      // requested, false means the sweep interval elapsed.
      if (purge_cv_.wait_for(purge_mu_, limits_.purge_interval,
                             [this]() ATLAS_REQUIRES(purge_mu_) {
                               return stop_;
                             })) {
        return;
      }
    }
    // Sweep outside purge_mu_ — purge_expired() takes mu_ and victim
    // destructors can be slow (they drain session pools).
    purge_expired();
  }
}

}  // namespace atlas::serve
