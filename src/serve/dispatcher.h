#pragma once

/// \file dispatcher.h
/// Admission control + round-robin fair scheduling across tenant
/// queues. Every data-plane request lands in its tenant's deque; a
/// fixed worker pool pulls from the queues in round-robin order, so a
/// tenant that enqueues a 10k-point sweep interleaves with — rather
/// than starves — a tenant running single shots. Two knobs bound the
/// damage any one tenant can do:
///
///   * admission: at most `max_pending_per_tenant` *requests* may be
///     in flight per tenant; past that, enqueue fails fast with
///     ErrorCode::capacity instead of buffering unboundedly;
///   * granularity: the server splits a sweep into per-point internal
///     items, so the round-robin cursor can switch tenants between
///     points, not just between requests.
///
/// Invariant: worker wakeups and queued items are 1:1 — every
/// submitted ticket pops exactly one item (the round-robin-next one,
/// not necessarily the one whose enqueue created the ticket).

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace atlas::serve {

class Dispatcher {
 public:
  /// `workers` execution threads; each tenant may have at most
  /// `max_pending_per_tenant` admitted requests in flight (queued or
  /// executing), 0 = unbounded.
  Dispatcher(int workers, std::size_t max_pending_per_tenant);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Admits one external request for `tenant` and queues `work`.
  /// Throws ErrorCode::capacity past the per-tenant bound and
  /// ErrorCode::unavailable while draining. The request stays
  /// "in flight" for admission purposes until request_done(tenant) —
  /// which the server calls when the *reply* is sent, so a request
  /// that fans into many internal items counts as one until its last
  /// item completes.
  void enqueue_request(const std::string& tenant, std::function<void()> work);

  /// Queues a follow-up item (e.g. one sweep point) under `tenant`'s
  /// queue without admission accounting; admitted even while draining
  /// so in-flight requests can finish what they started.
  void enqueue_internal(const std::string& tenant, std::function<void()> work);

  /// Releases one admission slot for `tenant`.
  void request_done(const std::string& tenant);

  /// Items currently waiting in `tenant`'s queue (list_sessions).
  std::size_t queued(const std::string& tenant) const;
  /// Admitted requests in flight for `tenant`.
  std::size_t pending(const std::string& tenant) const;

  /// Stops admitting external requests and blocks until every queued
  /// and executing item has finished (internal items may still be
  /// enqueued by executing work — drain waits those out too).
  void drain();
  bool draining() const;

  /// drain() + stop the worker pool. Terminal.
  void stop();

 private:
  /// A queued work item stamped with its enqueue time, so pop_next()
  /// can report queue-wait latency (obs: serve.queue_wait_us).
  struct Item {
    std::function<void()> work;
    std::int64_t enqueue_ns = 0;
  };

  struct TenantQueue {
    std::string name;
    std::deque<Item> items;
    std::size_t pending_requests = 0;  // admission counter
    bool in_ring = false;
  };

  /// Queues `work`, registering the tenant in the round-robin ring and
  /// submitting one pool ticket (run inline on the caller if the pool
  /// is already draining). Caller holds no locks. Never throws.
  void push_item(const std::string& tenant, std::function<void()> work)
      ATLAS_EXCLUDES(mu_);
  /// Pops the round-robin-next item. Never empty-handed (1:1 ticket
  /// invariant).
  std::function<void()> pop_next() ATLAS_EXCLUDES(mu_);
  void run_one() ATLAS_EXCLUDES(mu_);
  TenantQueue& tenant_locked(const std::string& tenant) ATLAS_REQUIRES(mu_);
  void maybe_gc_locked(TenantQueue& q) ATLAS_REQUIRES(mu_);

  const std::size_t max_pending_;

  mutable Mutex mu_;
  std::unordered_map<std::string, TenantQueue> tenants_
      ATLAS_GUARDED_BY(mu_);
  /// Round-robin ring of tenants with queued items; the cursor is the
  /// front — pop_next() rotates a tenant to the back after taking one
  /// of its items.
  std::list<TenantQueue*> ring_ ATLAS_GUARDED_BY(mu_);
  std::size_t items_outstanding_ ATLAS_GUARDED_BY(mu_) = 0;  // queued +
                                                             // executing
  bool draining_ ATLAS_GUARDED_BY(mu_) = false;
  CondVar idle_cv_;

  /// Last member: its destructor joins workers while the queues above
  /// are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace atlas::serve
