#pragma once

/// \file protocol.h
/// The atlas-serve wire protocol: a length-prefixed binary framing
/// with typed ops (see docs/PROTOCOL.md for the normative spec).
///
/// Frame:    u32 payload_len (LE), then payload_len bytes.
/// Request:  u64 request_id | u16 op | u64 session_id | op body.
/// Response: u64 request_id | u16 status | body
///           (status != ok: body is a string error message).
///
/// All integers are little-endian fixed width; f64 is the IEEE-754
/// bit pattern as u64; a string is u32 length + raw bytes; a vector
/// is u32 count + elements. request_id is chosen by the client and
/// echoed verbatim, so responses may complete out of order (the
/// dispatcher schedules tenants fairly, not FIFO) and clients can
/// pipeline.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace atlas::serve {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frames longer than this are rejected and the connection dropped —
/// the guard against garbage (or hostile) length prefixes.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

enum class Op : std::uint16_t {
  // Session data plane (scheduled through the per-tenant fair queues).
  open_session = 1,
  submit_qasm = 2,
  compile = 3,
  run = 4,
  sweep = 5,
  run_noisy = 6,
  sample = 7,
  close_session = 8,
  // Introspection / control plane (served inline, even while
  // draining).
  list_sessions = 32,
  cache_stats = 33,
  evict_session = 34,
  drain = 35,
  shutdown = 36,
  /// Process metrics snapshot (obs/metrics.h) — name-sorted entries.
  metrics = 37,
};

enum class Status : std::uint16_t {
  ok = 0,
  invalid_argument = 1,
  not_found = 2,
  capacity = 3,
  unavailable = 4,
  internal = 5,
};

/// Maps an atlas::ErrorCode onto the wire status — the reason Error
/// carries codes at all: no string matching between layers.
Status status_from(ErrorCode code);
/// The inverse map, for clients rethrowing wire errors as atlas::Error.
ErrorCode error_code_from(Status status);
const char* status_name(Status status);
const char* op_name(Op op);

/// Little-endian serializer for one frame payload.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, 2); }
  void u32(std::uint32_t v) { append(&v, 4); }
  void u64(std::uint64_t v) { append(&v, 8); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append(const void* p, std::size_t n) {
    // Little-endian hosts only (static_asserted in protocol.cpp).
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked deserializer; every underrun throws atlas::Error
/// (ErrorCode::invalid_argument), which the server answers with an
/// error frame instead of dying.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return *take(1); }
  std::uint16_t u16() { return load<std::uint16_t>(); }
  std::uint32_t u32() { return load<std::uint32_t>(); }
  std::uint64_t u64() { return load<std::uint64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  std::size_t remaining() const { return size_ - off_; }
  bool at_end() const { return off_ == size_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (size_ - off_ < n) {
      throw Error("truncated frame: wanted " + std::to_string(n) +
                      " more bytes, have " + std::to_string(size_ - off_),
                  ErrorCode::invalid_argument);
    }
    const std::uint8_t* p = data_ + off_;
    off_ += n;
    return p;
  }

  template <typename T>
  T load() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

/// \name Shared op payload types
/// Encode/decode for the payloads both client and server touch; ops
/// with trivial bodies are read/written inline at each end.
/// @{

/// open_session body. Negative ints / zero seed mean "inherit the
/// server's base session config"; ttl_ms 0 means the store default.
struct OpenSessionRequest {
  std::string tenant;
  int local_qubits = -1;
  int regional_qubits = -1;
  int global_qubits = -1;
  int gpus_per_node = -1;
  int opt_level = -1;
  std::uint64_t seed = 0;
  std::uint32_t ttl_ms = 0;

  void encode(WireWriter& w) const;
  static OpenSessionRequest decode(WireReader& r);
};

/// submit_qasm reply: the stored circuit handle and its signature.
struct SubmitReply {
  std::uint32_t circuit_id = 0;
  std::uint32_t num_qubits = 0;
  std::uint32_t num_gates = 0;
  bool has_noise = false;
  std::vector<std::string> symbols;  // free symbols, ascending

  void encode(WireWriter& w) const;
  static SubmitReply decode(WireReader& r);
};

/// compile reply. `shared_cache_hit` reports whether the plan came
/// from the process-wide cross-tenant cache.
struct CompileReply {
  std::uint32_t compiled_id = 0;
  bool shared_cache_hit = false;
  std::vector<std::string> symbols;

  void encode(WireWriter& w) const;
  static CompileReply decode(WireReader& r);
};

/// run reply: the per-qubit observable summary plus a handle to the
/// retained result for follow-up `sample` calls. Doubles are the
/// engine's exact values — bit-identical to an in-process run().
struct RunReply {
  std::uint32_t result_id = 0;
  std::uint64_t seed = 0;
  double norm_sq = 0;
  std::vector<double> expectation_z;  // index = qubit

  void encode(WireWriter& w) const;
  static RunReply decode(WireReader& r);
};

/// One sweep point's summary (sweep results are not retained
/// server-side — a sweep's states would pin num_points * 2^n
/// amplitudes).
struct SweepPoint {
  double norm_sq = 0;
  std::vector<double> expectation_z;
};

/// run_noisy reply: the Monte-Carlo aggregate.
struct NoisyReply {
  std::uint64_t trajectories = 0;
  bool pauli_fast_path = false;
  double mean_weight = 0;
  std::vector<double> z_value;      // index = qubit
  std::vector<double> z_std_error;  // index = qubit
  std::vector<std::pair<std::uint64_t, double>> counts;  // basis, weight

  void encode(WireWriter& w) const;
  static NoisyReply decode(WireReader& r);
};

/// One row of list_sessions.
struct SessionInfo {
  std::uint64_t session_id = 0;
  std::string tenant;
  double idle_seconds = 0;
  double ttl_seconds = 0;
  std::uint32_t active = 0;   // scheduled or executing data ops
  std::uint32_t queued = 0;   // items waiting in the tenant's queue
  std::uint32_t circuits = 0;
  std::uint32_t compiled = 0;
  std::uint32_t results = 0;

  void encode(WireWriter& w) const;
  static SessionInfo decode(WireReader& r);
};

/// cache_stats reply: the cross-tenant shared plan cache, the summed
/// per-session plan caches, and the session store itself.
struct CacheStatsReply {
  // Process-wide shared CompiledCircuit cache (cross-tenant sharing).
  std::uint64_t shared_hits = 0;
  std::uint64_t shared_misses = 0;
  std::uint64_t shared_evictions = 0;
  std::uint32_t shared_entries = 0;
  std::uint64_t shared_resident_bytes = 0;
  // Sum of every live tenant session's PlanCacheStats.
  std::uint64_t session_hits = 0;
  std::uint64_t session_misses = 0;
  std::uint64_t session_evictions = 0;
  std::uint64_t session_entries = 0;
  std::uint64_t session_resident_bytes = 0;
  // Session store occupancy.
  std::uint32_t sessions = 0;
  std::uint32_t session_capacity = 0;
  std::uint64_t sessions_purged = 0;

  void encode(WireWriter& w) const;
  static CacheStatsReply decode(WireReader& r);
};

/// One metric in a metrics reply. `kind` selects the meaningful
/// fields: 0 = counter (count), 1 = gauge (gauge), 2 = histogram
/// (count, sum, p50/p90/p99). The wire encoding is kind-dependent —
/// see docs/PROTOCOL.md.
struct MetricEntry {
  std::string name;
  std::uint8_t kind = 0;
  std::uint64_t count = 0;
  std::int64_t gauge = 0;
  double sum = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// metrics reply: the full registry snapshot, sorted by metric name.
struct MetricsReply {
  std::vector<MetricEntry> metrics;

  void encode(WireWriter& w) const;
  static MetricsReply decode(WireReader& r);
};
/// @}

/// Reads one frame payload. Returns false on EOF/error or when the
/// length prefix exceeds `max_bytes` (caller drops the connection).
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_bytes = kDefaultMaxFrameBytes);

/// Writes one frame (length prefix + payload) atomically with respect
/// to other write_frame calls on the same fd — callers serialize via
/// their own per-connection mutex. `timeout_ms` bounds each underlying
/// write_all (-1 = forever). Returns false when the peer died or
/// stopped reading past the deadline.
bool write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 int timeout_ms = -1);

}  // namespace atlas::serve
