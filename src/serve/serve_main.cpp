/// atlas-serve: the long-lived serving daemon. Binds a TCP port,
/// serves the atlas-serve protocol (docs/PROTOCOL.md), and runs until
/// SIGINT/SIGTERM or a client's shutdown op.
///
///   atlas-serve --port 7600 --workers 4 --max-sessions 64
///       --ttl-ms 300000 --local-qubits 18 --regional-qubits 1
///       --global-qubits 1       (one command line, wrapped here)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "serve/server.h"

namespace {

std::atomic<bool> g_signaled{false};

void on_signal(int) { g_signaled.store(true); }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --host H                bind address (default 127.0.0.1)\n"
      << "  --port P                TCP port; 0 = ephemeral (default 7600)\n"
      << "  --workers N             dispatcher worker threads (default 2)\n"
      << "  --max-pending N         per-tenant in-flight bound (default 32)\n"
      << "  --max-sessions N        session store capacity (default 64)\n"
      << "  --ttl-ms MS             session idle TTL (default 300000)\n"
      << "  --purge-ms MS           purge sweep interval (default 1000)\n"
      << "  --shared-plans N        cross-tenant plan cache entries "
         "(default 128)\n"
      << "  --local-qubits N        default cluster shape for sessions\n"
      << "  --regional-qubits N\n"
      << "  --global-qubits N\n"
      << "  --gpus-per-node N\n"
      << "  --opt-level L           default compile opt level (default 0)\n"
      << "  --metrics-dump SECONDS  periodically print the metrics\n"
         "                          snapshot to stderr (0 = off)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  atlas::serve::ServerConfig config;
  config.port = 7600;
  long metrics_dump_seconds = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> long {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return std::strtol(argv[++i], nullptr, 10);
    };
    if (arg == "--host") {
      if (i + 1 >= argc) return usage(argv[0]);
      config.host = argv[++i];
    } else if (arg == "--port") {
      config.port = static_cast<int>(next());
    } else if (arg == "--workers") {
      config.workers = static_cast<int>(next());
    } else if (arg == "--max-pending") {
      config.max_pending_per_tenant = static_cast<std::size_t>(next());
    } else if (arg == "--max-sessions") {
      config.store.max_sessions = static_cast<std::size_t>(next());
    } else if (arg == "--ttl-ms") {
      config.store.session_ttl = std::chrono::milliseconds(next());
    } else if (arg == "--purge-ms") {
      config.store.purge_interval = std::chrono::milliseconds(next());
    } else if (arg == "--shared-plans") {
      config.shared_plan_capacity = static_cast<std::size_t>(next());
    } else if (arg == "--local-qubits") {
      config.session.cluster.local_qubits = static_cast<int>(next());
    } else if (arg == "--regional-qubits") {
      config.session.cluster.regional_qubits = static_cast<int>(next());
    } else if (arg == "--global-qubits") {
      config.session.cluster.global_qubits = static_cast<int>(next());
    } else if (arg == "--gpus-per-node") {
      config.session.cluster.gpus_per_node = static_cast<int>(next());
    } else if (arg == "--opt-level") {
      config.session.opt_level = static_cast<int>(next());
    } else if (arg == "--metrics-dump") {
      metrics_dump_seconds = next();
    } else {
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    atlas::serve::Server server(std::move(config));
    server.start();
    std::cout << "atlas-serve listening on " << server.config().host << ":"
              << server.port() << " (" << server.config().workers
              << " workers, " << server.config().store.max_sessions
              << " session slots)" << std::endl;

    // Wake periodically to notice signals; wait_shutdown() itself only
    // observes the shutdown op.
    std::thread waiter([&server] {
      if (server.wait_shutdown()) g_signaled.store(true);
    });
    // The poll loop doubles as the --metrics-dump timer: every
    // `metrics_dump_seconds` it prints the full registry snapshot to
    // stderr (stdout stays reserved for the startup line operators
    // parse the port out of).
    long ticks = 0;
    const long ticks_per_dump = metrics_dump_seconds * 5;  // 200 ms polls
    while (!g_signaled.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (ticks_per_dump > 0 && ++ticks >= ticks_per_dump) {
        ticks = 0;
        std::cerr << atlas::obs::to_text(
            atlas::obs::MetricsRegistry::instance().snapshot());
      }
    }
    std::cout << "atlas-serve shutting down (draining in-flight work)"
              << std::endl;
    server.stop();
    waiter.join();
  } catch (const std::exception& e) {
    std::cerr << "atlas-serve: " << e.what() << std::endl;
    return 1;
  }
  return 0;
}
