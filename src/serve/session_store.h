#pragma once

/// \file session_store.h
/// Per-tenant session state for the serve daemon: a bounded store of
/// live atlas::Session objects with TTL expiry and a periodic purge
/// thread (the kamailio sca-module shape: hash_table_size bound,
/// purge_expired_interval sweep, introspection over every entry), plus
/// the process-wide cross-tenant plan cache.
///
/// Plans are state-independent and keyed on post-optimization
/// structural fingerprints salted with the cluster shape
/// (Session::plan_key), so a CompiledCircuit built by one tenant's
/// session is valid for any other session with the same shape — the
/// SharedPlanCache exploits exactly that: identical circuits from
/// different tenants hit one entry, and the daemon surfaces the hit
/// rate through the cache_stats op.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "core/session.h"
#include "noise/model.h"

namespace atlas::serve {

/// Store shape and lifecycle knobs (kamailio: hash_table_size /
/// *_max_expires / purge_expired_interval).
struct StoreLimits {
  /// Hard bound on live sessions; opening past it is refused with
  /// ErrorCode::capacity (admission control, not eviction — tenants
  /// are told to back off rather than silently losing a neighbor).
  std::size_t max_sessions = 64;
  /// Idle sessions older than this are purged. Per-session overrides
  /// come from the open_session request.
  std::chrono::milliseconds session_ttl{5 * 60 * 1000};
  /// Purge-thread sweep period.
  std::chrono::milliseconds purge_interval{1000};
  /// Retained SimulationResults per session (oldest evicted first —
  /// each pins a full 2^n-amplitude state).
  std::size_t max_results_per_session = 8;
  /// Stored circuits + compiled handles per session.
  std::size_t max_circuits_per_session = 256;
};

/// A parsed circuit as stored by submit_qasm: the circuit, its
/// pragma-attached noise model, and the free-symbol order run_noisy
/// binds positionally against.
struct StoredCircuit {
  Circuit circuit;
  noise::NoiseModel noise;
  bool has_noise = false;
  std::vector<std::string> symbols;
};

/// Aggregate plan-cache telemetry across a store's live sessions,
/// maintained from PlanCacheListener events (relaxed atomics) instead
/// of walking every session under the store lock per cache_stats
/// request. Exactness contract: every live session routes its cache
/// events here, and a departing session's entire final PlanCacheStats
/// is subtracted in ~ServeSession — so at quiescence totals() equals
/// the sum a direct walk of the live sessions would produce
/// (regression-tested in tests/test_serve.cpp).
class PlanCacheTelemetry : public PlanCacheListener {
 public:
  void on_hit() override { hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_miss() override {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_insert(std::size_t plan_bytes) override {
    size_.fetch_add(1, std::memory_order_relaxed);
    resident_bytes_.fetch_add(static_cast<std::int64_t>(plan_bytes),
                              std::memory_order_relaxed);
  }
  void on_evict(std::size_t plan_bytes) override {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
    resident_bytes_.fetch_sub(static_cast<std::int64_t>(plan_bytes),
                              std::memory_order_relaxed);
  }
  void on_clear(std::size_t entries, std::size_t resident_bytes) override {
    size_.fetch_sub(static_cast<std::int64_t>(entries),
                    std::memory_order_relaxed);
    resident_bytes_.fetch_sub(static_cast<std::int64_t>(resident_bytes),
                              std::memory_order_relaxed);
  }

  /// A session joined the store: its (still empty) cache contributes
  /// capacity.
  void session_opened(std::size_t capacity) {
    capacity_.fetch_add(static_cast<std::int64_t>(capacity),
                        std::memory_order_relaxed);
  }
  /// A session left: remove its final contribution entirely, matching
  /// the old walk's live-sessions-only semantics.
  void session_closed(const PlanCacheStats& final_stats);

  PlanCacheStats totals() const;

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::int64_t> size_{0};
  std::atomic<std::int64_t> capacity_{0};
  std::atomic<std::int64_t> resident_bytes_{0};
};

/// One tenant's server-side state: the engine Session plus the handle
/// tables the wire protocol indexes into. Bookkeeping is mutex-guarded;
/// the Session itself is thread-safe by contract.
class ServeSession {
 public:
  /// `telemetry` (optional) receives session_opened now and
  /// session_closed at destruction; the caller is responsible for
  /// wiring the same sink into config.plan_cache_listener so per-event
  /// accounting matches (SessionStore::open does both).
  ServeSession(std::uint64_t id, std::string tenant, SessionConfig config,
               std::chrono::milliseconds ttl, std::size_t max_results,
               std::size_t max_circuits,
               std::shared_ptr<PlanCacheTelemetry> telemetry = nullptr);
  ~ServeSession();

  std::uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }
  Session& session() { return session_; }
  double ttl_seconds() const;

  /// Stores a parsed circuit; returns its handle. Throws
  /// ErrorCode::capacity past the per-session bound.
  std::uint32_t add_circuit(StoredCircuit parsed);
  /// Fetches a stored circuit by handle (shared, immutable). Throws
  /// ErrorCode::not_found.
  std::shared_ptr<const StoredCircuit> circuit(std::uint32_t id) const;

  std::uint32_t add_compiled(std::shared_ptr<const CompiledCircuit> compiled);
  std::shared_ptr<const CompiledCircuit> compiled(std::uint32_t id) const;

  /// Retains a run's result for follow-up sample() calls; evicts the
  /// oldest beyond the bound.
  std::uint32_t add_result(SimulationResult result);
  /// Draws `shots` samples from a retained result using the result's
  /// own deterministic stream (serialized here — the counter is plain
  /// state). Throws ErrorCode::not_found.
  std::vector<Index> sample_result(std::uint32_t id, int shots);

  /// Marks activity now (expiry clock).
  void touch();
  double idle_seconds() const;
  /// True when idle past the TTL and no work is scheduled or running.
  bool expired() const;

  /// In-flight accounting: a session with begun work is never purged.
  void begin_work() { active_.fetch_add(1, std::memory_order_relaxed); }
  void end_work() { active_.fetch_sub(1, std::memory_order_relaxed); }
  int active() const { return active_.load(std::memory_order_relaxed); }

  std::uint32_t num_circuits() const;
  std::uint32_t num_compiled() const;
  std::uint32_t num_results() const;

 private:
  const std::uint64_t id_;
  const std::string tenant_;
  const std::chrono::milliseconds ttl_;
  const std::size_t max_results_;
  const std::size_t max_circuits_;
  const std::shared_ptr<PlanCacheTelemetry> telemetry_;
  Session session_;

  mutable Mutex mu_;
  std::uint32_t next_id_ ATLAS_GUARDED_BY(mu_) = 1;
  std::map<std::uint32_t, std::shared_ptr<const StoredCircuit>> circuits_
      ATLAS_GUARDED_BY(mu_);
  std::map<std::uint32_t, std::shared_ptr<const CompiledCircuit>> compiled_
      ATLAS_GUARDED_BY(mu_);
  // ids ascending = FIFO
  std::map<std::uint32_t, SimulationResult> results_ ATLAS_GUARDED_BY(mu_);

  std::atomic<std::int64_t> last_used_ns_;
  std::atomic<int> active_{0};
};

/// Process-wide cross-tenant plan cache: plan_key ->
/// CompiledCircuit, LRU-bounded, with hit/miss/eviction counters and
/// approximate resident bytes for cache_stats.
class SharedPlanCache {
 public:
  explicit SharedPlanCache(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const CompiledCircuit> find(std::uint64_t key);
  void insert(std::uint64_t key,
              std::shared_ptr<const CompiledCircuit> compiled);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t resident_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::size_t bytes;
    std::shared_ptr<const CompiledCircuit> compiled;
  };

  const std::size_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> entries_ ATLAS_GUARDED_BY(mu_);  // MRU at front
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      ATLAS_GUARDED_BY(mu_);
  std::uint64_t hits_ ATLAS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ ATLAS_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ ATLAS_GUARDED_BY(mu_) = 0;
  std::size_t resident_bytes_ ATLAS_GUARDED_BY(mu_) = 0;
};

/// The bounded session table + its purge thread.
class SessionStore {
 public:
  /// `base` is the config every tenant session starts from (per-tenant
  /// open_session fields override it).
  SessionStore(SessionConfig base, StoreLimits limits);
  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  const StoreLimits& limits() const { return limits_; }
  const SessionConfig& base_config() const { return base_; }

  /// Creates a session. Throws ErrorCode::capacity when the store is
  /// full even after purging expired entries, and
  /// ErrorCode::invalid_argument on a bad config override.
  std::shared_ptr<ServeSession> open(const std::string& tenant,
                                     SessionConfig config,
                                     std::chrono::milliseconds ttl);

  /// Looks a session up and touches it. Throws ErrorCode::not_found.
  std::shared_ptr<ServeSession> get(std::uint64_t id) const;

  /// Removes a session (close_session / evict_session). In-flight work
  /// holding the shared_ptr finishes safely. Throws
  /// ErrorCode::not_found when absent.
  void erase(std::uint64_t id);

  /// One expiry sweep; returns how many sessions it removed. The purge
  /// thread calls this every limits().purge_interval.
  std::size_t purge_expired();

  std::vector<std::shared_ptr<ServeSession>> snapshot() const;
  std::size_t size() const;
  std::uint64_t purged_total() const {
    return purged_total_.load(std::memory_order_relaxed);
  }

  /// Sum of every live session's PlanCacheStats (cache_stats op).
  /// Served from PlanCacheTelemetry's maintained counters — O(1), no
  /// store lock, no session walk — with values identical to the walk
  /// at quiescence.
  PlanCacheStats aggregate_plan_cache_stats() const;

  /// The telemetry sink every session opened by this store reports to
  /// (test access).
  const std::shared_ptr<PlanCacheTelemetry>& plan_cache_telemetry() const {
    return telemetry_;
  }

 private:
  void purge_loop();

  const SessionConfig base_;
  const StoreLimits limits_;
  const std::shared_ptr<PlanCacheTelemetry> telemetry_ =
      std::make_shared<PlanCacheTelemetry>();

  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ServeSession>> sessions_
      ATLAS_GUARDED_BY(mu_);
  std::uint64_t next_id_ ATLAS_GUARDED_BY(mu_) = 1;
  std::atomic<std::uint64_t> purged_total_{0};

  Mutex purge_mu_;
  CondVar purge_cv_;
  bool stop_ ATLAS_GUARDED_BY(purge_mu_) = false;
  std::thread purge_thread_;
};

}  // namespace atlas::serve
