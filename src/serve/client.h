#pragma once

/// \file client.h
/// Blocking C++ client for the atlas-serve protocol — what the tests,
/// the serve example, and bench_serve talk through. One Client wraps
/// one connection; methods are synchronous (send, then wait for the
/// matching request_id). A Client is not thread-safe — use one per
/// thread (connections are cheap; the daemon multiplexes).
///
/// Every non-ok response is rethrown as atlas::Error carrying the wire
/// status mapped back to an ErrorCode, so client code handles server
/// failures exactly like in-process Session failures.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/net.h"
#include "serve/protocol.h"

namespace atlas::serve {

class Client {
 public:
  /// Connects to a running daemon. Throws ErrorCode::unavailable when
  /// nothing listens there.
  Client(const std::string& host, int port);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \name Session data plane
  /// @{
  /// Opens a tenant session; returns its id.
  std::uint64_t open_session(const OpenSessionRequest& request);
  SubmitReply submit_qasm(std::uint64_t session_id, const std::string& qasm);
  CompileReply compile(std::uint64_t session_id, std::uint32_t circuit_id);
  RunReply run(std::uint64_t session_id, std::uint32_t compiled_id,
               const std::vector<double>& values = {});
  std::vector<SweepPoint> sweep(
      std::uint64_t session_id, std::uint32_t compiled_id,
      const std::vector<std::vector<double>>& points);
  NoisyReply run_noisy(std::uint64_t session_id, std::uint32_t circuit_id,
                       int trajectories, int shots = 0,
                       const std::vector<double>& values = {});
  std::vector<std::uint64_t> sample(std::uint64_t session_id,
                                    std::uint32_t result_id, int shots);
  void close_session(std::uint64_t session_id);
  /// @}

  /// \name Introspection / control
  /// @{
  std::vector<SessionInfo> list_sessions();
  CacheStatsReply cache_stats();
  /// The server process's full metrics snapshot, sorted by name.
  MetricsReply metrics();
  void evict_session(std::uint64_t session_id);
  /// Blocks until the server finished draining.
  void drain();
  void shutdown_server();
  /// @}

  /// \name Pipelining (tests and bench)
  /// Post sends without waiting; wait() blocks for one specific reply.
  /// Replies may arrive in any order — the fair scheduler does not
  /// preserve FIFO across tenants — so wait() parks out-of-order
  /// frames until asked for.
  /// @{
  std::uint64_t post(Op op, std::uint64_t session_id,
                     const std::vector<std::uint8_t>& body);
  /// Returns the reply body; throws on a non-ok status.
  std::vector<std::uint8_t> wait(std::uint64_t request_id);
  /// As wait(), returning the status instead of throwing (malformed-
  /// frame tests want to see the error, not catch it).
  Status wait_status(std::uint64_t request_id,
                     std::vector<std::uint8_t>* body = nullptr,
                     std::string* message = nullptr);
  /// @}

  /// Escape hatch for protocol tests: ships raw bytes as one frame.
  bool send_raw_frame(const std::vector<std::uint8_t>& payload);
  int fd() const { return fd_.get(); }

 private:
  std::vector<std::uint8_t> call(Op op, std::uint64_t session_id,
                                 const std::vector<std::uint8_t>& body);

  Fd fd_;
  std::uint64_t next_request_id_ = 1;
  /// Out-of-order replies parked by wait(): request_id -> raw frame.
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> parked_;
};

}  // namespace atlas::serve
