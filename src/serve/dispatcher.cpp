#include "serve/dispatcher.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace atlas::serve {

Dispatcher::Dispatcher(int workers, std::size_t max_pending_per_tenant)
    : max_pending_(max_pending_per_tenant),
      pool_(std::make_unique<ThreadPool>(
          workers > 0 ? static_cast<std::size_t>(workers) : 0)) {}

Dispatcher::~Dispatcher() { stop(); }

Dispatcher::TenantQueue& Dispatcher::tenant_locked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, TenantQueue{}).first;
    it->second.name = tenant;
  }
  return it->second;
}

void Dispatcher::maybe_gc_locked(TenantQueue& q) {
  // A tenant with nothing queued, nothing admitted, and no ring slot
  // can be dropped — keeps the map bounded by *live* tenants, not by
  // every tenant name ever seen.
  if (q.items.empty() && q.pending_requests == 0 && !q.in_ring) {
    tenants_.erase(q.name);
  }
}

void Dispatcher::enqueue_request(const std::string& tenant,
                                 std::function<void()> work) {
  {
    MutexLock lock(mu_);
    if (draining_) {
      throw Error("server is draining; new requests are rejected",
                  ErrorCode::unavailable);
    }
    TenantQueue& q = tenant_locked(tenant);
    if (max_pending_ != 0 && q.pending_requests >= max_pending_) {
      throw Error("tenant '" + tenant + "' has " +
                      std::to_string(q.pending_requests) +
                      " requests in flight (per-tenant admission bound); "
                      "wait for replies before submitting more",
                  ErrorCode::capacity);
    }
    ++q.pending_requests;
  }
  push_item(tenant, std::move(work));
}

void Dispatcher::enqueue_internal(const std::string& tenant,
                                  std::function<void()> work) {
  push_item(tenant, std::move(work));
}

void Dispatcher::push_item(const std::string& tenant,
                           std::function<void()> work) {
  {
    MutexLock lock(mu_);
    TenantQueue& q = tenant_locked(tenant);
    q.items.push_back(Item{std::move(work), obs::monotonic_ns()});
    if (!q.in_ring) {
      q.in_ring = true;
      ring_.push_back(&q);
    }
    ++items_outstanding_;
  }
  // One ticket per item; the ticket that runs pops the fair-share-next
  // item, which may belong to another tenant.
  try {
    pool_->submit([this] { run_one(); });
  } catch (...) {
    // The pool only rejects tickets once its drain has begun (a
    // teardown race). The item is already published, so serve its
    // ticket on this thread: the 1:1 ticket/item invariant holds,
    // items_outstanding_ still reaches zero, and drain() cannot wedge
    // waiting on an item no worker will ever claim.
    run_one();
  }
}

std::function<void()> Dispatcher::pop_next() {
  Item item;
  {
    MutexLock lock(mu_);
    // The 1:1 ticket/item invariant guarantees the ring is non-empty
    // here and its front queue has at least one item.
    TenantQueue* q = ring_.front();
    ring_.pop_front();
    item = std::move(q->items.front());
    q->items.pop_front();
    if (q->items.empty()) {
      q->in_ring = false;
      maybe_gc_locked(*q);
    } else {
      ring_.push_back(q);  // rotate: next worker serves another tenant
    }
  }
  static obs::Histogram& queue_wait_us =
      obs::histogram(obs::names::kServeQueueWaitUs);
  queue_wait_us.observe(
      static_cast<double>(obs::monotonic_ns() - item.enqueue_ns) / 1e3);
  return std::move(item.work);
}

void Dispatcher::run_one() {
  std::function<void()> work = pop_next();
  try {
    work();
  } catch (...) {
    // Work items reply to their own clients; an escaped exception is a
    // server bug, but accounting must stay correct regardless.
  }
  MutexLock lock(mu_);
  if (--items_outstanding_ == 0) idle_cv_.notify_all();
}

void Dispatcher::request_done(const std::string& tenant) {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  if (it->second.pending_requests > 0) --it->second.pending_requests;
  maybe_gc_locked(it->second);
}

std::size_t Dispatcher::queued(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.items.size();
}

std::size_t Dispatcher::pending(const std::string& tenant) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.pending_requests;
}

void Dispatcher::drain() {
  MutexLock lock(mu_);
  draining_ = true;
  // Executing items may enqueue_internal() more items (sweep points);
  // each raises items_outstanding_ before its parent's count drops, so
  // waiting for zero waits for whole request trees.
  idle_cv_.wait(mu_, [this]() ATLAS_REQUIRES(mu_) {
    return items_outstanding_ == 0;
  });
}

bool Dispatcher::draining() const {
  MutexLock lock(mu_);
  return draining_;
}

void Dispatcher::stop() {
  drain();
  // All tickets are done (items_outstanding_ == 0 and no new external
  // admissions), so the pool drains instantly unless a straggler
  // ticket is between pop and completion — drain() covers that too.
  pool_->drain();
}

}  // namespace atlas::serve
