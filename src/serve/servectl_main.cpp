/// atlas-servectl: operator CLI for a running atlas-serve daemon.
///
///   atlas-servectl [--host H] [--port P] [--json] list
///   atlas-servectl stats
///   atlas-servectl metrics
///   atlas-servectl evict <session-id>
///   atlas-servectl drain
///   atlas-servectl shutdown
///
/// With --json every command emits a single machine-readable JSON object
/// on stdout (errors still go to stderr and set a nonzero exit code).

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--host H] [--port P] [--json] "
               "list | stats | metrics | evict <session-id> | drain | "
               "shutdown\n";
  return 2;
}

/// Escapes a string for inclusion in a JSON string literal. Tenant names
/// are validated server-side to a conservative charset, but escape anyway
/// so the output is well-formed JSON no matter what the wire carried.
std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

void cmd_list(atlas::serve::Client& client, bool json) {
  const auto sessions = client.list_sessions();
  if (json) {
    std::cout << "{\"sessions\":[";
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const auto& s = sessions[i];
      if (i != 0) std::cout << ",";
      std::cout << "{\"session_id\":" << s.session_id << ",\"tenant\":\""
                << json_escape(s.tenant) << "\",\"idle_seconds\":"
                << s.idle_seconds << ",\"ttl_seconds\":" << s.ttl_seconds
                << ",\"active\":" << s.active << ",\"queued\":" << s.queued
                << ",\"circuits\":" << s.circuits << ",\"compiled\":"
                << s.compiled << ",\"results\":" << s.results << "}";
    }
    std::cout << "],\"count\":" << sessions.size() << "}\n";
    return;
  }
  std::cout << std::left << std::setw(10) << "session" << std::setw(16)
            << "tenant" << std::right << std::setw(10) << "idle_s"
            << std::setw(8) << "ttl_s" << std::setw(8) << "active"
            << std::setw(8) << "queued" << std::setw(10) << "circuits"
            << std::setw(10) << "compiled" << std::setw(9) << "results"
            << "\n";
  for (const auto& s : sessions) {
    std::cout << std::left << std::setw(10) << s.session_id << std::setw(16)
              << s.tenant << std::right << std::fixed << std::setprecision(1)
              << std::setw(10) << s.idle_seconds << std::setw(8)
              << s.ttl_seconds << std::setw(8) << s.active << std::setw(8)
              << s.queued << std::setw(10) << s.circuits << std::setw(10)
              << s.compiled << std::setw(9) << s.results << "\n";
  }
  std::cout << sessions.size() << " session(s)\n";
}

void cmd_stats(atlas::serve::Client& client, bool json) {
  const auto s = client.cache_stats();
  const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(total);
  };
  if (json) {
    std::cout << "{\"shared\":{\"entries\":" << s.shared_entries
              << ",\"resident_bytes\":" << s.shared_resident_bytes
              << ",\"hits\":" << s.shared_hits << ",\"misses\":"
              << s.shared_misses << ",\"evictions\":" << s.shared_evictions
              << "},\"session\":{\"entries\":" << s.session_entries
              << ",\"resident_bytes\":" << s.session_resident_bytes
              << ",\"hits\":" << s.session_hits << ",\"misses\":"
              << s.session_misses << ",\"evictions\":" << s.session_evictions
              << "},\"sessions\":{\"live\":" << s.sessions << ",\"capacity\":"
              << s.session_capacity << ",\"purged\":" << s.sessions_purged
              << "}}\n";
    return;
  }
  std::cout << "shared plan cache: " << s.shared_entries << " entries, "
            << s.shared_resident_bytes << " bytes, " << s.shared_hits
            << " hits / " << s.shared_misses << " misses ("
            << std::fixed << std::setprecision(1)
            << rate(s.shared_hits, s.shared_misses) << "% hit rate), "
            << s.shared_evictions << " evictions\n";
  std::cout << "session plan caches: " << s.session_entries << " entries, "
            << s.session_resident_bytes << " bytes, " << s.session_hits
            << " hits / " << s.session_misses << " misses ("
            << rate(s.session_hits, s.session_misses) << "% hit rate), "
            << s.session_evictions << " evictions\n";
  std::cout << "sessions: " << s.sessions << "/" << s.session_capacity
            << " live, " << s.sessions_purged << " purged\n";
}

void cmd_metrics(atlas::serve::Client& client, bool json) {
  const auto reply = client.metrics();
  if (json) {
    std::cout << "{\"metrics\":[";
    for (std::size_t i = 0; i < reply.metrics.size(); ++i) {
      const auto& m = reply.metrics[i];
      if (i != 0) std::cout << ",";
      std::cout << "{\"name\":\"" << json_escape(m.name) << "\"";
      switch (m.kind) {
        case 0:
          std::cout << ",\"kind\":\"counter\",\"value\":" << m.count;
          break;
        case 1:
          std::cout << ",\"kind\":\"gauge\",\"value\":" << m.gauge;
          break;
        default:
          std::cout << ",\"kind\":\"histogram\",\"count\":" << m.count
                    << ",\"sum\":" << m.sum << ",\"p50\":" << m.p50
                    << ",\"p90\":" << m.p90 << ",\"p99\":" << m.p99;
          break;
      }
      std::cout << "}";
    }
    std::cout << "],\"count\":" << reply.metrics.size() << "}\n";
    return;
  }
  for (const auto& m : reply.metrics) {
    std::cout << std::left << std::setw(40) << m.name << std::right;
    switch (m.kind) {
      case 0:
        std::cout << " " << m.count << "\n";
        break;
      case 1:
        std::cout << " " << m.gauge << "\n";
        break;
      default:
        std::cout << " count=" << m.count << std::fixed
                  << std::setprecision(1) << " sum=" << m.sum
                  << " p50=" << m.p50 << " p90=" << m.p90
                  << " p99=" << m.p99 << "\n";
        std::cout.unsetf(std::ios_base::floatfield);
        break;
    }
  }
  std::cout << reply.metrics.size() << " metric(s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7600;
  bool json = false;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--json") {
      json = true;
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.empty()) return usage(argv[0]);

  try {
    atlas::serve::Client client(host, port);
    const std::string& cmd = rest[0];
    if (cmd == "list") {
      cmd_list(client, json);
    } else if (cmd == "stats") {
      cmd_stats(client, json);
    } else if (cmd == "metrics") {
      cmd_metrics(client, json);
    } else if (cmd == "evict") {
      if (rest.size() != 2) return usage(argv[0]);
      const std::uint64_t id = std::strtoull(rest[1].c_str(), nullptr, 10);
      client.evict_session(id);
      if (json) {
        std::cout << "{\"evicted\":" << id << "}\n";
      } else {
        std::cout << "evicted session " << rest[1] << "\n";
      }
    } else if (cmd == "drain") {
      client.drain();
      if (json) {
        std::cout << "{\"drained\":true}\n";
      } else {
        std::cout << "drained: in-flight work finished, new work refused\n";
      }
    } else if (cmd == "shutdown") {
      client.shutdown_server();
      if (json) {
        std::cout << "{\"shutdown\":true}\n";
      } else {
        std::cout << "shutdown requested\n";
      }
    } else {
      return usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::cerr << "atlas-servectl: " << e.what() << std::endl;
    return 1;
  }
  return 0;
}
