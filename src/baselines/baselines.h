#pragma once

/// \file baselines.h
/// Reimplementations of the comparison systems' partitioning and
/// execution *strategies* on the Atlas substrate (see DESIGN.md for
/// the fidelity argument). Holding the simulation substrate fixed
/// isolates exactly what the paper's end-to-end comparison measures:
/// the quality of circuit staging and kernelization.
///
///  * Qiskit-like    — heuristic (SnuQS-style) staging, one kernel
///                     launch per gate, no fusion.
///  * cuQuantum-like — heuristic staging, greedy <=5-qubit fusion.
///  * HyQuas-like    — greedy contiguous-prefix staging, contiguous
///                     (ORDEREDKERNELIZE) kernel grouping with
///                     shared-memory kernels (SHM-GROUPING).
///  * QDAO-like      — DRAM offloading with per-kernel block reloads
///                     instead of Atlas' one swap per stage.

#include "core/atlas.h"
#include "ir/circuit.h"

namespace atlas::baselines {

enum class BaselineKind { Qiskit, CuQuantum, HyQuas, Qdao };

const char* baseline_name(BaselineKind kind);

/// Builds the baseline's execution plan for the given cluster shape.
exec::ExecutionPlan plan_baseline(BaselineKind kind, const Circuit& circuit,
                                  const SimulatorConfig& config);

struct BaselineResult {
  exec::ExecutionPlan plan;
  exec::ExecutionReport report;
  exec::DistState state;
};

/// Plans and executes the baseline end to end from |0...0>.
BaselineResult run_baseline(BaselineKind kind, const Circuit& circuit,
                            const SimulatorConfig& config);

}  // namespace atlas::baselines
