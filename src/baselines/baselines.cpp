#include "baselines/baselines.h"

#include "common/error.h"
#include "kernelize/greedy.h"
#include "kernelize/ordered.h"
#include "staging/snuqs.h"
#include "staging/stager.h"

namespace atlas::baselines {
namespace {

/// One fusion kernel per gate (no fusion at all): Qiskit-like launch
/// pattern.
kernelize::Kernelization per_gate_kernels(const Circuit& circuit,
                                          const kernelize::CostModel& model) {
  kernelize::Kernelization out;
  for (int i = 0; i < circuit.num_gates(); ++i) {
    kernelize::Kernel k;
    k.type = kernelize::KernelType::Fusion;
    k.gate_indices = {i};
    k.qubits = circuit.gate(i).qubits();
    std::sort(k.qubits.begin(), k.qubits.end());
    k.cost = kernelize::kernel_cost(circuit, k, model);
    out.total_cost += k.cost;
    out.kernels.push_back(std::move(k));
  }
  return out;
}

staging::StagedCircuit stage_for(BaselineKind kind, const Circuit& circuit,
                                 const staging::MachineShape& shape) {
  switch (kind) {
    case BaselineKind::Qiskit:
    case BaselineKind::CuQuantum:
    case BaselineKind::Qdao:
      return staging::stage_with_snuqs(circuit, shape);
    case BaselineKind::HyQuas: {
      // Greedy contiguous-prefix staging: the specialized engine with
      // a beam of one and a single sampled solution degenerates to the
      // maximal-prefix greedy (TRANS-style).
      staging::BnbStagerOptions opt;
      opt.beam_width = 1;
      opt.max_solutions = 1;
      opt.node_budget = 1;  // no backtracking: pure greedy
      return staging::stage_with_bnb(circuit, shape, opt);
    }
  }
  throw Error("unknown baseline");
}

kernelize::Kernelization kernels_for(BaselineKind kind,
                                     const Circuit& subcircuit,
                                     const kernelize::CostModel& model) {
  switch (kind) {
    case BaselineKind::Qiskit:
    case BaselineKind::Qdao:
      return per_gate_kernels(subcircuit, model);
    case BaselineKind::CuQuantum:
      return kernelize::kernelize_greedy(subcircuit, model);
    case BaselineKind::HyQuas:
      return kernelize::kernelize_ordered(subcircuit, model);
  }
  throw Error("unknown baseline");
}

/// None of the baseline systems optimizes the regional/global split
/// across stage transitions (that is Atlas' Eq. (2) c*T term), so
/// their partitions use a naive ascending assignment of the non-local
/// qubits: regional first, global last.
void naive_global_assignment(staging::StagedCircuit& staged,
                             const staging::MachineShape& shape) {
  for (auto& stage : staged.stages) {
    std::vector<Qubit> nonlocal;
    nonlocal.insert(nonlocal.end(), stage.partition.regional.begin(),
                    stage.partition.regional.end());
    nonlocal.insert(nonlocal.end(), stage.partition.global.begin(),
                    stage.partition.global.end());
    std::sort(nonlocal.begin(), nonlocal.end());
    stage.partition.regional.assign(
        nonlocal.begin(), nonlocal.begin() + shape.num_regional);
    stage.partition.global.assign(nonlocal.begin() + shape.num_regional,
                                  nonlocal.end());
  }
  staged.comm_cost =
      staging::communication_cost(staged.stages, shape.cost_factor);
}

}  // namespace

const char* baseline_name(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::Qiskit: return "qiskit-like";
    case BaselineKind::CuQuantum: return "cuquantum-like";
    case BaselineKind::HyQuas: return "hyquas-like";
    case BaselineKind::Qdao: return "qdao-like";
  }
  return "?";
}

exec::ExecutionPlan plan_baseline(BaselineKind kind, const Circuit& circuit,
                                  const SimulatorConfig& config) {
  const auto& cc = config.cluster;
  ATLAS_CHECK(circuit.num_qubits() == cc.total_qubits(),
              "circuit/cluster shape mismatch");
  staging::MachineShape shape;
  shape.num_local = cc.local_qubits;
  shape.num_regional = cc.regional_qubits;
  shape.num_global = cc.global_qubits;
  shape.cost_factor = config.stage_cost_factor;

  staging::StagedCircuit staged = stage_for(kind, circuit, shape);
  naive_global_assignment(staged, shape);
  staging::validate_staging(circuit, staged, shape);

  exec::ExecutionPlan plan;
  plan.staging_comm_cost = staged.comm_cost;
  plan.offload_reload_per_kernel = kind == BaselineKind::Qdao;
  for (const auto& stage : staged.stages) {
    exec::PlannedStage ps;
    ps.original_indices = stage.gate_indices;
    ps.partition = stage.partition;
    ps.subcircuit = circuit.subcircuit(stage.gate_indices);
    ps.kernels = kernels_for(kind, ps.subcircuit, config.cost_model);
    kernelize::validate_kernelization(ps.subcircuit, ps.kernels,
                                      config.cost_model);
    plan.kernel_cost_total += ps.kernels.total_cost;
    plan.stages.push_back(std::move(ps));
  }
  return plan;
}

BaselineResult run_baseline(BaselineKind kind, const Circuit& circuit,
                            const SimulatorConfig& config) {
  BaselineResult result;
  result.plan = plan_baseline(kind, circuit, config);
  device::Cluster cluster(config.cluster);
  result.state = exec::initial_state(result.plan, cluster);
  result.report = exec::execute_plan(result.plan, cluster, result.state);
  return result;
}

}  // namespace atlas::baselines
