#pragma once

/// \file pass_manager.h
/// Runs an ordered, individually-toggleable pass pipeline over a
/// circuit. Levels preset the pass list:
///
///   0  nothing — the circuit passes through untouched (bit-identical
///      compile pipeline, the default);
///   1  local cleanups: cancel-inverses, merge-rotations,
///      drop-identities;
///   2  + block2q (CX-conjugated diagonal resynthesis), resynth-1q
///      (constant single-qubit run resynthesis), and the
///      commutation-aware reorder pass.
///
/// The local passes iterate to a fixpoint (each can expose work for
/// the others — a cancellation makes two rotations adjacent, a merge
/// exposes an inverse pair); reorder runs once at the end, after the
/// gate list has stopped shrinking. Every pass preserves the operator
/// exactly (opt/pass.h contract), so the optimizer may run in front of
/// *any* binding of a symbolic circuit.

#include <string>
#include <vector>

#include "opt/pass.h"

namespace atlas::opt {

/// Optimizer configuration: a level preset plus per-pass overrides.
struct OptOptions {
  /// 0 (off, default) / 1 (local cleanups) / 2 (full).
  int level = 0;
  /// Extra passes to enable on top of the level preset (registry
  /// names); unknown names throw at PassManager construction.
  std::vector<std::string> enable;
  /// Passes to remove from the preset.
  std::vector<std::string> disable;
  /// Fixpoint iteration cap for the local-pass loop.
  int max_rounds = 4;
  PassOptions pass;
};

/// Per-pass accounting of one PassManager::run().
struct PassStats {
  std::string pass;
  /// Rounds in which the pass reported a change.
  int applications = 0;
  /// Net gates removed by this pass across all rounds (can be
  /// negative for count-neutral insularization rewrites).
  int gates_removed = 0;
  double seconds = 0;
};

struct OptReport {
  int gates_before = 0;
  int gates_after = 0;
  int rounds = 0;
  double seconds = 0;
  std::vector<PassStats> passes;
};

/// The pass names the level preset enables, in execution order. The
/// final "reorder" entry (level 2) runs once after the fixpoint loop.
std::vector<std::string> default_passes(int level);

class PassManager {
 public:
  /// Builds the pipeline for `options` (level preset +/- toggles),
  /// resolving pass names through pass_registry(). Throws atlas::Error
  /// on an unknown name or a level outside [0, 2].
  explicit PassManager(const OptOptions& options);

  /// The resolved pass names in execution order.
  std::vector<std::string> pass_names() const;

  /// Optimizes a copy of `circuit`; fills `report` when non-null.
  /// Deterministic: equal circuits and contexts yield equal outputs.
  Circuit run(const Circuit& circuit, const PassContext& ctx,
              OptReport* report = nullptr) const;

 private:
  OptOptions options_;
  /// Fixpoint-iterated local passes, then run-once tail passes.
  std::vector<std::shared_ptr<Pass>> loop_passes_;
  std::vector<std::shared_ptr<Pass>> tail_passes_;
};

}  // namespace atlas::opt
