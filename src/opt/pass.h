#pragma once

/// \file pass.h
/// The gate-level optimizer pass interface. A Pass is a named,
/// individually-toggleable circuit rewrite run by the PassManager
/// (opt/pass_manager.h) between authoring and slot canonicalization in
/// the compile pipeline (core/pipeline.h).
///
/// Contract every pass must honor:
///  * **Exact equivalence.** The rewritten circuit applies the *same*
///    operator — global phase included — up to floating-point roundoff
///    of mathematically exact identities. No pass may drop a global
///    phase by default (that would break the engine's tolerance-based
///    oracles); phase-dropping rewrites gate on
///    PassOptions::up_to_global_phase.
///  * **Symbolic-parameter safety.** Rotation parameters may be affine
///    symbolic expressions (ir/param.h). A pass either treats them
///    opaquely, reasons syntactically (e.g. theta + (-theta) == 0), or
///    accumulates them affinely; it must never require a numeric value
///    that is not syntactically constant.
///  * **Determinism.** Output depends only on the input circuit and the
///    context — never on addresses, time, or randomness — so equal
///    circuits optimize equally and plan-cache keys stay stable.
///
/// Passes are registered by name in pass_registry() (the same
/// string-keyed seam as the staging/kernelize/executor backends) and
/// selected per optimization level by the PassManager.

#include <memory>
#include <string>

#include "common/registry.h"
#include "ir/circuit.h"

namespace atlas::opt {

/// Shared numeric/behavioral knobs threaded to every pass.
struct PassOptions {
  /// Max |entry| deviation for treating a matrix as the exact identity.
  double identity_tol = 1e-12;
  /// Allow rewrites that change the global phase (identity elimination
  /// of e^{ia}*I gates). Off by default: the engine's oracles compare
  /// amplitudes, not rays.
  bool up_to_global_phase = false;
  /// Minimum length of a constant single-qubit run worth resynthesizing
  /// into one gate.
  int min_run_length = 2;
  /// Gate-count ceiling for the O(n^2) commutation-aware reorder pass.
  int reorder_max_gates = 4096;
};

/// Everything a pass may consult besides the circuit itself.
struct PassContext {
  /// Local qubits per shard of the target machine; the reorder pass
  /// uses it to estimate stage counts. 0 = unknown (reorder no-ops).
  int num_local_qubits = 0;
  PassOptions options;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Rewrites `circuit` in place; returns true iff anything changed.
  virtual bool run(Circuit& circuit, const PassContext& ctx) const = 0;
};

/// The global pass registry; built-in passes ("cancel-inverses",
/// "merge-rotations", "block2q", "resynth-1q", "drop-identities",
/// "reorder") register on first access, exactly like the backend
/// registries.
Registry<Pass>& pass_registry();

}  // namespace atlas::opt
